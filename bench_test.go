// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index):
//
//	T1  BenchmarkTableIDerivation          — Table I from scenario facts
//	F1  BenchmarkFig1Lifecycle             — Fig. 1 pipeline + response paths
//	F2  BenchmarkFig2BusBroadcast          — Fig. 2 topology under load
//	F3  BenchmarkFig3FrameCodec/NodePipeline — Fig. 3 node internals
//	F4  BenchmarkFig4HPEDecision           — Fig. 4 decision block
//	C1  BenchmarkClaimResponseCycle        — §V-A.3 policy-vs-redesign claim
//	C2  BenchmarkClaimEnforcementRobustness — §V-B.2 firmware-compromise claim
//	E3  BenchmarkFleetSweep                — fleet engine scaling {1,10,100,1000}
//	E4  BenchmarkCampaignSweep             — procedural campaign sweeps (lite + quickstart)
//	E5  BenchmarkRiskCalibrate             — threat-model → sweep → calibrated DREAD profile
//	E7  BenchmarkShardedSweep              — sharded quickstart sweep (byte-identical merge)
//	E7x BenchmarkShardedSweepExec          — subprocess fan-out per wire format and parallelism
//	E8  BenchmarkShardWireEncode/Decode    — binary shard wire codec vs the JSON document
//
// plus the DESIGN.md §5 ablations (HPE lookup structure, AVC cache).
// Domain metrics are attached via b.ReportMetric so `go test -bench` prints
// the series the paper's artifacts correspond to.
package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/behaviour"
	"repro/internal/campaign"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hpe"
	"repro/internal/lifecycle"
	"repro/internal/mac"
	"repro/internal/policy"
	"repro/internal/policy/ir"
	"repro/internal/report"
	"repro/internal/risk"
	"repro/internal/shard"
	"repro/internal/shard/wire"
	"repro/internal/sim"
	"repro/internal/threatmodel"
)

// BenchmarkTableIDerivation (T1) regenerates Table I: the full pipeline from
// scenario encodings to rated analysis plus the rendered table.
func BenchmarkTableIDerivation(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		a, err := car.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		out := report.TableI(a, car.TableRowOrder)
		if len(out) == 0 {
			b.Fatal("empty table")
		}
		rows = len(a.Threats)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkFig1Lifecycle (F1) regenerates the Fig. 1 pipeline and both
// post-deployment response paths.
func BenchmarkFig1Lifecycle(b *testing.B) {
	m := lifecycle.DefaultCostModel()
	var speedup float64
	for i := 0; i < b.N; i++ {
		if steps := lifecycle.Pipeline(); len(steps) == 0 {
			b.Fatal("empty pipeline")
		}
		c, err := lifecycle.Compare(m)
		if err != nil {
			b.Fatal(err)
		}
		speedup = c.Speedup
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkFig2BusBroadcast (F2) drives the Fig. 2 topology with periodic
// legitimate traffic and reports simulated frame throughput.
func BenchmarkFig2BusBroadcast(b *testing.B) {
	var delivered uint64
	for i := 0; i < b.N; i++ {
		c := car.MustNew(car.Config{})
		c.StartTraffic(time.Millisecond, 100*time.Millisecond, 88)
		c.Scheduler().Run()
		delivered = c.Bus().Stats().FramesDelivered
	}
	b.ReportMetric(float64(delivered), "frames/run")
}

// BenchmarkFig3FrameCodec (F3) measures the bit-level encode/decode path of
// a CAN node's controller.
func BenchmarkFig3FrameCodec(b *testing.B) {
	f := canbus.MustDataFrame(0x2A5, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bits, err := canbus.EncodeBits(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := canbus.DecodeBits(bits); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3NodePipeline (F3) measures the full transceiver ->
// controller -> processor path across the simulated bus.
func BenchmarkFig3NodePipeline(b *testing.B) {
	sched := &sim.Scheduler{}
	bus := canbus.New(sched, canbus.Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	rx.Controller().SetFilters(canbus.ExactFilter(0x123))
	n := 0
	rx.Controller().SetHandler(func(canbus.Frame) { n++ })
	f := canbus.MustDataFrame(0x123, []byte{1, 2, 3, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Send(f); err != nil {
			b.Fatal(err)
		}
		sched.Run()
	}
	if n != b.N {
		b.Fatalf("delivered %d of %d", n, b.N)
	}
}

// BenchmarkFig4HPEDecision (F4) measures the decision block with the
// compiled Table I policy installed, and reports the modelled hardware
// latency alongside the simulation cost.
func BenchmarkFig4HPEDecision(b *testing.B) {
	h, err := attack.NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	eng := hpe.New(car.NodeEVECU, hpe.FixedMode(car.ModeNormal), hpe.DefaultCycleModel())
	if err := eng.Install(h.Compiled); err != nil {
		b.Fatal(err)
	}
	granted := canbus.MustDataFrame(car.IDSensorSpeed, nil)
	blocked := canbus.MustDataFrame(0x6FF, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eng.Decide(canbus.Read, granted) != canbus.Grant {
			b.Fatal("grant path broken")
		}
		if eng.Decide(canbus.Read, blocked) != canbus.Block {
			b.Fatal("block path broken")
		}
	}
	b.StopTimer()
	cm := eng.CycleModel()
	b.ReportMetric(cm.LatencyNanos(cm.PerDecision()), "hw_ns/decision")
}

// BenchmarkClaimResponseCycle (C1) evaluates the §V-A.3 claim across a
// recall-duration sweep and reports the minimum observed speed-up.
func BenchmarkClaimResponseCycle(b *testing.B) {
	minSpeedup := 0.0
	for i := 0; i < b.N; i++ {
		minSpeedup = 1e18
		for _, days := range []float64{15, 30, 60, 90, 180} {
			m := lifecycle.DefaultCostModel()
			m.RecallOrUpdate = time.Duration(days * float64(lifecycle.Day))
			c, err := lifecycle.Compare(m)
			if err != nil {
				b.Fatal(err)
			}
			if c.Speedup < minSpeedup {
				minSpeedup = c.Speedup
			}
		}
	}
	b.ReportMetric(minSpeedup, "min_speedup_x")
}

// BenchmarkClaimEnforcementRobustness (C2) runs the full 16-scenario attack
// matrix under the HPE with compromised firmware and reports the block rate.
func BenchmarkClaimEnforcementRobustness(b *testing.B) {
	h, err := attack.NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	scenarios := attack.Scenarios()
	var blockRate float64
	for i := 0; i < b.N; i++ {
		blockedCount := 0
		for _, sc := range scenarios {
			r, err := h.Run(sc, attack.EnforceHPE)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Succeeded && r.LegitimateOK {
				blockedCount++
			}
		}
		blockRate = float64(blockedCount) / float64(len(scenarios))
	}
	b.ReportMetric(blockRate*100, "blocked_%")
}

// BenchmarkAttackMatrixBaseline complements C2: the same matrix with no
// enforcement, reporting the success rate (expected 100%).
func BenchmarkAttackMatrixBaseline(b *testing.B) {
	h, err := attack.NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	scenarios := attack.Scenarios()
	var successRate float64
	for i := 0; i < b.N; i++ {
		n := 0
		for _, sc := range scenarios {
			r, err := h.Run(sc, attack.EnforceNone)
			if err != nil {
				b.Fatal(err)
			}
			if r.Succeeded {
				n++
			}
		}
		successRate = float64(n) / float64(len(scenarios))
	}
	b.ReportMetric(successRate*100, "succeeded_%")
}

// benchLookup builds an engine whose tables use the given lookup structure
// and table size, then measures decisions (DESIGN.md §5 ablation).
func benchLookup(b *testing.B, kind policy.LookupKind, size uint32) {
	set := &policy.Set{Name: "ablation", Version: 1, Rules: []policy.Rule{
		{Subject: "n", Effect: policy.Allow, Action: policy.ActRead, IDs: policy.Span(0, size-1)},
	}}
	compiled, err := policy.Compile(set, policy.CompileOptions{
		Subjects: []string{"n"}, Modes: []policy.Mode{"m"}, Lookup: kind,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := hpe.New("n", hpe.FixedMode("m"), hpe.DefaultCycleModel())
	if err := eng.Install(compiled); err != nil {
		b.Fatal(err)
	}
	hit := canbus.MustDataFrame(size-1, nil) // worst case for linear scan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eng.Decide(canbus.Read, hit) != canbus.Grant {
			b.Fatal("lookup broken")
		}
	}
}

func BenchmarkAblationHPELookup(b *testing.B) {
	for _, kind := range []policy.LookupKind{policy.LookupBitmap, policy.LookupHash, policy.LookupSorted, policy.LookupLinear} {
		for _, size := range []uint32{16, 256, 2048} {
			b.Run(fmt.Sprintf("%s/%d", kind, size), func(b *testing.B) {
				benchLookup(b, kind, size)
			})
		}
	}
}

// BenchmarkHPELookup is the backend ablation (DESIGN.md §12): the same
// allow-range policy compiled through every registered enforcement backend,
// measured on the engine's Decide hot path with the worst-case identifier.
// The table rows go through InstallEnforcer's unwrap onto the legacy atomic
// table path, so they double as a regression guard for the re-homing.
func BenchmarkHPELookup(b *testing.B) {
	for _, backend := range ir.Names() {
		for _, size := range []uint32{16, 256, 2048} {
			b.Run(fmt.Sprintf("backend=%s/%d", backend, size), func(b *testing.B) {
				set := &policy.Set{Name: "ablation", Version: 1, Rules: []policy.Rule{
					{Subject: "n", Effect: policy.Allow, Action: policy.ActRead, IDs: policy.Span(0, size-1)},
				}}
				enf, err := ir.Build(set, policy.CompileOptions{
					Subjects: []string{"n"}, Modes: []policy.Mode{"m"}, Backend: backend,
				})
				if err != nil {
					b.Fatal(err)
				}
				eng := hpe.New("n", hpe.FixedMode("m"), hpe.DefaultCycleModel())
				if err := eng.InstallEnforcer(enf); err != nil {
					b.Fatal(err)
				}
				hit := canbus.MustDataFrame(size-1, nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if eng.Decide(canbus.Read, hit) != canbus.Grant {
						b.Fatal("lookup broken")
					}
				}
			})
		}
	}
}

// BenchmarkAblationAVCCache measures MAC checks with and without the
// access-vector cache (DESIGN.md §5 ablation).
func BenchmarkAblationAVCCache(b *testing.B) {
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
	if err != nil {
		b.Fatal(err)
	}
	module, err := core.DeriveMACModule(model.Analysis, "car-base", 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, enabled := range []bool{true, false} {
		name := "on"
		if !enabled {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			srv := mac.NewServer(mac.WithAVC(enabled))
			if err := srv.Load(module); err != nil {
				b.Fatal(err)
			}
			src := core.MACContext(car.NodeTelematics)
			tgt := core.MessageContext(car.IDTrackingReport)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !srv.Check(src, tgt, core.MACClassCAN, core.MACPermWrite).Allowed {
					b.Fatal("check broken")
				}
			}
		})
	}
}

// BenchmarkPolicyToolchain measures the OEM-side path: derive, render,
// parse, compile, sign, verify — the work inside one policy update cycle.
func BenchmarkPolicyToolchain(b *testing.B) {
	analysis, err := car.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	oem, err := core.NewOEM(benchEntropy{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := threatmodel.DerivePolicies(analysis, "table-i", uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		bundle, err := oem.Issue(set)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bundle.Verify(oem.PublicKey()); err != nil {
			b.Fatal(err)
		}
		if _, err := policy.Compile(set, policy.CompileOptions{
			Subjects: car.AllNodes, Modes: car.AllModes,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEntropy is a deterministic reader for benchmark key generation.
type benchEntropy struct{}

func (benchEntropy) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i*13 + 7)
	}
	return len(p), nil
}

// BenchmarkCriticalityLatency (E1) measures safety-critical delivery
// latency under a high-priority flood, without and with enforcement — the
// paper's "systems with differing criticality" future-work axis.
func BenchmarkCriticalityLatency(b *testing.B) {
	h, err := attack.NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  attack.LatencyConfig
	}{
		{"quiet", attack.LatencyConfig{Enforce: attack.EnforceNone}},
		{"flood-none", attack.LatencyConfig{Enforce: attack.EnforceNone, Flood: true}},
		{"flood-hpe", attack.LatencyConfig{Enforce: attack.EnforceHPE, Flood: true}},
	}
	for _, cs := range cases {
		cs := cs
		b.Run(cs.name, func(b *testing.B) {
			var criticalMean time.Duration
			for i := 0; i < b.N; i++ {
				stats, err := h.MeasureLatency(cs.cfg)
				if err != nil {
					b.Fatal(err)
				}
				criticalMean = stats[0].Mean
			}
			b.ReportMetric(float64(criticalMean.Microseconds()), "critical_us")
		})
	}
}

// BenchmarkAblationBehaviouralOverhead (E2) measures the per-decision cost
// the situational layer adds on top of the identifier engine.
func BenchmarkAblationBehaviouralOverhead(b *testing.B) {
	h, err := attack.NewHarness()
	if err != nil {
		b.Fatal(err)
	}
	base := hpe.New(car.NodeDoorLocks, hpe.FixedMode(car.ModeNormal), hpe.DefaultCycleModel())
	if err := base.Install(h.Compiled); err != nil {
		b.Fatal(err)
	}
	f := canbus.MustDataFrame(car.IDDoorCommand, []byte{0x01})

	b.Run("hpe-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if base.Decide(canbus.Read, f) != canbus.Grant {
				b.Fatal("grant path broken")
			}
		}
	})
	b.Run("hpe+situational", func(b *testing.B) {
		wrapped := behaviour.New(base, func() time.Duration { return 0 })
		err := wrapped.AddRule(&behaviour.SituationalDeny{
			Label:     "no-unlock-in-motion",
			When:      behaviour.SituationFunc{Name: "in motion", Fn: func() bool { return false }},
			Direction: canbus.Read,
			IDs:       policy.SingleID(car.IDDoorCommand),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if wrapped.Decide(canbus.Read, f) != canbus.Grant {
				b.Fatal("grant path broken")
			}
		}
	})
	b.Run("hpe+rate", func(b *testing.B) {
		// The clock advances a full window per decision so the rule's
		// sliding window stays small and every frame is granted.
		var now time.Duration
		clock := func() time.Duration { now += 2 * time.Millisecond; return now }
		wrapped := behaviour.New(base, clock)
		err := wrapped.AddRule(&behaviour.RateLimit{
			Label:        "budget",
			Direction:    canbus.Read,
			IDs:          policy.SingleID(car.IDDoorCommand),
			MaxPerWindow: 4,
			Window:       time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if wrapped.Decide(canbus.Read, f) != canbus.Grant {
				b.Fatal("grant path broken")
			}
		}
	})
}

// BenchmarkFleetSweep (E3) scales the fleet engine across population sizes:
// every vehicle runs its own scheduler/bus/car/HPE stack plus a reduced
// Table I matrix, on a bounded worker pool with pooled per-worker arenas
// (the engine default). The metric is wall-clock vehicles per second, the
// fleet engine's throughput unit; BENCH_1.json snapshots it and CI gates
// regressions via cmd/benchgate.
func BenchmarkFleetSweep(b *testing.B) {
	scenarios := attack.Scenarios()[:3]
	for _, fleetSize := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("fleet=%d", fleetSize), func(b *testing.B) {
			var fr *engine.FleetReport
			for i := 0; i < b.N; i++ {
				var err error
				fr, err = engine.Run(engine.Config{
					Fleet:          fleetSize,
					RootSeed:       42,
					Scenarios:      scenarios,
					Regimes:        []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE},
					TrafficHorizon: 10 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if fr.Attacks[1].Summary.BlockRate() != 1.0 {
					b.Fatal("fleet sweep lost the HPE block-rate invariant")
				}
			}
			b.ReportMetric(float64(fleetSize)*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
			b.ReportMetric(fr.MeanUtilisation*100, "bus_util_%")
		})
	}
}

// loadCampaign parses and compiles a shipped campaign spec.
func loadCampaign(b *testing.B, path string) *campaign.Plan {
	b.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := campaign.Parse(string(raw))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := (campaign.Compiler{}).Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkCampaignSweep (E4/E6) sweeps the shipped campaign specs across a
// simulated fleet on the vehicle-major pooled engine. The lite spec matches
// BenchmarkFleetSweep's per-vehicle workload (3 scenarios × 2 regimes) and
// measures raw campaign throughput at fleet=1000; the quickstart spec
// expands to 210 distinct scenarios (258 cells) per vehicle, so its
// vehicles/s is lower by construction and cells/s is the comparable unit.
// quickstart/fleet=1000 is the headline BENCH_4 gate: the whole campaign,
// fleet-scale, one pass over the vehicles.
func BenchmarkCampaignSweep(b *testing.B) {
	cases := []struct {
		name    string
		path    string
		fleet   int
		backend string
	}{
		{"lite/fleet=1000", "examples/campaigns/lite.campaign", 1000, ""},
		{"quickstart/fleet=100", "examples/campaigns/quickstart.campaign", 100, ""},
		{"quickstart/fleet=1000", "examples/campaigns/quickstart.campaign", 1000, ""},
		// Backend ablation at campaign scale: decision-equivalent reports,
		// so only throughput may move between these rows.
		{"quickstart/fleet=100/backend=table", "examples/campaigns/quickstart.campaign", 100, "table"},
		{"quickstart/fleet=100/backend=expr", "examples/campaigns/quickstart.campaign", 100, "expr"},
		{"quickstart/fleet=100/backend=closure", "examples/campaigns/quickstart.campaign", 100, "closure"},
	}
	for _, tc := range cases {
		plan := loadCampaign(b, tc.path)
		b.Run(tc.name, func(b *testing.B) {
			var rep *campaign.CampaignReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = campaign.Sweep(plan, campaign.SweepConfig{
					Fleet:         tc.fleet,
					RootSeed:      42,
					PolicyBackend: tc.backend,
				})
				if err != nil {
					b.Fatal(err)
				}
				// The first family is always the Table I reference block;
				// under the HPE it must block every run.
				if rep.Families[0].Regimes[len(rep.Families[0].Regimes)-1].Summary.BlockRate() != 1.0 {
					b.Fatal("campaign sweep lost the HPE block-rate invariant")
				}
			}
			b.ReportMetric(float64(tc.fleet)*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
			b.ReportMetric(float64(rep.Cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			b.ReportMetric(float64(rep.ScenariosPerVehicle), "scenarios/vehicle")
		})
	}
}

// BenchmarkShardedSweep (E7) sweeps the quickstart campaign through the
// internal/shard partition-and-merge layer: the fleet index space split into
// contiguous ranges, each range an independent engine run, the merged report
// byte-identical to the unsharded sweep (global-index seeding keeps every
// trajectory pinned; the merge refolds vehicle reports in range order).
// shards=1 exercises the partition/merge machinery on a single range, so the
// delta versus BenchmarkCampaignSweep/quickstart/fleet=1000 is the layer's
// overhead; shards=4 measures the per-range fan-out. BENCH_7.json gates
// shards=4 — the row behind the million-vehicle quickstart path.
func BenchmarkShardedSweep(b *testing.B) {
	plan := loadCampaign(b, "examples/campaigns/quickstart.campaign")
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("quickstart/fleet=1000/shards=%d", shards), func(b *testing.B) {
			var rep *campaign.CampaignReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = campaign.Sweep(plan, campaign.SweepConfig{
					Fleet:    1000,
					RootSeed: 42,
					Shards:   shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Families[0].Regimes[len(rep.Families[0].Regimes)-1].Summary.BlockRate() != 1.0 {
					b.Fatal("sharded sweep lost the HPE block-rate invariant")
				}
			}
			b.ReportMetric(float64(1000)*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
			b.ReportMetric(float64(rep.Cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// wireBenchVehicles sweeps the quickstart campaign's engine configuration
// over a small fleet and returns the vehicle reports — the payload corpus
// the wire-codec benchmarks encode.
func wireBenchVehicles(b *testing.B, fleet int) []engine.VehicleReport {
	b.Helper()
	plan := loadCampaign(b, "examples/campaigns/quickstart.campaign")
	ecfg, err := campaign.EngineConfig(plan, campaign.SweepConfig{Fleet: fleet, RootSeed: 42})
	if err != nil {
		b.Fatal(err)
	}
	fr, err := engine.Run(ecfg)
	if err != nil {
		b.Fatal(err)
	}
	return fr.Vehicles
}

// BenchmarkShardWireEncode (E8) measures shard transport encoding: one full
// shard stream (header + per-vehicle frames + trailer) on the binary wire
// versus the PR 9 JSON document for the same vehicles. bytes/vehicle is the
// wire-size series BENCH_8.json snapshots — the binary wire's headline claim
// is >=5x smaller per vehicle than JSON.
func BenchmarkShardWireEncode(b *testing.B) {
	vs := wireBenchVehicles(b, 64)
	b.Run("wire=binary", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := wire.NewWriter(&buf)
			for j := range vs {
				if err := w.WriteVehicle(&vs[j]); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.WriteTrailer(wire.Trailer{Start: 0, Count: len(vs)}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len())/float64(len(vs)), "bytes/vehicle")
		b.ReportMetric(float64(len(vs))*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
	})
	b.Run("wire=json", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w := &shard.WireReport{Range: shard.Range{Start: 0, Count: len(vs)}, Vehicles: vs}
			if err := w.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len())/float64(len(vs)), "bytes/vehicle")
		b.ReportMetric(float64(len(vs))*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
	})
}

// BenchmarkShardWireDecode (E8) is the parent's side of the transport: drain
// one encoded shard stream back into vehicle reports, binary versus JSON.
func BenchmarkShardWireDecode(b *testing.B) {
	vs := wireBenchVehicles(b, 64)
	b.Run("wire=binary", func(b *testing.B) {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		for j := range vs {
			if err := w.WriteVehicle(&vs[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.WriteTrailer(wire.Trailer{Start: 0, Count: len(vs)}); err != nil {
			b.Fatal(err)
		}
		stream := buf.Bytes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := wire.NewReader(bytes.NewReader(stream))
			n := 0
			for {
				v, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if v.Index != n {
					b.Fatal("decode order broken")
				}
				n++
			}
			if n != len(vs) {
				b.Fatalf("decoded %d of %d vehicles", n, len(vs))
			}
		}
		b.ReportMetric(float64(len(stream))/float64(len(vs)), "bytes/vehicle")
		b.ReportMetric(float64(len(vs))*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
	})
	b.Run("wire=json", func(b *testing.B) {
		var buf bytes.Buffer
		w := &shard.WireReport{Range: shard.Range{Start: 0, Count: len(vs)}, Vehicles: vs}
		if err := w.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		doc := buf.Bytes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec, err := shard.DecodeWireReport(bytes.NewReader(doc))
			if err != nil {
				b.Fatal(err)
			}
			if len(dec.Vehicles) != len(vs) {
				b.Fatalf("decoded %d of %d vehicles", len(dec.Vehicles), len(vs))
			}
		}
		b.ReportMetric(float64(len(doc))/float64(len(vs)), "bytes/vehicle")
		b.ReportMetric(float64(len(vs))*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
	})
}

// benchShardSpawn mirrors carsim's subprocess spawn hook for the exec
// benchmark: re-invoke the built binary with -shard-range and stream its
// stdout — buffered document on the JSON wire (the PR 9 path), incremental
// frame decode on the binary wire.
func benchShardSpawn(bin, wireFmt string, fleet int) shard.Spawn {
	return func(r shard.Range) (shard.Stream, error) {
		cmd := exec.Command(bin,
			"-shard-range", r.String(),
			"-shard-wire", wireFmt,
			"-fleet", strconv.Itoa(fleet),
			"-seed", "42",
			"-campaign", "examples/campaigns/quickstart.campaign",
		)
		cmd.Stderr = os.Stderr
		if wireFmt == "json" {
			var out bytes.Buffer
			cmd.Stdout = &out
			if err := cmd.Run(); err != nil {
				return nil, fmt.Errorf("subprocess shard %s: %w", r, err)
			}
			w, err := shard.DecodeWireReport(&out)
			if err != nil {
				return nil, err
			}
			return w.Stream(), nil
		}
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("subprocess shard %s: %w", r, err)
		}
		return shard.NewWireStream(pipe, func() error {
			pipe.Close()
			if err := cmd.Wait(); err != nil {
				return fmt.Errorf("subprocess shard %s: %w", r, err)
			}
			return nil
		}), nil
	}
}

// BenchmarkShardedSweepExec (E7) measures the out-of-process fan-out: the
// quickstart sweep partitioned across real carsim subprocesses, per wire
// format and parallelism level. wire=json/parallel=1 is the PR 9 sequential
// path (buffered JSON documents); wire=binary rows stream frames through
// the varint codec, and parallel=4 overlaps the four children under the
// bounded fan-out. A separate top-level benchmark (not a ShardedSweep
// sub-case) so CI can gate the in-process rows at high -benchtime without
// paying subprocess spawn costs there.
func BenchmarkShardedSweepExec(b *testing.B) {
	bin := filepath.Join(b.TempDir(), "carsim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/carsim").CombinedOutput(); err != nil {
		b.Fatalf("go build ./cmd/carsim: %v\n%s", err, out)
	}
	plan := loadCampaign(b, "examples/campaigns/quickstart.campaign")
	const fleet = 1000
	cases := []struct {
		wire     string
		parallel int
	}{
		{"json", 1},
		{"binary", 1},
		{"binary", 4},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("quickstart/fleet=%d/shards=4/wire=%s/parallel=%d", fleet, tc.wire, tc.parallel)
		b.Run(name, func(b *testing.B) {
			var rep *campaign.CampaignReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = campaign.Sweep(plan, campaign.SweepConfig{
					Fleet:            fleet,
					RootSeed:         42,
					Shards:           4,
					SpawnShard:       benchShardSpawn(bin, tc.wire, fleet),
					ShardParallelism: tc.parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Families[0].Regimes[len(rep.Families[0].Regimes)-1].Summary.BlockRate() != 1.0 {
					b.Fatal("exec sharded sweep lost the HPE block-rate invariant")
				}
			}
			b.ReportMetric(float64(fleet)*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
			b.ReportMetric(float64(rep.Cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkRiskCalibrate (E5) measures the measurement half of the risk
// pipeline at fleet scale: sweep a synthesized campaign and calibrate the
// rubric DREAD scores against it. The INFO-2 slice synthesizes one
// payload-mutation family (3 scenarios × 2 regimes = 6 cells per vehicle) —
// the same lite-sized per-vehicle workload as BenchmarkCampaignSweep/lite —
// so vehicles/s is directly comparable and BENCH_3.json gates it (the
// acceptance floor is 15k vehicles/s).
func BenchmarkRiskCalibrate(b *testing.B) {
	out, err := risk.Compile(&risk.Spec{
		Model:   "connected-car",
		Seed:    42,
		Threats: []string{car.ThreatInfoStatusMod},
	})
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 1000
	var prof *risk.Profile
	var cells int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Sweep(out.Plan, campaign.SweepConfig{Fleet: fleet, RootSeed: 42})
		if err != nil {
			b.Fatal(err)
		}
		prof, err = risk.Calibrate(out.Analysis, rep)
		if err != nil {
			b.Fatal(err)
		}
		if len(prof.Threats) != 1 || len(prof.Threats[0].Families) == 0 {
			b.Fatal("calibration lost the synthesized family evidence")
		}
		cells = rep.Cells
	}
	b.ReportMetric(float64(fleet)*float64(b.N)/b.Elapsed().Seconds(), "vehicles/s")
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(prof.Threats[0].Residual, "residual_risk")
}

// BenchmarkCampaignCompile measures the OEM-side spec path: parse the
// quickstart DSL and expand it to its 210-scenario plan.
func BenchmarkCampaignCompile(b *testing.B) {
	raw, err := os.ReadFile("examples/campaigns/quickstart.campaign")
	if err != nil {
		b.Fatal(err)
	}
	src := string(raw)
	b.ReportAllocs()
	b.ResetTimer()
	var scenarios int
	for i := 0; i < b.N; i++ {
		spec, err := campaign.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := (campaign.Compiler{}).Compile(spec)
		if err != nil {
			b.Fatal(err)
		}
		scenarios = plan.ScenariosPerVehicle()
	}
	b.ReportMetric(float64(scenarios), "scenarios")
}

// BenchmarkBusUnderErrorInjection exercises retransmission economics: the
// same workload at increasing bus error rates.
func BenchmarkBusUnderErrorInjection(b *testing.B) {
	for _, rate := range []float64{0, 0.05, 0.15} {
		b.Run(fmt.Sprintf("err=%.2f", rate), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				sched := &sim.Scheduler{}
				bus := canbus.New(sched, canbus.Config{ErrorRate: rate, Seed: 42})
				tx := bus.MustAttach("tx")
				bus.MustAttach("rx")
				f := canbus.MustDataFrame(0x123, []byte{1, 2, 3, 4})
				for j := 0; j < 200; j++ {
					if err := tx.Send(f); err != nil {
						b.Fatal(err)
					}
				}
				sched.Run()
				util = bus.Utilisation()
			}
			b.ReportMetric(util*100, "bus_util_%")
		})
	}
}
