// Integration tests exercising the full stack across module boundaries:
// modelling -> policy -> signing -> provisioning -> bus traffic -> attack ->
// update, in single flows that no package-level test covers end to end.
package repro_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/behaviour"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hpe"
	"repro/internal/lifecycle"
	"repro/internal/mac"
	"repro/internal/policy"
	"repro/internal/report"
)

// testEntropy yields deterministic bytes for key generation.
type testEntropy byte

func (e testEntropy) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(e) + byte(i*3)
	}
	return len(p), nil
}

// TestFullProductLifecycle walks the entire Fig. 1 story in one flow:
// model, derive, sign, provision, verify legitimate operation, run an
// attack, and confirm the update path.
func TestFullProductLifecycle(t *testing.T) {
	// Design time: threat modelling and both countermeasure styles.
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Analysis.Threats) != 16 {
		t.Fatalf("threats = %d", len(model.Analysis.Threats))
	}

	// The derived policy round-trips through its own DSL.
	reparsed, err := policy.Parse(model.Policies.String())
	if err != nil {
		t.Fatalf("derived policy does not reparse: %v", err)
	}
	if len(reparsed.Rules) != len(model.Policies.Rules) {
		t.Fatal("derived policy lost rules through the DSL")
	}

	// Manufacturing: provision the device with the OEM key.
	oem, err := core.NewOEM(testEntropy(11))
	if err != nil {
		t.Fatal(err)
	}
	c := car.MustNew(car.Config{})
	dev, err := core.Provision(c.Bus(), c, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := oem.Issue(model.Policies)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ApplyUpdate(bundle); err != nil {
		t.Fatal(err)
	}

	// In the field: normal operation under enforcement.
	c.StartTraffic(time.Millisecond, 50*time.Millisecond, 65)
	c.Scheduler().Run()
	s := c.State()
	if s.ActualSpeed != 65 || s.DisplayedSpeed != 65 {
		t.Fatalf("telemetry broken under enforcement: %+v", s)
	}
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().DoorsLocked {
		t.Fatal("legitimate remote lock blocked")
	}

	// Crash: the fail-safe path must work under enforcement too.
	if err := c.TriggerCrash(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	s = c.State()
	if !s.FailSafeTriggered || s.Propulsion || s.DoorsLocked {
		t.Fatalf("crash response broken under enforcement: %+v", s)
	}

	// Attack in the field: compromised infotainment tries the EPS.
	c.SetMode(car.ModeNormal)
	info, _ := c.Node(car.NodeInfotainment)
	info.Controller().CompromiseFilters()
	if err := info.Send(canbus.MustDataFrame(car.IDEPSCommand, []byte{car.OpDisable})); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().EPSActive {
		t.Fatal("EPS attack succeeded under installed policy")
	}

	// Post-deployment: an update supersedes the installed version.
	model2, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 2)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := oem.Issue(model2.Policies)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ApplyUpdate(b2); err != nil {
		t.Fatal(err)
	}
	if dev.PolicyVersion() != 2 {
		t.Fatalf("version = %d", dev.PolicyVersion())
	}
}

// TestDefenceInDepthLayers stacks all three enforcement layers on one
// vehicle — software MAC, identifier HPE, situational rules — and checks
// each catches exactly the class it is responsible for.
func TestDefenceInDepthLayers(t *testing.T) {
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Layer 1: software MAC for application-level requests.
	srv := mac.NewServer()
	module, err := core.DeriveMACModule(model.Analysis, "car-base", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Load(module); err != nil {
		t.Fatal(err)
	}
	// The infotainment app asks its OS to transmit a tracking report: the
	// MAC denies before anything reaches the bus.
	d := srv.Check(core.MACContext(car.NodeInfotainment),
		core.MessageContext(car.IDTrackingReport), core.MACClassCAN, core.MACPermWrite)
	if d.Allowed {
		t.Fatal("MAC layer failed")
	}

	// Layer 2+3: hardware engine plus situational wrap on the car.
	h, err := attack.NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	c := car.MustNew(car.Config{})
	engines, err := hpe.Deploy(c.Bus(), h.Compiled, c, hpe.DefaultCycleModel(), car.AllNodes...)
	if err != nil {
		t.Fatal(err)
	}
	doors, _ := c.Node(car.NodeDoorLocks)
	guard := behaviour.New(engines[car.NodeDoorLocks], c.Scheduler().Now)
	if err := guard.AddRule(&behaviour.SituationalDeny{
		Label: "no-unlock-in-motion",
		When: behaviour.SituationFunc{Name: "in motion", Fn: func() bool {
			return c.State().ActualSpeed > 0
		}},
		Direction: canbus.Read,
		IDs:       policy.SingleID(car.IDDoorCommand),
	}); err != nil {
		t.Fatal(err)
	}
	doors.SetInlineFilter(guard)

	// Kernel compromise kills layer 1...
	srv.CompromiseKernel()
	if !srv.Check(core.MACContext(car.NodeInfotainment),
		core.MessageContext(car.IDTrackingReport), core.MACClassCAN, core.MACPermWrite).Allowed {
		t.Fatal("compromised kernel should bypass MAC")
	}
	// ...but layer 2 still blocks the resulting bus traffic.
	info, _ := c.Node(car.NodeInfotainment)
	info.Controller().CompromiseFilters()
	if err := info.Send(canbus.MustDataFrame(car.IDTrackingReport, []byte{0xEE})); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.State().ExfilReports != 0 {
		t.Fatal("HPE layer failed after kernel compromise")
	}

	// Layer 3 blocks credential abuse layer 2 must permit.
	if err := c.LockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	c.StartTraffic(time.Millisecond, 5*time.Millisecond, 50)
	c.Scheduler().Run()
	if err := c.UnlockDoors(); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if !c.State().DoorsLocked {
		t.Fatal("situational layer failed")
	}
}

// TestFleetRolloutAcrossRealDevices drives the OEM-side staged rollout
// against a fleet of fully provisioned simulated vehicles, including one
// provisioned with the wrong trust anchor: the canary stage catches it,
// the rollout aborts, and after the bad vehicle is fixed a re-run
// completes idempotently.
func TestFleetRolloutAcrossRealDevices(t *testing.T) {
	oem, err := core.NewOEM(testEntropy(21))
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.BuildModel(car.UseCase(), car.Threats(), "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := oem.Issue(model.Policies)
	if err != nil {
		t.Fatal(err)
	}

	const n = 10
	vehicles := make([]fleet.Vehicle, 0, n)
	devices := map[string]*core.Device{}
	cars := map[string]*car.Car{}
	provision := func(vid string, key []byte) {
		c := car.MustNew(car.Config{})
		dev, err := core.Provision(c.Bus(), c, key, car.AllNodes, car.AllModes)
		if err != nil {
			t.Fatal(err)
		}
		devices[vid] = dev
		cars[vid] = c
		vehicles = append(vehicles, core.FleetVehicle{VID: vid, Dev: dev})
	}
	wrongOEM, _ := core.NewOEM(testEntropy(99))
	for i := 0; i < n; i++ {
		vid := fmt.Sprintf("VIN-%03d", i)
		key := oem.PublicKey()
		if i == 0 {
			key = wrongOEM.PublicKey() // mis-provisioned vehicle, sorts first
		}
		provision(vid, key)
	}

	// First rollout: the canary (VIN-000) rejects the signature; abort.
	report, err := fleet.Rollout(vehicles, bundle, fleet.DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Aborted {
		t.Fatalf("mis-provisioned canary did not abort the rollout: %+v", report)
	}
	if report.Applied != 0 {
		t.Errorf("applied before abort = %d", report.Applied)
	}

	// Fix the bad vehicle (re-provision its trust anchor) and re-run: the
	// rollout completes and every device runs v1.
	cFixed := car.MustNew(car.Config{})
	devFixed, err := core.Provision(cFixed.Bus(), cFixed, oem.PublicKey(), car.AllNodes, car.AllModes)
	if err != nil {
		t.Fatal(err)
	}
	devices["VIN-000"] = devFixed
	vehicles[0] = core.FleetVehicle{VID: "VIN-000", Dev: devFixed}

	report, err = fleet.Rollout(vehicles, bundle, fleet.DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if report.Aborted || report.Applied != n {
		t.Fatalf("re-run report = %+v", report)
	}
	for vid, dev := range devices {
		if dev.PolicyVersion() != 1 {
			t.Errorf("%s runs policy v%d, want v1", vid, dev.PolicyVersion())
		}
	}

	// A second identical rollout is a clean no-op (idempotency).
	report, err = fleet.Rollout(vehicles, bundle, fleet.DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if report.Aborted || report.Failed != 0 || report.Applied != n {
		t.Fatalf("idempotent re-run report = %+v", report)
	}
}

// TestArtifactsRenderTogether smoke-checks that every report view renders
// from one shared analysis without panics and with consistent content.
func TestArtifactsRenderTogether(t *testing.T) {
	a, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	tbl := report.TableI(a, car.TableRowOrder)
	topo := report.Topology()
	lc := report.Lifecycle(lifecycle.Pipeline())
	cmp, err := lifecycle.Compare(lifecycle.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	comparison := report.Comparison(cmp, 2, 0.25)
	for i, out := range []string{tbl, topo, lc, comparison} {
		if strings.TrimSpace(out) == "" {
			t.Errorf("artifact %d rendered empty", i)
		}
	}
	// Cross-artifact consistency: every asset in Table I hosts a node shown
	// in the topology.
	for _, asset := range a.UseCase.Assets {
		if !strings.Contains(topo, asset.Node) {
			t.Errorf("asset node %s missing from topology", asset.Node)
		}
	}
}

// TestRiskPipelineEndToEnd drives `carsim -risk` on the shipped example
// threat-model spec exactly as a user would: build the binary, run it, and
// require a zero exit code plus a profile byte-identical to the checked-in
// golden file. The spec pins fleet and root seed, so the deterministic part
// of the output (everything before the wall-clock throughput line) must not
// move with worker count or pooling mode; a bad spec path must exit 1.
func TestRiskPipelineEndToEnd(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "carsim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/carsim").CombinedOutput(); err != nil {
		t.Fatalf("build carsim: %v\n%s", err, out)
	}
	const spec = "examples/threatmodels/connected-car.json"

	profile := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"-risk", spec}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("carsim -risk %v: %v\n%s", args, err, out)
		}
		body, _, found := strings.Cut(string(out), "\nthroughput:")
		if !found {
			t.Fatalf("no throughput line in output:\n%s", out)
		}
		return body
	}

	got := profile()
	want, err := os.ReadFile("testdata/risk_profile.golden")
	if err != nil {
		t.Fatalf("%v (regenerate with: go run ./cmd/carsim -risk %s, dropping the throughput line)", err, spec)
	}
	if got != strings.TrimSuffix(string(want), "\n") {
		t.Errorf("profile drifted from testdata/risk_profile.golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Same profile whatever the parallelism or pooling mode — the
	// determinism contract enforced through the real binary.
	if alt := profile("-workers", "1", "-reuse=false"); alt != got {
		t.Errorf("profile differs for -workers 1 -reuse=false:\n--- default ---\n%s\n--- alt ---\n%s", got, alt)
	}

	// The scenario matrix dump must work and stay sweep-free.
	if out, err := exec.Command(bin, "-risk", spec, "-list-scenarios").CombinedOutput(); err != nil {
		t.Errorf("-list-scenarios failed: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "risk-connected-car") {
		t.Errorf("-list-scenarios output missing campaign name:\n%s", out)
	}

	// Failure path: a missing spec exits 1, not 0 and not a panic.
	err = exec.Command(bin, "-risk", "no-such-spec.json").Run()
	var exit *exec.ExitError
	if err == nil {
		t.Error("missing spec exited 0")
	} else if !errors.As(err, &exit) || exit.ExitCode() != 1 {
		t.Errorf("missing spec: %v, want exit code 1", err)
	}
}

// TestChaosSupervisorEndToEnd drives carsim's fault-injection surface the
// way the CI chaos smoke does: a recoverable seeded chaos sweep exits 0 with
// a health line and a payload byte-identical to the fault-free run, and an
// unrecoverable plan exits 3 after flushing the partial report.
func TestChaosSupervisorEndToEnd(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "carsim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/carsim").CombinedOutput(); err != nil {
		t.Fatalf("build carsim: %v\n%s", err, out)
	}
	base := []string{"-campaign", "examples/campaigns/quickstart.campaign", "-fleet", "12", "-seed", "42"}

	payload := func(out string) string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "health: ") || strings.HasPrefix(line, "throughput:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}

	clean, err := exec.Command(bin, base...).CombinedOutput()
	if err != nil {
		t.Fatalf("fault-free run: %v\n%s", err, clean)
	}

	chaotic, err := exec.Command(bin, append(base,
		"-chaos", "seed=7,panic=0.02,corrupt=0.02,deadline=0.01,crash=0.005")...).CombinedOutput()
	if err != nil {
		t.Fatalf("recoverable chaos run failed: %v\n%s", err, chaotic)
	}
	if !strings.Contains(string(chaotic), "\nhealth: ") {
		t.Errorf("chaos run printed no health line:\n%s", chaotic)
	}
	if payload(string(chaotic)) != payload(string(clean)) {
		t.Errorf("chaos payload diverged from fault-free run:\n--- clean ---\n%s\n--- chaos ---\n%s", clean, chaotic)
	}

	// Unrecoverable: every attempt faults; carsim must flush the partial
	// report and exit 3 (distinct from usage/spec errors at 1).
	out, err := exec.Command(bin, append(base, "-chaos", "seed=3,panic=1,persist=99")...).CombinedOutput()
	var exit *exec.ExitError
	if err == nil {
		t.Fatalf("unrecoverable chaos run exited 0:\n%s", out)
	} else if !errors.As(err, &exit) || exit.ExitCode() != 3 {
		t.Fatalf("unrecoverable chaos run: %v, want exit code 3\n%s", err, out)
	}
	if !strings.Contains(string(out), "unrecoverable=") {
		t.Errorf("partial report lacks health counters:\n%s", out)
	}

	// A malformed spec is a usage error, not a sweep failure: exit 1.
	if err := exec.Command(bin, append(base, "-chaos", "panic=nope")...).Run(); err == nil {
		t.Error("bad -chaos spec exited 0")
	} else if !errors.As(err, &exit) || exit.ExitCode() != 1 {
		t.Errorf("bad -chaos spec: %v, want exit code 1", err)
	}
}

// TestDeterministicReplay: two identical simulations produce identical
// traces — the property every experiment in EXPERIMENTS.md relies on.
func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		c := car.MustNew(car.Config{ErrorRate: 0.05, Seed: 99})
		var trace []string
		c.Bus().SetTracer(func(e canbus.TraceEvent) { trace = append(trace, e.String()) })
		c.StartTraffic(time.Millisecond, 30*time.Millisecond, 42)
		if err := c.LockDoors(); err != nil {
			t.Fatal(err)
		}
		c.Scheduler().Run()
		return trace
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no trace events")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}
