package chaos

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestCellFaultDeterministic: fault decisions are a pure function of the
// plan and the cell coordinates — the property every Health-determinism
// guarantee upstream rests on.
func TestCellFaultDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, Panic: 0.1, Corrupt: 0.1, Deadline: 0.1, Crash: 0.05}
	for v := 0; v < 50; v++ {
		for g := 0; g < 3; g++ {
			for s := 0; s < 4; s++ {
				k1, ok1 := p.CellFault(v, g, 0, s, 0)
				k2, ok2 := p.CellFault(v, g, 0, s, 0)
				if k1 != k2 || ok1 != ok2 {
					t.Fatalf("CellFault(%d,%d,0,%d,0) not deterministic: (%v,%v) vs (%v,%v)",
						v, g, s, k1, ok1, k2, ok2)
				}
			}
			c1 := p.CrashFault(v, g, 0)
			c2 := p.CrashFault(v, g, 0)
			if c1 != c2 {
				t.Fatalf("CrashFault(%d,%d,0) not deterministic", v, g)
			}
		}
	}
}

// TestCellFaultRates: injected fault frequency tracks the configured rate
// (loose bands — the roll is uniform over 2^53 buckets, not a statistics
// final), and distinct kinds land at independent coordinates.
func TestCellFaultRates(t *testing.T) {
	p := &Plan{Seed: 7, Panic: 0.2}
	hits := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if k, ok := p.CellFault(i, 0, 0, 0, 0); ok {
			if k != KindPanic {
				t.Fatalf("only panic armed, got kind %v", k)
			}
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.2) > 0.03 {
		t.Errorf("panic rate %.3f, want ~0.2", got)
	}
}

// TestPersistSemantics: persist=k faults a coordinate's first k attempts and
// then stops, so a supervisor with enough retries always recovers; the
// default persist=1 means any single retry clears an injected fault.
func TestPersistSemantics(t *testing.T) {
	p := &Plan{Seed: 3, Panic: 1, Persist: 3}
	for attempt := 0; attempt < 3; attempt++ {
		if _, ok := p.CellFault(0, 0, 0, 0, attempt); !ok {
			t.Fatalf("attempt %d: fault did not persist (persist=3)", attempt)
		}
	}
	if _, ok := p.CellFault(0, 0, 0, 0, 3); ok {
		t.Fatal("attempt 3 still faulted with persist=3")
	}
	def := &Plan{Seed: 3, Panic: 1}
	if _, ok := def.CellFault(0, 0, 0, 0, 0); !ok {
		t.Fatal("default persist: first attempt must fault at rate 1")
	}
	if _, ok := def.CellFault(0, 0, 0, 0, 1); ok {
		t.Fatal("default persist: retry must clear the fault")
	}
}

// TestNilPlanInert: a nil plan injects nothing and reports inactive — the
// supervisor's no-chaos fast path never branches on it.
func TestNilPlanInert(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Error("nil plan reports active")
	}
	if _, ok := p.CellFault(1, 2, 3, 4, 0); ok {
		t.Error("nil plan injected a cell fault")
	}
	if p.CrashFault(1, 2, 0) {
		t.Error("nil plan injected a crash")
	}
	if s := p.String(); s != "off" {
		t.Errorf("nil plan String() = %q, want off", s)
	}
}

// TestParseRoundTrip: Parse(p.String()) reproduces the plan, the contract
// that lets CI scripts pass rendered specs back through -chaos.
func TestParseRoundTrip(t *testing.T) {
	plans := []*Plan{
		{Seed: 7, Panic: 0.01},
		{Seed: 42, Panic: 0.02, Corrupt: 0.005, Deadline: 0.002, Crash: 0.001},
		{Seed: 1, Deadline: 0.5, Persist: 4},
	}
	for _, p := range plans {
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if *got != *p {
			t.Errorf("round trip %q: got %+v, want %+v", p.String(), got, p)
		}
	}
	for _, off := range []string{"", "off"} {
		p, err := Parse(off)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = (%v, %v), want (nil, nil)", off, p, err)
		}
	}
}

// TestParseRejectsBadSpecs: malformed specs fail loudly instead of silently
// disarming the injection they were meant to configure.
func TestParseRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{
		"panic",           // no value
		"panic=x",         // not a number
		"panic=1.5",       // rate out of range
		"panic=-0.1",      // negative rate
		"persist=0",       // persist below 1
		"bogus=0.5",       // unknown key
		"seed=zz",         // bad seed
		"panic=0.1,,",     // empty component
		"panic=0.1 crash", // missing separator
	} {
		if p, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted: %+v", bad, p)
		}
	}
}

// TestInjectedErrorsIdentifyCoordinates: the panic and crash payloads name
// their injection site, so a quarantine record is debuggable on its own.
func TestInjectedErrorsIdentifyCoordinates(t *testing.T) {
	ip := &InjectedPanic{Vehicle: 3, Group: 1, Regime: 2, Scenario: 7, Attempt: 1}
	for _, frag := range []string{"vehicle 3", "group 1", "regime 2", "scenario 7", "attempt 1"} {
		if !strings.Contains(ip.String(), frag) {
			t.Errorf("InjectedPanic %q missing %q", ip, frag)
		}
	}
	ic := &InjectedCrash{Vehicle: 5, Group: 0, Attempt: 2}
	for _, frag := range []string{"vehicle 5", "group 0", "attempt 2"} {
		if !strings.Contains(ic.String(), frag) {
			t.Errorf("InjectedCrash %q missing %q", ic, frag)
		}
	}
	if !errors.Is(ErrDeadline, ErrDeadline) {
		t.Fatal("ErrDeadline lost identity")
	}
}

// TestRollRange: rolls land in [0, 1) and differ across salts and
// coordinates (the kinds must not fault in lockstep).
func TestRollRange(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		r := Roll(9, 0x51, i, 0, 0)
		if r < 0 || r >= 1 {
			t.Fatalf("Roll out of range: %v", r)
		}
		seen[r] = true
	}
	if len(seen) < 95 {
		t.Errorf("only %d distinct rolls in 100 — mixer too weak", len(seen))
	}
	if Roll(9, 0x51, 1, 2, 3) == Roll(9, 0x52, 1, 2, 3) {
		t.Error("salts collide")
	}
}
