// Package chaos is the deterministic fault-injection layer of the fleet
// engine's sweep supervisor: a seeded Plan decides, as a pure function of
// (plan seed, vehicle, group, regime, scenario, attempt), whether a fault
// fires at that coordinate and of which kind. Decisions derive through the
// same SplitMix64 step as vehicle seeds, so a chaos run inherits the stack's
// determinism contract wholesale — the same Plan against the same sweep
// config injects the same faults in the same places whatever the worker
// count or arena pooling mode, which is what makes a Health section
// byte-stable and a chaos smoke diffable in CI.
//
// The package only decides; it never touches the simulation. The engine's
// supervisor asks CellFault/CrashFault at each execution point and performs
// the actual sabotage (panicking the cell, corrupting the restored arena,
// reporting a deadline overrun, crashing the vehicle visit) itself, then
// recovers through its normal containment ladder. Persist bounds how many
// consecutive attempts of one coordinate keep faulting: Persist=1 faults
// only the first attempt (every retry succeeds — the property-test shape),
// a Persist above the supervisor's retry budget makes the coordinate
// unrecoverable.
package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind is the class of an injected fault.
type Kind uint8

// Fault kinds, in the priority order CellFault resolves collisions
// (a coordinate whose rolls select several kinds reports the first).
const (
	// KindPanic panics the cell mid-execution (a crashing worker cell).
	KindPanic Kind = iota + 1
	// KindCorrupt flips arena state after a checkpoint restore, so the
	// supervisor's integrity checksum must catch it.
	KindCorrupt
	// KindDeadline reports the cell as having overrun its step budget.
	KindDeadline
	// KindCrash kills the whole vehicle visit (a simulated worker/shard
	// crash), recovered at vehicle scope rather than cell scope.
	KindCrash
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindCorrupt:
		return "corrupt"
	case KindDeadline:
		return "deadline"
	case KindCrash:
		return "crash"
	default:
		return "invalid"
	}
}

// ErrDeadline is the injected (or detected) cell deadline overrun the
// supervisor quarantines and retries.
var ErrDeadline = errors.New("chaos: cell deadline overrun")

// InjectedPanic is the value a chaos-injected cell panic carries, so a
// recovered panic is attributable to the plan rather than a real bug.
type InjectedPanic struct {
	Vehicle, Group, Regime, Scenario, Attempt int
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("chaos: injected panic at vehicle %d group %d regime %d scenario %d attempt %d",
		p.Vehicle, p.Group, p.Regime, p.Scenario, p.Attempt)
}

// InjectedCrash is the value a chaos-injected vehicle crash carries.
type InjectedCrash struct {
	Vehicle, Group, Attempt int
}

func (c *InjectedCrash) String() string {
	return fmt.Sprintf("chaos: injected crash at vehicle %d group %d attempt %d", c.Vehicle, c.Group, c.Attempt)
}

// Plan is a deterministic fault plan: per-kind rates in [0, 1] rolled
// independently at every coordinate. The zero rate disables a kind; a nil
// *Plan disables the layer entirely.
type Plan struct {
	// Seed feeds every roll; two plans with different seeds fault disjoint
	// coordinate sets even at equal rates.
	Seed uint64
	// Panic, Corrupt, Deadline and Crash are per-kind fault probabilities.
	Panic, Corrupt, Deadline, Crash float64
	// Persist is how many consecutive attempts of one coordinate keep
	// faulting (default 1: only the first attempt faults, every retry
	// succeeds). Set it above the supervisor's retry budget to make a
	// faulted coordinate unrecoverable.
	Persist int
}

// Per-kind salts decorrelate the rolls of one coordinate.
const (
	saltPanic uint64 = iota + 0x51
	saltCorrupt
	saltDeadline
	saltCrash
)

// mix is one SplitMix64 finalisation step folding v into h — the same
// generator the per-vehicle seed derivation uses, so chaos coordinates
// decorrelate with identical quality.
func mix(h, v uint64) uint64 {
	z := h + (v+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Roll derives a deterministic uniform value in [0, 1) from a seed, a salt
// and integer coordinates. Exported because the supervisor's verification
// sampler shares the generator (same determinism contract, different salt
// space).
func Roll(seed, salt uint64, coords ...int) float64 {
	h := mix(seed, salt)
	for _, c := range coords {
		h = mix(h, uint64(c))
	}
	return float64(h>>11) / (1 << 53)
}

func (p *Plan) persist() int {
	if p.Persist <= 0 {
		return 1
	}
	return p.Persist
}

// CellFault reports whether a fault fires at one cell-attempt coordinate and
// which kind. Kinds roll independently; collisions resolve in Kind order so
// the decision stays a pure function of the coordinate.
func (p *Plan) CellFault(vehicle, group, regime, scenario, attempt int) (Kind, bool) {
	if p == nil || attempt >= p.persist() {
		return 0, false
	}
	if p.Panic > 0 && Roll(p.Seed, saltPanic, vehicle, group, regime, scenario) < p.Panic {
		return KindPanic, true
	}
	if p.Corrupt > 0 && Roll(p.Seed, saltCorrupt, vehicle, group, regime, scenario) < p.Corrupt {
		return KindCorrupt, true
	}
	if p.Deadline > 0 && Roll(p.Seed, saltDeadline, vehicle, group, regime, scenario) < p.Deadline {
		return KindDeadline, true
	}
	return 0, false
}

// CrashFault reports whether the whole vehicle visit crashes when it reaches
// the given group on the given visit attempt.
func (p *Plan) CrashFault(vehicle, group, attempt int) bool {
	if p == nil || attempt >= p.persist() {
		return false
	}
	return p.Crash > 0 && Roll(p.Seed, saltCrash, vehicle, group) < p.Crash
}

// Active reports whether the plan can fire at all.
func (p *Plan) Active() bool {
	return p != nil && (p.Panic > 0 || p.Corrupt > 0 || p.Deadline > 0 || p.Crash > 0)
}

// String renders the plan in the spec form Parse accepts (round-trip
// stable), e.g. "seed=7,panic=0.02,corrupt=0.01,persist=2".
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	rate := func(name string, v float64) {
		if v > 0 {
			fmt.Fprintf(&b, ",%s=%s", name, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	rate("panic", p.Panic)
	rate("corrupt", p.Corrupt)
	rate("deadline", p.Deadline)
	rate("crash", p.Crash)
	if p.Persist > 1 {
		fmt.Fprintf(&b, ",persist=%d", p.Persist)
	}
	return b.String()
}

// Parse builds a Plan from its comma-separated key=value spec, the carsim
// -chaos flag format: keys seed, panic, corrupt, deadline, crash, persist.
// An empty spec or "off" returns a nil plan (chaos disabled).
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return nil, nil
	}
	p := &Plan{}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad field %q (want key=value)", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "persist":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("chaos: bad persist %q (want integer >= 1)", val)
			}
			p.Persist = n
		case "panic", "corrupt", "deadline", "crash":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("chaos: bad %s rate %q (want [0, 1])", key, val)
			}
			switch key {
			case "panic":
				p.Panic = r
			case "corrupt":
				p.Corrupt = r
			case "deadline":
				p.Deadline = r
			case "crash":
				p.Crash = r
			}
		default:
			return nil, fmt.Errorf("chaos: unknown field %q (want seed, panic, corrupt, deadline, crash or persist)", key)
		}
	}
	return p, nil
}
