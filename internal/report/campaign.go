package report

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
)

// CampaignView renders a campaign sweep as a per-family × per-regime table:
// the campaign analogue of the attack-results view, with the stage counters
// multi-stage families produce. The rendering inherits CampaignReport's
// determinism (no worker counts, no wall-clock values).
func CampaignView(r *campaign.CampaignReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign %q v%d (seed %#x) — fleet %d, root seed %#x\n",
		r.Campaign, r.Version, r.Seed, r.Fleet, r.RootSeed)
	fmt.Fprintf(&b, "%d scenarios/vehicle, %d cells swept; live: delivered=%d errors=%d mean-util=%.4f%%\n",
		r.ScenariosPerVehicle, r.Cells, r.FramesDelivered, r.BusErrors, r.MeanUtilisation*100)
	if r.HealthEnabled || !r.Health.IsZero() {
		fmt.Fprintf(&b, "health: %s\n", r.Health)
	}
	b.WriteByte('\n')

	t := NewTable(
		Column{Header: "Family"},
		Column{Header: "Kind"},
		Column{Header: "Scen", Align: Right},
		Column{Header: "Regime"},
		Column{Header: "Runs", Align: Right},
		Column{Header: "Succeeded", Align: Right},
		Column{Header: "Blocked", Align: Right},
		Column{Header: "FalsePos", Align: Right},
		Column{Header: "Success", Align: Right},
		Column{Header: "Block", Align: Right},
		Column{Header: "Stages", Align: Right},
		Column{Header: "Halted", Align: Right},
	)
	addRows := func(name, kind string, scen int, regimes []attack.RegimeSummary) {
		for i, rs := range regimes {
			family, k, sc := "", "", ""
			if i == 0 {
				family, k, sc = name, kind, fmt.Sprint(scen)
			}
			s := rs.Summary
			t.AddRow(family, k, sc, rs.Regime.String(),
				fmt.Sprint(s.Runs),
				fmt.Sprint(s.Succeeded),
				fmt.Sprint(s.Blocked),
				fmt.Sprint(s.FalsePositives),
				fmt.Sprintf("%.1f%%", s.SuccessRate()*100),
				fmt.Sprintf("%.1f%%", s.BlockRate()*100),
				stageCell(s.StageRuns),
				stageCell(s.StagesHalted),
			)
		}
	}
	for i := range r.Families {
		f := &r.Families[i]
		addRows(f.Name, f.Kind, f.Scenarios, f.Regimes)
		if i < len(r.Families)-1 {
			t.AddSeparator()
		}
	}
	t.AddSeparator()
	addRows("TOTAL", "", r.ScenariosPerVehicle, r.Totals)
	b.WriteString(t.String())
	return b.String()
}

// CampaignDetailView renders the campaign table followed by a verbose
// per-family block: one attack.Summary.Verbose line per regime, carrying the
// stage counters the legacy one-line Summary rendering omits. Deterministic
// like CampaignView — the detail block adds columns, never run metadata.
func CampaignDetailView(r *campaign.CampaignReport) string {
	var b strings.Builder
	b.WriteString(CampaignView(r))
	b.WriteString("\ndetail:\n")
	for i := range r.Families {
		f := &r.Families[i]
		fmt.Fprintf(&b, "family %s (%s):\n", f.Name, f.Kind)
		for _, rs := range f.Regimes {
			fmt.Fprintf(&b, "  %-9s %s\n", rs.Regime, rs.Summary.Verbose())
		}
	}
	b.WriteString("totals:\n")
	for _, rs := range r.Totals {
		fmt.Fprintf(&b, "  %-9s %s\n", rs.Regime, rs.Summary.Verbose())
	}
	return b.String()
}

// stageCell renders a stage counter, blank when the family is single-stage.
func stageCell(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprint(n)
}
