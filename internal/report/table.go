// Package report renders the reproduction's tables and figure views as
// plain text: the generic column-aligned table writer plus specific views
// for Table I, the Fig. 1 life-cycle, the Fig. 2 topology, the Fig. 4
// policy engine and attack-harness results.
package report

import (
	"fmt"
	"strings"
)

// Align selects column alignment.
type Align uint8

// Alignments.
const (
	// Left-aligned column.
	Left Align = iota + 1
	// Right-aligned column.
	Right
	// Center-aligned column.
	Center
)

// Column describes one table column.
type Column struct {
	// Header is the column title.
	Header string
	// Align selects cell alignment (Left if zero).
	Align Align
}

// Table is a simple column-aligned text table. The zero value is unusable;
// construct with NewTable.
type Table struct {
	cols []Column
	rows [][]string
	seps map[int]bool // separator rows after the given row index
}

// NewTable creates a table with the given columns.
func NewTable(cols ...Column) *Table {
	return &Table{cols: cols, seps: map[int]bool{}}
}

// AddRow appends a row; missing cells render empty, extra cells are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.cols))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator inserts a horizontal rule after the last added row.
func (t *Table) AddSeparator() {
	t.seps[len(t.rows)-1] = true
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.rows) }

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.cols))
	for i, c := range t.cols {
		w[i] = len(c.Header)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

func pad(s string, width int, a Align) string {
	gap := width - len(s)
	if gap <= 0 {
		return s
	}
	switch a {
	case Right:
		return strings.Repeat(" ", gap) + s
	case Center:
		l := gap / 2
		return strings.Repeat(" ", l) + s + strings.Repeat(" ", gap-l)
	default:
		return s + strings.Repeat(" ", gap)
	}
}

// String renders the table.
func (t *Table) String() string {
	w := t.widths()
	var b strings.Builder
	rule := func() {
		for i := range t.cols {
			b.WriteByte('+')
			b.WriteString(strings.Repeat("-", w[i]+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(cells []string, forceAlign Align) {
		for i := range t.cols {
			a := t.cols[i].Align
			if a == 0 {
				a = Left
			}
			if forceAlign != 0 {
				a = forceAlign
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %s ", pad(cell, w[i], a))
		}
		b.WriteString("|\n")
	}
	rule()
	headers := make([]string, len(t.cols))
	for i, c := range t.cols {
		headers[i] = c.Header
	}
	writeRow(headers, Center)
	rule()
	for i, row := range t.rows {
		writeRow(row, 0)
		if t.seps[i] && i != len(t.rows)-1 {
			rule()
		}
	}
	rule()
	return b.String()
}
