package report

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/car"
	"repro/internal/hpe"
	"repro/internal/lifecycle"
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

func TestTableBasics(t *testing.T) {
	tab := NewTable(
		Column{Header: "name"},
		Column{Header: "value", Align: Right},
	)
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// rule, header, rule, two rows, rule.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
	if !strings.Contains(out, "| alpha     |") {
		t.Errorf("left alignment wrong:\n%s", out)
	}
	if !strings.Contains(out, "|     1 |") {
		t.Errorf("right alignment wrong:\n%s", out)
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tab := NewTable(Column{Header: "a"}, Column{Header: "b"})
	tab.AddRow("only")
	tab.AddRow("x", "y", "dropped")
	if tab.RowCount() != 2 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
	out := tab.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestTableSeparators(t *testing.T) {
	tab := NewTable(Column{Header: "x"})
	tab.AddRow("1")
	tab.AddSeparator()
	tab.AddRow("2")
	out := tab.String()
	if got := strings.Count(out, "+"); got != 2*5 {
		// 5 rules (top, under header, mid separator, bottom... actually 4
		// rules x 2 plus signs each for a 1-column table) — just check the
		// separator increased rule count.
		t.Logf("plus count = %d\n%s", got, out)
	}
	if strings.Count(out, "-") == 0 {
		t.Fatal("no rules rendered")
	}
}

func analysis(t *testing.T) *threatmodel.Analysis {
	t.Helper()
	a, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTableIRendering(t *testing.T) {
	out := TableI(analysis(t), car.TableRowOrder)
	// All sixteen rows plus the asset names and paper-exact cells.
	for _, frag := range []string{
		"EV-ECU", "EPS", "Engine", "3G/4G/WiFi", "Infotainment",
		"Door locks", "Safety Critical",
		"STIDE", "8,5,4,6,4 (5.4)", "6,6,7,8,6 (6.6)", "9,4,5,9,4 (6.2)",
		"STRIDE", "Policy", "RW",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table I rendering missing %q", frag)
		}
	}
	// One data row per threat.
	if rows := strings.Count(out, "| "); rows == 0 {
		t.Fatal("no rows rendered")
	}
}

func TestTableIRowOrderRespected(t *testing.T) {
	out := TableI(analysis(t), car.TableRowOrder)
	first := strings.Index(out, "Spoofed data over CANbus")
	last := strings.Index(out, "Disable alarm and locking")
	if first < 0 || last < 0 || first > last {
		t.Error("row order not respected")
	}
}

func TestLifecycleRendering(t *testing.T) {
	out := Lifecycle(lifecycle.Pipeline())
	for _, frag := range []string{"Risk assessment", "Device security model",
		"[artifact]", "[gate]", "Secure application testing"} {
		if !strings.Contains(out, frag) {
			t.Errorf("lifecycle rendering missing %q", frag)
		}
	}
}

func TestComparisonRendering(t *testing.T) {
	c, err := lifecycle.Compare(lifecycle.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	out := Comparison(c, 1, 0.5)
	for _, frag := range []string{"guideline path", "policy path", "speed-up", "exposure"} {
		if !strings.Contains(out, frag) {
			t.Errorf("comparison rendering missing %q", frag)
		}
	}
}

func TestTopologyRendering(t *testing.T) {
	out := Topology()
	for _, n := range car.AllNodes {
		if !strings.Contains(out, n) {
			t.Errorf("topology missing node %s", n)
		}
	}
	if !strings.Contains(out, "0x010") || !strings.Contains(out, "CAN-H") {
		t.Errorf("topology rendering incomplete:\n%s", out)
	}
}

func TestNodeArchitectureRendering(t *testing.T) {
	out := NodeArchitecture("EV-ECU")
	for _, frag := range []string{"Micro-controller", "CAN Controller", "CAN Transceiver"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig. 3 rendering missing %q", frag)
		}
	}
}

func TestHPEViewRendering(t *testing.T) {
	a := analysis(t)
	set, err := threatmodel.DerivePolicies(a, "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := policy.Compile(set, policy.CompileOptions{
		Subjects: car.AllNodes, Modes: car.AllModes,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := hpe.New(car.NodeEVECU, hpe.FixedMode(car.ModeNormal), hpe.DefaultCycleModel())
	if err := eng.Install(compiled); err != nil {
		t.Fatal(err)
	}
	out := HPEView(eng, compiled, car.ModeNormal)
	for _, frag := range []string{"Decision Block", "approved reading list",
		"approved writing list", "0x010", "cycle cost"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig. 4 rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestAttackResultsRendering(t *testing.T) {
	results := []attack.Result{
		{ThreatID: "T1", Name: "attack one", Enforcement: attack.EnforceNone,
			Placement: attack.Inside, Succeeded: true, LegitimateOK: true},
		{ThreatID: "T1", Name: "attack one", Enforcement: attack.EnforceHPE,
			Placement: attack.Inside, Succeeded: false, LegitimateOK: true},
		{ThreatID: "T2", Name: "attack two", Enforcement: attack.EnforceNone,
			Placement: attack.Outside, Succeeded: true, LegitimateOK: false},
	}
	out := AttackResults(results)
	for _, frag := range []string{"T1", "T2", "SUCCESS", "blocked", "!fp", "inside", "outside"} {
		if !strings.Contains(out, frag) {
			t.Errorf("attack results missing %q:\n%s", frag, out)
		}
	}
}
