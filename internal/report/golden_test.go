package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/risk"
)

// -update regenerates the golden files from the current rendering:
//
//	go test ./internal/report -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares a rendering against its checked-in golden file. The
// inputs are deterministic sweeps, so the comparison is full-table and
// byte-exact — a rendering change (column, width, rounding) must show up as
// a reviewed golden diff, not silently.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s--- want ---\n%s(regenerate with -update if the change is intended)",
			name, got, want)
	}
}

// goldenCampaignReport sweeps a fixed campaign covering all three generator
// kinds, stage counters and a regime override — every column CampaignView
// can populate.
func goldenCampaignReport(t *testing.T) *campaign.CampaignReport {
	t.Helper()
	plan, err := (campaign.Compiler{}).Compile(campaign.MustParse(`
campaign "golden" version 3 {
  seed 11
  regimes none, hpe
  mutate "spot" { pick 2 }
  flood "burst" {
    regimes hpe, behaviour
    id 0x300
    payload EE01
    team Telematics
    rates 300us
    frames 30
    threshold 9
  }
  staged "chain" {
    attackers Infotainment
    goal firmware-modified
    stage "inject" { inject 0x10 01 x 2 }
    stage "persist" { proceed propulsion-off inject 0x600 DEAD }
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Sweep(plan, campaign.SweepConfig{Fleet: 4, RootSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestGoldenCampaignView pins the full CampaignView table against testdata.
func TestGoldenCampaignView(t *testing.T) {
	checkGolden(t, "campaign_view.golden", CampaignView(goldenCampaignReport(t)))
}

// TestGoldenRiskView pins the full RiskView rendering — ranked residual
// table plus per-family evidence — against testdata, through the whole
// synthesize → sweep → calibrate pipeline on a three-threat model slice.
func TestGoldenRiskView(t *testing.T) {
	out, err := risk.Run(&risk.Spec{
		Model:    "connected-car",
		Seed:     42,
		RootSeed: 42,
		Threats:  []string{"CONN-1", "EVECU-3", "INFO-2"},
	}, risk.RunConfig{Fleet: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "risk_view.golden", RiskView(out.Profile))
}
