package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
	"repro/internal/lifecycle"
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

// TableI renders the reproduced Table I: per threat row the asset, the car
// mode applicability columns, entry points, description, computed STRIDE
// string, computed DREAD tuple with average, and the derived policy letter.
// rowOrder gives the threat IDs in presentation order (car.TableRowOrder for
// the paper's layout); unknown IDs are skipped.
func TableI(a *threatmodel.Analysis, rowOrder []string) string {
	t := NewTable(
		Column{Header: "Critical Asset"},
		Column{Header: "Nor", Align: Center},
		Column{Header: "Dia", Align: Center},
		Column{Header: "FS", Align: Center},
		Column{Header: "Entry Points"},
		Column{Header: "Potential Threat"},
		Column{Header: "STRIDE"},
		Column{Header: "DREAD (Avg.)", Align: Right},
		Column{Header: "Policy", Align: Center},
	)
	mark := func(rt threatmodel.RatedThreat, m policy.Mode) string {
		for _, tm := range rt.Modes {
			if tm == m {
				return "*"
			}
		}
		return ""
	}
	lastAsset := ""
	for _, id := range rowOrder {
		rt, ok := a.Threat(id)
		if !ok {
			continue
		}
		asset := rt.Asset
		if asset == lastAsset {
			asset = ""
		} else {
			if lastAsset != "" {
				t.AddSeparator()
			}
			lastAsset = rt.Asset
		}
		t.AddRow(
			asset,
			mark(rt, car.ModeNormal),
			mark(rt, car.ModeRemoteDiag),
			mark(rt, car.ModeFailSafe),
			strings.Join(rt.EntryPoints, "; "),
			rt.Description,
			rt.Stride.String(),
			rt.Score.String(),
			rt.Policy.String(),
		)
	}
	return t.String()
}

// Lifecycle renders the Fig. 1 pipeline as a step-wise flow.
func Lifecycle(steps []lifecycle.Step) string {
	var b strings.Builder
	b.WriteString("Secure product development life-cycle (Fig. 1)\n")
	for i, s := range steps {
		connector := "   |"
		if i == 0 {
			connector = ""
		}
		if connector != "" {
			b.WriteString(connector + "\n   v\n")
		}
		tag := ""
		switch s.Kind {
		case lifecycle.Artifact:
			tag = " [artifact]"
		case lifecycle.Gate:
			tag = " [gate]"
		}
		fmt.Fprintf(&b, "[%d] %s%s\n      %s\n", i+1, s.Name, tag, s.Detail)
	}
	return b.String()
}

// Comparison renders the guideline-vs-policy response comparison.
func Comparison(c lifecycle.Comparison, attemptsPerDay, successProb float64) string {
	var b strings.Builder
	b.WriteString("Post-deployment response to a newly discovered threat\n\n")
	b.WriteString(c.Guideline.String())
	b.WriteString("\n")
	b.WriteString(c.Policy.String())
	fmt.Fprintf(&b, "\nspeed-up: %.1fx   exposure window saved: %s\n",
		c.Speedup, lifecycle.FormatDays(c.ExposureSavings))
	ge := lifecycle.Exposure(c.Guideline.Total, attemptsPerDay, successProb)
	pe := lifecycle.Exposure(c.Policy.Total, attemptsPerDay, successProb)
	fmt.Fprintf(&b, "expected successful exploitations (%.1f attempts/day, p=%.2f): guideline %.1f, policy %.1f\n",
		attemptsPerDay, successProb, ge, pe)
	return b.String()
}

// Topology renders the Fig. 2 view: every station on the shared CAN bus
// with the identifiers it legitimately writes and reads.
func Topology() string {
	var b strings.Builder
	b.WriteString("Connected car CAN topology (Fig. 2), 500 kbit/s shared bus\n\n")
	b.WriteString("  CAN-H =============================================================\n")
	b.WriteString("  CAN-L =============================================================\n")
	for _, n := range car.AllNodes {
		var tx, rx []string
		for _, m := range car.Catalog {
			for _, w := range m.Writers {
				if w == n {
					tx = append(tx, fmt.Sprintf("0x%03X", m.ID))
				}
			}
			for _, r := range m.Readers {
				if r == n {
					rx = append(rx, fmt.Sprintf("0x%03X", m.ID))
				}
			}
		}
		sort.Strings(tx)
		sort.Strings(rx)
		fmt.Fprintf(&b, "    |-- %-13s tx:[%s] rx:[%s]\n",
			n, strings.Join(tx, " "), strings.Join(rx, " "))
	}
	return b.String()
}

// NodeArchitecture renders the Fig. 3 view of a CAN node's internals.
func NodeArchitecture(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CAN node %q internal architecture (Fig. 3)\n\n", name)
	b.WriteString("  +----------------------------------------------+\n")
	b.WriteString("  |  Micro-controller / DSP (application logic)  |\n")
	b.WriteString("  +----------------------+-----------------------+\n")
	b.WriteString("                         |\n")
	b.WriteString("  +----------------------v-----------------------+\n")
	b.WriteString("  |  CAN Controller (parse, acceptance filters)  |\n")
	b.WriteString("  +----------------------+-----------------------+\n")
	b.WriteString("                         |\n")
	b.WriteString("  +----------------------v-----------------------+\n")
	b.WriteString("  |  CAN Transceiver (CAN-H / CAN-L)              |\n")
	b.WriteString("  +----------------------+-----------------------+\n")
	b.WriteString("                         |\n")
	b.WriteString("            CAN bus ===============\n")
	return b.String()
}

// HPEView renders the Fig. 4 view: the node with the integrated policy
// engine, its approved lists for the current mode and its counters.
func HPEView(e *hpe.Engine, compiled *policy.Compiled, mode policy.Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CAN node %q with integrated hardware policy engine (Fig. 4), mode %s\n\n",
		e.Subject(), mode)
	nt := compiled.Node(e.Subject())
	mt := nt.Table(mode)
	fmtIDs := func(l policy.IDLookup) string {
		if l == nil || l.Len() == 0 {
			return "(empty)"
		}
		ids := l.IDs()
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("0x%03X", id)
		}
		return strings.Join(parts, " ")
	}
	b.WriteString("  Controller <---> [ Decision Block ] <---> Transceiver <---> CAN bus\n")
	fmt.Fprintf(&b, "    approved reading list: %s\n", fmtIDs(mt.Reads))
	fmt.Fprintf(&b, "    approved writing list: %s\n", fmtIDs(mt.Writes))
	st := e.Stats()
	fmt.Fprintf(&b, "    decisions=%d reads(grant/block)=%d/%d writes(grant/block)=%d/%d\n",
		st.Decisions, st.ReadsGranted, st.ReadsBlocked, st.WritesGranted, st.WritesBlocked)
	cm := e.CycleModel()
	fmt.Fprintf(&b, "    cycle cost per decision: %d cycles (%.0f ns @ %d MHz)\n",
		cm.PerDecision(), cm.LatencyNanos(cm.PerDecision()), cm.ClockHz/1_000_000)
	return b.String()
}

// AttackResults renders a result matrix: one row per scenario, one outcome
// column per enforcement regime.
func AttackResults(results []attack.Result) string {
	regimes := []attack.Enforcement{}
	seen := map[attack.Enforcement]bool{}
	for _, r := range results {
		if !seen[r.Enforcement] {
			seen[r.Enforcement] = true
			regimes = append(regimes, r.Enforcement)
		}
	}
	sort.Slice(regimes, func(i, j int) bool { return regimes[i] < regimes[j] })

	cols := []Column{
		{Header: "Threat"},
		{Header: "Scenario"},
		{Header: "Attacker"},
	}
	for _, e := range regimes {
		cols = append(cols, Column{Header: string(e.String()), Align: Center})
	}
	t := NewTable(cols...)

	type key struct{ id, name string }
	order := []key{}
	cells := map[key]map[attack.Enforcement]string{}
	placement := map[key]string{}
	for _, r := range results {
		k := key{r.ThreatID, r.Name}
		if _, ok := cells[k]; !ok {
			cells[k] = map[attack.Enforcement]string{}
			order = append(order, k)
		}
		outcome := "blocked"
		if r.Succeeded {
			outcome = "SUCCESS"
		}
		if !r.LegitimateOK {
			outcome += "!fp"
		}
		cells[k][r.Enforcement] = outcome
		placement[k] = r.Placement.String()
	}
	for _, k := range order {
		row := []string{k.id, k.name, placement[k]}
		for _, e := range regimes {
			row = append(row, cells[k][e])
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Verdict renders a one-line Verdict on the canbus trace event, used by the
// carsim tool's verbose mode.
func Verdict(e canbus.TraceEvent) string { return e.String() }
