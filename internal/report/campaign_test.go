package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestCampaignViewRendering sweeps a minimal campaign and checks the view
// carries every family, regime and total — and leaks nothing that would
// break the report's cross-worker byte-identity (worker counts, timings).
func TestCampaignViewRendering(t *testing.T) {
	plan, err := (campaign.Compiler{}).Compile(campaign.MustParse(`
campaign "view" version 1 {
  seed 5
  regimes none, hpe
  mutate "spot" { pick 2 probe off }
  staged "chain" {
    attackers Infotainment
    goal firmware-modified
    stage "inject" { inject 0x10 01 x 2 }
    stage "persist" { proceed propulsion-off inject 0x600 DEAD }
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Sweep(plan, campaign.SweepConfig{Fleet: 2, Workers: 2, RootSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out := CampaignView(rep)
	for _, want := range []string{
		`Campaign "view" v1`, "spot", "chain", "TOTAL",
		"none", "hpe", "staged", "mutate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("view missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "worker") {
		t.Errorf("view leaks worker configuration:\n%s", out)
	}
	// Same sweep, different worker count: identical rendering.
	rep2, err := campaign.Sweep(plan, campaign.SweepConfig{Fleet: 2, Workers: 1, RootSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if CampaignView(rep2) != out {
		t.Error("campaign view differs across worker counts")
	}
}
