package report

import (
	"fmt"
	"strings"

	"repro/internal/risk"
)

// RiskView renders a calibrated risk profile as two tables: the ranked
// residual-risk table (rubric vs measured DREAD per threat) and the
// per-family evidence table behind it. Like CampaignView, the rendering
// inherits its input's determinism — byte-identical across worker counts
// and pooled/fresh sweeps.
func RiskView(p *risk.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Risk profile of %q — campaign %q v%d (seed %#x, root seed %#x, fleet %d, %d cells)\n",
		p.Model, p.Campaign, p.Version, p.Seed, p.RootSeed, p.Fleet, p.Cells)
	if p.HealthEnabled || !p.Health.IsZero() {
		fmt.Fprintf(&b, "health: %s\n", p.Health)
	}
	b.WriteByte('\n')

	ranked := NewTable(
		Column{Header: "#", Align: Right},
		Column{Header: "Threat"},
		Column{Header: "STRIDE"},
		Column{Header: "Rubric DREAD"},
		Column{Header: "Measured DREAD"},
		Column{Header: "Delta"},
		Column{Header: "Band"},
		Column{Header: "UndefSucc", Align: Right},
		Column{Header: "DefBlock", Align: Right},
		Column{Header: "Residual", Align: Right},
	)
	for i := range p.Threats {
		tc := &p.Threats[i]
		band := tc.RubricRating.String()
		if tc.MeasuredRating != tc.RubricRating {
			band = fmt.Sprintf("%s->%s", tc.RubricRating, tc.MeasuredRating)
		}
		ranked.AddRow(
			fmt.Sprint(i+1),
			tc.ThreatID,
			tc.Stride.String(),
			tc.Rubric.String(),
			tc.Measured.String(),
			tc.Delta.String(),
			band,
			fmt.Sprintf("%.1f%%", tc.UndefendedSuccess*100),
			fmt.Sprintf("%.1f%%", tc.DefendedBlock*100),
			fmt.Sprintf("%.2f", tc.Residual),
		)
	}
	b.WriteString("Residual risk, ranked (measured average discounted by defended block rate):\n")
	b.WriteString(ranked.String())

	evidence := NewTable(
		Column{Header: "Family"},
		Column{Header: "Kind"},
		Column{Header: "Scen", Align: Right},
		Column{Header: "UndefRuns", Align: Right},
		Column{Header: "UndefSucc", Align: Right},
		Column{Header: "DefRuns", Align: Right},
		Column{Header: "DefBlock", Align: Right},
		Column{Header: "Goal", Align: Right},
		Column{Header: "Delta"},
	)
	for i := range p.Threats {
		tc := &p.Threats[i]
		for j := range tc.Families {
			f := &tc.Families[j]
			goal := ""
			if f.GoalRuns > 0 {
				goal = fmt.Sprintf("%d/%d", f.GoalHits, f.GoalRuns)
			}
			evidence.AddRow(
				f.Name,
				f.Kind,
				fmt.Sprint(f.Scenarios),
				fmt.Sprint(f.Undefended.Runs),
				fmt.Sprintf("%.1f%%", f.Undefended.SuccessRate()*100),
				fmt.Sprint(f.Defended.Runs),
				fmt.Sprintf("%.1f%%", f.Defended.BlockRate()*100),
				goal,
				f.Delta.String(),
			)
		}
	}
	b.WriteString("\nPer-family evidence (measured DREAD adjustments per synthesized family):\n")
	b.WriteString(evidence.String())

	if len(p.Uncovered) > 0 {
		fmt.Fprintf(&b, "\nuncovered threats (no synthesizable family): %s\n", strings.Join(p.Uncovered, ", "))
	}
	return b.String()
}
