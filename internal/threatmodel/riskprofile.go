package threatmodel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dread"
)

// This file implements the device *risk profile* the paper's §II invokes
// ("a new threat ... change[s] the risk profile of the device, undermining
// the existing security model"): per-asset and per-entry-point aggregations
// over the rated threats, so re-running the pipeline after a new threat is
// added shows exactly where the profile moved.

// AssetRisk aggregates the rated threats targeting one asset.
type AssetRisk struct {
	// Asset names the asset.
	Asset string
	// Node is the hosting station.
	Node string
	// Critical echoes the asset's criticality flag.
	Critical bool
	// ThreatCount is the number of threats targeting the asset.
	ThreatCount int
	// MaxAverage is the highest DREAD average among them.
	MaxAverage float64
	// SumAverage is the total of the DREAD averages (exposure mass).
	SumAverage float64
	// WorstRating is the highest severity band reached.
	WorstRating dread.Rating
}

// EntryPointRisk aggregates the rated threats using one entry point.
type EntryPointRisk struct {
	// EntryPoint names the interface.
	EntryPoint string
	// ThreatCount is the number of threats entering here.
	ThreatCount int
	// SumAverage is the total DREAD mass flowing through this interface.
	SumAverage float64
}

// RiskProfile is the aggregated view of an analysis.
type RiskProfile struct {
	// UseCase names the analysed application.
	UseCase string
	// Assets sorted by descending exposure mass.
	Assets []AssetRisk
	// EntryPoints sorted by descending exposure mass.
	EntryPoints []EntryPointRisk
	// TotalExposure is the sum of all threats' DREAD averages.
	TotalExposure float64
}

// Profile computes the risk profile of an analysis.
func Profile(a *Analysis) RiskProfile {
	p := RiskProfile{UseCase: a.UseCase.Name}
	assetIdx := map[string]int{}
	entryIdx := map[string]int{}
	for _, asset := range a.UseCase.Assets {
		assetIdx[asset.Name] = len(p.Assets)
		p.Assets = append(p.Assets, AssetRisk{
			Asset: asset.Name, Node: asset.Node, Critical: asset.Critical,
		})
	}
	for _, e := range a.UseCase.EntryPoints {
		entryIdx[e.Name] = len(p.EntryPoints)
		p.EntryPoints = append(p.EntryPoints, EntryPointRisk{EntryPoint: e.Name})
	}
	for _, t := range a.Threats {
		avg := t.Score.Average()
		p.TotalExposure += avg
		if i, ok := assetIdx[t.Asset]; ok {
			ar := &p.Assets[i]
			ar.ThreatCount++
			ar.SumAverage += avg
			if avg > ar.MaxAverage {
				ar.MaxAverage = avg
			}
			if t.Rating > ar.WorstRating {
				ar.WorstRating = t.Rating
			}
		}
		for _, e := range t.EntryPoints {
			if i, ok := entryIdx[e]; ok {
				p.EntryPoints[i].ThreatCount++
				p.EntryPoints[i].SumAverage += avg
			}
		}
	}
	sort.SliceStable(p.Assets, func(i, j int) bool {
		return p.Assets[i].SumAverage > p.Assets[j].SumAverage
	})
	sort.SliceStable(p.EntryPoints, func(i, j int) bool {
		return p.EntryPoints[i].SumAverage > p.EntryPoints[j].SumAverage
	})
	return p
}

// DeltaFrom describes how the profile moved relative to an earlier one —
// the quantity that tells an OEM a new threat has invalidated the security
// model (§II).
type ProfileDelta struct {
	// ExposureChange is the change in total exposure mass.
	ExposureChange float64
	// AssetChanges maps asset name to exposure-mass change (only non-zero
	// entries are present).
	AssetChanges map[string]float64
}

// DeltaFrom computes the change from an earlier profile to p.
func (p RiskProfile) DeltaFrom(earlier RiskProfile) ProfileDelta {
	d := ProfileDelta{
		ExposureChange: p.TotalExposure - earlier.TotalExposure,
		AssetChanges:   map[string]float64{},
	}
	prev := map[string]float64{}
	for _, ar := range earlier.Assets {
		prev[ar.Asset] = ar.SumAverage
	}
	seen := map[string]bool{}
	for _, ar := range p.Assets {
		if diff := ar.SumAverage - prev[ar.Asset]; diff != 0 {
			d.AssetChanges[ar.Asset] = diff
		}
		seen[ar.Asset] = true
	}
	for asset, mass := range prev {
		if !seen[asset] && mass != 0 {
			d.AssetChanges[asset] = -mass
		}
	}
	return d
}

// String renders the profile as a ranked report.
func (p RiskProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "risk profile of %q (total exposure %.1f)\n", p.UseCase, p.TotalExposure)
	b.WriteString("assets by exposure:\n")
	for _, ar := range p.Assets {
		crit := ""
		if ar.Critical {
			crit = " [critical]"
		}
		fmt.Fprintf(&b, "  %-16s threats=%-2d max=%.1f sum=%.1f worst=%s%s\n",
			ar.Asset, ar.ThreatCount, ar.MaxAverage, ar.SumAverage, ar.WorstRating, crit)
	}
	b.WriteString("entry points by exposure:\n")
	for _, er := range p.EntryPoints {
		fmt.Fprintf(&b, "  %-28s threats=%-2d sum=%.1f\n",
			er.EntryPoint, er.ThreatCount, er.SumAverage)
	}
	return b.String()
}
