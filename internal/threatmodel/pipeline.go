package threatmodel

import (
	"fmt"
	"sort"

	"repro/internal/dread"
	"repro/internal/policy"
	"repro/internal/stride"
)

// Stage is one step of the Fig. 1 application threat modelling process.
type Stage uint8

// Pipeline stages, in execution order.
const (
	// StageRiskAssessment decomposes the use case and its interactions.
	StageRiskAssessment Stage = iota + 1
	// StageAssetIdentification identifies the items of value.
	StageAssetIdentification
	// StageEntryPoints maps the interfaces exposing assets.
	StageEntryPoints
	// StageThreatIdentification enumerates and classifies threats (STRIDE).
	StageThreatIdentification
	// StageThreatRating quantifies threats (DREAD) and prioritises.
	StageThreatRating
	// StageCountermeasures determines countermeasures per threat.
	StageCountermeasures
)

// String returns the Fig. 1 label of the stage.
func (s Stage) String() string {
	switch s {
	case StageRiskAssessment:
		return "Risk assessment"
	case StageAssetIdentification:
		return "Identify Assets"
	case StageEntryPoints:
		return "Entry Points"
	case StageThreatIdentification:
		return "Threat Identification"
	case StageThreatRating:
		return "Threat Rating"
	case StageCountermeasures:
		return "Determine countermeasure"
	default:
		return "invalid"
	}
}

// Stages lists the pipeline stages in order.
var Stages = []Stage{
	StageRiskAssessment, StageAssetIdentification, StageEntryPoints,
	StageThreatIdentification, StageThreatRating, StageCountermeasures,
}

// StageError wraps an error with the stage that produced it.
type StageError struct {
	Stage Stage
	Err   error
}

// Error implements error.
func (e *StageError) Error() string {
	return fmt.Sprintf("threatmodel: stage %q: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error.
func (e *StageError) Unwrap() error { return e.Err }

// Analyze runs the identification and rating stages of Fig. 1 over a use
// case and its identified threats: it validates all cross-references,
// classifies each threat into STRIDE categories, scores it through the
// DREAD rubric, derives the policy action from the threat vector, and
// returns threats sorted by descending severity.
func Analyze(uc UseCase, threats []Threat) (*Analysis, error) {
	if err := uc.Validate(); err != nil {
		return nil, &StageError{Stage: StageRiskAssessment, Err: err}
	}
	modes := map[policy.Mode]bool{}
	for _, m := range uc.Modes {
		modes[m] = true
	}
	rubric := dread.Rubric{}
	seen := map[string]bool{}
	rated := make([]RatedThreat, 0, len(threats))
	for _, t := range threats {
		if t.ID == "" {
			return nil, &StageError{Stage: StageThreatIdentification,
				Err: fmt.Errorf("threat %q has no id", t.Description)}
		}
		if seen[t.ID] {
			return nil, &StageError{Stage: StageThreatIdentification,
				Err: fmt.Errorf("%w: %q", ErrDupThreat, t.ID)}
		}
		seen[t.ID] = true
		if _, ok := uc.Asset(t.Asset); !ok {
			return nil, &StageError{Stage: StageThreatIdentification,
				Err: fmt.Errorf("%w: %q (threat %s)", ErrUnknownAsset, t.Asset, t.ID)}
		}
		for _, e := range t.EntryPoints {
			if _, ok := uc.EntryPoint(e); !ok {
				return nil, &StageError{Stage: StageThreatIdentification,
					Err: fmt.Errorf("%w: %q (threat %s)", ErrUnknownEntry, e, t.ID)}
			}
		}
		for _, m := range t.Modes {
			if !modes[m] {
				return nil, &StageError{Stage: StageThreatIdentification,
					Err: fmt.Errorf("%w: %q (threat %s)", ErrUnknownMode, m, t.ID)}
			}
		}
		cats := stride.Classify(t.Effects)
		if cats.Empty() {
			return nil, &StageError{Stage: StageThreatIdentification,
				Err: fmt.Errorf("threat %s has no STRIDE-classifiable effects", t.ID)}
		}
		score, err := rubric.ScoreAdjusted(t.Assessment, t.Adjust)
		if err != nil {
			return nil, &StageError{Stage: StageThreatRating,
				Err: fmt.Errorf("threat %s: %w", t.ID, err)}
		}
		act := t.Vector.PolicyAction()
		if act == 0 {
			return nil, &StageError{Stage: StageCountermeasures,
				Err: fmt.Errorf("%w: %s", ErrNoVector, t.ID)}
		}
		rated = append(rated, RatedThreat{
			Threat: t,
			Stride: cats,
			Score:  score,
			Rating: score.Rate(),
			Policy: act,
		})
	}
	sort.SliceStable(rated, func(i, j int) bool {
		return rated[j].Score.Less(rated[i].Score) // descending severity
	})
	return &Analysis{UseCase: uc, Threats: rated}, nil
}
