// Package threatmodel implements the application threat modelling pipeline
// of the paper's Fig. 1: risk assessment, asset identification, entry-point
// mapping, threat identification (STRIDE), threat rating (DREAD) and
// countermeasure determination. Its end product is a security model — either
// the traditional guideline document or, following the paper's contribution,
// an enforceable policy set derived directly from the analysis.
package threatmodel

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dread"
	"repro/internal/policy"
	"repro/internal/stride"
)

// Asset is an item of value that should be protected (Fig. 1 "Identify
// Assets"). For the connected car these are the rows of Table I: EV-ECU,
// EPS, Engine, connectivity, infotainment, door locks, safety critical.
type Asset struct {
	// Name uniquely identifies the asset.
	Name string
	// Description explains the asset's function.
	Description string
	// Critical marks assets whose compromise endangers safety.
	Critical bool
	// Node names the bus station hosting the asset, where enforcement
	// attaches. Several assets may share a node.
	Node string
}

// EntryPoint is an interface that exposes assets to an attacker (Fig. 1
// "Entry Points"): CAN connections, wireless interfaces, browsers, sensors.
type EntryPoint struct {
	// Name uniquely identifies the entry point.
	Name string
	// Description explains the interface.
	Description string
	// Exposes lists asset names reachable through this entry point.
	Exposes []string
}

// Vector is the direction of the malicious data flow relative to the
// asset's node, which determines the Table I policy letter: inbound threats
// are countered by tightening the approved reading list (R), outbound
// threats by the writing list (W), bidirectional threats by both (RW).
type Vector uint8

// Vectors.
const (
	// VectorInbound: malicious messages arrive at the asset.
	VectorInbound Vector = iota + 1
	// VectorOutbound: the compromised asset emits malicious messages.
	VectorOutbound
	// VectorBidirectional: both directions participate.
	VectorBidirectional
)

// String returns the vector name.
func (v Vector) String() string {
	switch v {
	case VectorInbound:
		return "inbound"
	case VectorOutbound:
		return "outbound"
	case VectorBidirectional:
		return "bidirectional"
	default:
		return "invalid"
	}
}

// PolicyAction maps the vector to the derived Table I policy letter.
func (v Vector) PolicyAction() policy.Action {
	switch v {
	case VectorInbound:
		return policy.ActRead
	case VectorOutbound:
		return policy.ActWrite
	case VectorBidirectional:
		return policy.ActReadWrite
	default:
		return 0
	}
}

// Threat is one identified threat scenario (Fig. 1 "Threat Identification").
type Threat struct {
	// ID is a short stable identifier ("EVECU-1").
	ID string
	// Description is the Table I "Potential Threats" text.
	Description string
	// Asset names the targeted asset.
	Asset string
	// EntryPoints lists the entry point names used.
	EntryPoints []string
	// Modes lists the operating modes in which the threat applies.
	Modes []policy.Mode
	// Effects are the implementation-neutral consequences, classified into
	// STRIDE categories by the rating stage.
	Effects stride.Effects
	// Assessment holds the qualitative DREAD judgements.
	Assessment dread.Assessment
	// Adjust carries bounded analyst corrections to the rubric output.
	Adjust dread.Adjust
	// Vector is the malicious data-flow direction (drives the policy letter).
	Vector Vector
	// Goal names the observable-state predicate (campaign vocabulary) that
	// detects the threat's effect on a simulated vehicle. It grounds the
	// threat in the measurement substrate: risk synthesis uses it as the
	// success goal of generated flood/staged families, and calibration counts
	// its hits as damage evidence. Empty means the effect has no single
	// observable predicate; such threats still synthesize mutation families
	// (which inherit the baseline scenario's success check).
	Goal string
}

// RatedThreat is a threat after the rating stage.
type RatedThreat struct {
	Threat
	// Stride is the computed category set.
	Stride stride.Set
	// Score is the rubric-computed DREAD score.
	Score dread.Score
	// Rating is the coarse severity band.
	Rating dread.Rating
	// Policy is the derived Table I policy action.
	Policy policy.Action
}

// UseCase describes the application under analysis (Fig. 1 "Risk
// assessment" input).
type UseCase struct {
	// Name identifies the use case ("connected-car").
	Name string
	// Description summarises the deployment scenario.
	Description string
	// Modes lists the device operating modes.
	Modes []policy.Mode
	// Assets lists the items of value.
	Assets []Asset
	// EntryPoints lists the attacker-reachable interfaces.
	EntryPoints []EntryPoint
	// Comm declares the legitimate communication matrix: the traffic each
	// node must be permitted for the application to function. The policy
	// model is derived from this matrix under least privilege — everything
	// not declared is denied.
	Comm []CommRequirement
}

// CommRequirement is one legitimate communication need.
type CommRequirement struct {
	// Subject is the node requiring access.
	Subject string
	// Action is the direction needed.
	Action policy.Action
	// IDs is the message identifier set involved.
	IDs policy.IDSet
	// Modes restricts the requirement to operating modes (empty = all).
	Modes []policy.Mode
	// Rationale documents why the requirement exists.
	Rationale string
}

// Validation errors.
var (
	ErrUnknownAsset = errors.New("threatmodel: threat references unknown asset")
	ErrUnknownEntry = errors.New("threatmodel: threat references unknown entry point")
	ErrUnknownMode  = errors.New("threatmodel: reference to undeclared mode")
	ErrDupAsset     = errors.New("threatmodel: duplicate asset name")
	ErrDupEntry     = errors.New("threatmodel: duplicate entry point name")
	ErrDupThreat    = errors.New("threatmodel: duplicate threat id")
	ErrNoVector     = errors.New("threatmodel: threat has no vector")
)

// Validate checks internal consistency of the use case.
func (u *UseCase) Validate() error {
	if strings.TrimSpace(u.Name) == "" {
		return errors.New("threatmodel: use case has no name")
	}
	if len(u.Modes) == 0 {
		return errors.New("threatmodel: use case declares no modes")
	}
	assets := map[string]bool{}
	for _, a := range u.Assets {
		if assets[a.Name] {
			return fmt.Errorf("%w: %q", ErrDupAsset, a.Name)
		}
		assets[a.Name] = true
		if a.Node == "" {
			return fmt.Errorf("threatmodel: asset %q has no node", a.Name)
		}
	}
	entries := map[string]bool{}
	for _, e := range u.EntryPoints {
		if entries[e.Name] {
			return fmt.Errorf("%w: %q", ErrDupEntry, e.Name)
		}
		entries[e.Name] = true
		for _, x := range e.Exposes {
			if !assets[x] {
				return fmt.Errorf("threatmodel: entry point %q exposes unknown asset %q", e.Name, x)
			}
		}
	}
	modes := map[policy.Mode]bool{}
	for _, m := range u.Modes {
		modes[m] = true
	}
	for _, c := range u.Comm {
		if c.Subject == "" {
			return errors.New("threatmodel: comm requirement has no subject")
		}
		if len(c.IDs) == 0 {
			return fmt.Errorf("threatmodel: comm requirement %q covers no ids", c.Rationale)
		}
		for _, m := range c.Modes {
			if !modes[m] {
				return fmt.Errorf("%w: %q in comm requirement %q", ErrUnknownMode, m, c.Rationale)
			}
		}
	}
	return nil
}

// Asset returns the named asset.
func (u *UseCase) Asset(name string) (Asset, bool) {
	for _, a := range u.Assets {
		if a.Name == name {
			return a, true
		}
	}
	return Asset{}, false
}

// EntryPoint returns the named entry point.
func (u *UseCase) EntryPoint(name string) (EntryPoint, bool) {
	for _, e := range u.EntryPoints {
		if e.Name == name {
			return e, true
		}
	}
	return EntryPoint{}, false
}

// Nodes returns the sorted distinct node names hosting assets.
func (u *UseCase) Nodes() []string {
	seen := map[string]bool{}
	for _, a := range u.Assets {
		seen[a.Node] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Analysis is the output of the pipeline's identification and rating
// stages: the validated use case plus rated threats sorted by descending
// severity (the prioritisation the paper's "Threat Rating" step calls for).
type Analysis struct {
	UseCase UseCase
	Threats []RatedThreat
}

// ByAsset groups rated threats by asset name, preserving severity order.
func (a *Analysis) ByAsset() map[string][]RatedThreat {
	out := map[string][]RatedThreat{}
	for _, t := range a.Threats {
		out[t.Asset] = append(out[t.Asset], t)
	}
	return out
}

// Threat returns the rated threat with the given id.
func (a *Analysis) Threat(id string) (RatedThreat, bool) {
	for _, t := range a.Threats {
		if t.ID == id {
			return t, true
		}
	}
	return RatedThreat{}, false
}
