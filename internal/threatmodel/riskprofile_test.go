package threatmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dread"
)

func profileFixture(t *testing.T, threats []Threat) RiskProfile {
	t.Helper()
	a, err := Analyze(testUseCase(), threats)
	if err != nil {
		t.Fatal(err)
	}
	return Profile(a)
}

func TestProfileAggregation(t *testing.T) {
	t1 := testThreat("T1") // ecu, score 6,5,5,6,6 -> avg 5.6
	t2 := testThreat("T2")
	t2.Assessment.Damage = dread.DamageLife // 9,... -> avg 6.2
	t3 := testThreat("T3")
	t3.Asset = "display"
	t3.EntryPoints = []string{"usb"}
	p := profileFixture(t, []Threat{t1, t2, t3})

	if p.UseCase != "toy-device" {
		t.Errorf("use case = %q", p.UseCase)
	}
	wantTotal := 5.6 + 6.2 + 5.6
	if math.Abs(p.TotalExposure-wantTotal) > 1e-9 {
		t.Errorf("TotalExposure = %v, want %v", p.TotalExposure, wantTotal)
	}
	// ecu carries the most exposure mass and sorts first.
	if p.Assets[0].Asset != "ecu" {
		t.Fatalf("top asset = %q", p.Assets[0].Asset)
	}
	ecu := p.Assets[0]
	if ecu.ThreatCount != 2 || math.Abs(ecu.SumAverage-11.8) > 1e-9 ||
		math.Abs(ecu.MaxAverage-6.2) > 1e-9 {
		t.Errorf("ecu risk = %+v", ecu)
	}
	if ecu.WorstRating != dread.High {
		t.Errorf("ecu worst rating = %v", ecu.WorstRating)
	}
	if !ecu.Critical || ecu.Node != "ECU" {
		t.Errorf("ecu metadata = %+v", ecu)
	}
	// Entry points: "bus" carries T1+T2, "usb" carries T3.
	if p.EntryPoints[0].EntryPoint != "bus" || p.EntryPoints[0].ThreatCount != 2 {
		t.Errorf("top entry = %+v", p.EntryPoints[0])
	}
	if p.EntryPoints[1].EntryPoint != "usb" || p.EntryPoints[1].ThreatCount != 1 {
		t.Errorf("second entry = %+v", p.EntryPoints[1])
	}
}

func TestProfileDelta(t *testing.T) {
	before := profileFixture(t, []Threat{testThreat("T1")})
	newThreat := testThreat("T2")
	newThreat.Assessment.Damage = dread.DamageLife
	after := profileFixture(t, []Threat{testThreat("T1"), newThreat})

	d := after.DeltaFrom(before)
	if math.Abs(d.ExposureChange-6.2) > 1e-9 {
		t.Errorf("ExposureChange = %v, want 6.2", d.ExposureChange)
	}
	if len(d.AssetChanges) != 1 || math.Abs(d.AssetChanges["ecu"]-6.2) > 1e-9 {
		t.Errorf("AssetChanges = %v", d.AssetChanges)
	}
	// Symmetric: going back shows the negative delta.
	back := before.DeltaFrom(after)
	if math.Abs(back.ExposureChange+6.2) > 1e-9 {
		t.Errorf("reverse ExposureChange = %v", back.ExposureChange)
	}
}

func TestProfileDeltaEmptyWhenUnchanged(t *testing.T) {
	a := profileFixture(t, []Threat{testThreat("T1")})
	b := profileFixture(t, []Threat{testThreat("T1")})
	d := b.DeltaFrom(a)
	if d.ExposureChange != 0 || len(d.AssetChanges) != 0 {
		t.Errorf("delta of identical profiles = %+v", d)
	}
}

func TestProfileString(t *testing.T) {
	p := profileFixture(t, []Threat{testThreat("T1")})
	out := p.String()
	for _, frag := range []string{"risk profile", "ecu", "[critical]", "entry points", "bus"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}
