package threatmodel

import (
	"fmt"
	"strings"

	"repro/internal/policy"
)

// This file implements the paper's two countermeasure styles:
//
//   - Guideline-based (§V-A.1, the traditional approach): a technical
//     guidance document telling developers what to implement. It cannot be
//     enforced after deployment; countering a new threat means redesign.
//   - Policy-based (§V-A.2, the contribution): an enforceable policy set
//     derived from the same analysis, updatable after deployment.

// Guideline is one entry of a guideline-based security model.
type Guideline struct {
	// Component is the design element the guideline addresses.
	Component string
	// Text is the guidance given to developers.
	Text string
	// Mitigates lists the threat IDs the guideline addresses.
	Mitigates []string
}

// String renders "component: text".
func (g Guideline) String() string { return g.Component + ": " + g.Text }

// GuidelineModel is the traditional security model: a document.
type GuidelineModel struct {
	// UseCase names the analysed application.
	UseCase string
	// Guidelines in priority order (highest-rated threats first).
	Guidelines []Guideline
}

// DeriveGuidelines produces the baseline guideline document from an
// analysis. Each threat yields design guidance phrased per its vector,
// mirroring the infotainment examples of §V-A.1.
func DeriveGuidelines(a *Analysis) *GuidelineModel {
	out := &GuidelineModel{UseCase: a.UseCase.Name}
	for _, t := range a.Threats {
		asset, _ := a.UseCase.Asset(t.Asset)
		var text string
		switch t.Vector {
		case VectorInbound:
			text = fmt.Sprintf(
				"validate and restrict inbound messages reaching %s; accept only traffic required in modes %s",
				t.Asset, modeList(t.Modes))
		case VectorOutbound:
			text = fmt.Sprintf(
				"constrain what %s may transmit; review firmware update and installation paths",
				t.Asset)
		default:
			text = fmt.Sprintf(
				"isolate %s bidirectionally; limit components with bus access", t.Asset)
		}
		out.Guidelines = append(out.Guidelines, Guideline{
			Component: asset.Node,
			Text:      text,
			Mitigates: []string{t.ID},
		})
	}
	return out
}

func modeList(modes []policy.Mode) string {
	if len(modes) == 0 {
		return "all"
	}
	parts := make([]string, len(modes))
	for i, m := range modes {
		parts[i] = string(m)
	}
	return strings.Join(parts, ",")
}

// DerivePolicies produces the enforceable policy set: the legitimate
// communication matrix becomes allow rules (closed world, least privilege),
// so every access a threat would need beyond declared functionality is
// denied by construction. Rule names record the rationale for audit.
//
// version stamps the resulting set; name defaults to the use case name.
func DerivePolicies(a *Analysis, name string, version uint64) (*policy.Set, error) {
	if name == "" {
		name = a.UseCase.Name
	}
	set := &policy.Set{Name: name, Version: version}
	for _, c := range a.UseCase.Comm {
		r := policy.Rule{
			Name:    c.Rationale,
			Subject: c.Subject,
			Effect:  policy.Allow,
			Action:  c.Action,
			IDs:     c.IDs,
			Modes:   policy.NewModeSet(c.Modes...),
		}
		set.Rules = append(set.Rules, r)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// Restriction describes the Table I "Policy" column entry for one threat:
// which direction of the asset's node is tightened by least privilege.
type Restriction struct {
	// ThreatID references the rated threat.
	ThreatID string
	// Node is the enforcement point.
	Node string
	// Action is the tightened direction (R, W or RW).
	Action policy.Action
}

// Restrictions derives the per-threat Table I policy column.
func Restrictions(a *Analysis) []Restriction {
	out := make([]Restriction, 0, len(a.Threats))
	for _, t := range a.Threats {
		asset, _ := a.UseCase.Asset(t.Asset)
		out = append(out, Restriction{ThreatID: t.ID, Node: asset.Node, Action: t.Policy})
	}
	return out
}
