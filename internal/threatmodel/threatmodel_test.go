package threatmodel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dread"
	"repro/internal/policy"
	"repro/internal/stride"
)

func testUseCase() UseCase {
	return UseCase{
		Name:  "toy-device",
		Modes: []policy.Mode{"Normal", "Service"},
		Assets: []Asset{
			{Name: "ecu", Node: "ECU", Critical: true, Description: "engine control"},
			{Name: "display", Node: "HMI", Description: "driver display"},
		},
		EntryPoints: []EntryPoint{
			{Name: "bus", Exposes: []string{"ecu", "display"}},
			{Name: "usb", Exposes: []string{"display"}},
		},
		Comm: []CommRequirement{
			{Subject: "ECU", Action: policy.ActRead, IDs: policy.SingleID(0x10),
				Rationale: "commands rx"},
			{Subject: "HMI", Action: policy.ActRead, IDs: policy.SingleID(0x20),
				Modes: []policy.Mode{"Normal"}, Rationale: "status rx"},
			{Subject: "ECU", Action: policy.ActWrite, IDs: policy.SingleID(0x20),
				Rationale: "status tx"},
		},
	}
}

func testThreat(id string) Threat {
	return Threat{
		ID:          id,
		Description: "spoofed command",
		Asset:       "ecu",
		EntryPoints: []string{"bus"},
		Modes:       []policy.Mode{"Normal"},
		Effects:     stride.Effects{ForgesIdentity: true, DisruptsService: true},
		Assessment: dread.Assessment{
			Damage:          dread.DamageSubsystem,
			Reproducibility: dread.ReproReliable,
			Exploitability:  dread.ExploitSkilled,
			AffectedUsers:   dread.AffectedOwner,
			Discoverability: dread.DiscoverKnown,
		},
		Vector: VectorInbound,
	}
}

func TestAnalyzeHappyPath(t *testing.T) {
	a, err := Analyze(testUseCase(), []Threat{testThreat("T1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Threats) != 1 {
		t.Fatalf("threats = %d", len(a.Threats))
	}
	rt := a.Threats[0]
	if rt.Stride.String() != "SD" {
		t.Errorf("stride = %v", rt.Stride)
	}
	if got := rt.Score.String(); got != "6,5,5,6,6 (5.6)" {
		t.Errorf("score = %v", got)
	}
	if rt.Rating != dread.Medium {
		t.Errorf("rating = %v", rt.Rating)
	}
	if rt.Policy != policy.ActRead {
		t.Errorf("policy = %v", rt.Policy)
	}
}

func TestAnalyzeSortsBySeverity(t *testing.T) {
	low := testThreat("LOW")
	low.Assessment.Damage = dread.DamageCosmetic
	high := testThreat("HIGH")
	high.Assessment.Damage = dread.DamageLife
	a, err := Analyze(testUseCase(), []Threat{low, high})
	if err != nil {
		t.Fatal(err)
	}
	if a.Threats[0].ID != "HIGH" || a.Threats[1].ID != "LOW" {
		t.Errorf("severity order wrong: %s, %s", a.Threats[0].ID, a.Threats[1].ID)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	mk := func(mutate func(*Threat)) []Threat {
		th := testThreat("T1")
		mutate(&th)
		return []Threat{th}
	}
	tests := []struct {
		name    string
		threats []Threat
		stage   Stage
		wantErr error
	}{
		{"unknown asset", mk(func(t *Threat) { t.Asset = "ghost" }),
			StageThreatIdentification, ErrUnknownAsset},
		{"unknown entry", mk(func(t *Threat) { t.EntryPoints = []string{"ghost"} }),
			StageThreatIdentification, ErrUnknownEntry},
		{"unknown mode", mk(func(t *Threat) { t.Modes = []policy.Mode{"Ghost"} }),
			StageThreatIdentification, ErrUnknownMode},
		{"no effects", mk(func(t *Threat) { t.Effects = stride.Effects{} }),
			StageThreatIdentification, nil},
		{"no vector", mk(func(t *Threat) { t.Vector = 0 }),
			StageCountermeasures, ErrNoVector},
		{"no id", mk(func(t *Threat) { t.ID = "" }),
			StageThreatIdentification, nil},
		{"duplicate id", append(mk(func(*Threat) {}), testThreat("T1")),
			StageThreatIdentification, ErrDupThreat},
		{"bad assessment", mk(func(t *Threat) { t.Assessment.Damage = 99 }),
			StageThreatRating, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Analyze(testUseCase(), tt.threats)
			if err == nil {
				t.Fatal("Analyze succeeded")
			}
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("error type %T", err)
			}
			if se.Stage != tt.stage {
				t.Errorf("stage = %v, want %v", se.Stage, tt.stage)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestUseCaseValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*UseCase)
	}{
		{"no name", func(u *UseCase) { u.Name = "" }},
		{"no modes", func(u *UseCase) { u.Modes = nil }},
		{"dup asset", func(u *UseCase) { u.Assets = append(u.Assets, u.Assets[0]) }},
		{"asset no node", func(u *UseCase) { u.Assets[0].Node = "" }},
		{"dup entry", func(u *UseCase) { u.EntryPoints = append(u.EntryPoints, u.EntryPoints[0]) }},
		{"entry exposes ghost", func(u *UseCase) { u.EntryPoints[0].Exposes = []string{"ghost"} }},
		{"comm no subject", func(u *UseCase) { u.Comm[0].Subject = "" }},
		{"comm no ids", func(u *UseCase) { u.Comm[0].IDs = nil }},
		{"comm unknown mode", func(u *UseCase) { u.Comm[0].Modes = []policy.Mode{"Ghost"} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			uc := testUseCase()
			tt.mutate(&uc)
			if err := uc.Validate(); err == nil {
				t.Error("Validate accepted invalid use case")
			}
		})
	}
}

func TestVectorPolicyMapping(t *testing.T) {
	if VectorInbound.PolicyAction() != policy.ActRead {
		t.Error("inbound -> R")
	}
	if VectorOutbound.PolicyAction() != policy.ActWrite {
		t.Error("outbound -> W")
	}
	if VectorBidirectional.PolicyAction() != policy.ActReadWrite {
		t.Error("bidirectional -> RW")
	}
	if Vector(0).PolicyAction() != 0 {
		t.Error("invalid vector must map to zero action")
	}
}

func TestDerivePolicies(t *testing.T) {
	a, err := Analyze(testUseCase(), []Threat{testThreat("T1")})
	if err != nil {
		t.Fatal(err)
	}
	set, err := DerivePolicies(a, "", 7)
	if err != nil {
		t.Fatal(err)
	}
	if set.Name != "toy-device" || set.Version != 7 {
		t.Errorf("set header %s/%d", set.Name, set.Version)
	}
	if len(set.Rules) != 3 {
		t.Fatalf("rules = %d", len(set.Rules))
	}
	// Least privilege: declared flows allowed, everything else denied.
	if set.Decide("ECU", "Normal", policy.ActRead, 0x10) != policy.Allow {
		t.Error("declared flow denied")
	}
	if set.Decide("ECU", "Normal", policy.ActWrite, 0x10) != policy.Deny {
		t.Error("undeclared direction allowed")
	}
	if set.Decide("HMI", "Service", policy.ActRead, 0x20) != policy.Deny {
		t.Error("mode-restricted flow allowed in wrong mode")
	}
	if set.Decide("HMI", "Normal", policy.ActRead, 0x20) != policy.Allow {
		t.Error("mode-restricted flow denied in right mode")
	}
}

func TestDeriveGuidelines(t *testing.T) {
	inbound := testThreat("IN")
	outbound := testThreat("OUT")
	outbound.Vector = VectorOutbound
	both := testThreat("BOTH")
	both.Vector = VectorBidirectional
	a, err := Analyze(testUseCase(), []Threat{inbound, outbound, both})
	if err != nil {
		t.Fatal(err)
	}
	g := DeriveGuidelines(a)
	if g.UseCase != "toy-device" || len(g.Guidelines) != 3 {
		t.Fatalf("guidelines = %+v", g)
	}
	byThreat := map[string]Guideline{}
	for _, gl := range g.Guidelines {
		if len(gl.Mitigates) != 1 {
			t.Fatalf("guideline mitigates %v", gl.Mitigates)
		}
		byThreat[gl.Mitigates[0]] = gl
		if gl.Component != "ECU" {
			t.Errorf("component = %q", gl.Component)
		}
	}
	if !strings.Contains(byThreat["IN"].Text, "inbound") {
		t.Errorf("inbound guideline: %q", byThreat["IN"].Text)
	}
	if !strings.Contains(byThreat["OUT"].Text, "transmit") {
		t.Errorf("outbound guideline: %q", byThreat["OUT"].Text)
	}
	if !strings.Contains(byThreat["BOTH"].Text, "isolate") {
		t.Errorf("bidirectional guideline: %q", byThreat["BOTH"].Text)
	}
}

func TestRestrictions(t *testing.T) {
	a, err := Analyze(testUseCase(), []Threat{testThreat("T1")})
	if err != nil {
		t.Fatal(err)
	}
	rs := Restrictions(a)
	if len(rs) != 1 || rs[0].ThreatID != "T1" || rs[0].Node != "ECU" || rs[0].Action != policy.ActRead {
		t.Errorf("restrictions = %+v", rs)
	}
}

func TestAnalysisHelpers(t *testing.T) {
	a, err := Analyze(testUseCase(), []Threat{testThreat("T1"), func() Threat {
		th := testThreat("T2")
		th.Asset = "display"
		return th
	}()})
	if err != nil {
		t.Fatal(err)
	}
	byAsset := a.ByAsset()
	if len(byAsset["ecu"]) != 1 || len(byAsset["display"]) != 1 {
		t.Errorf("ByAsset = %v", byAsset)
	}
	if _, ok := a.Threat("T2"); !ok {
		t.Error("Threat lookup failed")
	}
	if _, ok := a.Threat("ghost"); ok {
		t.Error("ghost threat found")
	}
	nodes := a.UseCase.Nodes()
	if len(nodes) != 2 || nodes[0] != "ECU" || nodes[1] != "HMI" {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestStageStringsMatchFig1(t *testing.T) {
	want := []string{
		"Risk assessment", "Identify Assets", "Entry Points",
		"Threat Identification", "Threat Rating", "Determine countermeasure",
	}
	if len(Stages) != len(want) {
		t.Fatalf("Stages = %v", Stages)
	}
	for i, s := range Stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
}
