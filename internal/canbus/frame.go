// Package canbus implements a bit-accurate simulation of the CAN 2.0 (ISO
// 11898) bus that underpins the paper's connected-car case study: data and
// remote frames, CRC-15 and bit stuffing, priority arbitration, broadcast
// delivery, acceptance filtering and the error-confinement state machine.
//
// The package also defines the InlineFilter seam where the paper's
// hardware-based policy engine (Fig. 4) is inserted between a node's CAN
// controller and its transceiver.
//
// A Bus is single-owner (see the Bus ownership model) and resettable: after
// MarkPristine captures the constructed topology, Reset restores it —
// allocation-free — so fleet workers reuse one bus for thousands of runs.
package canbus

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MaxStandardID is the largest 11-bit CAN identifier.
const MaxStandardID = 0x7FF

// MaxExtendedID is the largest 29-bit CAN identifier.
const MaxExtendedID = 0x1FFFFFFF

// MaxDataLen is the CAN 2.0 payload limit in bytes.
const MaxDataLen = 8

// Frame is a CAN 2.0A/B data or remote frame.
//
// The zero value is a valid standard data frame with ID 0 and no payload.
type Frame struct {
	// ID is the 11-bit (standard) or 29-bit (extended) identifier.
	ID uint32
	// Extended selects the 29-bit identifier format (CAN 2.0B).
	Extended bool
	// RTR marks a remote transmission request; RTR frames carry no data,
	// and DLC encodes the length being requested.
	RTR bool
	// Data is the payload, at most 8 bytes. For RTR frames it must be empty.
	Data []byte
	// DLC is the data length code. For data frames it is derived from
	// len(Data) during validation; for RTR frames it is the requested length.
	DLC uint8
}

// Validation errors.
var (
	ErrIDRange   = errors.New("canbus: identifier out of range")
	ErrDataLen   = errors.New("canbus: payload exceeds 8 bytes")
	ErrRTRData   = errors.New("canbus: RTR frame must not carry data")
	ErrBadDLC    = errors.New("canbus: DLC out of range")
	ErrShortBuf  = errors.New("canbus: buffer too short")
	ErrBadMarker = errors.New("canbus: bad serialization marker")
)

// NewDataFrame builds a validated standard data frame.
func NewDataFrame(id uint32, data []byte) (Frame, error) {
	f := Frame{ID: id, Data: append([]byte(nil), data...), DLC: uint8(len(data))}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// MustDataFrame is NewDataFrame for static frames; it panics on invalid input.
func MustDataFrame(id uint32, data []byte) Frame {
	f, err := NewDataFrame(id, data)
	if err != nil {
		panic(err)
	}
	return f
}

// NewRemoteFrame builds a validated standard remote frame requesting dlc bytes.
func NewRemoteFrame(id uint32, dlc uint8) (Frame, error) {
	f := Frame{ID: id, RTR: true, DLC: dlc}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// Validate checks identifier range, payload length and RTR consistency, and
// normalises DLC for data frames.
func (f *Frame) Validate() error {
	limit := uint32(MaxStandardID)
	if f.Extended {
		limit = MaxExtendedID
	}
	if f.ID > limit {
		return fmt.Errorf("%w: id=0x%X extended=%v", ErrIDRange, f.ID, f.Extended)
	}
	if len(f.Data) > MaxDataLen {
		return fmt.Errorf("%w: len=%d", ErrDataLen, len(f.Data))
	}
	if f.RTR {
		if len(f.Data) != 0 {
			return ErrRTRData
		}
		if f.DLC > MaxDataLen {
			return fmt.Errorf("%w: dlc=%d", ErrBadDLC, f.DLC)
		}
		return nil
	}
	f.DLC = uint8(len(f.Data))
	return nil
}

// Clone returns a deep copy of the frame.
func (f Frame) Clone() Frame {
	c := f
	if f.Data != nil {
		c.Data = append([]byte(nil), f.Data...)
	}
	return c
}

// Equal reports whether two frames are identical on the wire.
func (f Frame) Equal(g Frame) bool {
	if f.ID != g.ID || f.Extended != g.Extended || f.RTR != g.RTR || f.DLC != g.DLC {
		return false
	}
	if len(f.Data) != len(g.Data) {
		return false
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			return false
		}
	}
	return true
}

// ArbitrationValue returns the value compared during bus arbitration: lower
// values are more dominant and win the bus. Standard frames beat extended
// frames with the same leading bits; data frames beat RTR frames of the same
// identifier, which matches the dominant/recessive ordering on a real bus.
func (f Frame) ArbitrationValue() uint64 {
	var v uint64
	if f.Extended {
		v = uint64(f.ID)<<2 | 2 // IDE recessive sorts after standard
	} else {
		v = uint64(f.ID) << 2
	}
	if f.RTR {
		v |= 1
	}
	return v
}

// String renders the frame in candump-like notation.
func (f Frame) String() string {
	kind := "D"
	if f.RTR {
		kind = "R"
	}
	fmtID := "%03X"
	if f.Extended {
		fmtID = "%08X"
	}
	return fmt.Sprintf(fmtID+"#%s[%d]%X", f.ID, kind, f.DLC, f.Data)
}

// marshalMarker distinguishes serialized frames from garbage.
const marshalMarker = 0xC4

// MarshalBinary serializes the frame into a compact, self-describing record
// (marker, flags, id, dlc, data). It implements encoding.BinaryMarshaler.
func (f Frame) MarshalBinary() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 7+len(f.Data))
	buf = append(buf, marshalMarker)
	var flags byte
	if f.Extended {
		flags |= 1
	}
	if f.RTR {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, f.ID)
	buf = append(buf, f.DLC)
	buf = append(buf, f.Data...)
	return buf, nil
}

// UnmarshalBinary deserializes a record produced by MarshalBinary.
// It implements encoding.BinaryUnmarshaler.
func (f *Frame) UnmarshalBinary(b []byte) error {
	if len(b) < 7 {
		return ErrShortBuf
	}
	if b[0] != marshalMarker {
		return ErrBadMarker
	}
	flags := b[1]
	g := Frame{
		Extended: flags&1 != 0,
		RTR:      flags&2 != 0,
		ID:       binary.BigEndian.Uint32(b[2:6]),
		DLC:      b[6],
	}
	rest := b[7:]
	if g.RTR {
		if len(rest) != 0 {
			return ErrRTRData
		}
	} else {
		if len(rest) != int(g.DLC) {
			return fmt.Errorf("%w: dlc=%d payload=%d", ErrBadDLC, g.DLC, len(rest))
		}
		g.Data = append([]byte(nil), rest...)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	*f = g
	return nil
}
