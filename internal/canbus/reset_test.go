package canbus

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// buildTopology constructs a small bus with two filtered stations and marks
// it pristine, returning the bus and a receive counter per node name.
func buildTopology(t *testing.T, seed uint64, errRate float64) (*sim.Scheduler, *Bus, map[string]*int) {
	t.Helper()
	sched := &sim.Scheduler{}
	bus := New(sched, Config{Seed: seed, ErrorRate: errRate})
	counts := map[string]*int{}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		n := bus.MustAttach(name)
		n.Controller().SetFilters(ExactFilter(0x100), ExactFilter(0x200))
		c := new(int)
		counts[name] = c
		n.Controller().SetHandler(func(Frame) { *c++ })
	}
	bus.MarkPristine()
	return sched, bus, counts
}

// exercise drives a deterministic workload and returns the final stats.
func exercise(t *testing.T, sched *sim.Scheduler, bus *Bus, counts map[string]*int) (BusStats, [3]int) {
	t.Helper()
	a, _ := bus.Node("alpha")
	b, _ := bus.Node("beta")
	for i := 0; i < 5; i++ {
		if err := a.Send(MustDataFrame(0x100, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(MustDataFrame(0x200, []byte{byte(i), 0xFF})); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	return bus.Stats(), [3]int{*counts["alpha"], *counts["beta"], *counts["gamma"]}
}

// TestBusResetEquivalence dirties a bus every way the attack harness does —
// extra node attached, a pristine node detached, compromised firmware,
// stripped filters, queued frames — then resets and checks the workload
// outcome matches a freshly built topology bit for bit.
func TestBusResetEquivalence(t *testing.T) {
	sched, bus, counts := buildTopology(t, 7, 0.1)

	// Dirty phase.
	rogue := bus.MustAttach("rogue")
	_ = rogue.Send(MustDataFrame(0x300, []byte{0xEE}))
	alpha, _ := bus.Node("alpha")
	alpha.Controller().CompromiseFilters()
	alpha.Controller().SetFilters()
	beta, _ := bus.Node("beta")
	beta.Controller().SetMailboxCap(1)
	bus.Detach("gamma")
	bus.SetTracer(func(TraceEvent) {})
	_ = alpha.Send(MustDataFrame(0x100, []byte{1, 2, 3}))
	sched.RunSteps(2) // leave work in flight
	sched.Reset()
	bus.Reset(Config{Seed: 7, ErrorRate: 0.1})
	for _, c := range counts {
		*c = 0
	}

	if _, ok := bus.Node("rogue"); ok {
		t.Fatal("reset kept the post-snapshot rogue node")
	}
	if _, ok := bus.Node("gamma"); !ok {
		t.Fatal("reset did not re-admit the detached pristine node")
	}
	if rogue.Send(MustDataFrame(0x300, nil)) == nil {
		t.Fatal("stale rogue handle can still transmit after reset")
	}

	gotStats, gotCounts := exercise(t, sched, bus, counts)

	fsched, fbus, fcounts := buildTopology(t, 7, 0.1)
	wantStats, wantCounts := exercise(t, fsched, fbus, fcounts)

	if gotStats != wantStats {
		t.Errorf("stats after reset %+v, fresh %+v", gotStats, wantStats)
	}
	if gotCounts != wantCounts {
		t.Errorf("handler counts after reset %v, fresh %v", gotCounts, wantCounts)
	}
	if sched.Steps() != fsched.Steps() {
		t.Errorf("scheduler steps %d, fresh %d", sched.Steps(), fsched.Steps())
	}
}

// TestBusResetRestoresNodeState checks per-node counters, error state and
// filter configuration all return to pristine values.
func TestBusResetRestoresNodeState(t *testing.T) {
	sched, bus, _ := buildTopology(t, 1, 0)
	n, _ := bus.Node("alpha")
	if err := n.Send(MustDataFrame(0x100, []byte{9})); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	n.Controller().CompromiseFilters()
	n.SetRemoteResponder(0x123, func() []byte { return []byte{1} })
	if n.Stats() == (NodeStats{}) {
		t.Fatal("workload left no node stats to clear")
	}

	sched.Reset()
	bus.Reset(Config{Seed: 1})

	if n.Stats() != (NodeStats{}) {
		t.Errorf("node stats not cleared: %+v", n.Stats())
	}
	if n.Controller().Compromised() {
		t.Error("controller still compromised after reset")
	}
	if got := len(n.Controller().Filters()); got != 2 {
		t.Errorf("filter bank has %d filters after reset, want 2", got)
	}
	if n.ErrorState() != ErrorActive {
		t.Errorf("error state %v after reset", n.ErrorState())
	}
	// The responder map must be cleared: an RTR for 0x123 gets no reply.
	rx := bus.MustAttach("probe")
	f, err := NewRemoteFrame(0x123, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.Send(f); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got := n.Stats().TxRequested; got != 0 {
		t.Errorf("reset node transmitted %d frames from a stale responder", got)
	}
}

// TestBusResetAllocationFree checks the steady-state reset cycle does not
// allocate.
func TestBusResetAllocationFree(t *testing.T) {
	sched, bus, _ := buildTopology(t, 3, 0)
	payload := []byte{1, 2, 3, 4}
	cycle := func() {
		a, _ := bus.Node("alpha")
		for i := 0; i < 4; i++ {
			_ = a.Send(MustDataFrame(0x100, payload))
		}
		sched.Run()
		sched.Reset()
		bus.Reset(Config{Seed: 3})
	}
	cycle() // warm caches, scratch slices and the free list
	allocs := testing.AllocsPerRun(50, cycle)
	// MustDataFrame itself allocates the payload copy (4 sends per cycle);
	// everything else — queueing, arbitration, delivery, reset — must not.
	if allocs > 4 {
		t.Errorf("workload+reset cycle allocated %.1f objects per run, want <= 4", allocs)
	}
}

// TestKickDedupe checks that many same-instant sends still deliver all
// frames in arbitration order (the deduped rounds must not drop frames).
func TestKickDedupe(t *testing.T) {
	sched := &sim.Scheduler{}
	bus := New(sched, Config{})
	var order []uint32
	tx := bus.MustAttach("tx")
	lo := bus.MustAttach("lo")
	rx := bus.MustAttach("rx")
	rx.Controller().SetHandler(func(f Frame) { order = append(order, f.ID) })
	sched.After(time.Millisecond, func(time.Duration) {
		_ = tx.Send(MustDataFrame(0x300, nil))
		_ = lo.Send(MustDataFrame(0x100, nil)) // higher priority, queued later
		_ = tx.Send(MustDataFrame(0x200, nil))
	})
	sched.Run()
	// lo's 0x100 wins the shared arbitration round; tx then drains its own
	// queue in FIFO order (0x300 was queued before 0x200).
	want := []uint32{0x100, 0x300, 0x200}
	if len(order) != len(want) {
		t.Fatalf("delivered %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivered %v, want %v", order, want)
		}
	}
}
