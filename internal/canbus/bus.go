package canbus

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// DefaultBitRate is the classical high-speed CAN bit rate used by the
// connected-car case study (500 kbit/s).
const DefaultBitRate = 500_000

// errorFrameBits approximates the bus time consumed by an error frame plus
// error delimiter and interframe space.
const errorFrameBits = 20

// TraceEventKind tags entries emitted through Bus.SetTracer.
type TraceEventKind uint8

// Trace event kinds.
const (
	// TraceTxStart marks the beginning of a frame transmission.
	TraceTxStart TraceEventKind = iota + 1
	// TraceDelivered marks a successful broadcast completion.
	TraceDelivered
	// TraceError marks an injected transmission error.
	TraceError
	// TraceWriteBlocked marks a frame stopped by an outbound inline filter.
	TraceWriteBlocked
	// TraceReadBlocked marks a frame stopped by an inbound inline filter.
	TraceReadBlocked
	// TraceBusOff marks a node entering bus-off.
	TraceBusOff
)

// String returns the event kind name.
func (k TraceEventKind) String() string {
	switch k {
	case TraceTxStart:
		return "tx-start"
	case TraceDelivered:
		return "delivered"
	case TraceError:
		return "error"
	case TraceWriteBlocked:
		return "write-blocked"
	case TraceReadBlocked:
		return "read-blocked"
	case TraceBusOff:
		return "bus-off"
	default:
		return "invalid"
	}
}

// TraceEvent is one bus-level occurrence, reported to the tracer callback.
type TraceEvent struct {
	At    time.Duration
	Kind  TraceEventKind
	Node  string
	Frame Frame
}

// String renders the event in one line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12v %-13s %-12s %s", e.At, e.Kind, e.Node, e.Frame)
}

// BusStats aggregates bus-level counters.
type BusStats struct {
	// FramesDelivered counts successful broadcasts.
	FramesDelivered uint64
	// Errors counts injected transmission errors.
	Errors uint64
	// WriteBlocked counts outbound filter blocks across all nodes.
	WriteBlocked uint64
	// ReadBlocked counts inbound filter blocks across all nodes.
	ReadBlocked uint64
	// BusyTime is the cumulative virtual time the bus carried bits.
	BusyTime time.Duration
}

// Config parameterises a Bus.
type Config struct {
	// BitRate in bits per second; DefaultBitRate if zero.
	BitRate int
	// ErrorRate is the probability that a transmission suffers a bit error
	// and must be retried. Zero disables error injection.
	ErrorRate float64
	// Seed feeds the deterministic RNG used for error injection.
	Seed uint64
}

// Bus is the shared broadcast medium of Fig. 2. All attached nodes receive
// every successfully transmitted frame except the sender; when several nodes
// contend, the lowest arbitration value (highest priority) wins, and losers
// retry, as on a real CSMA/CR bus.
type Bus struct {
	sched   *sim.Scheduler
	bitTime time.Duration
	errRate float64
	rng     *sim.RNG

	mu     sync.Mutex
	nodes  []*Node
	byName map[string]*Node
	busy   bool
	stats  BusStats
	tracer func(TraceEvent)
}

// New creates a bus driven by the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Bus {
	rate := cfg.BitRate
	if rate <= 0 {
		rate = DefaultBitRate
	}
	return &Bus{
		sched:   sched,
		bitTime: time.Second / time.Duration(rate),
		errRate: cfg.ErrorRate,
		rng:     sim.NewRNG(cfg.Seed),
		byName:  map[string]*Node{},
	}
}

// Scheduler returns the simulation scheduler driving this bus.
func (b *Bus) Scheduler() *sim.Scheduler { return b.sched }

// BitTime returns the duration of a single bit on this bus.
func (b *Bus) BitTime() time.Duration { return b.bitTime }

// SetTracer installs a callback receiving every TraceEvent. Pass nil to
// disable tracing.
func (b *Bus) SetTracer(fn func(TraceEvent)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = fn
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Attach creates a node with the given name and joins it to the bus.
// Names must be unique per bus.
func (b *Bus) Attach(name string) (*Node, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	n := &Node{
		name:   name,
		bus:    b,
		ctrl:   NewController(),
		inline: PermissiveFilter{},
	}
	b.nodes = append(b.nodes, n)
	b.byName[name] = n
	return n, nil
}

// MustAttach is Attach that panics on duplicate names; for static topologies.
func (b *Bus) MustAttach(name string) *Node {
	n, err := b.Attach(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Detach removes a node from the bus (e.g. a malicious node being pulled).
// The node keeps its statistics but can no longer send or receive.
func (b *Bus) Detach(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, ok := b.byName[name]
	if !ok {
		return false
	}
	delete(b.byName, name)
	for i, m := range b.nodes {
		if m == n {
			b.nodes = append(b.nodes[:i], b.nodes[i+1:]...)
			break
		}
	}
	n.mu.Lock()
	n.detached = true
	n.txq = nil
	n.mu.Unlock()
	return true
}

// Node returns the attached node with the given name.
func (b *Bus) Node(name string) (*Node, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, ok := b.byName[name]
	return n, ok
}

// Nodes returns the attached nodes sorted by name.
func (b *Bus) Nodes() []*Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]*Node(nil), b.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (b *Bus) emit(e TraceEvent) {
	if b.tracer != nil {
		b.tracer(e)
	}
}

func (b *Bus) noteWriteBlocked(n *Node, f Frame) {
	b.mu.Lock()
	b.stats.WriteBlocked++
	b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceWriteBlocked, Node: n.name, Frame: f})
	b.mu.Unlock()
}

func (b *Bus) noteReadBlocked(n *Node, f Frame) {
	b.mu.Lock()
	b.stats.ReadBlocked++
	b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceReadBlocked, Node: n.name, Frame: f})
	b.mu.Unlock()
}

// kick schedules an arbitration round at the current virtual instant. The
// one-event deferral models start-of-frame synchronisation: every node that
// queued a frame "now" contends in the same round instead of the first
// caller seizing the bus.
func (b *Bus) kick() {
	b.sched.After(0, func(time.Duration) { b.arbitrate() })
}

// arbitrate starts a transmission if the bus is idle and someone has a
// pending frame.
func (b *Bus) arbitrate() {
	b.mu.Lock()
	if b.busy {
		b.mu.Unlock()
		return
	}
	winner, frame, contenders := b.arbitrateLocked()
	if winner == nil {
		b.mu.Unlock()
		return
	}
	b.busy = true
	for _, c := range contenders {
		if c != winner {
			c.noteArbitrationLoss()
		}
	}
	bits, err := WireBits(frame)
	if err != nil {
		// Frames are validated in Send; an encode failure here is a bug.
		panic(fmt.Errorf("canbus: unencodable queued frame: %w", err))
	}
	dur := time.Duration(bits) * b.bitTime
	failed := b.errRate > 0 && b.rng.Bool(b.errRate)
	b.stats.BusyTime += dur
	b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceTxStart, Node: winner.name, Frame: frame})
	b.mu.Unlock()

	b.sched.After(dur, func(now time.Duration) {
		b.complete(winner, frame, failed)
	})
}

// arbitrateLocked picks the winning node among all nodes with pending
// frames. Ties on arbitration value are broken by attachment order, which
// stands in for the bit-level resolution a real bus performs.
func (b *Bus) arbitrateLocked() (*Node, Frame, []*Node) {
	var (
		winner     *Node
		best       Frame
		bestVal    uint64
		contenders []*Node
	)
	for _, n := range b.nodes {
		f, ok := n.pendingHead()
		if !ok {
			continue
		}
		contenders = append(contenders, n)
		v := f.ArbitrationValue()
		if winner == nil || v < bestVal {
			winner, best, bestVal = n, f, v
		}
	}
	return winner, best, contenders
}

// complete finishes a transmission: on error the transmitter's TEC grows and
// the frame is retried (unless bus-off); on success the frame is broadcast
// to every other node.
func (b *Bus) complete(tx *Node, f Frame, failed bool) {
	if failed {
		st := tx.txError()
		b.mu.Lock()
		b.stats.Errors++
		b.stats.BusyTime += time.Duration(errorFrameBits) * b.bitTime
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceError, Node: tx.name, Frame: f})
		if st == BusOff {
			b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceBusOff, Node: tx.name, Frame: f})
		}
		b.busy = false
		b.mu.Unlock()
		b.sched.After(time.Duration(errorFrameBits)*b.bitTime, func(time.Duration) { b.kick() })
		return
	}
	tx.popHead()
	b.mu.Lock()
	b.stats.FramesDelivered++
	receivers := make([]*Node, 0, len(b.nodes)-1)
	for _, n := range b.nodes {
		if n != tx {
			receivers = append(receivers, n)
		}
	}
	b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceDelivered, Node: tx.name, Frame: f})
	b.busy = false
	b.mu.Unlock()
	for _, r := range receivers {
		r.deliver(f)
	}
	b.kick()
}

// Utilisation returns the fraction of elapsed virtual time the bus was busy.
func (b *Bus) Utilisation() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.sched.Now()
	if now <= 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(now)
}
