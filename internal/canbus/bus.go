package canbus

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// DefaultBitRate is the classical high-speed CAN bit rate used by the
// connected-car case study (500 kbit/s).
const DefaultBitRate = 500_000

// errorFrameBits approximates the bus time consumed by an error frame plus
// error delimiter and interframe space.
const errorFrameBits = 20

// TraceEventKind tags entries emitted through Bus.SetTracer.
type TraceEventKind uint8

// Trace event kinds.
const (
	// TraceTxStart marks the beginning of a frame transmission.
	TraceTxStart TraceEventKind = iota + 1
	// TraceDelivered marks a successful broadcast completion.
	TraceDelivered
	// TraceError marks an injected transmission error.
	TraceError
	// TraceWriteBlocked marks a frame stopped by an outbound inline filter.
	TraceWriteBlocked
	// TraceReadBlocked marks a frame stopped by an inbound inline filter.
	TraceReadBlocked
	// TraceBusOff marks a node entering bus-off.
	TraceBusOff
	// TraceTxAborted marks a transmission abandoned because the transmitter
	// was detached mid-frame.
	TraceTxAborted
)

// String returns the event kind name.
func (k TraceEventKind) String() string {
	switch k {
	case TraceTxStart:
		return "tx-start"
	case TraceDelivered:
		return "delivered"
	case TraceError:
		return "error"
	case TraceWriteBlocked:
		return "write-blocked"
	case TraceReadBlocked:
		return "read-blocked"
	case TraceBusOff:
		return "bus-off"
	case TraceTxAborted:
		return "tx-aborted"
	default:
		return "invalid"
	}
}

// TraceEvent is one bus-level occurrence, reported to the tracer callback.
type TraceEvent struct {
	At    time.Duration
	Kind  TraceEventKind
	Node  string
	Frame Frame
}

// String renders the event in one line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12v %-13s %-12s %s", e.At, e.Kind, e.Node, e.Frame)
}

// BusStats aggregates bus-level counters.
type BusStats struct {
	// FramesDelivered counts successful broadcasts.
	FramesDelivered uint64
	// Errors counts injected transmission errors.
	Errors uint64
	// WriteBlocked counts outbound filter blocks across all nodes.
	WriteBlocked uint64
	// ReadBlocked counts inbound filter blocks across all nodes.
	ReadBlocked uint64
	// AbortedTx counts transmissions abandoned by a mid-frame detach.
	AbortedTx uint64
	// BusyTime is the cumulative virtual time the bus carried bits.
	BusyTime time.Duration
}

// Config parameterises a Bus.
type Config struct {
	// BitRate in bits per second; DefaultBitRate if zero.
	BitRate int
	// ErrorRate is the probability that a transmission suffers a bit error
	// and must be retried. Zero disables error injection.
	ErrorRate float64
	// Seed feeds the deterministic RNG used for error injection.
	Seed uint64
}

// Bus is the shared broadcast medium of Fig. 2. All attached nodes receive
// every successfully transmitted frame except the sender; when several nodes
// contend, the lowest arbitration value (highest priority) wins, and losers
// retry, as on a real CSMA/CR bus.
//
// # Ownership model
//
// A Bus and its Nodes follow a single-owner execution model: every mutating
// call (Send, Attach, Detach, SetTracer, the scheduler-driven arbitration
// and delivery machinery) must happen on the goroutine that drives the
// owning sim.Scheduler. Because a Scheduler is strictly single-goroutine,
// the hot path carries no locks at all. The only cross-goroutine facade is
// Stats(), which may be called from another goroutine only across a
// synchronising handoff (the fleet engine's merger joins its workers before
// reading); there is exactly one writer, the owning goroutine.
type Bus struct {
	sched   *sim.Scheduler
	bitTime time.Duration
	errRate float64
	rng     *sim.RNG

	nodes      []*Node
	byName     map[string]*Node
	namesEvict bool // a snapped node left byName (Detach); Reset must re-admit
	busy       bool
	kickArmed  bool // an arbitration round is already scheduled for this instant
	tracer     func(TraceEvent)

	// rogues recycles post-snapshot node shells across resets when
	// SetRecycleRogues is on: Reset stashes them here instead of discarding,
	// and Attach revives a shell of the same name to fresh-node state while
	// keeping its transmit-queue and mailbox capacity.
	recycleRogues bool
	rogues        map[string]*Node

	// txPending lists the nodes with queued frames (unordered; arbitration
	// ties resolve by Node.order). Arbitration rounds walk this list instead
	// of scanning every station's queue state — with eight stations and
	// usually one transmitter, the full scan per round was one of the
	// hottest loops of a fleet sweep.
	txPending []*Node
	// orderSeq assigns Node.order at attach; Reset rewinds it past the
	// pristine set so re-attached rogues replay identical orders.
	orderSeq         int32
	pristineOrderSeq int32

	// wireCache memoises WireBits by frame content: periodic traffic and
	// repeated injections re-transmit identical frames, and counting stuff
	// bits is the single most expensive step of starting a transmission.
	// The mapping is pure, so the cache survives Reset — as does the
	// single-entry front cache (lastWireBits==0 means empty).
	wireCache    map[wireKey]int
	lastWireKey  wireKey
	lastWireBits int

	// In-flight transmission, valid while busy. Storing it on the bus (one
	// transmission can be in flight at a time) lets arbitrate reuse the two
	// pre-bound events below instead of allocating a closure per frame.
	// txBuf owns the in-flight payload: the winner's queue entry may shift
	// (popHead) before delivery, so txFrame.Data must not alias it.
	txNode   *Node
	txFrame  Frame
	txBuf    [MaxDataLen]byte
	txFailed bool

	kickEvent     sim.Event // runs arbitrate
	deferredKick  sim.Event // runs kickNow at the error-recovery instant (complete's error path)
	completeEvent sim.Event // runs complete
	rxScratch     []*Node   // cached receiver snapshot; rebuilt when rxDirty
	rxDirty       bool      // topology changed since rxScratch was built

	// pristine is the node set captured by MarkPristine, in attachment
	// order; Reset restores exactly this topology.
	pristine []*Node

	stats busCounters
}

// busCounters is the backing store for BusStats. Plain fields, written only
// by the owner goroutine (see Bus ownership model): the counters sit on the
// per-frame hot path, where the former atomic increments cost several
// percent of a fleet sweep on their own.
type busCounters struct {
	framesDelivered uint64
	errors          uint64
	writeBlocked    uint64
	readBlocked     uint64
	abortedTx       uint64
	busyTime        time.Duration
}

// New creates a bus driven by the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Bus {
	rate := cfg.BitRate
	if rate <= 0 {
		rate = DefaultBitRate
	}
	b := &Bus{
		sched:     sched,
		bitTime:   time.Second / time.Duration(rate),
		errRate:   cfg.ErrorRate,
		rng:       sim.NewRNG(cfg.Seed),
		byName:    map[string]*Node{},
		wireCache: map[wireKey]int{},
	}
	b.kickEvent = func(time.Duration) {
		b.kickArmed = false
		b.arbitrate()
	}
	b.deferredKick = func(time.Duration) { b.kickNow() }
	b.completeEvent = func(time.Duration) { b.complete() }
	return b
}

// Scheduler returns the simulation scheduler driving this bus.
func (b *Bus) Scheduler() *sim.Scheduler { return b.sched }

// BitTime returns the duration of a single bit on this bus.
func (b *Bus) BitTime() time.Duration { return b.bitTime }

// SetTracer installs a callback receiving every TraceEvent. Pass nil to
// disable tracing. Owner-goroutine only. The event's Frame payload is only
// valid during the callback (see Handler); a tracer that retains events
// must Clone the frame.
func (b *Bus) SetTracer(fn func(TraceEvent)) {
	b.tracer = fn
}

// Stats returns a snapshot of the bus counters. Owner-goroutine only, or
// from another goroutine across a synchronising handoff (see the ownership
// model above).
func (b *Bus) Stats() BusStats {
	return BusStats{
		FramesDelivered: b.stats.framesDelivered,
		Errors:          b.stats.errors,
		WriteBlocked:    b.stats.writeBlocked,
		ReadBlocked:     b.stats.readBlocked,
		AbortedTx:       b.stats.abortedTx,
		BusyTime:        b.stats.busyTime,
	}
}

// SetRecycleRogues enables recycling of post-snapshot node shells across
// Reset: instead of being discarded, a rogue node is parked detached and the
// next Attach of the same name revives the same object in fresh-node state,
// preserving its queue capacity. A revived shell aliases any stale reference
// a caller kept from its previous life, so this is only for single-owner
// harnesses that drop all node references between resets (the attack
// arena); the default keeps the discard semantics.
func (b *Bus) SetRecycleRogues(on bool) {
	b.recycleRogues = on
	if on && b.rogues == nil {
		b.rogues = map[string]*Node{}
	}
}

// Attach creates a node with the given name and joins it to the bus.
// Names must be unique per bus.
func (b *Bus) Attach(name string) (*Node, error) {
	if _, dup := b.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if shell, ok := b.rogues[name]; ok && b.recycleRogues {
		delete(b.rogues, name)
		shell.revive()
		shell.order = b.orderSeq
		b.orderSeq++
		b.nodes = append(b.nodes, shell)
		b.byName[name] = shell
		b.rxDirty = true
		return shell, nil
	}
	n := &Node{
		name:   name,
		bus:    b,
		ctrl:   NewController(),
		inline: PermissiveFilter{},
		order:  b.orderSeq,
	}
	b.orderSeq++
	b.nodes = append(b.nodes, n)
	b.byName[name] = n
	b.rxDirty = true
	return n, nil
}

// MustAttach is Attach that panics on duplicate names; for static topologies.
func (b *Bus) MustAttach(name string) *Node {
	n, err := b.Attach(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Detach removes a node from the bus (e.g. a malicious node being pulled).
// The node keeps its statistics but can no longer send or receive. If the
// node is mid-transmission, the transmission is abandoned: no delivery
// happens and the bus frees after the scheduled completion instant.
func (b *Bus) Detach(name string) bool {
	n, ok := b.byName[name]
	if !ok {
		return false
	}
	delete(b.byName, name)
	if n.snapped {
		b.namesEvict = true
	}
	for i, m := range b.nodes {
		if m == n {
			b.nodes = append(b.nodes[:i], b.nodes[i+1:]...)
			break
		}
	}
	n.detached = true
	n.txq = nil
	b.dropPending(n)
	b.rxDirty = true
	return true
}

// notePending adds a node to the pending-transmitter list (idempotent).
func (b *Bus) notePending(n *Node) {
	if !n.txPending {
		n.txPending = true
		b.txPending = append(b.txPending, n)
	}
}

// dropPending removes a node from the pending-transmitter list (idempotent).
func (b *Bus) dropPending(n *Node) {
	if !n.txPending {
		return
	}
	n.txPending = false
	for i, m := range b.txPending {
		if m == n {
			b.txPending = append(b.txPending[:i], b.txPending[i+1:]...)
			return
		}
	}
}

// Node returns the attached node with the given name.
func (b *Bus) Node(name string) (*Node, bool) {
	n, ok := b.byName[name]
	return n, ok
}

// Nodes returns the attached nodes sorted by name.
func (b *Bus) Nodes() []*Node {
	out := append([]*Node(nil), b.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (b *Bus) emit(e TraceEvent) {
	if b.tracer != nil {
		b.tracer(e)
	}
}

func (b *Bus) noteWriteBlocked(n *Node, f Frame) {
	b.stats.writeBlocked++
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceWriteBlocked, Node: n.name, Frame: f})
	}
}

func (b *Bus) noteReadBlocked(n *Node, f Frame) {
	b.stats.readBlocked++
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceReadBlocked, Node: n.name, Frame: f})
	}
}

// kick schedules an arbitration round at the current virtual instant. The
// one-event deferral models start-of-frame synchronisation: every node that
// queued a frame "now" contends in the same round instead of the first
// caller seizing the bus. Rounds are deduplicated: many frames queued at one
// instant arm a single arbitration event (the extra rounds were no-ops — the
// first one seizes the bus — so dedup changes no outcome, just event count).
func (b *Bus) kick() {
	if b.kickArmed {
		return
	}
	b.kickArmed = true
	b.sched.After(0, b.kickEvent)
}

// kickNow is kick for the bus's own completion machinery, called as the
// *last* action of its event callback. The zero-delay hop exists so every
// frame queued by other work at this same instant joins the arbitration
// round (SOF sync). At the end of a bus-internal event, the only remaining
// same-instant work is whatever sits in the queue: if the earliest queued
// event lies strictly in the future, the hop is provably a no-op, and the
// round runs inline — sparing the scheduler a push/pop per frame. Send-side
// kicks can never take this shortcut: the caller's own callback may queue
// more same-instant frames after Send returns.
func (b *Bus) kickNow() {
	if b.kickArmed {
		return
	}
	if next, ok := b.sched.NextAt(); !ok || next > b.sched.Now() {
		b.arbitrate()
		return
	}
	b.kickArmed = true
	b.sched.After(0, b.kickEvent)
}

// wireKey identifies a frame's exact wire encoding for the bit-count memo.
type wireKey struct {
	id    uint32
	dlc   uint8
	flags uint8 // bit 0: extended, bit 1: RTR
	data  [MaxDataLen]byte
}

// wireBitsOf is WireBits memoised by frame content.
func (b *Bus) wireBitsOf(f Frame) (int, error) {
	var k wireKey
	k.id, k.dlc = f.ID, f.DLC
	if f.Extended {
		k.flags |= 1
	}
	if f.RTR {
		k.flags |= 2
	}
	copy(k.data[:], f.Data)
	// Repeated transmissions of one frame arrive back to back (periodic
	// traffic, injection trains), so a single-entry cache in front of the
	// memo map skips the map hash on the common path.
	if k == b.lastWireKey && b.lastWireBits > 0 {
		return b.lastWireBits, nil
	}
	if n, ok := b.wireCache[k]; ok {
		b.lastWireKey, b.lastWireBits = k, n
		return n, nil
	}
	n, err := WireBits(f)
	if err != nil {
		return 0, err
	}
	if len(b.wireCache) < 4096 { // bound the memo; beyond it, recompute
		b.wireCache[k] = n
	}
	b.lastWireKey, b.lastWireBits = k, n
	return n, nil
}

// arbitrate starts a transmission if the bus is idle and someone has a
// pending frame.
func (b *Bus) arbitrate() {
	if b.busy {
		return
	}
	winner := b.pickWinner()
	if winner == nil {
		return
	}
	// Load the in-flight transmission straight from the winner's queue
	// entry: header from the queued frame, payload copied into the bus's
	// own buffer (the entry may shift before delivery).
	head := &winner.txq[0]
	b.busy = true
	b.txNode = winner
	b.txFrame = head.f
	if !head.f.RTR && head.dataLen > 0 {
		n := copy(b.txBuf[:], head.buf[:head.dataLen])
		b.txFrame.Data = b.txBuf[:n]
	}
	bits, err := b.wireBitsOf(b.txFrame)
	if err != nil {
		// Frames are validated in Send; an encode failure here is a bug.
		panic(fmt.Errorf("canbus: unencodable queued frame: %w", err))
	}
	dur := time.Duration(bits) * b.bitTime
	b.txFailed = b.errRate > 0 && b.rng.Bool(b.errRate)
	b.stats.busyTime += dur
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceTxStart, Node: winner.name, Frame: b.txFrame})
	}
	b.sched.After(dur, b.completeEvent)
}

// pickWinner selects the winning node among all nodes with pending frames
// and charges losers an arbitration loss. Ties on arbitration value are
// broken by attachment order, which stands in for the bit-level resolution a
// real bus performs.
func (b *Bus) pickWinner() *Node {
	// The contenders are exactly the pending-transmitter list: membership is
	// maintained at every queue transition (Send, popHead, bus-off, detach,
	// reset), so no per-round scan of the full station set is needed. The
	// list is unordered; ties on arbitration value resolve by attachment
	// order via Node.order, reproducing the ordered-scan semantics.
	// Uncontended fast path: most rounds have exactly one transmitter.
	if len(b.txPending) == 1 {
		return b.txPending[0]
	}
	var (
		winner  *Node
		bestVal uint64
	)
	for _, n := range b.txPending {
		v := n.txq[0].f.ArbitrationValue()
		if winner == nil || v < bestVal || (v == bestVal && n.order < winner.order) {
			winner, bestVal = n, v
		}
	}
	if winner == nil {
		return nil
	}
	for _, n := range b.txPending {
		if n != winner {
			n.noteArbitrationLoss()
		}
	}
	return winner
}

// complete finishes the in-flight transmission: on error the transmitter's
// TEC grows and the frame is retried (unless bus-off); on success the frame
// is broadcast to every other node. A transmitter detached mid-frame aborts
// the transmission without delivery.
func (b *Bus) complete() {
	tx, f, failed := b.txNode, b.txFrame, b.txFailed
	b.txNode, b.txFrame = nil, Frame{}

	if tx.detached {
		// The transmitter was pulled off the bus mid-frame (satellite of the
		// §V-B.2 malicious-node response): the partial frame is abandoned,
		// nothing is delivered or counted against the detached node, and the
		// bus frees for the next arbitration round.
		b.stats.abortedTx++
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceTxAborted, Node: tx.name, Frame: f})
		b.busy = false
		b.kickNow()
		return
	}

	if failed {
		st := tx.txError()
		b.stats.errors++
		b.stats.busyTime += time.Duration(errorFrameBits) * b.bitTime
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceError, Node: tx.name, Frame: f})
		if st == BusOff {
			b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceBusOff, Node: tx.name, Frame: f})
		}
		b.busy = false
		// Schedule kick, not arbitrate, at the recovery instant: the extra
		// zero-delay hop lets frames queued by other events firing at that
		// same instant join the arbitration round (kick's SOF-sync model).
		b.sched.After(time.Duration(errorFrameBits)*b.bitTime, b.deferredKick)
		return
	}

	tx.popHead()
	b.stats.framesDelivered++
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceDelivered, Node: tx.name, Frame: f})
	}
	b.busy = false
	// Deliver over a snapshot of the receiver set: a reentrant handler may
	// Attach/Detach and mutate b.nodes mid-loop. The snapshot pins the set
	// to transmission time (late joiners miss the frame); deliver itself
	// skips nodes detached mid-loop. The snapshot is cached and only rebuilt
	// after a topology change — copying eight node pointers per frame (with
	// their GC write barriers) showed up in fleet-sweep profiles.
	if b.rxDirty {
		b.rxScratch = append(b.rxScratch[:0], b.nodes...)
		b.rxDirty = false
	}
	for _, n := range b.rxScratch {
		if n != tx {
			n.deliver(f)
		}
	}
	b.kickNow()
}

// MarkPristine captures the current topology and per-node configuration as
// the bus's pristine state: Reset restores exactly this snapshot. Call it
// once, after static topology construction (car.New does); a bus that was
// never marked resets to an empty topology. Owner-goroutine only.
func (b *Bus) MarkPristine() {
	b.pristine = append(b.pristine[:0], b.nodes...)
	for _, n := range b.nodes {
		n.snapshot()
	}
	b.pristineOrderSeq = b.orderSeq
}

// Reset restores the bus to its pristine snapshot without allocating: nodes
// attached after MarkPristine are discarded (and marked detached, so stale
// references fail safe), snapshot nodes are restored to their captured
// configuration with all mutable state cleared, counters are zeroed, the
// tracer is removed and the error-injection RNG is reseeded from cfg. The
// owning scheduler is NOT touched — reset it first (car.Car.Reset does).
// Owner-goroutine only.
func (b *Bus) Reset(cfg Config) {
	rate := cfg.BitRate
	if rate <= 0 {
		rate = DefaultBitRate
	}
	b.bitTime = time.Second / time.Duration(rate)
	b.errRate = cfg.ErrorRate
	b.rng.Reseed(cfg.Seed)
	b.busy = false
	b.kickArmed = false
	b.txNode, b.txFrame, b.txFailed = nil, Frame{}, false
	b.tracer = nil
	for _, n := range b.txPending {
		n.txPending = false
	}
	b.txPending = b.txPending[:0]
	b.orderSeq = b.pristineOrderSeq
	for _, n := range b.nodes {
		if !n.snapped {
			n.detached = true
			delete(b.byName, n.name)
			if b.recycleRogues {
				// Park the shell (queue capacity intact) for the next
				// Attach of this name; revive restores fresh-node state.
				b.rogues[n.name] = n
			} else {
				n.txq = nil
			}
		}
	}
	b.nodes = append(b.nodes[:0], b.pristine...)
	b.rxDirty = true
	for _, n := range b.pristine {
		n.reset()
	}
	if b.namesEvict {
		// Re-admit pristine nodes Detach removed. Guarded: eight map assigns
		// per reset is measurable when a sweep resets per scenario cell, and
		// attach/detach of post-snapshot nodes never touches pristine names.
		for _, n := range b.pristine {
			b.byName[n.name] = n
		}
		b.namesEvict = false
	}
	b.stats = busCounters{}
}

// Utilisation returns the fraction of elapsed virtual time the bus was busy.
func (b *Bus) Utilisation() float64 {
	now := b.sched.Now()
	if now <= 0 {
		return 0
	}
	return float64(b.stats.busyTime) / float64(now)
}
