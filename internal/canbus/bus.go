package canbus

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// DefaultBitRate is the classical high-speed CAN bit rate used by the
// connected-car case study (500 kbit/s).
const DefaultBitRate = 500_000

// errorFrameBits approximates the bus time consumed by an error frame plus
// error delimiter and interframe space.
const errorFrameBits = 20

// TraceEventKind tags entries emitted through Bus.SetTracer.
type TraceEventKind uint8

// Trace event kinds.
const (
	// TraceTxStart marks the beginning of a frame transmission.
	TraceTxStart TraceEventKind = iota + 1
	// TraceDelivered marks a successful broadcast completion.
	TraceDelivered
	// TraceError marks an injected transmission error.
	TraceError
	// TraceWriteBlocked marks a frame stopped by an outbound inline filter.
	TraceWriteBlocked
	// TraceReadBlocked marks a frame stopped by an inbound inline filter.
	TraceReadBlocked
	// TraceBusOff marks a node entering bus-off.
	TraceBusOff
	// TraceTxAborted marks a transmission abandoned because the transmitter
	// was detached mid-frame.
	TraceTxAborted
)

// String returns the event kind name.
func (k TraceEventKind) String() string {
	switch k {
	case TraceTxStart:
		return "tx-start"
	case TraceDelivered:
		return "delivered"
	case TraceError:
		return "error"
	case TraceWriteBlocked:
		return "write-blocked"
	case TraceReadBlocked:
		return "read-blocked"
	case TraceBusOff:
		return "bus-off"
	case TraceTxAborted:
		return "tx-aborted"
	default:
		return "invalid"
	}
}

// TraceEvent is one bus-level occurrence, reported to the tracer callback.
type TraceEvent struct {
	At    time.Duration
	Kind  TraceEventKind
	Node  string
	Frame Frame
}

// String renders the event in one line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12v %-13s %-12s %s", e.At, e.Kind, e.Node, e.Frame)
}

// BusStats aggregates bus-level counters.
type BusStats struct {
	// FramesDelivered counts successful broadcasts.
	FramesDelivered uint64
	// Errors counts injected transmission errors.
	Errors uint64
	// WriteBlocked counts outbound filter blocks across all nodes.
	WriteBlocked uint64
	// ReadBlocked counts inbound filter blocks across all nodes.
	ReadBlocked uint64
	// AbortedTx counts transmissions abandoned by a mid-frame detach.
	AbortedTx uint64
	// BusyTime is the cumulative virtual time the bus carried bits.
	BusyTime time.Duration
}

// Config parameterises a Bus.
type Config struct {
	// BitRate in bits per second; DefaultBitRate if zero.
	BitRate int
	// ErrorRate is the probability that a transmission suffers a bit error
	// and must be retried. Zero disables error injection.
	ErrorRate float64
	// Seed feeds the deterministic RNG used for error injection.
	Seed uint64
}

// Bus is the shared broadcast medium of Fig. 2. All attached nodes receive
// every successfully transmitted frame except the sender; when several nodes
// contend, the lowest arbitration value (highest priority) wins, and losers
// retry, as on a real CSMA/CR bus.
//
// # Ownership model
//
// A Bus and its Nodes follow a single-owner execution model: every mutating
// call (Send, Attach, Detach, SetTracer, the scheduler-driven arbitration
// and delivery machinery) must happen on the goroutine that drives the
// owning sim.Scheduler. Because a Scheduler is strictly single-goroutine,
// the hot path carries no locks at all. The only cross-goroutine facade is
// Stats(), which may be called from another goroutine only across a
// synchronising handoff (the fleet engine's merger joins its workers before
// reading); there is exactly one writer, the owning goroutine.
type Bus struct {
	sched   *sim.Scheduler
	bitTime time.Duration
	errRate float64
	rng     *sim.RNG

	nodes     []*Node
	byName    map[string]*Node
	busy      bool
	kickArmed bool // an arbitration round is already scheduled for this instant
	tracer    func(TraceEvent)

	// wireCache memoises WireBits by frame content: periodic traffic and
	// repeated injections re-transmit identical frames, and counting stuff
	// bits is the single most expensive step of starting a transmission.
	// The mapping is pure, so the cache survives Reset.
	wireCache map[wireKey]int

	// In-flight transmission, valid while busy. Storing it on the bus (one
	// transmission can be in flight at a time) lets arbitrate reuse the two
	// pre-bound events below instead of allocating a closure per frame.
	// txBuf owns the in-flight payload: the winner's queue entry may shift
	// (popHead) before delivery, so txFrame.Data must not alias it.
	txNode   *Node
	txFrame  Frame
	txBuf    [MaxDataLen]byte
	txFailed bool

	kickEvent     sim.Event // runs arbitrate
	deferredKick  sim.Event // runs kick (one extra hop: see complete's error path)
	completeEvent sim.Event // runs complete
	rxScratch     []*Node   // reusable receiver snapshot for delivery
	pwScratch     []*Node   // reusable contender scratch for pickWinner

	// pristine is the node set captured by MarkPristine, in attachment
	// order; Reset restores exactly this topology.
	pristine []*Node

	stats busCounters
}

// busCounters is the backing store for BusStats. Plain fields, written only
// by the owner goroutine (see Bus ownership model): the counters sit on the
// per-frame hot path, where the former atomic increments cost several
// percent of a fleet sweep on their own.
type busCounters struct {
	framesDelivered uint64
	errors          uint64
	writeBlocked    uint64
	readBlocked     uint64
	abortedTx       uint64
	busyTime        time.Duration
}

// New creates a bus driven by the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Bus {
	rate := cfg.BitRate
	if rate <= 0 {
		rate = DefaultBitRate
	}
	b := &Bus{
		sched:     sched,
		bitTime:   time.Second / time.Duration(rate),
		errRate:   cfg.ErrorRate,
		rng:       sim.NewRNG(cfg.Seed),
		byName:    map[string]*Node{},
		wireCache: map[wireKey]int{},
	}
	b.kickEvent = func(time.Duration) {
		b.kickArmed = false
		b.arbitrate()
	}
	b.deferredKick = func(time.Duration) { b.kick() }
	b.completeEvent = func(time.Duration) { b.complete() }
	return b
}

// Scheduler returns the simulation scheduler driving this bus.
func (b *Bus) Scheduler() *sim.Scheduler { return b.sched }

// BitTime returns the duration of a single bit on this bus.
func (b *Bus) BitTime() time.Duration { return b.bitTime }

// SetTracer installs a callback receiving every TraceEvent. Pass nil to
// disable tracing. Owner-goroutine only. The event's Frame payload is only
// valid during the callback (see Handler); a tracer that retains events
// must Clone the frame.
func (b *Bus) SetTracer(fn func(TraceEvent)) {
	b.tracer = fn
}

// Stats returns a snapshot of the bus counters. Owner-goroutine only, or
// from another goroutine across a synchronising handoff (see the ownership
// model above).
func (b *Bus) Stats() BusStats {
	return BusStats{
		FramesDelivered: b.stats.framesDelivered,
		Errors:          b.stats.errors,
		WriteBlocked:    b.stats.writeBlocked,
		ReadBlocked:     b.stats.readBlocked,
		AbortedTx:       b.stats.abortedTx,
		BusyTime:        b.stats.busyTime,
	}
}

// Attach creates a node with the given name and joins it to the bus.
// Names must be unique per bus.
func (b *Bus) Attach(name string) (*Node, error) {
	if _, dup := b.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	n := &Node{
		name:   name,
		bus:    b,
		ctrl:   NewController(),
		inline: PermissiveFilter{},
	}
	b.nodes = append(b.nodes, n)
	b.byName[name] = n
	return n, nil
}

// MustAttach is Attach that panics on duplicate names; for static topologies.
func (b *Bus) MustAttach(name string) *Node {
	n, err := b.Attach(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Detach removes a node from the bus (e.g. a malicious node being pulled).
// The node keeps its statistics but can no longer send or receive. If the
// node is mid-transmission, the transmission is abandoned: no delivery
// happens and the bus frees after the scheduled completion instant.
func (b *Bus) Detach(name string) bool {
	n, ok := b.byName[name]
	if !ok {
		return false
	}
	delete(b.byName, name)
	for i, m := range b.nodes {
		if m == n {
			b.nodes = append(b.nodes[:i], b.nodes[i+1:]...)
			break
		}
	}
	n.detached = true
	n.txq = nil
	return true
}

// Node returns the attached node with the given name.
func (b *Bus) Node(name string) (*Node, bool) {
	n, ok := b.byName[name]
	return n, ok
}

// Nodes returns the attached nodes sorted by name.
func (b *Bus) Nodes() []*Node {
	out := append([]*Node(nil), b.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (b *Bus) emit(e TraceEvent) {
	if b.tracer != nil {
		b.tracer(e)
	}
}

func (b *Bus) noteWriteBlocked(n *Node, f Frame) {
	b.stats.writeBlocked++
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceWriteBlocked, Node: n.name, Frame: f})
	}
}

func (b *Bus) noteReadBlocked(n *Node, f Frame) {
	b.stats.readBlocked++
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceReadBlocked, Node: n.name, Frame: f})
	}
}

// kick schedules an arbitration round at the current virtual instant. The
// one-event deferral models start-of-frame synchronisation: every node that
// queued a frame "now" contends in the same round instead of the first
// caller seizing the bus. Rounds are deduplicated: many frames queued at one
// instant arm a single arbitration event (the extra rounds were no-ops — the
// first one seizes the bus — so dedup changes no outcome, just event count).
func (b *Bus) kick() {
	if b.kickArmed {
		return
	}
	b.kickArmed = true
	b.sched.After(0, b.kickEvent)
}

// wireKey identifies a frame's exact wire encoding for the bit-count memo.
type wireKey struct {
	id    uint32
	dlc   uint8
	flags uint8 // bit 0: extended, bit 1: RTR
	data  [MaxDataLen]byte
}

// wireBitsOf is WireBits memoised by frame content.
func (b *Bus) wireBitsOf(f Frame) (int, error) {
	var k wireKey
	k.id, k.dlc = f.ID, f.DLC
	if f.Extended {
		k.flags |= 1
	}
	if f.RTR {
		k.flags |= 2
	}
	copy(k.data[:], f.Data)
	if n, ok := b.wireCache[k]; ok {
		return n, nil
	}
	n, err := WireBits(f)
	if err != nil {
		return 0, err
	}
	if len(b.wireCache) < 4096 { // bound the memo; beyond it, recompute
		b.wireCache[k] = n
	}
	return n, nil
}

// arbitrate starts a transmission if the bus is idle and someone has a
// pending frame.
func (b *Bus) arbitrate() {
	if b.busy {
		return
	}
	winner, frame, ok := b.pickWinner()
	if !ok {
		return
	}
	b.busy = true
	bits, err := b.wireBitsOf(frame)
	if err != nil {
		// Frames are validated in Send; an encode failure here is a bug.
		panic(fmt.Errorf("canbus: unencodable queued frame: %w", err))
	}
	dur := time.Duration(bits) * b.bitTime
	b.txNode = winner
	b.txFrame = frame
	if len(frame.Data) > 0 {
		n := copy(b.txBuf[:], frame.Data)
		b.txFrame.Data = b.txBuf[:n]
	}
	b.txFailed = b.errRate > 0 && b.rng.Bool(b.errRate)
	b.stats.busyTime += dur
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceTxStart, Node: winner.name, Frame: frame})
	}
	b.sched.After(dur, b.completeEvent)
}

// pickWinner selects the winning node among all nodes with pending frames
// and charges losers an arbitration loss. Ties on arbitration value are
// broken by attachment order, which stands in for the bit-level resolution a
// real bus performs.
func (b *Bus) pickWinner() (*Node, Frame, bool) {
	// Single pass over the stations: contenders are collected into a
	// reusable scratch while the winner is tracked, so losers are charged
	// without re-walking every node's queue state.
	var (
		winner  *Node
		best    Frame
		bestVal uint64
	)
	contenders := b.pwScratch[:0]
	for _, n := range b.nodes {
		f, ok := n.pendingHead()
		if !ok {
			continue
		}
		contenders = append(contenders, n)
		v := f.ArbitrationValue()
		if winner == nil || v < bestVal {
			winner, best, bestVal = n, f, v
		}
	}
	b.pwScratch = contenders
	if winner == nil {
		return nil, Frame{}, false
	}
	for _, n := range contenders {
		if n != winner {
			n.noteArbitrationLoss()
		}
	}
	return winner, best, true
}

// complete finishes the in-flight transmission: on error the transmitter's
// TEC grows and the frame is retried (unless bus-off); on success the frame
// is broadcast to every other node. A transmitter detached mid-frame aborts
// the transmission without delivery.
func (b *Bus) complete() {
	tx, f, failed := b.txNode, b.txFrame, b.txFailed
	b.txNode, b.txFrame = nil, Frame{}

	if tx.detached {
		// The transmitter was pulled off the bus mid-frame (satellite of the
		// §V-B.2 malicious-node response): the partial frame is abandoned,
		// nothing is delivered or counted against the detached node, and the
		// bus frees for the next arbitration round.
		b.stats.abortedTx++
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceTxAborted, Node: tx.name, Frame: f})
		b.busy = false
		b.kick()
		return
	}

	if failed {
		st := tx.txError()
		b.stats.errors++
		b.stats.busyTime += time.Duration(errorFrameBits) * b.bitTime
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceError, Node: tx.name, Frame: f})
		if st == BusOff {
			b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceBusOff, Node: tx.name, Frame: f})
		}
		b.busy = false
		// Schedule kick, not arbitrate, at the recovery instant: the extra
		// zero-delay hop lets frames queued by other events firing at that
		// same instant join the arbitration round (kick's SOF-sync model).
		b.sched.After(time.Duration(errorFrameBits)*b.bitTime, b.deferredKick)
		return
	}

	tx.popHead()
	b.stats.framesDelivered++
	if b.tracer != nil {
		b.emit(TraceEvent{At: b.sched.Now(), Kind: TraceDelivered, Node: tx.name, Frame: f})
	}
	b.busy = false
	// Snapshot receivers into a reusable scratch slice before delivering: a
	// reentrant handler may Attach/Detach and mutate b.nodes mid-loop. The
	// snapshot pins the receiver set to transmission time (late joiners miss
	// the frame); deliver itself skips nodes detached mid-loop.
	b.rxScratch = append(b.rxScratch[:0], b.nodes...)
	for _, n := range b.rxScratch {
		if n != tx {
			n.deliver(f)
		}
	}
	b.kick()
}

// MarkPristine captures the current topology and per-node configuration as
// the bus's pristine state: Reset restores exactly this snapshot. Call it
// once, after static topology construction (car.New does); a bus that was
// never marked resets to an empty topology. Owner-goroutine only.
func (b *Bus) MarkPristine() {
	b.pristine = append(b.pristine[:0], b.nodes...)
	for _, n := range b.nodes {
		n.snapshot()
	}
}

// Reset restores the bus to its pristine snapshot without allocating: nodes
// attached after MarkPristine are discarded (and marked detached, so stale
// references fail safe), snapshot nodes are restored to their captured
// configuration with all mutable state cleared, counters are zeroed, the
// tracer is removed and the error-injection RNG is reseeded from cfg. The
// owning scheduler is NOT touched — reset it first (car.Car.Reset does).
// Owner-goroutine only.
func (b *Bus) Reset(cfg Config) {
	rate := cfg.BitRate
	if rate <= 0 {
		rate = DefaultBitRate
	}
	b.bitTime = time.Second / time.Duration(rate)
	b.errRate = cfg.ErrorRate
	b.rng.Reseed(cfg.Seed)
	b.busy = false
	b.kickArmed = false
	b.txNode, b.txFrame, b.txFailed = nil, Frame{}, false
	b.tracer = nil
	for _, n := range b.nodes {
		if !n.snapped {
			n.detached = true
			n.txq = nil
			delete(b.byName, n.name)
		}
	}
	b.nodes = append(b.nodes[:0], b.pristine...)
	for _, n := range b.pristine {
		n.reset()
		b.byName[n.name] = n // re-admit nodes Detach removed
	}
	b.stats = busCounters{}
}

// Utilisation returns the fraction of elapsed virtual time the bus was busy.
func (b *Bus) Utilisation() float64 {
	now := b.sched.Now()
	if now <= 0 {
		return 0
	}
	return float64(b.stats.busyTime) / float64(now)
}
