package canbus

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCRC15KnownProperties(t *testing.T) {
	// CRC of the empty sequence is 0.
	if got := CRC15(nil); got != 0 {
		t.Errorf("CRC15(nil) = %04X, want 0", got)
	}
	// A single 1 bit yields the polynomial itself (shifted in).
	if got := CRC15([]byte{1}); got != crcPoly&0x7FFF {
		t.Errorf("CRC15([1]) = %04X, want %04X", got, crcPoly&0x7FFF)
	}
	// CRC must detect any single-bit flip.
	msg := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	orig := CRC15(msg)
	for i := range msg {
		msg[i] ^= 1
		if CRC15(msg) == orig {
			t.Errorf("single-bit flip at %d not detected", i)
		}
		msg[i] ^= 1
	}
}

func TestStuffDestuffRoundTrip(t *testing.T) {
	seqs := [][]byte{
		{0, 0, 0, 0, 0},                      // exactly one stuff point
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},       // repeated stuffing
		{0, 1, 0, 1, 0, 1},                   // no stuffing needed
		{0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0}, // mixed
		{},
	}
	for _, s := range seqs {
		stuffed := stuff(s)
		got, err := destuff(stuffed)
		if err != nil {
			t.Fatalf("destuff(%v): %v", s, err)
		}
		if len(got) != len(s) {
			t.Fatalf("round trip length %d != %d", len(got), len(s))
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("round trip mismatch at %d: %v vs %v", i, got, s)
			}
		}
	}
}

func TestStuffNeverSixInARow(t *testing.T) {
	prop := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		stuffed := stuff(bits)
		run, last := 0, byte(2)
		for _, b := range stuffed {
			if b == last {
				run++
				if run >= 6 {
					return false
				}
			} else {
				run, last = 1, b
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDestuffDetectsViolation(t *testing.T) {
	// Six equal bits in a row is a stuffing violation.
	if _, err := destuff([]byte{0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrStuffViolation) {
		t.Errorf("destuff accepted six equal bits: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frames := []Frame{
		MustDataFrame(0x000, nil),
		MustDataFrame(0x555, []byte{0x55, 0xAA}),
		MustDataFrame(0x7FF, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}),
		{ID: 0x1ABCDEF0 & MaxExtendedID, Extended: true, Data: []byte{1, 2, 3}, DLC: 3},
		{ID: 0x123, RTR: true, DLC: 5},
		{ID: 0x18FF00AA, Extended: true, RTR: true, DLC: 0},
	}
	for _, f := range frames {
		f := f
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		bits, err := EncodeBits(f)
		if err != nil {
			t.Fatalf("encode %v: %v", f, err)
		}
		g, err := DecodeBits(bits)
		if err != nil {
			t.Fatalf("decode %v: %v", f, err)
		}
		if !f.Equal(g) {
			t.Errorf("round trip mismatch: %v -> %v", f, g)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	prop := func(id uint32, ext bool, payload []byte) bool {
		f := Frame{Extended: ext}
		if ext {
			f.ID = id % (MaxExtendedID + 1)
		} else {
			f.ID = id % (MaxStandardID + 1)
		}
		if len(payload) > MaxDataLen {
			payload = payload[:MaxDataLen]
		}
		f.Data = payload
		if err := f.Validate(); err != nil {
			return false
		}
		bits, err := EncodeBits(f)
		if err != nil {
			return false
		}
		g, err := DecodeBits(bits)
		if err != nil {
			return false
		}
		return f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	f := MustDataFrame(0x2A5, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	bits, err := EncodeBits(f)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every bit position in the stuffed body one at a time; decoding
	// must never silently return a *different valid* frame. (Some flips
	// yield stuffing violations, some CRC errors, some form errors; a flip
	// may in principle produce the same frame only if it is undetectable,
	// which CRC-15 prevents for single-bit errors.)
	for i := 0; i < len(bits)-eofBits-3; i++ {
		mutated := append([]byte(nil), bits...)
		mutated[i] ^= 1
		g, err := DecodeBits(mutated)
		if err == nil && !g.Equal(f) {
			t.Fatalf("bit flip at %d decoded silently to different frame %v", i, g)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	f := MustDataFrame(0x100, []byte{1})
	bits, _ := EncodeBits(f)
	for _, n := range []int{0, 5, len(bits) / 2} {
		if _, err := DecodeBits(bits[:n]); err == nil {
			t.Errorf("decoded truncated stream of %d bits", n)
		}
	}
}

func TestDecodeRejectsBadTrailer(t *testing.T) {
	f := MustDataFrame(0x100, []byte{1})
	bits, _ := EncodeBits(f)
	// Dominant bit inside EOF is a form violation.
	bad := append([]byte(nil), bits...)
	bad[len(bad)-1] = dominant
	if _, err := DecodeBits(bad); !errors.Is(err, ErrFormViolation) {
		t.Errorf("bad EOF accepted: %v", err)
	}
}

func TestWireBitsBounds(t *testing.T) {
	// A standard frame with 0 data bytes: 1 SOF + 11 ID + 1 RTR + 2 + 4 DLC
	// + 15 CRC = 34 stuffable bits, + 10 trailer + 3 IFS => at least 47.
	empty := MustDataFrame(0, nil)
	n, err := WireBits(empty)
	if err != nil {
		t.Fatal(err)
	}
	if n < 47 {
		t.Errorf("WireBits(empty) = %d, want >= 47", n)
	}
	full := MustDataFrame(0x7FF, make([]byte, 8))
	m, err := WireBits(full)
	if err != nil {
		t.Fatal(err)
	}
	if m <= n {
		t.Errorf("8-byte frame (%d bits) not longer than empty frame (%d bits)", m, n)
	}
	// Upper bound: 111 raw bits + worst-case stuffing (~25%) + trailer + IFS.
	if m > 160 {
		t.Errorf("WireBits(full) = %d, implausibly large", m)
	}
}

func TestWireBitsMonotonicInPayload(t *testing.T) {
	prev := 0
	for n := 0; n <= 8; n++ {
		f := MustDataFrame(0x2AA, make([]byte, n)) // 0x00 bytes stuff heavily
		bits, err := WireBits(f)
		if err != nil {
			t.Fatal(err)
		}
		if bits <= prev {
			t.Errorf("WireBits not increasing: %d bytes -> %d bits (prev %d)", n, bits, prev)
		}
		prev = bits
	}
}

func TestWireBitsMatchesEncodeBits(t *testing.T) {
	frames := []Frame{
		MustDataFrame(0x123, []byte{1, 2, 3, 4}),
		MustDataFrame(0x000, nil),
		MustDataFrame(0x7FF, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}),
		MustDataFrame(0x555, []byte{0xAA, 0x55, 0xAA}),
		{ID: 0x1ABCDEF0, Extended: true, Data: []byte{9, 8, 7}, DLC: 3},
		{ID: 0x42, RTR: true, DLC: 4},
	}
	for _, f := range frames {
		wire, err := EncodeBits(f)
		if err != nil {
			t.Fatalf("EncodeBits(%v): %v", f, err)
		}
		n, err := WireBits(f)
		if err != nil {
			t.Fatalf("WireBits(%v): %v", f, err)
		}
		if want := len(wire) + interframeBits; n != want {
			t.Errorf("WireBits(%v) = %d, want %d", f, n, want)
		}
	}
}

func TestWireBitsDoesNotAllocate(t *testing.T) {
	f := MustDataFrame(0x2A5, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := WireBits(f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("WireBits allocates %.1f objects/op, want 0", allocs)
	}
}
