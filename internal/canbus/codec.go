package canbus

import (
	"errors"
	"fmt"
)

// crcPoly is the CAN CRC-15 generator polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
const crcPoly = 0x4599

// CRC15 computes the 15-bit CAN checksum over a bit sequence
// (each element of bits must be 0 or 1).
func CRC15(bits []byte) uint16 {
	var crc uint16
	for _, b := range bits {
		in := b & 1
		crcNext := byte(crc>>14) & 1
		crc = (crc << 1) & 0x7FFF
		if crcNext^in == 1 {
			crc ^= crcPoly
		}
	}
	return crc & 0x7FFF
}

// Bit-level constants of the CAN frame format.
const (
	dominant  = 0
	recessive = 1

	// stuffRun is the number of equal consecutive bits after which a stuff
	// bit of opposite polarity is inserted.
	stuffRun = 5

	// eofBits is the length of the end-of-frame field.
	eofBits = 7

	// interframeBits is the minimum bus-idle gap between frames.
	interframeBits = 3
)

// Codec errors.
var (
	ErrStuffViolation = errors.New("canbus: bit stuffing violation")
	ErrCRCMismatch    = errors.New("canbus: CRC mismatch")
	ErrTruncated      = errors.New("canbus: truncated bitstream")
	ErrFormViolation  = errors.New("canbus: form error in fixed-form field")
)

// appendBits appends the low n bits of v, most significant first.
func appendBits(dst []byte, v uint64, n int) []byte {
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>uint(i))&1)
	}
	return dst
}

// headerBits renders the frame fields covered by the CRC (SOF through the
// data field), before stuffing.
func headerBits(f Frame) ([]byte, error) {
	return headerBitsInto(make([]byte, 0, 128), f)
}

// headerBitsInto appends the pre-stuffing SOF..data bits to dst; the
// arbitration hot path passes a stack buffer so bus-time accounting does not
// allocate.
func headerBitsInto(dst []byte, f Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	bits := dst
	bits = append(bits, dominant) // SOF

	rtr := byte(dominant)
	if f.RTR {
		rtr = recessive
	}
	if !f.Extended {
		// Standard: 11-bit ID, RTR, IDE(=0), r0.
		bits = appendBits(bits, uint64(f.ID), 11)
		bits = append(bits, rtr)
		bits = append(bits, dominant) // IDE
		bits = append(bits, dominant) // r0
	} else {
		// Extended: 11-bit base, SRR(=1), IDE(=1), 18-bit extension, RTR, r1, r0.
		bits = appendBits(bits, uint64(f.ID>>18), 11)
		bits = append(bits, recessive) // SRR
		bits = append(bits, recessive) // IDE
		bits = appendBits(bits, uint64(f.ID&0x3FFFF), 18)
		bits = append(bits, rtr)
		bits = append(bits, recessive) // r1
		bits = append(bits, dominant)  // r0
	}
	bits = appendBits(bits, uint64(f.DLC), 4)
	for _, b := range f.Data {
		bits = appendBits(bits, uint64(b), 8)
	}
	return bits, nil
}

// stuff applies CAN bit stuffing: after five consecutive equal bits a bit of
// opposite polarity is inserted. Returns the stuffed stream.
func stuff(bits []byte) []byte {
	out := make([]byte, 0, len(bits)+len(bits)/4)
	run := 0
	var last byte = 2 // neither 0 nor 1
	for _, b := range bits {
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		out = append(out, b)
		if run == stuffRun {
			stuffBit := byte(1) - b
			out = append(out, stuffBit)
			last = stuffBit
			run = 1
		}
	}
	return out
}

// destuff removes stuff bits and detects stuffing violations (six equal
// consecutive bits inside the stuffed region).
func destuff(bits []byte) ([]byte, error) {
	out := make([]byte, 0, len(bits))
	run := 0
	var last byte = 2
	expectStuff := false
	for i, b := range bits {
		if expectStuff {
			if b == last {
				return nil, fmt.Errorf("%w: at stuffed bit %d", ErrStuffViolation, i)
			}
			expectStuff = false
			run = 1
			last = b
			continue
		}
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		out = append(out, b)
		if run == stuffRun {
			expectStuff = true
		}
	}
	return out, nil
}

// EncodeBits renders a frame into its on-wire bit sequence: the stuffed
// SOF..CRC region followed by the fixed-form CRC delimiter, ACK slot, ACK
// delimiter and EOF. The ACK slot is emitted recessive, as transmitted by
// the sender (receivers overwrite it with a dominant bit on a real bus).
func EncodeBits(f Frame) ([]byte, error) {
	hdr, err := headerBits(f)
	if err != nil {
		return nil, err
	}
	crc := CRC15(hdr)
	stuffRegion := append([]byte(nil), hdr...)
	stuffRegion = appendBits(stuffRegion, uint64(crc), 15)
	wire := stuff(stuffRegion)
	wire = append(wire, recessive) // CRC delimiter
	wire = append(wire, recessive) // ACK slot (as transmitted)
	wire = append(wire, recessive) // ACK delimiter
	for i := 0; i < eofBits; i++ {
		wire = append(wire, recessive)
	}
	return wire, nil
}

// DecodeBits parses a bit sequence produced by EncodeBits back into a frame,
// verifying stuffing, CRC and the fixed-form trailer.
func DecodeBits(bits []byte) (Frame, error) {
	const trailer = 3 + eofBits // CRC delim + ACK slot + ACK delim + EOF
	if len(bits) < trailer+1 {
		return Frame{}, ErrTruncated
	}
	body, tail := bits[:len(bits)-trailer], bits[len(bits)-trailer:]
	// CRC delimiter and ACK delimiter must be recessive; EOF all recessive.
	if tail[0] != recessive || tail[2] != recessive {
		return Frame{}, ErrFormViolation
	}
	for _, b := range tail[3:] {
		if b != recessive {
			return Frame{}, ErrFormViolation
		}
	}
	raw, err := destuff(body)
	if err != nil {
		return Frame{}, err
	}
	if len(raw) < 1+11+3+4+15 {
		return Frame{}, ErrTruncated
	}
	if raw[0] != dominant {
		return Frame{}, ErrFormViolation
	}
	pos := 1
	take := func(n int) (uint64, error) {
		if pos+n > len(raw) {
			return 0, ErrTruncated
		}
		var v uint64
		for i := 0; i < n; i++ {
			v = v<<1 | uint64(raw[pos+i])
		}
		pos += n
		return v, nil
	}
	var f Frame
	base, err := take(11)
	if err != nil {
		return Frame{}, err
	}
	b12, err := take(1) // RTR (std) or SRR (ext)
	if err != nil {
		return Frame{}, err
	}
	ide, err := take(1)
	if err != nil {
		return Frame{}, err
	}
	if ide == dominant {
		f.ID = uint32(base)
		f.RTR = b12 == recessive
		if _, err := take(1); err != nil { // r0
			return Frame{}, err
		}
	} else {
		f.Extended = true
		ext, err := take(18)
		if err != nil {
			return Frame{}, err
		}
		f.ID = uint32(base)<<18 | uint32(ext)
		rtr, err := take(1)
		if err != nil {
			return Frame{}, err
		}
		f.RTR = rtr == recessive
		if _, err := take(2); err != nil { // r1, r0
			return Frame{}, err
		}
	}
	dlc, err := take(4)
	if err != nil {
		return Frame{}, err
	}
	f.DLC = uint8(dlc)
	if !f.RTR {
		n := int(f.DLC)
		if n > MaxDataLen {
			return Frame{}, fmt.Errorf("%w: dlc=%d", ErrBadDLC, f.DLC)
		}
		f.Data = make([]byte, n)
		for i := 0; i < n; i++ {
			v, err := take(8)
			if err != nil {
				return Frame{}, err
			}
			f.Data[i] = byte(v)
		}
	}
	crcField, err := take(15)
	if err != nil {
		return Frame{}, err
	}
	if pos != len(raw) {
		return Frame{}, fmt.Errorf("%w: %d trailing bits", ErrFormViolation, len(raw)-pos)
	}
	want := CRC15(raw[:len(raw)-15])
	if uint16(crcField) != want {
		return Frame{}, fmt.Errorf("%w: got %04X want %04X", ErrCRCMismatch, crcField, want)
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// WireBits returns the total number of bits the frame occupies on the bus,
// including stuffing, trailer and the mandatory interframe space. It is the
// quantity the bus timing model multiplies by the bit time.
func WireBits(f Frame) (int, error) {
	// Build the unstuffed SOF..CRC region in a stack buffer (<= 118 bits for
	// any CAN 2.0 frame) and count stuff bits without materializing the
	// stuffed stream; this keeps per-transmission bus-time accounting
	// allocation-free while staying bit-exact with EncodeBits.
	var buf [128]byte
	bits, err := headerBitsInto(buf[:0], f)
	if err != nil {
		return 0, err
	}
	crc := CRC15(bits)
	bits = appendBits(bits, uint64(crc), 15)
	run := 0
	var last byte = 2
	stuffed := 0
	for _, b := range bits {
		if b == last {
			run++
		} else {
			run = 1
			last = b
		}
		if run == stuffRun {
			stuffed++
			last = 1 - b
			run = 1
		}
	}
	// Stuffed region + CRC delimiter + ACK slot + ACK delimiter + EOF + IFS.
	return len(bits) + stuffed + 3 + eofBits + interframeBits, nil
}
