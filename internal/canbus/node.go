package canbus

import (
	"errors"
	"fmt"
)

// Handler is the processor-side callback a node application registers to
// consume frames that survived the inbound filter chain (Fig. 3: the
// micro-controller / DSP behind the CAN controller).
type Handler func(f Frame)

// Controller models the CAN controller of Fig. 3: it parses received frames
// and applies the firmware-programmed acceptance filters. If no filters are
// configured the controller accepts every frame, as most controllers do by
// default.
//
// Like Bus and Node, a Controller is confined to the goroutine that drives
// the owning scheduler (see the Bus ownership model).
type Controller struct {
	filters     []AcceptanceFilter
	compromised bool
	handler     Handler
	mailbox     []Frame
	mailboxCap  int
	overruns    uint64
}

// NewController returns a controller with an unbounded mailbox and no filters.
func NewController() *Controller {
	return &Controller{}
}

// SetFilters replaces the acceptance filter bank. The slice is copied.
func (c *Controller) SetFilters(filters ...AcceptanceFilter) {
	c.filters = append([]AcceptanceFilter(nil), filters...)
}

// Filters returns a copy of the current filter bank.
func (c *Controller) Filters() []AcceptanceFilter {
	return append([]AcceptanceFilter(nil), c.filters...)
}

// SetHandler registers the processor callback invoked for accepted frames.
// When a handler is set the mailbox is not used.
func (c *Controller) SetHandler(h Handler) {
	c.handler = h
}

// SetMailboxCap bounds the receive mailbox; zero means unbounded. When the
// mailbox is full the oldest frame is dropped and the overrun counter
// incremented, mirroring receive-buffer overruns on real controllers.
func (c *Controller) SetMailboxCap(n int) {
	c.mailboxCap = n
}

// CompromiseFilters models the firmware-modification attack of §V-B.2: a
// compromised controller stops honouring its acceptance filters. The paper's
// argument for a *hardware* policy engine is that it keeps filtering even in
// this state.
func (c *Controller) CompromiseFilters() {
	c.compromised = true
}

// Compromised reports whether the firmware-modification attack has been applied.
func (c *Controller) Compromised() bool {
	return c.compromised
}

// Restore undoes CompromiseFilters (e.g. after a firmware re-flash).
func (c *Controller) Restore() {
	c.compromised = false
}

// Overruns returns the number of frames lost to mailbox overruns.
func (c *Controller) Overruns() uint64 {
	return c.overruns
}

// accepts applies the acceptance filter bank (unless compromised).
func (c *Controller) accepts(f Frame) bool {
	if c.compromised {
		return true
	}
	if len(c.filters) == 0 {
		return true
	}
	for _, flt := range c.filters {
		if flt.Matches(f) {
			return true
		}
	}
	return false
}

// receive runs the controller-side receive path. It reports whether the
// frame was accepted past the filter bank.
func (c *Controller) receive(f Frame) bool {
	if !c.accepts(f) {
		return false
	}
	if c.handler == nil {
		if c.mailboxCap > 0 && len(c.mailbox) >= c.mailboxCap {
			copy(c.mailbox, c.mailbox[1:])
			c.mailbox = c.mailbox[:len(c.mailbox)-1]
			c.overruns++
		}
		c.mailbox = append(c.mailbox, f.Clone())
		return true
	}
	c.handler(f)
	return true
}

// Drain returns and clears the mailbox contents.
func (c *Controller) Drain() []Frame {
	out := c.mailbox
	c.mailbox = nil
	return out
}

// NodeStats counts per-node traffic and enforcement outcomes.
type NodeStats struct {
	// TxRequested counts frames handed to Send.
	TxRequested uint64
	// TxBlocked counts frames blocked by the inline (write) filter.
	TxBlocked uint64
	// TxCompleted counts frames successfully put on the bus.
	TxCompleted uint64
	// TxDroppedBusOff counts frames discarded because the node was bus-off.
	TxDroppedBusOff uint64
	// ArbitrationLosses counts lost arbitration rounds (frame retried later).
	ArbitrationLosses uint64
	// Retransmissions counts error-triggered retransmissions.
	Retransmissions uint64
	// RxSeen counts frames observed on the inbound path.
	RxSeen uint64
	// RxBlocked counts frames blocked by the inline (read) filter.
	RxBlocked uint64
	// RxFiltered counts frames rejected by the controller acceptance filters.
	RxFiltered uint64
	// RxAccepted counts frames delivered to the processor.
	RxAccepted uint64
}

// Node is one station on the bus (Fig. 3): transceiver + controller +
// processor, with the InlineFilter seam of Fig. 4 between controller and
// transceiver in both directions.
//
// A Node shares its Bus's single-owner execution model: all methods must be
// called from the goroutine driving the owning scheduler.
type Node struct {
	name string
	bus  *Bus

	ctrl       *Controller
	inline     InlineFilter
	counters   ErrorCounters
	txq        []Frame
	stats      NodeStats
	detached   bool
	responders map[uint32]func() []byte
}

// Node errors.
var (
	ErrBusOff    = errors.New("canbus: node is bus-off")
	ErrDetached  = errors.New("canbus: node is detached from the bus")
	ErrNoBus     = errors.New("canbus: node is not attached to a bus")
	ErrDuplicate = errors.New("canbus: node name already attached")
)

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Controller returns the node's CAN controller.
func (n *Node) Controller() *Controller { return n.ctrl }

// SetInlineFilter installs the Fig. 4 policy engine (or any InlineFilter) on
// this node. Passing nil restores the permissive default.
func (n *Node) SetInlineFilter(f InlineFilter) {
	if f == nil {
		f = PermissiveFilter{}
	}
	n.inline = f
}

// InlineFilter returns the currently installed inline filter.
func (n *Node) InlineFilter() InlineFilter {
	return n.inline
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	return n.stats
}

// ErrorState returns the node's current error confinement state.
func (n *Node) ErrorState() ErrorState {
	return n.counters.State()
}

// ResetErrors models a power-on reset, clearing error counters so a bus-off
// node can rejoin.
func (n *Node) ResetErrors() {
	n.counters.Reset()
}

// Send queues a frame for transmission. The outbound inline filter (the
// HPE's writing filter) is consulted first: blocked frames never reach the
// transmit queue, exactly as in Fig. 4 where the decision block sits before
// the transceiver.
func (n *Node) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if n.detached {
		return ErrDetached
	}
	if n.bus == nil {
		return ErrNoBus
	}
	n.stats.TxRequested++
	if n.counters.State() == BusOff {
		n.stats.TxDroppedBusOff++
		return fmt.Errorf("%w: %s", ErrBusOff, n.name)
	}
	if v := n.inline.Decide(Write, f); v != Grant {
		n.stats.TxBlocked++
		n.bus.noteWriteBlocked(n, f)
		return nil
	}
	n.txq = append(n.txq, f.Clone())
	n.bus.kick()
	return nil
}

// pendingHead returns the head of the transmit queue, if any, and whether
// the node can currently contend for the bus.
func (n *Node) pendingHead() (Frame, bool) {
	if n.detached || len(n.txq) == 0 || n.counters.State() == BusOff {
		return Frame{}, false
	}
	return n.txq[0], true
}

// SetRemoteResponder registers an automatic reply for remote transmission
// requests of the given identifier, modelling the auto-reply message
// buffers of production CAN controllers: when an accepted RTR frame for id
// arrives, the node transmits a data frame with fn's payload. Passing a nil
// fn removes the responder.
func (n *Node) SetRemoteResponder(id uint32, fn func() []byte) {
	if fn == nil {
		delete(n.responders, id)
		return
	}
	if n.responders == nil {
		n.responders = map[uint32]func() []byte{}
	}
	n.responders[id] = fn
}

// deliver runs the inbound path: inline read filter, then controller
// acceptance filters, then handler/mailbox, then remote auto-response.
func (n *Node) deliver(f Frame) {
	if n.detached {
		return
	}
	n.stats.RxSeen++
	if v := n.inline.Decide(Read, f); v != Grant {
		n.stats.RxBlocked++
		if n.bus != nil {
			n.bus.noteReadBlocked(n, f)
		}
		return
	}
	var responder func() []byte
	if f.RTR {
		responder = n.responders[f.ID]
	}
	if n.ctrl.receive(f) {
		n.stats.RxAccepted++
		n.counters.OnRxSuccess()
		if responder != nil {
			reply, err := NewDataFrame(f.ID, responder())
			if err == nil {
				// The reply passes the node's own outbound path, so an
				// inline filter still arbitrates it.
				_ = n.Send(reply)
			}
		}
	} else {
		n.stats.RxFiltered++
	}
}

// popHead removes the head of the transmit queue after successful transmission.
func (n *Node) popHead() {
	if len(n.txq) > 0 {
		n.txq = n.txq[1:]
	}
	n.stats.TxCompleted++
	n.counters.OnTxSuccess()
}

// txError records a transmission error; the frame stays queued for retry
// unless the node went bus-off.
func (n *Node) txError() ErrorState {
	st := n.counters.OnTxError()
	if st == BusOff {
		n.txq = nil
	} else {
		n.stats.Retransmissions++
	}
	return st
}

// noteArbitrationLoss counts a lost arbitration round.
func (n *Node) noteArbitrationLoss() {
	n.stats.ArbitrationLosses++
}

// QueueLen returns the number of frames waiting to transmit.
func (n *Node) QueueLen() int {
	return len(n.txq)
}
