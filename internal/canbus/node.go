package canbus

import (
	"errors"
	"fmt"
)

// Handler is the processor-side callback a node application registers to
// consume frames that survived the inbound filter chain (Fig. 3: the
// micro-controller / DSP behind the CAN controller).
//
// The frame's payload is only valid for the duration of the callback: its
// Data may alias the bus's in-flight transmission buffer, which is reused
// by the next transmission (like a receive buffer behind a real
// controller's ISR). A handler that retains the frame must Clone it; the
// controller's own mailbox path already does.
type Handler func(f Frame)

// Controller models the CAN controller of Fig. 3: it parses received frames
// and applies the firmware-programmed acceptance filters. If no filters are
// configured the controller accepts every frame, as most controllers do by
// default.
//
// Like Bus and Node, a Controller is confined to the goroutine that drives
// the owning scheduler (see the Bus ownership model).
type Controller struct {
	filters     []AcceptanceFilter
	compromised bool
	handler     Handler
	mailbox     []Frame
	mailboxCap  int
	overruns    uint64

	// exact is the direct-mapped fast path built by SetFilters when every
	// filter is a standard-frame exact match (the common firmware
	// configuration): one bit per 11-bit identifier. nil when any filter
	// needs the general mask/code walk. Built bitmaps are immutable, so
	// reset can restore the pristine one by pointer.
	exact *[(MaxStandardID + 1) / 64]uint64

	// Pristine snapshot captured by Bus.MarkPristine; reset restores it.
	pristineFilters []AcceptanceFilter
	pristineExact   *[(MaxStandardID + 1) / 64]uint64
	pristineHandler Handler
	pristineMailCap int
}

// NewController returns a controller with an unbounded mailbox and no filters.
func NewController() *Controller {
	return &Controller{}
}

// SetFilters replaces the acceptance filter bank. The slice is copied.
func (c *Controller) SetFilters(filters ...AcceptanceFilter) {
	c.filters = append([]AcceptanceFilter(nil), filters...)
	c.exact = nil
	if len(filters) == 0 {
		return
	}
	for _, f := range filters {
		if f.Extended || f.Mask != MaxStandardID || f.Code > MaxStandardID {
			return
		}
	}
	var bm [(MaxStandardID + 1) / 64]uint64
	for _, f := range filters {
		bm[f.Code>>6] |= 1 << (f.Code & 63)
	}
	c.exact = &bm
}

// Filters returns a copy of the current filter bank.
func (c *Controller) Filters() []AcceptanceFilter {
	return append([]AcceptanceFilter(nil), c.filters...)
}

// SetHandler registers the processor callback invoked for accepted frames.
// When a handler is set the mailbox is not used.
func (c *Controller) SetHandler(h Handler) {
	c.handler = h
}

// SetMailboxCap bounds the receive mailbox; zero means unbounded. When the
// mailbox is full the oldest frame is dropped and the overrun counter
// incremented, mirroring receive-buffer overruns on real controllers.
func (c *Controller) SetMailboxCap(n int) {
	c.mailboxCap = n
}

// CompromiseFilters models the firmware-modification attack of §V-B.2: a
// compromised controller stops honouring its acceptance filters. The paper's
// argument for a *hardware* policy engine is that it keeps filtering even in
// this state.
func (c *Controller) CompromiseFilters() {
	c.compromised = true
}

// Compromised reports whether the firmware-modification attack has been applied.
func (c *Controller) Compromised() bool {
	return c.compromised
}

// Restore undoes CompromiseFilters (e.g. after a firmware re-flash).
func (c *Controller) Restore() {
	c.compromised = false
}

// Overruns returns the number of frames lost to mailbox overruns.
func (c *Controller) Overruns() uint64 {
	return c.overruns
}

// accepts applies the acceptance filter bank (unless compromised).
func (c *Controller) accepts(f Frame) bool {
	if c.compromised {
		return true
	}
	if len(c.filters) == 0 {
		return true
	}
	if c.exact != nil {
		return !f.Extended && c.exact[f.ID>>6]&(1<<(f.ID&63)) != 0
	}
	for _, flt := range c.filters {
		if flt.Matches(f) {
			return true
		}
	}
	return false
}

// receive runs the controller-side receive path. It reports whether the
// frame was accepted past the filter bank.
func (c *Controller) receive(f Frame) bool {
	if !c.accepts(f) {
		return false
	}
	if c.handler == nil {
		if c.mailboxCap > 0 && len(c.mailbox) >= c.mailboxCap {
			copy(c.mailbox, c.mailbox[1:])
			c.mailbox = c.mailbox[:len(c.mailbox)-1]
			c.overruns++
		}
		c.mailbox = append(c.mailbox, f.Clone())
		return true
	}
	c.handler(f)
	return true
}

// snapshot records the controller's current configuration as its pristine
// state for later reset.
func (c *Controller) snapshot() {
	c.pristineFilters = append(c.pristineFilters[:0], c.filters...)
	c.pristineExact = c.exact
	c.pristineHandler = c.handler
	c.pristineMailCap = c.mailboxCap
}

// reset restores the snapshot configuration and clears all mutable receive
// state without allocating. The live filter bank shares the snapshot's
// backing array: filters are only ever read (accepts) or replaced wholesale
// (SetFilters copies its input), never mutated in place, so the aliasing is
// safe and avoids re-allocating eight filter banks per vehicle reset.
func (c *Controller) reset() {
	c.filters = c.pristineFilters
	c.exact = c.pristineExact
	c.handler = c.pristineHandler
	c.mailboxCap = c.pristineMailCap
	c.compromised = false
	c.mailbox = c.mailbox[:0]
	c.overruns = 0
}

// Drain returns and clears the mailbox contents.
func (c *Controller) Drain() []Frame {
	out := c.mailbox
	c.mailbox = nil
	return out
}

// queued is one transmit-queue entry: the frame value with its payload
// moved into the entry's inline buffer. Enqueueing therefore allocates
// nothing — the per-send Frame.Clone used to be the largest allocation
// source in a fleet sweep.
type queued struct {
	f       Frame // f.Data is nil; the payload lives in buf[:dataLen]
	buf     [MaxDataLen]byte
	dataLen uint8
}

// NodeStats counts per-node traffic and enforcement outcomes.
type NodeStats struct {
	// TxRequested counts frames handed to Send.
	TxRequested uint64
	// TxBlocked counts frames blocked by the inline (write) filter.
	TxBlocked uint64
	// TxCompleted counts frames successfully put on the bus.
	TxCompleted uint64
	// TxDroppedBusOff counts frames discarded because the node was bus-off.
	TxDroppedBusOff uint64
	// ArbitrationLosses counts lost arbitration rounds (frame retried later).
	ArbitrationLosses uint64
	// Retransmissions counts error-triggered retransmissions.
	Retransmissions uint64
	// RxSeen counts frames observed on the inbound path.
	RxSeen uint64
	// RxBlocked counts frames blocked by the inline (read) filter.
	RxBlocked uint64
	// RxFiltered counts frames rejected by the controller acceptance filters.
	RxFiltered uint64
	// RxAccepted counts frames delivered to the processor.
	RxAccepted uint64
}

// Node is one station on the bus (Fig. 3): transceiver + controller +
// processor, with the InlineFilter seam of Fig. 4 between controller and
// transceiver in both directions.
//
// A Node shares its Bus's single-owner execution model: all methods must be
// called from the goroutine driving the owning scheduler.
type Node struct {
	name string
	bus  *Bus

	ctrl       *Controller
	inline     InlineFilter
	counters   ErrorCounters
	txq        []queued
	stats      NodeStats
	detached   bool
	responders map[uint32]func() []byte

	// order is the node's attachment sequence number; arbitration ties
	// resolve toward the lower order (the attachment-order tie-break).
	order int32
	// txPending mirrors membership in the bus's pending-transmitter list;
	// maintained at every transmit-queue transition.
	txPending bool

	// Pristine snapshot captured by Bus.MarkPristine; see Bus.Reset.
	snapped        bool
	pristineInline InlineFilter
}

// Node errors.
var (
	ErrBusOff    = errors.New("canbus: node is bus-off")
	ErrDetached  = errors.New("canbus: node is detached from the bus")
	ErrNoBus     = errors.New("canbus: node is not attached to a bus")
	ErrDuplicate = errors.New("canbus: node name already attached")
)

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Controller returns the node's CAN controller.
func (n *Node) Controller() *Controller { return n.ctrl }

// SetInlineFilter installs the Fig. 4 policy engine (or any InlineFilter) on
// this node. Passing nil restores the permissive default.
func (n *Node) SetInlineFilter(f InlineFilter) {
	if f == nil {
		f = PermissiveFilter{}
	}
	n.inline = f
}

// InlineFilter returns the currently installed inline filter.
func (n *Node) InlineFilter() InlineFilter {
	return n.inline
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	return n.stats
}

// ErrorState returns the node's current error confinement state.
func (n *Node) ErrorState() ErrorState {
	return n.counters.State()
}

// ResetErrors models a power-on reset, clearing error counters so a bus-off
// node can rejoin.
func (n *Node) ResetErrors() {
	n.counters.Reset()
}

// Send queues a frame for transmission. The outbound inline filter (the
// HPE's writing filter) is consulted first: blocked frames never reach the
// transmit queue, exactly as in Fig. 4 where the decision block sits before
// the transceiver.
func (n *Node) Send(f Frame) error {
	return n.send(f, false)
}

// SendFinal is Send for a caller that makes it the *last* action of its
// scheduler event callback: when no other event can fire at this instant,
// the arbitration round runs inline instead of through the zero-delay
// SOF-sync hop, sparing the scheduler a push/pop per frame. The outcome is
// identical to Send (the hop still happens whenever another same-instant
// event is queued); callers that do anything else after sending — including
// sending again — must use Send, or same-instant frames would miss the
// shared round. The attack harness's injection bursts qualify; hand-driven
// sends outside scheduler events do not.
func (n *Node) SendFinal(f Frame) error {
	return n.send(f, true)
}

func (n *Node) send(f Frame, final bool) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if n.detached {
		return ErrDetached
	}
	if n.bus == nil {
		return ErrNoBus
	}
	n.stats.TxRequested++
	if n.counters.State() == BusOff {
		n.stats.TxDroppedBusOff++
		return fmt.Errorf("%w: %s", ErrBusOff, n.name)
	}
	if v := n.inline.Decide(Write, f); v != Grant {
		n.stats.TxBlocked++
		n.bus.noteWriteBlocked(n, f)
		return nil
	}
	n.txq = append(n.txq, queued{})
	q := &n.txq[len(n.txq)-1]
	q.f = f
	q.f.Data = nil
	q.dataLen = uint8(copy(q.buf[:], f.Data))
	n.bus.notePending(n)
	if final {
		n.bus.kickNow()
	} else {
		n.bus.kick()
	}
	return nil
}

// SetRemoteResponder registers an automatic reply for remote transmission
// requests of the given identifier, modelling the auto-reply message
// buffers of production CAN controllers: when an accepted RTR frame for id
// arrives, the node transmits a data frame with fn's payload. Passing a nil
// fn removes the responder.
func (n *Node) SetRemoteResponder(id uint32, fn func() []byte) {
	if fn == nil {
		delete(n.responders, id)
		return
	}
	if n.responders == nil {
		n.responders = map[uint32]func() []byte{}
	}
	n.responders[id] = fn
}

// deliver runs the inbound path: inline read filter, then controller
// acceptance filters, then handler/mailbox, then remote auto-response.
func (n *Node) deliver(f Frame) {
	if n.detached {
		return
	}
	n.stats.RxSeen++
	if v := n.inline.Decide(Read, f); v != Grant {
		n.stats.RxBlocked++
		if n.bus != nil {
			n.bus.noteReadBlocked(n, f)
		}
		return
	}
	var responder func() []byte
	if f.RTR {
		responder = n.responders[f.ID]
	}
	if n.ctrl.receive(f) {
		n.stats.RxAccepted++
		n.counters.OnRxSuccess()
		if responder != nil {
			reply, err := NewDataFrame(f.ID, responder())
			if err == nil {
				// The reply passes the node's own outbound path, so an
				// inline filter still arbitrates it.
				_ = n.Send(reply)
			}
		}
	} else {
		n.stats.RxFiltered++
	}
}

// popHead removes the head of the transmit queue after successful
// transmission. The queue shifts in place rather than re-slicing from the
// front: n.txq[1:] would walk the backing array forward until its spare
// capacity hit zero, making every later Send re-allocate the queue (and
// pinning popped frames). Queues are at most a handful of frames deep, so
// the copy is cheaper than the garbage.
func (n *Node) popHead() {
	if len(n.txq) > 0 {
		copy(n.txq, n.txq[1:])
		n.txq[len(n.txq)-1] = queued{}
		n.txq = n.txq[:len(n.txq)-1]
	}
	if len(n.txq) == 0 {
		n.bus.dropPending(n)
	}
	n.stats.TxCompleted++
	n.counters.OnTxSuccess()
}

// txError records a transmission error; the frame stays queued for retry
// unless the node went bus-off.
func (n *Node) txError() ErrorState {
	st := n.counters.OnTxError()
	if st == BusOff {
		n.txq = nil
		n.bus.dropPending(n)
	} else {
		n.stats.Retransmissions++
	}
	return st
}

// snapshot records the node's current configuration (inline filter plus the
// controller's filters, handler and mailbox cap) as its pristine state.
func (n *Node) snapshot() {
	n.snapped = true
	n.pristineInline = n.inline
	n.ctrl.snapshot()
}

// reset restores the pristine snapshot: configuration back to snapshot
// values, all mutable state (transmit queue, statistics, error counters,
// remote responders, detachment) cleared. Allocation-free.
func (n *Node) reset() {
	n.inline = n.pristineInline
	n.ctrl.reset()
	n.counters.Reset()
	n.txq = n.txq[:0]
	n.stats = NodeStats{}
	n.detached = false
	clear(n.responders)
}

// revive restores a recycled rogue shell to the state Attach gives a brand
// new node — default permissive inline filter, no filters or handler, empty
// queue and zeroed counters — while keeping the queue and mailbox backing
// arrays (see Bus.SetRecycleRogues).
func (n *Node) revive() {
	n.detached = false
	n.txq = n.txq[:0]
	n.stats = NodeStats{}
	n.counters.Reset()
	n.inline = PermissiveFilter{}
	clear(n.responders)
	c := n.ctrl
	c.filters = nil
	c.exact = nil
	c.compromised = false
	c.handler = nil
	c.mailbox = c.mailbox[:0]
	c.mailboxCap = 0
	c.overruns = 0
}

// noteArbitrationLoss counts a lost arbitration round.
func (n *Node) noteArbitrationLoss() {
	n.stats.ArbitrationLosses++
}

// QueueLen returns the number of frames waiting to transmit.
func (n *Node) QueueLen() int {
	return len(n.txq)
}
