package canbus

// AcceptanceFilter is the mask/code filter a CAN controller applies to
// received identifiers. A frame passes when (id & Mask) == (Code & Mask) and
// the frame format matches the filter's format.
//
// On production controllers these filters are configured by firmware, which
// is exactly why the paper argues they are insufficient: compromised
// firmware can reprogram them (§V-B.2). The simulation models that attack in
// Controller.CompromiseFilters.
type AcceptanceFilter struct {
	// Mask selects which identifier bits are compared.
	Mask uint32
	// Code gives the expected values of the selected bits.
	Code uint32
	// Extended restricts the filter to extended (true) or standard (false) frames.
	Extended bool
}

// Matches reports whether the frame passes this filter.
func (a AcceptanceFilter) Matches(f Frame) bool {
	if f.Extended != a.Extended {
		return false
	}
	return f.ID&a.Mask == a.Code&a.Mask
}

// ExactFilter builds a filter matching exactly one standard identifier.
func ExactFilter(id uint32) AcceptanceFilter {
	return AcceptanceFilter{Mask: MaxStandardID, Code: id}
}

// AcceptAllFilter matches every standard frame.
func AcceptAllFilter() AcceptanceFilter { return AcceptanceFilter{} }

// Verdict is an inline filter's decision on a single frame.
type Verdict uint8

// Verdict values. Following the guide's advice enums start at 1 so the zero
// value is detectably invalid.
const (
	// Grant lets the frame through.
	Grant Verdict = iota + 1
	// Block silently discards the frame.
	Block
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Grant:
		return "grant"
	case Block:
		return "block"
	default:
		return "invalid"
	}
}

// Direction distinguishes the two filter paths of Fig. 4.
type Direction uint8

// Direction values.
const (
	// Read is the inbound path: bus -> transceiver -> filter -> controller.
	Read Direction = iota + 1
	// Write is the outbound path: controller -> filter -> transceiver -> bus.
	Write
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "invalid"
	}
}

// InlineFilter is the seam between a node's controller and transceiver where
// the hardware-based policy engine is inserted. Implementations must be
// side-effect free with respect to the frame: they decide, they do not
// rewrite.
type InlineFilter interface {
	// Decide returns the verdict for a frame travelling in the given direction.
	Decide(dir Direction, f Frame) Verdict
}

// PermissiveFilter grants everything; it models a node without an HPE.
type PermissiveFilter struct{}

// Decide implements InlineFilter by always granting.
func (PermissiveFilter) Decide(Direction, Frame) Verdict { return Grant }

var _ InlineFilter = PermissiveFilter{}
