package canbus

import (
	"testing"

	"repro/internal/sim"
)

func TestAcceptanceFilterMatching(t *testing.T) {
	tests := []struct {
		name   string
		filter AcceptanceFilter
		frame  Frame
		want   bool
	}{
		{"exact hit", ExactFilter(0x123), MustDataFrame(0x123, nil), true},
		{"exact miss", ExactFilter(0x123), MustDataFrame(0x124, nil), false},
		{"accept all standard", AcceptAllFilter(), MustDataFrame(0x7FF, nil), true},
		{"accept all rejects extended", AcceptAllFilter(),
			Frame{ID: 0x123, Extended: true}, false},
		{"masked group hit", AcceptanceFilter{Mask: 0x7F0, Code: 0x120},
			MustDataFrame(0x12A, nil), true},
		{"masked group miss", AcceptanceFilter{Mask: 0x7F0, Code: 0x120},
			MustDataFrame(0x130, nil), false},
		{"extended filter hit", AcceptanceFilter{Mask: 0x1FFFFFFF, Code: 0x18FF0000, Extended: true},
			Frame{ID: 0x18FF0000, Extended: true}, true},
		{"extended filter vs standard frame",
			AcceptanceFilter{Mask: 0x7FF, Code: 0x123, Extended: true},
			MustDataFrame(0x123, nil), false},
		{"zero mask matches everything standard", AcceptanceFilter{},
			MustDataFrame(0x001, nil), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.filter.Matches(tt.frame); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEnumStrings(t *testing.T) {
	if Grant.String() != "grant" || Block.String() != "block" || Verdict(0).String() != "invalid" {
		t.Error("Verdict strings wrong")
	}
	if Read.String() != "read" || Write.String() != "write" || Direction(0).String() != "invalid" {
		t.Error("Direction strings wrong")
	}
	kinds := []TraceEventKind{TraceTxStart, TraceDelivered, TraceError,
		TraceWriteBlocked, TraceReadBlocked, TraceBusOff}
	want := []string{"tx-start", "delivered", "error", "write-blocked", "read-blocked", "bus-off"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k, want[i])
		}
	}
	states := []ErrorState{ErrorActive, ErrorPassive, BusOff}
	wantStates := []string{"error-active", "error-passive", "bus-off"}
	for i, s := range states {
		if s.String() != wantStates[i] {
			t.Errorf("state %d = %q", i, s)
		}
	}
}

func TestRemoteFrameRequestResponse(t *testing.T) {
	sched := &sim.Scheduler{}
	bus := New(sched, Config{})
	requester := bus.MustAttach("requester")
	provider := bus.MustAttach("provider")

	provider.SetRemoteResponder(0x123, func() []byte { return []byte{0xAB, 0xCD} })
	var got []Frame
	requester.Controller().SetHandler(func(f Frame) {
		if !f.RTR {
			got = append(got, f)
		}
	})

	rtr, err := NewRemoteFrame(0x123, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := requester.Send(rtr); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(got) != 1 {
		t.Fatalf("requester received %d data frames, want 1", len(got))
	}
	if got[0].ID != 0x123 || got[0].Data[0] != 0xAB || got[0].Data[1] != 0xCD {
		t.Errorf("reply = %v", got[0])
	}
}

func TestRemoteResponderRemoval(t *testing.T) {
	sched := &sim.Scheduler{}
	bus := New(sched, Config{})
	requester := bus.MustAttach("requester")
	provider := bus.MustAttach("provider")
	provider.SetRemoteResponder(0x10, func() []byte { return []byte{1} })
	provider.SetRemoteResponder(0x10, nil) // removed

	n := 0
	requester.Controller().SetHandler(func(f Frame) {
		if !f.RTR {
			n++
		}
	})
	rtr, _ := NewRemoteFrame(0x10, 1)
	if err := requester.Send(rtr); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if n != 0 {
		t.Error("removed responder still replied")
	}
}

func TestRemoteResponseRespectsInlineFilter(t *testing.T) {
	// The auto-reply travels the provider's outbound path: a write filter
	// blocking the ID suppresses the reply (the HPE governs auto-reply
	// buffers like any other transmission).
	sched := &sim.Scheduler{}
	bus := New(sched, Config{})
	requester := bus.MustAttach("requester")
	provider := bus.MustAttach("provider")
	provider.SetRemoteResponder(0x10, func() []byte { return []byte{1} })
	provider.SetInlineFilter(blockWrites(0x10))

	n := 0
	requester.Controller().SetHandler(func(f Frame) {
		if !f.RTR {
			n++
		}
	})
	rtr, _ := NewRemoteFrame(0x10, 1)
	if err := requester.Send(rtr); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if n != 0 {
		t.Error("write filter did not govern the auto-reply")
	}
	if provider.Stats().TxBlocked != 1 {
		t.Errorf("provider TxBlocked = %d", provider.Stats().TxBlocked)
	}
}

func TestRemoteResponderOnlyFiresOnRTR(t *testing.T) {
	sched := &sim.Scheduler{}
	bus := New(sched, Config{})
	a := bus.MustAttach("a")
	b := bus.MustAttach("b")
	fired := false
	b.SetRemoteResponder(0x10, func() []byte { fired = true; return []byte{1} })
	if err := a.Send(MustDataFrame(0x10, []byte{9})); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if fired {
		t.Error("responder fired on a data frame")
	}
}
