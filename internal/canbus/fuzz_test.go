package canbus

import (
	"bytes"
	"testing"
)

// FuzzDecodeBits feeds arbitrary bitstreams to the frame decoder: it must
// never panic, and anything it accepts must re-encode to a stream that
// decodes to the same frame (decode/encode fixed point).
func FuzzDecodeBits(f *testing.F) {
	seed := func(fr Frame) {
		bits, err := EncodeBits(fr)
		if err == nil {
			f.Add(bits)
		}
	}
	seed(MustDataFrame(0x123, []byte{1, 2, 3}))
	seed(Frame{ID: 0x1FFFFFFF, Extended: true, Data: []byte{0xFF}, DLC: 1})
	seed(Frame{ID: 0x7FF, RTR: true, DLC: 8})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 1, 1, 1})
	f.Add(bytes.Repeat([]byte{1}, 64))

	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		fr, err := DecodeBits(bits)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := EncodeBits(fr)
		if err != nil {
			t.Fatalf("accepted frame %v does not re-encode: %v", fr, err)
		}
		fr2, err := DecodeBits(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !fr.Equal(fr2) {
			t.Fatalf("decode/encode fixed point broken: %v vs %v", fr, fr2)
		}
	})
}

// FuzzFrameUnmarshal feeds arbitrary bytes to the binary deserializer.
func FuzzFrameUnmarshal(f *testing.F) {
	b1, _ := MustDataFrame(0x123, []byte{1, 2}).MarshalBinary()
	f.Add(b1)
	f.Add([]byte{marshalMarker, 0, 0, 0, 0, 1, 0})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var fr Frame
		if err := fr.UnmarshalBinary(raw); err != nil {
			return
		}
		out, err := fr.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame %v does not re-marshal: %v", fr, err)
		}
		var fr2 Frame
		if err := fr2.UnmarshalBinary(out); err != nil || !fr.Equal(fr2) {
			t.Fatalf("marshal round trip broken: %v vs %v (%v)", fr, fr2, err)
		}
	})
}
