package canbus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func newTestBus(t *testing.T, cfg Config) (*sim.Scheduler, *Bus) {
	t.Helper()
	sched := &sim.Scheduler{}
	return sched, New(sched, cfg)
}

func TestBroadcastDelivery(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	a := bus.MustAttach("a")
	b := bus.MustAttach("b")
	c := bus.MustAttach("c")
	var gotB, gotC []Frame
	b.Controller().SetHandler(func(f Frame) { gotB = append(gotB, f) })
	c.Controller().SetHandler(func(f Frame) { gotC = append(gotC, f) })

	f := MustDataFrame(0x123, []byte{1, 2})
	if err := a.Send(f); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(gotB) != 1 || !gotB[0].Equal(f) {
		t.Errorf("node b received %v", gotB)
	}
	if len(gotC) != 1 || !gotC[0].Equal(f) {
		t.Errorf("node c received %v", gotC)
	}
	if st := a.Stats(); st.RxAccepted != 0 {
		t.Error("sender received its own frame")
	}
	if st := bus.Stats(); st.FramesDelivered != 1 {
		t.Errorf("FramesDelivered = %d", st.FramesDelivered)
	}
}

func TestArbitrationPriority(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	lo := bus.MustAttach("low-priority")
	hi := bus.MustAttach("high-priority")
	sink := bus.MustAttach("sink")
	var order []uint32
	sink.Controller().SetHandler(func(f Frame) { order = append(order, f.ID) })

	// Queue both before any event runs: they contend for the idle bus.
	if err := lo.Send(MustDataFrame(0x400, nil)); err != nil {
		t.Fatal(err)
	}
	if err := hi.Send(MustDataFrame(0x010, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(order) != 2 || order[0] != 0x010 || order[1] != 0x400 {
		t.Fatalf("delivery order %v, want [0x010 0x400]", order)
	}
	if st := lo.Stats(); st.ArbitrationLosses == 0 {
		t.Error("low-priority node recorded no arbitration loss")
	}
}

func TestAcceptanceFilters(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	var got []uint32
	rx.Controller().SetFilters(ExactFilter(0x100))
	rx.Controller().SetHandler(func(f Frame) { got = append(got, f.ID) })

	for _, id := range []uint32{0x100, 0x200, 0x100, 0x300} {
		if err := tx.Send(MustDataFrame(id, nil)); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()

	if len(got) != 2 {
		t.Fatalf("accepted %v, want two 0x100 frames", got)
	}
	st := rx.Stats()
	if st.RxFiltered != 2 {
		t.Errorf("RxFiltered = %d, want 2", st.RxFiltered)
	}
	if st.RxSeen != 4 {
		t.Errorf("RxSeen = %d, want 4", st.RxSeen)
	}
}

func TestCompromisedControllerBypassesFilters(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	n := 0
	rx.Controller().SetFilters(ExactFilter(0x100))
	rx.Controller().SetHandler(func(Frame) { n++ })
	rx.Controller().CompromiseFilters()

	if err := tx.Send(MustDataFrame(0x700, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if n != 1 {
		t.Error("compromised controller still filtered")
	}
	rx.Controller().Restore()
	if err := tx.Send(MustDataFrame(0x700, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if n != 1 {
		t.Error("restored controller did not filter")
	}
}

// blockWrites blocks outbound frames with the given ID.
type blockWrites uint32

func (b blockWrites) Decide(dir Direction, f Frame) Verdict {
	if dir == Write && f.ID == uint32(b) {
		return Block
	}
	return Grant
}

// blockReads blocks inbound frames with the given ID.
type blockReads uint32

func (b blockReads) Decide(dir Direction, f Frame) Verdict {
	if dir == Read && f.ID == uint32(b) {
		return Block
	}
	return Grant
}

func TestInlineFilterWritePath(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	n := 0
	rx.Controller().SetHandler(func(Frame) { n++ })
	tx.SetInlineFilter(blockWrites(0x666))

	if err := tx.Send(MustDataFrame(0x666, nil)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(MustDataFrame(0x100, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if n != 1 {
		t.Fatalf("receiver got %d frames, want 1", n)
	}
	if st := tx.Stats(); st.TxBlocked != 1 {
		t.Errorf("TxBlocked = %d, want 1", st.TxBlocked)
	}
	if st := bus.Stats(); st.WriteBlocked != 1 {
		t.Errorf("bus WriteBlocked = %d, want 1", st.WriteBlocked)
	}
}

func TestInlineFilterReadPath(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	other := bus.MustAttach("other")
	nRx, nOther := 0, 0
	rx.Controller().SetHandler(func(Frame) { nRx++ })
	other.Controller().SetHandler(func(Frame) { nOther++ })
	rx.SetInlineFilter(blockReads(0x123))

	if err := tx.Send(MustDataFrame(0x123, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if nRx != 0 {
		t.Error("inline read filter did not block")
	}
	if nOther != 1 {
		t.Error("unfiltered node should still receive the broadcast")
	}
	if st := rx.Stats(); st.RxBlocked != 1 {
		t.Errorf("RxBlocked = %d, want 1", st.RxBlocked)
	}
}

func TestInlineFilterIsTransparentToCompromise(t *testing.T) {
	// §V-B.2: compromising the controller firmware must not bypass the
	// inline (hardware) filter.
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	n := 0
	rx.Controller().SetHandler(func(Frame) { n++ })
	rx.SetInlineFilter(blockReads(0x123))
	rx.Controller().CompromiseFilters()

	if err := tx.Send(MustDataFrame(0x123, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if n != 0 {
		t.Error("firmware compromise bypassed the inline filter")
	}
}

func TestErrorInjectionAndRetransmission(t *testing.T) {
	// 20% error rate: enough to exercise retransmission without driving
	// the transmitter's TEC (+8 per error, -1 per success) to bus-off.
	sched, bus := newTestBus(t, Config{ErrorRate: 0.2, Seed: 12345})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	n := 0
	rx.Controller().SetHandler(func(Frame) { n++ })

	for i := 0; i < 50; i++ {
		if err := tx.Send(MustDataFrame(0x100, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()

	st := bus.Stats()
	if st.Errors == 0 {
		t.Fatal("no errors injected at rate 0.5")
	}
	if n != 50 {
		t.Fatalf("delivered %d, want all 50 via retransmission", n)
	}
	if txs := tx.Stats(); txs.Retransmissions == 0 {
		t.Error("no retransmissions recorded")
	}
}

func TestBusOffAfterPersistentErrors(t *testing.T) {
	// Error rate 1: every transmission fails until the node goes bus-off.
	sched, bus := newTestBus(t, Config{ErrorRate: 1.0, Seed: 1})
	tx := bus.MustAttach("tx")
	bus.MustAttach("rx")

	if err := tx.Send(MustDataFrame(0x100, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if st := tx.ErrorState(); st != BusOff {
		t.Fatalf("state = %v after persistent errors, want bus-off", st)
	}
	err := tx.Send(MustDataFrame(0x100, nil))
	if !errors.Is(err, ErrBusOff) {
		t.Fatalf("Send while bus-off = %v, want ErrBusOff", err)
	}
	tx.ResetErrors()
	if st := tx.ErrorState(); st != ErrorActive {
		t.Errorf("state after reset = %v, want error-active", st)
	}
}

func TestDetach(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	rogue := bus.MustAttach("rogue")
	n := 0
	rx.Controller().SetHandler(func(Frame) { n++ })

	if !bus.Detach("rogue") {
		t.Fatal("Detach returned false")
	}
	if bus.Detach("rogue") {
		t.Fatal("double Detach returned true")
	}
	if err := rogue.Send(MustDataFrame(0x100, nil)); !errors.Is(err, ErrDetached) {
		t.Fatalf("detached Send = %v, want ErrDetached", err)
	}
	if err := tx.Send(MustDataFrame(0x100, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if n != 1 {
		t.Error("bus broken after detach")
	}
	if rogue.Stats().RxSeen != 0 {
		t.Error("detached node still receives")
	}
}

func TestDuplicateAttach(t *testing.T) {
	_, bus := newTestBus(t, Config{})
	bus.MustAttach("x")
	if _, err := bus.Attach("x"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Attach = %v, want ErrDuplicate", err)
	}
}

func TestBusTimingModel(t *testing.T) {
	sched, bus := newTestBus(t, Config{BitRate: 500_000})
	tx := bus.MustAttach("tx")
	bus.MustAttach("rx")

	f := MustDataFrame(0x123, []byte{1, 2, 3, 4})
	bits, err := WireBits(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(f); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	want := time.Duration(bits) * bus.BitTime()
	if got := sched.Now(); got != want {
		t.Errorf("transmission completed at %v, want %v", got, want)
	}
	if u := bus.Utilisation(); u < 0.99 || u > 1.01 {
		t.Errorf("Utilisation = %v for a fully busy bus, want ~1", u)
	}
}

func TestTraceEvents(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	bus.MustAttach("rx")
	var kinds []TraceEventKind
	bus.SetTracer(func(e TraceEvent) { kinds = append(kinds, e.Kind) })

	if err := tx.Send(MustDataFrame(0x100, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(kinds) != 2 || kinds[0] != TraceTxStart || kinds[1] != TraceDelivered {
		t.Errorf("trace kinds = %v, want [tx-start delivered]", kinds)
	}
}

func TestMailboxOverrun(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	rx.Controller().SetMailboxCap(3)

	for i := 0; i < 5; i++ {
		if err := tx.Send(MustDataFrame(0x100, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()

	frames := rx.Controller().Drain()
	if len(frames) != 3 {
		t.Fatalf("mailbox holds %d frames, want 3", len(frames))
	}
	// Oldest dropped: remaining should be 2,3,4.
	if frames[0].Data[0] != 2 || frames[2].Data[0] != 4 {
		t.Errorf("wrong frames survived overrun: %v", frames)
	}
	if rx.Controller().Overruns() != 2 {
		t.Errorf("Overruns = %d, want 2", rx.Controller().Overruns())
	}
}

func TestSendValidatesFrames(t *testing.T) {
	_, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	bad := Frame{ID: MaxStandardID + 1}
	if err := tx.Send(bad); !errors.Is(err, ErrIDRange) {
		t.Fatalf("Send(bad) = %v, want ErrIDRange", err)
	}
}

func TestQueueDrainOrderFIFOPerNode(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	rx := bus.MustAttach("rx")
	var got []byte
	rx.Controller().SetHandler(func(f Frame) { got = append(got, f.Data[0]) })
	for i := 0; i < 5; i++ {
		if err := tx.Send(MustDataFrame(0x100, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run()
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("per-node FIFO violated: %v", got)
		}
	}
}

func TestErrorCountersStateMachine(t *testing.T) {
	var c ErrorCounters
	if c.State() != ErrorActive {
		t.Fatal("zero counters should be error-active")
	}
	for i := 0; i < errorPassiveThreshold/txErrorPenalty; i++ {
		c.OnTxError()
	}
	if c.State() != ErrorPassive {
		t.Fatalf("TEC=%d should be error-passive", c.TEC())
	}
	for c.State() != BusOff {
		c.OnTxError()
	}
	if c.TEC() < busOffThreshold {
		t.Errorf("bus-off with TEC=%d < %d", c.TEC(), busOffThreshold)
	}
	c.Reset()
	if c.State() != ErrorActive || c.TEC() != 0 || c.REC() != 0 {
		t.Error("Reset did not clear counters")
	}
	// REC path: many receive errors also reach error-passive.
	for i := 0; i < errorPassiveThreshold; i++ {
		c.OnRxError()
	}
	if c.State() != ErrorPassive {
		t.Fatalf("REC=%d should be error-passive", c.REC())
	}
	c.OnRxSuccess()
	if c.REC() != errorPassiveThreshold-9 {
		t.Errorf("REC after success = %d, want %d", c.REC(), errorPassiveThreshold-9)
	}
}

func TestNodesSorted(t *testing.T) {
	_, bus := newTestBus(t, Config{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		bus.MustAttach(n)
	}
	nodes := bus.Nodes()
	if nodes[0].Name() != "alpha" || nodes[2].Name() != "zeta" {
		t.Errorf("Nodes() not sorted: %v", []string{nodes[0].Name(), nodes[1].Name(), nodes[2].Name()})
	}
}

func TestDetachMidTransmissionAbortsWithoutDelivery(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	a := bus.MustAttach("a")
	b := bus.MustAttach("b")
	got := 0
	b.Controller().SetHandler(func(Frame) { got++ })

	if err := a.Send(MustDataFrame(0x123, []byte{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	// A data frame takes tens of microseconds on the wire; pull the
	// transmitter off the bus while its frame is still in flight.
	sched.At(10*time.Microsecond, func(time.Duration) {
		if !bus.Detach("a") {
			t.Error("Detach(a) reported no such node")
		}
	})
	sched.Run()

	if got != 0 {
		t.Errorf("receiver got %d frames from a detached transmitter, want 0", got)
	}
	st := bus.Stats()
	if st.FramesDelivered != 0 {
		t.Errorf("FramesDelivered = %d, want 0", st.FramesDelivered)
	}
	if st.AbortedTx != 1 {
		t.Errorf("AbortedTx = %d, want 1", st.AbortedTx)
	}
	if ns := a.Stats(); ns.TxCompleted != 0 {
		t.Errorf("detached transmitter counted TxCompleted = %d, want 0", ns.TxCompleted)
	}

	// The bus must not be wedged: surviving nodes keep transmitting.
	c := bus.MustAttach("c")
	if err := c.Send(MustDataFrame(0x200, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 {
		t.Errorf("post-detach delivery count = %d, want 1", got)
	}
}

func TestDetachCurrentArbitrationWinnerPromotesLoser(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	win := bus.MustAttach("winner")
	lose := bus.MustAttach("loser")
	sink := bus.MustAttach("sink")
	var order []uint32
	sink.Controller().SetHandler(func(f Frame) { order = append(order, f.ID) })

	if err := win.Send(MustDataFrame(0x010, nil)); err != nil {
		t.Fatal(err)
	}
	if err := lose.Send(MustDataFrame(0x400, nil)); err != nil {
		t.Fatal(err)
	}
	sched.At(5*time.Microsecond, func(time.Duration) { bus.Detach("winner") })
	sched.Run()

	if len(order) != 1 || order[0] != 0x400 {
		t.Fatalf("delivered %v, want only the loser's 0x400 after the winner detached", order)
	}
}

func TestReentrantDetachDuringDeliveryDoesNotSkipReceivers(t *testing.T) {
	sched, bus := newTestBus(t, Config{})
	tx := bus.MustAttach("tx")
	a := bus.MustAttach("a")
	bus.MustAttach("b")
	c := bus.MustAttach("c")
	gotC := 0
	// Node a's handler pulls node b off the bus mid-delivery (the §V-B.2
	// malicious-node response); node c must still receive the frame.
	a.Controller().SetHandler(func(Frame) { bus.Detach("b") })
	c.Controller().SetHandler(func(Frame) { gotC++ })

	if err := tx.Send(MustDataFrame(0x123, nil)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if gotC != 1 {
		t.Errorf("node c received %d frames, want 1 (reentrant Detach must not skip receivers)", gotC)
	}
	if _, ok := bus.Node("b"); ok {
		t.Error("node b still attached")
	}
}
