package canbus

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewDataFrame(t *testing.T) {
	f, err := NewDataFrame(0x123, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 0x123 || f.DLC != 3 || f.RTR || f.Extended {
		t.Errorf("unexpected frame: %+v", f)
	}
}

func TestNewDataFrameCopiesPayload(t *testing.T) {
	data := []byte{1, 2, 3}
	f, err := NewDataFrame(1, data)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	if f.Data[0] != 1 {
		t.Error("frame aliases caller's payload slice")
	}
}

func TestFrameValidation(t *testing.T) {
	tests := []struct {
		name  string
		frame Frame
		want  error
	}{
		{"standard id max", Frame{ID: MaxStandardID}, nil},
		{"standard id overflow", Frame{ID: MaxStandardID + 1}, ErrIDRange},
		{"extended id max", Frame{ID: MaxExtendedID, Extended: true}, nil},
		{"extended id overflow", Frame{ID: MaxExtendedID + 1, Extended: true}, ErrIDRange},
		{"payload max", Frame{ID: 1, Data: make([]byte, 8)}, nil},
		{"payload overflow", Frame{ID: 1, Data: make([]byte, 9)}, ErrDataLen},
		{"rtr with data", Frame{ID: 1, RTR: true, Data: []byte{1}}, ErrRTRData},
		{"rtr dlc ok", Frame{ID: 1, RTR: true, DLC: 8}, nil},
		{"rtr dlc overflow", Frame{ID: 1, RTR: true, DLC: 9}, ErrBadDLC},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := tt.frame
			err := f.Validate()
			if tt.want == nil && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestValidateNormalisesDLC(t *testing.T) {
	f := Frame{ID: 1, Data: []byte{1, 2}, DLC: 7}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.DLC != 2 {
		t.Errorf("DLC = %d after Validate, want 2", f.DLC)
	}
}

func TestFrameCloneIndependence(t *testing.T) {
	f := MustDataFrame(5, []byte{1, 2, 3})
	c := f.Clone()
	c.Data[0] = 0xFF
	if f.Data[0] != 1 {
		t.Error("Clone shares payload storage")
	}
	if !f.Equal(f.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestFrameEqual(t *testing.T) {
	a := MustDataFrame(1, []byte{1, 2})
	tests := []struct {
		name string
		b    Frame
		want bool
	}{
		{"identical", MustDataFrame(1, []byte{1, 2}), true},
		{"different id", MustDataFrame(2, []byte{1, 2}), false},
		{"different payload", MustDataFrame(1, []byte{1, 3}), false},
		{"different length", MustDataFrame(1, []byte{1}), false},
		{"rtr vs data", Frame{ID: 1, RTR: true, DLC: 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestArbitrationOrdering(t *testing.T) {
	// Lower ID wins; data beats RTR at the same ID; standard beats
	// extended with the same 11-bit prefix.
	low := MustDataFrame(0x100, nil)
	high := MustDataFrame(0x200, nil)
	if low.ArbitrationValue() >= high.ArbitrationValue() {
		t.Error("lower ID must have lower arbitration value")
	}
	data := MustDataFrame(0x100, nil)
	rtr := Frame{ID: 0x100, RTR: true}
	if data.ArbitrationValue() >= rtr.ArbitrationValue() {
		t.Error("data frame must beat RTR frame at the same ID")
	}
	std := MustDataFrame(0x100, nil)
	ext := Frame{ID: 0x100, Extended: true}
	if std.ArbitrationValue() >= ext.ArbitrationValue() {
		t.Error("standard frame must beat extended frame")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	frames := []Frame{
		MustDataFrame(0x123, []byte{1, 2, 3, 4, 5, 6, 7, 8}),
		MustDataFrame(0, nil),
		{ID: 0x1FFFFFFF, Extended: true, Data: []byte{0xAA}, DLC: 1},
		{ID: 0x7FF, RTR: true, DLC: 4},
	}
	for _, f := range frames {
		f := f
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		b, err := f.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", f, err)
		}
		var g Frame
		if err := g.UnmarshalBinary(b); err != nil {
			t.Fatalf("unmarshal %v: %v", f, err)
		}
		if !f.Equal(g) {
			t.Errorf("round-trip mismatch: %v -> %v", f, g)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short", []byte{marshalMarker, 0, 0}},
		{"bad marker", []byte{0x00, 0, 0, 0, 0, 1, 0}},
		{"dlc/payload mismatch", []byte{marshalMarker, 0, 0, 0, 0, 1, 3, 9}},
		{"rtr with payload", []byte{marshalMarker, 2, 0, 0, 0, 1, 0, 9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var f Frame
			if err := f.UnmarshalBinary(tt.in); err == nil {
				t.Error("UnmarshalBinary accepted garbage")
			}
		})
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	prop := func(id uint32, ext, rtr bool, payload []byte) bool {
		f := Frame{Extended: ext, RTR: rtr}
		if ext {
			f.ID = id % (MaxExtendedID + 1)
		} else {
			f.ID = id % (MaxStandardID + 1)
		}
		if rtr {
			f.DLC = uint8(len(payload) % (MaxDataLen + 1))
		} else {
			if len(payload) > MaxDataLen {
				payload = payload[:MaxDataLen]
			}
			f.Data = payload
		}
		if err := f.Validate(); err != nil {
			return false
		}
		b, err := f.MarshalBinary()
		if err != nil {
			return false
		}
		var g Frame
		if err := g.UnmarshalBinary(b); err != nil {
			return false
		}
		return f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFrameString(t *testing.T) {
	f := MustDataFrame(0x123, []byte{0xAB})
	if got := f.String(); got != "123#D[1]AB" {
		t.Errorf("String() = %q", got)
	}
	r := Frame{ID: 0x10, RTR: true, DLC: 2}
	if got := r.String(); got != "010#R[2]" {
		t.Errorf("String() = %q", got)
	}
}
