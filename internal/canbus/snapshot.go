package canbus

import "time"

// This file implements quiescent-point checkpointing for the bus substrate:
// Snapshot captures the full mutable state of a pristine topology at an
// instant where no transmission is in flight, and RestoreFrom rewinds the
// bus to that capture with Reset's topology discipline (post-snapshot nodes
// discarded or parked) but a state overlay instead of a wipe. The attack
// arena uses the pair to replay a shared scenario prefix once per
// enforcement regime and fork every cell of a mutate family from it.
//
// Quiescence is the load-bearing simplification: at a drained-scheduler
// instant the bus is idle (busy=false, no armed kick, empty transmit
// queues), so a checkpoint needs no in-flight frame, no pending-transmitter
// list and no per-node queue contents — only counters, filters and receive
// state. Snapshot panics when that precondition is violated rather than
// capturing a state it could not faithfully restore.

// NodeSnapshot captures one pristine node's mutable state at a quiescent
// instant (empty transmit queue). Controller filter banks are aliased, not
// copied: filters are only read or replaced wholesale (SetFilters copies its
// input), the same invariant Controller.reset relies on.
type NodeSnapshot struct {
	inline   InlineFilter
	stats    NodeStats
	counters ErrorCounters

	// Controller state.
	filters     []AcceptanceFilter
	exact       *[(MaxStandardID + 1) / 64]uint64
	handler     Handler
	mailboxCap  int
	compromised bool
	overruns    uint64
	mailbox     []Frame // owned deep copy; frames Cloned both ways

	// Remote auto-responders, copied only when any are registered (the car
	// topology registers none, so the common capture stays allocation-free).
	responders map[uint32]func() []byte
}

// snapshotState captures the node's mutable state into dst, reusing dst's
// buffers across captures.
func (n *Node) snapshotState(dst *NodeSnapshot) {
	if len(n.txq) != 0 {
		panic("canbus: snapshot of a node with queued frames")
	}
	dst.inline = n.inline
	dst.stats = n.stats
	dst.counters = n.counters
	c := n.ctrl
	dst.filters = c.filters
	dst.exact = c.exact
	dst.handler = c.handler
	dst.mailboxCap = c.mailboxCap
	dst.compromised = c.compromised
	dst.overruns = c.overruns
	dst.mailbox = dst.mailbox[:0]
	for _, f := range c.mailbox {
		dst.mailbox = append(dst.mailbox, f.Clone())
	}
	if len(n.responders) == 0 {
		clear(dst.responders)
	} else {
		if dst.responders == nil {
			dst.responders = make(map[uint32]func() []byte, len(n.responders))
		} else {
			clear(dst.responders)
		}
		for id, fn := range n.responders {
			dst.responders[id] = fn
		}
	}
}

// restoreState rewinds the node to the captured state. Mutations the
// post-checkpoint tail may have applied beyond the capture — queued frames,
// registered responders, a compromised controller — are cleared exactly as
// Node.reset clears them.
func (n *Node) restoreState(src *NodeSnapshot) {
	n.inline = src.inline
	n.stats = src.stats
	n.counters = src.counters
	n.txq = n.txq[:0]
	n.detached = false
	clear(n.responders)
	for id, fn := range src.responders {
		if n.responders == nil {
			n.responders = map[uint32]func() []byte{}
		}
		n.responders[id] = fn
	}
	c := n.ctrl
	c.filters = src.filters
	c.exact = src.exact
	c.handler = src.handler
	c.mailboxCap = src.mailboxCap
	c.compromised = src.compromised
	c.overruns = src.overruns
	c.mailbox = c.mailbox[:0]
	for _, f := range src.mailbox {
		c.mailbox = append(c.mailbox, f.Clone())
	}
}

// BusSnapshot captures a quiescent bus's full mutable state: configuration,
// RNG position, counters and every pristine node's state. Reusable — the
// arena holds one per (prefix, regime) and overwrites it per bucket.
type BusSnapshot struct {
	bitTime  time.Duration
	errRate  float64
	rngState uint64
	stats    busCounters
	nodes    []NodeSnapshot // index-aligned with the pristine set
}

// Quiescent reports whether the bus satisfies Snapshot's preconditions: no
// in-flight transmission, no armed arbitration round, no pending
// transmitters, the pristine topology and every pristine node's transmit
// queue empty. It is the cheap probe the attack arena uses to turn the
// Snapshot panics into a recoverable ErrNotQuiescent.
func (b *Bus) Quiescent() bool {
	if b.busy || b.kickArmed || len(b.txPending) != 0 {
		return false
	}
	if len(b.nodes) != len(b.pristine) {
		return false
	}
	for _, n := range b.pristine {
		if len(n.txq) != 0 {
			return false
		}
	}
	return true
}

// Snapshot captures the bus's state into dst for a later RestoreFrom. The
// bus must be quiescent (no in-flight transmission, no armed arbitration
// round, no pending transmitters) and carry exactly its pristine topology —
// both hold at any drained-scheduler instant before attackers are placed.
// The tracer is not captured; like Reset, RestoreFrom clears it.
func (b *Bus) Snapshot(dst *BusSnapshot) {
	if b.busy || b.kickArmed || len(b.txPending) != 0 {
		panic("canbus: Snapshot of a non-quiescent bus")
	}
	if len(b.nodes) != len(b.pristine) {
		panic("canbus: Snapshot of a non-pristine topology")
	}
	dst.bitTime = b.bitTime
	dst.errRate = b.errRate
	dst.rngState = b.rng.State()
	dst.stats = b.stats
	if cap(dst.nodes) < len(b.pristine) {
		dst.nodes = make([]NodeSnapshot, len(b.pristine))
	}
	dst.nodes = dst.nodes[:len(b.pristine)]
	for i, n := range b.pristine {
		n.snapshotState(&dst.nodes[i])
	}
}

// RestoreFrom rewinds the bus to a state captured by Snapshot. Topology
// handling mirrors Reset: nodes attached after the capture (a cell's outside
// attacker) are discarded or parked for recycling, pristine nodes are
// restored to their captured state, and the error-injection RNG resumes at
// its captured stream position. The owning scheduler is not touched —
// restore it first (car.Car.RestoreFrom does).
func (b *Bus) RestoreFrom(src *BusSnapshot) {
	b.bitTime = src.bitTime
	b.errRate = src.errRate
	b.rng.SetState(src.rngState)
	b.busy = false
	b.kickArmed = false
	b.txNode, b.txFrame, b.txFailed = nil, Frame{}, false
	b.tracer = nil
	for _, n := range b.txPending {
		n.txPending = false
	}
	b.txPending = b.txPending[:0]
	b.orderSeq = b.pristineOrderSeq
	for _, n := range b.nodes {
		if !n.snapped {
			n.detached = true
			delete(b.byName, n.name)
			if b.recycleRogues {
				b.rogues[n.name] = n
			} else {
				n.txq = nil
			}
		}
	}
	b.nodes = append(b.nodes[:0], b.pristine...)
	b.rxDirty = true
	for i, n := range b.pristine {
		n.restoreState(&src.nodes[i])
	}
	if b.namesEvict {
		for _, n := range b.pristine {
			b.byName[n.name] = n
		}
		b.namesEvict = false
	}
	b.stats = src.stats
}
