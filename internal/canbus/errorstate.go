package canbus

// ErrorState is the ISO 11898 error-confinement state of a node.
type ErrorState uint8

// Error confinement states.
const (
	// ErrorActive nodes participate fully and send active error flags.
	ErrorActive ErrorState = iota + 1
	// ErrorPassive nodes may transmit but signal errors passively.
	ErrorPassive
	// BusOff nodes are disconnected from the bus until reset.
	BusOff
)

// String returns the state name.
func (s ErrorState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return "invalid"
	}
}

// Error-counter thresholds from ISO 11898-1 §12.
const (
	errorPassiveThreshold = 128
	busOffThreshold       = 256

	txErrorPenalty  = 8 // TEC increment on a transmit error
	rxErrorPenalty  = 1 // REC increment on a receive error
	successTxReward = 1 // TEC decrement on successful transmission
	successRxReward = 1 // REC decrement on successful reception
)

// ErrorCounters tracks a node's transmit (TEC) and receive (REC) error
// counters and derives its confinement state. The zero value is an
// error-active node with clean counters.
type ErrorCounters struct {
	tec int
	rec int
}

// TEC returns the transmit error counter.
func (c *ErrorCounters) TEC() int { return c.tec }

// REC returns the receive error counter.
func (c *ErrorCounters) REC() int { return c.rec }

// State derives the confinement state from the counters.
func (c *ErrorCounters) State() ErrorState {
	switch {
	case c.tec >= busOffThreshold:
		return BusOff
	case c.tec >= errorPassiveThreshold || c.rec >= errorPassiveThreshold:
		return ErrorPassive
	default:
		return ErrorActive
	}
}

// OnTxError records a transmit error and returns the new state.
func (c *ErrorCounters) OnTxError() ErrorState {
	c.tec += txErrorPenalty
	return c.State()
}

// OnRxError records a receive error and returns the new state.
func (c *ErrorCounters) OnRxError() ErrorState {
	c.rec += rxErrorPenalty
	return c.State()
}

// OnTxSuccess records a successful transmission.
func (c *ErrorCounters) OnTxSuccess() {
	if c.tec > 0 {
		c.tec -= successTxReward
	}
}

// OnRxSuccess records a successful reception. Per the standard, a node in
// error-passive with REC above 127 drops back to a value just below the
// threshold on a successful reception.
func (c *ErrorCounters) OnRxSuccess() {
	switch {
	case c.rec >= errorPassiveThreshold:
		c.rec = errorPassiveThreshold - 9
	case c.rec > 0:
		c.rec -= successRxReward
	}
}

// Reset clears both counters (power-on reset after bus-off).
func (c *ErrorCounters) Reset() { c.tec, c.rec = 0, 0 }
