package dread

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestScoreAverageAndString(t *testing.T) {
	tests := []struct {
		score Score
		avg   float64
		str   string
	}{
		{MustNew(8, 5, 4, 6, 4), 5.4, "8,5,4,6,4 (5.4)"},
		{MustNew(6, 3, 3, 6, 4), 4.4, "6,3,3,6,4 (4.4)"},
		{MustNew(9, 4, 5, 9, 4), 6.2, "9,4,5,9,4 (6.2)"},
		{MustNew(0, 0, 0, 0, 0), 0.0, "0,0,0,0,0 (0.0)"},
		{MustNew(10, 10, 10, 10, 10), 10.0, "10,10,10,10,10 (10.0)"},
	}
	for _, tt := range tests {
		if got := tt.score.Average(); got != tt.avg {
			t.Errorf("Average(%v) = %v, want %v", tt.score, got, tt.avg)
		}
		if got := tt.score.String(); got != tt.str {
			t.Errorf("String(%v) = %q, want %q", tt.score, got, tt.str)
		}
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	cases := [][5]int{
		{-1, 5, 5, 5, 5},
		{5, 11, 5, 5, 5},
		{5, 5, -3, 5, 5},
		{5, 5, 5, 99, 5},
		{5, 5, 5, 5, -1},
	}
	for _, c := range cases {
		if _, err := New(c[0], c[1], c[2], c[3], c[4]); !errors.Is(err, ErrRange) {
			t.Errorf("New(%v) error = %v, want ErrRange", c, err)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    Score
		wantErr bool
	}{
		{"8,5,4,6,4 (5.4)", MustNew(8, 5, 4, 6, 4), false},
		{"8,5,4,6,4", MustNew(8, 5, 4, 6, 4), false},
		{" 6, 3 ,3, 6,4  (4.4) ", MustNew(6, 3, 3, 6, 4), false},
		{"8,5,4,6 (5.4)", Score{}, true},   // four components
		{"8,5,4,6,4,2", Score{}, true},     // six components
		{"8,5,4,6,4 (9.9)", Score{}, true}, // wrong average
		{"8,x,4,6,4", Score{}, true},       // non-numeric
		{"8,5,4,6,4 )5.4(", Score{}, true}, // malformed parens
		{"11,5,4,6,4", Score{}, true},      // out of range
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	prop := func(d, r, e, a, disc uint8) bool {
		s := Score{
			Damage:          int(d % 11),
			Reproducibility: int(r % 11),
			Exploitability:  int(e % 11),
			AffectedUsers:   int(a % 11),
			Discoverability: int(disc % 11),
		}
		parsed, err := Parse(s.String())
		return err == nil && parsed == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRatingBands(t *testing.T) {
	tests := []struct {
		score Score
		want  Rating
	}{
		{MustNew(1, 1, 1, 1, 1), Low},
		{MustNew(4, 4, 4, 4, 3), Low},      // avg 3.8
		{MustNew(4, 4, 4, 4, 4), Medium},   // avg 4.0
		{MustNew(6, 6, 6, 6, 5), Medium},   // avg 5.8
		{MustNew(6, 6, 6, 6, 6), High},     // avg 6.0
		{MustNew(8, 8, 8, 8, 7), High},     // avg 7.8
		{MustNew(8, 8, 8, 8, 8), Critical}, // avg 8.0
		{MustNew(10, 10, 10, 10, 10), Critical},
	}
	for _, tt := range tests {
		if got := tt.score.Rate(); got != tt.want {
			t.Errorf("Rate(%v) = %v, want %v", tt.score, got, tt.want)
		}
	}
}

func TestLessOrdering(t *testing.T) {
	lo := MustNew(1, 1, 1, 1, 1)
	hi := MustNew(9, 9, 9, 9, 9)
	if !lo.Less(hi) || hi.Less(lo) {
		t.Error("Less ordering by average is wrong")
	}
	// Same average, damage breaks the tie.
	a := MustNew(4, 6, 5, 5, 5)
	b := MustNew(6, 4, 5, 5, 5)
	if !a.Less(b) || b.Less(a) {
		t.Error("Less tie-break by damage is wrong")
	}
	// Fully equal scores are not Less either way.
	if a.Less(a) {
		t.Error("score Less than itself")
	}
}

func TestRubricLevelValuesAreOrdered(t *testing.T) {
	damage := []DamageLevel{DamageNegligible, DamageCosmetic, DamageDegraded,
		DamageServiceLoss, DamageSubsystem, DamageControl, DamageSafety, DamageLife}
	for i := 1; i < len(damage); i++ {
		if damage[i].Value() < damage[i-1].Value() {
			t.Errorf("damage level %d value %d < previous %d",
				damage[i], damage[i].Value(), damage[i-1].Value())
		}
	}
	repro := []ReproLevel{ReproHard, ReproSituational, ReproReliable, ReproAlways}
	for i := 1; i < len(repro); i++ {
		if repro[i].Value() <= repro[i-1].Value() {
			t.Error("repro levels not strictly increasing")
		}
	}
	exploit := []ExploitLevel{ExploitExpert, ExploitSpecialist, ExploitSkilled, ExploitToolkit, ExploitEasy}
	for i := 1; i < len(exploit); i++ {
		if exploit[i].Value() <= exploit[i-1].Value() {
			t.Error("exploit levels not strictly increasing")
		}
	}
	affected := []AffectedLevel{AffectedFew, AffectedOwner, AffectedOccupants, AffectedBystanders, AffectedFleet}
	for i := 1; i < len(affected); i++ {
		if affected[i].Value() <= affected[i-1].Value() {
			t.Error("affected levels not strictly increasing")
		}
	}
	discover := []DiscoverLevel{DiscoverObscure, DiscoverResearch, DiscoverKnown, DiscoverObvious}
	for i := 1; i < len(discover); i++ {
		if discover[i].Value() <= discover[i-1].Value() {
			t.Error("discover levels not strictly increasing")
		}
	}
}

func TestRubricScore(t *testing.T) {
	r := Rubric{}
	s, err := r.Score(Assessment{
		Damage:          DamageSafety,
		Reproducibility: ReproReliable,
		Exploitability:  ExploitSpecialist,
		AffectedUsers:   AffectedOwner,
		Discoverability: DiscoverObscure,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := MustNew(8, 5, 4, 6, 4); s != want {
		t.Errorf("Score = %v, want %v (Table I row 1)", s, want)
	}
}

func TestRubricRejectsInvalidLevels(t *testing.T) {
	r := Rubric{}
	if _, err := r.Score(Assessment{}); err == nil {
		t.Error("zero assessment accepted")
	}
	if _, err := r.Score(Assessment{
		Damage:          DamageLevel(99),
		Reproducibility: ReproReliable,
		Exploitability:  ExploitSkilled,
		AffectedUsers:   AffectedOwner,
		Discoverability: DiscoverKnown,
	}); err == nil {
		t.Error("invalid damage level accepted")
	}
}

func TestScoreAdjusted(t *testing.T) {
	r := Rubric{}
	base := Assessment{
		Damage:          DamageControl,
		Reproducibility: ReproReliable,
		Exploitability:  ExploitSkilled,
		AffectedUsers:   AffectedOwner,
		Discoverability: DiscoverKnown,
	}
	s, err := r.ScoreAdjusted(base, Adjust{Damage: +1, Discoverability: -1})
	if err != nil {
		t.Fatal(err)
	}
	if want := MustNew(8, 5, 5, 6, 5); s != want {
		t.Errorf("adjusted = %v, want %v", s, want)
	}
	// Excessive adjustment is rejected.
	if _, err := r.ScoreAdjusted(base, Adjust{Damage: 2}); err == nil {
		t.Error("adjustment beyond ±1 accepted")
	}
	// Clamping at the bounds.
	low := Assessment{
		Damage:          DamageNegligible, // value 0
		Reproducibility: ReproHard,
		Exploitability:  ExploitExpert,
		AffectedUsers:   AffectedFew,
		Discoverability: DiscoverObscure,
	}
	s2, err := r.ScoreAdjusted(low, Adjust{Damage: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Damage != 0 {
		t.Errorf("clamped damage = %d, want 0", s2.Damage)
	}
}

func TestAverageFormatMatchesPaperStyle(t *testing.T) {
	// Table I prints one decimal; verify .0 averages keep the trailing zero.
	s := MustNew(7, 5, 5, 9, 4)
	if got := fmt.Sprintf("%.1f", s.Average()); got != "6.0" {
		t.Errorf("average format %q, want 6.0", got)
	}
}
