// Package dread implements the DREAD risk-assessment model used by the
// paper's threat-rating step: each threat receives five component scores —
// Damage, Reproducibility, Exploitability, Affected users, Discoverability —
// whose average quantifies the threat's severity (Table I renders these as
// "8,5,4,6,4 (5.4)").
//
// Scores are derived from qualitative levels through a Rubric rather than
// assigned as raw numbers, so the reproduced table is a computation over
// scenario facts.
package dread

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxComponent is the upper bound of each DREAD component score.
const MaxComponent = 10

// Score is the five-component DREAD rating of a threat.
type Score struct {
	// Damage: how bad would an attack be?
	Damage int
	// Reproducibility: how easy is it to reproduce the attack?
	Reproducibility int
	// Exploitability: how much work is it to launch the attack?
	Exploitability int
	// AffectedUsers: how many people will be impacted?
	AffectedUsers int
	// Discoverability: how easy is it to discover the threat?
	Discoverability int
}

// ErrRange is returned when a component score falls outside [0, MaxComponent].
var ErrRange = errors.New("dread: component score out of range")

// New builds a validated score.
func New(d, r, e, a, disc int) (Score, error) {
	s := Score{d, r, e, a, disc}
	if err := s.Validate(); err != nil {
		return Score{}, err
	}
	return s, nil
}

// MustNew is New for static tables; it panics on invalid components.
func MustNew(d, r, e, a, disc int) Score {
	s, err := New(d, r, e, a, disc)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks every component is within [0, MaxComponent].
func (s Score) Validate() error {
	for _, c := range s.Components() {
		if c < 0 || c > MaxComponent {
			return fmt.Errorf("%w: %d", ErrRange, c)
		}
	}
	return nil
}

// Components returns the five components in D,R,E,A,D order.
func (s Score) Components() [5]int {
	return [5]int{s.Damage, s.Reproducibility, s.Exploitability, s.AffectedUsers, s.Discoverability}
}

// Average returns the arithmetic mean of the five components.
func (s Score) Average() float64 {
	sum := 0
	for _, c := range s.Components() {
		sum += c
	}
	return float64(sum) / 5
}

// String renders the score exactly as Table I does: "8,5,4,6,4 (5.4)".
func (s Score) String() string {
	c := s.Components()
	return fmt.Sprintf("%d,%d,%d,%d,%d (%.1f)", c[0], c[1], c[2], c[3], c[4], s.Average())
}

// Parse reads the Table I rendering ("8,5,4,6,4 (5.4)" or just "8,5,4,6,4")
// back into a Score. A parenthesised average, when present, is verified
// against the components to one decimal place.
func Parse(in string) (Score, error) {
	text := strings.TrimSpace(in)
	var avgPart string
	if i := strings.IndexByte(text, '('); i >= 0 {
		j := strings.IndexByte(text, ')')
		if j < i {
			return Score{}, fmt.Errorf("dread: malformed average in %q", in)
		}
		avgPart = strings.TrimSpace(text[i+1 : j])
		text = strings.TrimSpace(text[:i])
	}
	parts := strings.Split(text, ",")
	if len(parts) != 5 {
		return Score{}, fmt.Errorf("dread: want 5 components in %q, got %d", in, len(parts))
	}
	var comps [5]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return Score{}, fmt.Errorf("dread: bad component %q: %w", p, err)
		}
		comps[i] = v
	}
	s, err := New(comps[0], comps[1], comps[2], comps[3], comps[4])
	if err != nil {
		return Score{}, err
	}
	if avgPart != "" {
		want, err := strconv.ParseFloat(avgPart, 64)
		if err != nil {
			return Score{}, fmt.Errorf("dread: bad average %q: %w", avgPart, err)
		}
		if got := s.Average(); fmt.Sprintf("%.1f", got) != fmt.Sprintf("%.1f", want) {
			return Score{}, fmt.Errorf("dread: average mismatch in %q: computed %.1f", in, got)
		}
	}
	return s, nil
}

// Rating is the coarse severity band of a threat, used to prioritise
// countermeasure effort.
type Rating uint8

// Rating bands over the DREAD average.
const (
	// Low: average below 4.
	Low Rating = iota + 1
	// Medium: average in [4, 6).
	Medium
	// High: average in [6, 8).
	High
	// Critical: average of 8 or above.
	Critical
)

// String returns the band name.
func (r Rating) String() string {
	switch r {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	case Critical:
		return "Critical"
	default:
		return "invalid"
	}
}

// Rate maps the score's average onto its severity band.
func (s Score) Rate() Rating {
	avg := s.Average()
	switch {
	case avg >= 8:
		return Critical
	case avg >= 6:
		return High
	case avg >= 4:
		return Medium
	default:
		return Low
	}
}

// Less orders scores by average, breaking ties by damage then
// exploitability, so threat lists sort deterministically.
func (s Score) Less(t Score) bool {
	sa, ta := s.Average(), t.Average()
	if sa != ta {
		return sa < ta
	}
	if s.Damage != t.Damage {
		return s.Damage < t.Damage
	}
	return s.Exploitability < t.Exploitability
}
