package dread

import "fmt"

// The level types below encode the qualitative judgements an analyst makes
// during threat rating. Each level carries a fixed numeric value on the
// 0–10 DREAD scale; Rubric.Score assembles the five components. Encoding
// Table I through levels (rather than raw integers) keeps the reproduction
// honest: the table's numbers come out of this rubric applied to scenario
// facts.

// DamageLevel grades the worst-case damage of a successful attack.
type DamageLevel uint8

// Damage levels, from cosmetic nuisance to threat-to-life.
const (
	// DamageNegligible: no meaningful damage.
	DamageNegligible DamageLevel = iota + 1
	// DamageCosmetic: display-level falsification, no functional harm.
	DamageCosmetic
	// DamageDegraded: a convenience function degrades.
	DamageDegraded
	// DamageServiceLoss: a non-safety service is lost (e.g. tracking).
	DamageServiceLoss
	// DamageSubsystem: a vehicle subsystem is disabled or subverted.
	DamageSubsystem
	// DamageControl: attacker influence over vehicle control or theft.
	DamageControl
	// DamageSafety: immediate danger to occupants (safety-critical).
	DamageSafety
	// DamageLife: direct threat to life (e.g. locks sealed in a crash).
	DamageLife
)

var damageValue = map[DamageLevel]int{
	DamageNegligible:  0,
	DamageCosmetic:    3,
	DamageDegraded:    5,
	DamageServiceLoss: 6,
	DamageSubsystem:   6,
	DamageControl:     7,
	DamageSafety:      8,
	DamageLife:        9,
}

// Value returns the 0–10 score for the level.
func (l DamageLevel) Value() int { return damageValue[l] }

// ReproLevel grades how reliably the attack reproduces.
type ReproLevel uint8

// Reproducibility levels.
const (
	// ReproHard: needs rare preconditions; works sporadically.
	ReproHard ReproLevel = iota + 1
	// ReproSituational: needs a specific vehicle state (mode, motion).
	ReproSituational
	// ReproReliable: works whenever the attacker has bus access.
	ReproReliable
	// ReproAlways: works unconditionally once deployed.
	ReproAlways
)

var reproValue = map[ReproLevel]int{
	ReproHard:        3,
	ReproSituational: 4,
	ReproReliable:    5,
	ReproAlways:      6,
}

// Value returns the 0–10 score for the level.
func (l ReproLevel) Value() int { return reproValue[l] }

// ExploitLevel grades the effort and skill required to launch the attack.
type ExploitLevel uint8

// Exploitability levels.
const (
	// ExploitExpert: bespoke hardware plus deep proprietary knowledge.
	ExploitExpert ExploitLevel = iota + 1
	// ExploitSpecialist: specialist knowledge of the ECU and CAN layout.
	ExploitSpecialist
	// ExploitSkilled: published techniques, moderate skill.
	ExploitSkilled
	// ExploitToolkit: achievable with available tools/exploit kits.
	ExploitToolkit
	// ExploitEasy: trivially scriptable once the entry point is reached.
	ExploitEasy
)

var exploitValue = map[ExploitLevel]int{
	ExploitExpert:     3,
	ExploitSpecialist: 4,
	ExploitSkilled:    5,
	ExploitToolkit:    6,
	ExploitEasy:       7,
}

// Value returns the 0–10 score for the level.
func (l ExploitLevel) Value() int { return exploitValue[l] }

// AffectedLevel grades the population impacted by a successful attack.
type AffectedLevel uint8

// Affected-users levels.
const (
	// AffectedFew: a single user inconvenienced.
	AffectedFew AffectedLevel = iota + 1
	// AffectedOwner: the vehicle owner.
	AffectedOwner
	// AffectedOccupants: everyone in the vehicle.
	AffectedOccupants
	// AffectedBystanders: occupants plus other road users.
	AffectedBystanders
	// AffectedFleet: every vehicle sharing the platform.
	AffectedFleet
)

var affectedValue = map[AffectedLevel]int{
	AffectedFew:        4,
	AffectedOwner:      6,
	AffectedOccupants:  7,
	AffectedBystanders: 8,
	AffectedFleet:      9,
}

// Value returns the 0–10 score for the level.
func (l AffectedLevel) Value() int { return affectedValue[l] }

// DiscoverLevel grades how easily an attacker finds the weakness.
type DiscoverLevel uint8

// Discoverability levels.
const (
	// DiscoverObscure: requires insider documentation or reverse engineering.
	DiscoverObscure DiscoverLevel = iota + 1
	// DiscoverResearch: findable with targeted research effort.
	DiscoverResearch
	// DiscoverKnown: technique published for comparable systems.
	DiscoverKnown
	// DiscoverObvious: visible to anyone probing the interface.
	DiscoverObvious
)

var discoverValue = map[DiscoverLevel]int{
	DiscoverObscure:  4,
	DiscoverResearch: 5,
	DiscoverKnown:    6,
	DiscoverObvious:  7,
}

// Value returns the 0–10 score for the level.
func (l DiscoverLevel) Value() int { return discoverValue[l] }

// Assessment is the set of qualitative judgements for one threat.
type Assessment struct {
	Damage          DamageLevel
	Reproducibility ReproLevel
	Exploitability  ExploitLevel
	AffectedUsers   AffectedLevel
	Discoverability DiscoverLevel
}

// Validate checks that every level is a declared constant.
func (a Assessment) Validate() error {
	if _, ok := damageValue[a.Damage]; !ok {
		return fmt.Errorf("dread: invalid damage level %d", a.Damage)
	}
	if _, ok := reproValue[a.Reproducibility]; !ok {
		return fmt.Errorf("dread: invalid reproducibility level %d", a.Reproducibility)
	}
	if _, ok := exploitValue[a.Exploitability]; !ok {
		return fmt.Errorf("dread: invalid exploitability level %d", a.Exploitability)
	}
	if _, ok := affectedValue[a.AffectedUsers]; !ok {
		return fmt.Errorf("dread: invalid affected-users level %d", a.AffectedUsers)
	}
	if _, ok := discoverValue[a.Discoverability]; !ok {
		return fmt.Errorf("dread: invalid discoverability level %d", a.Discoverability)
	}
	return nil
}

// Rubric converts qualitative assessments into numeric scores. Adjust holds
// per-component deltas an analyst may apply for scenario-specific judgement
// calls; deltas larger than ±1 are rejected to keep the rubric honest.
type Rubric struct{}

// MaxAdjust bounds each analyst adjustment applied via ScoreAdjusted.
const MaxAdjust = 1

// Adjust is a bounded per-component analyst correction.
type Adjust struct {
	Damage, Reproducibility, Exploitability, AffectedUsers, Discoverability int
}

// Validate rejects adjustments outside ±MaxAdjust.
func (a Adjust) Validate() error {
	for _, d := range [5]int{a.Damage, a.Reproducibility, a.Exploitability, a.AffectedUsers, a.Discoverability} {
		if d < -MaxAdjust || d > MaxAdjust {
			return fmt.Errorf("dread: adjustment %d exceeds ±%d", d, MaxAdjust)
		}
	}
	return nil
}

// Score converts an assessment into a Score via the level values.
func (Rubric) Score(a Assessment) (Score, error) {
	if err := a.Validate(); err != nil {
		return Score{}, err
	}
	return New(
		a.Damage.Value(),
		a.Reproducibility.Value(),
		a.Exploitability.Value(),
		a.AffectedUsers.Value(),
		a.Discoverability.Value(),
	)
}

// ScoreAdjusted applies a bounded analyst adjustment on top of Score,
// clamping each component to the valid range.
func (r Rubric) ScoreAdjusted(a Assessment, adj Adjust) (Score, error) {
	if err := adj.Validate(); err != nil {
		return Score{}, err
	}
	base, err := r.Score(a)
	if err != nil {
		return Score{}, err
	}
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > MaxComponent {
			return MaxComponent
		}
		return v
	}
	return New(
		clamp(base.Damage+adj.Damage),
		clamp(base.Reproducibility+adj.Reproducibility),
		clamp(base.Exploitability+adj.Exploitability),
		clamp(base.AffectedUsers+adj.AffectedUsers),
		clamp(base.Discoverability+adj.Discoverability),
	)
}
