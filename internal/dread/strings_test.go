package dread

import "testing"

func TestRatingStrings(t *testing.T) {
	tests := []struct {
		rating Rating
		want   string
	}{
		{Low, "Low"},
		{Medium, "Medium"},
		{High, "High"},
		{Critical, "Critical"},
		{Rating(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.rating.String(); got != tt.want {
			t.Errorf("Rating(%d) = %q, want %q", tt.rating, got, tt.want)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with out-of-range component did not panic")
		}
	}()
	MustNew(11, 0, 0, 0, 0)
}

func TestAssessmentValidateEachField(t *testing.T) {
	valid := Assessment{
		Damage:          DamageControl,
		Reproducibility: ReproReliable,
		Exploitability:  ExploitSkilled,
		AffectedUsers:   AffectedOwner,
		Discoverability: DiscoverKnown,
	}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Assessment){
		func(a *Assessment) { a.Damage = 99 },
		func(a *Assessment) { a.Reproducibility = 99 },
		func(a *Assessment) { a.Exploitability = 99 },
		func(a *Assessment) { a.AffectedUsers = 99 },
		func(a *Assessment) { a.Discoverability = 99 },
	}
	for i, mutate := range mutations {
		a := valid
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d: invalid level accepted", i)
		}
	}
}

func TestAdjustValidateEachField(t *testing.T) {
	mutations := []Adjust{
		{Damage: 2},
		{Reproducibility: -2},
		{Exploitability: 2},
		{AffectedUsers: -2},
		{Discoverability: 2},
	}
	for i, adj := range mutations {
		if err := adj.Validate(); err == nil {
			t.Errorf("case %d: out-of-band adjustment accepted", i)
		}
	}
	if err := (Adjust{Damage: 1, Discoverability: -1}).Validate(); err != nil {
		t.Errorf("in-band adjustment rejected: %v", err)
	}
}
