package dread

import "testing"

// FuzzParse feeds arbitrary text to the Table I score parser: it must never
// panic, and any rendering it accepts must round-trip — Parse(s).String()
// re-parses to an identical Score, the same identity invariant the campaign
// and policy grammars enforce. A seed corpus under testdata/fuzz keeps the
// CI smoke warm.
func FuzzParse(f *testing.F) {
	f.Add("8,5,4,6,4 (5.4)")
	f.Add("8,5,4,6,4")
	f.Add("0,0,0,0,0 (0.0)")
	f.Add("10,10,10,10,10 (10.0)")
	f.Add(" 7 , 5 , 5 , 9 , 4 ")
	f.Add("9,4,5,9,4 (6.2)")
	f.Add("1,2,3")
	f.Add("8,5,4,6,4 (9.9)")
	f.Add("11,0,0,0,0")
	f.Add("-1,5,4,6,4")
	f.Add("8,5,4,6,4 (")

	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted score out of range: %v (%q)", err, src)
		}
		rendered := s.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted score does not re-parse: %v\n--- source ---\n%q\n--- rendered ---\n%q",
				err, src, rendered)
		}
		if s2 != s {
			t.Fatalf("render round trip changed the score: %v -> %v (source %q)", s, s2, src)
		}
		// The severity band must be stable through the round trip too.
		if s2.Rate() != s.Rate() {
			t.Fatalf("round trip changed the rating: %v -> %v", s.Rate(), s2.Rate())
		}
	})
}
