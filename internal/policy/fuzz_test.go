package policy

import "testing"

// FuzzParse feeds arbitrary text to the DSL parser: it must never panic,
// and any document it accepts must render (String) and re-parse to a set
// with identical semantics on a probe grid.
func FuzzParse(f *testing.F) {
	f.Add(`policy "p" version 1 { allow read 1 at x }`)
	f.Add(sampleDSL)
	f.Add(`policy "p" version 1 { default deny mode A { deny write 0x10..0x20 at * } }`)
	f.Add(`policy "" version 0 {}`)
	f.Add("policy \"p\" version 1 {\n# comment\n}")
	f.Add(`policy "p" version 18446744073709551615 { allow readwrite 0xFFFFFFFF at "q z" as "n" }`)

	f.Fuzz(func(t *testing.T, src string) {
		set, err := Parse(src)
		if err != nil {
			return
		}
		rendered := set.String()
		set2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted policy does not re-parse: %v\n--- source ---\n%s\n--- rendered ---\n%s",
				err, src, rendered)
		}
		if set2.Name != set.Name || set2.Version != set.Version ||
			len(set2.Rules) != len(set.Rules) {
			t.Fatalf("render round trip changed header/rule count")
		}
		// Semantics probe over the subjects and modes the set mentions,
		// plus a ghost subject and mode.
		subjects := append(set.Subjects(), "ghost-subject")
		modes := append(set.Modes(), "ghost-mode")
		var ids []uint32
		for _, r := range set.Rules {
			for _, rng := range r.IDs {
				ids = append(ids, rng.Lo, rng.Hi)
			}
		}
		ids = append(ids, 0, 0x7FF)
		for _, subj := range subjects {
			for _, mode := range modes {
				for _, id := range ids {
					for _, act := range []Action{ActRead, ActWrite} {
						if set.Decide(subj, mode, act, id) != set2.Decide(subj, mode, act, id) {
							t.Fatalf("render round trip changed semantics at %s/%s/%v/0x%X",
								subj, mode, act, id)
						}
					}
				}
			}
		}
	})
}
