package difftest

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/car"
	"repro/internal/policy"
	"repro/internal/policy/ir"
	"repro/internal/threatmodel"
)

// tableISet derives the paper's Table I policy exactly as the attack harness
// does, with the full car device model as compile options.
func tableISet(t *testing.T) (*policy.Set, policy.CompileOptions) {
	t.Helper()
	analysis, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	set, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	return set, policy.CompileOptions{Subjects: car.AllNodes, Modes: car.AllModes}
}

// TestSpecHandChecked pins the reference evaluator itself to a few decisions
// small enough to verify by eye, so Check is not comparing backends against
// an unexamined oracle.
func TestSpecHandChecked(t *testing.T) {
	set := &policy.Set{Name: "hand", Version: 1, Rules: []policy.Rule{
		{Name: "a", Subject: "ecu", Effect: policy.Allow, Action: policy.ActRead, IDs: policy.Span(0x10, 0x1F)},
		{Name: "d", Subject: policy.SubjectAll, Effect: policy.Deny, Action: policy.ActRead,
			IDs: policy.SingleID(0x15), Modes: policy.NewModeSet("failsafe")},
	}}
	opts := policy.CompileOptions{Subjects: []string{"ecu"}, Modes: []policy.Mode{"normal", "failsafe"}}
	cases := []struct {
		p    Probe
		want policy.Effect
	}{
		{Probe{"ecu", "normal", policy.ActRead, 0x15}, policy.Allow},
		{Probe{"ecu", "failsafe", policy.ActRead, 0x15}, policy.Deny},  // deny overrides
		{Probe{"ecu", "normal", policy.ActWrite, 0x15}, policy.Deny},   // wrong direction
		{Probe{"ecu", "normal", policy.ActRead, 0x20}, policy.Deny},    // outside range
		{Probe{"ghost", "normal", policy.ActRead, 0x15}, policy.Deny},  // unknown subject
		{Probe{"ecu", "track", policy.ActRead, 0x15}, policy.Deny},     // unknown mode
		{Probe{"ecu", "normal", policy.ActReadWrite, 0x15}, policy.Deny}, // invalid act
	}
	for _, c := range cases {
		if got := Spec(set, opts, c.p); got != c.want {
			t.Errorf("Spec(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestUniverseCoversBoundaries checks the probe matrix includes the decisive
// coordinates: unknown subject, foreign mode, invalid actions, and the ±1
// neighbours of every range boundary.
func TestUniverseCoversBoundaries(t *testing.T) {
	set := &policy.Set{Name: "u", Version: 1, Rules: []policy.Rule{
		{Name: "a", Subject: "ecu", Effect: policy.Allow, Action: policy.ActRead, IDs: policy.Span(0x10, 0x1F)},
	}}
	opts := policy.CompileOptions{Subjects: []string{"ecu"}, Modes: []policy.Mode{"normal"}}
	probes := Universe(set, opts)
	want := map[Probe]bool{
		{unknownSubject, "normal", policy.ActRead, 0x10}: false,
		{"ecu", foreignMode, policy.ActRead, 0x10}:       false,
		{"ecu", "normal", policy.ActReadWrite, 0x10}:     false,
		{"ecu", "normal", 0, 0x10}:                       false,
		{"ecu", "normal", policy.ActRead, 0x0F}:          false,
		{"ecu", "normal", policy.ActRead, 0x20}:          false,
		{"ecu", "normal", policy.ActRead, 0x7FC0DE}:      false,
	}
	for _, p := range probes {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Universe missing probe %+v", p)
		}
	}
}

// TestCheckTableI is the headline differential test: every registered
// backend must agree with the specification on the full Table I probe
// matrix over the complete car device model.
func TestCheckTableI(t *testing.T) {
	set, opts := tableISet(t)
	if err := Check(set, opts); err != nil {
		t.Fatal(err)
	}
}

// TestTableIMatrixConcurrent re-runs the Table I matrix with every backend's
// enforcer shared across goroutines, one per device subject, so -race proves
// the Decide hot path is safe for concurrent use — the deployment shape when
// many simulated vehicles share a compiled enforcer.
func TestTableIMatrixConcurrent(t *testing.T) {
	set, opts := tableISet(t)
	probes := Universe(set, opts)
	for _, name := range ir.Names() {
		o := opts
		o.Backend = name
		enf, err := ir.Build(set, o)
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, len(opts.Subjects))
		for _, subject := range opts.Subjects {
			wg.Add(1)
			go func(subject string) {
				defer wg.Done()
				node := enf.Node(subject)
				for _, p := range probes {
					if p.Subject != subject {
						continue
					}
					want := Spec(set, opts, p)
					if got := enf.Decide(p.Subject, p.ID, p.Act, ir.Context{Mode: p.Mode}); got.Effect != want {
						errs <- &divergence{name, p, got.Effect, want}
						return
					}
					if hot := node.Resolve(p.Mode).Allow(p.Act, p.ID); hot != (want == policy.Allow) {
						errs <- &divergence{name, p, policy.Effect(0), want}
						return
					}
				}
			}(subject)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

type divergence struct {
	backend string
	probe   Probe
	got     policy.Effect
	want    policy.Effect
}

func (d *divergence) Error() string {
	var b strings.Builder
	b.WriteString("backend ")
	b.WriteString(d.backend)
	b.WriteString(" diverged at ")
	b.WriteString(d.probe.Subject)
	b.WriteString("/")
	b.WriteString(string(d.probe.Mode))
	return b.String()
}

// splitmix64 is the stack's standard seed-expansion step, used here to
// derive deterministic pseudo-random byte strings for the property test.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// TestCheckFuzzedPolicies is the deterministic slice of the fuzz target: 256
// pseudo-random byte strings through GenPolicy, each Check'd across every
// backend. Failures reproduce exactly (no wall-clock randomness).
func TestCheckFuzzedPolicies(t *testing.T) {
	state := uint64(0xD1F7_7E57)
	next := func() uint64 { state = splitmix64(state); return state }
	for trial := 0; trial < 256; trial++ {
		n := int(next() % 64) // 0..15 rules
		data := make([]byte, n)
		for i := 0; i+8 <= n; i += 8 {
			v := next()
			for j := 0; j < 8; j++ {
				data[i+j] = byte(v >> (8 * j))
			}
		}
		set, opts := GenPolicy(data)
		if err := set.Validate(); err != nil {
			t.Fatalf("trial %d: GenPolicy produced invalid set: %v", trial, err)
		}
		failed, err := CheckCompileError(set, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if failed {
			continue
		}
		if err := Check(set, opts); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
