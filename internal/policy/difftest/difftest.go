// Package difftest is the differential-equivalence harness for the policy
// enforcement backends: it holds every backend registered in policy/ir to
// the same closed-world decision contract, decision for decision, against a
// reference specification evaluated directly over the raw rule set.
//
// The harness has three layers, each consumed by a different test surface:
//
//   - Universe enumerates a decisive probe set for a policy: every device
//     subject plus an unknown one, every device mode plus a foreign one,
//     both single-direction actions plus two invalid ones, and every
//     identifier-range boundary (lo-1, lo, hi, hi+1) plus an identifier far
//     outside the universe.
//   - Check compiles the policy with every registered backend and compares
//     each decision — through both Enforcer.Decide and the hot-path
//     Node/Resolve/Allow route — against the specification.
//   - GenPolicy decodes an arbitrary byte string into a structurally valid
//     policy set and device model, so the FuzzBackendEquivalence target and
//     the seeded property tests explore policy space far beyond the
//     hand-written fixtures.
package difftest

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/policy/ir"
)

// Probe is one decision coordinate.
type Probe struct {
	Subject string
	Mode    policy.Mode
	Act     policy.Action
	ID      uint32
}

// unknownSubject and foreignMode are probe values deliberately outside any
// device model GenPolicy or the tests construct.
const (
	unknownSubject = "difftest-unknown-node"
	foreignMode    = policy.Mode("difftest-foreign-mode")
)

// probeActs covers both valid single-direction actions and two invalid
// action encodings (ActReadWrite and zero), which every backend must deny.
var probeActs = []policy.Action{policy.ActRead, policy.ActWrite, policy.ActReadWrite, 0}

// Spec is the reference decision: the closed-world contract stated over the
// raw rule set. It is intentionally independent of the IR — Lower and every
// backend are all being tested against this.
func Spec(set *policy.Set, opts policy.CompileOptions, p Probe) policy.Effect {
	if p.Act != policy.ActRead && p.Act != policy.ActWrite {
		return policy.Deny
	}
	found := false
	for _, s := range opts.Subjects {
		if s == p.Subject {
			found = true
			break
		}
	}
	if !found {
		return policy.Deny
	}
	found = false
	for _, m := range opts.Modes {
		if m == p.Mode {
			found = true
			break
		}
	}
	if !found {
		return policy.Deny
	}
	return set.Decide(p.Subject, p.Mode, p.Act, p.ID)
}

// probeIDs collects the decisive identifiers of a rule set: every range
// boundary and its two neighbours, plus a far out-of-universe identifier.
func probeIDs(set *policy.Set) []uint32 {
	seen := map[uint32]struct{}{}
	add := func(id uint32) { seen[id] = struct{}{} }
	for _, r := range set.Rules {
		for _, rng := range r.IDs {
			if rng.Lo > 0 {
				add(rng.Lo - 1)
			}
			add(rng.Lo)
			add(rng.Hi)
			if rng.Hi < ^uint32(0) {
				add(rng.Hi + 1)
			}
		}
	}
	add(0x7FC0DE) // far outside any generated universe
	out := make([]uint32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

// Universe enumerates the full probe matrix for a policy and device model.
func Universe(set *policy.Set, opts policy.CompileOptions) []Probe {
	subjects := append(append([]string{}, opts.Subjects...), unknownSubject)
	modes := append(append([]policy.Mode{}, opts.Modes...), foreignMode)
	ids := probeIDs(set)
	out := make([]Probe, 0, len(subjects)*len(modes)*len(probeActs)*len(ids))
	for _, s := range subjects {
		for _, m := range modes {
			for _, a := range probeActs {
				for _, id := range ids {
					out = append(out, Probe{Subject: s, Mode: m, Act: a, ID: id})
				}
			}
		}
	}
	return out
}

// Check compiles the policy with every registered backend and verifies each
// probe decision against Spec, through both the Decide entry point and the
// hot-path decider route. The first divergence is returned with its full
// coordinates; nil means all backends agree with the specification (and
// therefore with each other) on every probe.
func Check(set *policy.Set, opts policy.CompileOptions) error {
	probes := Universe(set, opts)
	for _, name := range ir.Names() {
		o := opts
		o.Backend = name
		enf, err := ir.Build(set, o)
		if err != nil {
			return fmt.Errorf("difftest: backend %s failed to compile: %w", name, err)
		}
		for _, p := range probes {
			want := Spec(set, opts, p)
			got := enf.Decide(p.Subject, p.ID, p.Act, ir.Context{Mode: p.Mode})
			if got.Effect != want {
				return fmt.Errorf("difftest: backend %s Decide(%q, %s, %v, 0x%X) = %v, spec says %v\npolicy:\n%s",
					name, p.Subject, p.Mode, p.Act, p.ID, got.Effect, want, set)
			}
			hot := enf.Node(p.Subject).Resolve(p.Mode).Allow(p.Act, p.ID)
			if hot != (want == policy.Allow) {
				return fmt.Errorf("difftest: backend %s hot path diverges at (%q, %s, %v, 0x%X): allow=%v, spec says %v\npolicy:\n%s",
					name, p.Subject, p.Mode, p.Act, p.ID, hot, want, set)
			}
		}
	}
	return nil
}

// CheckCompileError verifies the uniform-failure contract: if any backend
// rejects the policy at compile time, every backend must reject it (the
// table-expansion cap is enforced during lowering precisely so a policy is
// either valid for all backends or for none).
func CheckCompileError(set *policy.Set, opts policy.CompileOptions) (bool, error) {
	failed, succeeded := []string{}, []string{}
	for _, name := range ir.Names() {
		o := opts
		o.Backend = name
		if _, err := ir.Build(set, o); err != nil {
			failed = append(failed, name)
		} else {
			succeeded = append(succeeded, name)
		}
	}
	if len(failed) > 0 && len(succeeded) > 0 {
		return true, fmt.Errorf("difftest: compile split: %v rejected, %v accepted\npolicy:\n%s", failed, succeeded, set)
	}
	return len(failed) > 0, nil
}

// Device pools for GenPolicy: four device subjects, one subject the device
// does not have, three device modes, one foreign mode. Small pools keep
// collisions (several rules hitting one subject) frequent, which is where
// deny-overrides bugs live.
var (
	genSubjects = []string{"ecu", "brakes", "telematics", "dash"}
	genModes    = []policy.Mode{"normal", "remote-diag", "failsafe"}
)

// GenPolicy decodes an arbitrary byte string into a valid policy set over a
// fixed device model. Every 4-byte group becomes one rule; the decoding is
// total (any input yields a valid set, possibly with zero rules) so fuzzing
// never wastes executions on rejected inputs. Rule count is capped at 16.
func GenPolicy(data []byte) (*policy.Set, policy.CompileOptions) {
	set := &policy.Set{Name: "fuzz", Version: 1}
	for i := 0; i+4 <= len(data) && len(set.Rules) < 16; i += 4 {
		b0, b1, b2, b3 := data[i], data[i+1], data[i+2], data[i+3]
		r := policy.Rule{Name: fmt.Sprintf("r%d", len(set.Rules))}
		switch sel := b0 % 6; sel {
		case 4:
			r.Subject = "ghost" // not in the device model: the rule is unreachable
		case 5:
			r.Subject = policy.SubjectAll
		default:
			r.Subject = genSubjects[sel]
		}
		if b1&1 == 0 {
			r.Effect = policy.Allow
		} else {
			r.Effect = policy.Deny
		}
		r.Action = []policy.Action{policy.ActRead, policy.ActWrite, policy.ActReadWrite}[(b1>>1)%3]
		// Mode bits 3..5 pick device modes; bit 6 adds a foreign mode. All
		// bits clear leaves the universal (empty) mode set.
		for mi := range genModes {
			if b1&(1<<(3+mi)) != 0 {
				r.Modes = r.Modes.Add(genModes[mi])
			}
		}
		if b1&(1<<6) != 0 {
			r.Modes = r.Modes.Add("track-day")
		}
		lo := uint32(b2)
		span := uint32(b3 & 0x1F)
		if b3&0x80 != 0 {
			// Extended-identifier rule: exercises the closure backend's
			// spill list and the table backend's bitmap→hash fallback.
			lo += 0x7F8
		}
		r.IDs = policy.Span(lo, lo+span)
		if b3&0x40 != 0 {
			// Second disjoint range on the same rule.
			r.IDs = append(r.IDs, policy.IDRange{Lo: lo + span + 2, Hi: lo + span + 4})
		}
		set.Rules = append(set.Rules, r)
	}
	return set, policy.CompileOptions{
		Subjects: append([]string(nil), genSubjects...),
		Modes:    append([]policy.Mode(nil), genModes...),
	}
}
