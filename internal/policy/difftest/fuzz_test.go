package difftest

import "testing"

// FuzzBackendEquivalence is the coverage-guided arm of the differential
// harness: any byte string decodes (totally) into a policy set, and every
// registered backend must produce byte-identical decisions — against the
// specification and therefore against each other — over the full probe
// matrix. The uniform-failure contract is checked first: a policy rejected
// by one backend must be rejected by all.
//
// Seed corpus lives under testdata/fuzz/FuzzBackendEquivalence; CI runs a
// short smoke (-fuzztime 10s) on every push.
func FuzzBackendEquivalence(f *testing.F) {
	// Empty policy: pure default-deny.
	f.Add([]byte(""))
	// Wildcard allow-readwrite 0x00..0x1F, then ecu deny-read 0x10 in normal
	// mode: deny-overrides inside an allowed range.
	f.Add([]byte("\x05\x04\x00\x1f\x00\x09\x10\x00"))
	// Extended-identifier rule with a second disjoint range: closure spill
	// list and bitmap fallback paths.
	f.Add([]byte("\x01\x00\x08\xc4"))
	// Unreachable rules: unknown subject, then foreign-mode-only wildcard.
	f.Add([]byte("\x04\x00\x20\x05\x05\x43\x20\x05"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, opts := GenPolicy(data)
		if err := set.Validate(); err != nil {
			t.Fatalf("GenPolicy produced invalid set: %v\npolicy:\n%s", err, set)
		}
		failed, err := CheckCompileError(set, opts)
		if err != nil {
			t.Fatal(err)
		}
		if failed {
			return
		}
		if err := Check(set, opts); err != nil {
			t.Fatal(err)
		}
	})
}
