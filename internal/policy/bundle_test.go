package policy

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// testKeys returns a deterministic ed25519 key pair for tests.
func testKeys(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return priv.Public().(ed25519.PublicKey), priv
}

func policySrc(version int) string {
	return fmt.Sprintf(`policy "car" version %d {
  default deny
  allow read 0x100 at ecu
  allow write 0x100 at sensors
}`, version)
}

func TestSignVerifyRoundTrip(t *testing.T) {
	pub, priv := testKeys(t)
	b, err := Sign(policySrc(1), priv)
	if err != nil {
		t.Fatal(err)
	}
	set, err := b.Verify(pub)
	if err != nil {
		t.Fatal(err)
	}
	if set.Name != "car" || set.Version != 1 || len(set.Rules) != 2 {
		t.Errorf("verified set wrong: %s/%d with %d rules", set.Name, set.Version, len(set.Rules))
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	pub, priv := testKeys(t)
	b, err := Sign(policySrc(1), priv)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Bundle)
	}{
		{"source edited", func(b *Bundle) { b.Source += "\n# malicious" }},
		{"version bumped", func(b *Bundle) { b.Version = 99 }},
		{"name changed", func(b *Bundle) { b.Name = "evil" }},
		{"signature flipped", func(b *Bundle) { b.Signature[0] ^= 1 }},
		{"signature truncated", func(b *Bundle) { b.Signature = b.Signature[:10] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cp := *b
			cp.Signature = append([]byte(nil), b.Signature...)
			tt.mutate(&cp)
			if _, err := cp.Verify(pub); err == nil {
				t.Error("tampered bundle verified")
			}
		})
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	_, priv := testKeys(t)
	b, err := Sign(policySrc(1), priv)
	if err != nil {
		t.Fatal(err)
	}
	otherPub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(otherPub); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong-key Verify = %v, want ErrBadSignature", err)
	}
}

func TestSignRejectsBadSource(t *testing.T) {
	_, priv := testKeys(t)
	if _, err := Sign("not a policy", priv); err == nil {
		t.Error("signed unparseable source")
	}
}

func TestBundleEncodeDecode(t *testing.T) {
	pub, priv := testKeys(t)
	b, err := Sign(policySrc(2), priv)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Verify(pub); err != nil {
		t.Errorf("decoded bundle failed verification: %v", err)
	}
	if _, err := DecodeBundle([]byte("{garbage")); err == nil {
		t.Error("decoded garbage")
	}
}

func storeOpts() CompileOptions {
	return CompileOptions{Subjects: []string{"ecu", "sensors"}, Modes: []Mode{"Normal"}}
}

func TestStoreApplyAndHotSwap(t *testing.T) {
	pub, priv := testKeys(t)
	store := NewStore(pub, storeOpts())
	if store.Current() != nil || store.CurrentSet() != nil {
		t.Fatal("fresh store should have no policy")
	}
	var notified []uint64
	store.Subscribe(func(c *Compiled) { notified = append(notified, c.Version) })

	b1, _ := Sign(policySrc(1), priv)
	c1, err := store.Apply(b1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Version != 1 || store.Current().Version != 1 {
		t.Errorf("installed version %d", c1.Version)
	}

	b2, _ := Sign(policySrc(2), priv)
	if _, err := store.Apply(b2); err != nil {
		t.Fatal(err)
	}
	if store.Current().Version != 2 {
		t.Error("hot swap did not install v2")
	}
	if len(notified) != 2 || notified[0] != 1 || notified[1] != 2 {
		t.Errorf("listener notifications = %v", notified)
	}
	applied, rejected := store.Stats()
	if applied != 2 || rejected != 0 {
		t.Errorf("stats = %d/%d", applied, rejected)
	}
}

func TestStoreRejectsStaleAndReplay(t *testing.T) {
	pub, priv := testKeys(t)
	store := NewStore(pub, storeOpts())
	b2, _ := Sign(policySrc(2), priv)
	if _, err := store.Apply(b2); err != nil {
		t.Fatal(err)
	}
	// Replay of the same version.
	if _, err := store.Apply(b2); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("replay accepted: %v", err)
	}
	// Downgrade.
	b1, _ := Sign(policySrc(1), priv)
	if _, err := store.Apply(b1); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("downgrade accepted: %v", err)
	}
	if store.Current().Version != 2 {
		t.Error("rejected bundle changed installed policy")
	}
	_, rejected := store.Stats()
	if rejected != 2 {
		t.Errorf("rejected = %d, want 2", rejected)
	}
}

func TestStoreRejectsNameChange(t *testing.T) {
	pub, priv := testKeys(t)
	store := NewStore(pub, storeOpts())
	b1, _ := Sign(policySrc(1), priv)
	if _, err := store.Apply(b1); err != nil {
		t.Fatal(err)
	}
	other, _ := Sign(`policy "different" version 5 { allow read 1 at ecu }`, priv)
	if _, err := store.Apply(other); !errors.Is(err, ErrNameMismatch) {
		t.Errorf("name change accepted: %v", err)
	}
}

func TestStoreRejectsUnsigned(t *testing.T) {
	pub, _ := testKeys(t)
	store := NewStore(pub, storeOpts())
	_, evil := testKeys(t) // same key; craft a bundle then break signature
	b, _ := Sign(policySrc(1), evil)
	b.Signature[5] ^= 0xFF
	if _, err := store.Apply(b); err == nil {
		t.Error("store accepted broken signature")
	}
	if store.Current() != nil {
		t.Error("rejected bundle installed")
	}
}

func TestStoreConcurrentApply(t *testing.T) {
	pub, priv := testKeys(t)
	store := NewStore(pub, storeOpts())
	const n = 20
	bundles := make([]*Bundle, n)
	for i := range bundles {
		b, err := Sign(policySrc(i+1), priv)
		if err != nil {
			t.Fatal(err)
		}
		bundles[i] = b
	}
	var wg sync.WaitGroup
	for _, b := range bundles {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = store.Apply(b) // stale rejections are expected
		}()
	}
	wg.Wait()
	cur := store.Current()
	if cur == nil {
		t.Fatal("no policy installed")
	}
	// Whatever won, the installed version must be consistent and the
	// highest accepted version must not exceed n.
	if cur.Version == 0 || cur.Version > n {
		t.Errorf("installed version %d out of range", cur.Version)
	}
	if store.CurrentSet().Version != cur.Version {
		t.Error("set/compiled version skew")
	}
}

// TestStoreListenerDeliveryOrder races many successful applies against a
// subscriber and asserts the monotone-version delivery guarantee: because
// Apply takes the delivery lock while still holding the store lock, the
// apply that installed v(k) always notifies before the apply that installed
// v(k+1) — a subscriber's last-observed version can never regress.
func TestStoreListenerDeliveryOrder(t *testing.T) {
	pub, priv := testKeys(t)
	store := NewStore(pub, storeOpts())
	var (
		mu   sync.Mutex
		seen []uint64
	)
	store.Subscribe(func(c *Compiled) {
		mu.Lock()
		seen = append(seen, c.Version)
		mu.Unlock()
	})
	const n = 50
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		b, err := Sign(policySrc(i), priv)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = store.Apply(b) // stale rejections are expected
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no listener deliveries")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("listener observed version regression: %v", seen)
		}
	}
	applied, _ := store.Stats()
	if uint64(len(seen)) != applied {
		t.Errorf("deliveries %d != applies %d", len(seen), applied)
	}
}
