package policy

import (
	"fmt"
	"sort"
)

// TableLimit caps the number of identifiers expanded into one hardware
// table, mirroring the bounded CAM capacity of a real policy engine.
const TableLimit = 4096

// MaxStandardID is the largest 11-bit CAN identifier the bitmap lookup
// covers directly (canbus.MaxStandardID, restated to keep policy free of a
// canbus dependency).
const MaxStandardID = 0x7FF

// LookupKind selects the data structure backing a compiled identifier
// table. The choice is an ablation axis in the benchmarks: a real HPE is a
// CAM (constant time), software implementations pick among these.
type LookupKind uint8

// Lookup kinds.
const (
	// LookupHash uses a hash set (Go map).
	LookupHash LookupKind = iota + 1
	// LookupSorted uses a sorted slice with binary search.
	LookupSorted
	// LookupLinear uses an unsorted slice with linear scan.
	LookupLinear
	// LookupBitmap uses a 2048-bit direct-mapped bitmap over the standard
	// 11-bit identifier space — the closest software analogue of the CAM a
	// real policy engine ships, and the default when every identifier fits.
	// Tables containing extended identifiers fall back to LookupHash.
	LookupBitmap
)

// String returns the lookup kind name.
func (k LookupKind) String() string {
	switch k {
	case LookupHash:
		return "hash"
	case LookupSorted:
		return "sorted"
	case LookupLinear:
		return "linear"
	case LookupBitmap:
		return "bitmap"
	default:
		return "invalid"
	}
}

// IDLookup answers membership queries over a fixed identifier set.
type IDLookup interface {
	// Contains reports whether id is in the set.
	Contains(id uint32) bool
	// Len returns the number of identifiers stored.
	Len() int
	// IDs returns the stored identifiers in ascending order.
	IDs() []uint32
}

type hashLookup map[uint32]struct{}

func (h hashLookup) Contains(id uint32) bool { _, ok := h[id]; return ok }
func (h hashLookup) Len() int                { return len(h) }
func (h hashLookup) IDs() []uint32 {
	out := make([]uint32, 0, len(h))
	for id := range h {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type sortedLookup []uint32

func (s sortedLookup) Contains(id uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}
func (s sortedLookup) Len() int      { return len(s) }
func (s sortedLookup) IDs() []uint32 { return append([]uint32(nil), s...) }

// bitmapLookup covers the standard 11-bit identifier space with one bit per
// identifier: a Contains is two shifts and a mask, no hashing.
type bitmapLookup struct {
	bits [(MaxStandardID + 1) / 64]uint64
	n    int
}

func (b *bitmapLookup) Contains(id uint32) bool {
	if id > MaxStandardID {
		return false
	}
	return b.bits[id>>6]&(1<<(id&63)) != 0
}
func (b *bitmapLookup) Len() int { return b.n }
func (b *bitmapLookup) IDs() []uint32 {
	out := make([]uint32, 0, b.n)
	for id := uint32(0); id <= MaxStandardID; id++ {
		if b.bits[id>>6]&(1<<(id&63)) != 0 {
			out = append(out, id)
		}
	}
	return out
}

type linearLookup []uint32

func (l linearLookup) Contains(id uint32) bool {
	for _, v := range l {
		if v == id {
			return true
		}
	}
	return false
}
func (l linearLookup) Len() int { return len(l) }
func (l linearLookup) IDs() []uint32 {
	out := append([]uint32(nil), l...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewIDLookup builds a lookup of the requested kind over ids.
func NewIDLookup(kind LookupKind, ids []uint32) (IDLookup, error) {
	switch kind {
	case LookupBitmap:
		for _, id := range ids {
			if id > MaxStandardID {
				// Extended identifiers exceed the direct-mapped range.
				return NewIDLookup(LookupHash, ids)
			}
		}
		b := &bitmapLookup{}
		for _, id := range ids {
			if b.bits[id>>6]&(1<<(id&63)) == 0 {
				b.bits[id>>6] |= 1 << (id & 63)
				b.n++
			}
		}
		return b, nil
	case LookupHash:
		h := make(hashLookup, len(ids))
		for _, id := range ids {
			h[id] = struct{}{}
		}
		return h, nil
	case LookupSorted:
		s := append(sortedLookup(nil), ids...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s, nil
	case LookupLinear:
		return append(linearLookup(nil), ids...), nil
	default:
		return nil, fmt.Errorf("policy: unknown lookup kind %d", kind)
	}
}

// ModeTable is the pair of approved-identifier lists of Fig. 4 for one
// operating mode: the approved reading list and the approved writing list.
type ModeTable struct {
	// Reads is the approved reading list.
	Reads IDLookup
	// Writes is the approved writing list.
	Writes IDLookup
}

// NodeTable holds a node's compiled tables for every operating mode.
type NodeTable struct {
	// Subject is the node the table belongs to.
	Subject string
	// PerMode maps each operating mode to its approved lists.
	PerMode map[Mode]ModeTable
}

// Table reports the mode table for m, falling back to an empty (deny-all)
// table when the mode is unknown.
func (t *NodeTable) Table(m Mode) ModeTable {
	if mt, ok := t.PerMode[m]; ok {
		return mt
	}
	return ModeTable{Reads: sortedLookup(nil), Writes: sortedLookup(nil)}
}

// Compiled is the output of compiling a Set for a concrete device: one
// NodeTable per subject, for each declared mode. It is immutable after
// compilation; the HPE swaps whole Compiled values on policy update.
type Compiled struct {
	// Name and Version are carried over from the source Set.
	Name    string
	Version uint64
	// Modes lists the operating modes the tables cover.
	Modes []Mode
	nodes map[string]*NodeTable
}

// Node returns the compiled table for a subject. Unknown subjects get a
// deny-all table, preserving closed-world semantics.
func (c *Compiled) Node(subject string) *NodeTable {
	if t, ok := c.nodes[subject]; ok {
		return t
	}
	return &NodeTable{Subject: subject, PerMode: map[Mode]ModeTable{}}
}

// Subjects returns the sorted subjects with compiled tables.
func (c *Compiled) Subjects() []string {
	out := make([]string, 0, len(c.nodes))
	for s := range c.nodes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CompileOptions parameterises compilation.
type CompileOptions struct {
	// Subjects lists every node of the device, so wildcard rules expand and
	// every node receives a table. Required.
	Subjects []string
	// Modes lists every operating mode of the device. Required.
	Modes []Mode
	// Lookup selects the table data structure; LookupBitmap if zero
	// (falling back per table to LookupHash for extended identifiers).
	Lookup LookupKind
	// TableLimit overrides the per-table identifier cap; TableLimit if zero.
	TableLimit int
	// Backend names the enforcement backend to compile for ("table",
	// "expr", "closure"); empty selects the default. Compile itself always
	// produces the interpreted table form — the field is consumed by
	// ir.Build, which dispatches to the registered backend (policy cannot
	// import ir without a cycle).
	Backend string
}

// Compile expands a rule set into per-node, per-mode approved reading and
// writing lists — the exact artifact loaded into the Fig. 4 policy engine.
//
// Expansion evaluates Decide for every identifier mentioned by any rule, so
// deny-overrides and wildcard subjects behave identically in the compiled
// tables and in direct Set evaluation (a property the tests assert).
func Compile(set *Set, opts CompileOptions) (*Compiled, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Subjects) == 0 {
		return nil, fmt.Errorf("policy: compile requires the device's subject list")
	}
	if len(opts.Modes) == 0 {
		return nil, fmt.Errorf("policy: compile requires the device's mode list")
	}
	kind := opts.Lookup
	if kind == 0 {
		kind = LookupBitmap
	}
	limit := opts.TableLimit
	if limit == 0 {
		limit = TableLimit
	}

	// Collect the universe of identifiers any rule mentions.
	var universe IDSet
	for _, r := range set.Rules {
		universe = append(universe, r.IDs...)
	}
	ids, err := universe.Enumerate(limit)
	if err != nil {
		return nil, err
	}

	out := &Compiled{
		Name:    set.Name,
		Version: set.Version,
		Modes:   append([]Mode(nil), opts.Modes...),
		nodes:   make(map[string]*NodeTable, len(opts.Subjects)),
	}
	for _, subj := range opts.Subjects {
		nt := &NodeTable{Subject: subj, PerMode: make(map[Mode]ModeTable, len(opts.Modes))}
		for _, mode := range opts.Modes {
			var reads, writes []uint32
			for _, id := range ids {
				if set.Decide(subj, mode, ActRead, id) == Allow {
					reads = append(reads, id)
				}
				if set.Decide(subj, mode, ActWrite, id) == Allow {
					writes = append(writes, id)
				}
			}
			rl, err := NewIDLookup(kind, reads)
			if err != nil {
				return nil, err
			}
			wl, err := NewIDLookup(kind, writes)
			if err != nil {
				return nil, err
			}
			nt.PerMode[mode] = ModeTable{Reads: rl, Writes: wl}
		}
		out.nodes[subj] = nt
	}
	return out, nil
}
