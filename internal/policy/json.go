package policy

import (
	"encoding/json"
	"fmt"
)

// JSON is the machine-facing interchange format for policy sets, used where
// tooling (fleet dashboards, audit pipelines) wants structured data rather
// than the human-facing DSL. Both formats describe the same model and
// convert losslessly; the signed distribution unit remains the DSL inside
// a Bundle.

// jsonRule mirrors Rule with wire-friendly field types.
type jsonRule struct {
	Name    string      `json:"name,omitempty"`
	Subject string      `json:"subject"`
	Effect  string      `json:"effect"`
	Action  string      `json:"action"`
	IDs     [][2]uint32 `json:"ids"`
	Modes   []string    `json:"modes,omitempty"`
}

// jsonSet mirrors Set.
type jsonSet struct {
	Name    string     `json:"name"`
	Version uint64     `json:"version"`
	Default string     `json:"default"` // always "deny"; serialized for self-description
	Rules   []jsonRule `json:"rules"`
}

// MarshalJSON implements json.Marshaler for Set.
func (s *Set) MarshalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := jsonSet{Name: s.Name, Version: s.Version, Default: "deny"}
	for _, r := range s.Rules {
		jr := jsonRule{
			Name:    r.Name,
			Subject: r.Subject,
			Effect:  r.Effect.String(),
			Action:  r.Action.String(),
			Modes:   r.Modes.Names(),
		}
		for _, rng := range r.IDs {
			jr.IDs = append(jr.IDs, [2]uint32{rng.Lo, rng.Hi})
		}
		out.Rules = append(out.Rules, jr)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Set.
func (s *Set) UnmarshalJSON(data []byte) error {
	var in jsonSet
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("policy: bad json set: %w", err)
	}
	if in.Default != "" && in.Default != "deny" {
		return fmt.Errorf("policy: unsupported default %q: the model is closed-world", in.Default)
	}
	out := Set{Name: in.Name, Version: in.Version}
	for i, jr := range in.Rules {
		r := Rule{Name: jr.Name, Subject: jr.Subject}
		switch jr.Effect {
		case "allow":
			r.Effect = Allow
		case "deny":
			r.Effect = Deny
		default:
			return fmt.Errorf("policy: rule %d: unknown effect %q", i, jr.Effect)
		}
		act, err := ParseAction(jr.Action)
		if err != nil {
			return fmt.Errorf("policy: rule %d: %w", i, err)
		}
		r.Action = act
		for _, pair := range jr.IDs {
			r.IDs = append(r.IDs, IDRange{Lo: pair[0], Hi: pair[1]})
		}
		if len(jr.Modes) > 0 {
			r.Modes = ModeSet{}
			for _, m := range jr.Modes {
				r.Modes = r.Modes.Add(Mode(m))
			}
		}
		out.Rules = append(out.Rules, r)
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}
