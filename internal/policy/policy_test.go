package policy

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestActionStringAndParse(t *testing.T) {
	tests := []struct {
		act  Action
		want string
	}{
		{ActRead, "R"},
		{ActWrite, "W"},
		{ActReadWrite, "RW"},
	}
	for _, tt := range tests {
		if got := tt.act.String(); got != tt.want {
			t.Errorf("String(%v) = %q", tt.act, got)
		}
		parsed, err := ParseAction(tt.want)
		if err != nil || parsed != tt.act {
			t.Errorf("ParseAction(%q) = %v, %v", tt.want, parsed, err)
		}
	}
	if _, err := ParseAction("X"); err == nil {
		t.Error("ParseAction accepted garbage")
	}
	if !ActReadWrite.Has(ActRead) || !ActReadWrite.Has(ActWrite) {
		t.Error("ActReadWrite must include both directions")
	}
	if ActRead.Has(ActWrite) {
		t.Error("ActRead must not include write")
	}
}

func TestModeSet(t *testing.T) {
	empty := ModeSet{}
	if !empty.Contains("anything") {
		t.Error("empty mode set must apply in all modes")
	}
	s := NewModeSet("Normal", "FailSafe")
	if !s.Contains("Normal") || s.Contains("RemoteDiag") {
		t.Error("Contains wrong")
	}
	if got := s.String(); got != "FailSafe,Normal" {
		t.Errorf("String = %q (sorted)", got)
	}
	c := s.Clone()
	c.Add("RemoteDiag")
	if s.Contains("RemoteDiag") {
		t.Error("Clone shares storage")
	}
	var nilSet ModeSet
	if nilSet.Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
	got := nilSet.Add("X")
	if !got.Contains("X") {
		t.Error("Add on nil set must allocate")
	}
}

func TestIDSetNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   IDSet
		want string
	}{
		{"merge overlap", IDSet{{1, 5}, {3, 8}}, "0x1..0x8"},
		{"merge adjacent", IDSet{{1, 3}, {4, 6}}, "0x1..0x6"},
		{"keep gap", IDSet{{1, 2}, {5, 6}}, "0x1..0x2,0x5..0x6"},
		{"unsorted input", IDSet{{10, 12}, {1, 2}}, "0x1..0x2,0xA..0xC"},
		{"single", SingleID(7), "0x7"},
		{"contained", IDSet{{1, 10}, {3, 4}}, "0x1..0xA"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n, err := tt.in.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			if got := n.String(); got != tt.want {
				t.Errorf("Normalize = %q, want %q", got, tt.want)
			}
		})
	}
	if _, err := (IDSet{{5, 1}}).Normalize(); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestIDSetNormalizePreservesMembershipProperty(t *testing.T) {
	prop := func(ranges [][2]uint16, probe uint16) bool {
		var s IDSet
		for _, r := range ranges {
			lo, hi := uint32(r[0]), uint32(r[1])
			if lo > hi {
				lo, hi = hi, lo
			}
			s = append(s, IDRange{Lo: lo, Hi: hi})
		}
		n, err := s.Normalize()
		if err != nil {
			return false
		}
		return s.Contains(uint32(probe)) == n.Contains(uint32(probe))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIDSetEnumerate(t *testing.T) {
	s := IDSet{{1, 3}, {7, 7}}
	ids, err := s.Enumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 3, 7}
	if len(ids) != len(want) {
		t.Fatalf("Enumerate = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Enumerate = %v, want %v", ids, want)
		}
	}
	if _, err := (Span(0, 100)).Enumerate(10); err == nil {
		t.Error("Enumerate did not enforce its cap")
	}
}

func TestRuleValidate(t *testing.T) {
	valid := Rule{Subject: "a", Effect: Allow, Action: ActRead, IDs: SingleID(1)}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		rule Rule
		want error
	}{
		{"no subject", Rule{Effect: Allow, Action: ActRead, IDs: SingleID(1)}, ErrNoSubject},
		{"bad effect", Rule{Subject: "a", Action: ActRead, IDs: SingleID(1)}, ErrBadEffect},
		{"bad action", Rule{Subject: "a", Effect: Allow, IDs: SingleID(1)}, ErrBadAction},
		{"no ids", Rule{Subject: "a", Effect: Allow, Action: ActRead}, ErrNoIDs},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := tt.rule
			if err := r.Validate(); !errors.Is(err, tt.want) {
				t.Errorf("Validate = %v, want %v", err, tt.want)
			}
		})
	}
}

func testSet() *Set {
	return &Set{
		Name:    "test",
		Version: 1,
		Rules: []Rule{
			{Name: "r1", Subject: "ecu", Effect: Allow, Action: ActRead, IDs: Span(0x100, 0x10F)},
			{Name: "r2", Subject: "ecu", Effect: Deny, Action: ActRead, IDs: SingleID(0x105)},
			{Name: "r3", Subject: "*", Effect: Allow, Action: ActWrite, IDs: SingleID(0x7DF),
				Modes: NewModeSet("Diag")},
			{Name: "r4", Subject: "sensors", Effect: Allow, Action: ActReadWrite, IDs: SingleID(0x200)},
		},
	}
}

func TestSetDecide(t *testing.T) {
	s := testSet()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		subject string
		mode    Mode
		act     Action
		id      uint32
		want    Effect
	}{
		{"allowed read", "ecu", "Normal", ActRead, 0x100, Allow},
		{"deny overrides allow", "ecu", "Normal", ActRead, 0x105, Deny},
		{"default deny unknown id", "ecu", "Normal", ActRead, 0x500, Deny},
		{"default deny wrong direction", "ecu", "Normal", ActWrite, 0x100, Deny},
		{"default deny unknown subject", "ghost", "Normal", ActRead, 0x100, Deny},
		{"wildcard in right mode", "anyone", "Diag", ActWrite, 0x7DF, Allow},
		{"wildcard in wrong mode", "anyone", "Normal", ActWrite, 0x7DF, Deny},
		{"readwrite covers read", "sensors", "Normal", ActRead, 0x200, Allow},
		{"readwrite covers write", "sensors", "Normal", ActWrite, 0x200, Allow},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Decide(tt.subject, tt.mode, tt.act, tt.id); got != tt.want {
				t.Errorf("Decide = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSetDecideOrderIndependence(t *testing.T) {
	s := testSet()
	// Reverse the rules: deny-overrides must make order irrelevant.
	r := testSet()
	for i, j := 0, len(r.Rules)-1; i < j; i, j = i+1, j-1 {
		r.Rules[i], r.Rules[j] = r.Rules[j], r.Rules[i]
	}
	for id := uint32(0x100); id <= 0x110; id++ {
		for _, act := range []Action{ActRead, ActWrite} {
			if s.Decide("ecu", "Normal", act, id) != r.Decide("ecu", "Normal", act, id) {
				t.Fatalf("rule order changed semantics at id 0x%X", id)
			}
		}
	}
}

func TestSetSubjectsAndModes(t *testing.T) {
	s := testSet()
	subs := s.Subjects()
	if len(subs) != 2 || subs[0] != "ecu" || subs[1] != "sensors" {
		t.Errorf("Subjects = %v", subs)
	}
	modes := s.Modes()
	if len(modes) != 1 || modes[0] != "Diag" {
		t.Errorf("Modes = %v", modes)
	}
}

func TestSetStringParseRoundTrip(t *testing.T) {
	s := testSet()
	src := s.String()
	parsed, err := Parse(src)
	if err != nil {
		t.Fatalf("parsing rendered set: %v\n%s", err, src)
	}
	if parsed.Name != s.Name || parsed.Version != s.Version {
		t.Errorf("header mismatch: %s/%d", parsed.Name, parsed.Version)
	}
	if len(parsed.Rules) != len(s.Rules) {
		t.Fatalf("rule count %d, want %d", len(parsed.Rules), len(s.Rules))
	}
	// Semantics must match on a probe grid.
	for _, subj := range []string{"ecu", "sensors", "other"} {
		for _, mode := range []Mode{"Normal", "Diag"} {
			for id := uint32(0x0F0); id <= 0x210; id += 3 {
				for _, act := range []Action{ActRead, ActWrite} {
					if s.Decide(subj, mode, act, id) != parsed.Decide(subj, mode, act, id) {
						t.Fatalf("round-trip semantics differ at %s/%s/%v/0x%X", subj, mode, act, id)
					}
				}
			}
		}
	}
}
