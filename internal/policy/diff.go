package policy

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements policy diffing, the audit companion of the update
// mechanism: before distributing a new version the OEM (and after receiving
// it, an auditor) can see exactly which accesses a bundle grants or
// revokes. The diff is computed over *semantics* (per subject, mode,
// direction and identifier), not rule text, so rewriting rules without
// changing behaviour diffs as empty.

// Access identifies one grantable capability.
type Access struct {
	// Subject is the node holding the capability.
	Subject string
	// Mode is the operating mode it applies in.
	Mode Mode
	// Action is the direction (ActRead or ActWrite).
	Action Action
	// ID is the message identifier.
	ID uint32
}

// String renders "subject mode R 0xID".
func (a Access) String() string {
	return fmt.Sprintf("%s %s %s 0x%03X", a.Subject, a.Mode, a.Action, a.ID)
}

// Diff is the semantic difference between two policy sets.
type Diff struct {
	// Granted lists accesses allowed by the new set but not the old.
	Granted []Access
	// Revoked lists accesses allowed by the old set but not the new.
	Revoked []Access
}

// Empty reports whether the two sets are semantically identical over the
// compared universe.
func (d Diff) Empty() bool { return len(d.Granted) == 0 && len(d.Revoked) == 0 }

// String renders the diff in +/- notation, sorted.
func (d Diff) String() string {
	if d.Empty() {
		return "(no semantic changes)\n"
	}
	var b strings.Builder
	for _, a := range d.Revoked {
		fmt.Fprintf(&b, "- %s\n", a)
	}
	for _, a := range d.Granted {
		fmt.Fprintf(&b, "+ %s\n", a)
	}
	return b.String()
}

// DiffOptions bound the comparison universe.
type DiffOptions struct {
	// Subjects to compare; union of both sets' subjects if empty.
	Subjects []string
	// Modes to compare; union of both sets' modes plus the universal mode
	// probe if empty.
	Modes []Mode
	// Limit caps the identifier universe (TableLimit if zero).
	Limit int
}

// DiffSets computes the semantic difference between old and new over every
// identifier either set mentions.
func DiffSets(oldSet, newSet *Set, opts DiffOptions) (Diff, error) {
	if err := oldSet.Validate(); err != nil {
		return Diff{}, fmt.Errorf("policy: diff old set: %w", err)
	}
	if err := newSet.Validate(); err != nil {
		return Diff{}, fmt.Errorf("policy: diff new set: %w", err)
	}
	subjects := opts.Subjects
	if len(subjects) == 0 {
		seen := map[string]bool{}
		for _, s := range append(oldSet.Subjects(), newSet.Subjects()...) {
			seen[s] = true
		}
		for s := range seen {
			subjects = append(subjects, s)
		}
		sort.Strings(subjects)
	}
	modes := opts.Modes
	if len(modes) == 0 {
		seen := map[Mode]bool{}
		for _, m := range append(oldSet.Modes(), newSet.Modes()...) {
			seen[m] = true
		}
		for m := range seen {
			modes = append(modes, m)
		}
		sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
		if len(modes) == 0 {
			modes = []Mode{"default"}
		}
	}
	limit := opts.Limit
	if limit == 0 {
		limit = TableLimit
	}
	var universe IDSet
	for _, r := range oldSet.Rules {
		universe = append(universe, r.IDs...)
	}
	for _, r := range newSet.Rules {
		universe = append(universe, r.IDs...)
	}
	ids, err := universe.Enumerate(limit)
	if err != nil {
		return Diff{}, err
	}

	var d Diff
	for _, subj := range subjects {
		for _, mode := range modes {
			for _, act := range []Action{ActRead, ActWrite} {
				for _, id := range ids {
					was := oldSet.Decide(subj, mode, act, id) == Allow
					is := newSet.Decide(subj, mode, act, id) == Allow
					switch {
					case is && !was:
						d.Granted = append(d.Granted, Access{subj, mode, act, id})
					case was && !is:
						d.Revoked = append(d.Revoked, Access{subj, mode, act, id})
					}
				}
			}
		}
	}
	return d, nil
}
