package policy

import (
	"testing"
	"testing/quick"
)

func compileOpts(kind LookupKind) CompileOptions {
	return CompileOptions{
		Subjects: []string{"ecu", "sensors", "other"},
		Modes:    []Mode{"Normal", "Diag"},
		Lookup:   kind,
	}
}

func TestCompileMatchesDecide(t *testing.T) {
	// The compiled tables must agree with direct Set evaluation everywhere.
	s := testSet()
	for _, kind := range []LookupKind{LookupHash, LookupSorted, LookupLinear} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, err := Compile(s, compileOpts(kind))
			if err != nil {
				t.Fatal(err)
			}
			for _, subj := range compileOpts(kind).Subjects {
				nt := c.Node(subj)
				for _, mode := range []Mode{"Normal", "Diag"} {
					mt := nt.Table(mode)
					for id := uint32(0x0F0); id <= 0x7E0; id += 7 {
						wantR := s.Decide(subj, mode, ActRead, id) == Allow
						wantW := s.Decide(subj, mode, ActWrite, id) == Allow
						if got := mt.Reads.Contains(id); got != wantR {
							t.Fatalf("%s/%s read 0x%X: table=%v decide=%v", subj, mode, id, got, wantR)
						}
						if got := mt.Writes.Contains(id); got != wantW {
							t.Fatalf("%s/%s write 0x%X: table=%v decide=%v", subj, mode, id, got, wantW)
						}
					}
				}
			}
		})
	}
}

func TestCompileUnknownSubjectAndModeDenyAll(t *testing.T) {
	c, err := Compile(testSet(), compileOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	ghost := c.Node("ghost")
	mt := ghost.Table("Normal")
	if mt.Reads.Len() != 0 || mt.Writes.Len() != 0 {
		t.Error("unknown subject should have deny-all tables")
	}
	known := c.Node("ecu")
	um := known.Table("UnknownMode")
	if um.Reads != nil && um.Reads.Len() != 0 {
		t.Error("unknown mode should fall back to deny-all")
	}
}

func TestCompileRequiresSubjectsAndModes(t *testing.T) {
	if _, err := Compile(testSet(), CompileOptions{Modes: []Mode{"m"}}); err == nil {
		t.Error("missing subjects accepted")
	}
	if _, err := Compile(testSet(), CompileOptions{Subjects: []string{"s"}}); err == nil {
		t.Error("missing modes accepted")
	}
}

func TestCompileTableLimit(t *testing.T) {
	s := &Set{Name: "big", Version: 1, Rules: []Rule{
		{Subject: "x", Effect: Allow, Action: ActRead, IDs: Span(0, 99)},
	}}
	opts := CompileOptions{Subjects: []string{"x"}, Modes: []Mode{"m"}, TableLimit: 50}
	if _, err := Compile(s, opts); err == nil {
		t.Error("table limit not enforced")
	}
	opts.TableLimit = 200
	if _, err := Compile(s, opts); err != nil {
		t.Errorf("compile under the limit failed: %v", err)
	}
}

func TestCompiledMetadata(t *testing.T) {
	c, err := Compile(testSet(), compileOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "test" || c.Version != 1 {
		t.Errorf("metadata = %s/%d", c.Name, c.Version)
	}
	subs := c.Subjects()
	if len(subs) != 3 {
		t.Errorf("Subjects = %v", subs)
	}
}

func TestLookupKindsAgreeProperty(t *testing.T) {
	prop := func(rawIDs []uint16, probe uint16) bool {
		ids := make([]uint32, len(rawIDs))
		for i, v := range rawIDs {
			ids[i] = uint32(v)
		}
		h, err1 := NewIDLookup(LookupHash, ids)
		s, err2 := NewIDLookup(LookupSorted, ids)
		l, err3 := NewIDLookup(LookupLinear, ids)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		p := uint32(probe)
		return h.Contains(p) == s.Contains(p) && s.Contains(p) == l.Contains(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLookupIDsSorted(t *testing.T) {
	ids := []uint32{9, 3, 7, 3, 1}
	for _, kind := range []LookupKind{LookupHash, LookupSorted, LookupLinear} {
		l, err := NewIDLookup(kind, ids)
		if err != nil {
			t.Fatal(err)
		}
		got := l.IDs()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Errorf("%v IDs not sorted: %v", kind, got)
			}
		}
	}
	if _, err := NewIDLookup(LookupKind(99), ids); err == nil {
		t.Error("invalid lookup kind accepted")
	}
}
