package policy

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// This file implements the post-deployment policy update mechanism of
// §V-A.2: "the OEM can distribute a policy definition update ... which would
// be significantly faster and easier to implement than a software redesign
// or product recall." A Bundle is the distributable artifact: the policy
// DSL source plus an ed25519 signature from the OEM. A Store is the
// device-resident endpoint that verifies, compiles and atomically installs
// updates.

// Bundle is a signed, versioned policy distribution unit.
type Bundle struct {
	// Source is the policy DSL document.
	Source string `json:"source"`
	// Name and Version duplicate the parsed set's header so endpoints can
	// check monotonicity before parsing.
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// Signature is the OEM's ed25519 signature over the canonical payload.
	Signature []byte `json:"signature"`
}

// Bundle errors.
var (
	ErrBadSignature = errors.New("policy: bundle signature verification failed")
	ErrStaleVersion = errors.New("policy: bundle version is not newer than installed")
	ErrNameMismatch = errors.New("policy: bundle name does not match installed policy")
	ErrHeaderDrift  = errors.New("policy: bundle header disagrees with its source")
)

// canonicalPayload is the byte string that gets signed: the JSON encoding of
// the bundle with its signature field zeroed. encoding/json emits struct
// fields in declaration order, so the encoding is deterministic.
func (b Bundle) canonicalPayload() ([]byte, error) {
	b.Signature = nil
	return json.Marshal(b)
}

// Sign builds a signed bundle from DSL source using the OEM's private key.
// The source is parsed to populate and cross-check the header.
func Sign(source string, key ed25519.PrivateKey) (*Bundle, error) {
	set, err := Parse(source)
	if err != nil {
		return nil, fmt.Errorf("policy: signing unparseable source: %w", err)
	}
	b := &Bundle{Source: source, Name: set.Name, Version: set.Version}
	payload, err := b.canonicalPayload()
	if err != nil {
		return nil, err
	}
	b.Signature = ed25519.Sign(key, payload)
	return b, nil
}

// Verify checks the bundle's signature and header consistency, returning
// the parsed set on success.
func (b *Bundle) Verify(pub ed25519.PublicKey) (*Set, error) {
	payload, err := b.canonicalPayload()
	if err != nil {
		return nil, err
	}
	if !ed25519.Verify(pub, payload, b.Signature) {
		return nil, ErrBadSignature
	}
	set, err := Parse(b.Source)
	if err != nil {
		return nil, err
	}
	if set.Name != b.Name || set.Version != b.Version {
		return nil, fmt.Errorf("%w: header %s/%d, source %s/%d",
			ErrHeaderDrift, b.Name, b.Version, set.Name, set.Version)
	}
	return set, nil
}

// Encode serialises the bundle for distribution.
func (b *Bundle) Encode() ([]byte, error) { return json.Marshal(b) }

// DecodeBundle deserialises a distributed bundle.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("policy: bad bundle encoding: %w", err)
	}
	return &b, nil
}

// UpdateListener observes successful policy installations.
type UpdateListener func(installed *Compiled)

// Store is the device-resident policy endpoint: it verifies incoming
// bundles, enforces version monotonicity, compiles the new set and swaps it
// in atomically. Readers never observe a half-installed policy.
type Store struct {
	pub  ed25519.PublicKey
	opts CompileOptions

	mu        sync.RWMutex
	installed *Compiled
	set       *Set
	listeners []UpdateListener
	applied   uint64
	rejected  uint64

	// deliverMu sequences listener delivery in install order. Apply acquires
	// it while still holding mu (lock order mu → deliverMu, never reversed),
	// so two racing successful applies (v2, v3) cannot deliver callbacks out
	// of order: whoever installed first delivers first, and a subscriber's
	// last-observed version is monotone.
	deliverMu sync.Mutex
}

// NewStore creates a store trusting the given OEM public key and compiling
// with the given options (the device's subjects and modes).
func NewStore(pub ed25519.PublicKey, opts CompileOptions) *Store {
	return &Store{pub: pub, opts: opts}
}

// Subscribe registers a listener called after each successful installation.
func (s *Store) Subscribe(l UpdateListener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, l)
}

// Current returns the installed compiled policy, or nil before first install.
func (s *Store) Current() *Compiled {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.installed
}

// CurrentSet returns the installed source set, or nil before first install.
func (s *Store) CurrentSet() *Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.set
}

// Stats reports how many bundles were applied and rejected.
func (s *Store) Stats() (applied, rejected uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied, s.rejected
}

// Apply verifies and installs a bundle. On any failure the installed policy
// is untouched.
func (s *Store) Apply(b *Bundle) (*Compiled, error) {
	set, err := s.verify(b)
	if err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return nil, err
	}
	compiled, err := Compile(set, s.opts)
	if err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Lock()
	// Re-check monotonicity under the write lock: a concurrent Apply may
	// have won the race since verify.
	if s.set != nil && compiled.Version <= s.set.Version {
		s.rejected++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: have %d, got %d", ErrStaleVersion, s.set.Version, compiled.Version)
	}
	s.installed = compiled
	s.set = set
	s.applied++
	listeners := append([]UpdateListener(nil), s.listeners...)
	// Take the delivery lock before releasing mu: the apply that installed
	// v2 then holds the delivery turn before the apply installing v3 can
	// even commit, so subscribers observe versions in install order. mu is
	// released before the callbacks run, so listeners may read back into
	// the store (Current, CurrentSet, Stats) without deadlocking; a
	// listener must not call Apply from its own goroutine (delivery is
	// sequenced, so that would self-deadlock).
	s.deliverMu.Lock()
	s.mu.Unlock()
	for _, l := range listeners {
		l(compiled)
	}
	s.deliverMu.Unlock()
	return compiled, nil
}

func (s *Store) verify(b *Bundle) (*Set, error) {
	set, err := b.Verify(s.pub)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	cur := s.set
	s.mu.RUnlock()
	if cur != nil {
		if cur.Name != set.Name {
			return nil, fmt.Errorf("%w: have %q, got %q", ErrNameMismatch, cur.Name, set.Name)
		}
		if set.Version <= cur.Version {
			return nil, fmt.Errorf("%w: have %d, got %d", ErrStaleVersion, cur.Version, set.Version)
		}
	}
	return set, nil
}
