package policy

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	s := MustParse(sampleDSL)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.Version != s.Version || len(back.Rules) != len(s.Rules) {
		t.Fatalf("header/rules changed: %s/%d %d rules", back.Name, back.Version, len(back.Rules))
	}
	// Semantics preserved on a probe grid.
	for _, subj := range append(s.Subjects(), "ghost") {
		for _, mode := range append(s.Modes(), "ghost-mode") {
			for id := uint32(0x0F0); id <= 0x7E0; id += 5 {
				for _, act := range []Action{ActRead, ActWrite} {
					if s.Decide(subj, mode, act, id) != back.Decide(subj, mode, act, id) {
						t.Fatalf("JSON round trip changed semantics at %s/%s/%v/0x%X",
							subj, mode, act, id)
					}
				}
			}
		}
	}
}

func TestJSONSelfDescribes(t *testing.T) {
	s := MustParse(`policy "p" version 3 { allow read 0x10..0x12 at ecu in Normal as "r" }`)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, frag := range []string{`"default":"deny"`, `"version":3`, `"subject":"ecu"`,
		`"action":"R"`, `"effect":"allow"`, `"modes":["Normal"]`, `"name":"r"`} {
		if !strings.Contains(text, frag) {
			t.Errorf("JSON missing %q:\n%s", frag, text)
		}
	}
}

func TestJSONRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", `{{`},
		{"default allow", `{"name":"p","version":1,"default":"allow","rules":[]}`},
		{"bad effect", `{"name":"p","version":1,"rules":[{"subject":"x","effect":"permit","action":"R","ids":[[1,1]]}]}`},
		{"bad action", `{"name":"p","version":1,"rules":[{"subject":"x","effect":"allow","action":"X","ids":[[1,1]]}]}`},
		{"no ids", `{"name":"p","version":1,"rules":[{"subject":"x","effect":"allow","action":"R","ids":[]}]}`},
		{"inverted range", `{"name":"p","version":1,"rules":[{"subject":"x","effect":"allow","action":"R","ids":[[5,1]]}]}`},
		{"no name", `{"name":"","version":1,"rules":[]}`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var s Set
			if err := json.Unmarshal([]byte(tt.in), &s); err == nil {
				t.Error("bad document accepted")
			}
		})
	}
}

func TestJSONMarshalValidates(t *testing.T) {
	bad := &Set{Name: "", Version: 1}
	if _, err := json.Marshal(bad); err == nil {
		t.Error("marshal of invalid set succeeded")
	}
}

func TestJSONDSLEquivalence(t *testing.T) {
	// DSL -> Set -> JSON -> Set -> DSL: the final DSL must reparse to the
	// same semantics as the original.
	orig := MustParse(sampleDSL)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var mid Set
	if err := json.Unmarshal(data, &mid); err != nil {
		t.Fatal(err)
	}
	final, err := Parse(mid.String())
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0x100); id <= 0x110; id++ {
		if orig.Decide("EV-ECU", "Normal", ActRead, id) != final.Decide("EV-ECU", "Normal", ActRead, id) {
			t.Fatalf("cross-format equivalence broken at 0x%X", id)
		}
	}
}
