package policy

import (
	"errors"
	"strings"
	"testing"
)

const sampleDSL = `
# Connected-car policy derived from Table I.
policy "table-i" version 3 {
  default deny

  allow read 0x100..0x10F at EV-ECU as "sensor block"
  deny  read 0x105 at EV-ECU
  allow write 0x200, 0x210 at DoorLocks in Normal
  allow readwrite 0x300 at Telematics in Normal, FailSafe as "tracking"

  mode RemoteDiag {
    allow write 0x7DF at Diagnostics
    allow read 0x7DF at *
  }
}
`

func TestParseSample(t *testing.T) {
	s, err := Parse(sampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "table-i" || s.Version != 3 {
		t.Errorf("header = %s/%d", s.Name, s.Version)
	}
	if len(s.Rules) != 6 {
		t.Fatalf("parsed %d rules, want 6", len(s.Rules))
	}
	r0 := s.Rules[0]
	if r0.Subject != "EV-ECU" || r0.Effect != Allow || r0.Action != ActRead ||
		r0.Name != "sensor block" || !r0.IDs.Contains(0x10A) || r0.IDs.Contains(0x110) {
		t.Errorf("rule 0 parsed wrong: %+v", r0)
	}
	r2 := s.Rules[2]
	if !r2.Modes.Contains("Normal") || r2.Modes.Contains("FailSafe") {
		t.Errorf("rule 2 modes wrong: %v", r2.Modes)
	}
	if !r2.IDs.Contains(0x200) || !r2.IDs.Contains(0x210) || r2.IDs.Contains(0x201) {
		t.Errorf("rule 2 ids wrong: %v", r2.IDs)
	}
	r3 := s.Rules[3]
	if r3.Action != ActReadWrite || r3.Name != "tracking" {
		t.Errorf("rule 3 wrong: %+v", r3)
	}
	// Mode block distributes its modes to contained rules.
	r4 := s.Rules[4]
	if !r4.Modes.Contains("RemoteDiag") || len(r4.Modes) != 1 {
		t.Errorf("mode block rule modes = %v", r4.Modes)
	}
	r5 := s.Rules[5]
	if r5.Subject != SubjectAll {
		t.Errorf("wildcard subject parsed as %q", r5.Subject)
	}
}

func TestParseDecisionSemantics(t *testing.T) {
	s := MustParse(sampleDSL)
	tests := []struct {
		subject string
		mode    Mode
		act     Action
		id      uint32
		want    Effect
	}{
		{"EV-ECU", "Normal", ActRead, 0x100, Allow},
		{"EV-ECU", "Normal", ActRead, 0x105, Deny}, // explicit deny
		{"DoorLocks", "Normal", ActWrite, 0x210, Allow},
		{"DoorLocks", "FailSafe", ActWrite, 0x210, Deny}, // wrong mode
		{"Telematics", "FailSafe", ActRead, 0x300, Allow},
		{"Telematics", "FailSafe", ActWrite, 0x300, Allow},
		{"Diagnostics", "RemoteDiag", ActWrite, 0x7DF, Allow},
		{"Diagnostics", "Normal", ActWrite, 0x7DF, Deny},
		{"Anyone", "RemoteDiag", ActRead, 0x7DF, Allow},
	}
	for _, tt := range tests {
		if got := s.Decide(tt.subject, tt.mode, tt.act, tt.id); got != tt.want {
			t.Errorf("Decide(%s,%s,%v,0x%X) = %v, want %v",
				tt.subject, tt.mode, tt.act, tt.id, got, tt.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
policy "p" version 1 { # trailing comment
  allow read 1 at x // another
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 1 {
		t.Errorf("rules = %d", len(s.Rules))
	}
}

func TestParseNumberFormats(t *testing.T) {
	s := MustParse(`policy "p" version 1 {
  allow read 0x10, 16, 0X20 at x
}`)
	ids := s.Rules[0].IDs
	if !ids.Contains(0x10) || !ids.Contains(16) || !ids.Contains(0x20) {
		t.Errorf("numeric formats parsed wrong: %v", ids)
	}
	// 0x10 == 16: normalisation merges them.
	norm, _ := ids.Normalize()
	if len(norm) != 2 {
		t.Errorf("expected 2 normalised ranges, got %v", norm)
	}
}

func TestParseQuotedSubject(t *testing.T) {
	s := MustParse(`policy "p" version 1 {
  allow read 1 at "node with spaces"
}`)
	if s.Rules[0].Subject != "node with spaces" {
		t.Errorf("quoted subject = %q", s.Rules[0].Subject)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := MustParse(`policy "a\"b\\c" version 1 {
  allow read 1 at x
}`)
	if s.Name != `a"b\c` {
		t.Errorf("escaped name = %q", s.Name)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		frag string // expected error substring
	}{
		{"missing policy keyword", `version 1 {}`, "policy"},
		{"missing version", `policy "p" {}`, "version"},
		{"unterminated block", `policy "p" version 1 { allow read 1 at x`, "missing '}'"},
		{"default allow", `policy "p" version 1 { default allow }`, "closed-world"},
		{"bad effect", `policy "p" version 1 { permit read 1 at x }`, "allow"},
		{"bad action", `policy "p" version 1 { allow exec 1 at x }`, "read"},
		{"missing at", `policy "p" version 1 { allow read 1 x }`, "at"},
		{"trailing garbage", `policy "p" version 1 {} extra`, "trailing"},
		{"re-declare modes", `policy "p" version 1 { mode A { allow read 1 at x in B } }`, "re-declare"},
		{"unterminated string", `policy "p`, "unterminated"},
		{"inverted range", `policy "p" version 1 { allow read 5..2 at x }`, "inverted"},
		{"stray dot", `policy "p" version 1 { allow read 1. at x }`, "'.'"},
		{"unknown escape", `policy "p\q" version 1 {}`, "escape"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("parse succeeded")
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("error %q does not mention %q", err, tt.frag)
			}
		})
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	src := "policy \"p\" version 1 {\n  allow read 1 at x\n  bogus read 1 at x\n}"
	_, err := Parse(src)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestParseEmptyPolicy(t *testing.T) {
	s, err := Parse(`policy "empty" version 7 { default deny }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 0 {
		t.Errorf("rules = %d", len(s.Rules))
	}
	// Everything denied.
	if s.Decide("x", "m", ActRead, 1) != Deny {
		t.Error("empty policy must deny")
	}
}
