// Package ir is the policy intermediate representation and the pluggable
// enforcement-backend layer between the policy DSL and the in-vehicle
// policy engines.
//
// The policy package compiles a rule set into exactly one enforcement form:
// the interpreted per-node approved-list tables of Fig. 4. Both related
// systems in this space are transpilers — oslopolicy2rego lowers oslo.policy
// documents into rego programs, gemara2ampel lowers governance policy into
// CEL verification policy — and the paper's own update story (§V-A.2) wants
// the same shape: one canonical policy source, multiple enforcement targets.
//
// This package supplies that shape:
//
//   - Policy is a small typed IR a policy.Set lowers into (Lower): subjects
//     and operating modes interned against the concrete device model, rules
//     normalised into index/bitmask/range form with unreachable rules
//     dropped.
//   - Backend compiles the IR into an Enforcer; backends self-register under
//     a name (Register/Lookup), and Build is the one-call front door used by
//     everything that threads a `-policy-backend` flag.
//   - Three backends ship: "table" re-homes the existing HPE-table/bitmap
//     interpreter behind the interface with zero behaviour change, "expr"
//     walks the normalised rule list directly (and is the transpile source
//     for the rego/CEL-style textual exports), and "closure" pre-compiles
//     every (subject, mode, direction) decision into direct-mapped jump
//     tables specialised for the vehicle model.
//
// # Decision semantics
//
// Every backend implements the same closed-world contract, and the
// differential harness (internal/policy/difftest) holds them to it
// decision-for-decision:
//
//   - act must be a single direction (ActRead or ActWrite); anything else
//     denies.
//   - Subjects outside the device's interned subject list deny outright —
//     the compiled-table semantics of an engine with no table for the node.
//   - Modes outside the device's interned mode list deny outright — the
//     deny-all fallback of NodeTable.Table.
//   - Otherwise deny overrides allow, and no matching rule denies
//     (least privilege, §V-B).
package ir

import (
	"fmt"
	"math/bits"

	"repro/internal/policy"
)

// Wildcard is the Rule.Subject index of a rule that applies to every
// interned subject (the DSL's "*" subject).
const Wildcard = -1

// Rule is one lowered policy rule: effect, action mask, interned subject,
// mode bitmask and normalised identifier ranges.
type Rule struct {
	// Name carries the source rule's label (provenance only).
	Name string
	// Effect is Allow or Deny; Deny overrides Allow.
	Effect policy.Effect
	// Action is the access direction mask the rule covers.
	Action policy.Action
	// Subject indexes Policy.Subjects, or Wildcard.
	Subject int
	// Modes is a bitmask over Policy.Modes; bit i set means the rule
	// applies in Policy.Modes[i]. A universal rule has every bit set.
	Modes uint64
	// IDs is the normalised identifier range set the rule covers.
	IDs policy.IDSet
}

// Policy is the lowered IR: a rule set normalised against one concrete
// device model (its subject and mode lists). It is immutable after Lower.
type Policy struct {
	// Name and Version carry over from the source set.
	Name    string
	Version uint64
	// Subjects is the device's interned subject list, in caller order.
	Subjects []string
	// Modes is the device's interned operating-mode list, in caller order.
	Modes []policy.Mode
	// Rules is the lowered rule list in declaration order. Rules that can
	// never match the device model (unknown subject, unreachable mode set)
	// are dropped during lowering; Dropped counts them.
	Rules []Rule
	// Dropped counts source rules lowered away as unreachable.
	Dropped int
	// Universe is the normalised union of every identifier any rule
	// mentions — the expansion domain of table-building backends.
	Universe policy.IDSet
	// Lookup and Limit carry the caller's compile hints (table data
	// structure, per-table identifier cap) for backends that expand tables.
	Lookup policy.LookupKind
	Limit  int

	subjectIdx map[string]int
	modeIdx    map[policy.Mode]int
}

// MaxModes bounds the interned mode list: mode sets lower into one uint64
// bitmask.
const MaxModes = 64

// Lower normalises a rule set against the device model named by opts
// (Subjects and Modes are required, exactly as for policy.Compile) and
// returns the typed IR every backend compiles from. The table-expansion cap
// (opts.TableLimit, default policy.TableLimit) is enforced here so a policy
// too large for bounded in-vehicle tables fails uniformly for every backend
// rather than only for the ones that expand.
func Lower(set *policy.Set, opts policy.CompileOptions) (*Policy, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Subjects) == 0 {
		return nil, fmt.Errorf("ir: lowering requires the device's subject list")
	}
	if len(opts.Modes) == 0 {
		return nil, fmt.Errorf("ir: lowering requires the device's mode list")
	}
	if len(opts.Modes) > MaxModes {
		return nil, fmt.Errorf("ir: %d modes exceed the %d-mode bitmask", len(opts.Modes), MaxModes)
	}
	p := &Policy{
		Name:       set.Name,
		Version:    set.Version,
		Subjects:   append([]string(nil), opts.Subjects...),
		Modes:      append([]policy.Mode(nil), opts.Modes...),
		subjectIdx: make(map[string]int, len(opts.Subjects)),
		modeIdx:    make(map[policy.Mode]int, len(opts.Modes)),
	}
	for i, s := range p.Subjects {
		if _, dup := p.subjectIdx[s]; dup {
			return nil, fmt.Errorf("ir: duplicate subject %q in device model", s)
		}
		p.subjectIdx[s] = i
	}
	for i, m := range p.Modes {
		if _, dup := p.modeIdx[m]; dup {
			return nil, fmt.Errorf("ir: duplicate mode %q in device model", m)
		}
		p.modeIdx[m] = i
	}
	allModes := uint64(1)<<len(p.Modes) - 1
	var universe policy.IDSet
	for i := range set.Rules {
		r := &set.Rules[i]
		lr := Rule{Name: r.Name, Effect: r.Effect, Action: r.Action, Subject: Wildcard}
		if r.Subject != policy.SubjectAll {
			si, ok := p.subjectIdx[r.Subject]
			if !ok {
				// The rule names a node the device does not have; no
				// decision on this device can ever match it.
				p.Dropped++
				continue
			}
			lr.Subject = si
		}
		if len(r.Modes) == 0 {
			lr.Modes = allModes
		} else {
			for m := range r.Modes {
				if mi, ok := p.modeIdx[m]; ok {
					lr.Modes |= 1 << mi
				}
			}
			if lr.Modes == 0 {
				// Every mode the rule names is foreign to this device.
				p.Dropped++
				continue
			}
		}
		norm, err := r.IDs.Normalize()
		if err != nil {
			return nil, fmt.Errorf("ir: rule %q: %w", r.Name, err)
		}
		lr.IDs = norm
		universe = append(universe, norm...)
		p.Rules = append(p.Rules, lr)
	}
	norm, err := universe.Normalize()
	if err != nil {
		return nil, err
	}
	p.Universe = norm
	p.Lookup = opts.Lookup
	p.Limit = opts.TableLimit
	if p.Limit == 0 {
		p.Limit = policy.TableLimit
	}
	if _, err := p.Universe.Enumerate(p.Limit); err != nil {
		return nil, err
	}
	return p, nil
}

// SubjectIndex interns a subject name; ok is false for subjects the device
// model does not know (which every backend denies).
func (p *Policy) SubjectIndex(subject string) (int, bool) {
	i, ok := p.subjectIdx[subject]
	return i, ok
}

// ModeIndex interns an operating mode; ok is false for foreign modes.
func (p *Policy) ModeIndex(mode policy.Mode) (int, bool) {
	i, ok := p.modeIdx[mode]
	return i, ok
}

// ModeNames expands a rule's mode bitmask back into mode names, in interned
// order. A full mask returns nil, meaning "all modes".
func (p *Policy) ModeNames(mask uint64) []policy.Mode {
	if mask == uint64(1)<<len(p.Modes)-1 {
		return nil
	}
	out := make([]policy.Mode, 0, bits.OnesCount64(mask))
	for i, m := range p.Modes {
		if mask&(1<<i) != 0 {
			out = append(out, m)
		}
	}
	return out
}

// ToSet reconstructs a policy.Set from the IR: the faithful source of the
// lowered rules (dropped rules were unreachable on this device by
// construction). The table backend compiles through it so the artifact it
// produces is the output of the *same* policy.Compile code path the
// pre-backend engine used — zero behaviour change by construction.
func (p *Policy) ToSet() *policy.Set {
	s := &policy.Set{Name: p.Name, Version: p.Version, Rules: make([]policy.Rule, 0, len(p.Rules))}
	for _, r := range p.Rules {
		pr := policy.Rule{Name: r.Name, Effect: r.Effect, Action: r.Action, Subject: policy.SubjectAll, IDs: r.IDs}
		if r.Subject != Wildcard {
			pr.Subject = p.Subjects[r.Subject]
		}
		for _, m := range p.ModeNames(r.Modes) {
			pr.Modes = pr.Modes.Add(m)
		}
		s.Rules = append(s.Rules, pr)
	}
	return s
}

// Eval is the IR reference evaluator: the closed-world decision semantics
// every backend must reproduce, stated once. The expr backend is this walk
// behind per-subject indexing; the closure backend memoises it into jump
// tables at compile time; difftest holds all backends to it.
func (p *Policy) Eval(subject string, object uint32, act policy.Action, mode policy.Mode) policy.Effect {
	if act != policy.ActRead && act != policy.ActWrite {
		return policy.Deny
	}
	si, ok := p.subjectIdx[subject]
	if !ok {
		return policy.Deny
	}
	mi, ok := p.modeIdx[mode]
	if !ok {
		return policy.Deny
	}
	return p.evalIndexed(si, object, act, mi)
}

// evalIndexed is Eval after subject/mode interning: the shared rule walk.
func (p *Policy) evalIndexed(si int, object uint32, act policy.Action, mi int) policy.Effect {
	allowed := false
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Subject != Wildcard && r.Subject != si {
			continue
		}
		if r.Modes&(1<<mi) == 0 || !r.Action.Has(act) || !r.IDs.Contains(object) {
			continue
		}
		if r.Effect == policy.Deny {
			return policy.Deny
		}
		allowed = true
	}
	if allowed {
		return policy.Allow
	}
	return policy.Deny
}
