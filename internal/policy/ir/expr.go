package ir

// exprBackend is the rego/CEL-style expression evaluator: it keeps the
// lowered rule list as a normalised AST and decides by walking it, exactly
// the shape oslopolicy2rego and gemara2ampel transpile into. It is the
// slowest backend but the only one whose runtime form is the transpile
// source (transpile.go renders the same rule list it walks), so what the
// textual exports say is literally what this backend executes.
//
// Compilation prefilters the rule list per (subject, mode) pair into index
// slices so the hot-path walk touches only rules that can match; the
// deciders themselves are built once at compile time and Resolve/Allow
// never allocate.

import (
	"repro/internal/policy"
)

type exprBackend struct{}

func init() { Register(exprBackend{}) }

func (exprBackend) Name() string { return "expr" }

func (exprBackend) Compile(p *Policy) (Enforcer, error) {
	e := &exprEnforcer{p: p, nodes: make([]exprNode, len(p.Subjects))}
	for si := range p.Subjects {
		n := exprNode{p: p, modes: make([]exprMode, len(p.Modes))}
		for mi := range p.Modes {
			var idx []int32
			for ri := range p.Rules {
				r := &p.Rules[ri]
				if r.Subject != Wildcard && r.Subject != si {
					continue
				}
				if r.Modes&(1<<mi) == 0 {
					continue
				}
				idx = append(idx, int32(ri))
			}
			n.modes[mi] = exprMode{p: p, rules: idx}
		}
		e.nodes[si] = n
	}
	return e, nil
}

type exprEnforcer struct {
	p     *Policy
	nodes []exprNode
}

func (e *exprEnforcer) Backend() string { return "expr" }

func (e *exprEnforcer) Policy() (string, uint64) { return e.p.Name, e.p.Version }

func (e *exprEnforcer) Decide(subject string, object uint32, act policy.Action, ctx Context) Decision {
	if e.Node(subject).Resolve(ctx.Mode).Allow(act, object) {
		return Decision{Effect: policy.Allow}
	}
	return Decision{Effect: policy.Deny}
}

func (e *exprEnforcer) Node(subject string) NodeDecider {
	si, ok := e.p.SubjectIndex(subject)
	if !ok {
		return denyAllNode{}
	}
	return &e.nodes[si]
}

type exprNode struct {
	p     *Policy
	modes []exprMode
}

func (n *exprNode) Resolve(mode policy.Mode) ModeDecider {
	mi, ok := n.p.ModeIndex(mode)
	if !ok {
		return denyAllMode{}
	}
	return &n.modes[mi]
}

// exprMode walks the prefiltered rule list: deny overrides allow, default
// deny. The subject and mode predicates were discharged at compile time;
// only action and identifier membership remain.
type exprMode struct {
	p     *Policy
	rules []int32
}

func (m *exprMode) Allow(act policy.Action, id uint32) bool {
	if act != policy.ActRead && act != policy.ActWrite {
		return false
	}
	allowed := false
	for _, ri := range m.rules {
		r := &m.p.Rules[ri]
		if !r.Action.Has(act) || !r.IDs.Contains(id) {
			continue
		}
		if r.Effect == policy.Deny {
			return false
		}
		allowed = true
	}
	return allowed
}
