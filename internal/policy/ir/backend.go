package ir

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/policy"
)

// Context carries the evaluation-time state a decision depends on beyond the
// (subject, object, action) triple. Today that is the operating mode; it is
// a struct so backends keep compiling when context grows (e.g. the
// behavioural regime's rate state).
type Context struct {
	// Mode is the device's current operating mode.
	Mode policy.Mode
}

// Decision is the outcome of one enforcement query. It is deliberately just
// the effect — no rule provenance, no strings — so backends that reach the
// same verdict are byte-identical and the differential harness can compare
// them directly.
type Decision struct {
	// Effect is Allow or Deny.
	Effect policy.Effect
}

// Allowed reports whether the decision grants the access.
func (d Decision) Allowed() bool { return d.Effect == policy.Allow }

// ModeDecider answers allow/deny for one (subject, mode) pair — the
// innermost hot-path object. Allow must be allocation-free: the HPE calls
// it once per frame delivery across the whole fleet.
type ModeDecider interface {
	// Allow reports whether the single-direction action on id is granted.
	// Actions other than ActRead/ActWrite deny.
	Allow(act policy.Action, id uint32) bool
}

// NodeDecider is one subject's compiled decision logic across modes.
type NodeDecider interface {
	// Resolve returns the decider for one operating mode; unknown modes
	// resolve to a deny-all decider, never nil.
	Resolve(mode policy.Mode) ModeDecider
}

// Enforcer is a fully compiled policy ready to decide accesses.
type Enforcer interface {
	// Backend names the backend that compiled this enforcer.
	Backend() string
	// Policy identifies the compiled policy (name, version).
	Policy() (name string, version uint64)
	// Decide evaluates one access under the closed-world contract.
	Decide(subject string, object uint32, act policy.Action, ctx Context) Decision
	// Node returns the subject's decider; unknown subjects get a deny-all
	// decider, never nil.
	Node(subject string) NodeDecider
}

// Backend compiles lowered policy IR into an Enforcer.
type Backend interface {
	// Name is the registry key ("table", "expr", "closure").
	Name() string
	// Compile builds an enforcer for the policy.
	Compile(p *Policy) (Enforcer, error)
}

// DefaultBackend is the backend used when none is named: the interpreted
// table form the engine has always run.
const DefaultBackend = "table"

var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// Register adds a backend under its name. Registering a duplicate name
// panics: backends register from init and a collision is a programming
// error.
func Register(b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("ir: backend %q registered twice", b.Name()))
	}
	registry[b.Name()] = b
}

// Lookup resolves a backend name; the empty name means DefaultBackend. The
// error for an unknown name lists every registered backend so CLI surfaces
// can print it verbatim.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ir: unknown policy backend %q (registered: %s)", name, namesLocked())
	}
	return b, nil
}

// Names returns the sorted registered backend names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func namesLocked() string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	s := ""
	for i, n := range out {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Build is the front door: lower the set against the device model and
// compile it with the backend named by opts.Backend (default "table").
func Build(set *policy.Set, opts policy.CompileOptions) (Enforcer, error) {
	b, err := Lookup(opts.Backend)
	if err != nil {
		return nil, err
	}
	p, err := Lower(set, opts)
	if err != nil {
		return nil, err
	}
	return b.Compile(p)
}

// denyAllMode is the shared deny-everything ModeDecider every backend hands
// out for unknown subjects and modes.
type denyAllMode struct{}

func (denyAllMode) Allow(policy.Action, uint32) bool { return false }

// denyAllNode resolves every mode to the deny-all decider.
type denyAllNode struct{}

func (denyAllNode) Resolve(policy.Mode) ModeDecider { return denyAllMode{} }

// DenyAllNode returns the shared deny-everything NodeDecider.
func DenyAllNode() NodeDecider { return denyAllNode{} }
