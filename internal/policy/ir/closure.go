package ir

// closureBackend is the fully pre-compiled backend: it memoises the IR's
// reference evaluator into direct-mapped jump tables at compile time, one
// per (subject, mode, direction), specialised for the vehicle model. The
// hot path is a single bit test on a flat [32]uint64 — no rule walk, no
// mode-table map lookup, no IDLookup interface dispatch. This is the
// closest software analogue of burning the policy into the CAM of a real
// policy engine, and the backend the ablation expects to win.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/policy"
)

type closureBackend struct{}

func init() { Register(closureBackend{}) }

func (closureBackend) Name() string { return "closure" }

func (closureBackend) Compile(p *Policy) (Enforcer, error) {
	ids, err := p.Universe.Enumerate(p.Limit)
	if err != nil {
		return nil, err
	}
	e := &closureEnforcer{p: p, nodes: make([]closureNode, len(p.Subjects))}
	for si := range p.Subjects {
		n := closureNode{p: p, modes: make([]closureMode, len(p.Modes))}
		for mi := range p.Modes {
			m := &n.modes[mi]
			for _, id := range ids {
				if p.evalIndexed(si, id, policy.ActRead, mi) == policy.Allow {
					m.read.set(id)
				}
				if p.evalIndexed(si, id, policy.ActWrite, mi) == policy.Allow {
					m.write.set(id)
				}
			}
			sort.Slice(m.read.ext, func(a, b int) bool { return m.read.ext[a] < m.read.ext[b] })
			sort.Slice(m.write.ext, func(a, b int) bool { return m.write.ext[a] < m.write.ext[b] })
		}
		e.nodes[si] = n
	}
	return e, nil
}

type closureEnforcer struct {
	p     *Policy
	nodes []closureNode
}

func (e *closureEnforcer) Backend() string { return "closure" }

func (e *closureEnforcer) Policy() (string, uint64) { return e.p.Name, e.p.Version }

func (e *closureEnforcer) Decide(subject string, object uint32, act policy.Action, ctx Context) Decision {
	if e.Node(subject).Resolve(ctx.Mode).Allow(act, object) {
		return Decision{Effect: policy.Allow}
	}
	return Decision{Effect: policy.Deny}
}

func (e *closureEnforcer) Node(subject string) NodeDecider {
	si, ok := e.p.SubjectIndex(subject)
	if !ok {
		return denyAllNode{}
	}
	return &e.nodes[si]
}

type closureNode struct {
	p     *Policy
	modes []closureMode
}

func (n *closureNode) Resolve(mode policy.Mode) ModeDecider {
	// Linear scan instead of the interning map: vehicle models have a
	// handful of modes, and one string compare beats a map hash — this is
	// the per-frame path when the engine runs without the resolved cache.
	for mi := range n.p.Modes {
		if n.p.Modes[mi] == mode {
			return &n.modes[mi]
		}
	}
	return denyAllMode{}
}

// closureSlot is one direction's pre-computed decision table: a 2048-bit
// direct map over the standard 11-bit identifier space plus a sorted spill
// list for extended identifiers.
type closureSlot struct {
	bits [(policy.MaxStandardID + 1) / 64]uint64
	ext  []uint32
}

func (s *closureSlot) set(id uint32) {
	if id <= policy.MaxStandardID {
		s.bits[id>>6] |= 1 << (id & 63)
		return
	}
	s.ext = append(s.ext, id)
}

func (s *closureSlot) contains(id uint32) bool {
	if id <= policy.MaxStandardID {
		return s.bits[id>>6]&(1<<(id&63)) != 0
	}
	lo, hi := 0, len(s.ext)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ext[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.ext) && s.ext[lo] == id
}

// ids reconstructs the slot's allowed identifiers as merged ranges for the
// jump-table dump.
func (s *closureSlot) ids() policy.IDSet {
	var out policy.IDSet
	for id := uint32(0); id <= policy.MaxStandardID; id++ {
		if s.bits[id>>6]&(1<<(id&63)) != 0 {
			out = append(out, policy.IDRange{Lo: id, Hi: id})
		}
	}
	for _, id := range s.ext {
		out = append(out, policy.IDRange{Lo: id, Hi: id})
	}
	norm, err := out.Normalize()
	if err != nil {
		return out // unreachable: singletons never invert
	}
	return norm
}

type closureMode struct {
	read, write closureSlot
}

func (m *closureMode) Allow(act policy.Action, id uint32) bool {
	switch act {
	case policy.ActRead:
		return m.read.contains(id)
	case policy.ActWrite:
		return m.write.contains(id)
	default:
		return false
	}
}

// Dump renders the compiled jump tables as deterministic text: every
// (subject, mode) pair's approved reading and writing ranges, in interned
// order. This is the policyc -emit jumptable export.
func (e *closureEnforcer) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jumptable policy %q version %d\n", e.p.Name, e.p.Version)
	fmt.Fprintf(&b, "modes: %d  subjects: %d  rules: %d (dropped %d)\n",
		len(e.p.Modes), len(e.p.Subjects), len(e.p.Rules), e.p.Dropped)
	for si, subj := range e.p.Subjects {
		fmt.Fprintf(&b, "subject %q\n", subj)
		for mi, mode := range e.p.Modes {
			m := &e.nodes[si].modes[mi]
			fmt.Fprintf(&b, "  mode %s\n", mode)
			fmt.Fprintf(&b, "    R %s\n", m.read.ids())
			fmt.Fprintf(&b, "    W %s\n", m.write.ids())
		}
	}
	return b.String()
}
