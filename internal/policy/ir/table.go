package ir

import (
	"repro/internal/policy"
)

// tableBackend re-homes the existing interpreted enforcement form — the
// per-node approved-list tables of Fig. 4 built by policy.Compile — behind
// the Backend interface. It compiles through Policy.ToSet so the artifact is
// produced by the very same policy.Compile code path the pre-backend engine
// ran: zero behaviour change by construction, which is why it is the
// default.
type tableBackend struct{}

func init() { Register(tableBackend{}) }

func (tableBackend) Name() string { return "table" }

func (tableBackend) Compile(p *Policy) (Enforcer, error) {
	c, err := policy.Compile(p.ToSet(), policy.CompileOptions{
		Subjects:   p.Subjects,
		Modes:      p.Modes,
		Lookup:     p.Lookup,
		TableLimit: p.Limit,
	})
	if err != nil {
		return nil, err
	}
	return &TableEnforcer{compiled: c, subjects: p.subjectIdx}, nil
}

// TableEnforcer wraps a *policy.Compiled. It is exported so the HPE can
// recognise the table backend and keep its historical atomic-table fast
// path (hpe.Engine swaps whole NodeTable pointers) instead of going through
// the generic decider indirection.
type TableEnforcer struct {
	compiled *policy.Compiled
	subjects map[string]int
}

// WrapCompiled adapts an already-compiled table artifact (the legacy
// policy.Compile output) into an Enforcer without re-lowering. Callers that
// still build *policy.Compiled directly — checkpointed arenas, the policy
// store — use this to meet Enforcer-shaped APIs.
func WrapCompiled(c *policy.Compiled) *TableEnforcer {
	subs := c.Subjects()
	idx := make(map[string]int, len(subs))
	for i, s := range subs {
		idx[s] = i
	}
	return &TableEnforcer{compiled: c, subjects: idx}
}

// Compiled exposes the underlying table artifact.
func (t *TableEnforcer) Compiled() *policy.Compiled { return t.compiled }

// Backend implements Enforcer.
func (t *TableEnforcer) Backend() string { return "table" }

// Policy implements Enforcer.
func (t *TableEnforcer) Policy() (string, uint64) { return t.compiled.Name, t.compiled.Version }

// Decide implements Enforcer: a direct walk of the compiled approved lists.
func (t *TableEnforcer) Decide(subject string, object uint32, act policy.Action, ctx Context) Decision {
	if t.Node(subject).Resolve(ctx.Mode).Allow(act, object) {
		return Decision{Effect: policy.Allow}
	}
	return Decision{Effect: policy.Deny}
}

// Node implements Enforcer. Known subjects resolve through their compiled
// NodeTable; unknown subjects share the deny-all decider (the compiled form
// would allocate a fresh deny-all table per call).
func (t *TableEnforcer) Node(subject string) NodeDecider {
	if _, ok := t.subjects[subject]; !ok {
		return denyAllNode{}
	}
	return tableNode{t: t.compiled.Node(subject)}
}

type tableNode struct{ t *policy.NodeTable }

func (n tableNode) Resolve(mode policy.Mode) ModeDecider {
	mt, ok := n.t.PerMode[mode]
	if !ok {
		return denyAllMode{}
	}
	return tableMode{mt: mt}
}

type tableMode struct{ mt policy.ModeTable }

func (m tableMode) Allow(act policy.Action, id uint32) bool {
	switch act {
	case policy.ActRead:
		return m.mt.Reads.Contains(id)
	case policy.ActWrite:
		return m.mt.Writes.Contains(id)
	default:
		return false
	}
}
