package ir

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

// testSet is a policy exercising every lowering shape: wildcard subject,
// mode-restricted rules, deny-overrides, multi-range IDs, and rules that are
// unreachable on the device model (unknown subject, foreign modes).
func testSet() *policy.Set {
	return &policy.Set{
		Name:    "unit",
		Version: 7,
		Rules: []policy.Rule{
			{Name: "telemetry", Subject: policy.SubjectAll, Effect: policy.Allow,
				Action: policy.ActRead, IDs: policy.Span(0x100, 0x103)},
			{Name: "ecu-w", Subject: "ecu", Effect: policy.Allow,
				Action: policy.ActWrite, IDs: policy.IDSet{{Lo: 0x200, Hi: 0x200}, {Lo: 0x300, Hi: 0x302}}},
			{Name: "diag-rw", Subject: "diag", Effect: policy.Allow,
				Action: policy.ActReadWrite, IDs: policy.Span(0x100, 0x400),
				Modes: policy.NewModeSet("remote-diag")},
			{Name: "lockdown", Subject: policy.SubjectAll, Effect: policy.Deny,
				Action: policy.ActWrite, IDs: policy.SingleID(0x300),
				Modes: policy.NewModeSet("failsafe")},
			{Name: "ghost-node", Subject: "absent", Effect: policy.Allow,
				Action: policy.ActReadWrite, IDs: policy.Span(0, 0x7FF)},
			{Name: "ghost-mode", Subject: "ecu", Effect: policy.Allow,
				Action: policy.ActWrite, IDs: policy.SingleID(0x7FF),
				Modes: policy.NewModeSet("track-day")},
		},
	}
}

func testOpts() policy.CompileOptions {
	return policy.CompileOptions{
		Subjects: []string{"ecu", "diag", "infotainment"},
		Modes:    []policy.Mode{"normal", "remote-diag", "failsafe"},
	}
}

// specDecide is the closed-world reference: the contract in the package
// comment stated over the raw rule set.
func specDecide(set *policy.Set, opts policy.CompileOptions, subject string, mode policy.Mode, act policy.Action, id uint32) policy.Effect {
	if act != policy.ActRead && act != policy.ActWrite {
		return policy.Deny
	}
	known := false
	for _, s := range opts.Subjects {
		if s == subject {
			known = true
		}
	}
	if !known {
		return policy.Deny
	}
	known = false
	for _, m := range opts.Modes {
		if m == mode {
			known = true
		}
	}
	if !known {
		return policy.Deny
	}
	return set.Decide(subject, mode, act, id)
}

func TestLower(t *testing.T) {
	p, err := Lower(testSet(), testOpts())
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if p.Name != "unit" || p.Version != 7 {
		t.Errorf("identity = %q v%d, want unit v7", p.Name, p.Version)
	}
	if p.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (ghost-node, ghost-mode)", p.Dropped)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("len(Rules) = %d, want 4", len(p.Rules))
	}
	if p.Rules[0].Subject != Wildcard {
		t.Errorf("wildcard rule lowered to subject %d", p.Rules[0].Subject)
	}
	if si, ok := p.SubjectIndex("ecu"); !ok || p.Rules[1].Subject != si {
		t.Errorf("ecu rule subject = %d (ecu index %d, ok=%v)", p.Rules[1].Subject, si, ok)
	}
	allModes := uint64(1)<<3 - 1
	if p.Rules[0].Modes != allModes {
		t.Errorf("universal rule mask = %b, want %b", p.Rules[0].Modes, allModes)
	}
	mi, _ := p.ModeIndex("remote-diag")
	if p.Rules[2].Modes != 1<<mi {
		t.Errorf("diag-rw mask = %b, want bit %d", p.Rules[2].Modes, mi)
	}
	if !p.Universe.Contains(0x400) || p.Universe.Contains(0x401) {
		t.Errorf("universe %s misses 0x400 or includes 0x401", p.Universe)
	}
}

func TestLowerErrors(t *testing.T) {
	set := testSet()
	if _, err := Lower(set, policy.CompileOptions{Modes: []policy.Mode{"normal"}}); err == nil {
		t.Error("no subjects: want error")
	}
	if _, err := Lower(set, policy.CompileOptions{Subjects: []string{"ecu"}}); err == nil {
		t.Error("no modes: want error")
	}
	opts := testOpts()
	opts.TableLimit = 8
	if _, err := Lower(set, opts); err == nil {
		t.Error("universe over TableLimit: want error")
	}
	opts = testOpts()
	opts.Subjects = []string{"ecu", "ecu"}
	if _, err := Lower(set, opts); err == nil {
		t.Error("duplicate subject: want error")
	}
	wide := make([]policy.Mode, MaxModes+1)
	for i := range wide {
		wide[i] = policy.Mode("m" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	opts = testOpts()
	opts.Modes = wide
	if _, err := Lower(set, opts); err == nil {
		t.Error("too many modes: want error")
	}
}

func TestToSetRoundTrip(t *testing.T) {
	set, opts := testSet(), testOpts()
	p, err := Lower(set, opts)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	back := p.ToSet()
	p2, err := Lower(back, opts)
	if err != nil {
		t.Fatalf("re-Lower: %v", err)
	}
	for _, subj := range append(opts.Subjects, "absent") {
		for _, mode := range append(opts.Modes, "track-day") {
			for id := uint32(0x0FF); id <= 0x401; id++ {
				for _, act := range []policy.Action{policy.ActRead, policy.ActWrite} {
					if got, want := p2.Eval(subj, id, act, mode), p.Eval(subj, id, act, mode); got != want {
						t.Fatalf("round-trip diverges at (%s,%s,%v,0x%X): %v != %v", subj, mode, act, id, got, want)
					}
				}
			}
		}
	}
}

func TestEvalMatchesSpec(t *testing.T) {
	set, opts := testSet(), testOpts()
	p, err := Lower(set, opts)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	subjects := append(append([]string{}, opts.Subjects...), "absent", "")
	modes := append(append([]policy.Mode{}, opts.Modes...), "track-day", "")
	acts := []policy.Action{policy.ActRead, policy.ActWrite, policy.ActReadWrite, 0, 7}
	for _, subj := range subjects {
		for _, mode := range modes {
			for _, act := range acts {
				for id := uint32(0x0FF); id <= 0x401; id++ {
					want := specDecide(set, opts, subj, mode, act, id)
					if got := p.Eval(subj, id, act, mode); got != want {
						t.Fatalf("Eval(%s,%s,%v,0x%X) = %v, want %v", subj, mode, act, id, got, want)
					}
				}
			}
		}
	}
}

func TestBackendsMatchEval(t *testing.T) {
	set, opts := testSet(), testOpts()
	p, err := Lower(set, opts)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	for _, name := range Names() {
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		enf, err := b.Compile(p)
		if err != nil {
			t.Fatalf("%s.Compile: %v", name, err)
		}
		if enf.Backend() != name {
			t.Errorf("%s enforcer reports backend %q", name, enf.Backend())
		}
		if n, v := enf.Policy(); n != "unit" || v != 7 {
			t.Errorf("%s enforcer identity = %q v%d", name, n, v)
		}
		subjects := append(append([]string{}, opts.Subjects...), "absent")
		modes := append(append([]policy.Mode{}, opts.Modes...), "track-day")
		acts := []policy.Action{policy.ActRead, policy.ActWrite, policy.ActReadWrite, 0}
		for _, subj := range subjects {
			node := enf.Node(subj)
			for _, mode := range modes {
				md := node.Resolve(mode)
				for _, act := range acts {
					for id := uint32(0x0FF); id <= 0x401; id++ {
						want := p.Eval(subj, id, act, mode)
						got := enf.Decide(subj, id, act, Context{Mode: mode})
						if got.Effect != want {
							t.Fatalf("%s.Decide(%s,%s,%v,0x%X) = %v, want %v", name, subj, mode, act, id, got.Effect, want)
						}
						if md.Allow(act, id) != (want == policy.Allow) {
							t.Fatalf("%s node decider diverges from Decide at (%s,%s,%v,0x%X)", name, subj, mode, act, id)
						}
					}
				}
			}
		}
	}
}

func TestBuildAndRegistry(t *testing.T) {
	set, opts := testSet(), testOpts()
	for _, name := range []string{"", "table", "expr", "closure"} {
		opts.Backend = name
		enf, err := Build(set, opts)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = DefaultBackend
		}
		if enf.Backend() != want {
			t.Errorf("Build(%q) compiled with %q", name, enf.Backend())
		}
	}
	opts.Backend = "jit"
	_, err := Build(set, opts)
	if err == nil {
		t.Fatal("Build(jit): want error")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-backend error %q does not name %q", err, name)
		}
	}
}

func TestTableEnforcerExposesCompiled(t *testing.T) {
	set, opts := testSet(), testOpts()
	opts.Backend = "table"
	enf, err := Build(set, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	te, ok := enf.(*TableEnforcer)
	if !ok {
		t.Fatalf("table backend built %T, want *TableEnforcer", enf)
	}
	if te.Compiled() == nil {
		t.Fatal("TableEnforcer.Compiled() = nil")
	}
	direct, err := policy.Compile(set, testOpts())
	if err != nil {
		t.Fatalf("policy.Compile: %v", err)
	}
	wrapped := WrapCompiled(direct)
	p, _ := Lower(set, testOpts())
	for _, subj := range testOpts().Subjects {
		for _, mode := range testOpts().Modes {
			for id := uint32(0x0FF); id <= 0x401; id++ {
				for _, act := range []policy.Action{policy.ActRead, policy.ActWrite} {
					if got, want := wrapped.Decide(subj, id, act, Context{Mode: mode}).Effect, p.Eval(subj, id, act, mode); got != want {
						t.Fatalf("WrapCompiled diverges at (%s,%s,%v,0x%X): %v != %v", subj, mode, act, id, got, want)
					}
				}
			}
		}
	}
}

func TestDecideAllocFree(t *testing.T) {
	set, opts := testSet(), testOpts()
	for _, name := range Names() {
		opts.Backend = name
		enf, err := Build(set, opts)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		md := enf.Node("ecu").Resolve("normal")
		allocs := testing.AllocsPerRun(1000, func() {
			md.Allow(policy.ActWrite, 0x300)
			md.Allow(policy.ActRead, 0x101)
		})
		if allocs != 0 {
			t.Errorf("%s ModeDecider.Allow allocates %.1f/op, want 0", name, allocs)
		}
	}
}

func TestClosureDump(t *testing.T) {
	set, opts := testSet(), testOpts()
	opts.Backend = "closure"
	enf, err := Build(set, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	d, ok := enf.(interface{ Dump() string })
	if !ok {
		t.Fatalf("closure enforcer %T has no Dump", enf)
	}
	out := d.Dump()
	for _, want := range []string{
		`jumptable policy "unit" version 7`,
		`subject "ecu"`,
		"mode remote-diag",
		"0x100..0x103",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
	// The failsafe lockdown denies writes to 0x300 fleet-wide: the ecu
	// failsafe W row must not contain it while normal does.
	lines := strings.Split(out, "\n")
	var normalW, failW string
	mode := ""
	inECU := false
	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		if strings.HasPrefix(ln, "subject ") {
			inECU = strings.Contains(ln, `"ecu"`)
		}
		if strings.HasPrefix(trimmed, "mode ") {
			mode = strings.TrimPrefix(trimmed, "mode ")
		}
		if inECU && strings.HasPrefix(trimmed, "W ") {
			if mode == "normal" {
				normalW = trimmed
			}
			if mode == "failsafe" {
				failW = trimmed
			}
		}
	}
	if !strings.Contains(normalW, "0x300") {
		t.Errorf("ecu normal W row %q missing 0x300", normalW)
	}
	if strings.Contains(failW, "0x300") {
		t.Errorf("ecu failsafe W row %q still grants 0x300", failW)
	}
}

func TestTranspileDeterministic(t *testing.T) {
	set, opts := testSet(), testOpts()
	p, err := Lower(set, opts)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	rego1, rego2 := TranspileRego(p), TranspileRego(p)
	if rego1 != rego2 {
		t.Error("TranspileRego is nondeterministic")
	}
	cel1, cel2 := TranspileCEL(p), TranspileCEL(p)
	if cel1 != cel2 {
		t.Error("TranspileCEL is nondeterministic")
	}
	for _, want := range []string{"package repro.enforce", `default decision = "deny"`, "not deny", `input.subject == "ecu"`, "input.id >= 768"} {
		if !strings.Contains(rego1, want) {
			t.Errorf("rego output missing %q:\n%s", want, rego1)
		}
	}
	for _, want := range []string{"allow :=", "deny :=", `subject == "ecu"`, `mode == "remote-diag"`, "id >= 256u"} {
		if !strings.Contains(cel1, want) {
			t.Errorf("cel output missing %q:\n%s", want, cel1)
		}
	}
}
