package ir

// Textual transpilation of the lowered IR, in the spirit of the two related
// systems: TranspileRego renders the rego shape oslopolicy2rego produces
// from oslo.policy documents, TranspileCEL the guarded-expression shape
// gemara2ampel compiles governance policy into. Both render exactly the
// rule list the expr backend walks at runtime, so the export is a faithful
// statement of what the evaluator enforces. Output is deterministic
// (interned order everywhere) — the policyc golden tests depend on that.

import (
	"fmt"
	"strings"

	"repro/internal/policy"
)

// TranspileRego renders the policy as a rego module: one rule body per
// (rule, range) — rego expresses range disjunction as alternative bodies —
// with the deny-overrides default-deny decision head on top.
func TranspileRego(p *Policy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Transpiled from policy %q version %d.\n", p.Name, p.Version)
	b.WriteString("# Input document: {subject, mode, action, id}.\n")
	b.WriteString("package repro.enforce\n\n")
	b.WriteString("default decision = \"deny\"\n\n")
	b.WriteString("decision = \"allow\" {\n\tallow\n\tnot deny\n}\n")
	for i := range p.Rules {
		r := &p.Rules[i]
		head := "allow"
		if r.Effect == policy.Deny {
			head = "deny"
		}
		for _, rng := range r.IDs {
			b.WriteString("\n")
			if r.Name != "" {
				fmt.Fprintf(&b, "# rule %q\n", r.Name)
			}
			fmt.Fprintf(&b, "%s {\n", head)
			if r.Subject != Wildcard {
				fmt.Fprintf(&b, "\tinput.subject == %q\n", p.Subjects[r.Subject])
			}
			if modes := p.ModeNames(r.Modes); modes != nil {
				if len(modes) == 1 {
					fmt.Fprintf(&b, "\tinput.mode == %q\n", string(modes[0]))
				} else {
					fmt.Fprintf(&b, "\t%s[input.mode]\n", regoSet(modeStrings(modes)))
				}
			}
			switch r.Action {
			case policy.ActRead:
				b.WriteString("\tinput.action == \"read\"\n")
			case policy.ActWrite:
				b.WriteString("\tinput.action == \"write\"\n")
			default:
				fmt.Fprintf(&b, "\t%s[input.action]\n", regoSet([]string{"read", "write"}))
			}
			if rng.Lo == rng.Hi {
				fmt.Fprintf(&b, "\tinput.id == %d\n", rng.Lo)
			} else {
				fmt.Fprintf(&b, "\tinput.id >= %d\n\tinput.id <= %d\n", rng.Lo, rng.Hi)
			}
			b.WriteString("}\n")
		}
	}
	return b.String()
}

// TranspileCEL renders the policy as a pair of CEL guard expressions plus
// the combined decision expression, one disjunct per rule.
func TranspileCEL(p *Policy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Transpiled from policy %q version %d.\n", p.Name, p.Version)
	b.WriteString("// Variables: subject (string), mode (string), action (string), id (uint).\n")
	b.WriteString("// decision: (allow && !deny) ? \"allow\" : \"deny\"\n")
	writeArm := func(head string, effect policy.Effect) {
		fmt.Fprintf(&b, "\n%s :=\n", head)
		first := true
		for i := range p.Rules {
			r := &p.Rules[i]
			if r.Effect != effect {
				continue
			}
			sep := "  || "
			if first {
				sep = "     "
				first = false
			}
			fmt.Fprintf(&b, "%s%s", sep, celRule(p, r))
			if r.Name != "" {
				fmt.Fprintf(&b, " // rule %q", r.Name)
			}
			b.WriteString("\n")
		}
		if first {
			b.WriteString("     false\n")
		}
	}
	writeArm("allow", policy.Allow)
	writeArm("deny", policy.Deny)
	return b.String()
}

// celRule renders one lowered rule as a conjunction of guards.
func celRule(p *Policy, r *Rule) string {
	var conds []string
	if r.Subject != Wildcard {
		conds = append(conds, fmt.Sprintf("subject == %q", p.Subjects[r.Subject]))
	}
	if modes := p.ModeNames(r.Modes); modes != nil {
		if len(modes) == 1 {
			conds = append(conds, fmt.Sprintf("mode == %q", string(modes[0])))
		} else {
			conds = append(conds, fmt.Sprintf("mode in %s", celList(modeStrings(modes))))
		}
	}
	switch r.Action {
	case policy.ActRead:
		conds = append(conds, `action == "read"`)
	case policy.ActWrite:
		conds = append(conds, `action == "write"`)
	default:
		conds = append(conds, fmt.Sprintf("action in %s", celList([]string{"read", "write"})))
	}
	var ranges []string
	for _, rng := range r.IDs {
		if rng.Lo == rng.Hi {
			ranges = append(ranges, fmt.Sprintf("id == %du", rng.Lo))
		} else {
			ranges = append(ranges, fmt.Sprintf("(id >= %du && id <= %du)", rng.Lo, rng.Hi))
		}
	}
	if len(ranges) == 1 {
		conds = append(conds, ranges[0])
	} else {
		conds = append(conds, "("+strings.Join(ranges, " || ")+")")
	}
	return "(" + strings.Join(conds, " && ") + ")"
}

func modeStrings(modes []policy.Mode) []string {
	out := make([]string, len(modes))
	for i, m := range modes {
		out[i] = string(m)
	}
	return out
}

func regoSet(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return "{" + strings.Join(quoted, ", ") + "}"
}

func celList(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return "[" + strings.Join(quoted, ", ") + "]"
}
