// Package policy defines the security-policy model at the heart of the
// paper's contribution: rules derived from threat modelling that grant or
// deny read/write access to bus messages per subject (node) and operating
// mode, together with a text DSL, a compiler producing per-node filter
// tables for the hardware policy engine, and signed, versioned policy
// bundles supporting the post-deployment update mechanism of §V-A.2.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Action is the access kind a rule covers. The paper's Table I derives
// read (R), write (W) or read-write (RW) policies per threat.
type Action uint8

// Actions.
const (
	// ActRead covers inbound message delivery to the node.
	ActRead Action = 1 << iota
	// ActWrite covers outbound message transmission from the node.
	ActWrite
	// ActReadWrite covers both directions.
	ActReadWrite = ActRead | ActWrite
)

// String renders the action in Table I notation (R, W, RW).
func (a Action) String() string {
	switch a {
	case ActRead:
		return "R"
	case ActWrite:
		return "W"
	case ActReadWrite:
		return "RW"
	default:
		return "invalid"
	}
}

// ParseAction reads Table I notation back into an Action.
func ParseAction(s string) (Action, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "R", "READ":
		return ActRead, nil
	case "W", "WRITE":
		return ActWrite, nil
	case "RW", "READWRITE", "READ-WRITE":
		return ActReadWrite, nil
	default:
		return 0, fmt.Errorf("policy: unknown action %q", s)
	}
}

// Has reports whether a includes all of b's access kinds.
func (a Action) Has(b Action) bool { return a&b == b }

// Effect is the outcome of a matching rule.
type Effect uint8

// Effects.
const (
	// Allow grants the access.
	Allow Effect = iota + 1
	// Deny blocks the access. Deny always overrides Allow.
	Deny
)

// String returns the effect keyword.
func (e Effect) String() string {
	switch e {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	default:
		return "invalid"
	}
}

// Mode names an operating mode of the device (the paper's car modes:
// Normal, Remote Diagnostic, Fail-safe). Modes are free-form identifiers so
// other domains can define their own.
type Mode string

// ModeSet is a set of operating modes. The empty set means "all modes".
type ModeSet map[Mode]struct{}

// NewModeSet builds a set from mode names.
func NewModeSet(modes ...Mode) ModeSet {
	s := make(ModeSet, len(modes))
	for _, m := range modes {
		s[m] = struct{}{}
	}
	return s
}

// Contains reports whether the set applies in mode m: an empty set applies
// in every mode.
func (s ModeSet) Contains(m Mode) bool {
	if len(s) == 0 {
		return true
	}
	_, ok := s[m]
	return ok
}

// Add inserts a mode, allocating the set if needed, and returns it.
func (s ModeSet) Add(m Mode) ModeSet {
	if s == nil {
		s = ModeSet{}
	}
	s[m] = struct{}{}
	return s
}

// Clone returns a copy of the set.
func (s ModeSet) Clone() ModeSet {
	if s == nil {
		return nil
	}
	c := make(ModeSet, len(s))
	for m := range s {
		c[m] = struct{}{}
	}
	return c
}

// Names returns the sorted mode names; nil for the universal set.
func (s ModeSet) Names() []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for m := range s {
		out = append(out, string(m))
	}
	sort.Strings(out)
	return out
}

// String renders the set ("*" for all modes).
func (s ModeSet) String() string {
	if len(s) == 0 {
		return "*"
	}
	return strings.Join(s.Names(), ",")
}

// IDRange is an inclusive range of CAN message identifiers.
type IDRange struct {
	Lo, Hi uint32
}

// Contains reports whether id falls in the range.
func (r IDRange) Contains(id uint32) bool { return id >= r.Lo && id <= r.Hi }

// String renders "0xLO..0xHI" or "0xID" for singletons.
func (r IDRange) String() string {
	if r.Lo == r.Hi {
		return fmt.Sprintf("0x%X", r.Lo)
	}
	return fmt.Sprintf("0x%X..0x%X", r.Lo, r.Hi)
}

// IDSet is a union of identifier ranges.
type IDSet []IDRange

// SingleID builds a one-identifier set.
func SingleID(id uint32) IDSet { return IDSet{{Lo: id, Hi: id}} }

// Span builds a one-range set.
func Span(lo, hi uint32) IDSet { return IDSet{{Lo: lo, Hi: hi}} }

// Contains reports whether id is in any range.
func (s IDSet) Contains(id uint32) bool {
	for _, r := range s {
		if r.Contains(id) {
			return true
		}
	}
	return false
}

// Normalize sorts the ranges, rejects inverted ranges and merges overlaps.
func (s IDSet) Normalize() (IDSet, error) {
	for _, r := range s {
		if r.Lo > r.Hi {
			return nil, fmt.Errorf("policy: inverted range %s", r)
		}
	}
	if len(s) <= 1 {
		return append(IDSet(nil), s...), nil
	}
	c := append(IDSet(nil), s...)
	sort.Slice(c, func(i, j int) bool {
		if c[i].Lo != c[j].Lo {
			return c[i].Lo < c[j].Lo
		}
		return c[i].Hi < c[j].Hi
	})
	out := IDSet{c[0]}
	for _, r := range c[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 && last.Hi+1 != 0 { // adjacent or overlapping
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// Enumerate lists every identifier in the set, capped at limit (0 = no cap).
// It returns an error when the set is larger than the cap, protecting
// callers that expand sets into hardware tables.
func (s IDSet) Enumerate(limit int) ([]uint32, error) {
	norm, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	var out []uint32
	for _, r := range norm {
		for id := r.Lo; ; id++ {
			out = append(out, id)
			if limit > 0 && len(out) > limit {
				return nil, fmt.Errorf("policy: id set exceeds %d entries", limit)
			}
			if id == r.Hi {
				break
			}
		}
	}
	return out, nil
}

// String renders the ranges separated by commas.
func (s IDSet) String() string {
	if len(s) == 0 {
		return "(none)"
	}
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// SubjectAll is the wildcard subject matching every node.
const SubjectAll = "*"

// Rule grants or denies one kind of access to a set of message identifiers
// for one subject in a set of modes.
type Rule struct {
	// Name optionally labels the rule (e.g. the threat it mitigates).
	Name string
	// Subject is the node the rule applies to, or SubjectAll.
	Subject string
	// Effect is Allow or Deny; Deny overrides Allow.
	Effect Effect
	// Action is the access direction(s) covered.
	Action Action
	// IDs is the set of message identifiers covered.
	IDs IDSet
	// Modes restricts the rule to operating modes; empty means all modes.
	Modes ModeSet
}

// Validation errors.
var (
	ErrNoSubject = errors.New("policy: rule has no subject")
	ErrNoIDs     = errors.New("policy: rule covers no identifiers")
	ErrBadEffect = errors.New("policy: invalid effect")
	ErrBadAction = errors.New("policy: invalid action")
)

// Validate checks structural validity and normalises the ID set.
func (r *Rule) Validate() error {
	if strings.TrimSpace(r.Subject) == "" {
		return fmt.Errorf("%w (rule %q)", ErrNoSubject, r.Name)
	}
	if r.Effect != Allow && r.Effect != Deny {
		return fmt.Errorf("%w: %d (rule %q)", ErrBadEffect, r.Effect, r.Name)
	}
	if r.Action != ActRead && r.Action != ActWrite && r.Action != ActReadWrite {
		return fmt.Errorf("%w: %d (rule %q)", ErrBadAction, r.Action, r.Name)
	}
	if len(r.IDs) == 0 {
		return fmt.Errorf("%w (rule %q)", ErrNoIDs, r.Name)
	}
	norm, err := r.IDs.Normalize()
	if err != nil {
		return fmt.Errorf("%v (rule %q)", err, r.Name)
	}
	r.IDs = norm
	return nil
}

// AppliesTo reports whether the rule matches the subject/mode/direction.
func (r Rule) AppliesTo(subject string, mode Mode, act Action) bool {
	if r.Subject != SubjectAll && r.Subject != subject {
		return false
	}
	if !r.Modes.Contains(mode) {
		return false
	}
	return r.Action.Has(act)
}

// String renders the rule in DSL syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Effect.String())
	b.WriteByte(' ')
	switch r.Action {
	case ActRead:
		b.WriteString("read ")
	case ActWrite:
		b.WriteString("write ")
	case ActReadWrite:
		b.WriteString("readwrite ")
	}
	b.WriteString(r.IDs.String())
	b.WriteString(" at ")
	b.WriteString(quoteSubject(r.Subject))
	if len(r.Modes) > 0 {
		b.WriteString(" in ")
		b.WriteString(r.Modes.String())
	}
	if r.Name != "" {
		fmt.Fprintf(&b, " as %q", r.Name)
	}
	return b.String()
}

// quoteSubject renders a subject so the DSL parser reads it back verbatim:
// the wildcard and plain identifiers stay bare, everything else is quoted.
func quoteSubject(s string) string {
	if s == SubjectAll {
		return s
	}
	if isBareIdent(s) {
		return s
	}
	return fmt.Sprintf("%q", s)
}

// isBareIdent reports whether the lexer would read s back as one identifier
// token with the same text.
func isBareIdent(s string) bool {
	if s == "" {
		return false
	}
	first := rune(s[0])
	if !(first == '_' || ('a' <= first && first <= 'z') || ('A' <= first && first <= 'Z')) {
		return false
	}
	if strings.Contains(s, "..") {
		return false // the lexer splits at the range operator
	}
	for _, r := range s {
		if !(r == '_' || r == '-' || r == '/' || r == '.' ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')) {
			return false
		}
	}
	return true
}

// Set is a named, versioned collection of rules with closed-world
// (default-deny) semantics: access not allowed by some rule is denied.
type Set struct {
	// Name identifies the policy set (e.g. "table-i").
	Name string
	// Version increases monotonically with each update.
	Version uint64
	// Rules in declaration order. Order never affects semantics (deny
	// overrides allow regardless of position); it is kept for provenance.
	Rules []Rule
}

// Validate validates every rule.
func (s *Set) Validate() error {
	if strings.TrimSpace(s.Name) == "" {
		return errors.New("policy: set has no name")
	}
	for i := range s.Rules {
		if err := s.Rules[i].Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// Decide evaluates the set for one access: Deny rules override Allow rules;
// with no matching rule the default is Deny (least privilege, §V-B).
func (s *Set) Decide(subject string, mode Mode, act Action, id uint32) Effect {
	allowed := false
	for _, r := range s.Rules {
		if !r.AppliesTo(subject, mode, act) || !r.IDs.Contains(id) {
			continue
		}
		if r.Effect == Deny {
			return Deny
		}
		allowed = true
	}
	if allowed {
		return Allow
	}
	return Deny
}

// Subjects returns the sorted set of distinct non-wildcard subjects.
func (s *Set) Subjects() []string {
	seen := map[string]struct{}{}
	for _, r := range s.Rules {
		if r.Subject != SubjectAll {
			seen[r.Subject] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Modes returns the sorted set of distinct modes mentioned by rules.
func (s *Set) Modes() []Mode {
	seen := map[Mode]struct{}{}
	for _, r := range s.Rules {
		for m := range r.Modes {
			seen[m] = struct{}{}
		}
	}
	out := make([]Mode, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the whole set in DSL syntax, parseable by Parse.
func (s *Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %q version %d {\n", s.Name, s.Version)
	b.WriteString("  default deny\n")
	for _, r := range s.Rules {
		b.WriteString("  ")
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}
