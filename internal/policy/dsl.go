package policy

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// The policy DSL is the textual form in which an OEM distributes policy
// definitions (§V-A.2 "the OEM can distribute a policy definition update").
// Grammar (comments run from '#' or '//' to end of line):
//
//	file      = "policy" STRING "version" INT "{" stmt* "}" .
//	stmt      = "default" "deny" | modeBlock | rule .
//	modeBlock = "mode" modeList "{" rule* "}" .
//	rule      = effect action idList "at" subject [ "in" modeList ] [ "as" STRING ] .
//	effect    = "allow" | "deny" .
//	action    = "read" | "write" | "readwrite" .
//	idList    = idRange { "," idRange } .
//	idRange   = NUMBER [ ".." NUMBER ] .
//	subject   = IDENT | STRING | "*" .
//	modeList  = IDENT { "," IDENT } .
//
// "default deny" is declarative documentation: the model is always
// default-deny. Declaring anything else is a parse error.

type tokenKind uint8

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString
	tokNumber
	tokLBrace
	tokRBrace
	tokComma
	tokDotDot
	tokStar
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokDotDot:
		return "'..'"
	case tokStar:
		return "'*'"
	default:
		return "invalid token"
	}
}

type token struct {
	kind tokenKind
	text string
	num  uint64
	line int
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("policy: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '/' || r == '.'
}

func (l *lexer) errf(format string, args ...any) *ParseError {
	return &ParseError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, line: l.line}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, line: l.line}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, line: l.line}, nil
	case c == '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{kind: tokDotDot, line: l.line}, nil
		}
		return token{}, l.errf("unexpected '.'")
	case c == '"':
		return l.lexString()
	case c >= '0' && c <= '9':
		return l.lexNumber()
	default:
		r := rune(c)
		if unicode.IsLetter(r) || r == '_' {
			return l.lexIdent()
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			text := b.String()
			// Constrain strings to printable UTF-8 (tab and newline enter
			// via escapes): anything else cannot round-trip through the
			// %q rendering the DSL emitter uses.
			if err := checkStringContent(l, text); err != nil {
				return token{}, err
			}
			return token{kind: tokString, text: text, line: l.line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			l.pos++
			esc := l.src[l.pos]
			switch esc {
			case '"', '\\':
				b.WriteByte(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, l.errf("unknown escape \\%c", esc)
			}
			l.pos++
		case '\n':
			return token{}, l.errf("unterminated string starting at offset %d", start)
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string")
}

// checkStringContent rejects string values the DSL emitter cannot render
// back losslessly: invalid UTF-8 and non-printable runes (other than tab
// and newline, which have dedicated escapes).
func checkStringContent(l *lexer, s string) *ParseError {
	if !utf8.ValidString(s) {
		return l.errf("string literal is not valid UTF-8")
	}
	for _, r := range s {
		if r == '\n' || r == '\t' {
			continue
		}
		if !unicode.IsPrint(r) {
			return l.errf("string literal contains non-printable rune %U", r)
		}
	}
	return nil
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
	} else {
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	// A trailing ".." belongs to the range operator, which ParseUint would
	// reject anyway since we stopped at the first non-digit.
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		return token{}, l.errf("bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: v, line: l.line}, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if r == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			break // ".." range operator, not part of the identifier
		}
		if !isIdentRune(r) {
			break
		}
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) *ParseError {
	return &ParseError{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %v, found %v", k, p.tok.kind)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) keyword(words ...string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected one of %v, found %v", words, p.tok.kind)
	}
	for _, w := range words {
		if p.tok.text == w {
			return w, p.advance()
		}
	}
	return "", p.errf("expected one of %v, found %q", words, p.tok.text)
}

// Parse reads a policy DSL document into a validated Set.
func Parse(src string) (*Set, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.keyword("policy"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if _, err := p.keyword("version"); err != nil {
		return nil, err
	}
	ver, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	set := &Set{Name: name.text, Version: ver.num}
	for p.tok.kind != tokRBrace {
		switch {
		case p.tok.kind == tokEOF:
			return nil, p.errf("unexpected end of input: missing '}'")
		case p.tok.kind == tokIdent && p.tok.text == "default":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.keyword("deny"); err != nil {
				return nil, &ParseError{Line: p.tok.line,
					Msg: "only 'default deny' is supported: the model is closed-world"}
			}
		case p.tok.kind == tokIdent && p.tok.text == "mode":
			if err := p.parseModeBlock(set); err != nil {
				return nil, err
			}
		default:
			r, err := p.parseRule(nil)
			if err != nil {
				return nil, err
			}
			set.Rules = append(set.Rules, r)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input after policy block")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// MustParse is Parse for static policies; it panics on error.
func MustParse(src string) *Set {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *parser) parseModeBlock(set *Set) error {
	if err := p.advance(); err != nil { // consume "mode"
		return err
	}
	modes, err := p.parseModeList()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return p.errf("unexpected end of input in mode block")
		}
		r, err := p.parseRule(modes)
		if err != nil {
			return err
		}
		set.Rules = append(set.Rules, r)
	}
	return p.advance() // consume '}'
}

func (p *parser) parseModeList() (ModeSet, error) {
	modes := ModeSet{}
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		modes = modes.Add(Mode(t.text))
		if p.tok.kind != tokComma {
			return modes, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseRule(blockModes ModeSet) (Rule, error) {
	var r Rule
	kw, err := p.keyword("allow", "deny")
	if err != nil {
		return r, err
	}
	if kw == "allow" {
		r.Effect = Allow
	} else {
		r.Effect = Deny
	}
	act, err := p.keyword("read", "write", "readwrite")
	if err != nil {
		return r, err
	}
	switch act {
	case "read":
		r.Action = ActRead
	case "write":
		r.Action = ActWrite
	case "readwrite":
		r.Action = ActReadWrite
	}
	ids, err := p.parseIDList()
	if err != nil {
		return r, err
	}
	r.IDs = ids
	if _, err := p.keyword("at"); err != nil {
		return r, err
	}
	switch p.tok.kind {
	case tokStar:
		r.Subject = SubjectAll
		if err := p.advance(); err != nil {
			return r, err
		}
	case tokIdent, tokString:
		r.Subject = p.tok.text
		if err := p.advance(); err != nil {
			return r, err
		}
	default:
		return r, p.errf("expected subject, found %v", p.tok.kind)
	}
	r.Modes = blockModes.Clone()
	for p.tok.kind == tokIdent && (p.tok.text == "in" || p.tok.text == "as") {
		switch p.tok.text {
		case "in":
			if len(r.Modes) > 0 {
				return r, p.errf("rule inside a mode block cannot re-declare modes")
			}
			if err := p.advance(); err != nil {
				return r, err
			}
			modes, err := p.parseModeList()
			if err != nil {
				return r, err
			}
			r.Modes = modes
		case "as":
			if err := p.advance(); err != nil {
				return r, err
			}
			name, err := p.expect(tokString)
			if err != nil {
				return r, err
			}
			r.Name = name.text
		}
	}
	return r, nil
}

func (p *parser) parseIDList() (IDSet, error) {
	var ids IDSet
	for {
		lo, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		r := IDRange{Lo: uint32(lo.num), Hi: uint32(lo.num)}
		if lo.num > 0xFFFFFFFF {
			return nil, p.errf("identifier %s out of 32-bit range", lo.text)
		}
		if p.tok.kind == tokDotDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			hi, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if hi.num > 0xFFFFFFFF {
				return nil, p.errf("identifier %s out of 32-bit range", hi.text)
			}
			r.Hi = uint32(hi.num)
		}
		ids = append(ids, r)
		if p.tok.kind != tokComma {
			return ids, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}
