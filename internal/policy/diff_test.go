package policy

import (
	"strings"
	"testing"
)

func TestDiffSetsGrantAndRevoke(t *testing.T) {
	oldSet := MustParse(`policy "p" version 1 {
  allow read 0x100 at ecu
  allow write 0x200 at sensors in Normal
}`)
	newSet := MustParse(`policy "p" version 2 {
  allow read 0x100, 0x101 at ecu
}`)
	d, err := DiffSets(oldSet, newSet, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Granted) != 1 || d.Granted[0] != (Access{"ecu", "Normal", ActRead, 0x101}) {
		t.Errorf("Granted = %v", d.Granted)
	}
	if len(d.Revoked) != 1 || d.Revoked[0] != (Access{"sensors", "Normal", ActWrite, 0x200}) {
		t.Errorf("Revoked = %v", d.Revoked)
	}
	out := d.String()
	if !strings.Contains(out, "+ ecu Normal R 0x101") || !strings.Contains(out, "- sensors Normal W 0x200") {
		t.Errorf("rendering = %q", out)
	}
}

func TestDiffSetsSemanticNotTextual(t *testing.T) {
	// Two textually different but semantically identical sets diff empty.
	a := MustParse(`policy "p" version 1 {
  allow read 0x100..0x102 at ecu
}`)
	b := MustParse(`policy "p" version 2 {
  allow read 0x100 at ecu
  allow read 0x101, 0x102 at ecu
}`)
	d, err := DiffSets(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("semantically equal sets diff non-empty: %s", d)
	}
	if !strings.Contains(d.String(), "no semantic changes") {
		t.Errorf("empty diff rendering = %q", d.String())
	}
}

func TestDiffSetsDenyOverridesShowAsRevocation(t *testing.T) {
	a := MustParse(`policy "p" version 1 {
  allow readwrite 0x10 at n
}`)
	b := MustParse(`policy "p" version 2 {
  allow readwrite 0x10 at n
  deny write 0x10 at n
}`)
	d, err := DiffSets(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Revoked) != 1 || d.Revoked[0].Action != ActWrite {
		t.Errorf("Revoked = %v", d.Revoked)
	}
	if len(d.Granted) != 0 {
		t.Errorf("Granted = %v", d.Granted)
	}
}

func TestDiffSetsModeScoping(t *testing.T) {
	a := MustParse(`policy "p" version 1 {
  allow read 0x10 at n
}`)
	b := MustParse(`policy "p" version 2 {
  allow read 0x10 at n in Diag
}`)
	// Narrowing an all-modes rule to one mode revokes it in other modes.
	d, err := DiffSets(a, b, DiffOptions{Modes: []Mode{"Normal", "Diag"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Revoked) != 1 || d.Revoked[0].Mode != "Normal" {
		t.Errorf("Revoked = %v", d.Revoked)
	}
	if len(d.Granted) != 0 {
		t.Errorf("Granted = %v", d.Granted)
	}
}

func TestDiffSetsLimit(t *testing.T) {
	a := MustParse(`policy "p" version 1 { allow read 0..200 at n }`)
	b := MustParse(`policy "p" version 2 { allow read 0..200 at n }`)
	if _, err := DiffSets(a, b, DiffOptions{Limit: 50}); err == nil {
		t.Error("limit not enforced")
	}
}

func TestDiffSetsValidation(t *testing.T) {
	bad := &Set{Name: "", Version: 1}
	good := MustParse(`policy "p" version 1 { allow read 1 at n }`)
	if _, err := DiffSets(bad, good, DiffOptions{}); err == nil {
		t.Error("invalid old set accepted")
	}
	if _, err := DiffSets(good, bad, DiffOptions{}); err == nil {
		t.Error("invalid new set accepted")
	}
}
