package risk

import (
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/car"
)

// determinismSpec keeps the sweep small but covers all three synthesized
// roles: CONN-1 contributes tamper+dos+chain, EVECU-3 a goal-bearing flood,
// INFO-2 a precondition-bound (setup-inheriting) mutate family.
func determinismSpec() *Spec {
	return &Spec{
		Model:   "connected-car",
		Seed:    99,
		Threats: []string{car.ThreatConnCritModify, car.ThreatECUTrackingOff, car.ThreatInfoStatusMod},
	}
}

// TestProfileByteIdenticalAcrossWorkers is the risk half of the engine's
// determinism contract: the rendered Profile must not change with the
// worker count. Runs under -race in CI, exercising the pooled arenas across
// the whole synthesize → sweep → calibrate path.
func TestProfileByteIdenticalAcrossWorkers(t *testing.T) {
	base, err := Run(determinismSpec(), RunConfig{Fleet: 6, Workers: 1, RootSeed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		out, err := Run(determinismSpec(), RunConfig{Fleet: 6, Workers: w, RootSeed: 1234})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if out.Profile.String() != base.Profile.String() {
			t.Errorf("workers=%d profile differs from workers=1:\n--- w=1\n%s--- w=%d\n%s",
				w, base.Profile, w, out.Profile)
		}
	}
}

// TestProfilePooledMatchesFresh requires the pooled arenas (default) and
// the from-scratch reference path to calibrate byte-identical profiles.
func TestProfilePooledMatchesFresh(t *testing.T) {
	pooled, err := Run(determinismSpec(), RunConfig{Fleet: 5, RootSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(determinismSpec(), RunConfig{Fleet: 5, RootSeed: 77, FreshVehicles: true})
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Profile.String() != fresh.Profile.String() {
		t.Errorf("pooled and fresh profiles differ:\n--- pooled\n%s--- fresh\n%s",
			pooled.Profile, fresh.Profile)
	}
}

// TestProfileSeedsReachSweep checks both seeds matter: the campaign seed
// drives family sub-seed derivation, the root seed the per-vehicle
// derivation — changing either must change the swept report.
func TestProfileSeedsReachSweep(t *testing.T) {
	base, err := Run(determinismSpec(), RunConfig{Fleet: 2, RootSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reseeded, err := Run(determinismSpec(), RunConfig{Fleet: 2, RootSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Report.String() == base.Report.String() {
		t.Error("changing the root seed did not change the swept report")
	}
	sp := determinismSpec()
	sp.Seed = 100
	respecced, err := Run(sp, RunConfig{Fleet: 2, RootSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var a, b []uint64
	for _, f := range base.Plan.Families {
		a = append(a, f.Seed)
	}
	for _, f := range respecced.Plan.Families {
		b = append(b, f.Seed)
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("family %d sub-seed did not move with the campaign seed", i)
		}
	}
}

// TestSynthesizeDeterministic: same analysis, same config — identical specs
// across repeated syntheses (the expansion is a pure function).
func TestSynthesizeDeterministic(t *testing.T) {
	a1, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Synthesize(a1, SynthesisConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Synthesize(a2, SynthesisConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Error("synthesis is not deterministic")
	}
	if _, err := (campaign.Compiler{}).Compile(s1); err != nil {
		t.Fatal(err)
	}
}
