// Package risk closes the loop between the paper's threat model and the
// fleet-scale campaign engine: instead of leaving DREAD scores as asserted
// rubric judgements, it measures them.
//
// The bridge is bidirectional:
//
//   - Forward (Synthesize): a rated threat-model analysis compiles into a
//     campaign.Spec. Each STRIDE-classified threat contributes generated
//     families — tampering threats become payload-mutation families over
//     their Table I baseline, denial-of-service threats become coordinated
//     flood families against the baseline's identifier, and
//     elevation-of-privilege threats become predicate-gated staged kill
//     chains. The threat model itself is therefore a campaign generator.
//   - Backward (Calibrate): the swept CampaignReport is reconciled with the
//     rubric scores. Per-regime block rates adjust Exploitability and
//     Affected-users, undefended success rates adjust Reproducibility, and
//     goal hits on flood/staged families adjust Damage. The result is a
//     Profile carrying rubric-vs-measured deltas per threat and a ranked
//     residual-risk table.
//
// Determinism matches the campaign engine's contract: a Profile is a pure
// function of (analysis, CampaignReport), and the report is byte-identical
// across worker counts and pooled/fresh arenas, so profiles are too. Family
// sub-seeds derive from the synthesized spec's seed through the stack's
// shared SplitMix64 step (campaign.Compiler), so sub-campaigns decorrelate
// deterministically. The sweep underneath is the vehicle-major executor
// (one engine pass over the fleet, every synthesized family per vehicle
// visit — see campaign.Sweep), which Calibrate inherits transparently: the
// family blocks it folds arrive in the same declaration order with the
// same per-(family, vehicle) seeds as the retired family-major sweeps.
package risk

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/car"
	"repro/internal/chaos"
	"repro/internal/shard"
	"repro/internal/threatmodel"
)

// Spec is a risk-run definition: which threat model to calibrate, which of
// its threats, and how the synthesized campaign is sized and swept. Shipped
// specs live under examples/threatmodels.
type Spec struct {
	// Model names a registered threat model (see ModelNames).
	Model string `json:"model"`
	// Name overrides the synthesized campaign's name
	// (default "risk-<model>").
	Name string `json:"name,omitempty"`
	// Threats filters the analysis to the listed threat IDs (empty = all).
	Threats []string `json:"threats,omitempty"`
	// Seed salts family sub-seed derivation in the synthesized campaign.
	Seed uint64 `json:"seed,omitempty"`
	// RootSeed pins the sweep's fleet root; when set it wins over the
	// caller's root seed so the spec fully determines the profile.
	RootSeed uint64 `json:"root_seed,omitempty"`
	// Fleet sizes the swept vehicle population; when set it wins over the
	// caller's fleet size.
	Fleet int `json:"fleet,omitempty"`
	// Regimes is the enforcement sweep of every synthesized family
	// (default none, hpe).
	Regimes []string `json:"regimes,omitempty"`
	// Payloads overrides the tamper families' payload-mutation axis.
	Payloads []campaign.HexBytes `json:"payloads,omitempty"`
	// FloodRate overrides the dos families' inter-frame gap.
	FloodRate campaign.Duration `json:"flood_rate,omitempty"`
	// FloodFrames overrides the dos families' frames-per-attacker count.
	FloodFrames int `json:"flood_frames,omitempty"`
}

// ParseSpec reads a JSON risk-run spec and validates its model reference.
func ParseSpec(src string) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(src))
	dec.DisallowUnknownFields()
	sp := &Spec{}
	if err := dec.Decode(sp); err != nil {
		return nil, fmt.Errorf("risk: bad spec: %w", err)
	}
	if _, ok := models[sp.Model]; !ok {
		return nil, fmt.Errorf("risk: unknown model %q (known: %s)",
			sp.Model, strings.Join(ModelNames(), ", "))
	}
	if sp.Fleet < 0 {
		return nil, fmt.Errorf("risk: negative fleet %d", sp.Fleet)
	}
	if sp.FloodFrames < 0 {
		return nil, fmt.Errorf("risk: negative flood_frames %d", sp.FloodFrames)
	}
	return sp, nil
}

// models registers the analysable threat models by name.
var models = map[string]func() (*threatmodel.Analysis, error){
	"connected-car": car.Analyze,
}

// ModelNames lists the registered threat models, sorted.
func ModelNames() []string {
	out := make([]string, 0, len(models))
	for k := range models {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Analysis runs the registered model's threat-modelling pipeline.
func Analysis(model string) (*threatmodel.Analysis, error) {
	fn, ok := models[model]
	if !ok {
		return nil, fmt.Errorf("risk: unknown model %q (known: %s)",
			model, strings.Join(ModelNames(), ", "))
	}
	return fn()
}

// RunConfig parameterises the sweep half of a risk run. Fleet and RootSeed
// are fallbacks: a spec that sets its own values wins, so a shipped spec
// yields one well-defined profile whatever flags the caller passes.
type RunConfig struct {
	// Fleet is the vehicle population when the spec leaves it unset
	// (default 1).
	Fleet int
	// Workers bounds the fleet engine's worker pool (default GOMAXPROCS).
	Workers int
	// RootSeed feeds the sweep when the spec leaves it unset.
	RootSeed uint64
	// FreshVehicles selects the engine's from-scratch reference path; the
	// profile is byte-identical either way.
	FreshVehicles bool
	// NoBatch selects the engine's cell-by-cell oracle executor instead of
	// the default batched one; the profile is byte-identical either way.
	NoBatch bool
	// Chaos arms the sweep supervisor's deterministic fault injection.
	Chaos *chaos.Plan
	// VerifySample cross-checks this fraction of batched cells against the
	// cell-by-cell oracle inline.
	VerifySample float64
	// MaxRetries bounds the supervisor's per-rung retry budget (default 2).
	MaxRetries int
	// PolicyBackend names the policy backend vehicles enforce with; the
	// profile is byte-identical across backends (decision equivalence).
	PolicyBackend string
	// Harness, when non-nil, overrides the backend-derived harness so the
	// sweep enforces with exactly this compiled policy — the OTA rollout
	// driver measures candidate bundles this way before any vehicle
	// installs them.
	Harness *attack.Harness
	// Shards partitions the sweep's fleet into that many contiguous index
	// ranges run as independent engine runs; the profile is byte-identical
	// across shard counts (<=1: unsharded).
	Shards int
	// SpawnShard, when non-nil, runs each shard range out of process (see
	// campaign.SweepConfig.SpawnShard).
	SpawnShard shard.Spawn
	// ShardParallelism bounds how many spawned shards run concurrently
	// (see campaign.SweepConfig.ShardParallelism).
	ShardParallelism int
}

// Outcome bundles every artifact of one risk run.
type Outcome struct {
	// Analysis is the rated threat model.
	Analysis *threatmodel.Analysis
	// Spec is the synthesized campaign.
	Spec *campaign.Spec
	// Plan is its compiled form.
	Plan *campaign.Plan
	// Report is the swept outcome.
	Report *campaign.CampaignReport
	// Profile is the calibrated risk profile.
	Profile *Profile
}

// Compile runs the pipeline's OEM-side half — analyse the model, synthesize
// the campaign, compile it — without sweeping anything. The returned
// Outcome carries Analysis, Spec and Plan only.
func Compile(sp *Spec) (*Outcome, error) {
	a, err := Analysis(sp.Model)
	if err != nil {
		return nil, err
	}
	spec, err := Synthesize(a, SynthesisConfig{
		Name:        sp.Name,
		Seed:        sp.Seed,
		Regimes:     sp.Regimes,
		Threats:     sp.Threats,
		Payloads:    sp.Payloads,
		FloodRate:   sp.FloodRate,
		FloodFrames: sp.FloodFrames,
	})
	if err != nil {
		return nil, err
	}
	plan, err := (campaign.Compiler{}).Compile(spec)
	if err != nil {
		return nil, err
	}
	return &Outcome{Analysis: a, Spec: spec, Plan: plan}, nil
}

// SweepSetup compiles the spec and resolves the sweep configuration the
// pipeline runs under — the spec's Fleet/RootSeed win over the config's, so
// a shipped spec yields one well-defined profile whatever flags the caller
// passes. Exported so a subprocess shard can rebuild the exact whole-fleet
// configuration its parent partitions (via campaign.EngineConfig) from the
// same spec file and flags.
func SweepSetup(sp *Spec, rc RunConfig) (*Outcome, campaign.SweepConfig, error) {
	out, err := Compile(sp)
	if err != nil {
		return nil, campaign.SweepConfig{}, err
	}
	fleet := rc.Fleet
	if sp.Fleet > 0 {
		fleet = sp.Fleet
	}
	root := rc.RootSeed
	if sp.RootSeed != 0 {
		root = sp.RootSeed
	}
	return out, campaign.SweepConfig{
		Fleet:            fleet,
		Workers:          rc.Workers,
		RootSeed:         root,
		FreshVehicles:    rc.FreshVehicles,
		NoBatch:          rc.NoBatch,
		Chaos:            rc.Chaos,
		VerifySample:     rc.VerifySample,
		MaxRetries:       rc.MaxRetries,
		PolicyBackend:    rc.PolicyBackend,
		Harness:          rc.Harness,
		Shards:           rc.Shards,
		SpawnShard:       rc.SpawnShard,
		ShardParallelism: rc.ShardParallelism,
	}, nil
}

// Run executes the full pipeline: analyse the model, synthesize the
// campaign, sweep it on the fleet engine, and calibrate the profile.
func Run(sp *Spec, rc RunConfig) (*Outcome, error) {
	out, scfg, err := SweepSetup(sp, rc)
	if err != nil {
		return nil, err
	}
	rep, err := campaign.Sweep(out.Plan, scfg)
	out.Report = rep
	if err != nil {
		// An unrecoverable sweep still yields the partial campaign report
		// (Health ledger included); the profile is not calibrated — scoring
		// DREAD deltas from an incomplete sweep would present partial block
		// rates as measurements.
		return out, err
	}
	prof, err := Calibrate(out.Analysis, rep)
	if err != nil {
		return out, err
	}
	out.Profile = prof
	return out, nil
}
