package risk

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/car"
	"repro/internal/stride"
	"repro/internal/threatmodel"
)

func analysis(t testing.TB) *threatmodel.Analysis {
	t.Helper()
	a, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSynthesizeRoleMapping checks the STRIDE → family mapping: every
// tampering threat gets a payload-mutation family, DoS threats with
// setup-free baselines get flood families, elevation threats get staged
// chains, and precondition-bound threats get mutate families only.
func TestSynthesizeRoleMapping(t *testing.T) {
	a := analysis(t)
	spec, err := Synthesize(a, SynthesisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*campaign.GeneratorSpec{}
	for i := range spec.Generators {
		byName[spec.Generators[i].Name] = &spec.Generators[i]
	}
	bases := attack.Scenarios()
	for _, th := range a.Threats {
		base, ok := campaign.BaseFor(bases, th.ID)
		if !ok {
			continue
		}
		declarative := base.Setup == nil && th.Goal != ""
		checks := []struct {
			role string
			cat  stride.Category
			kind string
			want bool
		}{
			{RoleTamper, stride.Tampering, campaign.KindMutate, th.Stride.Has(stride.Tampering)},
			{RoleDoS, stride.DenialOfService, campaign.KindFlood, th.Stride.Has(stride.DenialOfService) && declarative},
			{RoleChain, stride.ElevationOfPrivilege, campaign.KindStaged, th.Stride.Has(stride.ElevationOfPrivilege) && declarative},
		}
		for _, c := range checks {
			g, present := byName[c.role+"-"+th.ID]
			if present != c.want {
				t.Errorf("threat %s (%s): family %s-%s present=%v want %v",
					th.ID, th.Stride, c.role, th.ID, present, c.want)
				continue
			}
			if present && g.Kind != c.kind {
				t.Errorf("family %s has kind %s, want %s", g.Name, g.Kind, c.kind)
			}
		}
	}
	// The synthesized spec must satisfy the DSL round-trip invariant.
	reparsed, err := campaign.Parse(spec.String())
	if err != nil {
		t.Fatalf("synthesized spec does not re-parse: %v\n%s", err, spec)
	}
	if !reflect.DeepEqual(spec, reparsed) {
		t.Errorf("synthesized spec changed through render round trip\n--- built ---\n%+v\n--- reparsed ---\n%+v", spec, reparsed)
	}
}

// TestSynthesizeFilter restricts synthesis to explicit threat IDs and
// rejects unknown ones.
func TestSynthesizeFilter(t *testing.T) {
	a := analysis(t)
	spec, err := Synthesize(a, SynthesisConfig{Threats: []string{car.ThreatConnCritModify}})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range spec.Generators {
		if !strings.HasSuffix(g.Name, "-"+car.ThreatConnCritModify) {
			t.Errorf("filtered synthesis produced foreign family %q", g.Name)
		}
	}
	if len(spec.Generators) != 3 { // STIDE, no setup: tamper + dos + chain
		t.Errorf("CONN-1 synthesized %d families, want 3", len(spec.Generators))
	}
	if _, err := Synthesize(a, SynthesisConfig{Threats: []string{"NOPE-1"}}); err == nil {
		t.Error("unknown threat filter accepted")
	}
}

// TestSynthesizeRejectsUnknownGoal: a threat declaring a goal outside the
// campaign predicate vocabulary must fail loudly, not silently mismeasure.
func TestSynthesizeRejectsUnknownGoal(t *testing.T) {
	a := analysis(t)
	a.Threats[0].Goal = "not-a-predicate"
	if _, err := Synthesize(a, SynthesisConfig{}); err == nil {
		t.Error("unknown goal predicate accepted")
	}
}

// TestCalibrateExampleModel runs the full pipeline on the example spec and
// checks the acceptance contract: every synthesized family yields measured
// adjustments, every covered threat reconciles rubric vs measured, and the
// defended block rates land where the paper's Table I evaluation puts them.
func TestCalibrateExampleModel(t *testing.T) {
	out, err := Run(&Spec{Model: "connected-car", Seed: 42, RootSeed: 42}, RunConfig{Fleet: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := out.Profile
	if p.Model != "connected-car" {
		t.Errorf("model = %q", p.Model)
	}
	if len(p.Uncovered) != 0 {
		t.Errorf("uncovered threats on the full model: %v", p.Uncovered)
	}
	if len(p.Threats) != 16 {
		t.Fatalf("calibrated %d threats, want 16", len(p.Threats))
	}
	families := 0
	for _, tc := range p.Threats {
		if len(tc.Families) == 0 {
			t.Errorf("threat %s has no family evidence", tc.ThreatID)
		}
		for _, f := range tc.Families {
			families++
			if f.Undefended.Runs == 0 || f.Defended.Runs == 0 {
				t.Errorf("family %s missing evidence: undef=%d def=%d runs",
					f.Name, f.Undefended.Runs, f.Defended.Runs)
			}
			if f.Role != RoleTamper && f.GoalRuns == 0 {
				t.Errorf("goal-bearing family %s recorded no goal runs", f.Name)
			}
		}
		if tc.Measured.Validate() != nil {
			t.Errorf("threat %s measured score out of range: %v", tc.ThreatID, tc.Measured)
		}
		if tc.Delta.Discoverability != 0 {
			t.Errorf("threat %s moved discoverability: %v", tc.ThreatID, tc.Delta)
		}
	}
	if families != len(out.Report.Families) {
		t.Errorf("profile covers %d families, report has %d", families, len(out.Report.Families))
	}
	// Ranking invariant: residual non-increasing.
	for i := 1; i < len(p.Threats); i++ {
		if p.Threats[i].Residual > p.Threats[i-1].Residual {
			t.Errorf("residual ranking broken at %d: %f > %f",
				i, p.Threats[i].Residual, p.Threats[i-1].Residual)
		}
	}
}

// TestCalibrateBands pins the evidence → delta banding on synthetic
// summaries, the contract DESIGN.md §8 documents.
func TestCalibrateBands(t *testing.T) {
	sum := func(runs, succ, blocked int) attack.Summary {
		return attack.Summary{Runs: runs, Succeeded: succ, Blocked: blocked}
	}
	cases := []struct {
		name                        string
		undef, def                  attack.Summary
		goalRuns, goalHits, defHits int
		want                        Delta
	}{
		{"fully blocked, always lands undefended",
			sum(10, 10, 0), sum(10, 0, 10), 0, 0, 0,
			Delta{Reproducibility: 1, Exploitability: -2, AffectedUsers: -2}},
		{"defence leaks half",
			sum(10, 10, 0), sum(10, 5, 5), 0, 0, 0,
			Delta{Reproducibility: 1, Exploitability: 2, AffectedUsers: -1}},
		{"defence leaks a little",
			sum(10, 10, 0), sum(10, 1, 9), 0, 0, 0,
			Delta{Reproducibility: 1, Exploitability: 1, AffectedUsers: -1}},
		{"never lands even undefended",
			sum(10, 0, 10), sum(10, 0, 10), 0, 0, 0,
			Delta{Reproducibility: -2, Exploitability: -2, AffectedUsers: -2}},
		{"goal hit under defence raises damage",
			sum(10, 10, 0), sum(10, 2, 8), 20, 12, 2,
			Delta{Reproducibility: 1, Exploitability: 1, AffectedUsers: -1, Damage: 1}},
		{"goal never materialises lowers damage",
			sum(10, 10, 0), sum(10, 0, 10), 20, 0, 0,
			Delta{Reproducibility: 1, Exploitability: -2, AffectedUsers: -2, Damage: -1}},
		{"no defended evidence leaves exploitability alone",
			sum(10, 10, 0), attack.Summary{}, 0, 0, 0,
			Delta{Reproducibility: 1, AffectedUsers: 1}},
		{"blocked with false positives is not a clean block",
			sum(10, 10, 0), attack.Summary{Runs: 10, FalsePositives: 10}, 0, 0, 0,
			Delta{Reproducibility: 1, Exploitability: -1, AffectedUsers: -2}},
	}
	for _, c := range cases {
		got := deltaFrom(c.undef, c.def, c.goalRuns, c.goalHits, c.defHits)
		if got != c.want {
			t.Errorf("%s: delta = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCalibrateRejectsForeignReports: a report that was not produced by a
// synthesized campaign must be refused, not misattributed.
func TestCalibrateRejectsForeignReports(t *testing.T) {
	a := analysis(t)
	for _, rep := range []*campaign.CampaignReport{
		{Campaign: "x", Families: []campaign.FamilyReport{{Name: "spot", Kind: campaign.KindMutate}}},
		{Campaign: "x", Families: []campaign.FamilyReport{{Name: "tamper-NOPE-9", Kind: campaign.KindMutate}}},
		{Campaign: "x", Families: []campaign.FamilyReport{{Name: "tamper-" + car.ThreatEPSDeactivate, Kind: campaign.KindFlood}}},
		{Campaign: "x"},
	} {
		if _, err := Calibrate(a, rep); err == nil {
			t.Errorf("foreign report %v accepted", rep.Families)
		}
	}
}

// TestParseSpec checks the JSON run-spec branch: defaults, unknown models,
// unknown fields and range errors.
func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec(`{"model":"connected-car","fleet":4,"flood_rate":"150us"}`)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Fleet != 4 || sp.Model != "connected-car" {
		t.Errorf("spec = %+v", sp)
	}
	for _, bad := range []string{
		`{"model":"unknown-model"}`,
		`{"model":"connected-car","fleet":-1}`,
		`{"model":"connected-car","flood_frames":-2}`,
		`{"model":"connected-car","surprise":1}`,
		`{`,
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("bad spec accepted: %s", bad)
		}
	}
}

// TestRunSpecOverrides: a spec's own fleet/root-seed pin the profile; the
// caller's values only fill gaps.
func TestRunSpecOverrides(t *testing.T) {
	sp := &Spec{Model: "connected-car", Threats: []string{car.ThreatInfoStatusMod}, Fleet: 2, RootSeed: 7}
	out, err := Run(sp, RunConfig{Fleet: 9, RootSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.Fleet != 2 || out.Report.RootSeed != 7 {
		t.Errorf("spec values lost: fleet=%d root=%d", out.Report.Fleet, out.Report.RootSeed)
	}
	sp2 := &Spec{Model: "connected-car", Threats: []string{car.ThreatInfoStatusMod}}
	out2, err := Run(sp2, RunConfig{Fleet: 3, RootSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Report.Fleet != 3 || out2.Report.RootSeed != 99 {
		t.Errorf("caller fallbacks lost: fleet=%d root=%d", out2.Report.Fleet, out2.Report.RootSeed)
	}
}
