package risk

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/dread"
	"repro/internal/engine"
	"repro/internal/stride"
	"repro/internal/threatmodel"
)

// Delta is a per-component DREAD adjustment derived from sweep evidence.
// Each component is bounded to [-2, +2]; Discoverability is always 0 — the
// simulation measures what an attack achieves, not how easily its weakness
// is found, and pretending otherwise would launder a guess through the
// calibration.
type Delta struct {
	Damage, Reproducibility, Exploitability, AffectedUsers, Discoverability int
}

// IsZero reports whether no component moved.
func (d Delta) IsZero() bool { return d == Delta{} }

// String renders the delta compactly ("D+1 R+0 E-2 A-2 Di+0").
func (d Delta) String() string {
	return fmt.Sprintf("D%+d R%+d E%+d A%+d Di%+d",
		d.Damage, d.Reproducibility, d.Exploitability, d.AffectedUsers, d.Discoverability)
}

// FamilyEvidence is the measured outcome of one synthesized family, split
// into the undefended (regime none) and defended (every other regime)
// halves the calibration bands are computed from.
type FamilyEvidence struct {
	// Name and Kind echo the family; Role is the synthesis role parsed back
	// out of the name (tamper, dos, chain).
	Name string
	Kind string
	Role string
	// Scenarios is the family's per-vehicle scenario count.
	Scenarios int
	// Undefended folds the family's regime-none aggregates; Defended folds
	// every enforcing regime.
	Undefended attack.Summary
	Defended   attack.Summary
	// GoalRuns/GoalHits count goal-predicate evaluations and hits on
	// goal-bearing (dos/chain) families; DefendedGoalHits restricts hits to
	// enforcing regimes. All three are zero for tamper families.
	GoalRuns         int
	GoalHits         int
	DefendedGoalHits int
	// Delta is the family-local adjustment the same banding yields from this
	// family's evidence alone.
	Delta Delta
}

// ThreatCalibration reconciles one threat's rubric score with the folded
// evidence of its synthesized families.
type ThreatCalibration struct {
	// ThreatID and Stride echo the rated threat.
	ThreatID string
	Stride   stride.Set
	// Rubric is the analyst score out of threatmodel.Analyze; Measured is
	// the rubric with the evidence delta applied (clamped to [0, 10]).
	Rubric   dread.Score
	Measured dread.Score
	// RubricRating and MeasuredRating are the severity bands of the two.
	RubricRating   dread.Rating
	MeasuredRating dread.Rating
	// Delta is the threat-level adjustment (evidence folded across
	// families).
	Delta Delta
	// UndefendedSuccess, DefendedSuccess and DefendedBlock summarise the
	// folded rates the bands were derived from.
	UndefendedSuccess float64
	DefendedSuccess   float64
	DefendedBlock     float64
	// GoalRuns/GoalHits/DefendedGoalHits fold the goal evidence.
	GoalRuns         int
	GoalHits         int
	DefendedGoalHits int
	// Residual is the ranked residual-risk mass: the measured average
	// discounted by the defended block rate. A threat the defence fully
	// blocks retains no residual risk however damaging its rubric says it
	// would be.
	Residual float64
	// Families holds the per-family evidence, in report order.
	Families []FamilyEvidence
}

// Profile is the calibrated risk profile of one swept model: the paper's
// DREAD table re-derived from measurement.
type Profile struct {
	// Model names the analysed use case.
	Model string
	// Campaign, Version, Seed, RootSeed, Fleet and Cells echo the sweep.
	Campaign string
	Version  uint64
	Seed     uint64
	RootSeed uint64
	Fleet    int
	Cells    int
	// Threats is ranked by descending residual risk (ties: higher measured
	// average first, then threat ID).
	Threats []ThreatCalibration
	// Uncovered lists analysis threats that synthesized no family, sorted.
	Uncovered []string
	// Health echoes the sweep's containment ledger — evidence provenance: a
	// profile calibrated from a sweep that quarantined cells says so.
	// HealthEnabled forces its line even when all-zero.
	Health        engine.Health
	HealthEnabled bool
}

// roleKinds maps synthesis roles to the generator kind they must carry —
// a consistency check that the report really came from a synthesized spec.
var roleKinds = map[string]string{
	RoleTamper: campaign.KindMutate,
	RoleDoS:    campaign.KindFlood,
	RoleChain:  campaign.KindStaged,
}

// Calibrate reconciles a rated analysis with the swept report of its
// synthesized campaign. It is a pure function of its inputs: the report is
// byte-identical across worker counts and pooled/fresh arenas, so the
// profile is too.
func Calibrate(a *threatmodel.Analysis, rep *campaign.CampaignReport) (*Profile, error) {
	byID := map[string]*ThreatCalibration{}
	order := []string{}
	for i := range rep.Families {
		fam := &rep.Families[i]
		role, threatID, ok := strings.Cut(fam.Name, "-")
		if !ok || roleKinds[role] == "" {
			return nil, fmt.Errorf("risk: family %q was not synthesized (want <role>-<threat>)", fam.Name)
		}
		if roleKinds[role] != fam.Kind {
			return nil, fmt.Errorf("risk: family %q: role %s expects kind %s, got %s",
				fam.Name, role, roleKinds[role], fam.Kind)
		}
		t, found := a.Threat(threatID)
		if !found {
			return nil, fmt.Errorf("risk: family %q references unknown threat %q", fam.Name, threatID)
		}
		tc := byID[threatID]
		if tc == nil {
			tc = &ThreatCalibration{
				ThreatID:     t.ID,
				Stride:       t.Stride,
				Rubric:       t.Score,
				RubricRating: t.Rating,
			}
			byID[threatID] = tc
			order = append(order, threatID)
		}
		tc.Families = append(tc.Families, foldFamily(fam, role))
	}
	if len(byID) == 0 {
		return nil, fmt.Errorf("risk: report %q carries no synthesized families", rep.Campaign)
	}

	p := &Profile{
		Model:         a.UseCase.Name,
		Campaign:      rep.Campaign,
		Version:       rep.Version,
		Seed:          rep.Seed,
		RootSeed:      rep.RootSeed,
		Fleet:         rep.Fleet,
		Cells:         rep.Cells,
		Health:        rep.Health,
		HealthEnabled: rep.HealthEnabled,
	}
	for _, id := range order {
		tc := byID[id]
		finishThreat(tc)
		p.Threats = append(p.Threats, *tc)
	}
	sort.SliceStable(p.Threats, func(i, j int) bool {
		a, b := &p.Threats[i], &p.Threats[j]
		if a.Residual != b.Residual {
			return a.Residual > b.Residual
		}
		if ma, mb := a.Measured.Average(), b.Measured.Average(); ma != mb {
			return ma > mb
		}
		return a.ThreatID < b.ThreatID
	})
	for _, t := range a.Threats {
		if byID[t.ID] == nil {
			p.Uncovered = append(p.Uncovered, t.ID)
		}
	}
	sort.Strings(p.Uncovered)
	return p, nil
}

// foldFamily splits one family report into evidence halves and computes the
// family-local delta.
func foldFamily(fam *campaign.FamilyReport, role string) FamilyEvidence {
	ev := FamilyEvidence{Name: fam.Name, Kind: fam.Kind, Role: role, Scenarios: fam.Scenarios}
	for _, rs := range fam.Regimes {
		if rs.Regime == attack.EnforceNone {
			ev.Undefended.Merge(rs.Summary)
		} else {
			ev.Defended.Merge(rs.Summary)
		}
		if role != RoleTamper {
			// Flood and staged scenarios succeed exactly when the threat's
			// goal predicate holds, so their success counters are goal
			// evidence.
			ev.GoalRuns += rs.Summary.Runs
			ev.GoalHits += rs.Summary.Succeeded
			if rs.Regime != attack.EnforceNone {
				ev.DefendedGoalHits += rs.Summary.Succeeded
			}
		}
	}
	ev.Delta = deltaFrom(ev.Undefended, ev.Defended, ev.GoalRuns, ev.GoalHits, ev.DefendedGoalHits)
	return ev
}

// finishThreat folds the threat's family evidence and derives the measured
// score, rating and residual-risk mass.
func finishThreat(tc *ThreatCalibration) {
	var undef, def attack.Summary
	for i := range tc.Families {
		f := &tc.Families[i]
		undef.Merge(f.Undefended)
		def.Merge(f.Defended)
		tc.GoalRuns += f.GoalRuns
		tc.GoalHits += f.GoalHits
		tc.DefendedGoalHits += f.DefendedGoalHits
	}
	tc.UndefendedSuccess = undef.SuccessRate()
	tc.DefendedSuccess = def.SuccessRate()
	tc.DefendedBlock = def.BlockRate()
	tc.Delta = deltaFrom(undef, def, tc.GoalRuns, tc.GoalHits, tc.DefendedGoalHits)
	tc.Measured = applyDelta(tc.Rubric, tc.Delta)
	tc.MeasuredRating = tc.Measured.Rate()
	tc.Residual = tc.Measured.Average() * (1 - tc.DefendedBlock)
}

// deltaFrom maps sweep evidence onto bounded DREAD adjustments. The bands
// are deliberately coarse — the sweep is evidence, not an oracle — and are
// the calibration contract DESIGN.md §8 documents:
//
//   - Reproducibility follows the undefended success rate: an attack that
//     lands every time is ReproAlways territory (+1); one that never lands
//     even with no defence loses two points.
//   - Exploitability follows what the defended regimes let through: any
//     success under enforcement raises it (+1, +2 from half the runs); a
//     defence that cleanly blocks everything lowers it by two.
//   - Affected users follows the block rates: a fully blocking defence
//     means a patched fleet has no affected users (-2); a partial defence
//     shrinks the population (-1); an unconditional undefended success
//     keeps the whole fleet exposed (+1).
//   - Damage follows goal hits: the declared effect materialising under
//     enforcement is worse than assessed (+1); never materialising at all
//     is better (-1).
//   - Discoverability never moves (see Delta).
func deltaFrom(undef, def attack.Summary, goalRuns, goalHits, defGoalHits int) Delta {
	var d Delta
	us := undef.SuccessRate()
	ds := def.SuccessRate()
	switch {
	case undef.Runs == 0:
		// No undefended evidence: leave the rubric alone.
	case us >= 0.999:
		d.Reproducibility = 1
	case us >= 0.5:
		d.Reproducibility = 0
	case us > 0:
		d.Reproducibility = -1
	default:
		d.Reproducibility = -2
	}
	switch {
	case def.Runs == 0:
		// Swept without an enforcing regime: no exploitability evidence.
	case ds >= 0.5:
		d.Exploitability = 2
	case ds > 0:
		d.Exploitability = 1
	case def.BlockRate() >= 0.999:
		d.Exploitability = -2
	default:
		d.Exploitability = -1
	}
	switch {
	case def.Runs > 0 && ds == 0:
		d.AffectedUsers = -2
	case def.Runs > 0 && ds < us:
		d.AffectedUsers = -1
	case us >= 0.999:
		d.AffectedUsers = 1
	}
	switch {
	case goalRuns == 0:
		// No goal-bearing family: damage evidence absent.
	case defGoalHits > 0:
		d.Damage = 1
	case goalHits == 0:
		d.Damage = -1
	}
	return d
}

// applyDelta shifts each rubric component by its delta, clamped to the
// DREAD scale.
func applyDelta(s dread.Score, d Delta) dread.Score {
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > dread.MaxComponent {
			return dread.MaxComponent
		}
		return v
	}
	return dread.MustNew(
		clamp(s.Damage+d.Damage),
		clamp(s.Reproducibility+d.Reproducibility),
		clamp(s.Exploitability+d.Exploitability),
		clamp(s.AffectedUsers+d.AffectedUsers),
		clamp(s.Discoverability+d.Discoverability),
	)
}

// String renders the profile deterministically: no worker counts, no
// wall-clock values — the risk analogue of CampaignReport.String.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "risk profile of %q — campaign %q v%d seed %#x, root seed %#x, fleet %d, %d cells\n",
		p.Model, p.Campaign, p.Version, p.Seed, p.RootSeed, p.Fleet, p.Cells)
	if p.HealthEnabled || !p.Health.IsZero() {
		fmt.Fprintf(&b, "health: %s\n", p.Health)
	}
	for i := range p.Threats {
		tc := &p.Threats[i]
		fmt.Fprintf(&b, "%2d. %-8s [%s] rubric %s -> measured %s (%s -> %s) delta %s residual %.2f\n",
			i+1, tc.ThreatID, tc.Stride, tc.Rubric, tc.Measured,
			tc.RubricRating, tc.MeasuredRating, tc.Delta, tc.Residual)
		for j := range tc.Families {
			f := &tc.Families[j]
			fmt.Fprintf(&b, "    %-16s (%s) scen=%d undef %s | def %s",
				f.Name, f.Kind, f.Scenarios, f.Undefended, f.Defended)
			if f.GoalRuns > 0 {
				fmt.Fprintf(&b, " | goal %d/%d (def %d)", f.GoalHits, f.GoalRuns, f.DefendedGoalHits)
			}
			fmt.Fprintf(&b, " delta %s\n", f.Delta)
		}
	}
	if len(p.Uncovered) > 0 {
		fmt.Fprintf(&b, "uncovered: %s\n", strings.Join(p.Uncovered, ", "))
	}
	return b.String()
}
