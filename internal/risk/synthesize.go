package risk

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/policy"
	"repro/internal/stride"
	"repro/internal/threatmodel"
)

// Synthesized-family name prefixes. Calibrate parses them back out of the
// CampaignReport, so the prefix is the forward/backward contract.
const (
	// RoleTamper marks payload-mutation families (tampering threats).
	RoleTamper = "tamper"
	// RoleDoS marks coordinated flood families (denial-of-service threats).
	RoleDoS = "dos"
	// RoleChain marks staged kill-chain families (elevation threats).
	RoleChain = "chain"
)

// SynthesisConfig parameterises the threat-model → campaign compilation.
// The zero value synthesizes every threat with the default axes.
type SynthesisConfig struct {
	// Name labels the campaign (default "risk-<use case>").
	Name string
	// Seed salts family sub-seed derivation (campaign.Spec.Seed).
	Seed uint64
	// Regimes is the enforcement sweep (default none, hpe).
	Regimes []string
	// Threats filters synthesis to the listed threat IDs (empty = all);
	// unknown IDs are an error.
	Threats []string
	// Payloads is the tamper families' payload-mutation axis
	// (default 01, FF, AA).
	Payloads []campaign.HexBytes
	// FloodRate is the dos families' inter-frame gap (default 250us).
	FloodRate campaign.Duration
	// FloodFrames is the dos families' frames-per-attacker (default 24).
	FloodFrames int
	// Bases is the baseline scenario catalog threats are grounded in
	// (default attack.Scenarios(), the Table I set).
	Bases []attack.Scenario
}

func (cfg *SynthesisConfig) applyDefaults(useCase string) {
	if cfg.Name == "" {
		cfg.Name = "risk-" + useCase
	}
	if len(cfg.Regimes) == 0 {
		cfg.Regimes = []string{"none", "hpe"}
	}
	if len(cfg.Payloads) == 0 {
		cfg.Payloads = []campaign.HexBytes{{0x01}, {0xFF}, {0xAA}}
	}
	if cfg.FloodRate <= 0 {
		cfg.FloodRate = campaign.Duration(250 * time.Microsecond)
	}
	if cfg.FloodFrames <= 0 {
		cfg.FloodFrames = 24
	}
	if len(cfg.Bases) == 0 {
		cfg.Bases = attack.Scenarios()
	}
}

// Synthesize compiles a rated analysis into a campaign spec: one family per
// (threat, STRIDE role) pair, named "<role>-<threat id>".
//
// Role mapping:
//
//   - Tampering → a mutate family over the threat's baseline scenario with
//     the payload axis crossed against the threat's declared modes. Mutants
//     inherit the baseline's setup and success check, so precondition-bound
//     threats stay measurable.
//   - Denial of service → a flood family: the baseline's attacker streams
//     the baseline's identifier at the flood rate; the threat's Goal
//     predicate decides success.
//   - Elevation of privilege → a staged kill chain: the baseline injections
//     as the breach stage, then a persistence stage gated on the threat's
//     Goal having materialised.
//
// Flood and staged families are declarative (no setup hooks), so they are
// only synthesized for threats whose baseline needs no setup and whose Goal
// names a known campaign predicate; tamper families carry the rest. The
// spec is canonical (Normalize) and validated, so it satisfies the DSL
// round-trip invariant and compiles on the default catalog.
func Synthesize(a *threatmodel.Analysis, cfg SynthesisConfig) (*campaign.Spec, error) {
	cfg.applyDefaults(a.UseCase.Name)
	threats, err := selectThreats(a, cfg.Threats)
	if err != nil {
		return nil, err
	}
	var gens []campaign.GeneratorSpec
	for _, t := range threats {
		base, ok := campaign.BaseFor(cfg.Bases, t.ID)
		if !ok {
			// No executable baseline: the threat cannot be grounded in the
			// simulation. An explicit filter asking for it is an error; a
			// whole-model synthesis skips it (Calibrate reports it as
			// uncovered).
			if len(cfg.Threats) > 0 {
				return nil, fmt.Errorf("risk: threat %s has no baseline scenario", t.ID)
			}
			continue
		}
		if t.Goal != "" && !campaign.HasPredicate(t.Goal) {
			return nil, fmt.Errorf("risk: threat %s declares unknown goal predicate %q", t.ID, t.Goal)
		}
		goalOK := t.Goal != "" && base.Setup == nil
		if t.Stride.Has(stride.Tampering) {
			gens = append(gens, tamperFamily(&cfg, t))
		}
		if t.Stride.Has(stride.DenialOfService) && goalOK {
			gens = append(gens, floodFamily(&cfg, t, &base))
		}
		if t.Stride.Has(stride.ElevationOfPrivilege) && goalOK {
			gens = append(gens, chainFamily(t, &base))
		}
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("risk: model %q synthesized no families", a.UseCase.Name)
	}
	spec := &campaign.Spec{
		Name:       cfg.Name,
		Version:    1,
		Seed:       cfg.Seed,
		Regimes:    cfg.Regimes,
		Generators: gens,
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("risk: synthesized spec invalid: %w", err)
	}
	return spec, nil
}

// selectThreats applies the ID filter, preserving analysis (severity) order.
func selectThreats(a *threatmodel.Analysis, filter []string) ([]threatmodel.RatedThreat, error) {
	if len(filter) == 0 {
		return a.Threats, nil
	}
	want := map[string]bool{}
	for _, id := range filter {
		if _, ok := a.Threat(id); !ok {
			return nil, fmt.Errorf("risk: model has no threat %q", id)
		}
		want[id] = true
	}
	out := make([]threatmodel.RatedThreat, 0, len(want))
	for _, t := range a.Threats {
		if want[t.ID] {
			out = append(out, t)
		}
	}
	return out, nil
}

// tamperFamily builds the payload-mutation family of a tampering threat.
func tamperFamily(cfg *SynthesisConfig, t threatmodel.RatedThreat) campaign.GeneratorSpec {
	return campaign.GeneratorSpec{
		Kind:     campaign.KindMutate,
		Name:     RoleTamper + "-" + t.ID,
		Base:     t.ID,
		Modes:    modeWords(t.Modes),
		Payloads: cfg.Payloads,
	}
}

// floodFamily builds the coordinated-flood family of a DoS threat: the
// baseline attacker floods the baseline identifier, success measured by the
// threat's goal predicate.
func floodFamily(cfg *SynthesisConfig, t threatmodel.RatedThreat, base *attack.Scenario) campaign.GeneratorSpec {
	inj := base.Injections[0]
	return campaign.GeneratorSpec{
		Kind:    campaign.KindFlood,
		Name:    RoleDoS + "-" + t.ID,
		ID:      inj.ID,
		Payload: campaign.HexBytes(inj.Data),
		Teams:   [][]string{{base.Attacker}},
		Rates:   []campaign.Duration{cfg.FloodRate},
		Frames:  []int{cfg.FloodFrames},
		Goal:    t.Goal,
	}
}

// chainFamily builds the staged kill chain of an elevation threat: breach
// with the baseline injections, then persist — re-asserting the effect —
// only if the goal predicate reports the breach landed.
func chainFamily(t threatmodel.RatedThreat, base *attack.Scenario) campaign.GeneratorSpec {
	breach := make([]campaign.InjectionSpec, len(base.Injections))
	for i, inj := range base.Injections {
		breach[i] = campaign.InjectionSpec{
			ID:     inj.ID,
			Data:   campaign.HexBytes(inj.Data),
			Repeat: inj.Repeat,
			Gap:    campaign.Duration(inj.Gap),
		}
	}
	last := base.Injections[len(base.Injections)-1]
	persist := campaign.InjectionSpec{
		ID:     last.ID,
		Data:   campaign.HexBytes(last.Data),
		Repeat: 2,
		Gap:    campaign.Duration(time.Millisecond),
	}
	return campaign.GeneratorSpec{
		Kind:       campaign.KindStaged,
		Name:       RoleChain + "-" + t.ID,
		Attackers:  []string{base.Attacker},
		Placements: []string{base.Placement.String()},
		Modes:      []string{string(base.Mode)},
		Goal:       t.Goal,
		Stages: []campaign.StageSpec{
			{Name: "breach", Injections: breach},
			{Name: "persist", Proceed: t.Goal, Injections: []campaign.InjectionSpec{persist}},
		},
	}
}

// modeWords renders the threat's mode list as DSL words.
func modeWords(modes []policy.Mode) []string {
	out := make([]string, len(modes))
	for i, m := range modes {
		out[i] = string(m)
	}
	return out
}
