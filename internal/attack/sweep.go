package attack

import "fmt"

// This file implements the fleet-facing side of the harness: one vehicle's
// full Table I scenario matrix, swept across enforcement regimes, reduced to
// aggregate success/blocked rates that the fleet engine (internal/engine)
// merges across a vehicle population.

// Summary reduces a set of Results to aggregate rates.
type Summary struct {
	// Runs counts scenario executions.
	Runs int
	// Succeeded counts runs where the attack achieved its effect.
	Succeeded int
	// Blocked counts runs where the attack was stopped AND the functional
	// probe still passed (the paper's success criterion for the defence).
	Blocked int
	// FalsePositives counts runs where enforcement broke legitimate traffic.
	FalsePositives int
	// Injected totals malicious frames attempted.
	Injected int
	// WriteBlocked and ReadBlocked total frames stopped at write/read filters.
	WriteBlocked uint64
	// ReadBlocked totals frames stopped at victims' read filters.
	ReadBlocked uint64
	// StageRuns totals campaign stages executed across runs (0 when the
	// swept scenarios are single-stage). Not part of String, so legacy
	// fleet-report renderings stay byte-stable.
	StageRuns int
	// StagesHalted counts runs where a stage predicate stopped a campaign
	// scenario early (the defence broke the kill chain).
	StagesHalted int
}

// Add folds one result into the summary.
func (s *Summary) Add(r Result) {
	s.Runs++
	s.Injected += r.Injected
	s.WriteBlocked += r.WriteBlocked
	s.ReadBlocked += r.ReadBlocked
	s.StageRuns += r.StagesRun
	if r.Halted {
		s.StagesHalted++
	}
	switch {
	case r.Succeeded:
		s.Succeeded++
	case r.LegitimateOK:
		s.Blocked++
	default:
		s.FalsePositives++
	}
}

// Merge folds another summary into this one (used fleet-wide).
func (s *Summary) Merge(o Summary) {
	s.Runs += o.Runs
	s.Succeeded += o.Succeeded
	s.Blocked += o.Blocked
	s.FalsePositives += o.FalsePositives
	s.Injected += o.Injected
	s.WriteBlocked += o.WriteBlocked
	s.ReadBlocked += o.ReadBlocked
	s.StageRuns += o.StageRuns
	s.StagesHalted += o.StagesHalted
}

// SuccessRate returns attacks succeeded over runs (0 for no runs).
func (s Summary) SuccessRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Succeeded) / float64(s.Runs)
}

// BlockRate returns clean blocks over runs (0 for no runs).
func (s Summary) BlockRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Runs)
}

// String renders the aggregate in one line.
func (s Summary) String() string {
	return fmt.Sprintf("runs=%d succeeded=%d blocked=%d falsepos=%d injected=%d wblk=%d rblk=%d",
		s.Runs, s.Succeeded, s.Blocked, s.FalsePositives, s.Injected, s.WriteBlocked, s.ReadBlocked)
}

// Verbose renders the aggregate in one line including the stage counters
// String omits. The String prefix is reused verbatim, so verbose renderings
// stay aligned with legacy ones column-for-column up to the stage fields.
func (s Summary) Verbose() string {
	return s.String() + fmt.Sprintf(" stages=%d halted=%d", s.StageRuns, s.StagesHalted)
}

// Summarize reduces results to a Summary.
func Summarize(results []Result) Summary {
	var s Summary
	for _, r := range results {
		s.Add(r)
	}
	return s
}

// RegimeSummary pairs an enforcement regime with its aggregate outcome.
type RegimeSummary struct {
	// Regime is the enforcement configuration summarised.
	Regime Enforcement
	// Summary holds the aggregate rates for that regime.
	Summary Summary
}

// Matrix is the outcome of one vehicle's scenario x regime sweep. Regime
// summaries are kept in the sweep's regime order (never a map), so rendering
// a Matrix is deterministic and fleet merges stay byte-stable.
type Matrix struct {
	// Results holds every run in scenario-major, regime-minor order.
	Results []Result
	// Regimes holds one aggregate per regime, in sweep order.
	Regimes []RegimeSummary
}

// Summary returns the whole-matrix aggregate across all regimes.
func (m Matrix) Summary() Summary {
	var s Summary
	for _, rs := range m.Regimes {
		s.Merge(rs.Summary)
	}
	return s
}

// WithSeed returns a copy of the harness whose simulations run with the
// given seed. The compiled policy and cycle model are shared (both are
// immutable after construction), so deriving a per-vehicle harness is cheap
// enough to do once per vehicle in a fleet sweep.
func (h *Harness) WithSeed(seed uint64) *Harness {
	c := *h
	c.Seed = seed
	return &c
}

// RunMatrix executes every scenario under every requested regime and returns
// per-regime aggregates alongside the raw results.
func (h *Harness) RunMatrix(scenarios []Scenario, regimes ...Enforcement) (Matrix, error) {
	return runMatrix(scenarios, regimes, h.Run)
}

// RunSummaries executes every scenario under every requested regime like
// RunMatrix, but keeps only the per-regime aggregates — the shape the fleet
// engine consumes. Skipping the raw Results slice matters at fleet scale: a
// campaign sweep discards per-cell results immediately after aggregation, so
// collecting them was pure allocation on the hottest loop.
func (h *Harness) RunSummaries(scenarios []Scenario, regimes ...Enforcement) ([]RegimeSummary, error) {
	return runSummaries(scenarios, regimes, h.Run)
}

// runMatrix is the shared matrix sweep: scenario-major, regime-minor, with
// per-regime aggregation in sweep order. Both the fresh-car path
// (Harness.RunMatrix) and the pooled path (Arena.RunMatrix) delegate here,
// so result ordering can never diverge between them.
func runMatrix(scenarios []Scenario, regimes []Enforcement, run func(Scenario, Enforcement) (Result, error)) (Matrix, error) {
	m := Matrix{
		Results: make([]Result, 0, len(scenarios)*len(regimes)),
		Regimes: make([]RegimeSummary, len(regimes)),
	}
	for i, enf := range regimes {
		m.Regimes[i].Regime = enf
	}
	for _, sc := range scenarios {
		for i, enf := range regimes {
			r, err := run(sc, enf)
			if err != nil {
				return Matrix{}, err
			}
			m.Results = append(m.Results, r)
			m.Regimes[i].Summary.Add(r)
		}
	}
	return m, nil
}

// runSummaries is runMatrix without the raw-result collection: identical
// cell order (scenario-major, regime-minor), identical aggregation, shared
// by the fresh and pooled summary paths.
func runSummaries(scenarios []Scenario, regimes []Enforcement, run func(Scenario, Enforcement) (Result, error)) ([]RegimeSummary, error) {
	out := make([]RegimeSummary, len(regimes))
	for i, enf := range regimes {
		out[i].Regime = enf
	}
	for _, sc := range scenarios {
		for i, enf := range regimes {
			r, err := run(sc, enf)
			if err != nil {
				return nil, err
			}
			out[i].Summary.Add(r)
		}
	}
	return out, nil
}
