package attack

import (
	"fmt"

	"repro/internal/car"
)

// This file implements the supervised counterpart of RunSummariesBatched: a
// BatchRun walks the same bucket-major (bucket, regime, cell) order one cell
// at a time, so the fleet engine's sweep supervisor can wrap every cell in
// panic recovery, bounded retry and demotion without re-implementing the
// prefix-checkpoint machinery. Each restore is guarded by a cheap integrity
// checksum of the arena's externally observable state — a corrupted
// checkpoint surfaces as a typed ErrIntegrity before the forked cell runs,
// instead of silently poisoning every remaining cell of the bucket.

// BatchRun is a resumable cursor over one BatchPlan's cells on one arena.
// Next advances the cursor, Run executes the current cell through the
// batched (checkpoint-forking) machinery, and RunOracle executes the same
// cell through the cell-by-cell reference path — the supervisor's retry and
// demotion target. Like the arena it drives, a BatchRun is single-owner.
type BatchRun struct {
	a *Arena
	p *BatchPlan

	bi, ri, ci int  // bucket, regime, cell-in-bucket position
	started    bool // Next called at least once
	primed     bool // a valid checkpoint exists for (bi, ri)
	corrupt    bool // sabotage the next restore (chaos testing hook)
	sum        uint64
}

// NewBatchRun positions a fresh cursor before the plan's first cell.
func (a *Arena) NewBatchRun(p *BatchPlan) *BatchRun { return &BatchRun{a: a, p: p} }

// Next advances to the next cell in bucket-major, regime-minor order —
// exactly RunSummariesBatched's execution order — and reports whether one
// exists. Crossing a regime or bucket boundary invalidates the checkpoint,
// as each (bucket, regime) pair primes its own.
func (b *BatchRun) Next() bool {
	if !b.started {
		b.started = true
		return len(b.p.buckets) > 0
	}
	b.ci++
	if b.ci < len(b.p.buckets[b.bi]) {
		return true
	}
	b.ci = 0
	b.ri++
	b.primed = false
	if b.ri < len(b.p.Regimes) {
		return true
	}
	b.ri = 0
	b.bi++
	return b.bi < len(b.p.buckets)
}

// Cell returns the current cell's scenario index (into the plan's Scenarios)
// and regime index (into its Regimes).
func (b *BatchRun) Cell() (scenario, regime int) {
	return b.p.buckets[b.bi][b.ci], b.ri
}

// Forked reports whether the current cell belongs to a multi-scenario bucket
// (i.e. executes via checkpoint forking rather than a plain per-cell run).
func (b *BatchRun) Forked() bool { return len(b.p.buckets[b.bi]) > 1 }

// WillRestore reports whether the next Run of the current cell would rewind
// from an existing checkpoint (rather than prime a fresh one) — the only
// instant a restore-corruption fault can land.
func (b *BatchRun) WillRestore() bool { return b.Forked() && b.primed }

// Run executes the current cell through the batched path: singleton buckets
// run the plain per-cell path; multi buckets prime the (bucket, regime)
// checkpoint on first use and fork every cell from it, verifying the
// arena's integrity checksum after each restore.
func (b *BatchRun) Run() (Result, error) {
	bucket := b.p.buckets[b.bi]
	sc := b.p.Scenarios[bucket[b.ci]]
	enf := b.p.Regimes[b.ri]
	if len(bucket) == 1 {
		return b.a.Run(sc, enf)
	}
	if !b.primed {
		if err := b.a.resetForRegime(enf); err != nil {
			return Result{}, err
		}
		if err := b.a.h.runSetup(b.a.car, b.p.Scenarios[bucket[0]]); err != nil {
			return Result{}, err
		}
		if err := b.a.capture(&b.a.ckpt, enf); err != nil {
			return Result{}, err
		}
		b.sum = b.a.integritySum()
		b.primed = true
	} else {
		if err := b.a.restore(&b.a.ckpt, enf); err != nil {
			b.primed = false
			return Result{}, err
		}
		if b.corrupt {
			b.corrupt = false
			b.a.corruptState()
		}
		if got := b.a.integritySum(); got != b.sum {
			b.primed = false
			return Result{}, fmt.Errorf("%w (captured %#016x, restored %#016x)", ErrIntegrity, b.sum, got)
		}
	}
	return b.a.h.executeTail(b.a.car, sc, enf, &b.a.inj)
}

// RunOracle executes the current cell through the cell-by-cell reference
// path (full reset + regime provisioning + setup replay), bypassing the
// checkpoint machinery entirely. The checkpoint is invalidated — the oracle
// run dirties the arena — so a later batched cell re-primes from scratch.
func (b *BatchRun) RunOracle() (Result, error) {
	b.primed = false
	return b.a.Run(b.p.Scenarios[b.p.buckets[b.bi][b.ci]], b.p.Regimes[b.ri])
}

// Invalidate discards the current checkpoint: the next batched cell of this
// (bucket, regime) pair re-primes from a full reset. Supervisors call it
// after any failed cell, whose partial execution left the arena dirty.
func (b *BatchRun) Invalidate() { b.primed = false }

// Rebind points the cursor at a replacement arena (after the supervisor
// rebuilt a panicked worker's stack) without losing the plan position.
func (b *BatchRun) Rebind(a *Arena) {
	b.a = a
	b.primed = false
}

// CorruptNextRestore arms the chaos-testing sabotage hook: the next restore
// flips vehicle state after rewinding, so the integrity checksum must catch
// it and surface ErrIntegrity. A no-op until a restore actually happens.
func (b *BatchRun) CorruptNextRestore() { b.corrupt = true }

// foldSum is one SplitMix64 finalisation step, the stack's shared mixing
// primitive, folding v into h.
func foldSum(h, v uint64) uint64 {
	z := h + (v+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// integritySum hashes the arena's externally observable vehicle state: the
// scheduler clock and step count, the operating mode, every vehicle state
// field and the bus counters. It is deliberately a spot check, not a full
// state digest — cheap enough to run on every restore, wide enough that any
// single-field corruption of the checkpointed core state flips it. Engine
// and guard counters are not covered (DESIGN.md §11 records the coverage
// boundary); their corruption surfaces through the divergence the
// verification sampler catches instead.
func (a *Arena) integritySum() uint64 {
	c := a.car
	h := foldSum(0x9E3779B97F4A7C15, uint64(c.Scheduler().Now()))
	h = foldSum(h, c.Scheduler().Steps())
	for _, by := range []byte(c.Mode()) {
		h = foldSum(h, uint64(by))
	}
	st := c.State()
	var bits uint64
	for i, b := range []bool{
		st.Propulsion, st.EPSActive, st.EngineRunning, st.ModemEnabled,
		st.TrackingActive, st.DoorsLocked, st.AlarmArmed, st.FailSafeTriggered,
		st.FirmwareModified,
	} {
		if b {
			bits |= 1 << i
		}
	}
	h = foldSum(h, bits)
	h = foldSum(h, uint64(st.ActualSpeed)|uint64(st.DisplayedSpeed)<<16)
	h = foldSum(h, uint64(st.ExfilReports))
	bs := c.Bus().Stats()
	h = foldSum(h, bs.FramesDelivered)
	h = foldSum(h, bs.Errors)
	h = foldSum(h, bs.WriteBlocked|bs.ReadBlocked<<32)
	h = foldSum(h, bs.AbortedTx)
	return h
}

// corruptState flips the restored vehicle's operating mode — the smallest
// state corruption that changes policy decisions, and one integritySum is
// guaranteed to catch. Only the chaos layer reaches it, via
// CorruptNextRestore.
func (a *Arena) corruptState() {
	if a.car.Mode() == car.ModeNormal {
		a.car.SetMode(car.ModeFailSafe)
	} else {
		a.car.SetMode(car.ModeNormal)
	}
}
