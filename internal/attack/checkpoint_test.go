package attack

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/car"
)

// allRegimes is the full enforcement sweep the checkpoint contract must hold
// under: each regime installs a different inline-filter stack, so each
// exercises a different slice of the captured state.
var allRegimes = []Enforcement{EnforceNone, EnforceSoftware, EnforceHPE, EnforceBehaviour}

// checkpointScenarios assembles one representative scenario per campaign
// family kind: every Table I baseline (the mutate bases, with their Setup
// prefixes), a coordinated multi-attacker flood, and a predicate-gated
// staged kill chain.
func checkpointScenarios() []Scenario {
	out := Scenarios()
	out = append(out, floodScenario([]Attacker{
		{Name: car.NodeTelematics, Placement: Inside},
		{Name: "Rogue-X", Placement: Outside},
	}, 30, 300*time.Microsecond, 9))
	out = append(out, stagedScenario())
	return out
}

// TestCheckpointRestoreMatchesReset is the property test behind the arena's
// prefix checkpointing: capturing after the prefix, running a *different*
// dirtying cell from the checkpoint, restoring, and then running the
// scenario tail must produce a Result byte-identical to the cold path
// (reset + full execute) — for every scenario kind under every regime. The
// dirtying cell is the adversarial part: it compromises controllers,
// attaches rogue nodes, advances the virtual clock, spends behavioural rate
// budget and pushes the vehicle into fail-safe state, all of which restore
// must rewind.
func TestCheckpointRestoreMatchesReset(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := checkpointScenarios()
	for _, enf := range allRegimes {
		for si := range scenarios {
			sc := scenarios[si]
			// Cold oracle: the exact per-cell path Arena.Run takes.
			want, err := a.Run(sc, enf)
			if err != nil {
				t.Fatalf("%s/%s oracle: %v", sc.ThreatID, enf, err)
			}

			// Checkpointed path: prefix once, dirty the vehicle with another
			// scenario's tail, rewind, then run the scenario under test.
			if err := a.resetForRegime(enf); err != nil {
				t.Fatal(err)
			}
			if err := a.h.runSetup(a.car, sc); err != nil {
				t.Fatal(err)
			}
			var ck checkpoint
			a.capture(&ck, enf)
			dirty := scenarios[(si+1)%len(scenarios)]
			if _, err := a.h.executeTail(a.car, dirty, enf, &a.inj); err != nil {
				t.Fatalf("%s/%s dirtying tail: %v", sc.ThreatID, enf, err)
			}
			if err := a.restore(&ck, enf); err != nil {
				t.Fatalf("%s/%s restore: %v", sc.ThreatID, enf, err)
			}
			got, err := a.h.executeTail(a.car, sc, enf, &a.inj)
			if err != nil {
				t.Fatalf("%s/%s forked tail: %v", sc.ThreatID, enf, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s under %s: forked result diverged from cold run\ncold:   %+v\nforked: %+v",
					sc.ThreatID, enf, want, got)
			}

			// Fork twice more from the same checkpoint: restores must be
			// idempotent, not one-shot.
			for i := 0; i < 2; i++ {
				if err := a.restore(&ck, enf); err != nil {
					t.Fatalf("%s/%s re-restore: %v", sc.ThreatID, enf, err)
				}
				again, err := a.h.executeTail(a.car, sc, enf, &a.inj)
				if err != nil {
					t.Fatalf("%s/%s refork %d: %v", sc.ThreatID, enf, i, err)
				}
				if !reflect.DeepEqual(again, want) {
					t.Errorf("%s under %s: refork %d diverged from cold run", sc.ThreatID, enf, i)
				}
			}
		}
	}
}

// TestRunSummariesBatchedMatchesOracle requires the bucketed executor to
// aggregate byte-identically to the scenario-major oracle when every
// scenario shares one prefix bucket, when buckets are interleaved (the order
// the campaign compiler's pick shuffle produces), and when keys are absent
// (all-singleton degenerate plan).
func TestRunSummariesBatchedMatchesOracle(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	base := checkpointScenarios()
	// mutateFamily mimics the campaign compiler's mutate expansion: variants
	// of one base share its Setup verbatim, so they may legally share a
	// prefix bucket. Pick a base with a real Setup so the shared prefix is
	// non-trivial.
	mutateFamily := func(key uint64) []Scenario {
		var withSetup Scenario
		found := false
		for _, sc := range Scenarios() {
			if sc.Setup != nil {
				withSetup, found = sc, true
				break
			}
		}
		if !found {
			t.Fatal("no Table I scenario with a Setup prefix")
		}
		var out []Scenario
		for i, rep := range []int{1, 2, 3, 5} {
			v := withSetup
			v.Name = v.Name + " variant"
			v.Injections = append([]Injection(nil), withSetup.Injections...)
			for j := range v.Injections {
				v.Injections[j].Repeat = rep
				v.Injections[j].Gap = time.Duration(i+1) * stepTime
			}
			v.PrefixKey = key
			out = append(out, v)
		}
		return out
	}
	cases := map[string]func([]Scenario) []Scenario{
		"singletons": func(scs []Scenario) []Scenario { return scs },
		"mutate-bucket": func(scs []Scenario) []Scenario {
			// One shared-Setup mutate family bucketed together, the rest of
			// the catalog singleton.
			return append(scs, mutateFamily(7)...)
		},
		"interleaved": func(scs []Scenario) []Scenario {
			// Two valid bucket kinds scattered through the singleton catalog,
			// the shape the compiler's pick shuffle produces: a keyed mutate
			// family plus nil-Setup scenarios sharing a trivial prefix.
			out := append(scs, mutateFamily(7)...)
			for i := range out {
				if out[i].Setup == nil && out[i].PrefixKey == 0 {
					out[i].PrefixKey = uint64(2 + i%2)
				}
			}
			return out
		},
	}
	for name, build := range cases {
		scs := build(append([]Scenario(nil), base...))
		want, err := a.RunSummaries(scs, allRegimes...)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		got, err := a.RunSummariesBatched(PlanBatches(scs, allRegimes...))
		if err != nil {
			t.Fatalf("%s batched: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: batched summaries diverged\noracle:  %+v\nbatched: %+v", name, want, got)
		}
	}
}
