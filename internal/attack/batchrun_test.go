package attack

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/car"
)

// batchRunScenarios builds a plan shape with both singleton and forked
// buckets: the full checkpoint catalog plus a keyed shared-prefix family.
func batchRunScenarios(t *testing.T) []Scenario {
	t.Helper()
	scs := checkpointScenarios()
	var withSetup Scenario
	found := false
	for _, sc := range Scenarios() {
		if sc.Setup != nil {
			withSetup, found = sc, true
			break
		}
	}
	if !found {
		t.Fatal("no Table I scenario with a Setup prefix")
	}
	for i, rep := range []int{1, 2, 3} {
		v := withSetup
		v.Name += " variant"
		v.Injections = append([]Injection(nil), withSetup.Injections...)
		for j := range v.Injections {
			v.Injections[j].Repeat = rep
			v.Injections[j].Gap = time.Duration(i+1) * stepTime
		}
		v.PrefixKey = 11
		scs = append(scs, v)
	}
	return scs
}

// TestBatchRunMatchesRunSummariesBatched: driving every cell through the
// stepped cursor folds aggregates byte-identical to the one-shot
// RunSummariesBatched — the equivalence that lets the sweep supervisor wrap
// cells without changing any payload byte.
func TestBatchRunMatchesRunSummariesBatched(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	scs := batchRunScenarios(t)
	p := PlanBatches(scs, allRegimes...)
	want, err := a.RunSummariesBatched(p)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]RegimeSummary, len(p.Regimes))
	for i, enf := range p.Regimes {
		got[i].Regime = enf
	}
	br := a.NewBatchRun(p)
	cells := 0
	for br.Next() {
		_, ri := br.Cell()
		r, err := br.Run()
		if err != nil {
			t.Fatalf("cell %d: %v", cells, err)
		}
		got[ri].Summary.Add(r)
		cells++
	}
	if want := len(scs) * len(allRegimes); cells != want {
		t.Fatalf("cursor visited %d cells, want %d", cells, want)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stepped cursor diverged from RunSummariesBatched\none-shot: %+v\nstepped:  %+v", want, got)
	}
}

// TestBatchRunOracleMatchesBatched: RunOracle on any cell produces the same
// Result as the batched path for that cell, and a batched cell after an
// oracle run (which dirties the arena) still re-primes correctly.
func TestBatchRunOracleMatchesBatched(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	p := PlanBatches(batchRunScenarios(t), EnforceNone, EnforceHPE)
	br := a.NewBatchRun(p)
	i := 0
	for br.Next() {
		batched, err := br.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check every third cell inline, like the verify sampler does.
		if i%3 == 0 {
			oracle, err := br.RunOracle()
			if err != nil {
				t.Fatal(err)
			}
			if oracle != batched {
				sci, ri := br.Cell()
				t.Errorf("cell (scenario %d, regime %d): oracle %+v != batched %+v", sci, ri, oracle, batched)
			}
		}
		i++
	}
}

// TestBatchRunCorruptionDetectedAndRecovered: an armed restore corruption
// surfaces as ErrIntegrity on the forked cell, and a retry of the same cell
// (which re-primes the checkpoint from a full reset) produces the correct
// result — the exact recovery sequence the supervisor performs.
func TestBatchRunCorruptionDetectedAndRecovered(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	scs := batchRunScenarios(t)
	p := PlanBatches(scs, EnforceHPE)
	br := a.NewBatchRun(p)
	corrupted := 0
	got := map[int]Result{} // flat cell index -> result
	cell := 0
	for br.Next() {
		if br.WillRestore() && corrupted == 0 {
			br.CorruptNextRestore()
			r, err := br.Run()
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("corrupted restore: got (%+v, %v), want ErrIntegrity", r, err)
			}
			corrupted++
			br.Invalidate() // supervisor's refresh step
			// Retry the same cell: re-primes and must succeed.
		}
		r, err := br.Run()
		if err != nil {
			t.Fatalf("cell %d after recovery: %v", cell, err)
		}
		got[cell] = r
		cell++
	}
	if corrupted == 0 {
		t.Fatal("plan produced no forked restore to corrupt — test shape broken")
	}

	// The full pass, corruption and recovery included, must match a clean
	// oracle pass cell for cell.
	oracle, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	obr := oracle.NewBatchRun(p)
	cell = 0
	for obr.Next() {
		want, err := obr.RunOracle()
		if err != nil {
			t.Fatal(err)
		}
		if got[cell] != want {
			t.Errorf("cell %d diverged after corruption recovery: got %+v, want %+v", cell, got[cell], want)
		}
		cell++
	}
}

// TestIntegritySumCatchesModeFlip: the spot-check checksum must flip when
// corruptState flips the operating mode — the corruption CorruptNextRestore
// injects.
func TestIntegritySumCatchesModeFlip(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.resetForRegime(EnforceNone); err != nil {
		t.Fatal(err)
	}
	before := a.integritySum()
	a.corruptState()
	if after := a.integritySum(); after == before {
		t.Fatalf("integritySum unchanged by mode corruption (%#x)", before)
	}
	if a.car.Mode() != car.ModeFailSafe {
		t.Fatalf("corruptState left mode %v", a.car.Mode())
	}
}
