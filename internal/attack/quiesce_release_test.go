//go:build !chaosdebug

package attack

import (
	"errors"
	"testing"
	"time"
)

// TestCaptureNotQuiescentReturnsTypedError: capturing with events still
// queued returns ErrNotQuiescent (release build) instead of panicking — the
// retryable fault the sweep supervisor quarantines — and a quiescent
// capture succeeds. The chaosdebug build restores the panic; see
// quiesce_debug_test.go.
func TestCaptureNotQuiescentReturnsTypedError(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.resetForRegime(EnforceHPE); err != nil {
		t.Fatal(err)
	}
	var ck checkpoint
	if err := a.capture(&ck, EnforceHPE); err != nil {
		t.Fatalf("quiescent capture failed: %v", err)
	}

	// Leave the scheduler non-quiescent: queued traffic events, not run.
	a.car.StartTraffic(time.Millisecond, 10*time.Millisecond, 42)
	if err := a.capture(&ck, EnforceHPE); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("non-quiescent capture: got %v, want ErrNotQuiescent", err)
	}
	a.car.Scheduler().Run() // drain so the arena is reusable
}
