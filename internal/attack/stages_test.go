package attack

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/car"
)

// floodScenario is a campaign-style coordinated flood: every team member
// streams forged tracking reports carrying the exfiltration marker; the
// attack succeeds when enough reports reach the diagnostic backend.
func floodScenario(team []Attacker, frames int, gap time.Duration, threshold int) Scenario {
	sc := Scenario{
		ThreatID:           "FLOOD-T",
		Name:               "coordinated exfil flood",
		Placement:          team[0].Placement,
		Attacker:           team[0].Name,
		Mode:               car.ModeNormal,
		ParallelInjections: true,
		Succeeded:          func(s car.State) bool { return s.ExfilReports >= threshold },
	}
	for i, m := range team {
		if i > 0 {
			sc.Coattackers = append(sc.Coattackers, m)
		}
		sc.Injections = append(sc.Injections, Injection{
			ID: car.IDTrackingReport, Data: []byte{0xEE, 0x01},
			Repeat: frames, Gap: gap, From: m.Name,
		})
	}
	return sc
}

// stagedScenario is a campaign-style kill chain: ECU disable first, then a
// firmware write that only fires if propulsion actually went down.
func stagedScenario() Scenario {
	return Scenario{
		ThreatID:  "STAGED-T",
		Name:      "staged takeover",
		Placement: Inside,
		Attacker:  car.NodeInfotainment,
		Mode:      car.ModeNormal,
		Stages: []Stage{
			{
				Name:       "inject",
				Injections: []Injection{{ID: car.IDECUCommand, Data: []byte{car.OpDisable}, Repeat: 2}},
			},
			{
				Name:       "persist",
				Proceed:    func(s car.State) bool { return !s.Propulsion },
				Injections: []Injection{{ID: car.IDFirmwareUpdate, Data: []byte{0xDE, 0xAD}, Repeat: 2}},
			},
		},
		Succeeded: func(s car.State) bool { return s.FirmwareModified },
	}
}

// TestBehaviourRegimeStopsApprovedWriterFlood: telematics is an approved
// writer of the tracking report, so the identifier HPE waves its flood
// through; the behavioural write budget caps it below the exfiltration
// threshold. This is the credential-abuse gap §V-A's extension closes.
func TestBehaviourRegimeStopsApprovedWriterFlood(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	sc := floodScenario([]Attacker{{Name: car.NodeTelematics, Placement: Inside}}, 40, 200*time.Microsecond, 10)

	hpeRes, err := h.Run(sc, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	if !hpeRes.Succeeded {
		t.Errorf("identifier HPE should not stop an approved writer's flood: %+v", hpeRes)
	}
	behRes, err := h.Run(sc, EnforceBehaviour)
	if err != nil {
		t.Fatal(err)
	}
	if behRes.Succeeded {
		t.Errorf("behaviour regime failed to cap the flood: %+v", behRes)
	}
	if !behRes.LegitimateOK {
		t.Errorf("behaviour regime broke legitimate traffic: %+v", behRes)
	}
	if behRes.WriteBlocked == 0 {
		t.Errorf("expected write-budget blocks, got none: %+v", behRes)
	}
}

// TestCoordinatedFloodCountsEveryStream: a two-attacker team injects both
// streams concurrently; with no enforcement every frame lands.
func TestCoordinatedFloodCountsEveryStream(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	team := []Attacker{
		{Name: car.NodeTelematics, Placement: Inside},
		{Name: "Rogue-Feeder", Placement: Outside},
	}
	sc := floodScenario(team, 20, 200*time.Microsecond, 1)
	res, err := h.Run(sc, EnforceNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 40 {
		t.Errorf("expected 40 injected frames across the team, got %d", res.Injected)
	}
	if !res.Succeeded {
		t.Errorf("unenforced flood should land: %+v", res)
	}
}

// TestStagePredicateGatesKillChain: under no enforcement the ECU goes down
// and the persistence stage fires; under the HPE the first stage is blocked,
// the predicate fails, and the chain halts without running stage two.
func TestStagePredicateGatesKillChain(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	sc := stagedScenario()

	open, err := h.Run(sc, EnforceNone)
	if err != nil {
		t.Fatal(err)
	}
	if !open.Succeeded || open.StagesRun != 2 || open.Halted {
		t.Errorf("unenforced kill chain should complete: %+v", open)
	}
	guarded, err := h.Run(sc, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Succeeded {
		t.Errorf("HPE should stop the kill chain: %+v", guarded)
	}
	if guarded.StagesRun != 1 || !guarded.Halted {
		t.Errorf("expected the chain to halt after stage 1, got %+v", guarded)
	}
}

// TestSkipProbeReportsLegitimateOK: probe-free scenarios never count as
// false positives.
func TestSkipProbeReportsLegitimateOK(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenarios()[0]
	sc.SkipProbe = true
	res, err := h.Run(sc, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LegitimateOK {
		t.Errorf("SkipProbe must report LegitimateOK: %+v", res)
	}
}

// TestArenaMatchesFreshCampaignShapes extends the zero-rebuild contract to
// the campaign constructs: coordinated floods, staged chains and the
// behaviour regime must be byte-identical between pooled and fresh runs.
func TestArenaMatchesFreshCampaignShapes(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	h = h.WithSeed(0xBEEF)
	arena, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	arena.SetSeed(0xBEEF)
	scenarios := []Scenario{
		floodScenario([]Attacker{
			{Name: car.NodeTelematics, Placement: Inside},
			{Name: car.NodeSensors, Placement: Inside},
		}, 30, 300*time.Microsecond, 10),
		stagedScenario(),
		Scenarios()[0],
		Scenarios()[11], // DOOR-1: exercises the unlock-in-motion rule
	}
	regimes := []Enforcement{EnforceNone, EnforceHPE, EnforceBehaviour}

	pooled, err := arena.RunMatrix(scenarios, regimes...)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := h.RunMatrix(scenarios, regimes...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, fresh) {
		t.Errorf("pooled and fresh campaign-shape matrices diverged:\npooled %+v\nfresh  %+v", pooled, fresh)
	}
	// A second pooled pass must reproduce the first (warm rate-rule state
	// fully cleared by the guards' Reset).
	again, err := arena.RunMatrix(scenarios, regimes...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, again) {
		t.Error("second pooled pass diverged: behavioural state leaked across resets")
	}
}
