package attack

// This file implements the planning half of prefix-checkpointed batching:
// grouping a scenario set's cells into buckets that share an identical
// pre-attack prefix, so Arena.RunSummariesBatched can replay each prefix once
// per enforcement regime and fork the bucket's cells from a checkpoint.
//
// Bucketing is grouping, not reordering of work the caller can observe: the
// batched executor only produces per-regime aggregates, every fold into them
// (Summary.Add) is a commutative integer add, and each forked cell's Result
// equals its cold-run Result, so bucket-major execution is invisible in the
// output. That is what lets the planner bucket scenarios whose shared-prefix
// siblings ended up scattered by the campaign compiler's sample shuffle.

// BatchPlan is one scenario group's cells organised for prefix-checkpointed
// execution: the scenarios and regimes of a plain RunSummaries call, plus the
// prefix buckets PlanBatches derived from the scenarios' PrefixKeys. Plans
// are immutable after construction and hold no vehicle state, so one plan is
// shared by every worker (and every vehicle) of a fleet sweep.
type BatchPlan struct {
	// Scenarios is the scenario set, in the caller's order.
	Scenarios []Scenario
	// Regimes is the enforcement sweep, in the caller's order.
	Regimes []Enforcement

	// buckets holds scenario indices grouped by PrefixKey, buckets in
	// first-appearance order and indices in scenario order within each.
	buckets [][]int
}

// Cells returns the total number of scenario×regime cells the plan covers.
func (p *BatchPlan) Cells() int { return len(p.Scenarios) * len(p.Regimes) }

// SharedCells returns the number of cells that fork from a checkpoint
// instead of paying a full reset — the quantity sweep throughput scales with.
func (p *BatchPlan) SharedCells() int {
	n := 0
	for _, b := range p.buckets {
		if len(b) > 1 {
			n += (len(b) - 1) * len(p.Regimes)
		}
	}
	return n
}

// PlanBatches buckets scenarios by PrefixKey for Arena.RunSummariesBatched.
// Scenarios with equal non-zero keys share a bucket (they promise an
// identical prefix: same Setup func or none); a zero key opts a scenario out
// of sharing and yields a singleton bucket. Buckets keep first-appearance
// order and scenario order within, so planning is deterministic.
func PlanBatches(scenarios []Scenario, regimes ...Enforcement) *BatchPlan {
	p := &BatchPlan{Scenarios: scenarios, Regimes: regimes}
	index := make(map[uint64]int, len(scenarios))
	for i := range scenarios {
		key := scenarios[i].PrefixKey
		if key == 0 {
			p.buckets = append(p.buckets, []int{i})
			continue
		}
		bi, ok := index[key]
		if !ok {
			bi = len(p.buckets)
			index[key] = bi
			p.buckets = append(p.buckets, nil)
		}
		p.buckets[bi] = append(p.buckets[bi], i)
	}
	return p
}
