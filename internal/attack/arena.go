package attack

import (
	"repro/internal/behaviour"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
)

// Arena is the harness's reusable-vehicle mode: one car and one
// pre-installed policy engine per node, constructed once and reset in place
// between runs. Running a scenario through an arena produces a Result
// byte-identical to Harness.Run on a fresh car — the fleet engine's
// determinism tests assert exactly that — while skipping the full topology
// rebuild (scheduler, bus, eight nodes, eight engines) the fresh path pays
// per scenario×regime cell.
//
// An Arena is single-owner, like the simulation substrate it wraps: all
// methods must be called from one goroutine at a time. The fleet engine
// gives each worker its own arena.
type Arena struct {
	h       *Harness
	car     *car.Car
	engines []*hpe.Engine       // index-aligned with car.AllNodes
	guards  []*behaviour.Engine // same alignment; wrap engines for EnforceBehaviour
	nodes   []*canbus.Node      // same alignment; stable across car resets
	inj     injectPool          // recycled injection bursts, reset per run
	ckpt    checkpoint          // reusable prefix checkpoint (batched sweeps)
	seed    uint64
}

// NewArena builds the reusable vehicle stack: the car topology and one
// single-owner policy engine per node, each with the harness's compiled
// policy installed.
func (h *Harness) NewArena() (*Arena, error) {
	c, err := car.New(car.Config{Seed: h.Seed})
	if err != nil {
		return nil, err
	}
	// Outside-attacker scenarios attach a rogue node per cell; recycling the
	// shells keeps the thousands of per-cell attach/detach cycles of a fleet
	// sweep allocation-free. Safe here: the arena drops every node reference
	// between cells.
	c.Bus().SetRecycleRogues(true)
	engines := make([]*hpe.Engine, len(car.AllNodes))
	guards := make([]*behaviour.Engine, len(car.AllNodes))
	nodes := make([]*canbus.Node, len(car.AllNodes))
	for i, name := range car.AllNodes {
		eng := hpe.New(name, c, h.Cycles)
		eng.SetSingleOwner(true)
		if err := h.installEngine(eng); err != nil {
			return nil, err
		}
		engines[i] = eng
		guards[i] = newBehaviourGuard(c, eng)
		nodes[i], _ = c.Node(name)
	}
	return &Arena{h: h, car: c, engines: engines, guards: guards, nodes: nodes, seed: h.Seed}, nil
}

// Car returns the arena's vehicle, for callers (the fleet engine's live
// background simulation) that drive it directly between scenario runs.
func (a *Arena) Car() *car.Car { return a.car }

// SetSeed changes the seed used for subsequent resets, the pooled
// equivalent of Harness.WithSeed.
func (a *Arena) SetSeed(seed uint64) { a.seed = seed }

// deployEngines resets every pooled engine's counters, reinstalls the
// compiled policy (a table reuse, not a recompilation) and attaches each
// engine as its node's inline filter — the pooled equivalent of hpe.Deploy.
func (a *Arena) deployEngines() error {
	for i, n := range a.nodes {
		a.engines[i].Reset()
		if err := a.h.reinstallEngine(a.engines[i]); err != nil {
			return err
		}
		n.SetInlineFilter(a.engines[i])
	}
	return nil
}

// StartLive resets the arena's car with cfg and provisions the pooled
// policy engines on every node: the reusable equivalent of car.New followed
// by hpe.Deploy, used for live background simulations.
func (a *Arena) StartLive(cfg car.Config) (*car.Car, error) {
	a.car.Reset(cfg)
	if err := a.deployEngines(); err != nil {
		return nil, err
	}
	return a.car, nil
}

// resetForRegime resets the pooled car and provisions the requested
// enforcement regime, leaving the vehicle exactly as a scenario run expects
// to find it. Factored out of Run so the batched path can provision once per
// (prefix, regime) pair instead of once per cell.
func (a *Arena) resetForRegime(enf Enforcement) error {
	a.car.Reset(car.Config{Seed: a.seed})
	switch enf {
	case EnforceHPE:
		if err := a.deployEngines(); err != nil {
			return err
		}
	case EnforceBehaviour:
		if err := a.deployEngines(); err != nil {
			return err
		}
		// Layer the pooled behavioural guards over the freshly re-provisioned
		// identifier engines; Reset clears their rate windows so a reused
		// guard decides exactly like the fresh path's per-run guards.
		for i, n := range a.nodes {
			a.guards[i].Reset()
			n.SetInlineFilter(a.guards[i])
		}
	case EnforceNone:
		for _, n := range a.nodes {
			n.Controller().SetFilters()
		}
	}
	return nil
}

// Run executes one scenario under one enforcement regime on the pooled
// vehicle, resetting it first. Results match Harness.Run on a fresh car.
func (a *Arena) Run(sc Scenario, enf Enforcement) (Result, error) {
	if err := a.resetForRegime(enf); err != nil {
		return Result{}, err
	}
	return a.h.execute(a.car, sc, enf, &a.inj)
}

// checkpoint captures the arena's complete post-prefix state: the car
// substrate (scheduler clock, bus, nodes, vehicle state) plus every pooled
// policy engine and behavioural guard the active regime consults. One
// checkpoint per arena is enough — buckets are processed sequentially and
// each (prefix, regime) pair overwrites it in place, so steady-state batched
// sweeps capture without allocating.
type checkpoint struct {
	car     car.Snapshot
	engines []hpe.Snapshot
	guards  []behaviour.Snapshot
}

// capture snapshots the arena into ck. Engine and guard state is captured
// only for the regimes that consult it: under EnforceNone/EnforceSoftware no
// inline filter is installed, so their (stale, unread) state cannot affect a
// forked cell. A violated quiescence precondition returns ErrNotQuiescent
// (a hard panic under the chaosdebug build tag) instead of capturing state
// the restore could not faithfully reproduce.
func (a *Arena) capture(ck *checkpoint, enf Enforcement) error {
	if err := a.guardQuiescent(); err != nil {
		return err
	}
	a.car.Snapshot(&ck.car)
	if enf == EnforceHPE || enf == EnforceBehaviour {
		if ck.engines == nil {
			ck.engines = make([]hpe.Snapshot, len(a.engines))
		}
		for i, e := range a.engines {
			e.Snapshot(&ck.engines[i])
		}
	}
	if enf == EnforceBehaviour {
		if ck.guards == nil {
			ck.guards = make([]behaviour.Snapshot, len(a.guards))
		}
		for i, g := range a.guards {
			g.Snapshot(&ck.guards[i])
		}
	}
	return nil
}

// restore rewinds the arena to ck. A restored arena runs a scenario tail
// byte-identically to one that replayed the whole prefix from resetForRegime
// — the contract the checkpoint property tests assert. It fails (with
// hpe.ErrBackendMismatch) when the checkpoint was captured under a
// different policy backend than the engines now run.
func (a *Arena) restore(ck *checkpoint, enf Enforcement) error {
	a.car.RestoreFrom(&ck.car)
	if enf == EnforceHPE || enf == EnforceBehaviour {
		for i, e := range a.engines {
			if err := e.RestoreFrom(&ck.engines[i]); err != nil {
				return err
			}
		}
	}
	if enf == EnforceBehaviour {
		for i, g := range a.guards {
			g.RestoreFrom(&ck.guards[i])
		}
	}
	return nil
}

// RunSummariesBatched is RunSummaries driven by a precomputed BatchPlan: for
// every bucket of scenarios sharing a prefix it replays the prefix once per
// regime, checkpoints the quiescent vehicle, and forks each cell from the
// checkpoint instead of paying a full reset + regime provisioning + setup
// replay. Singleton buckets fall back to the plain per-cell path.
//
// Aggregates are byte-identical to RunSummaries on the same scenarios and
// regimes: each forked cell produces the same Result as a cold run (restore
// equals reset — the checkpoint property tests assert it per cell), and
// Summary.Add is commutative, so the bucket-major cell order cannot show in
// the totals.
func (a *Arena) RunSummariesBatched(p *BatchPlan) ([]RegimeSummary, error) {
	out := make([]RegimeSummary, len(p.Regimes))
	for i, enf := range p.Regimes {
		out[i].Regime = enf
	}
	for _, bucket := range p.buckets {
		if len(bucket) == 1 {
			sc := p.Scenarios[bucket[0]]
			for i, enf := range p.Regimes {
				r, err := a.Run(sc, enf)
				if err != nil {
					return nil, err
				}
				out[i].Summary.Add(r)
			}
			continue
		}
		for i, enf := range p.Regimes {
			// Shared prefix: every scenario in the bucket carries the same
			// Setup (PlanBatches groups by prefix key, and the campaign
			// compiler keys on the setup identity), so the first scenario's
			// prefix stands in for all of them.
			if err := a.resetForRegime(enf); err != nil {
				return nil, err
			}
			if err := a.h.runSetup(a.car, p.Scenarios[bucket[0]]); err != nil {
				return nil, err
			}
			if err := a.capture(&a.ckpt, enf); err != nil {
				return nil, err
			}
			for ci, idx := range bucket {
				if ci > 0 {
					if err := a.restore(&a.ckpt, enf); err != nil {
						return nil, err
					}
				}
				r, err := a.h.executeTail(a.car, p.Scenarios[idx], enf, &a.inj)
				if err != nil {
					return nil, err
				}
				out[i].Summary.Add(r)
			}
		}
	}
	return out, nil
}

// RunMatrix executes every scenario under every requested regime on the
// pooled vehicle: Harness.RunMatrix without the per-cell reconstruction.
func (a *Arena) RunMatrix(scenarios []Scenario, regimes ...Enforcement) (Matrix, error) {
	return runMatrix(scenarios, regimes, a.Run)
}

// RunSummaries is the pooled counterpart of Harness.RunSummaries: the full
// scenario×regime sweep reduced to per-regime aggregates, with neither the
// per-cell reconstruction nor the raw-result collection. The fleet engine
// runs every scenario group of a vehicle visit through this path, reusing
// the same warm arena across campaign-family boundaries.
func (a *Arena) RunSummaries(scenarios []Scenario, regimes ...Enforcement) ([]RegimeSummary, error) {
	return runSummaries(scenarios, regimes, a.Run)
}
