package attack

import (
	"repro/internal/behaviour"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
)

// Arena is the harness's reusable-vehicle mode: one car and one
// pre-installed policy engine per node, constructed once and reset in place
// between runs. Running a scenario through an arena produces a Result
// byte-identical to Harness.Run on a fresh car — the fleet engine's
// determinism tests assert exactly that — while skipping the full topology
// rebuild (scheduler, bus, eight nodes, eight engines) the fresh path pays
// per scenario×regime cell.
//
// An Arena is single-owner, like the simulation substrate it wraps: all
// methods must be called from one goroutine at a time. The fleet engine
// gives each worker its own arena.
type Arena struct {
	h       *Harness
	car     *car.Car
	engines []*hpe.Engine       // index-aligned with car.AllNodes
	guards  []*behaviour.Engine // same alignment; wrap engines for EnforceBehaviour
	nodes   []*canbus.Node      // same alignment; stable across car resets
	inj     injectPool          // recycled injection bursts, reset per run
	seed    uint64
}

// NewArena builds the reusable vehicle stack: the car topology and one
// single-owner policy engine per node, each with the harness's compiled
// policy installed.
func (h *Harness) NewArena() (*Arena, error) {
	c, err := car.New(car.Config{Seed: h.Seed})
	if err != nil {
		return nil, err
	}
	// Outside-attacker scenarios attach a rogue node per cell; recycling the
	// shells keeps the thousands of per-cell attach/detach cycles of a fleet
	// sweep allocation-free. Safe here: the arena drops every node reference
	// between cells.
	c.Bus().SetRecycleRogues(true)
	engines := make([]*hpe.Engine, len(car.AllNodes))
	guards := make([]*behaviour.Engine, len(car.AllNodes))
	nodes := make([]*canbus.Node, len(car.AllNodes))
	for i, name := range car.AllNodes {
		eng := hpe.New(name, c, h.Cycles)
		eng.SetSingleOwner(true)
		if err := eng.Install(h.Compiled); err != nil {
			return nil, err
		}
		engines[i] = eng
		guards[i] = newBehaviourGuard(c, eng)
		nodes[i], _ = c.Node(name)
	}
	return &Arena{h: h, car: c, engines: engines, guards: guards, nodes: nodes, seed: h.Seed}, nil
}

// Car returns the arena's vehicle, for callers (the fleet engine's live
// background simulation) that drive it directly between scenario runs.
func (a *Arena) Car() *car.Car { return a.car }

// SetSeed changes the seed used for subsequent resets, the pooled
// equivalent of Harness.WithSeed.
func (a *Arena) SetSeed(seed uint64) { a.seed = seed }

// deployEngines resets every pooled engine's counters, reinstalls the
// compiled policy (a table reuse, not a recompilation) and attaches each
// engine as its node's inline filter — the pooled equivalent of hpe.Deploy.
func (a *Arena) deployEngines() error {
	for i, n := range a.nodes {
		a.engines[i].Reset()
		if err := a.engines[i].Reinstall(a.h.Compiled); err != nil {
			return err
		}
		n.SetInlineFilter(a.engines[i])
	}
	return nil
}

// StartLive resets the arena's car with cfg and provisions the pooled
// policy engines on every node: the reusable equivalent of car.New followed
// by hpe.Deploy, used for live background simulations.
func (a *Arena) StartLive(cfg car.Config) (*car.Car, error) {
	a.car.Reset(cfg)
	if err := a.deployEngines(); err != nil {
		return nil, err
	}
	return a.car, nil
}

// Run executes one scenario under one enforcement regime on the pooled
// vehicle, resetting it first. Results match Harness.Run on a fresh car.
func (a *Arena) Run(sc Scenario, enf Enforcement) (Result, error) {
	a.car.Reset(car.Config{Seed: a.seed})
	switch enf {
	case EnforceHPE:
		if err := a.deployEngines(); err != nil {
			return Result{}, err
		}
	case EnforceBehaviour:
		if err := a.deployEngines(); err != nil {
			return Result{}, err
		}
		// Layer the pooled behavioural guards over the freshly re-provisioned
		// identifier engines; Reset clears their rate windows so a reused
		// guard decides exactly like the fresh path's per-run guards.
		for i, n := range a.nodes {
			a.guards[i].Reset()
			n.SetInlineFilter(a.guards[i])
		}
	case EnforceNone:
		for _, n := range a.nodes {
			n.Controller().SetFilters()
		}
	}
	return a.h.execute(a.car, sc, enf, &a.inj)
}

// RunMatrix executes every scenario under every requested regime on the
// pooled vehicle: Harness.RunMatrix without the per-cell reconstruction.
func (a *Arena) RunMatrix(scenarios []Scenario, regimes ...Enforcement) (Matrix, error) {
	return runMatrix(scenarios, regimes, a.Run)
}

// RunSummaries is the pooled counterpart of Harness.RunSummaries: the full
// scenario×regime sweep reduced to per-regime aggregates, with neither the
// per-cell reconstruction nor the raw-result collection. The fleet engine
// runs every scenario group of a vehicle visit through this path, reusing
// the same warm arena across campaign-family boundaries.
func (a *Arena) RunSummaries(scenarios []Scenario, regimes ...Enforcement) ([]RegimeSummary, error) {
	return runSummaries(scenarios, regimes, a.Run)
}
