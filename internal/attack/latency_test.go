package attack

import (
	"testing"
	"time"
)

func TestLatencyBaselineNoFlood(t *testing.T) {
	h := harness(t)
	stats, err := h.MeasureLatency(LatencyConfig{Enforce: EnforceNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("classes = %d", len(stats))
	}
	for _, s := range stats {
		if s.Sent == 0 {
			t.Fatalf("%s sent nothing", s.Class)
		}
		if s.Delivered < s.Sent-2 { // tail frames may still be in flight
			t.Errorf("%s delivered %d of %d", s.Class, s.Delivered, s.Sent)
		}
		// An idle 500 kbit/s bus delivers a frame in ~130 bit times ≈ 260µs.
		if s.Mean > 2*time.Millisecond {
			t.Errorf("%s mean latency %v on an idle bus", s.Class, s.Mean)
		}
	}
}

// TestLatencyFloodStarvesWithoutEnforcement reproduces the CAN
// priority-inversion DoS: a top-priority flood starves every legitimate
// class, including safety-critical traffic.
func TestLatencyFloodStarvesWithoutEnforcement(t *testing.T) {
	h := harness(t)
	quiet, err := h.MeasureLatency(LatencyConfig{Enforce: EnforceNone})
	if err != nil {
		t.Fatal(err)
	}
	flooded, err := h.MeasureLatency(LatencyConfig{Enforce: EnforceNone, Flood: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range flooded {
		if s.Mean < 4*quiet[i].Mean {
			t.Errorf("%s: flood mean %v not >> quiet mean %v", s.Class, s.Mean, quiet[i].Mean)
		}
	}
}

// TestLatencyFloodNeutralisedByHPE: the attacker's write filter kills the
// flood before it reaches the bus, so latencies stay nominal.
func TestLatencyFloodNeutralisedByHPE(t *testing.T) {
	h := harness(t)
	flooded, err := h.MeasureLatency(LatencyConfig{Enforce: EnforceHPE, Flood: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range flooded {
		if s.Delivered < s.Sent-2 {
			t.Errorf("%s delivered %d of %d under HPE", s.Class, s.Delivered, s.Sent)
		}
		if s.Mean > 2*time.Millisecond {
			t.Errorf("%s mean latency %v under HPE during flood", s.Class, s.Mean)
		}
	}
}

func TestLatencyConfigValidation(t *testing.T) {
	h := harness(t)
	if _, err := h.MeasureLatency(LatencyConfig{
		Classes: []TrafficClass{{Name: "x", ID: 1, From: "NoSuchNode", Period: time.Millisecond}},
	}); err == nil {
		t.Error("unknown class source accepted")
	}
	if _, err := h.MeasureLatency(LatencyConfig{Flood: true, Attacker: "Ghost"}); err == nil {
		t.Error("unknown attacker accepted")
	}
}
