package attack

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/car"
)

// This file implements the E1 experiment (DESIGN.md §4): the paper's stated
// future work of evaluating the approach "for systems with differing
// criticality". Three traffic classes share the bus — safety-critical,
// normal and background — while a compromised node floods a *high-priority*
// identifier (the classic CAN priority-inversion denial of service). The
// experiment measures per-class delivery latency with and without the
// policy engine: without enforcement the flood starves even safety-critical
// traffic; with the HPE the flood dies at the attacker's write filter and
// latencies stay nominal.

// TrafficClass describes one periodic legitimate flow.
type TrafficClass struct {
	// Name labels the class in the report.
	Name string
	// ID is the message identifier (lower = higher bus priority).
	ID uint32
	// From is the transmitting node (must be an approved writer).
	From string
	// Period between transmissions.
	Period time.Duration
}

// DefaultTrafficClasses maps the three criticality tiers onto catalog flows:
// the safety module's ECU command (highest priority), the sensor speed
// broadcast, and the telematics tracking report (lowest priority).
func DefaultTrafficClasses() []TrafficClass {
	return []TrafficClass{
		{Name: "safety-critical", ID: car.IDECUCommand, From: car.NodeSafety, Period: 5 * time.Millisecond},
		{Name: "normal", ID: car.IDSensorSpeed, From: car.NodeSensors, Period: 5 * time.Millisecond},
		{Name: "background", ID: car.IDTrackingReport, From: car.NodeTelematics, Period: 5 * time.Millisecond},
	}
}

// LatencyStats aggregates per-class delivery measurements.
type LatencyStats struct {
	// Class echoes the traffic class name.
	Class string
	// Sent counts transmissions attempted over the horizon.
	Sent int
	// Delivered counts frames that reached the monitor.
	Delivered int
	// Mean and Max are delivery latencies (queue to broadcast completion).
	Mean time.Duration
	Max  time.Duration
}

// String renders one report row.
func (s LatencyStats) String() string {
	return fmt.Sprintf("%-16s sent=%-4d delivered=%-4d mean=%-10v max=%v",
		s.Class, s.Sent, s.Delivered, s.Mean, s.Max)
}

// LatencyConfig parameterises the experiment.
type LatencyConfig struct {
	// Classes under measurement; DefaultTrafficClasses if empty.
	Classes []TrafficClass
	// Flood enables the priority-inversion attack.
	Flood bool
	// FloodID is the identifier flooded; it should outrank every class
	// (default 0x005, beating even the safety-critical command).
	FloodID uint32
	// FloodPeriod between flood frames (default 250µs — saturating).
	FloodPeriod time.Duration
	// Attacker is the compromised node transmitting the flood
	// (default Infotainment).
	Attacker string
	// Enforce selects the regime (EnforceNone or EnforceHPE).
	Enforce Enforcement
	// Horizon is the measured virtual time span (default 250ms).
	Horizon time.Duration
}

func (c *LatencyConfig) applyDefaults() {
	if len(c.Classes) == 0 {
		c.Classes = DefaultTrafficClasses()
	}
	if c.FloodID == 0 {
		c.FloodID = 0x005
	}
	if c.FloodPeriod == 0 {
		c.FloodPeriod = 250 * time.Microsecond
	}
	if c.Attacker == "" {
		c.Attacker = car.NodeInfotainment
	}
	if c.Enforce == 0 {
		c.Enforce = EnforceNone
	}
	if c.Horizon == 0 {
		c.Horizon = 250 * time.Millisecond
	}
}

// MeasureLatency runs the E1 experiment and returns one stats row per class.
func (h *Harness) MeasureLatency(cfg LatencyConfig) ([]LatencyStats, error) {
	cfg.applyDefaults()
	c, err := car.New(car.Config{Seed: h.Seed})
	if err != nil {
		return nil, err
	}
	if cfg.Enforce == EnforceHPE {
		if _, err := h.DeployEngines(c.Bus(), c, car.AllNodes...); err != nil {
			return nil, err
		}
	}

	// The monitor observes every delivery; it is measurement apparatus, not
	// part of the device, so it carries no HPE and no filters.
	monitor, err := c.Bus().Attach("Monitor")
	if err != nil {
		return nil, err
	}

	type pending struct {
		mu    sync.Mutex
		times []time.Duration // queue timestamps awaiting delivery, FIFO
	}
	byID := map[uint32]*pending{}
	stats := make([]LatencyStats, len(cfg.Classes))
	var totals []struct {
		sum time.Duration
		n   int
		max time.Duration
	}
	totals = make([]struct {
		sum time.Duration
		n   int
		max time.Duration
	}, len(cfg.Classes))
	idToIdx := map[uint32]int{}
	for i, tc := range cfg.Classes {
		stats[i].Class = tc.Name
		byID[tc.ID] = &pending{}
		idToIdx[tc.ID] = i
	}

	monitor.Controller().SetHandler(func(f canbus.Frame) {
		p, ok := byID[f.ID]
		if !ok {
			return
		}
		now := c.Scheduler().Now()
		p.mu.Lock()
		if len(p.times) > 0 {
			sent := p.times[0]
			p.times = p.times[1:]
			idx := idToIdx[f.ID]
			lat := now - sent
			totals[idx].sum += lat
			totals[idx].n++
			if lat > totals[idx].max {
				totals[idx].max = lat
			}
		}
		p.mu.Unlock()
	})

	// Periodic legitimate traffic.
	for i, tc := range cfg.Classes {
		i, tc := i, tc
		node, ok := c.Node(tc.From)
		if !ok {
			return nil, fmt.Errorf("attack: unknown class source %q", tc.From)
		}
		frame := canbus.MustDataFrame(tc.ID, []byte{0x00, 0x30})
		for at := tc.Period; at <= cfg.Horizon; at += tc.Period {
			c.Scheduler().At(at, func(now time.Duration) {
				p := byID[tc.ID]
				p.mu.Lock()
				p.times = append(p.times, now)
				p.mu.Unlock()
				stats[i].Sent++
				_ = node.Send(frame.Clone())
			})
		}
	}

	// The flood, if enabled: a compromised node spamming a top-priority ID.
	if cfg.Flood {
		attacker, ok := c.Node(cfg.Attacker)
		if !ok {
			return nil, fmt.Errorf("attack: unknown attacker %q", cfg.Attacker)
		}
		attacker.Controller().CompromiseFilters()
		flood := canbus.MustDataFrame(cfg.FloodID, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
		for at := cfg.FloodPeriod; at <= cfg.Horizon; at += cfg.FloodPeriod {
			c.Scheduler().At(at, func(time.Duration) {
				_ = attacker.Send(flood.Clone())
			})
		}
	}

	c.Scheduler().RunUntil(cfg.Horizon + 50*time.Millisecond)
	c.Scheduler().Run()

	for i := range stats {
		stats[i].Delivered = totals[i].n
		stats[i].Max = totals[i].max
		if totals[i].n > 0 {
			stats[i].Mean = totals[i].sum / time.Duration(totals[i].n)
		}
	}
	return stats, nil
}
