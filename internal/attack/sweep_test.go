package attack

import (
	"reflect"
	"testing"
)

func TestRunMatrixAggregatesMatchResults(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := Scenarios()[:4]
	m, err := h.RunMatrix(scenarios, EnforceNone, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(m.Results), len(scenarios)*2; got != want {
		t.Fatalf("len(Results) = %d, want %d", got, want)
	}
	if len(m.Regimes) != 2 || m.Regimes[0].Regime != EnforceNone || m.Regimes[1].Regime != EnforceHPE {
		t.Fatalf("regime order %v, want [none hpe]", m.Regimes)
	}
	// Re-summarising the raw results per regime must reproduce the
	// aggregates the sweep accumulated.
	for i, rs := range m.Regimes {
		var manual Summary
		for _, r := range m.Results {
			if r.Enforcement == rs.Regime {
				manual.Add(r)
			}
		}
		if manual != rs.Summary {
			t.Errorf("regime %d summary = %+v, recomputed %+v", i, rs.Summary, manual)
		}
		if rs.Summary.Runs != len(scenarios) {
			t.Errorf("regime %v Runs = %d, want %d", rs.Regime, rs.Summary.Runs, len(scenarios))
		}
	}
	whole := m.Summary()
	if whole.Runs != len(m.Results) {
		t.Errorf("matrix summary Runs = %d, want %d", whole.Runs, len(m.Results))
	}
	if whole != Summarize(m.Results) {
		t.Errorf("Matrix.Summary() %+v != Summarize(Results) %+v", whole, Summarize(m.Results))
	}
}

func TestRunMatrixUnenforcedAttacksSucceed(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.RunMatrix(Scenarios(), EnforceNone)
	if err != nil {
		t.Fatal(err)
	}
	if rate := m.Regimes[0].Summary.SuccessRate(); rate != 1.0 {
		t.Errorf("unenforced success rate = %v, want 1.0", rate)
	}
}

func TestWithSeedSharesCompiledPolicy(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	h2 := h.WithSeed(99)
	if h2.Seed != 99 || h.Seed == 99 {
		t.Errorf("WithSeed: got h2.Seed=%d h.Seed=%d", h2.Seed, h.Seed)
	}
	if h2.Compiled != h.Compiled {
		t.Error("WithSeed must share the compiled policy")
	}
}

func TestMatrixDeterministicForSameSeed(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := Scenarios()[:3]
	run := func(seed uint64) Matrix {
		m, err := h.WithSeed(seed).RunMatrix(scenarios, EnforceNone, EnforceHPE)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed matrices differ")
	}
}
