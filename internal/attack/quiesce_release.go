//go:build !chaosdebug

package attack

// guardQuiescent turns a violated capture precondition into the typed
// ErrNotQuiescent the sweep supervisor quarantines. The chaosdebug build tag
// swaps in the original hard panic (see quiesce_debug.go) for interactive
// debugging, where a stack trace at the violation point beats containment.
func (a *Arena) guardQuiescent() error {
	if !a.car.Quiescent() {
		return ErrNotQuiescent
	}
	return nil
}
