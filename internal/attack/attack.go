// Package attack implements the adversarial half of the case study: one
// executable attack scenario per Table I threat, plus a harness that runs a
// scenario against a car under a chosen enforcement regime and measures
// whether the attack's effect materialised. Harness.Run builds a fresh car
// per call; an Arena reuses one pooled vehicle stack across runs with
// identical results (the fleet engine's fast path).
//
// Two attacker placements from §V-B.2 are modelled:
//
//   - Inside attacks launch from a compromised existing node: its firmware is
//     subverted (acceptance filters bypassed) and it transmits forged frames.
//     A deployed HPE still sits between that node's controller and
//     transceiver, so its approved *writing* list curtails the attack.
//   - Outside attacks launch from a malicious node introduced onto the bus.
//     Such a node carries no HPE; the defence is the victims' approved
//     *reading* lists blocking unexpected messages.
package attack

import (
	"fmt"
	"time"

	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
	"repro/internal/policy"
	"repro/internal/threatmodel"
)

// Placement distinguishes the two attacker models of §V-B.2.
type Placement uint8

// Placements.
const (
	// Inside: a compromised legitimate node.
	Inside Placement = iota + 1
	// Outside: a malicious node introduced onto the bus.
	Outside
)

// String returns the placement name.
func (p Placement) String() string {
	switch p {
	case Inside:
		return "inside"
	case Outside:
		return "outside"
	default:
		return "invalid"
	}
}

// Enforcement selects the defensive configuration under test.
type Enforcement uint8

// Enforcement regimes.
const (
	// EnforceNone removes all filtering beyond CAN's own acceptance
	// filters (which are identifier-based and mode-unaware).
	EnforceNone Enforcement = iota + 1
	// EnforceSoftware relies on the controllers' firmware acceptance
	// filters only; the compromised node's own filters are bypassed.
	EnforceSoftware
	// EnforceHPE deploys a hardware policy engine with the compiled
	// connected-car policy on every legitimate node.
	EnforceHPE
)

// String returns the regime name.
func (e Enforcement) String() string {
	switch e {
	case EnforceNone:
		return "none"
	case EnforceSoftware:
		return "software"
	case EnforceHPE:
		return "hpe"
	default:
		return "invalid"
	}
}

// Injection is one malicious frame sent during a scenario.
type Injection struct {
	// ID and Data form the forged frame.
	ID   uint32
	Data []byte
	// Repeat sends the frame this many times (min 1).
	Repeat int
}

// Scenario is one executable Table I attack.
type Scenario struct {
	// ThreatID links to the rated threat (car.Threat* constants).
	ThreatID string
	// Name is a short human-readable label.
	Name string
	// Placement selects inside/outside attacker.
	Placement Placement
	// Attacker names the compromised node (Inside) or the rogue node to
	// attach (Outside).
	Attacker string
	// Mode is the car mode during the attack.
	Mode policy.Mode
	// Setup prepares vehicle state before injection (lock doors, crash...).
	Setup func(c *car.Car) error
	// Injections are the forged frames.
	Injections []Injection
	// Succeeded inspects post-attack state: true means the attack achieved
	// its effect.
	Succeeded func(s car.State) bool
}

// Result is the measured outcome of one scenario run.
type Result struct {
	// ThreatID and Name echo the scenario.
	ThreatID string
	Name     string
	// Enforcement echoes the regime under test.
	Enforcement Enforcement
	// Placement echoes the attacker model.
	Placement Placement
	// Injected counts malicious frames the attacker attempted.
	Injected int
	// WriteBlocked counts frames stopped at the attacker's write filter.
	WriteBlocked uint64
	// ReadBlocked counts frames stopped at victims' read filters.
	ReadBlocked uint64
	// Succeeded reports whether the attack achieved its effect.
	Succeeded bool
	// LegitimateOK reports whether the post-attack functional probe passed
	// (no false positives introduced by enforcement).
	LegitimateOK bool
}

// String renders a one-line summary.
func (r Result) String() string {
	out := "BLOCKED"
	if r.Succeeded {
		out = "SUCCEEDED"
	}
	return fmt.Sprintf("%-8s %-42s %-8s %-7s injected=%d wblk=%d rblk=%d -> %s",
		r.ThreatID, r.Name, r.Enforcement, r.Placement, r.Injected, r.WriteBlocked, r.ReadBlocked, out)
}

// Harness runs scenarios against fresh cars.
type Harness struct {
	// Compiled is the policy loaded into HPEs under EnforceHPE.
	Compiled *policy.Compiled
	// Cycles is the HPE cycle model.
	Cycles hpe.CycleModel
	// Seed feeds bus error injection (0 disables errors entirely).
	Seed uint64
}

// NewHarness derives and compiles the connected-car policy (via the
// threat-modelling pipeline) and returns a ready harness.
func NewHarness() (*Harness, error) {
	analysis, err := car.Analyze()
	if err != nil {
		return nil, err
	}
	set, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		return nil, err
	}
	compiled, err := policy.Compile(set, policy.CompileOptions{
		Subjects: car.AllNodes,
		Modes:    car.AllModes,
	})
	if err != nil {
		return nil, err
	}
	return &Harness{Compiled: compiled, Cycles: hpe.DefaultCycleModel()}, nil
}

// stepTime spaces injected frames apart on the virtual clock.
const stepTime = 2 * time.Millisecond

// Run executes one scenario under one enforcement regime on a fresh car and
// returns the measured result. For repeated runs, an Arena amortises the
// vehicle construction this path repeats per call.
func (h *Harness) Run(sc Scenario, enf Enforcement) (Result, error) {
	c, err := car.New(car.Config{Seed: h.Seed})
	if err != nil {
		return Result{}, err
	}
	if enf == EnforceHPE {
		if _, err := hpe.Deploy(c.Bus(), h.Compiled, c, h.Cycles, car.AllNodes...); err != nil {
			return Result{}, err
		}
	}
	stripFilters(c, enf)
	return h.execute(c, sc, enf)
}

// stripFilters applies the EnforceNone degradation: controllers in
// promiscuous mode, the weakest credible configuration (not even firmware
// acceptance filters).
func stripFilters(c *car.Car, enf Enforcement) {
	if enf != EnforceNone {
		return
	}
	for _, name := range car.AllNodes {
		if n, ok := c.Node(name); ok {
			n.Controller().SetFilters()
		}
	}
}

// execute runs the scenario body on a car whose enforcement regime is
// already applied: setup, mode switch, attacker placement, injection,
// measurement and the functional probe. Shared by the fresh-car path (Run)
// and the pooled path (Arena.Run).
func (h *Harness) execute(c *car.Car, sc Scenario, enf Enforcement) (Result, error) {
	res := Result{
		ThreatID:    sc.ThreatID,
		Name:        sc.Name,
		Enforcement: enf,
		Placement:   sc.Placement,
	}

	// Scenario preparation happens in Normal mode with enforcement already
	// in place: legitimate setup actions must pass the policy.
	if sc.Setup != nil {
		if err := sc.Setup(c); err != nil {
			return Result{}, fmt.Errorf("attack: setup for %s: %w", sc.ThreatID, err)
		}
		c.Scheduler().Run()
	}
	c.SetMode(sc.Mode)

	attacker, err := h.placeAttacker(c, sc, enf)
	if err != nil {
		return Result{}, err
	}

	before := c.Bus().Stats()
	at := c.Scheduler().Now()
	for _, inj := range sc.Injections {
		n := inj.Repeat
		if n < 1 {
			n = 1
		}
		frame, err := canbus.NewDataFrame(inj.ID, inj.Data)
		if err != nil {
			return Result{}, fmt.Errorf("attack: bad injection for %s: %w", sc.ThreatID, err)
		}
		// One shared frame and one shared event per injection spec: Send
		// clones into the transmit queue, so every scheduled repeat can
		// reference the same values instead of allocating per repeat.
		fire := func(time.Duration) {
			_ = attacker.Send(frame) // blocked sends are measured, not errors
		}
		for i := 0; i < n; i++ {
			at += stepTime
			res.Injected++
			c.Scheduler().At(at, fire)
		}
	}
	c.Scheduler().Run()

	after := c.Bus().Stats()
	res.WriteBlocked = after.WriteBlocked - before.WriteBlocked
	res.ReadBlocked = after.ReadBlocked - before.ReadBlocked
	res.Succeeded = sc.Succeeded(c.State())

	// Functional probe: legitimate traffic must still work after the attack
	// and under enforcement (switch back to Normal for the probe).
	c.SetMode(car.ModeNormal)
	res.LegitimateOK = h.probeLegitimate(c)
	return res, nil
}

// placeAttacker returns the node the scenario transmits from, compromising
// or attaching it as the placement dictates.
func (h *Harness) placeAttacker(c *car.Car, sc Scenario, enf Enforcement) (*canbus.Node, error) {
	switch sc.Placement {
	case Inside:
		node, ok := c.Node(sc.Attacker)
		if !ok {
			return nil, fmt.Errorf("attack: unknown attacker node %q", sc.Attacker)
		}
		// Firmware compromise: the node's own acceptance filters fall.
		node.Controller().CompromiseFilters()
		return node, nil
	case Outside:
		// A malicious node is introduced; it carries no HPE regardless of
		// regime — the defence is on the victims. It discards inbound
		// traffic (a transmit-only attacker): without a handler the
		// controller would clone every delivered frame into a mailbox
		// nobody drains.
		n, err := c.Bus().Attach(sc.Attacker)
		if err != nil {
			return nil, err
		}
		n.Controller().SetHandler(func(canbus.Frame) {})
		return n, nil
	default:
		return nil, fmt.Errorf("attack: invalid placement %d", sc.Placement)
	}
}

// probeLegitimate exercises a representative legitimate action and reports
// whether it still works: the sensors' obstacle report must still stop
// propulsion, and the safety module must be able to restore it.
func (h *Harness) probeLegitimate(c *car.Car) bool {
	if err := c.RestorePropulsion(); err != nil {
		return false
	}
	c.Scheduler().Run()
	if !c.State().Propulsion {
		return false
	}
	if err := c.ObstacleStop(); err != nil {
		return false
	}
	c.Scheduler().Run()
	if c.State().Propulsion {
		return false
	}
	if err := c.RestorePropulsion(); err != nil {
		return false
	}
	c.Scheduler().Run()
	return c.State().Propulsion
}

// RunAll executes every scenario under every requested regime.
func (h *Harness) RunAll(scenarios []Scenario, regimes ...Enforcement) ([]Result, error) {
	m, err := h.RunMatrix(scenarios, regimes...)
	if err != nil {
		return nil, err
	}
	return m.Results, nil
}
