// Package attack implements the adversarial half of the case study: one
// executable attack scenario per Table I threat, plus a harness that runs a
// scenario against a car under a chosen enforcement regime and measures
// whether the attack's effect materialised. Harness.Run builds a fresh car
// per call; an Arena reuses one pooled vehicle stack across runs with
// identical results (the fleet engine's fast path).
//
// Two attacker placements from §V-B.2 are modelled:
//
//   - Inside attacks launch from a compromised existing node: its firmware is
//     subverted (acceptance filters bypassed) and it transmits forged frames.
//     A deployed HPE still sits between that node's controller and
//     transceiver, so its approved *writing* list curtails the attack.
//   - Outside attacks launch from a malicious node introduced onto the bus.
//     Such a node carries no HPE; the defence is the victims' approved
//     *reading* lists blocking unexpected messages.
//
// Beyond the fixed Table I matrix, scenarios support the constructs the
// campaign generator (internal/campaign) lowers onto this harness:
// coordinated multi-attacker injections (Coattackers + Injection.From),
// per-injection pacing (Injection.Gap, ParallelInjections), multi-stage
// campaigns with predicates gating each stage (Stages), and a fourth
// enforcement regime (EnforceBehaviour) that layers the §V-A behavioural
// rules — a per-node write budget and a payload-aware "no unlock while in
// motion" veto — on top of the identifier HPE.
package attack

import (
	"fmt"
	"time"

	"repro/internal/behaviour"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/hpe"
	"repro/internal/policy"
	"repro/internal/policy/ir"
	"repro/internal/threatmodel"
)

// Placement distinguishes the two attacker models of §V-B.2.
type Placement uint8

// Placements.
const (
	// Inside: a compromised legitimate node.
	Inside Placement = iota + 1
	// Outside: a malicious node introduced onto the bus.
	Outside
)

// String returns the placement name.
func (p Placement) String() string {
	switch p {
	case Inside:
		return "inside"
	case Outside:
		return "outside"
	default:
		return "invalid"
	}
}

// Enforcement selects the defensive configuration under test.
type Enforcement uint8

// Enforcement regimes.
const (
	// EnforceNone removes all filtering beyond CAN's own acceptance
	// filters (which are identifier-based and mode-unaware).
	EnforceNone Enforcement = iota + 1
	// EnforceSoftware relies on the controllers' firmware acceptance
	// filters only; the compromised node's own filters are bypassed.
	EnforceSoftware
	// EnforceHPE deploys a hardware policy engine with the compiled
	// connected-car policy on every legitimate node.
	EnforceHPE
	// EnforceBehaviour deploys the HPE and layers the default behavioural
	// rule set (per-node write budget, payload-aware unlock-in-motion veto)
	// on every legitimate node — the §V-A extension that also stops
	// *approved* writers whose credentials are abused, e.g. a legitimate
	// node flooding its own identifier.
	EnforceBehaviour
)

// String returns the regime name.
func (e Enforcement) String() string {
	switch e {
	case EnforceNone:
		return "none"
	case EnforceSoftware:
		return "software"
	case EnforceHPE:
		return "hpe"
	case EnforceBehaviour:
		return "behaviour"
	default:
		return "invalid"
	}
}

// Injection is one malicious frame sent during a scenario.
type Injection struct {
	// ID and Data form the forged frame.
	ID   uint32
	Data []byte
	// Repeat sends the frame this many times (min 1).
	Repeat int
	// Gap is the virtual-time spacing between repeats (stepTime if zero) —
	// the knob flood scenarios turn to exceed behavioural rate budgets.
	Gap time.Duration
	// From names the transmitting attacker: empty for the scenario's primary
	// attacker, otherwise one of its Coattackers.
	From string
}

// Attacker is one additional attacker placement for coordinated
// multi-attacker scenarios; injections reference it via Injection.From.
type Attacker struct {
	// Name is the compromised node (Inside) or the rogue node to attach
	// (Outside).
	Name string
	// Placement selects the attacker model.
	Placement Placement
}

// Stage is one phase of a multi-stage campaign scenario (recon → injection →
// persistence). Stages run in order after the scenario's base injections;
// each stage's predicate is evaluated against the observable state the
// previous phases produced.
type Stage struct {
	// Name labels the stage.
	Name string
	// Proceed gates the stage: evaluated before its injections fire; false
	// halts the scenario (remaining stages are skipped). nil means always.
	Proceed func(s car.State) bool
	// Injections are the stage's forged frames.
	Injections []Injection
}

// Scenario is one executable Table I attack.
type Scenario struct {
	// ThreatID links to the rated threat (car.Threat* constants).
	ThreatID string
	// Name is a short human-readable label.
	Name string
	// Placement selects inside/outside attacker.
	Placement Placement
	// Attacker names the compromised node (Inside) or the rogue node to
	// attach (Outside).
	Attacker string
	// Mode is the car mode during the attack.
	Mode policy.Mode
	// Setup prepares vehicle state before injection (lock doors, crash...).
	Setup func(c *car.Car) error
	// Injections are the forged frames.
	Injections []Injection
	// Coattackers are additional attacker placements for coordinated
	// multi-attacker scenarios; Injections select them via From.
	Coattackers []Attacker
	// ParallelInjections schedules every injection spec from the same start
	// instant (coordinated streams) instead of sequentially.
	ParallelInjections bool
	// Stages are optional campaign phases run after Injections, each gated
	// by its predicate.
	Stages []Stage
	// SkipProbe skips the post-attack functional probe (LegitimateOK is then
	// reported true): bulk campaign families trade false-positive
	// measurement for sweep throughput.
	SkipProbe bool
	// PrefixKey groups scenarios that share an identical pre-attack prefix
	// (same Setup func, or none): PlanBatches buckets equal non-zero keys so
	// the arena replays the prefix once per regime and forks every bucketed
	// cell from a checkpoint. Zero (the default) opts the scenario out of
	// prefix sharing; it always runs standalone.
	PrefixKey uint64
	// Succeeded inspects post-attack state: true means the attack achieved
	// its effect.
	Succeeded func(s car.State) bool
}

// Result is the measured outcome of one scenario run.
type Result struct {
	// ThreatID and Name echo the scenario.
	ThreatID string
	Name     string
	// Enforcement echoes the regime under test.
	Enforcement Enforcement
	// Placement echoes the attacker model.
	Placement Placement
	// Injected counts malicious frames the attacker attempted.
	Injected int
	// WriteBlocked counts frames stopped at the attacker's write filter.
	WriteBlocked uint64
	// ReadBlocked counts frames stopped at victims' read filters.
	ReadBlocked uint64
	// Succeeded reports whether the attack achieved its effect.
	Succeeded bool
	// LegitimateOK reports whether the post-attack functional probe passed
	// (no false positives introduced by enforcement). Scenarios with
	// SkipProbe report true.
	LegitimateOK bool
	// StagesRun counts campaign stages whose predicate held and whose
	// injections fired (0 for single-stage scenarios).
	StagesRun int
	// Halted reports that a stage predicate failed and stopped the campaign
	// scenario early.
	Halted bool
}

// String renders a one-line summary.
func (r Result) String() string {
	out := "BLOCKED"
	if r.Succeeded {
		out = "SUCCEEDED"
	}
	return fmt.Sprintf("%-8s %-42s %-8s %-7s injected=%d wblk=%d rblk=%d -> %s",
		r.ThreatID, r.Name, r.Enforcement, r.Placement, r.Injected, r.WriteBlocked, r.ReadBlocked, out)
}

// Harness runs scenarios against fresh cars.
type Harness struct {
	// Compiled is the policy loaded into HPEs under EnforceHPE. It is always
	// populated — report views render approved lists from it — even when a
	// non-table backend enforces.
	Compiled *policy.Compiled
	// Backend names the policy backend engines decide with; "" means the
	// default table interpreter.
	Backend string
	// Enforcer is the compiled enforcer for non-table backends. It is nil on
	// the table path, which keeps every legacy install/deploy literally
	// unchanged (and default-backend sweeps byte-identical).
	Enforcer ir.Enforcer
	// Cycles is the HPE cycle model.
	Cycles hpe.CycleModel
	// Seed feeds bus error injection (0 disables errors entirely).
	Seed uint64
}

// NewHarness derives and compiles the connected-car policy (via the
// threat-modelling pipeline) and returns a ready harness on the default
// table backend.
func NewHarness() (*Harness, error) { return NewHarnessBackend("") }

// NewHarnessBackend is NewHarness with the enforcement backend selected by
// name ("table", "expr", "closure"; empty = table). The table artifact is
// compiled either way — report views and the software-filter regime read
// approved lists from it — but under a non-table backend the policy engines
// decide through the named backend's compiled enforcer.
func NewHarnessBackend(backend string) (*Harness, error) {
	analysis, err := car.Analyze()
	if err != nil {
		return nil, err
	}
	set, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		return nil, err
	}
	return NewHarnessFromSet(set, backend)
}

// NewHarnessFromSet builds a harness enforcing exactly the given policy set
// under the named backend — the constructor gate sweeps use to measure a
// candidate policy (an OTA bundle's verified set) on the simulated fleet
// before any real vehicle installs it. NewHarnessBackend is this applied to
// the analysis-derived Table I set.
func NewHarnessFromSet(set *policy.Set, backend string) (*Harness, error) {
	opts := policy.CompileOptions{
		Subjects: car.AllNodes,
		Modes:    car.AllModes,
	}
	compiled, err := policy.Compile(set, opts)
	if err != nil {
		return nil, err
	}
	h := &Harness{Compiled: compiled, Backend: backend, Cycles: hpe.DefaultCycleModel()}
	if backend != "" && backend != ir.DefaultBackend {
		opts.Backend = backend
		if h.Enforcer, err = ir.Build(set, opts); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// DeployEngines attaches policy engines running the harness's backend to
// the named bus nodes: hpe.Deploy or hpe.DeployEnforcer as appropriate.
func (h *Harness) DeployEngines(bus *canbus.Bus, modes hpe.ModeSource, nodeNames ...string) (map[string]*hpe.Engine, error) {
	if h.Enforcer != nil {
		return hpe.DeployEnforcer(bus, h.Enforcer, modes, h.Cycles, nodeNames...)
	}
	return hpe.Deploy(bus, h.Compiled, modes, h.Cycles, nodeNames...)
}

// installEngine and reinstallEngine are the pooled-arena install paths,
// routed through the harness's backend.
func (h *Harness) installEngine(e *hpe.Engine) error {
	if h.Enforcer != nil {
		return e.InstallEnforcer(h.Enforcer)
	}
	return e.Install(h.Compiled)
}

func (h *Harness) reinstallEngine(e *hpe.Engine) error {
	if h.Enforcer != nil {
		return e.ReinstallEnforcer(h.Enforcer)
	}
	return e.Reinstall(h.Compiled)
}

// stepTime spaces injected frames apart on the virtual clock.
const stepTime = 2 * time.Millisecond

// Run executes one scenario under one enforcement regime on a fresh car and
// returns the measured result. For repeated runs, an Arena amortises the
// vehicle construction this path repeats per call.
func (h *Harness) Run(sc Scenario, enf Enforcement) (Result, error) {
	c, err := car.New(car.Config{Seed: h.Seed})
	if err != nil {
		return Result{}, err
	}
	switch enf {
	case EnforceHPE:
		if _, err := h.DeployEngines(c.Bus(), c, car.AllNodes...); err != nil {
			return Result{}, err
		}
	case EnforceBehaviour:
		engines, err := h.DeployEngines(c.Bus(), c, car.AllNodes...)
		if err != nil {
			return Result{}, err
		}
		for _, name := range car.AllNodes {
			node, _ := c.Node(name)
			node.SetInlineFilter(newBehaviourGuard(c, engines[name]))
		}
	}
	stripFilters(c, enf)
	return h.execute(c, sc, enf, nil)
}

// Default behavioural rule parameters: any single node may transmit at most
// behaviourWriteBudget frames per sliding behaviourWindow. The budget sits
// comfortably above every legitimate burst in the harness (setup + probe +
// Table I injection trains) and far below campaign flood rates.
const (
	behaviourWriteBudget = 8
	behaviourWindow      = 10 * time.Millisecond
)

// unlockInMotion is the payload-aware situational rule of §V-A: it vetoes
// door-unlock commands while the vehicle is moving, but lets lock commands
// and parked unlocks through. It inspects the opcode byte, which the generic
// behaviour.SituationalDeny (identifier-granular) cannot.
type unlockInMotion struct{ c *car.Car }

// Name implements behaviour.Rule.
func (r unlockInMotion) Name() string { return "no-unlock-in-motion" }

// Decide implements behaviour.Rule.
func (r unlockInMotion) Decide(dir canbus.Direction, f canbus.Frame, _ time.Duration) canbus.Verdict {
	if dir == canbus.Read && f.ID == car.IDDoorCommand &&
		len(f.Data) > 0 && f.Data[0] == car.OpUnlock &&
		r.c.State().ActualSpeed > 0 {
		return canbus.Block
	}
	return canbus.Grant
}

// newBehaviourGuard wraps one node's identifier engine in the default
// behavioural rule set, clocked by the car's scheduler. The fresh path
// builds guards per run; the Arena builds them once and resets them. Both
// paths drive the guard from exactly one goroutine (the harness, like the
// simulation substrate it wraps, is single-owner), so the guard runs in
// single-owner mode — its per-decision locking and rules snapshot were the
// dominant allocation site of whole campaign sweeps.
func newBehaviourGuard(c *car.Car, base canbus.InlineFilter) *behaviour.Engine {
	g := behaviour.New(base, c.Scheduler().Now)
	g.SetSingleOwner(true)
	if err := g.AddRule(&behaviour.RateLimit{
		Label:        "write-budget",
		Direction:    canbus.Write,
		IDs:          policy.Span(0, 0x7FF),
		MaxPerWindow: behaviourWriteBudget,
		Window:       behaviourWindow,
	}); err != nil {
		panic(err) // static rule; fails only on programming errors
	}
	if err := g.AddRule(unlockInMotion{c: c}); err != nil {
		panic(err)
	}
	return g
}

// stripFilters applies the EnforceNone degradation: controllers in
// promiscuous mode, the weakest credible configuration (not even firmware
// acceptance filters).
func stripFilters(c *car.Car, enf Enforcement) {
	if enf != EnforceNone {
		return
	}
	for _, name := range car.AllNodes {
		if n, ok := c.Node(name); ok {
			n.Controller().SetFilters()
		}
	}
}

// execute runs the scenario body on a car whose enforcement regime is
// already applied: setup, mode switch, attacker placement, injection,
// measurement and the functional probe. Shared by the fresh-car path (Run,
// nil pool) and the pooled path (Arena.Run, the arena's burst pool).
//
// It is split into runSetup (the checkpointable prefix) and executeTail (the
// per-cell remainder) so the arena's batched path can replay a shared prefix
// once and fork each cell from a snapshot; this composed form is the oracle
// the batched path must match byte-for-byte.
func (h *Harness) execute(c *car.Car, sc Scenario, enf Enforcement, pool *injectPool) (Result, error) {
	if err := h.runSetup(c, sc); err != nil {
		return Result{}, err
	}
	return h.executeTail(c, sc, enf, pool)
}

// runSetup runs the scenario's preparation phase and drains the scheduler,
// leaving the car quiescent — the instant the arena checkpoints. Scenario
// preparation happens in Normal mode with enforcement already in place:
// legitimate setup actions must pass the policy.
func (h *Harness) runSetup(c *car.Car, sc Scenario) error {
	if sc.Setup != nil {
		if err := sc.Setup(c); err != nil {
			return fmt.Errorf("attack: setup for %s: %w", sc.ThreatID, err)
		}
		c.Scheduler().Run()
	}
	return nil
}

// executeTail runs everything after the checkpointable prefix: mode switch,
// attacker placement, injection, measurement and the functional probe. The
// pool reset lives here (not in execute) so a checkpoint-forked cell recycles
// its bursts exactly like a reset one; runSetup never touches the pool.
func (h *Harness) executeTail(c *car.Car, sc Scenario, enf Enforcement, pool *injectPool) (Result, error) {
	if pool != nil {
		pool.reset()
	}
	res := Result{
		ThreatID:    sc.ThreatID,
		Name:        sc.Name,
		Enforcement: enf,
		Placement:   sc.Placement,
	}
	c.SetMode(sc.Mode)

	attackers, err := placeAttackers(c, sc)
	if err != nil {
		return Result{}, err
	}

	before := c.Bus().Stats()
	if err := scheduleInjections(c, &attackers, sc.Injections, sc.ParallelInjections, &res, pool); err != nil {
		return Result{}, fmt.Errorf("attack: %s: %w", sc.ThreatID, err)
	}
	c.Scheduler().Run()

	// Campaign stages: each runs only if its predicate holds against the
	// state the previous phases produced; a failed predicate halts the
	// scenario (the defence broke the kill chain).
	for i := range sc.Stages {
		st := &sc.Stages[i]
		if st.Proceed != nil && !st.Proceed(c.State()) {
			res.Halted = true
			break
		}
		res.StagesRun++
		if err := scheduleInjections(c, &attackers, st.Injections, sc.ParallelInjections, &res, pool); err != nil {
			return Result{}, fmt.Errorf("attack: %s stage %q: %w", sc.ThreatID, st.Name, err)
		}
		c.Scheduler().Run()
	}

	after := c.Bus().Stats()
	res.WriteBlocked = after.WriteBlocked - before.WriteBlocked
	res.ReadBlocked = after.ReadBlocked - before.ReadBlocked
	res.Succeeded = sc.Succeeded(c.State())

	// Functional probe: legitimate traffic must still work after the attack
	// and under enforcement (switch back to Normal for the probe).
	c.SetMode(car.ModeNormal)
	if sc.SkipProbe {
		res.LegitimateOK = true
	} else {
		res.LegitimateOK = h.probeLegitimate(c)
	}
	return res, nil
}

// placedAttackers resolves Injection.From names to placed bus nodes. The
// common single-attacker case stays allocation-free (nil slices).
type placedAttackers struct {
	primary     *canbus.Node
	primaryName string
	names       []string
	nodes       []*canbus.Node
}

// lookup resolves an injection's From field ("" = primary attacker).
func (p *placedAttackers) lookup(name string) *canbus.Node {
	if name == "" || name == p.primaryName {
		return p.primary
	}
	for i, n := range p.names {
		if n == name {
			return p.nodes[i]
		}
	}
	return nil
}

// placeAttackers places the scenario's primary attacker and every
// coattacker, compromising or attaching each as its placement dictates.
func placeAttackers(c *car.Car, sc Scenario) (placedAttackers, error) {
	primary, err := placeAttacker(c, sc.Attacker, sc.Placement)
	if err != nil {
		return placedAttackers{}, err
	}
	p := placedAttackers{primary: primary, primaryName: sc.Attacker}
	for _, co := range sc.Coattackers {
		if co.Name == sc.Attacker {
			continue
		}
		n, err := placeAttacker(c, co.Name, co.Placement)
		if err != nil {
			return placedAttackers{}, err
		}
		p.names = append(p.names, co.Name)
		p.nodes = append(p.nodes, n)
	}
	return p, nil
}

// placeAttacker returns the node a scenario transmits from.
func placeAttacker(c *car.Car, name string, placement Placement) (*canbus.Node, error) {
	switch placement {
	case Inside:
		node, ok := c.Node(name)
		if !ok {
			return nil, fmt.Errorf("attack: unknown attacker node %q", name)
		}
		// Firmware compromise: the node's own acceptance filters fall.
		node.Controller().CompromiseFilters()
		return node, nil
	case Outside:
		// A malicious node is introduced; it carries no HPE regardless of
		// regime — the defence is on the victims. It discards inbound
		// traffic (a transmit-only attacker): without a handler the
		// controller would clone every delivered frame into a mailbox
		// nobody drains.
		n, err := c.Bus().Attach(name)
		if err != nil {
			return nil, err
		}
		n.Controller().SetHandler(func(canbus.Frame) {})
		return n, nil
	default:
		return nil, fmt.Errorf("attack: invalid placement %d", placement)
	}
}

// burst is one reusable injection emitter: the transmitting node, the forged
// frame with its payload inlined, and a fire event prebound at construction.
// Pooled runs recycle bursts across cells, so scheduling an injection spec
// allocates nothing after the first vehicle — the per-spec frame payload and
// event closure used to be the largest allocation site left in a campaign
// sweep's cell loop.
type burst struct {
	tx   *canbus.Node
	f    canbus.Frame
	data [canbus.MaxDataLen]byte
	fire func(time.Duration)
}

// injectPool recycles bursts within one arena. Reset per scenario run; every
// event scheduled against a burst fires before the run returns, so reuse in
// the next cell can never alias a pending event.
type injectPool struct {
	bursts []*burst
	used   int
}

// next returns a recycled burst, growing the pool on first use.
func (p *injectPool) next() *burst {
	if p.used < len(p.bursts) {
		b := p.bursts[p.used]
		p.used++
		return b
	}
	b := &burst{}
	b.fire = func(time.Duration) {
		// The send is the event's only action, so it may run the
		// arbitration round inline; blocked sends are measured, not errors.
		_ = b.tx.SendFinal(b.f)
	}
	p.bursts = append(p.bursts, b)
	p.used++
	return b
}

// reset makes every burst available again.
func (p *injectPool) reset() { p.used = 0 }

// scheduleInjections queues one phase's injection specs on the virtual
// clock. Sequential mode (the Table I default) chains specs one after
// another; parallel mode starts every spec at the same instant, modelling
// coordinated attacker streams. A nil pool (the fresh-car path) allocates
// the frame and event per spec; a pooled run recycles them.
func scheduleInjections(c *car.Car, attackers *placedAttackers, injections []Injection, parallel bool, res *Result, pool *injectPool) error {
	base := c.Scheduler().Now()
	at := base
	for _, inj := range injections {
		tx := attackers.lookup(inj.From)
		if tx == nil {
			return fmt.Errorf("injection from unplaced attacker %q", inj.From)
		}
		n := inj.Repeat
		if n < 1 {
			n = 1
		}
		gap := inj.Gap
		if gap <= 0 {
			gap = stepTime
		}
		// One shared frame and one shared event per injection spec: Send
		// clones into the transmit queue, so every scheduled repeat can
		// reference the same values instead of allocating per repeat.
		var fire func(time.Duration)
		if pool != nil {
			b := pool.next()
			// Validate against the spec's own payload first, then move it
			// into the burst's inline buffer — same checks as NewDataFrame,
			// no payload allocation.
			b.f = canbus.Frame{ID: inj.ID, Data: inj.Data, DLC: uint8(len(inj.Data))}
			if err := b.f.Validate(); err != nil {
				return fmt.Errorf("bad injection: %w", err)
			}
			if len(inj.Data) == 0 {
				b.f.Data = nil
			} else {
				b.f.Data = b.data[:copy(b.data[:], inj.Data)]
			}
			b.tx = tx
			fire = b.fire
		} else {
			frame, err := canbus.NewDataFrame(inj.ID, inj.Data)
			if err != nil {
				return fmt.Errorf("bad injection: %w", err)
			}
			fire = func(time.Duration) {
				_ = tx.SendFinal(frame)
			}
		}
		start := at
		if parallel {
			start = base
		}
		for i := 0; i < n; i++ {
			start += gap
			res.Injected++
			c.Scheduler().At(start, fire)
		}
		if !parallel {
			at = start
		}
	}
	return nil
}

// probeLegitimate exercises a representative legitimate action and reports
// whether it still works: the sensors' obstacle report must still stop
// propulsion, and the safety module must be able to restore it.
func (h *Harness) probeLegitimate(c *car.Car) bool {
	if err := c.RestorePropulsion(); err != nil {
		return false
	}
	c.Scheduler().Run()
	if !c.State().Propulsion {
		return false
	}
	if err := c.ObstacleStop(); err != nil {
		return false
	}
	c.Scheduler().Run()
	if c.State().Propulsion {
		return false
	}
	if err := c.RestorePropulsion(); err != nil {
		return false
	}
	c.Scheduler().Run()
	return c.State().Propulsion
}

// RunAll executes every scenario under every requested regime.
func (h *Harness) RunAll(scenarios []Scenario, regimes ...Enforcement) ([]Result, error) {
	m, err := h.RunMatrix(scenarios, regimes...)
	if err != nil {
		return nil, err
	}
	return m.Results, nil
}
