package attack

import "errors"

// Typed failures the sweep supervisor quarantines instead of letting a
// batched sweep abort (or the process die):
var (
	// ErrNotQuiescent reports a checkpoint capture attempted on an arena
	// whose scheduler still has queued events or whose bus is mid-
	// transmission. Scenario prefixes are supposed to drain the scheduler
	// before the capture instant; a violated contract is a scenario bug, and
	// the supervisor demotes the cell to the oracle path rather than
	// crashing the fleet. Build with -tags chaosdebug to keep the original
	// hard panic for debugging.
	ErrNotQuiescent = errors.New("attack: checkpoint capture on a non-quiescent arena")
	// ErrIntegrity reports a checkpoint restore whose cheap state checksum
	// no longer matches the capture — the restored arena would fork cells
	// from corrupted state, so the supervisor discards the checkpoint and
	// retries from a full reset.
	ErrIntegrity = errors.New("attack: checkpoint integrity checksum mismatch")
)
