package attack

import (
	"testing"

	"repro/internal/car"
)

func harness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestScenarioCoverage(t *testing.T) {
	// One executable scenario per Table I threat, matching IDs exactly.
	scs := Scenarios()
	if len(scs) != len(car.TableRowOrder) {
		t.Fatalf("%d scenarios for %d table rows", len(scs), len(car.TableRowOrder))
	}
	byID := map[string]Scenario{}
	for _, sc := range scs {
		if _, dup := byID[sc.ThreatID]; dup {
			t.Errorf("duplicate scenario for %s", sc.ThreatID)
		}
		byID[sc.ThreatID] = sc
	}
	for _, id := range car.TableRowOrder {
		if _, ok := byID[id]; !ok {
			t.Errorf("no scenario for threat %s", id)
		}
	}
	if _, ok := ScenarioFor(car.ThreatEPSDeactivate); !ok {
		t.Error("ScenarioFor failed")
	}
	if _, ok := ScenarioFor("ghost"); ok {
		t.Error("ScenarioFor found ghost")
	}
}

// TestAllAttacksSucceedWithoutEnforcement is the baseline half of the
// paper's argument: on a stock CAN bus every Table I attack achieves its
// effect.
func TestAllAttacksSucceedWithoutEnforcement(t *testing.T) {
	h := harness(t)
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.ThreatID, func(t *testing.T) {
			r, err := h.Run(sc, EnforceNone)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Succeeded {
				t.Errorf("attack blocked with no enforcement: %+v", r)
			}
		})
	}
}

// TestSoftwareFiltersDoNotStopTableIAttacks shows the insufficiency of
// firmware acceptance filters (§V-B.2): they are identifier-based and
// mode-unaware, and the attacker's own node ignores them entirely.
func TestSoftwareFiltersDoNotStopTableIAttacks(t *testing.T) {
	h := harness(t)
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.ThreatID, func(t *testing.T) {
			r, err := h.Run(sc, EnforceSoftware)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Succeeded {
				t.Errorf("software filters unexpectedly stopped %s", sc.ThreatID)
			}
		})
	}
}

// TestHPEBlocksAllTableIAttacks is the enforcement half: with the compiled
// Table I policy on every node's hardware engine, every attack is blocked
// and legitimate functionality is preserved.
func TestHPEBlocksAllTableIAttacks(t *testing.T) {
	h := harness(t)
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.ThreatID, func(t *testing.T) {
			r, err := h.Run(sc, EnforceHPE)
			if err != nil {
				t.Fatal(err)
			}
			if r.Succeeded {
				t.Errorf("attack succeeded under HPE: %+v", r)
			}
			if !r.LegitimateOK {
				t.Errorf("enforcement broke legitimate traffic (false positive): %+v", r)
			}
			if r.WriteBlocked+r.ReadBlocked == 0 {
				t.Errorf("no frames blocked, yet attack failed—measurement hole: %+v", r)
			}
		})
	}
}

func TestInsideAttacksBlockedAtWriteFilter(t *testing.T) {
	h := harness(t)
	for _, sc := range Scenarios() {
		if sc.Placement != Inside {
			continue
		}
		sc := sc
		t.Run(sc.ThreatID, func(t *testing.T) {
			r, err := h.Run(sc, EnforceHPE)
			if err != nil {
				t.Fatal(err)
			}
			if r.WriteBlocked == 0 {
				t.Errorf("inside attack not stopped at the write filter: %+v", r)
			}
		})
	}
}

func TestOutsideAttacksBlockedAtReadFilters(t *testing.T) {
	h := harness(t)
	for _, sc := range Scenarios() {
		if sc.Placement != Outside {
			continue
		}
		sc := sc
		t.Run(sc.ThreatID, func(t *testing.T) {
			r, err := h.Run(sc, EnforceHPE)
			if err != nil {
				t.Fatal(err)
			}
			if r.ReadBlocked == 0 {
				t.Errorf("outside attack not stopped at read filters: %+v", r)
			}
			if r.WriteBlocked != 0 {
				t.Errorf("outside attacker has no HPE; writes cannot be blocked: %+v", r)
			}
		})
	}
}

func TestRunAllMatrix(t *testing.T) {
	h := harness(t)
	results, err := h.RunAll(Scenarios(), EnforceNone, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(Scenarios()) {
		t.Fatalf("results = %d", len(results))
	}
	succeededNone, blockedHPE := 0, 0
	for _, r := range results {
		switch r.Enforcement {
		case EnforceNone:
			if r.Succeeded {
				succeededNone++
			}
		case EnforceHPE:
			if !r.Succeeded {
				blockedHPE++
			}
		}
	}
	if succeededNone != len(Scenarios()) {
		t.Errorf("baseline: %d/%d attacks succeeded", succeededNone, len(Scenarios()))
	}
	if blockedHPE != len(Scenarios()) {
		t.Errorf("HPE: %d/%d attacks blocked", blockedHPE, len(Scenarios()))
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	h := harness(t)
	bad := Scenario{
		ThreatID:  "X",
		Placement: Inside,
		Attacker:  "NoSuchNode",
		Mode:      car.ModeNormal,
		Succeeded: func(car.State) bool { return false },
	}
	if _, err := h.Run(bad, EnforceNone); err == nil {
		t.Error("unknown attacker node accepted")
	}
	bad.Placement = Placement(99)
	if _, err := h.Run(bad, EnforceNone); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{ThreatID: "T", Name: "n", Enforcement: EnforceHPE, Placement: Inside,
		Injected: 3, WriteBlocked: 3, Succeeded: false}
	s := r.String()
	if s == "" || r.Enforcement.String() != "hpe" || r.Placement.String() != "inside" {
		t.Errorf("String rendering broken: %q", s)
	}
}
