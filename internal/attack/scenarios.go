package attack

import (
	"encoding/binary"

	"repro/internal/canbus"
	"repro/internal/car"
)

// Scenarios returns one executable attack per Table I threat, in row order.
// Each scenario encodes the concrete mechanics behind the table's threat
// description; its Succeeded predicate is the measurable effect the paper's
// text attributes to the threat.
func Scenarios() []Scenario {
	disable := []byte{car.OpDisable}
	unlock := []byte{car.OpUnlock}
	lock := []byte{car.OpLock}

	return []Scenario{
		{
			ThreatID:  car.ThreatECUSpoofLocks,
			Name:      "spoofed ECU-disable via lock/safety messages",
			Placement: Inside,
			Attacker:  car.NodeInfotainment,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDECUCommand, Data: disable, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.Propulsion },
		},
		{
			ThreatID:  car.ThreatECUSpoofSensors,
			Name:      "spoofed ECU-disable from compromised sensor",
			Placement: Inside,
			Attacker:  car.NodeSensors,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDECUCommand, Data: disable, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.Propulsion },
		},
		{
			ThreatID:  car.ThreatECUTrackingOff,
			Name:      "disable anti-theft tracking via OBD dongle",
			Placement: Outside,
			Attacker:  "Rogue-OBD",
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDModemControl, Data: disable, Repeat: 2},
			},
			Succeeded: func(s car.State) bool { return !s.TrackingActive },
		},
		{
			ThreatID:  car.ThreatECUFailsafeOvrd,
			Name:      "fail-safe override to reactivate vehicle",
			Placement: Outside,
			Attacker:  "Rogue-Cellular",
			Mode:      car.ModeFailSafe,
			Setup: func(c *car.Car) error {
				// The vehicle was crashed/deactivated: propulsion cut.
				return c.TriggerCrash()
			},
			Injections: []Injection{
				{ID: car.IDECUCommand, Data: []byte{car.OpEnable}, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return s.Propulsion },
		},
		{
			ThreatID:  car.ThreatEPSDeactivate,
			Name:      "EPS deactivation from compromised node",
			Placement: Inside,
			Attacker:  car.NodeInfotainment,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDEPSCommand, Data: disable, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.EPSActive },
		},
		{
			ThreatID:  car.ThreatEngineDeactivate,
			Name:      "engine stop from compromised sensor",
			Placement: Inside,
			Attacker:  car.NodeSensors,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDEngineCommand, Data: disable, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.EngineRunning },
		},
		{
			ThreatID:  car.ThreatConnCritModify,
			Name:      "firmware modification during operation",
			Placement: Outside,
			Attacker:  "Rogue-Updater",
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDFirmwareUpdate, Data: []byte{0xDE, 0xAD}, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return s.FirmwareModified },
		},
		{
			ThreatID:  car.ThreatConnPrivacy,
			Name:      "privacy exfiltration via forged tracking reports",
			Placement: Inside,
			Attacker:  car.NodeInfotainment,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDTrackingReport, Data: []byte{0xEE, 0x01}, Repeat: 5},
			},
			Succeeded: func(s car.State) bool { return s.ExfilReports > 0 },
		},
		{
			ThreatID:  car.ThreatConnModemOffEmg,
			Name:      "modem kill preventing emergency comms",
			Placement: Inside,
			Attacker:  car.NodeInfotainment,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDModemControl, Data: disable, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.ModemEnabled },
		},
		{
			ThreatID:  car.ThreatConnModemOffSens,
			Name:      "modem kill from compromised sensor path",
			Placement: Inside,
			Attacker:  car.NodeSensors,
			Mode:      car.ModeFailSafe,
			Setup: func(c *car.Car) error {
				// Emergency in progress: the modem must stay available.
				return c.TriggerCrash()
			},
			Injections: []Injection{
				{ID: car.IDModemControl, Data: disable, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.ModemEnabled },
		},
		{
			ThreatID:  car.ThreatInfoEscalate,
			Name:      "browser exploit escalating to update channel",
			Placement: Inside,
			Attacker:  car.NodeInfotainment,
			Mode:      car.ModeNormal,
			Injections: []Injection{
				{ID: car.IDFirmwareUpdate, Data: []byte{0xBE, 0xEF}, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return s.FirmwareModified },
		},
		{
			ThreatID:  car.ThreatInfoStatusMod,
			Name:      "falsified car status values on display",
			Placement: Inside,
			Attacker:  car.NodeTelematics,
			Mode:      car.ModeNormal,
			Setup: func(c *car.Car) error {
				// Establish ground truth on the display first.
				return sendSpeedRound(c, 80)
			},
			Injections: []Injection{
				{ID: car.IDVehicleStatus, Data: speedBytes(10), Repeat: 3},
			},
			Succeeded: func(s car.State) bool {
				return s.DisplayedSpeed != s.ActualSpeed
			},
		},
		{
			ThreatID:  car.ThreatDoorUnlockMotion,
			Name:      "unlock while in motion",
			Placement: Inside,
			Attacker:  car.NodeInfotainment,
			Mode:      car.ModeNormal,
			Setup: func(c *car.Car) error {
				if err := sendSpeedRound(c, 90); err != nil {
					return err
				}
				return c.LockDoors()
			},
			Injections: []Injection{
				{ID: car.IDDoorCommand, Data: unlock, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return !s.DoorsLocked },
		},
		{
			ThreatID:  car.ThreatDoorLockAccident,
			Name:      "lock command during accident",
			Placement: Inside,
			Attacker:  car.NodeTelematics,
			Mode:      car.ModeFailSafe,
			Setup: func(c *car.Car) error {
				// Crash: fail-safe unlocks the doors for rescue access.
				return c.TriggerCrash()
			},
			Injections: []Injection{
				{ID: car.IDDoorCommand, Data: lock, Repeat: 3},
			},
			Succeeded: func(s car.State) bool { return s.DoorsLocked },
		},
		{
			ThreatID:  car.ThreatSafetyFalseTrig,
			Name:      "forged fail-safe trigger unlocking vehicle",
			Placement: Inside,
			Attacker:  car.NodeSensors,
			Mode:      car.ModeNormal,
			Setup: func(c *car.Car) error {
				if err := c.LockDoors(); err != nil {
					return err
				}
				return c.ArmAlarm()
			},
			Injections: []Injection{
				{ID: car.IDFailSafeTrigger, Data: []byte{0x01}, Repeat: 2},
			},
			Succeeded: func(s car.State) bool { return !s.DoorsLocked },
		},
		{
			// Table I gives "Sensors" as the entry point: a compromised
			// sensor node disarms the alarm. (An *outside* rogue node
			// replaying the same legitimate identifier would pass ID-based
			// read filtering — a documented limitation of the approach;
			// see EXPERIMENTS.md.)
			ThreatID:  car.ThreatSafetyAlarmOff,
			Name:      "alarm and locking disarm enabling theft",
			Placement: Inside,
			Attacker:  car.NodeSensors,
			Mode:      car.ModeNormal,
			Setup: func(c *car.Car) error {
				if err := c.LockDoors(); err != nil {
					return err
				}
				return c.ArmAlarm()
			},
			Injections: []Injection{
				{ID: car.IDAlarmControl, Data: unlock, Repeat: 2},
				{ID: car.IDDoorCommand, Data: unlock, Repeat: 2},
			},
			Succeeded: func(s car.State) bool { return !s.AlarmArmed || !s.DoorsLocked },
		},
	}
}

// ScenarioFor returns the scenario matching a threat ID.
func ScenarioFor(threatID string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.ThreatID == threatID {
			return sc, true
		}
	}
	return Scenario{}, false
}

// speedBytes encodes a speed value for IDVehicleStatus / IDSensorSpeed.
func speedBytes(v uint16) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return b[:]
}

// sendSpeedRound pushes one legitimate speed sample through the sensor and
// status path so ActualSpeed and DisplayedSpeed agree before tampering.
func sendSpeedRound(c *car.Car, speed uint16) error {
	sensors, _ := c.Node(car.NodeSensors)
	ecu, _ := c.Node(car.NodeEVECU)
	fs, err := canbus.NewDataFrame(car.IDSensorSpeed, speedBytes(speed))
	if err != nil {
		return err
	}
	if err := sensors.Send(fs); err != nil {
		return err
	}
	fv, err := canbus.NewDataFrame(car.IDVehicleStatus, speedBytes(speed))
	if err != nil {
		return err
	}
	return ecu.Send(fv)
}
