package attack

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/canbus"
	"repro/internal/car"
)

// TestArenaMatchesFreshRuns sweeps the full Table I matrix twice — once on
// the pooled arena, once on fresh cars — and requires every Result to be
// identical. This is the harness-level half of the zero-rebuild contract:
// a reset vehicle is indistinguishable from a new one.
func TestArenaMatchesFreshRuns(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	h = h.WithSeed(0xC0FFEE)
	arena, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	arena.SetSeed(0xC0FFEE)
	scenarios := Scenarios()
	regimes := []Enforcement{EnforceNone, EnforceSoftware, EnforceHPE}

	pooled, err := arena.RunMatrix(scenarios, regimes...)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := h.RunMatrix(scenarios, regimes...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled.Results) != len(fresh.Results) {
		t.Fatalf("pooled ran %d cells, fresh %d", len(pooled.Results), len(fresh.Results))
	}
	for i := range fresh.Results {
		if !reflect.DeepEqual(pooled.Results[i], fresh.Results[i]) {
			t.Errorf("cell %d diverged:\npooled %+v\nfresh  %+v",
				i, pooled.Results[i], fresh.Results[i])
		}
	}
	if !reflect.DeepEqual(pooled.Regimes, fresh.Regimes) {
		t.Errorf("regime summaries diverged:\npooled %+v\nfresh  %+v",
			pooled.Regimes, fresh.Regimes)
	}
}

// TestArenaRunsAreRepeatable runs the same matrix twice on one arena: the
// second pass (fully warmed pools) must reproduce the first exactly.
func TestArenaRunsAreRepeatable(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	arena, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	scenarios := Scenarios()[:5]
	first, err := arena.RunMatrix(scenarios, EnforceNone, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	second, err := arena.RunMatrix(scenarios, EnforceNone, EnforceHPE)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("second arena pass diverged from the first")
	}
}

// TestArenaStartLive checks the pooled live-sim provisioning matches a
// fresh car.New + hpe.Deploy stack, and that a later scenario run still
// resets cleanly.
func TestArenaStartLive(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	arena, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the arena with a scenario first.
	if _, err := arena.Run(Scenarios()[0], EnforceHPE); err != nil {
		t.Fatal(err)
	}
	c, err := arena.StartLive(car.Config{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	c.StartTraffic(time.Millisecond, 10*time.Millisecond, 88)
	c.Scheduler().Run()
	if c.Bus().Stats().FramesDelivered == 0 {
		t.Fatal("live sim delivered nothing")
	}
	// The provisioned engines must be enforcing: a forged ECU command from
	// compromised infotainment firmware is blocked at its write filter.
	before := c.Bus().Stats().WriteBlocked
	n, ok := c.Node(car.NodeInfotainment)
	if !ok {
		t.Fatal("infotainment node missing")
	}
	n.Controller().CompromiseFilters()
	if err := n.Send(canbus.MustDataFrame(car.IDECUCommand, []byte{car.OpDisable})); err != nil {
		t.Fatal(err)
	}
	c.Scheduler().Run()
	if c.Bus().Stats().WriteBlocked == before {
		t.Error("pooled engines not enforcing after StartLive")
	}
}
