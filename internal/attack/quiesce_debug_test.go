//go:build chaosdebug

package attack

import (
	"testing"
	"time"
)

// TestCaptureNotQuiescentPanicsUnderDebug: with the chaosdebug tag the
// quiescence guard panics instead of returning the typed error, so an
// illegal capture is loud at its call site rather than quarantined.
func TestCaptureNotQuiescentPanicsUnderDebug(t *testing.T) {
	h, err := NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.NewArena()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.resetForRegime(EnforceHPE); err != nil {
		t.Fatal(err)
	}
	a.car.StartTraffic(time.Millisecond, 10*time.Millisecond, 42)
	defer func() {
		if recover() == nil {
			t.Fatal("non-quiescent capture did not panic under chaosdebug")
		}
		a.car.Scheduler().Run()
	}()
	var ck checkpoint
	_ = a.capture(&ck, EnforceHPE)
}
