//go:build chaosdebug

package attack

// guardQuiescent is the debug-build variant: a violated capture precondition
// panics at the violation point (the pre-supervisor behaviour), so the stack
// trace names the scenario prefix that left events queued instead of the
// supervisor's quarantine ledger absorbing it.
func (a *Arena) guardQuiescent() error {
	if !a.car.Quiescent() {
		panic(ErrNotQuiescent)
	}
	return nil
}
