// Package mac implements a minimal SELinux-style mandatory access control
// server: security contexts, type-enforcement allow rules grouped into
// loadable modules, an access-vector cache (AVC), enforcing/permissive
// modes and an audit log. Checks resolve against a dense rule index
// precomputed at module load, so the hot path never scans modules or
// allocates; a Reset restores a loaded server to its pristine state for
// reuse across simulated vehicles.
//
// The paper (§V-B.1) positions SELinux as the software half of policy
// enforcement — "checking application permission boundaries and identifying
// anomalous behaviour" — and argues a hardware engine is needed because
// software enforcement falls with the kernel. That failure mode is modelled
// explicitly by CompromiseKernel, which the attack harness uses to show the
// software layer being bypassed while the HPE keeps filtering.
package mac

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Context is an SELinux-style security context (user:role:type). Only the
// type field participates in type enforcement, as in SELinux targeted policy.
type Context struct {
	User string
	Role string
	Type string
}

// ParseContext reads "user:role:type" notation.
func ParseContext(s string) (Context, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Context{}, fmt.Errorf("mac: context %q must be user:role:type", s)
	}
	for i, p := range parts {
		if strings.TrimSpace(p) == "" {
			return Context{}, fmt.Errorf("mac: empty field %d in context %q", i, s)
		}
	}
	return Context{User: parts[0], Role: parts[1], Type: parts[2]}, nil
}

// MustParseContext is ParseContext that panics on error, for static tables.
func MustParseContext(s string) Context {
	c, err := ParseContext(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders "user:role:type".
func (c Context) String() string { return c.User + ":" + c.Role + ":" + c.Type }

// Class is an object class (process, file, can_socket, ...).
type Class string

// Permission is a class-specific permission name (read, write, exec, ...).
type Permission string

// AllowRule grants permissions from a source type to a target type on one
// object class: allow srcType tgtType : class { perms }.
type AllowRule struct {
	SourceType string
	TargetType string
	Class      Class
	Perms      []Permission
}

// Validate checks all fields are populated.
func (r AllowRule) Validate() error {
	if r.SourceType == "" || r.TargetType == "" || r.Class == "" || len(r.Perms) == 0 {
		return fmt.Errorf("mac: incomplete allow rule %+v", r)
	}
	return nil
}

// String renders SELinux allow-rule syntax.
func (r AllowRule) String() string {
	perms := make([]string, len(r.Perms))
	for i, p := range r.Perms {
		perms[i] = string(p)
	}
	sort.Strings(perms)
	return fmt.Sprintf("allow %s %s : %s { %s }",
		r.SourceType, r.TargetType, r.Class, strings.Join(perms, " "))
}

// Module is a named, versioned group of allow rules that can be loaded and
// unloaded at runtime — the modular policy deployment of §V-B.1.
type Module struct {
	Name    string
	Version uint64
	Rules   []AllowRule
}

// Validate checks the module and its rules.
func (m *Module) Validate() error {
	if strings.TrimSpace(m.Name) == "" {
		return errors.New("mac: module has no name")
	}
	for i, r := range m.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("mac: module %q rule %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// EnforceMode selects how denials are handled.
type EnforceMode uint8

// Enforcement modes.
const (
	// Enforcing blocks denied accesses.
	Enforcing EnforceMode = iota + 1
	// Permissive logs denials but allows the access (SELinux permissive).
	Permissive
)

// String returns the mode name.
func (m EnforceMode) String() string {
	switch m {
	case Enforcing:
		return "enforcing"
	case Permissive:
		return "permissive"
	default:
		return "invalid"
	}
}

// Decision is the outcome of one access check.
type Decision struct {
	// Allowed reports whether the access may proceed.
	Allowed bool
	// Granted reports whether policy granted the access (differs from
	// Allowed under permissive mode or kernel compromise).
	Granted bool
	// Bypassed reports the check was skipped due to kernel compromise.
	Bypassed bool
}

// AuditRecord is one entry in the audit log.
type AuditRecord struct {
	Seq     uint64
	Source  Context
	Target  Context
	Class   Class
	Perm    Permission
	Allowed bool
	Reason  string
}

// String renders an auditd-like line.
func (a AuditRecord) String() string {
	verb := "denied"
	if a.Allowed {
		verb = "granted"
	}
	return fmt.Sprintf("avc[%d]: %s { %s } for scontext=%s tcontext=%s tclass=%s %s",
		a.Seq, verb, a.Perm, a.Source, a.Target, a.Class, a.Reason)
}

// avcKey indexes the access-vector cache.
type avcKey struct {
	src, tgt string
	class    Class
}

// permBits is a bitmask of granted permissions: bit i set means the
// permission interned at bit position i is granted. Permissions beyond 64
// distinct names spill into the server's overflow map.
type permBits uint64

// ruleKey indexes the dense rule index: interned source type, target type
// and class identifiers.
type ruleKey struct {
	src, tgt, class uint32
}

// Stats counts server activity.
type Stats struct {
	Checks    uint64
	Granted   uint64
	Denied    uint64
	Bypassed  uint64
	AVCHits   uint64
	AVCMisses uint64
	Loads     uint64
	Unloads   uint64
}

// Server is the MAC policy server. The zero value is unusable; construct
// with NewServer.
//
// By default a Server is safe for concurrent use. A caller that confines the
// server to a single goroutine (the fleet engine's per-worker arenas do) can
// construct it WithSingleOwner to drop the mutex from the Check hot path.
//
// Rule resolution is backed by a dense index precomputed at Load/Unload
// time: source/target types and classes are interned to dense integer
// identifiers and each (src, tgt, class) triple maps to a bitmask of granted
// permissions, so a check — with or without the AVC — costs a handful of map
// probes and allocates nothing, instead of the former linear scan over every
// loaded module that materialised a fresh permission map per AVC miss.
type Server struct {
	mu          sync.Mutex
	single      bool // single-owner mode: skip the mutex
	modules     map[string]*Module
	mode        EnforceMode
	initMode    EnforceMode // mode configured at construction, for Reset
	avc         map[avcKey]permBits
	avcEnabled  bool
	avcCap      int
	compromised bool
	audit       []AuditRecord
	auditCap    int
	seq         uint64
	stats       Stats

	// Dense rule index, rebuilt by reindexLocked on every Load/Unload.
	typeIDs  map[string]uint32
	classIDs map[Class]uint32
	permIDs  map[Permission]uint32 // bit positions, < 64
	index    map[ruleKey]permBits
	overflow map[ruleKey]map[Permission]bool // permissions past 64 bit positions
}

// Option configures a Server.
type Option func(*Server)

// WithMode sets the initial enforcement mode (default Enforcing).
func WithMode(m EnforceMode) Option { return func(s *Server) { s.mode = m } }

// WithAVC enables or disables the access-vector cache (default enabled).
func WithAVC(enabled bool) Option { return func(s *Server) { s.avcEnabled = enabled } }

// WithAVCCapacity bounds the AVC entry count (default 4096).
func WithAVCCapacity(n int) Option { return func(s *Server) { s.avcCap = n } }

// WithAuditCapacity bounds the in-memory audit ring (default 1024).
func WithAuditCapacity(n int) Option { return func(s *Server) { s.auditCap = n } }

// WithSingleOwner confines the server to a single goroutine: the caller
// asserts every method call happens on one goroutine (or with ownership
// handed over through a synchronising operation), and the server stops
// taking its internal mutex on every check.
func WithSingleOwner() Option { return func(s *Server) { s.single = true } }

// NewServer creates a MAC server with no modules loaded. With no modules
// every access is denied: type enforcement is default-deny, like the
// policy engine.
func NewServer(opts ...Option) *Server {
	s := &Server{
		modules:    map[string]*Module{},
		mode:       Enforcing,
		avc:        map[avcKey]permBits{},
		avcEnabled: true,
		avcCap:     4096,
		auditCap:   1024,
		typeIDs:    map[string]uint32{},
		classIDs:   map[Class]uint32{},
		permIDs:    map[Permission]uint32{},
		index:      map[ruleKey]permBits{},
	}
	for _, o := range opts {
		o(s)
	}
	s.initMode = s.mode
	return s
}

// lock and unlock guard server state; no-ops in single-owner mode.
func (s *Server) lock() {
	if !s.single {
		s.mu.Lock()
	}
}

func (s *Server) unlock() {
	if !s.single {
		s.mu.Unlock()
	}
}

// Mode returns the current enforcement mode.
func (s *Server) Mode() EnforceMode {
	s.lock()
	defer s.unlock()
	return s.mode
}

// SetMode switches between enforcing and permissive.
func (s *Server) SetMode(m EnforceMode) {
	s.lock()
	defer s.unlock()
	s.mode = m
}

// Load installs or upgrades a module and invalidates the AVC.
// Upgrading requires a strictly newer version.
func (s *Server) Load(m *Module) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.lock()
	defer s.unlock()
	if old, ok := s.modules[m.Name]; ok && m.Version <= old.Version {
		return fmt.Errorf("mac: module %q version %d not newer than loaded %d",
			m.Name, m.Version, old.Version)
	}
	cp := *m
	cp.Rules = append([]AllowRule(nil), m.Rules...)
	s.modules[m.Name] = &cp
	s.reindexLocked()
	s.stats.Loads++
	return nil
}

// Unload removes a module and invalidates the AVC.
func (s *Server) Unload(name string) bool {
	s.lock()
	defer s.unlock()
	if _, ok := s.modules[name]; !ok {
		return false
	}
	delete(s.modules, name)
	s.reindexLocked()
	s.stats.Unloads++
	return true
}

// reindexLocked rebuilds the dense rule index from the loaded modules and
// flushes the AVC. Modules are walked in sorted name order and rules in
// declaration order, so interned identifiers — and therefore every
// downstream decision and statistic — are deterministic for a given module
// set regardless of load history.
func (s *Server) reindexLocked() {
	clear(s.typeIDs)
	clear(s.classIDs)
	clear(s.permIDs)
	clear(s.index)
	clear(s.avc)
	s.overflow = nil
	names := make([]string, 0, len(s.modules))
	for n := range s.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, r := range s.modules[name].Rules {
			key := ruleKey{
				src:   internID(s.typeIDs, r.SourceType),
				tgt:   internID(s.typeIDs, r.TargetType),
				class: internID(s.classIDs, r.Class),
			}
			bits := s.index[key]
			for _, p := range r.Perms {
				if pid, ok := s.permIDs[p]; ok {
					bits |= 1 << pid
				} else if next := uint32(len(s.permIDs)); next < 64 {
					s.permIDs[p] = next
					bits |= 1 << next
				} else {
					// 65th+ distinct permission: spill into the overflow map,
					// still precomputed here so checks never allocate.
					if s.overflow == nil {
						s.overflow = map[ruleKey]map[Permission]bool{}
					}
					ov := s.overflow[key]
					if ov == nil {
						ov = map[Permission]bool{}
						s.overflow[key] = ov
					}
					ov[p] = true
				}
			}
			s.index[key] = bits
		}
	}
}

// internID returns the dense identifier for v, assigning the next one on
// first sight.
func internID[K comparable](m map[K]uint32, v K) uint32 {
	if id, ok := m[v]; ok {
		return id
	}
	id := uint32(len(m))
	m[v] = id
	return id
}

// Modules returns the loaded module names, sorted.
func (s *Server) Modules() []string {
	s.lock()
	defer s.unlock()
	out := make([]string, 0, len(s.modules))
	for n := range s.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompromiseKernel models the firmware/kernel compromise of §V-B.2: all
// subsequent checks are bypassed (allowed without consulting policy), the
// way a rooted kernel no longer enforces its own LSM hooks.
func (s *Server) CompromiseKernel() {
	s.lock()
	defer s.unlock()
	s.compromised = true
}

// Compromised reports whether the kernel-compromise injection is active.
func (s *Server) Compromised() bool {
	s.lock()
	defer s.unlock()
	return s.compromised
}

// Restore clears the compromise injection (re-flash / reboot from clean image).
func (s *Server) Restore() {
	s.lock()
	defer s.unlock()
	s.compromised = false
}

// Check evaluates one access. It consults the AVC first, then scans loaded
// modules; the result is cached. Audit records are appended for denials and
// for bypassed checks.
func (s *Server) Check(src, tgt Context, class Class, perm Permission) Decision {
	s.lock()
	defer s.unlock()
	s.stats.Checks++
	if s.compromised {
		s.stats.Bypassed++
		s.auditLocked(src, tgt, class, perm, true, "bypassed: kernel compromised")
		return Decision{Allowed: true, Granted: false, Bypassed: true}
	}
	granted := s.lookupLocked(src.Type, tgt.Type, class, perm)
	allowed := granted
	reason := ""
	if !granted {
		s.stats.Denied++
		if s.mode == Permissive {
			allowed = true
			reason = "permissive"
		}
		s.auditLocked(src, tgt, class, perm, allowed, reason)
	} else {
		s.stats.Granted++
	}
	return Decision{Allowed: allowed, Granted: granted}
}

// lookupLocked resolves a permission against the dense rule index, using
// the AVC when enabled. Allocation-free on every path.
func (s *Server) lookupLocked(srcType, tgtType string, class Class, perm Permission) bool {
	var bits permBits
	if s.avcEnabled {
		key := avcKey{src: srcType, tgt: tgtType, class: class}
		cached, ok := s.avc[key]
		if ok {
			s.stats.AVCHits++
			bits = cached
		} else {
			s.stats.AVCMisses++
			bits = s.resolveBitsLocked(srcType, tgtType, class)
			if len(s.avc) >= s.avcCap {
				// Full cache: drop it entirely. Real AVCs evict LRU; wholesale
				// invalidation keeps the model simple and still bounded.
				clear(s.avc)
			}
			s.avc[key] = bits
		}
	} else {
		bits = s.resolveBitsLocked(srcType, tgtType, class)
	}
	if pid, ok := s.permIDs[perm]; ok {
		return bits&(1<<pid) != 0
	}
	if s.overflow != nil {
		return s.overflowGrantedLocked(srcType, tgtType, class, perm)
	}
	return false
}

// resolveBitsLocked computes the granted-permission bitmask for a triple
// from the dense index. Types or classes no rule mentions resolve to the
// empty mask (default deny).
func (s *Server) resolveBitsLocked(srcType, tgtType string, class Class) permBits {
	sid, ok := s.typeIDs[srcType]
	if !ok {
		return 0
	}
	tid, ok := s.typeIDs[tgtType]
	if !ok {
		return 0
	}
	cid, ok := s.classIDs[class]
	if !ok {
		return 0
	}
	return s.index[ruleKey{src: sid, tgt: tid, class: cid}]
}

// overflowGrantedLocked checks the precomputed spill map for permissions
// past the 64 bitmask positions.
func (s *Server) overflowGrantedLocked(srcType, tgtType string, class Class, perm Permission) bool {
	sid, ok := s.typeIDs[srcType]
	if !ok {
		return false
	}
	tid, ok := s.typeIDs[tgtType]
	if !ok {
		return false
	}
	cid, ok := s.classIDs[class]
	if !ok {
		return false
	}
	return s.overflow[ruleKey{src: sid, tgt: tid, class: cid}][perm]
}

func (s *Server) auditLocked(src, tgt Context, class Class, perm Permission, allowed bool, reason string) {
	s.seq++
	rec := AuditRecord{
		Seq: s.seq, Source: src, Target: tgt,
		Class: class, Perm: perm, Allowed: allowed, Reason: reason,
	}
	if len(s.audit) >= s.auditCap {
		copy(s.audit, s.audit[1:])
		s.audit = s.audit[:len(s.audit)-1]
	}
	s.audit = append(s.audit, rec)
}

// Audit returns a copy of the audit log (oldest first).
func (s *Server) Audit() []AuditRecord {
	s.lock()
	defer s.unlock()
	return append([]AuditRecord(nil), s.audit...)
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	s.lock()
	defer s.unlock()
	return s.stats
}

// Reset restores the server to its state immediately after construction and
// module loading, without releasing memory: the kernel-compromise injection
// is cleared, the enforcement mode returns to its constructed value, the
// AVC is flushed, the audit log and its sequence are emptied, and all
// statistics except the Loads/Unloads module-lifecycle counters are zeroed.
// Loaded modules and the precomputed rule index are kept — that is the
// point: a reset server answers every Check exactly as a freshly built one
// loaded with the same modules, at zero rebuild cost.
func (s *Server) Reset() {
	s.lock()
	defer s.unlock()
	s.compromised = false
	s.mode = s.initMode
	clear(s.avc)
	s.audit = s.audit[:0]
	s.seq = 0
	loads, unloads := s.stats.Loads, s.stats.Unloads
	s.stats = Stats{Loads: loads, Unloads: unloads}
}
