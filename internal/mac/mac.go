// Package mac implements a minimal SELinux-style mandatory access control
// server: security contexts, type-enforcement allow rules grouped into
// loadable modules, an access-vector cache (AVC), enforcing/permissive
// modes and an audit log.
//
// The paper (§V-B.1) positions SELinux as the software half of policy
// enforcement — "checking application permission boundaries and identifying
// anomalous behaviour" — and argues a hardware engine is needed because
// software enforcement falls with the kernel. That failure mode is modelled
// explicitly by CompromiseKernel, which the attack harness uses to show the
// software layer being bypassed while the HPE keeps filtering.
package mac

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Context is an SELinux-style security context (user:role:type). Only the
// type field participates in type enforcement, as in SELinux targeted policy.
type Context struct {
	User string
	Role string
	Type string
}

// ParseContext reads "user:role:type" notation.
func ParseContext(s string) (Context, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Context{}, fmt.Errorf("mac: context %q must be user:role:type", s)
	}
	for i, p := range parts {
		if strings.TrimSpace(p) == "" {
			return Context{}, fmt.Errorf("mac: empty field %d in context %q", i, s)
		}
	}
	return Context{User: parts[0], Role: parts[1], Type: parts[2]}, nil
}

// MustParseContext is ParseContext that panics on error, for static tables.
func MustParseContext(s string) Context {
	c, err := ParseContext(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders "user:role:type".
func (c Context) String() string { return c.User + ":" + c.Role + ":" + c.Type }

// Class is an object class (process, file, can_socket, ...).
type Class string

// Permission is a class-specific permission name (read, write, exec, ...).
type Permission string

// AllowRule grants permissions from a source type to a target type on one
// object class: allow srcType tgtType : class { perms }.
type AllowRule struct {
	SourceType string
	TargetType string
	Class      Class
	Perms      []Permission
}

// Validate checks all fields are populated.
func (r AllowRule) Validate() error {
	if r.SourceType == "" || r.TargetType == "" || r.Class == "" || len(r.Perms) == 0 {
		return fmt.Errorf("mac: incomplete allow rule %+v", r)
	}
	return nil
}

// String renders SELinux allow-rule syntax.
func (r AllowRule) String() string {
	perms := make([]string, len(r.Perms))
	for i, p := range r.Perms {
		perms[i] = string(p)
	}
	sort.Strings(perms)
	return fmt.Sprintf("allow %s %s : %s { %s }",
		r.SourceType, r.TargetType, r.Class, strings.Join(perms, " "))
}

// Module is a named, versioned group of allow rules that can be loaded and
// unloaded at runtime — the modular policy deployment of §V-B.1.
type Module struct {
	Name    string
	Version uint64
	Rules   []AllowRule
}

// Validate checks the module and its rules.
func (m *Module) Validate() error {
	if strings.TrimSpace(m.Name) == "" {
		return errors.New("mac: module has no name")
	}
	for i, r := range m.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("mac: module %q rule %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// EnforceMode selects how denials are handled.
type EnforceMode uint8

// Enforcement modes.
const (
	// Enforcing blocks denied accesses.
	Enforcing EnforceMode = iota + 1
	// Permissive logs denials but allows the access (SELinux permissive).
	Permissive
)

// String returns the mode name.
func (m EnforceMode) String() string {
	switch m {
	case Enforcing:
		return "enforcing"
	case Permissive:
		return "permissive"
	default:
		return "invalid"
	}
}

// Decision is the outcome of one access check.
type Decision struct {
	// Allowed reports whether the access may proceed.
	Allowed bool
	// Granted reports whether policy granted the access (differs from
	// Allowed under permissive mode or kernel compromise).
	Granted bool
	// Bypassed reports the check was skipped due to kernel compromise.
	Bypassed bool
}

// AuditRecord is one entry in the audit log.
type AuditRecord struct {
	Seq     uint64
	Source  Context
	Target  Context
	Class   Class
	Perm    Permission
	Allowed bool
	Reason  string
}

// String renders an auditd-like line.
func (a AuditRecord) String() string {
	verb := "denied"
	if a.Allowed {
		verb = "granted"
	}
	return fmt.Sprintf("avc[%d]: %s { %s } for scontext=%s tcontext=%s tclass=%s %s",
		a.Seq, verb, a.Perm, a.Source, a.Target, a.Class, a.Reason)
}

// avcKey indexes the access-vector cache.
type avcKey struct {
	src, tgt string
	class    Class
}

// Stats counts server activity.
type Stats struct {
	Checks    uint64
	Granted   uint64
	Denied    uint64
	Bypassed  uint64
	AVCHits   uint64
	AVCMisses uint64
	Loads     uint64
	Unloads   uint64
}

// Server is the MAC policy server. The zero value is unusable; construct
// with NewServer.
type Server struct {
	mu          sync.Mutex
	modules     map[string]*Module
	mode        EnforceMode
	avc         map[avcKey]map[Permission]bool
	avcEnabled  bool
	avcCap      int
	compromised bool
	audit       []AuditRecord
	auditCap    int
	seq         uint64
	stats       Stats
}

// Option configures a Server.
type Option func(*Server)

// WithMode sets the initial enforcement mode (default Enforcing).
func WithMode(m EnforceMode) Option { return func(s *Server) { s.mode = m } }

// WithAVC enables or disables the access-vector cache (default enabled).
func WithAVC(enabled bool) Option { return func(s *Server) { s.avcEnabled = enabled } }

// WithAVCCapacity bounds the AVC entry count (default 4096).
func WithAVCCapacity(n int) Option { return func(s *Server) { s.avcCap = n } }

// WithAuditCapacity bounds the in-memory audit ring (default 1024).
func WithAuditCapacity(n int) Option { return func(s *Server) { s.auditCap = n } }

// NewServer creates a MAC server with no modules loaded. With no modules
// every access is denied: type enforcement is default-deny, like the
// policy engine.
func NewServer(opts ...Option) *Server {
	s := &Server{
		modules:    map[string]*Module{},
		mode:       Enforcing,
		avc:        map[avcKey]map[Permission]bool{},
		avcEnabled: true,
		avcCap:     4096,
		auditCap:   1024,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Mode returns the current enforcement mode.
func (s *Server) Mode() EnforceMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// SetMode switches between enforcing and permissive.
func (s *Server) SetMode(m EnforceMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = m
}

// Load installs or upgrades a module and invalidates the AVC.
// Upgrading requires a strictly newer version.
func (s *Server) Load(m *Module) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.modules[m.Name]; ok && m.Version <= old.Version {
		return fmt.Errorf("mac: module %q version %d not newer than loaded %d",
			m.Name, m.Version, old.Version)
	}
	cp := *m
	cp.Rules = append([]AllowRule(nil), m.Rules...)
	s.modules[m.Name] = &cp
	s.avc = map[avcKey]map[Permission]bool{}
	s.stats.Loads++
	return nil
}

// Unload removes a module and invalidates the AVC.
func (s *Server) Unload(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.modules[name]; !ok {
		return false
	}
	delete(s.modules, name)
	s.avc = map[avcKey]map[Permission]bool{}
	s.stats.Unloads++
	return true
}

// Modules returns the loaded module names, sorted.
func (s *Server) Modules() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.modules))
	for n := range s.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompromiseKernel models the firmware/kernel compromise of §V-B.2: all
// subsequent checks are bypassed (allowed without consulting policy), the
// way a rooted kernel no longer enforces its own LSM hooks.
func (s *Server) CompromiseKernel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compromised = true
}

// Compromised reports whether the kernel-compromise injection is active.
func (s *Server) Compromised() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compromised
}

// Restore clears the compromise injection (re-flash / reboot from clean image).
func (s *Server) Restore() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compromised = false
}

// Check evaluates one access. It consults the AVC first, then scans loaded
// modules; the result is cached. Audit records are appended for denials and
// for bypassed checks.
func (s *Server) Check(src, tgt Context, class Class, perm Permission) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Checks++
	if s.compromised {
		s.stats.Bypassed++
		s.auditLocked(src, tgt, class, perm, true, "bypassed: kernel compromised")
		return Decision{Allowed: true, Granted: false, Bypassed: true}
	}
	granted := s.lookupLocked(src.Type, tgt.Type, class, perm)
	allowed := granted
	reason := ""
	if !granted {
		s.stats.Denied++
		if s.mode == Permissive {
			allowed = true
			reason = "permissive"
		}
		s.auditLocked(src, tgt, class, perm, allowed, reason)
	} else {
		s.stats.Granted++
	}
	return Decision{Allowed: allowed, Granted: granted}
}

// lookupLocked resolves a permission, using the AVC when enabled.
func (s *Server) lookupLocked(srcType, tgtType string, class Class, perm Permission) bool {
	key := avcKey{src: srcType, tgt: tgtType, class: class}
	if s.avcEnabled {
		if perms, ok := s.avc[key]; ok {
			s.stats.AVCHits++
			return perms[perm]
		}
		s.stats.AVCMisses++
	}
	perms := map[Permission]bool{}
	for _, m := range s.modules {
		for _, r := range m.Rules {
			if r.SourceType == srcType && r.TargetType == tgtType && r.Class == class {
				for _, p := range r.Perms {
					perms[p] = true
				}
			}
		}
	}
	if s.avcEnabled {
		if len(s.avc) >= s.avcCap {
			// Full cache: drop it entirely. Real AVCs evict LRU; wholesale
			// invalidation keeps the model simple and still bounded.
			s.avc = map[avcKey]map[Permission]bool{}
		}
		s.avc[key] = perms
	}
	return perms[perm]
}

func (s *Server) auditLocked(src, tgt Context, class Class, perm Permission, allowed bool, reason string) {
	s.seq++
	rec := AuditRecord{
		Seq: s.seq, Source: src, Target: tgt,
		Class: class, Perm: perm, Allowed: allowed, Reason: reason,
	}
	if len(s.audit) >= s.auditCap {
		copy(s.audit, s.audit[1:])
		s.audit = s.audit[:len(s.audit)-1]
	}
	s.audit = append(s.audit, rec)
}

// Audit returns a copy of the audit log (oldest first).
func (s *Server) Audit() []AuditRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AuditRecord(nil), s.audit...)
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
