package mac

import (
	"strings"
	"testing"
)

func testModule(version uint64) *Module {
	return &Module{
		Name:    "car-base",
		Version: version,
		Rules: []AllowRule{
			{SourceType: "infotainment_t", TargetType: "media_t", Class: "file",
				Perms: []Permission{"read", "open"}},
			{SourceType: "infotainment_t", TargetType: "status_t", Class: "can_message",
				Perms: []Permission{"read"}},
			{SourceType: "telematics_t", TargetType: "tracking_t", Class: "can_message",
				Perms: []Permission{"read", "write"}},
		},
	}
}

func ctx(typ string) Context { return Context{User: "system_u", Role: "object_r", Type: typ} }

func TestParseContext(t *testing.T) {
	c, err := ParseContext("system_u:object_r:infotainment_t")
	if err != nil {
		t.Fatal(err)
	}
	if c.User != "system_u" || c.Role != "object_r" || c.Type != "infotainment_t" {
		t.Errorf("parsed %+v", c)
	}
	if c.String() != "system_u:object_r:infotainment_t" {
		t.Errorf("String = %q", c.String())
	}
	for _, bad := range []string{"", "a:b", "a:b:c:d", "a::c", ":b:c"} {
		if _, err := ParseContext(bad); err == nil {
			t.Errorf("ParseContext(%q) accepted", bad)
		}
	}
}

func TestDefaultDenyWithNoModules(t *testing.T) {
	s := NewServer()
	d := s.Check(ctx("a_t"), ctx("b_t"), "file", "read")
	if d.Allowed || d.Granted {
		t.Error("empty policy allowed an access")
	}
}

func TestTypeEnforcement(t *testing.T) {
	s := NewServer()
	if err := s.Load(testModule(1)); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		src, tgt string
		class    Class
		perm     Permission
		want     bool
	}{
		{"infotainment_t", "media_t", "file", "read", true},
		{"infotainment_t", "media_t", "file", "open", true},
		{"infotainment_t", "media_t", "file", "write", false},           // perm not granted
		{"infotainment_t", "status_t", "file", "read", false},           // wrong class
		{"infotainment_t", "tracking_t", "can_message", "write", false}, // wrong source
		{"telematics_t", "tracking_t", "can_message", "write", true},
		{"ghost_t", "media_t", "file", "read", false},
	}
	for _, tt := range tests {
		d := s.Check(ctx(tt.src), ctx(tt.tgt), tt.class, tt.perm)
		if d.Allowed != tt.want {
			t.Errorf("Check(%s->%s:%s{%s}) = %v, want %v",
				tt.src, tt.tgt, tt.class, tt.perm, d.Allowed, tt.want)
		}
	}
}

func TestPermissiveModeAllowsButRecordsDenial(t *testing.T) {
	s := NewServer(WithMode(Permissive))
	d := s.Check(ctx("a_t"), ctx("b_t"), "file", "read")
	if !d.Allowed {
		t.Error("permissive mode blocked")
	}
	if d.Granted {
		t.Error("permissive mode claimed policy granted")
	}
	audit := s.Audit()
	if len(audit) != 1 || !strings.Contains(audit[0].String(), "permissive") {
		t.Errorf("audit = %v", audit)
	}
	s.SetMode(Enforcing)
	if s.Mode() != Enforcing {
		t.Error("SetMode failed")
	}
	if d := s.Check(ctx("a_t"), ctx("b_t"), "file", "read"); d.Allowed {
		t.Error("enforcing mode allowed")
	}
}

func TestModuleLoadUnloadVersioning(t *testing.T) {
	s := NewServer()
	if err := s.Load(testModule(2)); err != nil {
		t.Fatal(err)
	}
	// Same or older version rejected.
	if err := s.Load(testModule(2)); err == nil {
		t.Error("same-version reload accepted")
	}
	if err := s.Load(testModule(1)); err == nil {
		t.Error("downgrade accepted")
	}
	// Newer version replaces.
	m3 := testModule(3)
	m3.Rules = m3.Rules[:1] // narrower policy
	if err := s.Load(m3); err != nil {
		t.Fatal(err)
	}
	if d := s.Check(ctx("telematics_t"), ctx("tracking_t"), "can_message", "write"); d.Allowed {
		t.Error("rule from replaced module still active")
	}
	if !s.Unload("car-base") {
		t.Fatal("Unload failed")
	}
	if s.Unload("car-base") {
		t.Error("double Unload succeeded")
	}
	if d := s.Check(ctx("infotainment_t"), ctx("media_t"), "file", "read"); d.Allowed {
		t.Error("rules survive unload")
	}
	if names := s.Modules(); len(names) != 0 {
		t.Errorf("Modules = %v", names)
	}
}

func TestModuleValidation(t *testing.T) {
	if err := (&Module{Name: ""}).Validate(); err == nil {
		t.Error("unnamed module accepted")
	}
	bad := &Module{Name: "m", Rules: []AllowRule{{SourceType: "a"}}}
	if err := bad.Validate(); err == nil {
		t.Error("incomplete rule accepted")
	}
	s := NewServer()
	if err := s.Load(bad); err == nil {
		t.Error("server loaded invalid module")
	}
}

func TestAVCCacheHitsAndInvalidation(t *testing.T) {
	s := NewServer()
	if err := s.Load(testModule(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Check(ctx("infotainment_t"), ctx("media_t"), "file", "read")
	}
	st := s.Stats()
	if st.AVCMisses != 1 || st.AVCHits != 9 {
		t.Errorf("AVC hits/misses = %d/%d, want 9/1", st.AVCHits, st.AVCMisses)
	}
	// Loading a module invalidates the cache.
	if err := s.Load(testModule(5)); err != nil {
		t.Fatal(err)
	}
	s.Check(ctx("infotainment_t"), ctx("media_t"), "file", "read")
	st = s.Stats()
	if st.AVCMisses != 2 {
		t.Errorf("AVC not invalidated on load: misses = %d", st.AVCMisses)
	}
}

func TestAVCDisabled(t *testing.T) {
	s := NewServer(WithAVC(false))
	if err := s.Load(testModule(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Check(ctx("infotainment_t"), ctx("media_t"), "file", "read")
	}
	st := s.Stats()
	if st.AVCHits != 0 || st.AVCMisses != 0 {
		t.Errorf("disabled AVC recorded activity: %+v", st)
	}
}

func TestAVCCapacityBound(t *testing.T) {
	s := NewServer(WithAVCCapacity(4))
	if err := s.Load(testModule(1)); err != nil {
		t.Fatal(err)
	}
	// Touch many distinct keys; the server must not grow unboundedly and
	// must stay correct afterwards.
	for i := 0; i < 100; i++ {
		s.Check(ctx("infotainment_t"), ctx("media_t"), "file", Permission("read"))
		s.Check(ctx("x_t"), ctx(strings.Repeat("y", i%7)+"_t"), "file", "read")
	}
	if d := s.Check(ctx("infotainment_t"), ctx("media_t"), "file", "read"); !d.Allowed {
		t.Error("correctness lost under cache pressure")
	}
}

func TestKernelCompromiseBypass(t *testing.T) {
	// §V-B.2: software enforcement falls with the kernel; this is the fault
	// injection the HPE comparison relies on.
	s := NewServer()
	if err := s.Load(testModule(1)); err != nil {
		t.Fatal(err)
	}
	denied := s.Check(ctx("evil_t"), ctx("tracking_t"), "can_message", "write")
	if denied.Allowed {
		t.Fatal("precondition: access should be denied before compromise")
	}
	s.CompromiseKernel()
	if !s.Compromised() {
		t.Fatal("Compromised() = false")
	}
	d := s.Check(ctx("evil_t"), ctx("tracking_t"), "can_message", "write")
	if !d.Allowed || !d.Bypassed || d.Granted {
		t.Errorf("compromised check = %+v, want allowed+bypassed", d)
	}
	s.Restore()
	d = s.Check(ctx("evil_t"), ctx("tracking_t"), "can_message", "write")
	if d.Allowed {
		t.Error("enforcement not restored")
	}
	st := s.Stats()
	if st.Bypassed != 1 {
		t.Errorf("Bypassed = %d, want 1", st.Bypassed)
	}
}

func TestAuditRing(t *testing.T) {
	s := NewServer(WithAuditCapacity(3))
	for i := 0; i < 6; i++ {
		s.Check(ctx("a_t"), ctx("b_t"), "file", "read") // all denials
	}
	audit := s.Audit()
	if len(audit) != 3 {
		t.Fatalf("audit length %d, want 3 (ring)", len(audit))
	}
	if audit[0].Seq != 4 || audit[2].Seq != 6 {
		t.Errorf("ring kept wrong records: %v", audit)
	}
	rec := audit[0]
	line := rec.String()
	if !strings.Contains(line, "denied") || !strings.Contains(line, "a_t") {
		t.Errorf("audit line %q", line)
	}
}

func TestAllowRuleString(t *testing.T) {
	r := AllowRule{SourceType: "a_t", TargetType: "b_t", Class: "file",
		Perms: []Permission{"write", "read"}}
	want := "allow a_t b_t : file { read write }"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewServer()
	if err := s.Load(testModule(1)); err != nil {
		t.Fatal(err)
	}
	s.Check(ctx("infotainment_t"), ctx("media_t"), "file", "read") // grant
	s.Check(ctx("a_t"), ctx("b_t"), "file", "read")                // deny
	st := s.Stats()
	if st.Checks != 2 || st.Granted != 1 || st.Denied != 1 || st.Loads != 1 {
		t.Errorf("stats = %+v", st)
	}
}
