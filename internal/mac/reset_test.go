package mac

import (
	"fmt"
	"testing"
)

func resetModule(version uint64) *Module {
	return &Module{Name: "m", Version: version, Rules: []AllowRule{
		{SourceType: "app_t", TargetType: "msg_t", Class: "can", Perms: []Permission{"read", "write"}},
		{SourceType: "app_t", TargetType: "cfg_t", Class: "file", Perms: []Permission{"read"}},
		{SourceType: "diag_t", TargetType: "msg_t", Class: "can", Perms: []Permission{"read"}},
	}}
}

// probe exercises grants, denials and unknown types.
func probe(s *Server) []Decision {
	return []Decision{
		s.Check(Context{"u", "r", "app_t"}, Context{"u", "r", "msg_t"}, "can", "write"),
		s.Check(Context{"u", "r", "app_t"}, Context{"u", "r", "msg_t"}, "can", "read"),
		s.Check(Context{"u", "r", "diag_t"}, Context{"u", "r", "msg_t"}, "can", "write"),
		s.Check(Context{"u", "r", "ghost_t"}, Context{"u", "r", "msg_t"}, "can", "read"),
		s.Check(Context{"u", "r", "app_t"}, Context{"u", "r", "cfg_t"}, "file", "read"),
		s.Check(Context{"u", "r", "app_t"}, Context{"u", "r", "cfg_t"}, "can", "read"),
	}
}

// TestServerResetEquivalence checks a reset server answers exactly like a
// fresh server loaded with the same module, with audit and AVC state
// restarted.
func TestServerResetEquivalence(t *testing.T) {
	for _, single := range []bool{false, true} {
		t.Run(fmt.Sprintf("single=%v", single), func(t *testing.T) {
			opts := []Option{WithMode(Enforcing)}
			if single {
				opts = append(opts, WithSingleOwner())
			}
			used := NewServer(opts...)
			if err := used.Load(resetModule(1)); err != nil {
				t.Fatal(err)
			}
			// Dirty phase.
			probe(used)
			used.SetMode(Permissive)
			used.CompromiseKernel()
			probe(used)
			used.Reset()

			if used.Compromised() {
				t.Fatal("compromise survived reset")
			}
			if used.Mode() != Enforcing {
				t.Fatalf("mode after reset: %v", used.Mode())
			}

			fresh := NewServer(opts...)
			if err := fresh.Load(resetModule(1)); err != nil {
				t.Fatal(err)
			}
			got, want := probe(used), probe(fresh)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("decision %d after reset %+v, fresh %+v", i, got[i], want[i])
				}
			}
			gotAudit, wantAudit := used.Audit(), fresh.Audit()
			if len(gotAudit) != len(wantAudit) {
				t.Fatalf("audit length %d, fresh %d", len(gotAudit), len(wantAudit))
			}
			for i := range wantAudit {
				if gotAudit[i] != wantAudit[i] {
					t.Errorf("audit %d after reset %+v, fresh %+v", i, gotAudit[i], wantAudit[i])
				}
			}
			gs, ws := used.Stats(), fresh.Stats()
			gs.Loads, ws.Loads = 0, 0 // reset keeps module-lifecycle counters
			if gs != ws {
				t.Errorf("stats after reset %+v, fresh %+v", gs, ws)
			}
		})
	}
}

// TestCheckAllocationFree verifies the dense-index rewrite: checks allocate
// nothing with the AVC on or off (the old implementation built a permission
// map per AVC miss).
func TestCheckAllocationFree(t *testing.T) {
	for _, avc := range []bool{true, false} {
		t.Run(fmt.Sprintf("avc=%v", avc), func(t *testing.T) {
			s := NewServer(WithAVC(avc))
			if err := s.Load(resetModule(1)); err != nil {
				t.Fatal(err)
			}
			src := Context{"u", "r", "app_t"}
			tgt := Context{"u", "r", "msg_t"}
			s.Check(src, tgt, "can", "read") // warm the AVC
			allocs := testing.AllocsPerRun(200, func() {
				if !s.Check(src, tgt, "can", "read").Allowed {
					t.Fatal("grant path broken")
				}
			})
			if allocs != 0 {
				t.Errorf("Check allocated %.1f objects per run, want 0", allocs)
			}
		})
	}
}

// TestPermissionOverflow exercises the spill path for policies with more
// than 64 distinct permission names.
func TestPermissionOverflow(t *testing.T) {
	m := &Module{Name: "wide", Version: 1}
	var perms []Permission
	for i := 0; i < 70; i++ {
		perms = append(perms, Permission(fmt.Sprintf("perm%02d", i)))
	}
	m.Rules = append(m.Rules, AllowRule{
		SourceType: "s_t", TargetType: "t_t", Class: "can", Perms: perms,
	})
	s := NewServer()
	if err := s.Load(m); err != nil {
		t.Fatal(err)
	}
	src, tgt := Context{"u", "r", "s_t"}, Context{"u", "r", "t_t"}
	for i, p := range perms {
		if !s.Check(src, tgt, "can", p).Granted {
			t.Errorf("permission %d (%s) not granted", i, p)
		}
	}
	if s.Check(src, tgt, "can", "perm99").Granted {
		t.Error("unknown permission granted")
	}
	if s.Check(Context{"u", "r", "other_t"}, tgt, "can", perms[69]).Granted {
		t.Error("overflow permission granted to wrong source type")
	}
}

// TestIndexRebuildOnUnload checks the dense index tracks module lifecycle.
func TestIndexRebuildOnUnload(t *testing.T) {
	s := NewServer()
	if err := s.Load(resetModule(1)); err != nil {
		t.Fatal(err)
	}
	src, tgt := Context{"u", "r", "app_t"}, Context{"u", "r", "msg_t"}
	if !s.Check(src, tgt, "can", "write").Granted {
		t.Fatal("loaded rule not granted")
	}
	if !s.Unload("m") {
		t.Fatal("unload failed")
	}
	if s.Check(src, tgt, "can", "write").Granted {
		t.Error("unloaded rule still granted (stale index or AVC)")
	}
}
