package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/car"
)

// testSpec exercises every generator kind and both regime levels.
const testSpec = `
# A compact campaign touching every construct.
campaign "test" version 2 {
  seed 7
  regimes none, hpe

  mutate "ecu-space" {
    base EVECU-1
    attackers Infotainment, Sensors, Telematics
    placements inside, outside
    modes Normal, FailSafe
    repeats 1, 3
    pick 10
    probe off
  }

  flood "exfil" {
    regimes none, hpe, behaviour
    id 0x300
    payload EE01
    team Telematics
    team Telematics, Sensors
    rates 200us
    frames 40
    threshold 10
  }

  staged "takeover" {
    attackers Infotainment, Telematics
    goal firmware-modified
    stage "inject" {
      inject 0x10 01 x 2
    }
    stage "persist" {
      proceed propulsion-off
      inject 0x600 DEAD x 2 every 1ms
    }
  }
}
`

func TestParseRoundTrip(t *testing.T) {
	sp := MustParse(testSpec)
	if sp.Name != "test" || sp.Version != 2 || sp.Seed != 7 {
		t.Fatalf("header mismatch: %+v", sp)
	}
	if len(sp.Generators) != 3 {
		t.Fatalf("expected 3 generators, got %d", len(sp.Generators))
	}
	again, err := Parse(sp.String())
	if err != nil {
		t.Fatalf("canonical rendering does not re-parse: %v\n%s", err, sp.String())
	}
	if !reflect.DeepEqual(sp, again) {
		t.Errorf("render round trip changed the spec:\nfirst  %+v\nsecond %+v", sp, again)
	}
}

func TestParseJSONEquivalence(t *testing.T) {
	sp := MustParse(testSpec)
	raw, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse(string(raw))
	if err != nil {
		t.Fatalf("JSON form does not parse: %v\n%s", err, raw)
	}
	if !reflect.DeepEqual(sp, fromJSON) {
		t.Errorf("JSON round trip changed the spec:\nDSL  %+v\nJSON %+v", sp, fromJSON)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	bad := []string{
		``,
		`campaign "x" version 1 {}`, // no generators
		`campaign "x" version 1 { mutate "m" { base NO-SUCH } }`,                // unknown base caught at compile, spec ok — see below
		`campaign "x" version 1 { regimes warp mutate "m" {} }`,                 // unknown regime
		`campaign "x" version 1 { flood "f" {} }`,                               // no teams
		`campaign "x" version 1 { staged "s" { goal always } }`,                 // no attackers
		`campaign "x" version 1 { mutate "m" {} mutate "m" {} }`,                // duplicate family
		`campaign "x" version 1 { staged "s" { attackers A } }`,                 // no goal
		`campaign "x" version 1 { mutate "m" { repeats 0 } }`,                   // bad repeat
		`campaign "x" version 1 { mutate "m" { payloads 010203040506070809 } }`, // >8 bytes
		`{"name":"x","version":1,"generators":[{"kind":"warp","name":"g"}]}`,    // bad kind via JSON
	}
	for i, src := range bad {
		if i == 2 {
			continue // valid spec; compile rejects it (covered below)
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, src)
		}
	}
	if _, err := (Compiler{}).Compile(MustParse(`campaign "x" version 1 { mutate "m" { base NO-SUCH } }`)); err == nil {
		t.Error("expected compile error for unknown base threat")
	}
}

func TestCompileExpansion(t *testing.T) {
	plan, err := (Compiler{}).Compile(MustParse(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Families) != 3 {
		t.Fatalf("expected 3 families, got %d", len(plan.Families))
	}
	m, f, s := &plan.Families[0], &plan.Families[1], &plan.Families[2]
	if len(m.Scenarios) != 10 {
		t.Errorf("mutate pick 10 produced %d scenarios", len(m.Scenarios))
	}
	if len(f.Scenarios) != 2 {
		t.Errorf("flood teams×rates×frames should be 2, got %d", len(f.Scenarios))
	}
	if len(s.Scenarios) != 2 {
		t.Errorf("staged attacker variants should be 2, got %d", len(s.Scenarios))
	}
	if got := plan.ScenariosPerVehicle(); got != 14 {
		t.Errorf("scenarios/vehicle = %d, want 14", got)
	}
	// none,hpe campaign default on mutate/staged; flood overrides with 3.
	if got := plan.CellsPerVehicle(); got != 10*2+2*3+2*2 {
		t.Errorf("cells/vehicle = %d, want %d", got, 10*2+2*3+2*2)
	}
	// Scenario names must be unique across the whole campaign.
	seen := map[string]bool{}
	for _, fam := range plan.Families {
		for _, sc := range fam.Scenarios {
			if seen[sc.Name] {
				t.Errorf("duplicate scenario name %q", sc.Name)
			}
			seen[sc.Name] = true
		}
	}
	// Flood scenarios carry coordinated injection streams.
	two := f.Scenarios[1]
	if len(two.Coattackers) != 1 || !two.ParallelInjections || len(two.Injections) != 2 {
		t.Errorf("two-attacker flood malformed: %+v", two)
	}
	// Outside-placed mutate variants of catalog nodes are renamed rogues.
	for _, sc := range m.Scenarios {
		if sc.Placement == attack.Outside && !strings.HasPrefix(sc.Attacker, "Rogue-") {
			t.Errorf("outside attacker %q not renamed", sc.Attacker)
		}
		if sc.Placement == attack.Inside && !isCatalogNode(sc.Attacker) {
			t.Errorf("inside attacker %q is not a catalog node", sc.Attacker)
		}
		if !sc.SkipProbe {
			t.Errorf("mutate family declared probe off; scenario %q still probes", sc.Name)
		}
	}
}

func TestCompileIsDeterministic(t *testing.T) {
	a, err := (Compiler{}).Compile(MustParse(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := (Compiler{}).Compile(MustParse(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if a.Matrix() != b.Matrix() {
		t.Error("two compilations of the same spec produced different matrices")
	}
	// Different campaign seeds must shuffle the pick sample differently.
	seeded := MustParse(strings.Replace(testSpec, "seed 7", "seed 8", 1))
	c, err := (Compiler{}).Compile(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Matrix() == c.Matrix() {
		t.Error("changing the campaign seed did not change the sampled scenario set")
	}
}

// TestSweepOutcomes runs the full test campaign on a small fleet and checks
// the domain-level expectations: unenforced attacks land, the identifier
// HPE stops the mutated inside attacks but not the approved-writer flood,
// and the behaviour regime caps the flood below its threshold.
func TestSweepOutcomes(t *testing.T) {
	plan, err := (Compiler{}).Compile(MustParse(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(plan, SweepConfig{Fleet: 3, RootSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fleet != 3 || rep.ScenariosPerVehicle != 14 {
		t.Fatalf("report header mismatch: %+v", rep)
	}
	byRegime := func(f FamilyReport, e attack.Enforcement) attack.Summary {
		for _, rs := range f.Regimes {
			if rs.Regime == e {
				return rs.Summary
			}
		}
		t.Fatalf("family %s has no %s aggregate", f.Name, e)
		return attack.Summary{}
	}
	flood := rep.Families[1]
	if s := byRegime(flood, attack.EnforceNone); s.Succeeded != s.Runs {
		t.Errorf("unenforced flood should always land: %+v", s)
	}
	if s := byRegime(flood, attack.EnforceHPE); s.Succeeded != s.Runs {
		t.Errorf("identifier HPE cannot stop an approved writer's flood: %+v", s)
	}
	if s := byRegime(flood, attack.EnforceBehaviour); s.Blocked != s.Runs {
		t.Errorf("behaviour regime should cap every flood run: %+v", s)
	}
	staged := rep.Families[2]
	if s := byRegime(staged, attack.EnforceNone); s.StageRuns == 0 {
		t.Errorf("unenforced staged chains should run stages: %+v", s)
	}
	if s := byRegime(staged, attack.EnforceHPE); s.StagesHalted != s.Runs {
		t.Errorf("HPE should halt every kill chain at its predicate: %+v", s)
	}
	// The report never mentions worker counts (byte-identity contract).
	if strings.Contains(rep.String(), "worker") {
		t.Error("campaign report leaks worker configuration")
	}
}

// TestPredicateTable sanity-checks the predicate vocabulary against a
// freshly built car state.
func TestPredicateTable(t *testing.T) {
	s := car.MustNew(car.Config{}).State()
	truths := map[string]bool{
		"always": true, "propulsion-on": true, "propulsion-off": false,
		"doors-unlocked": true, "doors-locked": false, "exfil": false,
		"firmware-modified": false, "display-mismatch": false,
	}
	for name, want := range truths {
		if got := predicates[name](s); got != want {
			t.Errorf("predicate %s on power-on state = %v, want %v", name, got, want)
		}
	}
	if len(PredicateNames()) != len(predicates) {
		t.Error("PredicateNames out of sync")
	}
}

// TestDurationAndHexForms pins the compact textual forms.
func TestDurationAndHexForms(t *testing.T) {
	cases := map[Duration]string{
		Duration(200 * time.Microsecond): "200us",
		Duration(2 * time.Millisecond):   "2ms",
		Duration(3 * time.Second):        "3s",
		Duration(1500 * time.Nanosecond): "1500ns",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("Duration(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
	if HexBytes([]byte{0xEE, 0x01}).String() != "EE01" {
		t.Error("hex rendering broken")
	}
	if _, err := parseHex("EE0"); err == nil {
		t.Error("odd-length hex should fail")
	}
}

// TestStagedFromRoutesToRenamedPrimary: an outside-placement variant
// renames a catalog attacker to its rogue form; stage injections whose From
// names the attacker by its axis name must still route to that (renamed)
// primary, not spawn a spurious *inside* coattacker that changes what the
// placement axis measures.
func TestStagedFromRoutesToRenamedPrimary(t *testing.T) {
	plan, err := (Compiler{}).Compile(MustParse(`
campaign "route" version 1 {
  staged "st" {
    attackers Telematics
    placements inside, outside
    goal exfil
    stage "one" { inject 0x300 EE x 2 from Telematics }
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	scenarios := plan.Families[0].Scenarios
	if len(scenarios) != 2 {
		t.Fatalf("expected 2 variants, got %d", len(scenarios))
	}
	for _, sc := range scenarios {
		if len(sc.Coattackers) != 0 {
			t.Errorf("%s: primary-addressed From spawned coattackers %v", sc.Name, sc.Coattackers)
		}
		for _, inj := range sc.Stages[0].Injections {
			if inj.From != "" {
				t.Errorf("%s: injection From %q did not resolve to the primary", sc.Name, inj.From)
			}
		}
	}
	if scenarios[1].Attacker != "Rogue-Telematics" {
		t.Errorf("outside variant attacker = %q", scenarios[1].Attacker)
	}
}

// TestMutateProductCapOverflow: the family-size cap must hold even when the
// naive axis product would overflow int — duplicate-heavy axes may not slip
// a gigantic (or wrapped-negative) cross-product past validation.
func TestMutateProductCapOverflow(t *testing.T) {
	g := GeneratorSpec{Kind: KindMutate, Name: "big"}
	axis := make([]string, 1<<13)
	for i := range axis {
		axis[i] = "Infotainment"
	}
	g.Attackers = axis
	g.Modes = append([]string(nil), axis...)
	g.Placements = []string{"inside", "inside", "inside", "inside"}
	reps := make([]int, 1<<13)
	for i := range reps {
		reps[i] = 1
	}
	g.Repeats = reps
	gaps := make([]Duration, 1<<13)
	for i := range gaps {
		gaps[i] = Duration(time.Millisecond)
	}
	g.Gaps = gaps
	pays := make([]HexBytes, 1<<13)
	for i := range pays {
		pays[i] = HexBytes{0x01}
	}
	g.Payloads = pays
	// 16 bases x 8192^5 x 4 ≈ 2^69: wraps negative/small in int arithmetic.
	if _, err := expandMutate(&g, attack.Scenarios(), 1); err == nil {
		t.Fatal("overflowing cross-product accepted")
	}
}
