package campaign

import (
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/engine"
)

// chaosPlan is the shared fault mix of the supervisor property tests: every
// fault kind armed at rates high enough that a 6-vehicle sweep of the
// determinism campaign reliably hits each class.
func chaosPlan() *chaos.Plan {
	return &chaos.Plan{Seed: 77, Panic: 0.03, Corrupt: 0.03, Deadline: 0.02, Crash: 0.01}
}

// stripHealth drops the health line so the payload halves of two reports can
// be compared independently of their containment ledgers.
func stripHealth(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.HasPrefix(line, "health: ") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestChaosSweepPayloadMatchesFaultFree is the tentpole property: a sweep
// whose injected faults are all recovered by the supervisor (default
// persist=1, so every retry clears its fault) renders a payload report
// byte-identical to the fault-free oracle — only the health line may differ.
// Checked across worker counts and both pooling modes.
func TestChaosSweepPayloadMatchesFaultFree(t *testing.T) {
	plan := determinismPlan(t)
	clean, err := Sweep(plan, SweepConfig{Fleet: 6, Workers: 1, RootSeed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Health.IsZero() || clean.HealthEnabled {
		t.Fatalf("fault-free sweep carries health state: %+v", clean.Health)
	}
	cleanPayload := stripHealth(clean.String())

	for _, fresh := range []bool{false, true} {
		for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			rep, err := Sweep(plan, SweepConfig{
				Fleet: 6, Workers: w, RootSeed: 1234,
				FreshVehicles: fresh, Chaos: chaosPlan(),
			})
			if err != nil {
				t.Fatalf("fresh=%v workers=%d: %v", fresh, w, err)
			}
			if rep.Health.IsZero() {
				t.Fatalf("fresh=%v workers=%d: chaos sweep contained nothing — rates too low for the shape", fresh, w)
			}
			if got := stripHealth(rep.String()); got != cleanPayload {
				t.Errorf("fresh=%v workers=%d: chaos payload diverged from fault-free oracle\n--- fault-free\n%s\n--- chaos\n%s",
					fresh, w, cleanPayload, got)
			}
		}
	}
}

// TestChaosHealthDeterministicAcrossWorkers: the full report — health line
// included — must not change with the worker count, within each pooling
// mode. (Pooled and fresh ledgers may legitimately differ: checkpoint
// corruption only exists on the pooled batched path.)
func TestChaosHealthDeterministicAcrossWorkers(t *testing.T) {
	plan := determinismPlan(t)
	for _, fresh := range []bool{false, true} {
		base, err := Sweep(plan, SweepConfig{
			Fleet: 6, Workers: 1, RootSeed: 1234,
			FreshVehicles: fresh, Chaos: chaosPlan(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
			rep, err := Sweep(plan, SweepConfig{
				Fleet: 6, Workers: w, RootSeed: 1234,
				FreshVehicles: fresh, Chaos: chaosPlan(),
			})
			if err != nil {
				t.Fatalf("fresh=%v workers=%d: %v", fresh, w, err)
			}
			if rep.String() != base.String() {
				t.Errorf("fresh=%v: report (health included) differs between workers=1 and workers=%d\n--- w=1\n%s--- w=%d\n%s",
					fresh, w, base, w, rep)
			}
		}
	}
}

// TestChaosDemotionFallsBackToOracle: faults that outlive the batched retry
// budget (persist = MaxRetries+1) demote their cells to the oracle path,
// which clears them — the sweep completes with demotions booked and the
// payload still byte-identical to the fault-free run.
func TestChaosDemotionFallsBackToOracle(t *testing.T) {
	plan := determinismPlan(t)
	const retries = 2
	clean, err := Sweep(plan, SweepConfig{Fleet: 4, Workers: 1, RootSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(plan, SweepConfig{
		Fleet: 4, Workers: 2, RootSeed: 99, MaxRetries: retries,
		Chaos: &chaos.Plan{Seed: 5, Panic: 0.02, Persist: retries + 1},
	})
	if err != nil {
		t.Fatalf("demotion sweep failed — oracle fallback did not clear persistent faults: %v", err)
	}
	if rep.Health.CellDemotions == 0 || rep.Health.VehicleDemotions == 0 {
		t.Fatalf("no demotions booked: %+v", rep.Health)
	}
	if rep.Health.Unrecoverable != 0 {
		t.Fatalf("demoted cells reported unrecoverable: %+v", rep.Health)
	}
	if got := stripHealth(rep.String()); got != stripHealth(clean.String()) {
		t.Errorf("payload diverged through demotion:\n--- fault-free\n%s\n--- demoted\n%s", clean, got)
	}
}

// TestChaosUnrecoverableReturnsPartialReport: a fault that persists through
// every rung (batched retries, oracle demotion, oracle retries) fails the
// sweep — but the error arrives alongside a partial report whose Health
// ledger records the unrecoverable cells.
func TestChaosUnrecoverableReturnsPartialReport(t *testing.T) {
	plan := determinismPlan(t)
	rep, err := Sweep(plan, SweepConfig{
		Fleet: 3, Workers: 2, RootSeed: 7,
		Chaos: &chaos.Plan{Seed: 5, Panic: 1, Persist: 99},
	})
	if err == nil {
		t.Fatal("sweep with unrecoverable faults returned nil error")
	}
	if !errors.Is(err, engine.ErrUnrecoverable) {
		t.Fatalf("error %v does not wrap engine.ErrUnrecoverable", err)
	}
	if rep == nil {
		t.Fatal("no partial report alongside the unrecoverable error")
	}
	if rep.Health.Unrecoverable == 0 {
		t.Fatalf("partial report books no unrecoverable cells: %+v", rep.Health)
	}
	if !strings.Contains(rep.String(), "unrecoverable=") {
		t.Errorf("partial report renders no health line:\n%s", rep)
	}
}

// TestVerifySampleCleanRun: full-rate inline verification on a healthy sweep
// samples every forked cell, finds zero mismatches, and leaves the payload
// byte-identical to the unsampled run.
func TestVerifySampleCleanRun(t *testing.T) {
	plan := determinismPlan(t)
	clean, err := Sweep(plan, SweepConfig{Fleet: 4, Workers: 1, RootSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Sweep(plan, SweepConfig{Fleet: 4, Workers: 2, RootSeed: 42, VerifySample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Health.VerifySamples == 0 {
		t.Fatal("verify-sample 1.0 sampled nothing")
	}
	if rep.Health.VerifyMismatches != 0 {
		t.Fatalf("healthy batched path diverged from its oracle: %+v", rep.Health)
	}
	if !rep.HealthEnabled {
		t.Error("verify sampling did not arm the health section")
	}
	if got := stripHealth(rep.String()); got != stripHealth(clean.String()) {
		t.Errorf("verified payload diverged:\n--- clean\n%s\n--- verified\n%s", clean, got)
	}
}
