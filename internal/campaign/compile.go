package campaign

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/car"
	"repro/internal/engine"
	"repro/internal/policy"
)

// maxFamilyScenarios bounds one generator's expansion so a compact spec
// cannot declare an unsweepable cross-product by accident.
const maxFamilyScenarios = 100_000

// Plan is a compiled campaign: executable scenario families plus the
// enforcement regimes each is swept under.
type Plan struct {
	// Spec is the source definition.
	Spec *Spec
	// Regimes is the campaign-level sweep, in spec order.
	Regimes []attack.Enforcement
	// Families are the expanded generators, in declaration order.
	Families []Family
}

// Family is one generator's expansion.
type Family struct {
	// Name and Kind echo the generator.
	Name string
	Kind string
	// Seed is the family's SplitMix64 sub-seed (drives pick sampling and
	// the per-family fleet root during a sweep).
	Seed uint64
	// Regimes is the family's enforcement sweep.
	Regimes []attack.Enforcement
	// Scenarios are the generated attack cells, in generation order.
	Scenarios []attack.Scenario
}

// ScenariosPerVehicle totals generated scenarios across families: the
// campaign's per-vehicle scenario count.
func (p *Plan) ScenariosPerVehicle() int {
	n := 0
	for i := range p.Families {
		n += len(p.Families[i].Scenarios)
	}
	return n
}

// CellsPerVehicle totals scenario×regime cells across families.
func (p *Plan) CellsPerVehicle() int {
	n := 0
	for i := range p.Families {
		n += len(p.Families[i].Scenarios) * len(p.Families[i].Regimes)
	}
	return n
}

// Matrix renders the generated scenario matrix without running it — the
// carsim -list-scenarios view.
func (p *Plan) Matrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q v%d: %d families, %d scenarios/vehicle, %d cells/vehicle\n",
		p.Spec.Name, p.Spec.Version, len(p.Families), p.ScenariosPerVehicle(), p.CellsPerVehicle())
	for fi := range p.Families {
		f := &p.Families[fi]
		fmt.Fprintf(&b, "family %s (%s): %d scenarios, seed %#016x, regimes %s\n",
			f.Name, f.Kind, len(f.Scenarios), f.Seed, regimeNames(f.Regimes))
		for i := range f.Scenarios {
			sc := &f.Scenarios[i]
			fmt.Fprintf(&b, "  %-58s %-7s %-18s %-10s inj=%d", sc.Name,
				sc.Placement, sc.Attacker, sc.Mode, len(sc.Injections))
			if len(sc.Coattackers) > 0 {
				fmt.Fprintf(&b, " co=%d", len(sc.Coattackers))
			}
			if len(sc.Stages) > 0 {
				fmt.Fprintf(&b, " stages=%d", len(sc.Stages))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func regimeNames(regimes []attack.Enforcement) string {
	parts := make([]string, len(regimes))
	for i, r := range regimes {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// capProduct enforces the family-size cap on a cross-product of axis
// lengths, multiplying incrementally and bailing as soon as the running
// product exceeds it: axis lengths are unbounded (duplicates are legal), so
// a single product expression could overflow int and slip a gigantic family
// past the cap as a small or negative number.
func capProduct(dims ...int) error {
	product := 1
	for _, n := range dims {
		product *= n
		if product > maxFamilyScenarios {
			return fmt.Errorf("cross-product exceeds the %d cap", maxFamilyScenarios)
		}
	}
	return nil
}

// splitmix advances a SplitMix64 state and returns the next output: the
// deterministic stream behind pick sampling. Sub-seed *derivation* reuses
// engine.VehicleSeed so the whole stack shares one mixing primitive.
func splitmix(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// prefixKey derives a scenario prefix-sharing key from a family seed and a
// bucket ordinal, reusing the stack's shared mixing primitive. A zero result
// would read as "no sharing" to attack.PlanBatches, so the (astronomically
// unlikely) zero derivation is remapped.
func prefixKey(famSeed uint64, bucket int) uint64 {
	k := engine.VehicleSeed(famSeed, bucket)
	if k == 0 {
		k = 1
	}
	return k
}

// Compiler lowers a Spec into a Plan of executable attack.Scenario cells.
type Compiler struct {
	// Bases is the baseline catalog mutate generators draw from
	// (default attack.Scenarios(), the Table I set).
	Bases []attack.Scenario
}

// Compile expands every generator. The expansion is a pure function of the
// spec (and the compiler's base catalog): same spec, same plan, regardless
// of host, worker count or prior compilations.
func (cp Compiler) Compile(sp *Spec) (*Plan, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	bases := cp.Bases
	if len(bases) == 0 {
		bases = attack.Scenarios()
	}
	p := &Plan{Spec: sp, Regimes: toRegimes(sp.Regimes)}
	for i := range sp.Generators {
		g := &sp.Generators[i]
		fam := Family{
			Name:    g.Name,
			Kind:    g.Kind,
			Seed:    engine.VehicleSeed(sp.Seed, i),
			Regimes: p.Regimes,
		}
		if len(g.Regimes) > 0 {
			fam.Regimes = toRegimes(g.Regimes)
		}
		var err error
		switch g.Kind {
		case KindMutate:
			fam.Scenarios, err = expandMutate(g, bases, fam.Seed)
		case KindFlood:
			fam.Scenarios, err = expandFlood(g)
		case KindStaged:
			fam.Scenarios, err = expandStaged(g)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign %q generator %q: %w", sp.Name, g.Name, err)
		}
		if g.Kind == KindFlood || g.Kind == KindStaged {
			// Flood and staged cells carry no Setup: their pre-attack prefix
			// is reset + regime provisioning alone, identical across the whole
			// family, so the family shares one prefix bucket. (Mutate families
			// key per base inside expandMutate — variants inherit their base's
			// Setup, and different bases prepare different vehicle state.)
			key := prefixKey(fam.Seed, 0)
			for si := range fam.Scenarios {
				fam.Scenarios[si].PrefixKey = key
			}
		}
		if len(fam.Scenarios) == 0 {
			return nil, fmt.Errorf("campaign %q generator %q: expansion produced no scenarios", sp.Name, g.Name)
		}
		p.Families = append(p.Families, fam)
	}
	return p, nil
}

// toRegimes maps validated regime words to enforcement values; an empty
// list yields the paper's baseline-vs-defence default.
func toRegimes(words []string) []attack.Enforcement {
	if len(words) == 0 {
		return []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE}
	}
	out := make([]attack.Enforcement, len(words))
	for i, w := range words {
		switch w {
		case "none":
			out[i] = attack.EnforceNone
		case "software":
			out[i] = attack.EnforceSoftware
		case "hpe":
			out[i] = attack.EnforceHPE
		case "behaviour":
			out[i] = attack.EnforceBehaviour
		}
	}
	return out
}

// resolvePlacement maps a placement word onto the attacker model, keeping
// the baseline's when unset.
func resolvePlacement(word string, base attack.Placement) attack.Placement {
	switch word {
	case "inside":
		return attack.Inside
	case "outside":
		return attack.Outside
	default:
		return base
	}
}

// isCatalogNode reports whether name is a legitimate Fig. 2 station.
func isCatalogNode(name string) bool {
	for _, n := range car.AllNodes {
		if n == name {
			return true
		}
	}
	return false
}

// orDefault returns vals, or a single-element "keep the baseline" axis.
func orDefault(vals []string) []string {
	if len(vals) == 0 {
		return []string{""}
	}
	return vals
}

// expandMutate enumerates the cross-product of the declared axes over the
// selected baselines, skipping combos that are not placeable (an inside
// attacker must be a catalog node), then optionally samples `pick` combos
// with the family seed (a partial Fisher–Yates pass, deterministic).
func expandMutate(g *GeneratorSpec, bases []attack.Scenario, famSeed uint64) ([]attack.Scenario, error) {
	selected := bases
	if g.Base != "" {
		sc, ok := BaseFor(bases, g.Base)
		if !ok {
			return nil, fmt.Errorf("unknown base threat %q", g.Base)
		}
		selected = []attack.Scenario{sc}
	}
	attackers := orDefault(g.Attackers)
	placements := orDefault(g.Placements)
	modes := orDefault(g.Modes)
	repeats := g.Repeats
	if len(repeats) == 0 {
		repeats = []int{0}
	}
	gaps := g.Gaps
	if len(gaps) == 0 {
		gaps = []Duration{0}
	}
	payloads := g.Payloads
	if len(payloads) == 0 {
		payloads = []HexBytes{nil}
	}

	if err := capProduct(len(selected), len(attackers), len(placements),
		len(modes), len(repeats), len(gaps), len(payloads)); err != nil {
		return nil, err
	}

	var out []attack.Scenario
	combo := 0
	for bi := range selected {
		base := &selected[bi]
		// Every variant of one base inherits the base's Setup (mutateScenario
		// copies the scenario struct), so all of them share an identical
		// pre-attack prefix: one prefix bucket per base. The key survives the
		// pick shuffle below — attack.PlanBatches groups by key, it does not
		// require bucket siblings to stay adjacent.
		key := prefixKey(famSeed, bi)
		for _, att := range attackers {
			for _, plc := range placements {
				for _, mode := range modes {
					for _, rep := range repeats {
						for _, gap := range gaps {
							for _, pay := range payloads {
								combo++
								sc, ok := mutateScenario(g, base, combo-1, att, plc, mode, rep, gap, pay)
								if ok {
									sc.PrefixKey = key
									out = append(out, sc)
								}
							}
						}
					}
				}
			}
		}
	}
	return samplePick(out, g.Pick, famSeed), nil
}

// BaseFor finds a baseline scenario by threat ID in a catalog — shared by
// mutate expansion here and by risk synthesis, so the two halves of the
// threat-grounding contract can never diverge on the lookup rule.
func BaseFor(bases []attack.Scenario, threatID string) (attack.Scenario, bool) {
	for _, sc := range bases {
		if sc.ThreatID == threatID {
			return sc, true
		}
	}
	return attack.Scenario{}, false
}

// mutateScenario derives one variant from a baseline; ok is false when the
// combo is not placeable.
func mutateScenario(g *GeneratorSpec, base *attack.Scenario, combo int,
	att, plc, mode string, rep int, gap Duration, pay HexBytes) (attack.Scenario, bool) {

	placement := resolvePlacement(plc, base.Placement)
	attacker := att
	if attacker == "" {
		attacker = base.Attacker
	}
	switch placement {
	case attack.Inside:
		// An inside attacker is a compromised *existing* station.
		if !isCatalogNode(attacker) {
			return attack.Scenario{}, false
		}
	case attack.Outside:
		// An outside attacker is a new rogue node; it may not shadow a
		// catalog station's name on the bus.
		if isCatalogNode(attacker) {
			attacker = "Rogue-" + attacker
		}
	}

	sc := *base
	sc.Name = fmt.Sprintf("%s#%04d %s %s@%s", g.Name, combo, base.ThreatID, attacker, placement)
	sc.Placement = placement
	sc.Attacker = attacker
	if mode != "" {
		sc.Mode = policy.Mode(mode)
	}
	sc.SkipProbe = g.NoProbe
	sc.Injections = append([]attack.Injection(nil), base.Injections...)
	for i := range sc.Injections {
		if rep > 0 {
			sc.Injections[i].Repeat = rep
		}
		if gap > 0 {
			sc.Injections[i].Gap = time.Duration(gap)
		}
		if len(pay) > 0 {
			sc.Injections[i].Data = pay
		}
	}
	return sc, true
}

// samplePick returns `pick` scenarios drawn without replacement via a
// partial Fisher–Yates shuffle seeded from the family seed; pick <= 0 or
// pick >= len keeps the full set.
func samplePick(scenarios []attack.Scenario, pick int, famSeed uint64) []attack.Scenario {
	if pick <= 0 || pick >= len(scenarios) {
		return scenarios
	}
	state := famSeed
	for i := 0; i < pick; i++ {
		j := i + int(splitmix(&state)%uint64(len(scenarios)-i))
		scenarios[i], scenarios[j] = scenarios[j], scenarios[i]
	}
	return scenarios[:pick:pick]
}

// teamAttacker maps a team member onto an attacker placement: catalog
// stations join as compromised insiders, any other name attaches as an
// outside rogue.
func teamAttacker(name string) attack.Attacker {
	if isCatalogNode(name) {
		return attack.Attacker{Name: name, Placement: attack.Inside}
	}
	return attack.Attacker{Name: name, Placement: attack.Outside}
}

// expandFlood enumerates teams × rates × frame-counts. Every team member
// streams the flooded identifier concurrently (ParallelInjections); the
// goal predicate (default: exfil with the declared threshold) decides
// success.
func expandFlood(g *GeneratorSpec) ([]attack.Scenario, error) {
	rates := g.Rates
	if len(rates) == 0 {
		rates = []Duration{Duration(200 * time.Microsecond)}
	}
	frames := g.Frames
	if len(frames) == 0 {
		frames = []int{40}
	}
	goal, err := goalFunc(g.Goal, "exfil", g.Threshold)
	if err != nil {
		return nil, err
	}
	if err := capProduct(len(g.Teams), len(rates), len(frames)); err != nil {
		return nil, err
	}

	var out []attack.Scenario
	combo := 0
	for _, team := range g.Teams {
		for _, rate := range rates {
			for _, n := range frames {
				primary := teamAttacker(team[0])
				sc := attack.Scenario{
					ThreatID:           g.Name,
					Name:               fmt.Sprintf("%s#%04d team=%s rate=%s frames=%d", g.Name, combo, strings.Join(team, "+"), rate, n),
					Placement:          primary.Placement,
					Attacker:           primary.Name,
					Mode:               car.ModeNormal,
					ParallelInjections: true,
					SkipProbe:          g.NoProbe,
					Succeeded:          goal,
				}
				for _, member := range team {
					if member != team[0] {
						sc.Coattackers = append(sc.Coattackers, teamAttacker(member))
					}
					sc.Injections = append(sc.Injections, attack.Injection{
						ID:     g.ID,
						Data:   g.Payload,
						Repeat: n,
						Gap:    time.Duration(rate),
						From:   member,
					})
				}
				out = append(out, sc)
				combo++
			}
		}
	}
	return out, nil
}

// goalFunc resolves the success predicate: the exfil goal is parameterised
// by threshold, every other predicate is used as-is.
func goalFunc(name, dflt string, threshold int) (func(car.State) bool, error) {
	if name == "" {
		name = dflt
	}
	if name == "exfil" {
		min := threshold
		if min < 1 {
			min = 1
		}
		return func(s car.State) bool { return s.ExfilReports >= min }, nil
	}
	fn, ok := predicates[name]
	if !ok {
		return nil, fmt.Errorf("unknown goal predicate %q", name)
	}
	return fn, nil
}

// expandStaged enumerates attackers × placements × modes variants of the
// declared stage chain. Stage injections may transmit from coattackers
// (From); any From name that is not the variant's primary attacker is
// auto-placed by catalog membership.
func expandStaged(g *GeneratorSpec) ([]attack.Scenario, error) {
	placements := g.Placements
	if len(placements) == 0 {
		placements = []string{"inside"}
	}
	modes := g.Modes
	if len(modes) == 0 {
		modes = []string{string(car.ModeNormal)}
	}
	goal, err := goalFunc(g.Goal, "", g.Threshold)
	if err != nil {
		return nil, err
	}
	if err := capProduct(len(g.Attackers), len(placements), len(modes)); err != nil {
		return nil, err
	}

	var out []attack.Scenario
	combo := 0
	for _, att := range g.Attackers {
		for _, plc := range placements {
			for _, mode := range modes {
				combo++
				placement := resolvePlacement(plc, attack.Inside)
				attacker := att
				if placement == attack.Inside && !isCatalogNode(attacker) {
					continue // not placeable: insiders are catalog stations
				}
				if placement == attack.Outside && isCatalogNode(attacker) {
					attacker = "Rogue-" + attacker
				}
				sc := attack.Scenario{
					ThreatID:  g.Name,
					Name:      fmt.Sprintf("%s#%04d %s@%s %s", g.Name, combo-1, attacker, placement, mode),
					Placement: placement,
					Attacker:  attacker,
					Mode:      policy.Mode(mode),
					SkipProbe: g.NoProbe,
					Succeeded: goal,
				}
				for _, stSpec := range g.Stages {
					st := attack.Stage{Name: stSpec.Name}
					if stSpec.Proceed != "" && stSpec.Proceed != "always" {
						st.Proceed = predicates[stSpec.Proceed]
					}
					for _, inj := range stSpec.Injections {
						// A From naming this variant's attacker — by its axis
						// name or its renamed rogue form — routes to the
						// primary; anything else joins as a coattacker. (An
						// outside variant renames catalog attackers, so
						// comparing the renamed form alone would demote the
						// primary to a spurious *inside* coattacker.)
						from := inj.From
						if from == att || from == attacker {
							from = ""
						} else if from != "" {
							addCoattacker(&sc, from)
						}
						st.Injections = append(st.Injections, attack.Injection{
							ID:     inj.ID,
							Data:   inj.Data,
							Repeat: inj.Repeat,
							Gap:    time.Duration(inj.Gap),
							From:   from,
						})
					}
					sc.Stages = append(sc.Stages, st)
				}
				out = append(out, sc)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no placeable attacker variants (insiders must be catalog stations)")
	}
	return out, nil
}

// addCoattacker registers a From name as a coattacker once per scenario.
func addCoattacker(sc *attack.Scenario, name string) {
	for _, co := range sc.Coattackers {
		if co.Name == name {
			return
		}
	}
	sc.Coattackers = append(sc.Coattackers, teamAttacker(name))
}
