package campaign

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// The campaign DSL is a small block-structured text format in the spirit of
// the policy DSL (internal/policy). Grammar (comments run from '#' or '//'
// to end of line; WORD is a run of letters, digits, '_', '-', '.', '/'):
//
//	file      = "campaign" STRING "version" NUMBER "{" stmt* "}" .
//	stmt      = "seed" NUMBER | "regimes" wordList | generator .
//	generator = kind STRING "{" gstmt* "}" .
//	kind      = "mutate" | "flood" | "staged" .
//	gstmt     = "probe" ("on"|"off") | "regimes" wordList
//	          | "base" WORD | "attackers" wordList | "placements" wordList
//	          | "modes" wordList | "repeats" numList | "gaps" durList
//	          | "payloads" hexList | "pick" NUMBER
//	          | "id" NUMBER | "payload" HEX | "team" wordList
//	          | "rates" durList | "frames" numList | "threshold" NUMBER
//	          | "goal" WORD | stage .
//	stage     = "stage" STRING "{" sstmt* "}" .
//	sstmt     = "proceed" WORD | inject .
//	inject    = "inject" NUMBER [HEX] ["x" NUMBER] ["every" DUR] ["from" WORD] .
//
// Durations use Go syntax ("500us", "2ms"); payloads are bare even-length
// hex words ("EE01"). A document whose first non-space byte is '{' is
// instead decoded as the JSON form of Spec (the struct tags above).

type tokKind uint8

const (
	tEOF tokKind = iota + 1
	tWord
	tString
	tLBrace
	tRBrace
	tComma
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tWord:
		return "word"
	case tString:
		return "string"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tComma:
		return "','"
	default:
		return "invalid token"
	}
}

type tok struct {
	kind tokKind
	text string
	line int
}

// ParseError reports a campaign DSL syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("campaign: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == '/'
}

func (l *lexer) errf(format string, args ...any) *ParseError {
	return &ParseError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (tok, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return l.lexToken()
		}
	}
	return tok{kind: tEOF, line: l.line}, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexToken() (tok, error) {
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return tok{kind: tLBrace, line: l.line}, nil
	case c == '}':
		l.pos++
		return tok{kind: tRBrace, line: l.line}, nil
	case c == ',':
		l.pos++
		return tok{kind: tComma, line: l.line}, nil
	case c == '*':
		l.pos++
		return tok{kind: tWord, text: "*", line: l.line}, nil
	case c == '"':
		return l.lexString()
	default:
		if isWordRune(rune(c)) {
			return l.lexWord(), nil
		}
		return tok{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) lexWord() tok {
	start := l.pos
	for l.pos < len(l.src) && isWordRune(rune(l.src[l.pos])) {
		l.pos++
	}
	return tok{kind: tWord, text: l.src[start:l.pos], line: l.line}
}

func (l *lexer) lexString() (tok, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			text := b.String()
			if err := validString("string literal", text); err != nil {
				return tok{}, l.errf("%v", err)
			}
			return tok{kind: tString, text: text, line: l.line}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return tok{}, l.errf("unterminated escape")
			}
			l.pos++
			switch esc := l.src[l.pos]; esc {
			case '"', '\\':
				b.WriteByte(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return tok{}, l.errf("unknown escape \\%c", esc)
			}
			l.pos++
		case '\n':
			return tok{}, l.errf("unterminated string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return tok{}, l.errf("unterminated string")
}

type parser struct {
	lex *lexer
	tok tok
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) *ParseError {
	return &ParseError{Line: p.tok.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (tok, error) {
	if p.tok.kind != k {
		return tok{}, p.errf("expected %v, found %v", k, p.tok.kind)
	}
	t := p.tok
	return t, p.advance()
}

// keyword consumes the current word token and returns its text.
func (p *parser) word() (string, error) {
	t, err := p.expect(tWord)
	return t.text, err
}

func (p *parser) number() (uint64, error) {
	t, err := p.expect(tWord)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseUint(t.text, 0, 64)
	if perr != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	return v, nil
}

func (p *parser) intIn(what string, max int) (int, error) {
	v, err := p.number()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, p.errf("%s %d exceeds %d", what, v, max)
	}
	return int(v), nil
}

func (p *parser) duration() (Duration, error) {
	t, err := p.expect(tWord)
	if err != nil {
		return 0, err
	}
	v, perr := time.ParseDuration(t.text)
	if perr != nil {
		return 0, p.errf("bad duration %q (use Go syntax, e.g. 500us)", t.text)
	}
	return Duration(v), nil
}

func (p *parser) hexWord() (HexBytes, error) {
	t, err := p.expect(tWord)
	if err != nil {
		return nil, err
	}
	v, perr := parseHex(t.text)
	if perr != nil {
		return nil, p.errf("bad hex payload %q", t.text)
	}
	return v, nil
}

// wordList parses WORD { "," WORD }.
func (p *parser) wordList() ([]string, error) {
	var out []string
	for {
		w, err := p.word()
		if err != nil {
			return nil, err
		}
		out = append(out, w)
		if p.tok.kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) numList(what string, max int) ([]int, error) {
	var out []int
	for {
		v, err := p.intIn(what, max)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.tok.kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) durList() ([]Duration, error) {
	var out []Duration
	for {
		v, err := p.duration()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.tok.kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) hexList() ([]HexBytes, error) {
	var out []HexBytes
	for {
		v, err := p.hexWord()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.tok.kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// Parse reads a campaign definition — the DSL, or the JSON form when the
// first non-space byte is '{' — into a validated, canonicalised Spec.
func Parse(src string) (*Spec, error) {
	if t := strings.TrimLeftFunc(src, unicode.IsSpace); strings.HasPrefix(t, "{") {
		return parseJSON(src)
	}
	p := &parser{lex: &lexer{src: src, line: 1}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if w, err := p.word(); err != nil || w != "campaign" {
		if err != nil {
			return nil, err
		}
		return nil, p.errf("expected 'campaign', found %q", w)
	}
	name, err := p.expect(tString)
	if err != nil {
		return nil, err
	}
	if w, err := p.word(); err != nil || w != "version" {
		if err != nil {
			return nil, err
		}
		return nil, p.errf("expected 'version', found %q", w)
	}
	ver, err := p.number()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	sp := &Spec{Name: name.text, Version: ver}
	for p.tok.kind != tRBrace {
		if p.tok.kind == tEOF {
			return nil, p.errf("unexpected end of input: missing '}'")
		}
		kw, err := p.word()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "seed":
			if sp.Seed, err = p.number(); err != nil {
				return nil, err
			}
		case "regimes":
			if sp.Regimes, err = p.wordList(); err != nil {
				return nil, err
			}
		case KindMutate, KindFlood, KindStaged:
			g, err := p.parseGenerator(kw)
			if err != nil {
				return nil, err
			}
			sp.Generators = append(sp.Generators, g)
		default:
			return nil, p.errf("unknown campaign statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("trailing input after campaign block")
	}
	sp.normalize()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// MustParse is Parse for static specs; it panics on error.
func MustParse(src string) *Spec {
	sp, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return sp
}

func parseJSON(src string) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(strings.NewReader(src))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("campaign: bad JSON spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: trailing content after JSON spec")
	}
	sp.normalize()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

func (p *parser) parseGenerator(kind string) (GeneratorSpec, error) {
	g := GeneratorSpec{Kind: kind}
	name, err := p.expect(tString)
	if err != nil {
		return g, err
	}
	g.Name = name.text
	if _, err := p.expect(tLBrace); err != nil {
		return g, err
	}
	for p.tok.kind != tRBrace {
		if p.tok.kind == tEOF {
			return g, p.errf("unexpected end of input in generator %q", g.Name)
		}
		kw, err := p.word()
		if err != nil {
			return g, err
		}
		switch kw {
		case "probe":
			w, err := p.word()
			if err != nil {
				return g, err
			}
			switch w {
			case "on":
				g.NoProbe = false
			case "off":
				g.NoProbe = true
			default:
				return g, p.errf("probe takes 'on' or 'off', found %q", w)
			}
		case "regimes":
			if g.Regimes, err = p.wordList(); err != nil {
				return g, err
			}
		case "base":
			if g.Base, err = p.word(); err != nil {
				return g, err
			}
		case "attackers":
			if g.Attackers, err = p.wordList(); err != nil {
				return g, err
			}
		case "placements":
			if g.Placements, err = p.wordList(); err != nil {
				return g, err
			}
		case "modes":
			if g.Modes, err = p.wordList(); err != nil {
				return g, err
			}
		case "repeats":
			if g.Repeats, err = p.numList("repeat", maxRepeat); err != nil {
				return g, err
			}
		case "gaps":
			if g.Gaps, err = p.durList(); err != nil {
				return g, err
			}
		case "payloads":
			if g.Payloads, err = p.hexList(); err != nil {
				return g, err
			}
		case "pick":
			if g.Pick, err = p.intIn("pick", 1<<20); err != nil {
				return g, err
			}
		case "id":
			v, err := p.number()
			if err != nil {
				return g, err
			}
			if v > 0x7FF {
				return g, p.errf("id 0x%X exceeds the standard 11-bit range", v)
			}
			g.ID = uint32(v)
		case "payload":
			if g.Payload, err = p.hexWord(); err != nil {
				return g, err
			}
		case "team":
			t, err := p.wordList()
			if err != nil {
				return g, err
			}
			g.Teams = append(g.Teams, t)
		case "rates":
			if g.Rates, err = p.durList(); err != nil {
				return g, err
			}
		case "frames":
			if g.Frames, err = p.numList("frames", maxFrames); err != nil {
				return g, err
			}
		case "threshold":
			if g.Threshold, err = p.intIn("threshold", 1<<20); err != nil {
				return g, err
			}
		case "goal":
			if g.Goal, err = p.word(); err != nil {
				return g, err
			}
		case "stage":
			st, err := p.parseStage()
			if err != nil {
				return g, err
			}
			g.Stages = append(g.Stages, st)
		default:
			return g, p.errf("unknown %s statement %q", kind, kw)
		}
	}
	return g, p.advance() // consume '}'
}

func (p *parser) parseStage() (StageSpec, error) {
	var st StageSpec
	name, err := p.expect(tString)
	if err != nil {
		return st, err
	}
	st.Name = name.text
	if _, err := p.expect(tLBrace); err != nil {
		return st, err
	}
	for p.tok.kind != tRBrace {
		if p.tok.kind == tEOF {
			return st, p.errf("unexpected end of input in stage %q", st.Name)
		}
		kw, err := p.word()
		if err != nil {
			return st, err
		}
		switch kw {
		case "proceed":
			if st.Proceed, err = p.word(); err != nil {
				return st, err
			}
		case "inject":
			inj, err := p.parseInject()
			if err != nil {
				return st, err
			}
			st.Injections = append(st.Injections, inj)
		default:
			return st, p.errf("unknown stage statement %q", kw)
		}
	}
	return st, p.advance() // consume '}'
}

// injectMarkers are the optional clause keywords of an inject statement; a
// word matching one of them is never consumed as the payload.
var injectMarkers = map[string]bool{"x": true, "every": true, "from": true}

func (p *parser) parseInject() (InjectionSpec, error) {
	var inj InjectionSpec
	id, err := p.number()
	if err != nil {
		return inj, err
	}
	if id > 0x7FF {
		return inj, p.errf("id 0x%X exceeds the standard 11-bit range", id)
	}
	inj.ID = uint32(id)
	// Optional payload: an even-length hex word that is not a clause marker
	// and not the start of the next statement.
	if p.tok.kind == tWord && !injectMarkers[p.tok.text] && p.tok.text != "inject" && p.tok.text != "proceed" {
		if v, err := parseHex(p.tok.text); err == nil {
			inj.Data = v
			if err := p.advance(); err != nil {
				return inj, err
			}
		}
	}
	for p.tok.kind == tWord && injectMarkers[p.tok.text] {
		marker := p.tok.text
		if err := p.advance(); err != nil {
			return inj, err
		}
		switch marker {
		case "x":
			if inj.Repeat, err = p.intIn("repeat", maxFrames); err != nil {
				return inj, err
			}
		case "every":
			if inj.Gap, err = p.duration(); err != nil {
				return inj, err
			}
		case "from":
			if inj.From, err = p.word(); err != nil {
				return inj, err
			}
		}
	}
	return inj, nil
}
