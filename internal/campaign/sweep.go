package campaign

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/shard"
)

// SweepConfig parameterises a fleet-scale campaign sweep.
type SweepConfig struct {
	// Fleet is the number of vehicles swept per family (default 1).
	Fleet int
	// Workers bounds the fleet engine's worker pool (default GOMAXPROCS).
	Workers int
	// RootSeed feeds per-family fleet-root derivation; each family mixes it
	// with its own sub-seed, so families decorrelate and the whole report
	// is a pure function of (spec, RootSeed, Fleet).
	RootSeed uint64
	// FreshVehicles selects the engine's from-scratch reference path
	// (pooled arenas otherwise); both render byte-identical reports.
	FreshVehicles bool
	// TrafficHorizon is the live background simulation's virtual span
	// (default 10ms); the live phase runs once per vehicle visit, before the
	// vehicle's family cells.
	TrafficHorizon time.Duration
	// ErrorRate enables bus error injection in the live phase.
	ErrorRate float64
	// NoBatch selects the engine's cell-by-cell oracle executor instead of
	// the default batched one (prefix checkpointing + cross-vehicle
	// memoisation); both render byte-identical reports.
	NoBatch bool
	// Chaos arms the engine's deterministic fault injection (nil: none).
	Chaos *chaos.Plan
	// VerifySample cross-checks this fraction of batched cells against the
	// cell-by-cell oracle inline (0: no sampling).
	VerifySample float64
	// MaxRetries bounds the supervisor's per-rung retry budget (default 2).
	MaxRetries int
	// PolicyBackend names the policy backend vehicles enforce with ("table",
	// "expr", "closure"; empty = table). All backends are decision-equivalent
	// — the differential suite asserts it — so reports are byte-identical
	// across backends; the axis exists for the ablation benchmarks and for
	// exercising the non-default compilers at fleet scale.
	PolicyBackend string
	// Harness, when non-nil, overrides the backend-derived harness: the
	// sweep enforces with exactly this compiled policy. OTA gate sweeps use
	// it to measure a candidate policy set before any vehicle installs it.
	// Ignored by subprocess shards (SpawnShard), which rebuild their own
	// stack from flags.
	Harness *attack.Harness
	// Shards partitions the fleet into that many contiguous index ranges,
	// each an independent engine run, merged byte-identically to the
	// unsharded sweep (<=1: unsharded).
	Shards int
	// SpawnShard, when non-nil, runs each shard range out of process (and
	// implies sharded execution even when Shards <= 1); carsim wires it to
	// re-invoke itself with -shard-range.
	SpawnShard shard.Spawn
	// ShardParallelism bounds how many spawned shards run concurrently
	// (<=1: sequential). The merge stays in range order, so the report is
	// byte-identical at any level.
	ShardParallelism int
}

// FamilyReport is one family's fleet-merged outcome.
type FamilyReport struct {
	// Name and Kind echo the family.
	Name string
	Kind string
	// Scenarios is the family's per-vehicle scenario count.
	Scenarios int
	// Regimes holds one fleet-merged aggregate per enforcement regime, in
	// the family's sweep order.
	Regimes []attack.RegimeSummary
}

// CampaignReport is the deterministic outcome of one campaign sweep:
// byte-identical for a given (spec, RootSeed, Fleet) across worker counts
// and across pooled/fresh runs, which is why it records neither.
type CampaignReport struct {
	// Campaign, Version and Seed echo the spec.
	Campaign string
	Version  uint64
	Seed     uint64
	// RootSeed and Fleet echo the sweep configuration.
	RootSeed uint64
	Fleet    int
	// ScenariosPerVehicle and Cells size the sweep (Cells counts
	// scenario×regime×vehicle executions).
	ScenariosPerVehicle int
	Cells               int
	// FramesDelivered, BusErrors and MeanUtilisation are the live
	// background-simulation counters (collected with the first family).
	FramesDelivered uint64
	BusErrors       uint64
	MeanUtilisation float64
	// Families holds per-family aggregates, in declaration order.
	Families []FamilyReport
	// Totals folds every family's aggregates per regime, ordered by first
	// appearance across the campaign.
	Totals []attack.RegimeSummary
	// Health is the sweep supervisor's fleet-folded containment ledger;
	// HealthEnabled forces its line to render even when all-zero (set when
	// chaos injection or verify sampling was armed).
	Health        engine.Health
	HealthEnabled bool
}

// Sweep executes the plan on the fleet engine in one vehicle-major pass: the
// families compile into engine scenario groups, every worker claims a
// vehicle, runs the live background phase once and then sweeps *all*
// families' scenario×regime cells on its warm arena before moving on. Sweep
// itself is a thin planner and folder — it derives per-family fleet roots,
// hands the engine the whole campaign, and folds the per-(family, vehicle)
// aggregates back into a CampaignReport in deterministic family order. The
// report is byte-identical to the retired family-major executor's (one
// engine run per family with a barrier between), which survives as the
// equivalence oracle in the engine's group tests.
func Sweep(plan *Plan, cfg SweepConfig) (*CampaignReport, error) {
	if cfg.Fleet <= 0 {
		cfg.Fleet = 1
	}
	ecfg, err := EngineConfig(plan, cfg)
	if err != nil {
		return nil, err
	}
	var fr *engine.FleetReport
	if cfg.Shards > 1 || cfg.SpawnShard != nil {
		fr, err = shard.Run(shard.Config{
			Engine: ecfg, Shards: cfg.Shards,
			Spawn: cfg.SpawnShard, Parallelism: cfg.ShardParallelism,
		})
	} else {
		fr, err = engine.Run(ecfg)
	}
	if err != nil {
		// An unrecoverable sweep still merges what completed: fold the
		// partial fleet report (with its Health ledger, which records the
		// unrecoverable cells) so callers can flush it alongside the error.
		if fr == nil {
			return nil, fmt.Errorf("campaign %q: %w", plan.Spec.Name, err)
		}
		return foldReport(plan, cfg, fr), fmt.Errorf("campaign %q: %w", plan.Spec.Name, err)
	}
	return foldReport(plan, cfg, fr), nil
}

// EngineConfig builds the whole-fleet engine configuration Sweep runs (or
// shards): per-family scenario groups with their derived fleet roots, the
// enforcement harness, and every supervision knob. Exported so a subprocess
// shard — which receives only the campaign file and the sweep flags — can
// rebuild the exact configuration its parent partitions, then run its index
// range with shard.RunRange.
func EngineConfig(plan *Plan, cfg SweepConfig) (engine.Config, error) {
	if cfg.Fleet <= 0 {
		cfg.Fleet = 1
	}
	if cfg.TrafficHorizon <= 0 {
		cfg.TrafficHorizon = 10 * time.Millisecond
	}
	if len(plan.Families) == 0 {
		return engine.Config{}, fmt.Errorf("campaign %q has no families", plan.Spec.Name)
	}
	h := cfg.Harness
	if h == nil {
		var err error
		if h, err = attack.NewHarnessBackend(cfg.PolicyBackend); err != nil {
			return engine.Config{}, err
		}
	}
	groups := make([]engine.ScenarioGroup, len(plan.Families))
	for fi := range plan.Families {
		fam := &plan.Families[fi]
		// The family's fleet root blends the sweep root with the family
		// sub-seed through the stack's shared SplitMix64 step, so vehicle i
		// of family A never correlates with vehicle i of family B.
		groups[fi] = engine.ScenarioGroup{
			Name:      fam.Name,
			Scenarios: fam.Scenarios,
			Regimes:   fam.Regimes,
			RootSeed:  engine.VehicleSeed(cfg.RootSeed^fam.Seed, fi),
		}
	}
	return engine.Config{
		Fleet:          cfg.Fleet,
		Workers:        cfg.Workers,
		RootSeed:       groups[0].RootSeed,
		Groups:         groups,
		TrafficHorizon: cfg.TrafficHorizon,
		ErrorRate:      cfg.ErrorRate,
		FreshVehicles:  cfg.FreshVehicles,
		Harness:        h,
		SkipMAC:        true,
		NoBatch:        cfg.NoBatch,
		Chaos:          cfg.Chaos,
		VerifySample:   cfg.VerifySample,
		MaxRetries:     cfg.MaxRetries,
	}, nil
}

// foldReport folds a (possibly partial) fleet report into the campaign view.
func foldReport(plan *Plan, cfg SweepConfig, fr *engine.FleetReport) *CampaignReport {
	rep := &CampaignReport{
		Campaign:            plan.Spec.Name,
		Version:             plan.Spec.Version,
		Seed:                plan.Spec.Seed,
		RootSeed:            cfg.RootSeed,
		Fleet:               cfg.Fleet,
		ScenariosPerVehicle: plan.ScenariosPerVehicle(),
		Cells:               plan.CellsPerVehicle() * cfg.Fleet,
		FramesDelivered:     fr.FramesDelivered,
		BusErrors:           fr.BusErrors,
		MeanUtilisation:     fr.MeanUtilisation,
		Health:              fr.Health,
		HealthEnabled:       fr.HealthEnabled,
	}
	for fi := range plan.Families {
		fam := &plan.Families[fi]
		rep.Families = append(rep.Families, FamilyReport{
			Name:      fam.Name,
			Kind:      fam.Kind,
			Scenarios: len(fam.Scenarios),
			Regimes:   fr.Groups[fi].Regimes,
		})
		for _, rs := range fr.Groups[fi].Regimes {
			rep.fold(rs)
		}
	}
	return rep
}

// fold merges one regime aggregate into the campaign totals, keyed by
// regime in first-appearance order.
func (r *CampaignReport) fold(rs attack.RegimeSummary) {
	for i := range r.Totals {
		if r.Totals[i].Regime == rs.Regime {
			r.Totals[i].Summary.Merge(rs.Summary)
			return
		}
	}
	r.Totals = append(r.Totals, rs)
}

// String renders the campaign report. Deterministic: no worker counts, no
// wall-clock values — two sweeps of the same (spec, RootSeed, Fleet) render
// byte-identical text whatever the parallelism or pooling mode.
func (r *CampaignReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q v%d seed %#x: fleet %d, root seed %#x, %d scenarios/vehicle, %d cells\n",
		r.Campaign, r.Version, r.Seed, r.Fleet, r.RootSeed, r.ScenariosPerVehicle, r.Cells)
	fmt.Fprintf(&b, "live: delivered=%d errors=%d mean-util=%.4f%%\n",
		r.FramesDelivered, r.BusErrors, r.MeanUtilisation*100)
	if r.HealthEnabled || !r.Health.IsZero() {
		fmt.Fprintf(&b, "health: %s\n", r.Health)
	}
	for i := range r.Families {
		f := &r.Families[i]
		fmt.Fprintf(&b, "family %s (%s): %d scenarios/vehicle\n", f.Name, f.Kind, f.Scenarios)
		for _, rs := range f.Regimes {
			writeRegimeLine(&b, "  ", rs)
		}
	}
	b.WriteString("totals:\n")
	for _, rs := range r.Totals {
		writeRegimeLine(&b, "  ", rs)
	}
	return b.String()
}

// writeRegimeLine renders one regime aggregate, including the stage
// counters the legacy fleet report omits.
func writeRegimeLine(b *strings.Builder, indent string, rs attack.RegimeSummary) {
	s := rs.Summary
	fmt.Fprintf(b, "%s%-9s %s success=%.1f%% blocked=%.1f%%", indent, rs.Regime, s, s.SuccessRate()*100, s.BlockRate()*100)
	if s.StageRuns > 0 || s.StagesHalted > 0 {
		fmt.Fprintf(b, " stages=%d halted=%d", s.StageRuns, s.StagesHalted)
	}
	b.WriteByte('\n')
}
