package campaign

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/engine"
)

// determinismSpec is compact but covers every construct that could disturb
// cross-worker stability: pick sampling, flood rate rules with pooled
// behavioural state, stage predicates, and a per-family regime override.
const determinismSpec = `
campaign "det" version 1 {
  seed 99
  regimes none, hpe

  mutate "mut" {
    attackers Infotainment, Sensors
    placements inside, outside
    repeats 1, 2
    pick 12
    probe off
  }

  flood "fld" {
    regimes hpe, behaviour
    id 0x300
    payload EE01
    team Telematics
    rates 300us
    frames 30
    threshold 9
  }

  staged "stg" {
    attackers Infotainment
    goal firmware-modified
    stage "inject" { inject 0x10 01 x 2 }
    stage "persist" {
      proceed propulsion-off
      inject 0x600 BEEF x 2
    }
  }
}
`

func determinismPlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := (Compiler{}).Compile(MustParse(determinismSpec))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestSweepByteIdenticalAcrossWorkers is the campaign half of the engine's
// determinism contract: the rendered CampaignReport must not change with
// the worker count. Runs under -race in CI, which also exercises the pooled
// arenas' single-owner confinement across the campaign path.
func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	plan := determinismPlan(t)
	base, err := Sweep(plan, SweepConfig{Fleet: 6, Workers: 1, RootSeed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		rep, err := Sweep(plan, SweepConfig{Fleet: 6, Workers: w, RootSeed: 1234})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if rep.String() != base.String() {
			t.Errorf("workers=%d report differs from workers=1:\n--- w=1\n%s--- w=%d\n%s",
				w, base, w, rep)
		}
	}
}

// TestSweepPooledMatchesFresh requires the pooled arenas (default) and the
// from-scratch reference path to render byte-identical campaign reports.
func TestSweepPooledMatchesFresh(t *testing.T) {
	plan := determinismPlan(t)
	pooled, err := Sweep(plan, SweepConfig{Fleet: 5, RootSeed: 77})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Sweep(plan, SweepConfig{Fleet: 5, RootSeed: 77, FreshVehicles: true})
	if err != nil {
		t.Fatal(err)
	}
	if pooled.String() != fresh.String() {
		t.Errorf("pooled and fresh campaign reports differ:\n--- pooled\n%s--- fresh\n%s", pooled, fresh)
	}
}

// TestSweepSeedsDecorrelate checks that the campaign seed and the sweep
// root seed both reach the per-vehicle derivation: changing either changes
// the report.
func TestSweepSeedsDecorrelate(t *testing.T) {
	plan := determinismPlan(t)
	a, err := Sweep(plan, SweepConfig{Fleet: 2, RootSeed: 1, ErrorRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(plan, SweepConfig{Fleet: 2, RootSeed: 2, ErrorRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("changing the root seed did not change the report")
	}
}

// TestSweepMatchesFamilyMajorReference re-derives every family's outcome the
// way the retired family-major executor did — one engine run per family with
// that family's derived fleet root, live phase on the first only — and
// requires the vehicle-major Sweep to match it family for family. Family
// roots are positional (VehicleSeed(root^famSeed, index)), so family-order
// permutation invariance is asserted at the engine layer
// (engine.TestGroupsPermutationInvariant); this test pins the campaign
// layer's seed derivation and fold on top of it.
func TestSweepMatchesFamilyMajorReference(t *testing.T) {
	plan := determinismPlan(t)
	const fleet, root = 5, uint64(4242)
	rep, err := Sweep(plan, SweepConfig{Fleet: fleet, RootSeed: root})
	if err != nil {
		t.Fatal(err)
	}
	h, err := attack.NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	for fi := range plan.Families {
		fam := &plan.Families[fi]
		fr, err := engine.Run(engine.Config{
			Fleet:          fleet,
			RootSeed:       engine.VehicleSeed(root^fam.Seed, fi),
			Scenarios:      fam.Scenarios,
			Regimes:        fam.Regimes,
			TrafficHorizon: 10 * time.Millisecond,
			Harness:        h,
			SkipLive:       fi != 0,
			SkipMAC:        true,
		})
		if err != nil {
			t.Fatalf("family-major reference %q: %v", fam.Name, err)
		}
		if !reflect.DeepEqual(rep.Families[fi].Regimes, fr.Attacks) {
			t.Errorf("family %q diverged from its family-major reference:\nsweep:     %+v\nreference: %+v",
				fam.Name, rep.Families[fi].Regimes, fr.Attacks)
		}
	}
}
