// Package campaign is the procedural adversary-campaign generator: a
// declarative spec (small text/JSON format, campaign.Parse) that expands
// into whole *families* of attack scenarios instead of the seven fixed
// Table I threats the paper evaluates. The paper itself anticipates the
// need (§V-A: "more complex policies such as behavioural or situational
// based policies may be derived" — richer policies demand richer
// adversaries to evaluate them against).
//
// A spec declares generators of three kinds:
//
//   - mutate  — seed-derived mutations of the Table I baselines across
//     attacker node, placement, car mode, payload, repeat count and frame
//     pacing, enumerated as a cross-product with optional deterministic
//     sampling (pick);
//   - flood   — coordinated multi-attacker floods (teams × rates × frame
//     counts) that exercise the behaviour engine's rate rules;
//   - staged  — multi-stage campaigns (recon → injection → persistence)
//     whose stages are gated by predicates over observable vehicle state.
//
// A Compiler lowers the spec into attack.Scenario cells grouped into
// families, each with a SplitMix64-derived sub-seed; Sweep executes the
// families on the fleet engine's pooled arenas and folds the outcome into a
// CampaignReport that is byte-identical across worker counts and across
// pooled/fresh runs.
package campaign

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/car"
)

// Generator kinds.
const (
	// KindMutate mutates Table I baselines along declared axes.
	KindMutate = "mutate"
	// KindFlood builds coordinated multi-attacker floods.
	KindFlood = "flood"
	// KindStaged builds predicate-gated multi-stage campaigns.
	KindStaged = "staged"
)

// Spec is one parsed campaign definition.
type Spec struct {
	// Name labels the campaign.
	Name string `json:"name"`
	// Version is the campaign revision.
	Version uint64 `json:"version"`
	// Seed salts every family's SplitMix64 sub-seed derivation.
	Seed uint64 `json:"seed,omitempty"`
	// Regimes is the campaign-level enforcement sweep (default none, hpe);
	// generators may override it.
	Regimes []string `json:"regimes,omitempty"`
	// Generators are the scenario families, in declaration order.
	Generators []GeneratorSpec `json:"generators"`
}

// GeneratorSpec declares one scenario family. Kind selects which fields
// apply; unused fields must stay zero.
type GeneratorSpec struct {
	// Kind is mutate, flood or staged.
	Kind string `json:"kind"`
	// Name labels the family (unique within the campaign).
	Name string `json:"name"`
	// NoProbe skips the per-cell functional probe (LegitimateOK reports
	// true): bulk families trade false-positive measurement for throughput.
	NoProbe bool `json:"no_probe,omitempty"`
	// Regimes overrides the campaign-level enforcement sweep.
	Regimes []string `json:"regimes,omitempty"`

	// Base (mutate) selects the Table I baseline by threat ID; empty means
	// every baseline.
	Base string `json:"base,omitempty"`
	// Attackers (mutate, staged) is the attacker-node axis; empty keeps the
	// baseline's attacker (mutate) and is invalid for staged.
	Attackers []string `json:"attackers,omitempty"`
	// Placements (mutate, staged) is the placement axis: inside, outside.
	Placements []string `json:"placements,omitempty"`
	// Modes (mutate, staged) is the car-mode axis.
	Modes []string `json:"modes,omitempty"`
	// Repeats (mutate) is the injection repeat-count axis.
	Repeats []int `json:"repeats,omitempty"`
	// Gaps (mutate) is the inter-frame pacing axis.
	Gaps []Duration `json:"gaps,omitempty"`
	// Payloads (mutate) is the forged-payload axis, replacing the
	// baseline's injected data.
	Payloads []HexBytes `json:"payloads,omitempty"`
	// Pick samples this many combos from the cross-product with the
	// family's sub-seed (0 = keep the full product).
	Pick int `json:"pick,omitempty"`

	// ID (flood) is the flooded CAN identifier.
	ID uint32 `json:"id,omitempty"`
	// Payload (flood) is the flooded frame data.
	Payload HexBytes `json:"payload,omitempty"`
	// Teams (flood) is the coordinated-attacker-team axis; catalog nodes
	// join as inside attackers, other names attach as outside rogues.
	Teams [][]string `json:"teams,omitempty"`
	// Rates (flood) is the per-attacker inter-frame gap axis.
	Rates []Duration `json:"rates,omitempty"`
	// Frames (flood) is the frames-per-attacker axis.
	Frames []int `json:"frames,omitempty"`
	// Threshold (flood) parameterises the exfil goal: attack succeeds when
	// that many exfiltration reports land (default 1).
	Threshold int `json:"threshold,omitempty"`

	// Goal names the success predicate (flood: default exfil; staged:
	// required).
	Goal string `json:"goal,omitempty"`
	// Stages (staged) are the campaign phases, in order.
	Stages []StageSpec `json:"stages,omitempty"`
}

// StageSpec is one phase of a staged generator.
type StageSpec struct {
	// Name labels the stage.
	Name string `json:"name"`
	// Proceed names the predicate gating the stage (empty = always).
	Proceed string `json:"proceed,omitempty"`
	// Injections are the stage's forged frames.
	Injections []InjectionSpec `json:"injections"`
}

// InjectionSpec is one forged frame train inside a stage.
type InjectionSpec struct {
	// ID is the CAN identifier.
	ID uint32 `json:"id"`
	// Data is the frame payload.
	Data HexBytes `json:"data,omitempty"`
	// Repeat sends the frame this many times (min 1).
	Repeat int `json:"repeat,omitempty"`
	// Gap paces the repeats (harness default if zero).
	Gap Duration `json:"gap,omitempty"`
	// From names the transmitting attacker (empty = the variant's primary);
	// other names are auto-placed as coattackers.
	From string `json:"from,omitempty"`
}

// Duration is a time.Duration with a compact textual form ("500us", "2ms")
// in both the DSL and JSON.
type Duration time.Duration

// String renders the canonical DSL form.
func (d Duration) String() string {
	v := time.Duration(d)
	switch {
	case v == 0:
		return "0s"
	case v%time.Second == 0:
		return fmt.Sprintf("%ds", v/time.Second)
	case v%time.Millisecond == 0:
		return fmt.Sprintf("%dms", v/time.Millisecond)
	case v%time.Microsecond == 0:
		return fmt.Sprintf("%dus", v/time.Microsecond)
	default:
		return fmt.Sprintf("%dns", v.Nanoseconds())
	}
}

// MarshalJSON renders the compact form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON accepts "500us"-style strings or plain nanosecond numbers.
// The number fallback must consume the whole value: a typo'd unit
// ("150uss") is an error, not 150 ns.
func (d *Duration) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := time.ParseDuration(s)
	if err != nil {
		ns, err2 := strconv.ParseInt(s, 10, 64)
		if err2 != nil {
			return fmt.Errorf("campaign: bad duration %q", s)
		}
		v = time.Duration(ns)
	}
	*d = Duration(v)
	return nil
}

// HexBytes is a frame payload rendered as plain hex in both formats.
type HexBytes []byte

// String renders uppercase hex.
func (h HexBytes) String() string { return strings.ToUpper(hex.EncodeToString(h)) }

// MarshalJSON renders the hex string.
func (h HexBytes) MarshalJSON() ([]byte, error) { return []byte(`"` + h.String() + `"`), nil }

// UnmarshalJSON accepts a hex string (optionally 0x-prefixed).
func (h *HexBytes) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := parseHex(s)
	if err != nil {
		return err
	}
	*h = v
	return nil
}

// parseHex decodes an even-length hex word, tolerating an 0x prefix and
// lower/upper case. The empty string decodes to an empty payload.
func parseHex(s string) (HexBytes, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	v, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("campaign: bad hex payload %q", s)
	}
	return HexBytes(v), nil
}

// Predicates over observable vehicle state, usable as stage gates (proceed)
// and scenario goals (goal). The table is the campaign DSL's vocabulary for
// "what did the attack achieve".
var predicates = map[string]func(car.State) bool{
	"always":             func(car.State) bool { return true },
	"propulsion-off":     func(s car.State) bool { return !s.Propulsion },
	"propulsion-on":      func(s car.State) bool { return s.Propulsion },
	"engine-off":         func(s car.State) bool { return !s.EngineRunning },
	"eps-off":            func(s car.State) bool { return !s.EPSActive },
	"modem-off":          func(s car.State) bool { return !s.ModemEnabled },
	"tracking-off":       func(s car.State) bool { return !s.TrackingActive },
	"doors-unlocked":     func(s car.State) bool { return !s.DoorsLocked },
	"doors-locked":       func(s car.State) bool { return s.DoorsLocked },
	"alarm-armed":        func(s car.State) bool { return s.AlarmArmed },
	"alarm-off":          func(s car.State) bool { return !s.AlarmArmed },
	"failsafe-triggered": func(s car.State) bool { return s.FailSafeTriggered },
	"firmware-modified":  func(s car.State) bool { return s.FirmwareModified },
	"display-mismatch":   func(s car.State) bool { return s.DisplayedSpeed != s.ActualSpeed },
	"exfil":              func(s car.State) bool { return s.ExfilReports > 0 },
}

// HasPredicate reports whether name is in the DSL's predicate vocabulary —
// the check risk synthesis applies to threat goals before lowering them into
// generated flood/staged families.
func HasPredicate(name string) bool {
	_, ok := predicates[name]
	return ok
}

// PredicateNames lists the DSL's predicate vocabulary, sorted.
func PredicateNames() []string {
	out := make([]string, 0, len(predicates))
	for k := range predicates {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Enforcement regime words accepted in regimes lists.
var regimeWords = map[string]bool{"none": true, "software": true, "hpe": true, "behaviour": true}

// Normalize canonicalises a programmatically built spec the same way Parse
// canonicalises parsed ones, so synthesized specs (internal/risk) satisfy the
// render round-trip invariant: Parse(sp.String()) deep-equals sp.
func (sp *Spec) Normalize() { sp.normalize() }

// normalize canonicalises a parsed spec so the DSL and JSON branches yield
// identical in-memory values: empty slices become nil, regime/kind words
// lower-case, and an explicit "*" base becomes the empty (= all) form.
func (sp *Spec) normalize() {
	if len(sp.Regimes) == 0 {
		sp.Regimes = nil
	}
	for i := range sp.Regimes {
		sp.Regimes[i] = strings.ToLower(sp.Regimes[i])
	}
	if len(sp.Generators) == 0 {
		sp.Generators = nil
	}
	for i := range sp.Generators {
		g := &sp.Generators[i]
		g.Kind = strings.ToLower(g.Kind)
		if g.Base == "*" {
			g.Base = ""
		}
		for j := range g.Regimes {
			g.Regimes[j] = strings.ToLower(g.Regimes[j])
		}
		nilIfEmptyStr(&g.Regimes)
		nilIfEmptyStr(&g.Attackers)
		nilIfEmptyStr(&g.Placements)
		nilIfEmptyStr(&g.Modes)
		if len(g.Repeats) == 0 {
			g.Repeats = nil
		}
		if len(g.Gaps) == 0 {
			g.Gaps = nil
		}
		if len(g.Payloads) == 0 {
			g.Payloads = nil
		}
		for j := range g.Payloads {
			if len(g.Payloads[j]) == 0 {
				g.Payloads[j] = nil
			}
		}
		if len(g.Payload) == 0 {
			g.Payload = nil
		}
		if len(g.Teams) == 0 {
			g.Teams = nil
		}
		if len(g.Rates) == 0 {
			g.Rates = nil
		}
		if len(g.Frames) == 0 {
			g.Frames = nil
		}
		if len(g.Stages) == 0 {
			g.Stages = nil
		}
		for j := range g.Stages {
			st := &g.Stages[j]
			if len(st.Injections) == 0 {
				st.Injections = nil
			}
			for k := range st.Injections {
				if len(st.Injections[k].Data) == 0 {
					st.Injections[k].Data = nil
				}
				// Repeat 1 and the implicit minimum are the same train;
				// canonicalise so the rendering round-trips.
				if st.Injections[k].Repeat == 1 {
					st.Injections[k].Repeat = 0
				}
			}
		}
	}
}

func nilIfEmptyStr(s *[]string) {
	if len(*s) == 0 {
		*s = nil
	}
}

// Validation bounds: they keep a single spec from declaring an absurd
// amount of per-cell work; the compile-time product cap bounds family size.
const (
	maxRepeat   = 100
	maxFrames   = 1000
	maxGap      = Duration(time.Second)
	maxTeamSize = 8
)

// isWord reports whether s is a bare DSL word: non-empty and built from the
// identifier rune set. Names that appear unquoted in the canonical
// rendering (attackers, modes, base, team members, from) must satisfy it so
// the rendering re-parses to the same spec.
func isWord(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' && r != '.' && r != '/' {
			return false
		}
	}
	return true
}

func validWords(key string, vals []string) error {
	for _, v := range vals {
		if !isWord(v) {
			return fmt.Errorf("%s entry %q is not a bare identifier", key, v)
		}
	}
	return nil
}

// validString rejects label values the canonical %q rendering cannot carry
// through the DSL lexer: invalid UTF-8 and non-printable runes (other than
// tab and newline, which have dedicated escapes).
func validString(key, s string) error {
	if !utf8.ValidString(s) {
		return fmt.Errorf("%s is not valid UTF-8", key)
	}
	for _, r := range s {
		if r == '\n' || r == '\t' {
			continue
		}
		if !unicode.IsPrint(r) {
			return fmt.Errorf("%s contains non-printable rune %U", key, r)
		}
	}
	return nil
}

// Validate checks the spec is well-formed: known kinds and regimes, unique
// family names, bounded repeat/frame/gap values, known predicates, and the
// per-kind field requirements.
func (sp *Spec) Validate() error {
	seen := map[string]bool{}
	if err := validString("campaign name", sp.Name); err != nil {
		return err
	}
	if len(sp.Generators) == 0 {
		return fmt.Errorf("campaign %q: no generators", sp.Name)
	}
	if err := validRegimes(sp.Regimes); err != nil {
		return fmt.Errorf("campaign %q: %w", sp.Name, err)
	}
	for i := range sp.Generators {
		g := &sp.Generators[i]
		where := fmt.Sprintf("campaign %q generator %q", sp.Name, g.Name)
		if err := validString("family name", g.Name); err != nil {
			return fmt.Errorf("campaign %q: %w", sp.Name, err)
		}
		if seen[g.Name] {
			return fmt.Errorf("%s: duplicate family name", where)
		}
		seen[g.Name] = true
		if err := validRegimes(g.Regimes); err != nil {
			return fmt.Errorf("%s: %w", where, err)
		}
		var err error
		switch g.Kind {
		case KindMutate:
			err = g.validateMutate()
		case KindFlood:
			err = g.validateFlood()
		case KindStaged:
			err = g.validateStaged()
		default:
			err = fmt.Errorf("unknown generator kind %q", g.Kind)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", where, err)
		}
	}
	return nil
}

func validRegimes(words []string) error {
	for _, w := range words {
		if !regimeWords[w] {
			return fmt.Errorf("unknown enforcement regime %q", w)
		}
	}
	return nil
}

func validPlacements(words []string) error {
	for _, w := range words {
		if w != "inside" && w != "outside" {
			return fmt.Errorf("unknown placement %q", w)
		}
	}
	return nil
}

func validPredicate(name string) error {
	if name == "" {
		return nil
	}
	if _, ok := predicates[name]; !ok {
		return fmt.Errorf("unknown predicate %q (known: %s)", name, strings.Join(PredicateNames(), ", "))
	}
	return nil
}

func (g *GeneratorSpec) validateMutate() error {
	if g.Base != "" && !isWord(g.Base) {
		return fmt.Errorf("base %q is not a bare identifier", g.Base)
	}
	if err := validWords("attackers", g.Attackers); err != nil {
		return err
	}
	if err := validWords("modes", g.Modes); err != nil {
		return err
	}
	if err := validPlacements(g.Placements); err != nil {
		return err
	}
	for _, r := range g.Repeats {
		if r < 1 || r > maxRepeat {
			return fmt.Errorf("repeat %d out of range 1..%d", r, maxRepeat)
		}
	}
	for _, gp := range g.Gaps {
		if gp <= 0 || gp > maxGap {
			return fmt.Errorf("gap %s out of range (0, %s]", gp, maxGap)
		}
	}
	for _, p := range g.Payloads {
		if len(p) == 0 {
			return fmt.Errorf("payloads entries must not be empty")
		}
		if len(p) > 8 {
			return fmt.Errorf("payload %s exceeds the 8-byte CAN limit", p)
		}
	}
	if g.Pick < 0 {
		return fmt.Errorf("negative pick %d", g.Pick)
	}
	// A field the kind never reads must stay zero: a silently ignored goal
	// or threshold would make the spec measure something it doesn't say.
	if len(g.Teams) > 0 || len(g.Rates) > 0 || len(g.Frames) > 0 || len(g.Stages) > 0 ||
		g.ID != 0 || len(g.Payload) > 0 || g.Threshold != 0 || g.Goal != "" {
		return fmt.Errorf("mutate generator declares flood/staged fields")
	}
	return nil
}

func (g *GeneratorSpec) validateFlood() error {
	if g.ID > 0x7FF {
		return fmt.Errorf("id 0x%X exceeds the standard 11-bit range", g.ID)
	}
	if len(g.Teams) == 0 {
		return fmt.Errorf("flood generator declares no teams")
	}
	for _, t := range g.Teams {
		if len(t) == 0 || len(t) > maxTeamSize {
			return fmt.Errorf("team size %d out of range 1..%d", len(t), maxTeamSize)
		}
		if err := validWords("team", t); err != nil {
			return err
		}
		// A duplicate member would try to attach the same rogue node twice
		// per cell and abort the whole sweep at run time.
		members := map[string]bool{}
		for _, m := range t {
			if members[m] {
				return fmt.Errorf("team lists member %q twice", m)
			}
			members[m] = true
		}
	}
	for _, f := range g.Frames {
		if f < 1 || f > maxFrames {
			return fmt.Errorf("frames %d out of range 1..%d", f, maxFrames)
		}
	}
	for _, r := range g.Rates {
		if r <= 0 || r > maxGap {
			return fmt.Errorf("rate %s out of range (0, %s]", r, maxGap)
		}
	}
	if len(g.Payload) > 8 {
		return fmt.Errorf("payload %s exceeds the 8-byte CAN limit", g.Payload)
	}
	if g.Threshold < 0 {
		return fmt.Errorf("negative threshold %d", g.Threshold)
	}
	if err := validPredicate(g.Goal); err != nil {
		return err
	}
	if len(g.Attackers) > 0 || len(g.Placements) > 0 || len(g.Stages) > 0 ||
		len(g.Modes) > 0 || len(g.Repeats) > 0 || len(g.Gaps) > 0 ||
		len(g.Payloads) > 0 || g.Pick != 0 || g.Base != "" {
		return fmt.Errorf("flood generator declares mutate/staged fields")
	}
	return nil
}

func (g *GeneratorSpec) validateStaged() error {
	if len(g.Attackers) == 0 {
		return fmt.Errorf("staged generator declares no attackers")
	}
	if err := validWords("attackers", g.Attackers); err != nil {
		return err
	}
	if err := validWords("modes", g.Modes); err != nil {
		return err
	}
	if err := validPlacements(g.Placements); err != nil {
		return err
	}
	if g.Goal == "" {
		return fmt.Errorf("staged generator declares no goal")
	}
	if err := validPredicate(g.Goal); err != nil {
		return err
	}
	if len(g.Stages) == 0 {
		return fmt.Errorf("staged generator declares no stages")
	}
	for _, st := range g.Stages {
		if err := validString("stage name", st.Name); err != nil {
			return err
		}
		if err := validPredicate(st.Proceed); err != nil {
			return fmt.Errorf("stage %q: %w", st.Name, err)
		}
		for _, inj := range st.Injections {
			if inj.ID > 0x7FF {
				return fmt.Errorf("stage %q: id 0x%X exceeds the standard 11-bit range", st.Name, inj.ID)
			}
			if inj.Repeat < 0 || inj.Repeat > maxFrames {
				return fmt.Errorf("stage %q: repeat %d out of range 0..%d", st.Name, inj.Repeat, maxFrames)
			}
			if inj.Gap < 0 || inj.Gap > maxGap {
				return fmt.Errorf("stage %q: gap %s out of range [0, %s]", st.Name, inj.Gap, maxGap)
			}
			if len(inj.Data) > 8 {
				return fmt.Errorf("stage %q: payload %s exceeds the 8-byte CAN limit", st.Name, inj.Data)
			}
			if inj.From != "" && !isWord(inj.From) {
				return fmt.Errorf("stage %q: from %q is not a bare identifier", st.Name, inj.From)
			}
		}
	}
	if len(g.Teams) > 0 || len(g.Rates) > 0 || len(g.Frames) > 0 ||
		len(g.Payloads) > 0 || len(g.Repeats) > 0 || len(g.Gaps) > 0 ||
		g.Pick != 0 || g.Base != "" || g.ID != 0 || len(g.Payload) > 0 {
		return fmt.Errorf("staged generator declares mutate/flood fields")
	}
	return nil
}

// String renders the canonical DSL form: parsing the rendering yields a
// spec identical to the receiver (the FuzzParse round-trip invariant).
func (sp *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q version %d {\n", sp.Name, sp.Version)
	if sp.Seed != 0 {
		fmt.Fprintf(&b, "  seed %d\n", sp.Seed)
	}
	if len(sp.Regimes) > 0 {
		fmt.Fprintf(&b, "  regimes %s\n", strings.Join(sp.Regimes, ", "))
	}
	for i := range sp.Generators {
		sp.Generators[i].render(&b)
	}
	b.WriteString("}\n")
	return b.String()
}

func (g *GeneratorSpec) render(b *strings.Builder) {
	fmt.Fprintf(b, "  %s %q {\n", g.Kind, g.Name)
	if len(g.Regimes) > 0 {
		fmt.Fprintf(b, "    regimes %s\n", strings.Join(g.Regimes, ", "))
	}
	if g.NoProbe {
		fmt.Fprintf(b, "    probe off\n")
	}
	if g.Base != "" {
		fmt.Fprintf(b, "    base %s\n", g.Base)
	}
	renderList(b, "attackers", g.Attackers)
	renderList(b, "placements", g.Placements)
	renderList(b, "modes", g.Modes)
	if len(g.Repeats) > 0 {
		fmt.Fprintf(b, "    repeats %s\n", joinInts(g.Repeats))
	}
	if len(g.Gaps) > 0 {
		fmt.Fprintf(b, "    gaps %s\n", joinStringers(g.Gaps))
	}
	if len(g.Payloads) > 0 {
		fmt.Fprintf(b, "    payloads %s\n", joinStringers(g.Payloads))
	}
	if g.Pick > 0 {
		fmt.Fprintf(b, "    pick %d\n", g.Pick)
	}
	if g.ID != 0 {
		fmt.Fprintf(b, "    id 0x%X\n", g.ID)
	}
	if len(g.Payload) > 0 {
		fmt.Fprintf(b, "    payload %s\n", g.Payload)
	}
	for _, t := range g.Teams {
		fmt.Fprintf(b, "    team %s\n", strings.Join(t, ", "))
	}
	if len(g.Rates) > 0 {
		fmt.Fprintf(b, "    rates %s\n", joinStringers(g.Rates))
	}
	if len(g.Frames) > 0 {
		fmt.Fprintf(b, "    frames %s\n", joinInts(g.Frames))
	}
	if g.Threshold > 0 {
		fmt.Fprintf(b, "    threshold %d\n", g.Threshold)
	}
	if g.Goal != "" {
		fmt.Fprintf(b, "    goal %s\n", g.Goal)
	}
	for i := range g.Stages {
		g.Stages[i].render(b)
	}
	b.WriteString("  }\n")
}

func (st *StageSpec) render(b *strings.Builder) {
	fmt.Fprintf(b, "    stage %q {\n", st.Name)
	if st.Proceed != "" {
		fmt.Fprintf(b, "      proceed %s\n", st.Proceed)
	}
	for _, inj := range st.Injections {
		fmt.Fprintf(b, "      inject 0x%X", inj.ID)
		if len(inj.Data) > 0 {
			fmt.Fprintf(b, " %s", inj.Data)
		}
		if inj.Repeat > 1 {
			fmt.Fprintf(b, " x %d", inj.Repeat)
		}
		if inj.Gap > 0 {
			fmt.Fprintf(b, " every %s", inj.Gap)
		}
		if inj.From != "" {
			fmt.Fprintf(b, " from %s", inj.From)
		}
		b.WriteByte('\n')
	}
	b.WriteString("    }\n")
}

func renderList(b *strings.Builder, key string, vals []string) {
	if len(vals) > 0 {
		fmt.Fprintf(b, "    %s %s\n", key, strings.Join(vals, ", "))
	}
}

func joinInts(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ", ")
}

func joinStringers[T fmt.Stringer](vals []T) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
