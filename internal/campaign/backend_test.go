package campaign

import (
	"testing"

	"repro/internal/policy/ir"
)

// TestSweepBackendEquivalence is the campaign-level face of the backend
// differential contract: because every policy backend is decision-equivalent,
// sweeping the same plan under each must render a byte-identical campaign
// report — same block rates, same goal hits, same per-family tables.
func TestSweepBackendEquivalence(t *testing.T) {
	plan := determinismPlan(t)
	base, err := Sweep(plan, SweepConfig{Fleet: 4, Workers: 2, RootSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range ir.Names() {
		rep, err := Sweep(plan, SweepConfig{Fleet: 4, Workers: 2, RootSeed: 7, PolicyBackend: backend})
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if rep.String() != base.String() {
			t.Errorf("backend %s report differs from default:\n--- default\n%s--- %s\n%s",
				backend, base, backend, rep)
		}
	}
}
