package campaign

import (
	"fmt"
	"runtime"
	"testing"
)

// TestSweepBatchedMatchesOracle is the acceptance gate of the batched
// executor: the default path (prefix-checkpointed batching + cross-vehicle
// memoisation) must render a CampaignReport byte-identical to the
// cell-by-cell oracle (NoBatch) at several worker counts, pooled and fresh,
// with and without live-phase error injection (the one knob that disables
// the live memo).
func TestSweepBatchedMatchesOracle(t *testing.T) {
	plan := determinismPlan(t)
	for _, errRate := range []float64{0, 0.03} {
		cfg := SweepConfig{Fleet: 6, Workers: 1, RootSeed: 555, ErrorRate: errRate, NoBatch: true}
		oracle, err := Sweep(plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.String()
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			for _, fresh := range []bool{false, true} {
				name := fmt.Sprintf("err=%v/workers=%d/fresh=%v", errRate, workers, fresh)
				rep, err := Sweep(plan, SweepConfig{
					Fleet: 6, Workers: workers, RootSeed: 555,
					ErrorRate: errRate, FreshVehicles: fresh,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got := rep.String(); got != want {
					t.Errorf("%s: batched report diverged from oracle:\n--- oracle\n%s--- batched\n%s", name, want, got)
				}
			}
		}
	}
}

// TestCompilePrefixKeys pins the prefix-sharing metadata the compiler emits:
// mutate variants key per base threat, flood and staged families share one
// key family-wide, and no scenario is left unkeyed (an unkeyed cell would
// silently fall back to the unbatched singleton path).
func TestCompilePrefixKeys(t *testing.T) {
	plan := determinismPlan(t)
	for fi := range plan.Families {
		fam := &plan.Families[fi]
		keys := map[uint64]bool{}
		for si := range fam.Scenarios {
			key := fam.Scenarios[si].PrefixKey
			if key == 0 {
				t.Errorf("family %s scenario %d has no prefix key", fam.Name, si)
			}
			keys[key] = true
		}
		switch fam.Kind {
		case KindFlood, KindStaged:
			if len(keys) != 1 {
				t.Errorf("family %s (%s): want one family-wide prefix key, got %d", fam.Name, fam.Kind, len(keys))
			}
		case KindMutate:
			// The det spec's mutate family draws from the full Table I
			// catalog; its sampled variants must not all collapse into one
			// bucket, and variants of one base must share their key.
			if len(keys) < 2 {
				t.Errorf("family %s (mutate): want per-base prefix keys, got %d distinct", fam.Name, len(keys))
			}
		}
	}
}
