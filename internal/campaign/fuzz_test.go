package campaign

import (
	"reflect"
	"testing"
)

// FuzzParse feeds arbitrary text to the campaign parser (both the DSL and
// the JSON branch): it must never panic, and any document it accepts must
// render (String) back to the canonical DSL and re-parse to an identical
// spec — the same round-trip contract the policy DSL fuzzer enforces.
// Accepted specs must also compile without panicking.
func FuzzParse(f *testing.F) {
	f.Add(testSpec)
	f.Add(determinismSpec)
	f.Add(`campaign "min" version 0 { mutate "m" {} }`)
	f.Add(`campaign "f" version 1 { flood "x" { id 0x7FF team A, B rates 1ms frames 3 goal exfil } }`)
	f.Add(`campaign "s" version 1 {
  staged "st" {
    attackers Sensors
    placements outside
    modes RemoteDiag
    goal always
    stage "one" { proceed doors-locked inject 0x600 DEAD x 4 every 250us from Helper }
  }
}`)
	f.Add(`{"name":"j","version":3,"seed":9,"regimes":["hpe"],"generators":[{"kind":"mutate","name":"g","pick":2}]}`)
	f.Add("campaign \"c\" version 18446744073709551615 {\n# comment\nmutate \"m\" { base * }\n}")

	f.Fuzz(func(t *testing.T, src string) {
		sp, err := Parse(src)
		if err != nil {
			return
		}
		rendered := sp.String()
		sp2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted campaign does not re-parse: %v\n--- source ---\n%s\n--- rendered ---\n%s",
				err, src, rendered)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("render round trip changed the spec\n--- first ---\n%+v\n--- second ---\n%+v\n--- rendered ---\n%s",
				sp, sp2, rendered)
		}
		// Compilation must never panic on a validated spec; errors (unknown
		// base threats, oversized products) are fine.
		plan, err := (Compiler{}).Compile(sp)
		if err != nil {
			return
		}
		// The expansion must be non-empty and internally consistent.
		if plan.ScenariosPerVehicle() == 0 {
			t.Fatalf("compiled plan has no scenarios\n%s", rendered)
		}
		for _, fam := range plan.Families {
			if len(fam.Regimes) == 0 {
				t.Fatalf("family %q has no regimes", fam.Name)
			}
		}
	})
}
