package stride

import "testing"

// FuzzParse feeds arbitrary text to the Table I letter-notation parser: it
// must never panic, and any set it accepts must satisfy two identities —
// Parse(set.String()) returns the same set (canonical rendering round
// trip), and Classify(EffectsOf(set)) reconstructs it (the classification
// inverse the pipeline's rating stage relies on). A seed corpus under
// testdata/fuzz keeps the CI smoke warm.
func FuzzParse(f *testing.F) {
	f.Add("STD")
	f.Add("STIDE")
	f.Add("stide")
	f.Add("SD")
	f.Add("TDE")
	f.Add("STR")
	f.Add("TE")
	f.Add("-")
	f.Add("")
	f.Add("SSTTDD")
	f.Add("STDX")
	f.Add("S T D")

	f.Fuzz(func(t *testing.T, src string) {
		set, err := Parse(src)
		if err != nil {
			return
		}
		rendered := set.String()
		set2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted set does not re-parse: %v\n--- source ---\n%q\n--- rendered ---\n%q",
				err, src, rendered)
		}
		if set2 != set {
			t.Fatalf("render round trip changed the set: %v -> %v (source %q)", set, set2, src)
		}
		if got := Classify(EffectsOf(set)); got != set {
			t.Fatalf("Classify(EffectsOf(%v)) = %v", set, got)
		}
		if set.Count() != len(set.Categories()) {
			t.Fatalf("count %d disagrees with categories %v", set.Count(), set.Categories())
		}
	})
}
