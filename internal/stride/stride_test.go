package stride

import (
	"testing"
	"testing/quick"
)

func TestSetStringCanonicalOrder(t *testing.T) {
	tests := []struct {
		set  Set
		want string
	}{
		{NewSet(), "-"},
		{NewSet(Spoofing), "S"},
		{NewSet(ElevationOfPrivilege, Spoofing), "SE"},
		{NewSet(DenialOfService, Tampering, Spoofing), "STD"},
		{NewSet(Spoofing, Tampering, InformationDisclosure, DenialOfService, ElevationOfPrivilege), "STIDE"},
		{NewSet(Tampering, InformationDisclosure, ElevationOfPrivilege), "TIE"},
		{NewSet(Tampering, DenialOfService, ElevationOfPrivilege), "TDE"},
		{NewSet(Spoofing, Tampering, Repudiation), "STR"},
		{NewSet(Tampering, ElevationOfPrivilege), "TE"},
		{NewSet(Spoofing, Tampering, Repudiation, InformationDisclosure, DenialOfService, ElevationOfPrivilege), "STRIDE"},
	}
	for _, tt := range tests {
		if got := tt.set.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"S", "STD", "STIDE", "TIE", "TDE", "STR", "TE", "SD", "STE", "STRIDE", "-"} {
		set, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := set.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseCaseInsensitiveAndDuplicates(t *testing.T) {
	a := MustParse("std")
	b := MustParse("SSTTDD")
	c := MustParse("STD")
	if a != c || b != c {
		t.Errorf("case/duplicate folding failed: %v %v %v", a, b, c)
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	if _, err := Parse("SXD"); err == nil {
		t.Error("Parse accepted unknown letter")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("Z")
}

func TestSetOperations(t *testing.T) {
	s := NewSet(Spoofing, Tampering)
	if !s.Has(Spoofing) || !s.Has(Tampering) || s.Has(Repudiation) {
		t.Error("Has is wrong")
	}
	s = s.Add(DenialOfService)
	if !s.Has(DenialOfService) {
		t.Error("Add failed")
	}
	s = s.Remove(Spoofing)
	if s.Has(Spoofing) {
		t.Error("Remove failed")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	u := NewSet(Spoofing).Union(NewSet(Tampering))
	if u.String() != "ST" {
		t.Errorf("Union = %v", u)
	}
	i := NewSet(Spoofing, Tampering).Intersect(NewSet(Tampering, Repudiation))
	if i.String() != "T" {
		t.Errorf("Intersect = %v", i)
	}
}

func TestCategoriesAndNames(t *testing.T) {
	s := MustParse("SIE")
	cats := s.Categories()
	if len(cats) != 3 || cats[0] != Spoofing || cats[1] != InformationDisclosure || cats[2] != ElevationOfPrivilege {
		t.Errorf("Categories = %v", cats)
	}
	names := s.Names()
	want := []string{"Spoofing", "Information Disclosure", "Elevation of Privilege"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names = %v", names)
		}
	}
}

func TestCategoryLettersUnique(t *testing.T) {
	seen := map[byte]bool{}
	for _, c := range All {
		l := c.Letter()
		if seen[l] {
			t.Fatalf("duplicate letter %c", l)
		}
		seen[l] = true
	}
}

func TestClassifyEffectsRoundTrip(t *testing.T) {
	prop := func(raw uint8) bool {
		s := Set(raw & 0x3F)
		return Classify(EffectsOf(s)) == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClassifyIndividualEffects(t *testing.T) {
	tests := []struct {
		effects Effects
		want    string
	}{
		{Effects{ForgesIdentity: true}, "S"},
		{Effects{ModifiesData: true}, "T"},
		{Effects{DeniesAction: true}, "R"},
		{Effects{DisclosesInfo: true}, "I"},
		{Effects{DisruptsService: true}, "D"},
		{Effects{EscalatesPrivilege: true}, "E"},
		{Effects{}, "-"},
	}
	for _, tt := range tests {
		if got := Classify(tt.effects).String(); got != tt.want {
			t.Errorf("Classify(%+v) = %q, want %q", tt.effects, got, tt.want)
		}
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	prop := func(raw uint8) bool {
		s := Set(raw & 0x3F)
		parsed, err := Parse(s.String())
		return err == nil && parsed == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
