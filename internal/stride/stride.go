// Package stride implements the STRIDE threat-categorisation model used by
// the paper's threat identification step (Fig. 1, "Threat Identification"):
// Spoofing, Tampering, Repudiation, Information disclosure, Denial of
// service, Elevation of privilege.
//
// A threat maps to a Set of categories; Table I of the paper renders sets as
// compact letter strings such as "STD" or "STIDE", which Parse and String
// round-trip.
package stride

import (
	"fmt"
	"strings"
)

// Category is one STRIDE threat category, represented as a bit flag so a
// threat can carry several categories at once.
type Category uint8

// STRIDE categories. The declaration order matches the acronym, which is
// also the canonical rendering order used by the paper's Table I.
const (
	// Spoofing: illegitimately assuming another identity (e.g. forged CAN IDs).
	Spoofing Category = 1 << iota
	// Tampering: unauthorised modification of data or code.
	Tampering
	// Repudiation: denying having performed an action.
	Repudiation
	// InformationDisclosure: exposing information to unauthorised parties.
	InformationDisclosure
	// DenialOfService: degrading or preventing legitimate use.
	DenialOfService
	// ElevationOfPrivilege: gaining capabilities beyond those granted.
	ElevationOfPrivilege
)

// All lists the categories in canonical order.
var All = []Category{
	Spoofing, Tampering, Repudiation,
	InformationDisclosure, DenialOfService, ElevationOfPrivilege,
}

// letters maps categories to their Table I letters.
var letters = map[Category]byte{
	Spoofing:              'S',
	Tampering:             'T',
	Repudiation:           'R',
	InformationDisclosure: 'I',
	DenialOfService:       'D',
	ElevationOfPrivilege:  'E',
}

// longNames maps categories to their full names.
var longNames = map[Category]string{
	Spoofing:              "Spoofing",
	Tampering:             "Tampering",
	Repudiation:           "Repudiation",
	InformationDisclosure: "Information Disclosure",
	DenialOfService:       "Denial of Service",
	ElevationOfPrivilege:  "Elevation of Privilege",
}

// Letter returns the single-letter abbreviation ('S', 'T', ...).
func (c Category) Letter() byte { return letters[c] }

// Name returns the category's full name, or "invalid" for unknown values.
func (c Category) Name() string {
	if n, ok := longNames[c]; ok {
		return n
	}
	return "invalid"
}

// String implements fmt.Stringer for a single category.
func (c Category) String() string { return c.Name() }

// Set is a combination of STRIDE categories.
type Set uint8

// NewSet combines categories into a Set.
func NewSet(cats ...Category) Set {
	var s Set
	for _, c := range cats {
		s |= Set(c)
	}
	return s
}

// Has reports whether the set contains category c.
func (s Set) Has(c Category) bool { return s&Set(c) != 0 }

// Add returns the set with category c included.
func (s Set) Add(c Category) Set { return s | Set(c) }

// Remove returns the set with category c excluded.
func (s Set) Remove(c Category) Set { return s &^ Set(c) }

// Union returns the union of two sets.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of two sets.
func (s Set) Intersect(t Set) Set { return s & t }

// Empty reports whether no categories are present.
func (s Set) Empty() bool { return s == 0 }

// Count returns the number of categories in the set.
func (s Set) Count() int {
	n := 0
	for _, c := range All {
		if s.Has(c) {
			n++
		}
	}
	return n
}

// Categories lists the contained categories in canonical order.
func (s Set) Categories() []Category {
	out := make([]Category, 0, 6)
	for _, c := range All {
		if s.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the set in Table I letter notation ("STD", "STIDE", ...).
// The empty set renders as "-".
func (s Set) String() string {
	if s.Empty() {
		return "-"
	}
	var b strings.Builder
	for _, c := range All {
		if s.Has(c) {
			b.WriteByte(c.Letter())
		}
	}
	return b.String()
}

// Names returns the full category names in canonical order.
func (s Set) Names() []string {
	cats := s.Categories()
	out := make([]string, len(cats))
	for i, c := range cats {
		out[i] = c.Name()
	}
	return out
}

// Parse reads Table I letter notation into a Set. Parsing is
// case-insensitive; duplicate letters are tolerated; "-" or "" is the empty
// set. Unknown letters yield an error.
func Parse(s string) (Set, error) {
	var set Set
	if s == "" || s == "-" {
		return set, nil
	}
	for i := 0; i < len(s); i++ {
		switch ch := s[i] | 0x20; ch { // lower-case fold
		case 's':
			set = set.Add(Spoofing)
		case 't':
			set = set.Add(Tampering)
		case 'r':
			set = set.Add(Repudiation)
		case 'i':
			set = set.Add(InformationDisclosure)
		case 'd':
			set = set.Add(DenialOfService)
		case 'e':
			set = set.Add(ElevationOfPrivilege)
		default:
			return 0, fmt.Errorf("stride: unknown category letter %q", s[i])
		}
	}
	return set, nil
}

// MustParse is Parse for static tables; it panics on bad input.
func MustParse(s string) Set {
	set, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return set
}
