package stride

// Effects captures what a threat scenario does to the system, in
// implementation-neutral terms. Classify derives the STRIDE set from these
// facts, so the category string in a reproduced Table I row is computed from
// the scenario description rather than transcribed.
type Effects struct {
	// ForgesIdentity: the attacker impersonates a legitimate entity, e.g.
	// sends CAN frames under another node's identifier.
	ForgesIdentity bool
	// ModifiesData: the attacker alters data, firmware or configuration.
	ModifiesData bool
	// DeniesAction: the attacker can perform actions without attribution
	// (no reliable audit trail ties the action to its origin).
	DeniesAction bool
	// DisclosesInfo: the attacker learns information they should not.
	DisclosesInfo bool
	// DisruptsService: the attack degrades or disables a function.
	DisruptsService bool
	// EscalatesPrivilege: the attacker gains a higher control level.
	EscalatesPrivilege bool
}

// Classify maps scenario effects onto STRIDE categories.
func Classify(e Effects) Set {
	var s Set
	if e.ForgesIdentity {
		s = s.Add(Spoofing)
	}
	if e.ModifiesData {
		s = s.Add(Tampering)
	}
	if e.DeniesAction {
		s = s.Add(Repudiation)
	}
	if e.DisclosesInfo {
		s = s.Add(InformationDisclosure)
	}
	if e.DisruptsService {
		s = s.Add(DenialOfService)
	}
	if e.EscalatesPrivilege {
		s = s.Add(ElevationOfPrivilege)
	}
	return s
}

// EffectsOf inverts Classify, reconstructing the effect flags implied by a
// category set. Classify(EffectsOf(s)) == s for every set.
func EffectsOf(s Set) Effects {
	return Effects{
		ForgesIdentity:     s.Has(Spoofing),
		ModifiesData:       s.Has(Tampering),
		DeniesAction:       s.Has(Repudiation),
		DisclosesInfo:      s.Has(InformationDisclosure),
		DisruptsService:    s.Has(DenialOfService),
		EscalatesPrivilege: s.Has(ElevationOfPrivilege),
	}
}
