// Package sim provides a deterministic discrete-event simulation kernel used
// by the CAN bus substrate and the attack harness.
//
// A Scheduler owns a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which keeps simulations fully deterministic: two runs with the
// same seed and the same schedule produce identical traces.
//
// Schedulers are built for reuse: heap items recycle through a free list,
// and Reset restores a dirty scheduler to its zero state without releasing
// memory, so long-lived simulation workers schedule without allocating.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func(now time.Duration)

// item is a scheduled event inside the heap. Items are recycled through the
// scheduler's free list once they fire or are discarded, so the hot path of a
// long simulation schedules without allocating; gen disambiguates a recycled
// item from the event a stale Handle still points at.
type item struct {
	at   time.Duration
	seq  uint64 // tie-breaker: schedule order
	fn   Event
	dead bool   // cancelled
	idx  int    // heap index, maintained by eventHeap
	gen  uint64 // incremented on recycle; Handles from prior lives no-op
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	it  *item
	gen uint64
}

// Cancel marks the event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op, even if the scheduler has since
// recycled the underlying slot for a different event.
func (h Handle) Cancel() {
	if h.it != nil && h.it.gen == h.gen {
		h.it.dead = true
	}
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Scheduler is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	steps  uint64
	free   []*item // recycled heap items
}

// ErrPast is returned when an event is scheduled before the current virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.events) }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// alloc takes an item from the free list, or heap-allocates when empty.
func (s *Scheduler) alloc() *item {
	if n := len(s.free); n > 0 {
		it := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return it
	}
	return &item{}
}

// recycle returns a popped item to the free list, invalidating outstanding
// Handles to its previous life.
func (s *Scheduler) recycle(it *item) {
	it.fn = nil
	it.dead = false
	it.gen++
	s.free = append(s.free, it)
}

// At schedules fn to run at absolute virtual time at.
// It panics with ErrPast if at precedes the current time.
func (s *Scheduler) At(at time.Duration, fn Event) Handle {
	if at < s.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPast, at, s.now))
	}
	it := s.alloc()
	it.at, it.seq, it.fn = at, s.seq, fn
	s.seq++
	heap.Push(&s.events, it)
	return Handle{it: it, gen: it.gen}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn Event) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when no runnable events remain.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		it := heap.Pop(&s.events).(*item)
		if it.dead {
			s.recycle(it)
			continue
		}
		s.now = it.at
		s.steps++
		fn := it.fn
		s.recycle(it)
		fn(s.now)
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for len(s.events) > 0 {
		// Peek without popping.
		next := s.events[0]
		if next.dead {
			s.recycle(heap.Pop(&s.events).(*item))
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunSteps executes at most n events and reports how many actually ran.
func (s *Scheduler) RunSteps(n int) int {
	ran := 0
	for ran < n && s.Step() {
		ran++
	}
	return ran
}

// Reset restores the scheduler to its pristine zero state — virtual time 0,
// empty queue, zeroed step and sequence counters — without releasing memory:
// every queued item is recycled into the free list, so a reset scheduler
// schedules without allocating. Handles issued before the reset are
// invalidated (their Cancel becomes a no-op), exactly as if their events had
// already fired.
func (s *Scheduler) Reset() {
	for _, it := range s.events {
		s.recycle(it)
	}
	s.events = s.events[:0]
	s.now, s.seq, s.steps = 0, 0, 0
}
