// Package sim provides a deterministic discrete-event simulation kernel used
// by the CAN bus substrate and the attack harness.
//
// A Scheduler owns a virtual clock and a priority queue of timed events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which keeps simulations fully deterministic: two runs with the
// same seed and the same schedule produce identical traces.
//
// Schedulers are built for reuse: event slots recycle through a free list,
// and Reset restores a dirty scheduler to its zero state without releasing
// memory, so long-lived simulation workers schedule without allocating.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func(now time.Duration)

// slot holds a scheduled event's callback and liveness state. Slots live in
// the scheduler's arena and are recycled through its free list once they fire
// or are discarded, so the hot path of a long simulation schedules without
// allocating; gen disambiguates a recycled slot from the event a stale Handle
// still points at.
type slot struct {
	fn   Event
	dead bool   // cancelled
	gen  uint64 // incremented on recycle; Handles from prior lives no-op
}

// entry is one heap element: the ordering key plus the index of its slot.
// Entries carry no pointers, so sifting them up and down the heap moves plain
// words — no interface boxing, no method-table dispatch, and no GC write
// barriers on the simulation's single hottest path.
type entry struct {
	at   time.Duration
	seq  uint64 // tie-breaker: schedule order
	slot int32
}

// before reports heap ordering: earliest timestamp first, schedule order
// breaking ties.
func (e entry) before(o entry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	s    *Scheduler
	slot int32
	gen  uint64
}

// Cancel marks the event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op, even if the scheduler has since
// recycled the underlying slot for a different event.
func (h Handle) Cancel() {
	if h.s != nil && h.s.slots[h.slot].gen == h.gen {
		h.s.slots[h.slot].dead = true
	}
}

// Scheduler is a discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Scheduler struct {
	now   time.Duration
	seq   uint64
	heap  []entry
	slots []slot  // arena indexed by entry.slot / Handle.slot
	free  []int32 // recycled slot indices
	steps uint64
}

// ErrPast is returned when an event is scheduled before the current virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Scheduler) Pending() int { return len(s.heap) }

// NextAt returns the timestamp of the earliest queued event (cancelled
// events included) and whether the queue is non-empty. Callers use it to
// prove no further event can fire at the current instant — the bus's
// arbitration kick elides its zero-delay hop on that proof.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// alloc takes a slot index from the free list, or grows the arena when empty.
func (s *Scheduler) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.slots = append(s.slots, slot{})
	return int32(len(s.slots) - 1)
}

// recycle returns a popped slot to the free list, invalidating outstanding
// Handles to its previous life.
func (s *Scheduler) recycle(idx int32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.dead = false
	sl.gen++
	s.free = append(s.free, idx)
}

// The queue is a 4-ary heap: half the depth of a binary heap, so pops touch
// fewer cache lines, and the four children of a node sit in adjacent entries
// of one or two cache lines. Event queues here are shallow (tens of events),
// making depth the dominant cost.
const heapArity = 4

// siftUp restores the heap property after appending at index i, walking the
// hole toward the root. Direct sifts on the concrete entry slice replace the
// container/heap detour this package originally took: no any-boxing on
// Push/Pop, no interface dispatch per comparison.
func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// siftDown restores the heap property from index i toward the leaves.
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		child := first
		for c := first + 1; c < last; c++ {
			if h[c].before(h[child]) {
				child = c
			}
		}
		if !h[child].before(e) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = e
}

// pop removes and returns the earliest entry. The caller guarantees the heap
// is non-empty.
func (s *Scheduler) pop() entry {
	h := s.heap
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return e
}

// At schedules fn to run at absolute virtual time at.
// It panics with ErrPast if at precedes the current time.
func (s *Scheduler) At(at time.Duration, fn Event) Handle {
	if at < s.now {
		panic(fmt.Errorf("%w: at=%v now=%v", ErrPast, at, s.now))
	}
	idx := s.alloc()
	s.slots[idx].fn = fn
	s.heap = append(s.heap, entry{at: at, seq: s.seq, slot: idx})
	s.seq++
	s.siftUp(len(s.heap) - 1)
	return Handle{s: s, slot: idx, gen: s.slots[idx].gen}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn Event) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when no runnable events remain.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := s.pop()
		sl := &s.slots[e.slot]
		if sl.dead {
			s.recycle(e.slot)
			continue
		}
		s.now = e.at
		s.steps++
		fn := sl.fn
		s.recycle(e.slot)
		fn(s.now)
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for len(s.heap) > 0 {
		// Peek without popping.
		next := s.heap[0]
		if s.slots[next.slot].dead {
			s.recycle(s.pop().slot)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunSteps executes at most n events and reports how many actually ran.
func (s *Scheduler) RunSteps(n int) int {
	ran := 0
	for ran < n && s.Step() {
		ran++
	}
	return ran
}

// SchedulerSnapshot captures a quiescent scheduler's counters: the virtual
// clock, the schedule-order sequence and the executed-step count. A
// quiescent scheduler (empty queue) has no other state, so the snapshot is
// three words — no heap capture, no slot arena copy.
type SchedulerSnapshot struct {
	// Now is the captured virtual time.
	Now time.Duration
	// Seq is the captured schedule-order counter.
	Seq uint64
	// Steps is the captured executed-event count.
	Steps uint64
}

// Quiescent reports whether the scheduler is at a checkpointable instant:
// every queued event drained (Run returned). It is the cheap probe callers
// use to turn the Snapshot panic below into a recoverable error.
func (s *Scheduler) Quiescent() bool { return len(s.heap) == 0 }

// Snapshot captures the scheduler's counters for a later RestoreFrom. The
// scheduler must be quiescent — every queued event drained (Run returned) —
// because a checkpoint taken mid-schedule would need the heap and slot arena
// too; it panics otherwise rather than silently dropping queued events.
func (s *Scheduler) Snapshot() SchedulerSnapshot {
	if len(s.heap) != 0 {
		panic("sim: Snapshot of a non-quiescent scheduler (events still queued)")
	}
	return SchedulerSnapshot{Now: s.now, Seq: s.seq, Steps: s.steps}
}

// RestoreFrom rewinds the scheduler to a state captured by Snapshot: any
// queued events are discarded (their slots recycled, exactly as Reset does)
// and the clock and counters are restored. A restored scheduler behaves
// byte-identically to one that replayed the original prefix — the
// checkpoint/restore contract the attack arena's prefix sharing relies on.
func (s *Scheduler) RestoreFrom(snap SchedulerSnapshot) {
	for _, e := range s.heap {
		s.recycle(e.slot)
	}
	s.heap = s.heap[:0]
	s.now, s.seq, s.steps = snap.Now, snap.Seq, snap.Steps
}

// Reset restores the scheduler to its pristine zero state — virtual time 0,
// empty queue, zeroed step and sequence counters — without releasing memory:
// every queued slot is recycled into the free list, so a reset scheduler
// schedules without allocating. Handles issued before the reset are
// invalidated (their Cancel becomes a no-op), exactly as if their events had
// already fired.
func (s *Scheduler) Reset() {
	for _, e := range s.heap {
		s.recycle(e.slot)
	}
	s.heap = s.heap[:0]
	s.now, s.seq, s.steps = 0, 0, 0
}
