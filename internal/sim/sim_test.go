package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30*time.Millisecond, func(time.Duration) { got = append(got, 3) })
	s.At(10*time.Millisecond, func(time.Duration) { got = append(got, 1) })
	s.At(20*time.Millisecond, func(time.Duration) { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func(time.Duration) { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of schedule order: %v", got)
		}
	}
}

func TestSchedulerAfterRelative(t *testing.T) {
	var s Scheduler
	var at time.Duration
	s.At(5*time.Millisecond, func(now time.Duration) {
		s.After(7*time.Millisecond, func(now time.Duration) { at = now })
	})
	s.Run()
	if at != 12*time.Millisecond {
		t.Errorf("After fired at %v, want 12ms", at)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	var s Scheduler
	s.At(10*time.Millisecond, func(time.Duration) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(time.Millisecond, func(time.Duration) {})
}

func TestSchedulerNegativeAfterClamps(t *testing.T) {
	var s Scheduler
	ran := false
	s.After(-time.Second, func(time.Duration) { ran = true })
	s.Run()
	if !ran {
		t.Error("negative After delay should clamp to now and still run")
	}
}

func TestSchedulerCancel(t *testing.T) {
	var s Scheduler
	ran := false
	h := s.At(time.Millisecond, func(time.Duration) { ran = true })
	h.Cancel()
	h.Cancel() // double-cancel is a no-op
	s.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if s.Steps() != 0 {
		t.Errorf("Steps() = %d after only cancelled events, want 0", s.Steps())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(10*time.Millisecond, func(time.Duration) { got = append(got, 1) })
	s.At(20*time.Millisecond, func(time.Duration) { got = append(got, 2) })
	s.At(30*time.Millisecond, func(time.Duration) { got = append(got, 3) })
	s.RunUntil(20 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("RunUntil ran %d events, want 2", len(got))
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("Now() = %v, want 20ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	// Deadline beyond all events advances the clock to the deadline.
	s.RunUntil(100 * time.Millisecond)
	if s.Now() != 100*time.Millisecond {
		t.Errorf("Now() = %v, want 100ms", s.Now())
	}
	if len(got) != 3 {
		t.Errorf("all events should have run, got %v", got)
	}
}

func TestSchedulerRunUntilSkipsCancelledHead(t *testing.T) {
	var s Scheduler
	h := s.At(5*time.Millisecond, func(time.Duration) { t.Fatal("cancelled event ran") })
	ran := false
	s.At(6*time.Millisecond, func(time.Duration) { ran = true })
	h.Cancel()
	s.RunUntil(10 * time.Millisecond)
	if !ran {
		t.Error("live event behind a cancelled head did not run")
	}
}

func TestSchedulerRunSteps(t *testing.T) {
	var s Scheduler
	n := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func(time.Duration) { n++ })
	}
	if ran := s.RunSteps(3); ran != 3 {
		t.Fatalf("RunSteps(3) = %d", ran)
	}
	if n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	if ran := s.RunSteps(10); ran != 2 {
		t.Fatalf("RunSteps(10) = %d, want 2 remaining", ran)
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	var s Scheduler
	depth := 0
	var recurse func(now time.Duration)
	recurse = func(now time.Duration) {
		depth++
		if depth < 5 {
			s.After(time.Millisecond, recurse)
		}
	}
	s.After(time.Millisecond, recurse)
	s.Run()
	if depth != 5 {
		t.Errorf("recursive scheduling depth = %d, want 5", depth)
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", s.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.28 || got > 0.32 {
		t.Errorf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSchedulerStaleHandleCannotCancelRecycledItem(t *testing.T) {
	var s Scheduler
	fired := 0
	// Fire and recycle the first event's heap item.
	h1 := s.At(time.Millisecond, func(time.Duration) { fired++ })
	s.Run()
	// The next event reuses the recycled item; the stale handle must no-op.
	s.At(2*time.Millisecond, func(time.Duration) { fired++ })
	h1.Cancel()
	s.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (stale Cancel must not kill the recycled event)", fired)
	}
}

func TestSchedulerFreeListReusesItems(t *testing.T) {
	var s Scheduler
	// Warm the pool, then check steady-state scheduling does not allocate.
	for i := 0; i < 100; i++ {
		s.After(time.Microsecond, func(time.Duration) {})
		s.Run()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, func(time.Duration) {})
		s.Run()
	})
	if allocs > 0.1 {
		t.Errorf("steady-state schedule+run allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSchedulerCancelledEventsAreRecycled(t *testing.T) {
	var s Scheduler
	h := s.At(time.Millisecond, func(time.Duration) {})
	h.Cancel()
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() = %d after drain, want 0", got)
	}
}
