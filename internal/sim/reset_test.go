package sim

import (
	"testing"
	"time"
)

// TestSchedulerResetEquivalence drives a scheduler, resets it, and checks it
// then behaves exactly like a freshly constructed one for the same schedule.
func TestSchedulerResetEquivalence(t *testing.T) {
	drive := func(s *Scheduler) []time.Duration {
		var fired []time.Duration
		s.After(3*time.Millisecond, func(now time.Duration) { fired = append(fired, now) })
		s.After(time.Millisecond, func(now time.Duration) {
			fired = append(fired, now)
			s.After(time.Millisecond, func(now time.Duration) { fired = append(fired, now) })
		})
		h := s.After(2*time.Millisecond, func(now time.Duration) { t.Error("cancelled event fired") })
		h.Cancel()
		s.Run()
		return fired
	}

	used := &Scheduler{}
	// Dirty the scheduler: pending events, cancelled events, advanced clock.
	used.After(time.Millisecond, func(time.Duration) {})
	used.After(5*time.Millisecond, func(time.Duration) { t.Error("event survived reset") })
	stale := used.After(7*time.Millisecond, func(time.Duration) {})
	used.RunSteps(1)
	used.Reset()

	if used.Now() != 0 || used.Pending() != 0 || used.Steps() != 0 {
		t.Fatalf("reset state: now=%v pending=%d steps=%d", used.Now(), used.Pending(), used.Steps())
	}
	// A pre-reset handle must not cancel whatever recycled its slot.
	stale.Cancel()

	fresh := &Scheduler{}
	got, want := drive(used), drive(fresh)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, fresh at %v", i, got[i], want[i])
		}
	}
	if used.Steps() != fresh.Steps() {
		t.Errorf("steps %d vs fresh %d", used.Steps(), fresh.Steps())
	}
}

// TestSchedulerResetAllocationFree checks that the schedule/reset cycle
// reuses the recycled items instead of allocating.
func TestSchedulerResetAllocationFree(t *testing.T) {
	s := &Scheduler{}
	fn := Event(func(time.Duration) {})
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.After(time.Duration(i)*time.Microsecond, fn)
		}
		s.Reset()
	})
	if allocs != 0 {
		t.Errorf("schedule/reset cycle allocated %.1f objects per run, want 0", allocs)
	}
}

// TestRNGReseed checks Reseed restores the exact NewRNG stream.
func TestRNGReseed(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF} {
		r := NewRNG(seed)
		want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
		r.Reseed(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("seed %#x draw %d: got %#x want %#x", seed, i, got, w)
			}
		}
	}
}
