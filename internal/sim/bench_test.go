package sim

import (
	"testing"
	"time"
)

// BenchmarkSchedulerChurn measures the scheduler's hot loop — schedule,
// sift, pop, fire, recycle — at a queue depth comparable to a busy bus
// simulation. The heap stores pointer-free entries and slots recycle through
// the free list, so a warm scheduler must not allocate at all; b.ReportAllocs
// plus TestSchedulerSteadyStateZeroAllocs keep that at exactly zero.
func BenchmarkSchedulerChurn(b *testing.B) {
	var s Scheduler
	fn := func(time.Duration) {}
	// Warm the arena and free list past the benchmark's working set.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	s.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			s.After(time.Duration(j%7)*time.Microsecond, fn)
		}
		s.Run()
		s.Reset()
	}
}

// BenchmarkSchedulerCancelHeavy measures the lazy-discard path: half the
// scheduled events are cancelled before the queue drains.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	var s Scheduler
	fn := func(time.Duration) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var hs [16]Handle
		for j := range hs {
			hs[j] = s.After(time.Duration(j)*time.Microsecond, fn)
		}
		for j := 0; j < len(hs); j += 2 {
			hs[j].Cancel()
		}
		s.Run()
		s.Reset()
	}
}

// TestSchedulerSteadyStateZeroAllocs pins the scheduler benchmarks'
// allocation discipline as a hard assertion: a warm scheduler's
// schedule→run→reset cycle performs zero allocations per op.
func TestSchedulerSteadyStateZeroAllocs(t *testing.T) {
	var s Scheduler
	fn := func(time.Duration) {}
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	s.Reset()
	allocs := testing.AllocsPerRun(200, func() {
		for j := 0; j < 32; j++ {
			s.After(time.Duration(j%5)*time.Microsecond, fn)
		}
		s.Run()
		s.Reset()
	})
	if allocs != 0 {
		t.Errorf("steady-state scheduler cycle allocates %.1f objects/op, want exactly 0", allocs)
	}
}
