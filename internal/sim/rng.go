package sim

// RNG is a small deterministic pseudo-random number generator
// (xorshift64*), used wherever a simulation needs randomness. Using our own
// generator rather than math/rand pins the byte streams across Go releases,
// keeping recorded experiment outputs stable.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Reseed restores the generator to the state NewRNG(seed) would produce,
// allowing a long-lived simulation component to be reset in place.
func (r *RNG) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
}

// State exposes the raw generator state for checkpointing. Pair with
// SetState to rewind a long-lived simulation component to a captured
// mid-stream position (Reseed can only rewind to a stream's start).
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured by State. A zero value is remapped like
// NewRNG's zero seed; it cannot arise from a live generator (xorshift never
// reaches the all-zero fixed point from a non-zero state), so the remap only
// guards a zero-value snapshot.
func (r *RNG) SetState(state uint64) {
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	r.state = state
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
