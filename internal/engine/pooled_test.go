package engine

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
)

// pooledTestConfig is a small but fully featured sweep: several scenarios,
// both regimes, bus error injection active.
func pooledTestConfig(workers int) Config {
	return Config{
		Fleet:          10,
		Workers:        workers,
		RootSeed:       42,
		Scenarios:      attack.Scenarios()[:4],
		Regimes:        []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE},
		TrafficHorizon: 10 * time.Millisecond,
		ErrorRate:      0.02,
	}
}

// TestPooledMatchesFreshByteIdentical is the engine-level zero-rebuild
// contract: pooled arenas and fresh construction render byte-identical
// fleet reports at every worker count.
func TestPooledMatchesFreshByteIdentical(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, w := range workerCounts {
		cfg := pooledTestConfig(w)
		pooled, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d pooled: %v", w, err)
		}
		cfg.FreshVehicles = true
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d fresh: %v", w, err)
		}
		if pooled.String() != fresh.String() {
			t.Errorf("workers=%d: pooled and fresh reports differ\n--- pooled\n%s--- fresh\n%s",
				w, pooled, fresh)
		}
	}
}

// TestPooledStableAcrossWorkerCounts checks the pooled engine keeps PR 1's
// worker-count determinism: only the echoed worker count may differ.
func TestPooledStableAcrossWorkerCounts(t *testing.T) {
	base, err := Run(pooledTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		fr, err := Run(pooledTestConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		fr.Workers = base.Workers // normalise the echoed configuration
		if fr.String() != base.String() {
			t.Errorf("workers=%d report differs from workers=1", w)
		}
	}
}

// TestPooledArenasRace drives many pooled workers concurrently so the race
// detector can observe the per-worker arena confinement. Run with -race.
func TestPooledArenasRace(t *testing.T) {
	cfg := pooledTestConfig(8)
	cfg.Fleet = 24
	var wg sync.WaitGroup
	reports := make([]*FleetReport, 3)
	for i := range reports {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			fr, err := Run(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			reports[slot] = fr
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(reports); i++ {
		if reports[i] == nil || reports[0] == nil {
			t.Fatal("missing report")
		}
		if reports[i].String() != reports[0].String() {
			t.Errorf("concurrent run %d diverged", i)
		}
	}
}
