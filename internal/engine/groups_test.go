package engine

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/attack"
)

// testGroups builds three scenario groups with distinct shapes and seeds:
// different slices of the Table I matrix and different regime sweeps, the
// way a compiled campaign's families differ. Each group carries its own
// fleet root, so permuting the groups must not change any group's outcome.
func testGroups() []ScenarioGroup {
	all := attack.Scenarios()
	return []ScenarioGroup{
		{Name: "alpha", Scenarios: all[:3], Regimes: []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE}, RootSeed: 0xA11CE},
		{Name: "bravo", Scenarios: all[3:6], Regimes: []attack.Enforcement{attack.EnforceHPE}, RootSeed: 0xB0B},
		{Name: "chain", Scenarios: all[6:8], Regimes: []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE, attack.EnforceBehaviour}, RootSeed: 0xC4A1},
	}
}

func groupConfig(groups []ScenarioGroup, workers int, fresh bool) Config {
	return Config{
		Fleet:          6,
		Workers:        workers,
		RootSeed:       groups[0].RootSeed,
		Groups:         groups,
		TrafficHorizon: 5 * time.Millisecond,
		ErrorRate:      0.02,
		FreshVehicles:  fresh,
		SkipMAC:        true,
	}
}

// TestGroupsMatchFamilyMajorRuns is the vehicle-major executor's equivalence
// oracle: one multi-group Run must reproduce, group for group, what the
// retired family-major executor computed — one single-group engine run per
// family (live phase on the first only), with a full barrier in between.
func TestGroupsMatchFamilyMajorRuns(t *testing.T) {
	groups := testGroups()
	multi, err := Run(groupConfig(groups, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Groups) != len(groups) {
		t.Fatalf("got %d group reports, want %d", len(multi.Groups), len(groups))
	}
	for gi, g := range groups {
		single, err := Run(Config{
			Fleet:          6,
			Workers:        2,
			RootSeed:       g.RootSeed,
			Scenarios:      g.Scenarios,
			Regimes:        g.Regimes,
			TrafficHorizon: 5 * time.Millisecond,
			ErrorRate:      0.02,
			SkipLive:       gi != 0,
			SkipMAC:        true,
		})
		if err != nil {
			t.Fatalf("family-major run %d: %v", gi, err)
		}
		if !reflect.DeepEqual(multi.Groups[gi].Regimes, single.Attacks) {
			t.Errorf("group %q diverged from its family-major run:\nmulti:  %+v\nsingle: %+v",
				g.Name, multi.Groups[gi].Regimes, single.Attacks)
		}
		if gi == 0 {
			// The live background phase runs once per vehicle visit with the
			// first group's seed — exactly what the first family-major run
			// measured.
			if multi.FramesDelivered != single.FramesDelivered || multi.BusErrors != single.BusErrors ||
				multi.MeanUtilisation != single.MeanUtilisation {
				t.Errorf("live counters diverged: multi {%d %d %v} vs family-major {%d %d %v}",
					multi.FramesDelivered, multi.BusErrors, multi.MeanUtilisation,
					single.FramesDelivered, single.BusErrors, single.MeanUtilisation)
			}
		}
	}
}

// TestGroupsPermutationInvariant checks cross-group isolation inside a
// vehicle visit: executing the groups in a different order (each still
// carrying its own fleet root) must not change any group's fleet-merged
// outcome, pooled or fresh. Note the invariance lives at the engine layer —
// campaign.Sweep derives each family's root from its spec position, so
// permuting a *spec* legitimately re-seeds its families.
func TestGroupsPermutationInvariant(t *testing.T) {
	groups := testGroups()
	perm := []ScenarioGroup{groups[2], groups[0], groups[1]}
	for _, fresh := range []bool{false, true} {
		base, err := Run(groupConfig(groups, 2, fresh))
		if err != nil {
			t.Fatal(err)
		}
		permuted, err := Run(groupConfig(perm, 2, fresh))
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string][]attack.RegimeSummary{}
		for _, gr := range permuted.Groups {
			byName[gr.Name] = gr.Regimes
		}
		for _, gr := range base.Groups {
			if !reflect.DeepEqual(gr.Regimes, byName[gr.Name]) {
				t.Errorf("fresh=%v: group %q changed under permutation:\noriginal: %+v\npermuted: %+v",
					fresh, gr.Name, gr.Regimes, byName[gr.Name])
			}
		}
	}
}

// TestGroupsPooledMatchesFreshAcrossWorkers extends the zero-rebuild
// contract to multi-group runs: pooled and fresh vehicle-major sweeps agree
// on every group at every worker count, and worker count never changes the
// merged outcome.
func TestGroupsPooledMatchesFreshAcrossWorkers(t *testing.T) {
	groups := testGroups()
	base, err := Run(groupConfig(groups, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		pooled, err := Run(groupConfig(groups, w, false))
		if err != nil {
			t.Fatalf("workers=%d pooled: %v", w, err)
		}
		fresh, err := Run(groupConfig(groups, w, true))
		if err != nil {
			t.Fatalf("workers=%d fresh: %v", w, err)
		}
		if !reflect.DeepEqual(pooled.Groups, fresh.Groups) {
			t.Errorf("workers=%d: pooled and fresh group reports differ", w)
		}
		if !reflect.DeepEqual(pooled.Groups, base.Groups) {
			t.Errorf("workers=%d: group reports differ from workers=1", w)
		}
		if pooled.String() != base.String() && w == base.Workers {
			t.Errorf("workers=%d: rendered report differs from baseline", w)
		}
	}
}

// TestGroupsValidation pins the explicit-group contract: a group without
// scenarios or regimes is a configuration error, not a silent no-op.
func TestGroupsValidation(t *testing.T) {
	if _, err := Run(Config{Groups: []ScenarioGroup{{Name: "empty"}}}); err == nil {
		t.Error("group with no scenarios did not error")
	}
	if _, err := Run(Config{Groups: []ScenarioGroup{{
		Name: "noregimes", Scenarios: attack.Scenarios()[:1],
	}}}); err == nil {
		t.Error("group with no regimes did not error")
	}
}
