package engine

import (
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
)

// TestMergeFoldMatchesMerge pins the refactor invariant the streaming
// shard merge rests on: folding vehicles one at a time through MergeFold
// renders byte-identically to the batch Merge of the same slice (same
// float summation order, same group folds, same health ledger).
func TestMergeFoldMatchesMerge(t *testing.T) {
	cfg := quickConfig(7, 3)
	cfg.Chaos = &chaos.Plan{Seed: 7, Panic: 0.2, Corrupt: 0.1}
	fr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Merge(cfg, fr.Vehicles)
	if err != nil {
		t.Fatal(err)
	}
	fold, err := NewMergeFold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fr.Vehicles {
		fold.Add(v)
	}
	streamed := fold.Finish()
	if got, want := streamed.String(), batch.String(); got != want {
		t.Errorf("MergeFold diverged from Merge\n--- batch\n%s\n--- fold\n%s", want, got)
	}
	if streamed.Health != batch.Health {
		t.Errorf("health ledger moved: %+v vs %+v", streamed.Health, batch.Health)
	}
	if got, want := streamed.String(), fr.String(); got != want {
		t.Errorf("MergeFold diverged from the live run\n--- run\n%s\n--- fold\n%s", want, got)
	}
}

// TestOnVehicleOrdered pins the streaming emitter's contract: with many
// workers completing vehicles out of order, OnVehicle fires exactly once
// per vehicle, strictly in ascending index order, never concurrently.
func TestOnVehicleOrdered(t *testing.T) {
	cfg := quickConfig(24, 8)
	var got []int
	var inFlight atomic.Int32
	cfg.OnVehicle = func(v *VehicleReport) {
		if inFlight.Add(1) != 1 {
			t.Error("OnVehicle callbacks ran concurrently")
		}
		got = append(got, v.Index)
		inFlight.Add(-1)
	}
	fr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cfg.Fleet {
		t.Fatalf("OnVehicle fired %d times, want %d", len(got), cfg.Fleet)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("emission order broken at position %d: got index %d (full order %v)", i, idx, got)
		}
	}
	// The emitted reports are the ones the fleet report retains.
	for i := range fr.Vehicles {
		if fr.Vehicles[i].Index != i {
			t.Fatalf("report slice out of order at %d", i)
		}
	}
}

// TestOnVehicleOffsetIndices: a sharded child emits global indices — the
// callback sees IndexOffset-shifted values, in order.
func TestOnVehicleOffsetIndices(t *testing.T) {
	cfg := quickConfig(5, 2)
	cfg.IndexOffset = 100
	var got []int
	cfg.OnVehicle = func(v *VehicleReport) { got = append(got, v.Index) }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for i, idx := range got {
		if idx != 100+i {
			t.Fatalf("global index at position %d = %d, want %d", i, idx, 100+i)
		}
	}
	if len(got) != 5 {
		t.Fatalf("OnVehicle fired %d times, want 5", len(got))
	}
}

// TestOnVehicleFiresOnFailedRun: vehicles that complete before an
// unrecoverable fault still stream out — the partial-report contract the
// shard driver's quarantine path depends on.
func TestOnVehicleFiresOnFailedRun(t *testing.T) {
	cfg := quickConfig(6, 2)
	cfg.Chaos = &chaos.Plan{Seed: 7, Panic: 1, Persist: 99}
	cfg.MaxRetries = 1
	var fired int
	last := -1
	cfg.OnVehicle = func(v *VehicleReport) {
		fired++
		if v.Index <= last {
			t.Errorf("emission order broken: %d after %d", v.Index, last)
		}
		last = v.Index
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("persistent chaos plan did not fail the run")
	}
	if fired != cfg.Fleet {
		t.Fatalf("OnVehicle fired %d times on a failed run, want %d (errored vehicles emit too)", fired, cfg.Fleet)
	}
}
