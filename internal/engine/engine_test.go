package engine

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/canbus"
	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/threatmodel"
)

// quickConfig keeps unit-test runs fast: a small scenario slice and a short
// traffic horizon.
func quickConfig(fleetSize, workers int) Config {
	return Config{
		Fleet:          fleetSize,
		Workers:        workers,
		RootSeed:       0xC0FFEE,
		Scenarios:      attack.Scenarios()[:3],
		Regimes:        []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE},
		TrafficPeriod:  time.Millisecond,
		TrafficHorizon: 10 * time.Millisecond,
	}
}

func TestVehicleSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := VehicleSeed(42, i)
		if s != VehicleSeed(42, i) {
			t.Fatalf("VehicleSeed(42, %d) unstable", i)
		}
		if seen[s] {
			t.Fatalf("VehicleSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if VehicleSeed(1, 0) == VehicleSeed(2, 0) {
		t.Error("different roots produced the same vehicle seed")
	}
}

func TestRunSingleVehicle(t *testing.T) {
	r, err := Run(quickConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vehicles) != 1 {
		t.Fatalf("vehicles = %d, want 1", len(r.Vehicles))
	}
	v := r.Vehicles[0]
	if v.FramesDelivered == 0 {
		t.Error("background simulation delivered no frames")
	}
	if v.Utilisation <= 0 {
		t.Error("background simulation reports zero bus utilisation")
	}
	if v.MACChecks == 0 || v.MACAllowed == 0 {
		t.Errorf("MAC probe checks=%d allowed=%d, want both > 0", v.MACChecks, v.MACAllowed)
	}
	// The spoof probe (infotainment -> ECU command) must be denied.
	if v.MACAllowed >= v.MACChecks {
		t.Errorf("MAC probe allowed %d of %d checks; the spoof probe should be denied",
			v.MACAllowed, v.MACChecks)
	}
	if len(v.Attacks) != 2 {
		t.Fatalf("attack regimes = %d, want 2", len(v.Attacks))
	}
	if v.Attacks[0].Summary.SuccessRate() != 1.0 {
		t.Errorf("unenforced success rate = %v, want 1.0", v.Attacks[0].Summary.SuccessRate())
	}
	if v.Attacks[1].Summary.BlockRate() != 1.0 {
		t.Errorf("HPE block rate = %v, want 1.0", v.Attacks[1].Summary.BlockRate())
	}
}

func TestRunMergesVehicleOrderIndependentOfWorkers(t *testing.T) {
	serial, err := Run(quickConfig(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(quickConfig(12, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Vehicles {
		if serial.Vehicles[i].Index != i || parallel.Vehicles[i].Index != i {
			t.Fatalf("vehicle %d out of order", i)
		}
	}
	// Worker count is part of the report header; normalise it before the
	// byte comparison so only the merged simulation output is compared.
	parallel.Workers = serial.Workers
	if serial.String() != parallel.String() {
		t.Error("fleet report depends on worker count")
	}
}

// TestRunDeterministic100Vehicles8Workers is the PR's acceptance criterion:
// engine.Run with 100 vehicles on 8 workers produces byte-identical
// aggregate reports across two runs with the same root seed.
func TestRunDeterministic100Vehicles8Workers(t *testing.T) {
	if testing.Short() {
		t.Skip("100-vehicle sweep in -short mode")
	}
	cfg := quickConfig(100, 8)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two runs with the same root seed rendered different fleet reports")
	}
	if a.Fleet != 100 || a.Workers != 8 {
		t.Fatalf("config echo fleet=%d workers=%d", a.Fleet, a.Workers)
	}
	// Fleet-wide aggregates must equal the fold of per-vehicle reports.
	var delivered uint64
	for _, v := range a.Vehicles {
		delivered += v.FramesDelivered
	}
	if delivered != a.FramesDelivered {
		t.Errorf("merged FramesDelivered %d != vehicle sum %d", a.FramesDelivered, delivered)
	}
	if got := a.Attacks[0].Summary.Runs; got != 100*3 {
		t.Errorf("unenforced runs = %d, want 300", got)
	}
}

func TestHostedFleetCanaryRollout(t *testing.T) {
	oem, err := core.NewOEM(testEntropy{})
	if err != nil {
		t.Fatal(err)
	}
	host, err := NewHost(40, 7, oem.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	set, err := threatmodel.DerivePolicies(analysis, "table-i", 3)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := oem.Issue(set)
	if err != nil {
		t.Fatal(err)
	}

	plan := fleet.DefaultPlan()
	plan.Workers = 4
	report, err := fleet.Rollout(host.FleetVehicles(), bundle, plan)
	if err != nil {
		t.Fatal(err)
	}
	if report.Aborted {
		t.Fatalf("clean rollout aborted: %s", report)
	}
	if report.Applied != host.Len() {
		t.Errorf("applied %d of %d live vehicles", report.Applied, host.Len())
	}
	for i, ver := range host.PolicyVersions() {
		if ver != 3 {
			t.Errorf("vehicle %d runs policy v%d, want v3", i, ver)
		}
	}
	// The installed policy must actually filter on the live bus: a spoofed
	// ECU-disable from the infotainment node dies at its write filter.
	hv := host.Vehicle(0)
	node, ok := hv.Car.Node(car.NodeInfotainment)
	if !ok {
		t.Fatal("missing infotainment node")
	}
	before := hv.Car.Bus().Stats().WriteBlocked
	f, err := canbus.NewDataFrame(car.IDECUCommand, []byte{car.OpDisable})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Send(f); err != nil {
		t.Fatal(err)
	}
	hv.Car.Scheduler().Run()
	if got := hv.Car.Bus().Stats().WriteBlocked; got != before+1 {
		t.Errorf("WriteBlocked = %d, want %d: live policy did not filter the spoof", got, before+1)
	}
	if !hv.Car.State().Propulsion {
		t.Error("spoofed disable reached the ECU on a policy-updated live vehicle")
	}
}

// testEntropy is a deterministic reader for test key generation.
type testEntropy struct{}

func (testEntropy) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i*31 + 11)
	}
	return len(p), nil
}
