package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
)

// This file implements the fault-tolerant sweep supervisor: every cell of a
// vehicle visit — and the visit itself — executes behind a containment
// ladder instead of aborting the fleet on first failure.
//
// The ladder, per cell: a failed attempt (panic, integrity mismatch,
// deadline overrun, quiescence violation, or an injected chaos fault) is
// quarantined and retried up to MaxRetries times on the batched path, each
// retry on a rebuilt or re-primed arena with a capped virtual backoff
// recorded. Exhausting the batched retries demotes the cell — and,
// monotonically, the vehicle's remaining cells — to the cell-by-cell oracle
// (the NoBatch reference executor), which gets its own MaxRetries budget.
// Only a cell that keeps failing through all of that is unrecoverable: the
// vehicle reports a partial result and the sweep returns an error alongside
// the partial fleet report. Per visit: a panic escaping cell scope (or an
// injected crash fault) abandons the visit, the worker rebuilds its arena,
// and the whole vehicle re-runs up to MaxRetries times.
//
// Determinism: chaos faults are a pure function of per-vehicle coordinates,
// retries and demotions are decided by counters local to the vehicle, and
// the recorded backoff is virtual (never slept) — so the Health ledger, like
// the payload report, is byte-stable across worker counts and pooling modes.

// Supervisor failure classes. ErrCellPanic and ErrVehicleCrash wrap
// recovered panics at cell and visit scope; ErrCellDeadline reports a cell
// whose tail left the virtual clock past the budget; ErrUnrecoverable marks
// a cell that failed through every retry and demotion.
var (
	ErrCellPanic     = errors.New("engine: recovered cell panic")
	ErrVehicleCrash  = errors.New("engine: recovered vehicle-visit crash")
	ErrCellDeadline  = errors.New("engine: cell exceeded its virtual-time budget")
	ErrUnrecoverable = errors.New("engine: unrecoverable cell")
)

const (
	defaultMaxRetries = 2
	defaultTimeBudget = time.Minute // virtual; healthy cells finish in simulated milliseconds

	backoffBase = time.Millisecond
	backoffCap  = 8 * time.Millisecond

	// saltVerify keys the verification sampler's rolls, disjoint from the
	// chaos plan's per-kind salts.
	saltVerify uint64 = 0x7e
)

// supervisorCfg is the resolved supervision configuration every worker
// shares.
type supervisorCfg struct {
	plan       *chaos.Plan
	verify     float64
	verifySeed uint64
	maxRetries int
	timeBudget time.Duration
}

// chaotic reports whether fault injection or inline verification is armed —
// the modes that disable cross-vehicle memoisation, because memoised
// vehicles execute no cells and would make the Health ledger depend on
// which vehicles each worker happened to compute.
func (s *supervisorCfg) chaotic() bool { return s.plan.Active() || s.verify > 0 }

// backoff returns the capped virtual backoff recorded before retry n
// (1-based): base<<(n-1), clamped to backoffCap.
func backoff(n int) time.Duration {
	if n > 4 {
		return backoffCap
	}
	d := backoffBase << uint(n-1)
	if d > backoffCap {
		return backoffCap
	}
	return d
}

// cellExec supervises one scenario group's cells for one vehicle. Exactly
// one execution backend is set: br for the pooled batched path, owner (with
// br nil) for the pooled oracle path, hv for the fresh-construction path.
type cellExec struct {
	sup    *supervisorCfg
	health *Health
	sh     *shared
	owner  *arena           // pooled vehicle stack; nil on the fresh path
	br     *attack.BatchRun // batched cursor; nil on oracle/fresh paths
	hv     *attack.Harness  // fresh-path harness, seed applied

	vehicle, group int
	seed           uint64 // the group seed, re-applied after arena rebuilds
	demoted        *bool  // the visit's monotone demotion latch
}

// runCell executes one cell through the containment ladder and returns its
// (possibly oracle-substituted) result, or ErrUnrecoverable once every rung
// is exhausted.
func (e *cellExec) runCell(sc attack.Scenario, sci, ri int, enf attack.Enforcement) (attack.Result, error) {
	maxAttempts := 2*e.sup.maxRetries + 1
	for attempt := 0; ; attempt++ {
		r, err := e.attempt(sc, sci, ri, enf, attempt)
		if err == nil {
			return e.maybeVerify(r, sci, ri, attempt)
		}
		e.classify(err)
		if rerr := e.refresh(err); rerr != nil {
			return r, rerr
		}
		if attempt >= maxAttempts {
			e.health.Unrecoverable++
			return r, fmt.Errorf("%w: vehicle %d group %d scenario %d regime %s: %v",
				ErrUnrecoverable, e.vehicle, e.group, sci, enf, err)
		}
		if attempt == e.sup.maxRetries && e.br != nil && !*e.demoted {
			// Batched retries exhausted: demote this cell — and the visit's
			// remaining cells — to the oracle. The latch never resets, so
			// demotion is monotone within the visit.
			e.health.CellDemotions++
			*e.demoted = true
			e.health.VehicleDemotions++
		}
		e.health.Retries++
		e.health.Backoff += backoff(attempt + 1)
	}
}

// oracle reports whether the given attempt runs on the cell-by-cell
// reference path instead of the batched one.
func (e *cellExec) oracle(attempt int) bool {
	return e.br == nil || *e.demoted || attempt > e.sup.maxRetries
}

// attempt executes one try of one cell, converting panics into ErrCellPanic
// and injecting whatever the chaos plan dictates for this coordinate.
func (e *cellExec) attempt(sc attack.Scenario, sci, ri int, enf attack.Enforcement, attempt int) (r attack.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrCellPanic, p)
		}
	}()
	oracle := e.oracle(attempt)
	if k, ok := e.sup.plan.CellFault(e.vehicle, e.group, ri, sci, attempt); ok {
		switch k {
		case chaos.KindPanic:
			panic(&chaos.InjectedPanic{Vehicle: e.vehicle, Group: e.group, Regime: ri, Scenario: sci, Attempt: attempt})
		case chaos.KindDeadline:
			return attack.Result{}, chaos.ErrDeadline
		case chaos.KindCorrupt:
			// Corruption can only land on a checkpoint restore; elsewhere
			// the fault has nothing to corrupt and the attempt proceeds.
			if !oracle && e.br.WillRestore() {
				e.br.CorruptNextRestore()
			}
		}
	}
	switch {
	case !oracle:
		r, err = e.br.Run()
	case e.br != nil:
		r, err = e.br.RunOracle()
	case e.owner != nil:
		r, err = e.owner.att.Run(sc, enf)
	default:
		r, err = e.hv.Run(sc, enf)
	}
	if err != nil {
		return r, err
	}
	// Virtual-time watchdog (pooled paths, where the cell's car is
	// reachable): a healthy cell leaves the clock in simulated
	// milliseconds, so a clock past the budget means a runaway tail.
	if e.owner != nil {
		if now := e.owner.att.Car().Scheduler().Now(); now > e.sup.timeBudget {
			return r, fmt.Errorf("%w: clock at %s after the cell (budget %s)", ErrCellDeadline, now, e.sup.timeBudget)
		}
	}
	return r, nil
}

// classify books one quarantined failure into the ledger.
func (e *cellExec) classify(err error) {
	e.health.Quarantines++
	switch {
	case errors.Is(err, ErrCellPanic):
		e.health.PanicRecoveries++
	case errors.Is(err, attack.ErrIntegrity):
		e.health.IntegrityFailures++
	case errors.Is(err, chaos.ErrDeadline), errors.Is(err, ErrCellDeadline):
		e.health.DeadlineOverruns++
	case errors.Is(err, attack.ErrNotQuiescent):
		e.health.NotQuiescent++
	}
}

// refresh prepares the backend for the next attempt. Any failure
// invalidates the batched checkpoint (the partial execution left the arena
// dirty); a panic or integrity mismatch additionally rebuilds the pooled
// attack arena outright — retrying on a stack whose invariants a panic may
// have torn is not containment, it is hope.
func (e *cellExec) refresh(err error) error {
	if e.br != nil {
		e.br.Invalidate()
	}
	if e.owner == nil || (!errors.Is(err, ErrCellPanic) && !errors.Is(err, attack.ErrIntegrity)) {
		return nil
	}
	att, aerr := e.sh.harness.NewArena()
	if aerr != nil {
		return aerr
	}
	att.SetSeed(e.seed)
	e.owner.att = att
	if e.br != nil {
		e.br.Rebind(att)
	}
	return nil
}

// maybeVerify cross-checks a deterministic fraction of batched, forked
// cells against the oracle inline. A mismatch books itself, demotes the
// visit (monotone, like retry exhaustion) and substitutes the oracle's
// result — the reference path wins by definition.
func (e *cellExec) maybeVerify(r attack.Result, sci, ri, attempt int) (attack.Result, error) {
	if e.sup.verify <= 0 || e.br == nil || e.oracle(attempt) || !e.br.Forked() {
		return r, nil
	}
	if chaos.Roll(e.sup.verifySeed, saltVerify, e.vehicle, e.group, ri, sci) >= e.sup.verify {
		return r, nil
	}
	e.health.VerifySamples++
	or, err := e.br.RunOracle()
	if err != nil {
		return r, err
	}
	if or != r {
		e.health.VerifyMismatches++
		if !*e.demoted {
			*e.demoted = true
			e.health.VehicleDemotions++
		}
		return or, nil
	}
	return r, nil
}

// runGroupCells executes one group's cells under supervision and folds them
// into per-regime aggregates — the supervised equivalent of
// RunSummariesBatched (batched backend) or runSummaries (oracle and fresh
// backends), walking the identical cell order so a fault-free supervised
// sweep folds byte-identical aggregates.
func runGroupCells(e *cellExec, g *ScenarioGroup) ([]attack.RegimeSummary, error) {
	out := make([]attack.RegimeSummary, len(g.Regimes))
	for i, enf := range g.Regimes {
		out[i].Regime = enf
	}
	if e.br != nil {
		for e.br.Next() {
			sci, ri := e.br.Cell()
			r, err := e.runCell(g.Scenarios[sci], sci, ri, g.Regimes[ri])
			if err != nil {
				return out, err
			}
			out[ri].Summary.Add(r)
		}
		return out, nil
	}
	for sci := range g.Scenarios {
		for ri, enf := range g.Regimes {
			r, err := e.runCell(g.Scenarios[sci], sci, ri, enf)
			if err != nil {
				return out, err
			}
			out[ri].Summary.Add(r)
		}
	}
	return out, nil
}

// superviseVisit runs one vehicle visit through the visit-scope ladder:
// a crash (recovered panic at visit scope, injected or real) rebuilds the
// worker's stack and re-runs the whole vehicle, up to maxRetries times.
// The Health ledger accumulates across visit attempts — a recovered crash's
// earlier quarantines are part of the vehicle's history, not noise.
func superviseVisit(sup *supervisorCfg, visit func(attempt int, h *Health) (VehicleReport, error), rebuild func() error) (VehicleReport, error) {
	var h Health
	var rep VehicleReport
	var err error
	for attempt := 0; ; attempt++ {
		rep, err = visit(attempt, &h)
		if err == nil || !errors.Is(err, ErrVehicleCrash) || attempt >= sup.maxRetries {
			break
		}
		h.CrashRecoveries++
		h.Retries++
		h.Backoff += backoff(attempt + 1)
		if rebuild != nil {
			if rerr := rebuild(); rerr != nil {
				err = rerr
				break
			}
		}
	}
	if err != nil && errors.Is(err, ErrVehicleCrash) {
		h.Unrecoverable++
	}
	rep.Health = h
	return rep, err
}
