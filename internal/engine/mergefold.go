package engine

import (
	"sync"

	"repro/internal/attack"
)

// MergeFold is the incremental form of Merge: vehicle reports are folded
// into the fleet aggregates one at a time, in arrival order, so a
// streaming consumer (the shard driver decoding child pipes) never holds
// more than the vehicles it has chosen to retain. Merge itself is this
// fold applied to a slice — same statement order per vehicle, same float
// summation order — so a stream folded in index order finishes
// byte-identical to the batch merge of the same vehicles.
//
// Not safe for concurrent use: the shard driver serialises Adds behind
// its in-range-order merge loop, exactly as the batch fold serialises its
// slice walk.
type MergeFold struct {
	cfg     Config
	fr      *FleetReport
	utilSum float64
}

// NewMergeFold starts an incremental fleet merge. cfg must describe the
// whole fleet (total Fleet, the unsharded Workers value, zero
// IndexOffset); the same defaults Run applies are applied here so the
// report header matches.
func NewMergeFold(cfg Config) (*MergeFold, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return newMergeFold(cfg), nil
}

// newMergeFold builds the fold over an already-defaulted config.
func newMergeFold(cfg Config) *MergeFold {
	fr := &FleetReport{
		Fleet:    cfg.Fleet,
		Workers:  cfg.Workers,
		RootSeed: cfg.RootSeed,
		Groups:   make([]GroupReport, len(cfg.Groups)),
	}
	for gi := range cfg.Groups {
		g := &cfg.Groups[gi]
		fr.Groups[gi].Name = g.Name
		fr.Groups[gi].RootSeed = g.RootSeed
		fr.Groups[gi].Regimes = make([]attack.RegimeSummary, len(g.Regimes))
		for ri, enf := range g.Regimes {
			fr.Groups[gi].Regimes[ri].Regime = enf
		}
	}
	fr.HealthEnabled = cfg.Chaos.Active() || cfg.VerifySample > 0
	return &MergeFold{cfg: cfg, fr: fr}
}

// Add folds one vehicle report into the fleet aggregates and retains it
// in the report's vehicle slice. Call in vehicle-index order for
// byte-identity with the unsharded run (float summation order).
func (m *MergeFold) Add(v VehicleReport) {
	m.fold(&v)
	m.fr.Vehicles = append(m.fr.Vehicles, v)
}

// fold accumulates one vehicle's counters — the exact per-vehicle
// statement order of the original batch merge, which is what pins the
// float summation order byte-identity rests on.
func (m *MergeFold) fold(v *VehicleReport) {
	fr := m.fr
	fr.Health.Merge(v.Health)
	fr.FramesDelivered += v.FramesDelivered
	fr.BusErrors += v.BusErrors
	fr.WriteBlocked += v.WriteBlocked
	fr.ReadBlocked += v.ReadBlocked
	fr.AbortedTx += v.AbortedTx
	fr.MACChecks += v.MACChecks
	fr.MACAllowed += v.MACAllowed
	m.utilSum += v.Utilisation
	for gi := range v.Groups {
		for ri := range v.Groups[gi] {
			fr.Groups[gi].Regimes[ri].Summary.Merge(v.Groups[gi][ri].Summary)
		}
	}
}

// Finish closes the fold and returns the fleet report. The MergeFold must
// not be used afterwards.
func (m *MergeFold) Finish() *FleetReport { return m.finish() }

func (m *MergeFold) finish() *FleetReport {
	fr := m.fr
	groupRegimes := make([][]attack.RegimeSummary, len(fr.Groups))
	for gi := range fr.Groups {
		groupRegimes[gi] = fr.Groups[gi].Regimes
	}
	fr.Attacks = foldGroups(groupRegimes)
	if len(fr.Vehicles) > 0 {
		fr.MeanUtilisation = m.utilSum / float64(len(fr.Vehicles))
	}
	return fr
}

// orderedEmit sequences Config.OnVehicle callbacks: workers complete
// vehicles out of order, the emitter releases them strictly by index.
// Vehicles are claimed off an atomic cursor, so completion order tracks
// index order closely and the pending window stays near the worker count.
type orderedEmit struct {
	mu      sync.Mutex
	fn      func(*VehicleReport)
	reports []VehicleReport
	done    []bool
	next    int
}

func newOrderedEmit(fn func(*VehicleReport), reports []VehicleReport) *orderedEmit {
	return &orderedEmit{fn: fn, reports: reports, done: make([]bool, len(reports))}
}

// complete marks slot i finished and emits every report that is now
// contiguous from the emission cursor. Callbacks run under the lock —
// never concurrently, always in ascending index order.
func (e *orderedEmit) complete(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done[i] = true
	for e.next < len(e.done) && e.done[e.next] {
		e.fn(&e.reports[e.next])
		e.next++
	}
}
