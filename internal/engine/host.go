package engine

import (
	"crypto/ed25519"

	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/fleet"
)

// Host keeps a population of live vehicle simulations — each with its own
// scheduler, bus, car and provisioned policy-engine stack — so the §V-A.2
// staged rollout (internal/fleet) distributes bundles to real simulations
// instead of fakes. Every hosted vehicle is confined to whichever rollout
// worker is currently applying to it; distinct vehicles share nothing, which
// is what makes fleet.Rollout's bounded per-stage parallelism safe.
type Host struct {
	vehicles []HostedVehicle
}

// HostedVehicle is one live simulation plus its provisioned device.
type HostedVehicle struct {
	// Car is the live simulation.
	Car *car.Car
	// Device is the provisioned update endpoint.
	Device *core.Device
	// Vehicle is the fleet.Rollout adapter (drains the simulation after a
	// fresh install so the policy takes effect on the live bus).
	Vehicle core.FleetVehicle
}

// NewHost builds n live vehicles provisioned to trust the OEM key. Vehicle
// seeds derive from rootSeed exactly as in Run, so a hosted fleet matches a
// swept fleet vehicle-for-vehicle.
func NewHost(n int, rootSeed uint64, oemKey ed25519.PublicKey) (*Host, error) {
	h := &Host{vehicles: make([]HostedVehicle, 0, n)}
	for i := 0; i < n; i++ {
		c, err := car.New(car.Config{Seed: VehicleSeed(rootSeed, i)})
		if err != nil {
			return nil, err
		}
		dev, err := core.Provision(c.Bus(), c, oemKey, car.AllNodes, car.AllModes)
		if err != nil {
			return nil, err
		}
		hv := HostedVehicle{Car: c, Device: dev}
		hv.Vehicle = core.FleetVehicle{
			VID:        VIN(i),
			Dev:        dev,
			AfterApply: c.Scheduler().Run,
		}
		h.vehicles = append(h.vehicles, hv)
	}
	return h, nil
}

// Len returns the number of hosted vehicles.
func (h *Host) Len() int { return len(h.vehicles) }

// Vehicle returns the hosted vehicle at index.
func (h *Host) Vehicle(index int) *HostedVehicle { return &h.vehicles[index] }

// FleetVehicles returns the rollout-facing view of the population.
func (h *Host) FleetVehicles() []fleet.Vehicle {
	out := make([]fleet.Vehicle, len(h.vehicles))
	for i := range h.vehicles {
		out[i] = h.vehicles[i].Vehicle
	}
	return out
}

// PolicyVersions returns the installed policy version of every vehicle, in
// host order.
func (h *Host) PolicyVersions() []uint64 {
	out := make([]uint64, len(h.vehicles))
	for i := range h.vehicles {
		out[i] = h.vehicles[i].Device.PolicyVersion()
	}
	return out
}
