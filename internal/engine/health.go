package engine

import (
	"fmt"
	"time"
)

// Health is the sweep supervisor's containment ledger: every quarantine,
// retry, demotion and verification event of a run, folded per vehicle and
// then fleet-wide. The ledger is deterministic — faults are injected (or
// occur) as a pure function of per-vehicle coordinates and the whole retry
// history of a vehicle is independent of which worker ran it — so the
// rendered section is byte-stable across worker counts and pooling modes,
// which is what lets CI diff the Health output of a seeded chaos run.
type Health struct {
	// Quarantines counts failed cell attempts converted into quarantine
	// records (the sum of the four failure classes below, minus crash
	// recoveries, which are vehicle-scope).
	Quarantines int
	// PanicRecoveries counts cell panics recovered by the supervisor.
	PanicRecoveries int
	// IntegrityFailures counts checkpoint restores whose arena checksum
	// diverged from the capture.
	IntegrityFailures int
	// DeadlineOverruns counts cells that exceeded the virtual-time budget
	// (or had an overrun injected).
	DeadlineOverruns int
	// NotQuiescent counts checkpoint captures refused because the arena was
	// not quiescent.
	NotQuiescent int
	// CrashRecoveries counts whole-vehicle visits recovered after a
	// simulated worker/shard crash.
	CrashRecoveries int
	// Retries counts re-attempts the supervisor scheduled (cell and vehicle
	// scope combined).
	Retries int
	// Backoff is the total virtual backoff the capped retry schedule
	// accumulated. Recorded, never slept: a deterministic sweep cannot wait
	// on wall clocks, but the schedule a production shard supervisor would
	// sleep is part of the evidence.
	Backoff time.Duration
	// CellDemotions counts cells demoted from the batched path to the
	// cell-by-cell oracle after exhausting batched retries.
	CellDemotions int
	// VehicleDemotions counts vehicles whose remaining cells were demoted
	// wholesale (monotone: a vehicle demotes at most once and never
	// returns to the batched path).
	VehicleDemotions int
	// VerifySamples counts batched cells cross-checked inline against the
	// oracle; VerifyMismatches counts the cross-checks that diverged.
	VerifySamples    int
	VerifyMismatches int
	// Unrecoverable counts cells (or vehicles) that kept failing through
	// every retry and the oracle demotion — the only failures that still
	// surface as a sweep error.
	Unrecoverable int
}

// Merge folds another ledger into h (commutative integer adds, so merge
// order is invisible — the same property the attack summaries rely on).
func (h *Health) Merge(o Health) {
	h.Quarantines += o.Quarantines
	h.PanicRecoveries += o.PanicRecoveries
	h.IntegrityFailures += o.IntegrityFailures
	h.DeadlineOverruns += o.DeadlineOverruns
	h.NotQuiescent += o.NotQuiescent
	h.CrashRecoveries += o.CrashRecoveries
	h.Retries += o.Retries
	h.Backoff += o.Backoff
	h.CellDemotions += o.CellDemotions
	h.VehicleDemotions += o.VehicleDemotions
	h.VerifySamples += o.VerifySamples
	h.VerifyMismatches += o.VerifyMismatches
	h.Unrecoverable += o.Unrecoverable
}

// IsZero reports whether nothing was contained — the no-fault fast path,
// which renders no Health section unless the supervisor was explicitly
// armed.
func (h Health) IsZero() bool { return h == Health{} }

// String renders the ledger as one deterministic line.
func (h Health) String() string {
	return fmt.Sprintf("quarantines=%d (panic=%d integrity=%d deadline=%d notquiescent=%d) crashes=%d retries=%d backoff=%s demoted-cells=%d demoted-vehicles=%d verified=%d mismatches=%d unrecoverable=%d",
		h.Quarantines, h.PanicRecoveries, h.IntegrityFailures, h.DeadlineOverruns, h.NotQuiescent,
		h.CrashRecoveries, h.Retries, h.Backoff, h.CellDemotions, h.VehicleDemotions,
		h.VerifySamples, h.VerifyMismatches, h.Unrecoverable)
}
