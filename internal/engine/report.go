package engine

import (
	"fmt"
	"strings"

	"repro/internal/attack"
)

// VehicleReport is the merged outcome of one vehicle's simulation.
type VehicleReport struct {
	// Index is the vehicle's position in the fleet.
	Index int
	// VIN is the deterministic vehicle identifier.
	VIN string
	// Seed is the vehicle's derived simulation seed (the first group's, when
	// the run sweeps multiple scenario groups).
	Seed uint64
	// Attacks holds one aggregate per enforcement regime, keyed by first
	// appearance across the vehicle's scenario groups. For the legacy
	// single-group run this is exactly the group's sweep-order aggregates.
	Attacks []attack.RegimeSummary
	// Groups holds one regime-summary block per scenario group, in group
	// order — the per-vehicle slice the campaign executor folds from.
	Groups [][]attack.RegimeSummary
	// FramesDelivered, BusErrors, WriteBlocked, ReadBlocked and AbortedTx
	// are the background simulation's bus counters.
	FramesDelivered uint64
	BusErrors       uint64
	WriteBlocked    uint64
	ReadBlocked     uint64
	AbortedTx       uint64
	// Utilisation is the background simulation's bus utilisation.
	Utilisation float64
	// SchedulerSteps counts discrete events the vehicle's scheduler ran.
	SchedulerSteps uint64
	// MACChecks and MACAllowed count the least-privilege probe outcomes.
	MACChecks  int
	MACAllowed int
	// Health is the vehicle's containment ledger: every quarantine, retry,
	// demotion and verification event of the supervised visit (zero on the
	// unsupervised fast path).
	Health Health
}

// GroupReport is one scenario group's fleet-merged outcome: per-regime
// aggregates folded across every vehicle, in vehicle-index order.
type GroupReport struct {
	// Name and RootSeed echo the group.
	Name     string
	RootSeed uint64
	// Regimes holds one fleet-merged aggregate per regime, in the group's
	// sweep order.
	Regimes []attack.RegimeSummary
}

// FleetReport is the fleet-wide merge, in vehicle-index order.
type FleetReport struct {
	// Fleet and Workers echo the run configuration.
	Fleet   int
	Workers int
	// RootSeed echoes the seed all vehicle seeds derive from.
	RootSeed uint64
	// Vehicles holds every per-vehicle report, ordered by index.
	Vehicles []VehicleReport
	// Groups holds one fleet-merged block per scenario group, in group
	// order (a single block for legacy single-group runs).
	Groups []GroupReport
	// Attacks holds fleet-merged attack aggregates, one per regime keyed by
	// first appearance across groups.
	Attacks []attack.RegimeSummary
	// Fleet-wide bus totals from the background simulations.
	FramesDelivered uint64
	BusErrors       uint64
	WriteBlocked    uint64
	ReadBlocked     uint64
	AbortedTx       uint64
	// MeanUtilisation averages per-vehicle bus utilisation.
	MeanUtilisation float64
	// MACChecks and MACAllowed total the least-privilege probe outcomes.
	MACChecks  int
	MACAllowed int
	// Health folds every vehicle's containment ledger; HealthEnabled records
	// whether supervision was explicitly armed (chaos injection or verify
	// sampling), which forces the health line to render even when the ledger
	// is all zeros — a chaos run that contained nothing should say so.
	Health        Health
	HealthEnabled bool
}

// String renders the fleet report deterministically: same Config and
// RootSeed, byte-identical output, regardless of worker count.
func (r *FleetReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet run: %d vehicle(s), %d worker(s), root seed %#x\n",
		r.Fleet, r.Workers, r.RootSeed)
	fmt.Fprintf(&b, "bus: delivered=%d errors=%d wblk=%d rblk=%d aborted=%d mean-util=%.4f%%\n",
		r.FramesDelivered, r.BusErrors, r.WriteBlocked, r.ReadBlocked, r.AbortedTx,
		r.MeanUtilisation*100)
	fmt.Fprintf(&b, "mac: checks=%d allowed=%d\n", r.MACChecks, r.MACAllowed)
	if r.HealthEnabled || !r.Health.IsZero() {
		fmt.Fprintf(&b, "health: %s\n", r.Health)
	}
	for _, rs := range r.Attacks {
		fmt.Fprintf(&b, "attacks[%s]: %s success=%.1f%% blocked=%.1f%%\n",
			rs.Regime, rs.Summary, rs.Summary.SuccessRate()*100, rs.Summary.BlockRate()*100)
	}
	for i := range r.Vehicles {
		v := &r.Vehicles[i]
		fmt.Fprintf(&b, "  %s seed=%#016x delivered=%-5d util=%.4f%% steps=%-6d",
			v.VIN, v.Seed, v.FramesDelivered, v.Utilisation*100, v.SchedulerSteps)
		for _, rs := range v.Attacks {
			fmt.Fprintf(&b, " %s{succ=%d blk=%d}", rs.Regime, rs.Summary.Succeeded, rs.Summary.Blocked)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
