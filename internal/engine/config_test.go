package engine

import (
	"testing"

	"repro/internal/attack"
)

// TestSkipPhasesMatchAcrossPaths: the campaign fast path (shared harness,
// no live sim, no MAC probe) must behave identically on pooled arenas and
// fresh construction, and must actually zero the skipped phases' counters.
func TestSkipPhasesMatchAcrossPaths(t *testing.T) {
	h, err := attack.NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pooledTestConfig(4)
	cfg.Harness = h
	cfg.SkipLive = true
	cfg.SkipMAC = true

	pooled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FreshVehicles = true
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.String() != fresh.String() {
		t.Errorf("skip-phase runs diverged:\n--- pooled\n%s--- fresh\n%s", pooled, fresh)
	}
	if pooled.FramesDelivered != 0 || pooled.MACChecks != 0 {
		t.Errorf("skipped phases still reported activity: delivered=%d macchecks=%d",
			pooled.FramesDelivered, pooled.MACChecks)
	}
	if pooled.Attacks[1].Summary.Runs == 0 {
		t.Error("attack matrix did not run")
	}
}

// TestSharedHarnessMatchesSelfBuilt: supplying a pre-built harness must not
// change the report relative to the engine deriving its own.
func TestSharedHarnessMatchesSelfBuilt(t *testing.T) {
	cfg := pooledTestConfig(2)
	own, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := attack.NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Harness = h
	shared, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if own.String() != shared.String() {
		t.Error("shared-harness run diverged from self-built harness run")
	}
}
