// Package engine is the fleet-scale simulation engine: it runs N independent
// vehicle simulations — each owning its own sim.Scheduler, canbus.Bus,
// car.Car and HPE/MAC stack — across a bounded worker pool and merges the
// per-vehicle outcomes into one fleet-wide report.
//
// The paper's evaluation (§V) drives a single connected car; its update
// story (§V-A.2) is about an OEM operating a population of them. The engine
// is the unit of scale that bridges the two: fleet sweeps of the Table I
// attack matrix, population-wide bus metrics, and live vehicles for the
// staged policy rollout in internal/fleet.
//
// # Pooled arenas
//
// By default each worker constructs its simulation stack once — an
// attack.Arena (car + per-node policy engines) and a single-owner MAC
// server — and resets it in place between the live background simulation,
// the MAC probe and every scenario×regime cell. A thousand-vehicle sweep
// therefore builds `workers` vehicle stacks instead of ~7000, which is
// worth ~3.6x in fleet-sweep throughput. Config.FreshVehicles selects the
// from-scratch reference path; both render byte-identical reports.
//
// # Determinism
//
// Every vehicle derives its seed from the root seed via a SplitMix64 step,
// so vehicle i behaves identically regardless of which worker runs it or in
// what order vehicles are scheduled. Reports are merged in vehicle-index
// order; two runs with the same Config produce byte-identical rendered
// reports whatever the worker count, with or without pooling.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/hpe"
	"repro/internal/mac"
)

// Config parameterises a fleet run.
type Config struct {
	// Fleet is the number of vehicles simulated (default 1).
	Fleet int
	// Workers bounds the worker pool (default runtime.GOMAXPROCS(0)).
	Workers int
	// RootSeed feeds per-vehicle seed derivation.
	RootSeed uint64
	// Scenarios is the attack matrix swept per vehicle
	// (default attack.Scenarios(), the full Table I set).
	Scenarios []attack.Scenario
	// Regimes are the enforcement configurations swept per vehicle
	// (default none + hpe, the paper's baseline-vs-defence comparison).
	Regimes []attack.Enforcement
	// TrafficPeriod is the legitimate-traffic period of the live background
	// simulation (default 1ms).
	TrafficPeriod time.Duration
	// TrafficHorizon is the virtual span of the live background simulation
	// (default 50ms).
	TrafficHorizon time.Duration
	// Speed is the simulated vehicle speed for legitimate traffic.
	Speed uint16
	// ErrorRate enables bus error injection in the background simulation.
	ErrorRate float64
	// FreshVehicles disables vehicle pooling: every vehicle (and every
	// scenario×regime cell inside it) constructs its simulation stack from
	// scratch, as the engine originally did. Pooled (default) and fresh
	// runs produce byte-identical reports; the fresh path survives as the
	// reference implementation the reset-equivalence tests compare against.
	FreshVehicles bool
	// Harness optionally supplies a pre-built attack harness (compiled
	// policy + cycle model) the run reuses instead of deriving its own —
	// campaign sweeps call Run once per scenario family and share one
	// harness across all of them.
	Harness *attack.Harness
	// SkipLive skips the per-vehicle live background simulation phase (its
	// bus counters and utilisation report as zero). Campaign sweeps enable
	// it for every family after the first.
	SkipLive bool
	// SkipMAC skips the per-vehicle MAC least-privilege probe (and the MAC
	// module derivation entirely).
	SkipMAC bool
}

func (c *Config) applyDefaults() {
	if c.Fleet <= 0 {
		c.Fleet = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Fleet {
		c.Workers = c.Fleet
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = attack.Scenarios()
	}
	if len(c.Regimes) == 0 {
		c.Regimes = []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE}
	}
	if c.TrafficPeriod <= 0 {
		c.TrafficPeriod = time.Millisecond
	}
	if c.TrafficHorizon <= 0 {
		c.TrafficHorizon = 50 * time.Millisecond
	}
	if c.Speed == 0 {
		c.Speed = 88
	}
}

// VehicleSeed derives the deterministic seed of vehicle index from the root
// seed (a SplitMix64 output step, so neighbouring indices decorrelate).
func VehicleSeed(root uint64, index int) uint64 {
	z := root + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// VIN formats the deterministic vehicle identifier for an index.
func VIN(index int) string { return fmt.Sprintf("VIN-%06d", index) }

// macCheck is one precomputed least-privilege probe: the security contexts
// are built once per fleet run instead of re-rendering the SELinux type
// strings for every vehicle (string formatting was ~10% of a sweep's CPU).
type macCheck struct {
	src, tgt mac.Context
}

// shared holds the immutable artifacts every vehicle reuses: the compiled
// policy and cycle model (inside the harness), the derived MAC module and
// the precomputed probe contexts.
type shared struct {
	cfg       Config
	harness   *attack.Harness
	macModule *mac.Module
	probes    []macCheck // legitimate catalog writers, in catalog order
	spoof     macCheck   // the infotainment→ECU spoof probe
}

// buildProbes precomputes the least-privilege probe contexts.
func buildProbes(sh *shared) {
	for _, m := range car.Catalog {
		for _, w := range m.Writers {
			sh.probes = append(sh.probes, macCheck{
				src: core.MACContext(w),
				tgt: core.MessageContext(m.ID),
			})
		}
	}
	sh.spoof = macCheck{
		src: core.MACContext(car.NodeInfotainment),
		tgt: core.MessageContext(car.IDECUCommand),
	}
}

// Run executes the fleet sweep and merges per-vehicle outcomes in vehicle
// order.
func Run(cfg Config) (*FleetReport, error) {
	cfg.applyDefaults()
	h := cfg.Harness
	if h == nil {
		var err error
		if h, err = attack.NewHarness(); err != nil {
			return nil, err
		}
	}
	sh := &shared{cfg: cfg, harness: h}
	if !cfg.SkipMAC {
		analysis, err := car.Analyze()
		if err != nil {
			return nil, err
		}
		module, err := core.DeriveMACModule(analysis, "car-base", 1)
		if err != nil {
			return nil, err
		}
		sh.macModule = module
		buildProbes(sh)
	}

	// Work distribution is a shared atomic cursor, not a channel: the old
	// unbuffered-channel dispatcher made the feeding goroutine a
	// serialization point at fleet=1000 (one rendezvous per vehicle).
	// Claiming indices with a fetch-add keeps vehicle order deterministic
	// (reports are slotted by index) with zero coordination cost.
	reports := make([]VehicleReport, cfg.Fleet)
	errs := make([]error, cfg.Fleet)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ar *arena
			if !cfg.FreshVehicles {
				var err error
				if ar, err = newArena(sh); err != nil {
					// Arena construction only fails on programming errors;
					// record it once, then drain this worker's share of the
					// cursor so the run still terminates.
					reported := false
					for {
						i := int(next.Add(1)) - 1
						if i >= cfg.Fleet {
							return
						}
						if !reported {
							errs[i] = err
							reported = true
						}
					}
				}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Fleet {
					return
				}
				if ar != nil {
					reports[i], errs[i] = ar.runVehicle(sh, i)
				} else {
					reports[i], errs[i] = runVehicle(sh, i)
				}
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return merge(cfg, reports), nil
}

// arena is one worker's reusable vehicle stack: the attack arena (car +
// pooled policy engines) and a single-owner MAC server with the derived
// module loaded. Constructed once per worker; every vehicle the worker
// claims resets it in place instead of rebuilding ~7000 topologies per
// thousand-vehicle sweep.
type arena struct {
	att *attack.Arena
	srv *mac.Server
}

func newArena(sh *shared) (*arena, error) {
	att, err := sh.harness.NewArena()
	if err != nil {
		return nil, err
	}
	a := &arena{att: att}
	if !sh.cfg.SkipMAC {
		a.srv = mac.NewServer(mac.WithSingleOwner())
		if err := a.srv.Load(sh.macModule); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// runVehicle is the pooled counterpart of the package-level runVehicle:
// identical phases, identical outcomes, zero reconstruction.
func (a *arena) runVehicle(sh *shared, index int) (VehicleReport, error) {
	seed := VehicleSeed(sh.cfg.RootSeed, index)
	rep := VehicleReport{Index: index, VIN: VIN(index), Seed: seed}

	// Live background simulation on the reset vehicle with re-provisioned
	// pooled engines.
	if !sh.cfg.SkipLive {
		c, err := a.att.StartLive(car.Config{Seed: seed, ErrorRate: sh.cfg.ErrorRate})
		if err != nil {
			return rep, err
		}
		c.StartTraffic(sh.cfg.TrafficPeriod, sh.cfg.TrafficHorizon, sh.cfg.Speed)
		c.Scheduler().Run()
		collectLive(&rep, c)
	}

	// MAC least-privilege probe on the reset pooled server.
	if !sh.cfg.SkipMAC {
		a.srv.Reset()
		macProbe(&rep, a.srv, sh)
	}

	// Per-vehicle attack matrix on the pooled vehicle.
	a.att.SetSeed(seed)
	matrix, err := a.att.RunMatrix(sh.cfg.Scenarios, sh.cfg.Regimes...)
	if err != nil {
		return rep, err
	}
	rep.Attacks = matrix.Regimes
	return rep, nil
}

// runVehicle simulates one vehicle end to end from scratch: the live
// background simulation with a provisioned HPE stack, the MAC
// least-privilege probe, and the per-vehicle attack matrix sweep.
func runVehicle(sh *shared, index int) (VehicleReport, error) {
	seed := VehicleSeed(sh.cfg.RootSeed, index)
	rep := VehicleReport{Index: index, VIN: VIN(index), Seed: seed}

	// Live background simulation: this vehicle's own scheduler, bus, car and
	// deployed policy engines, driven over the configured horizon.
	if !sh.cfg.SkipLive {
		c, err := car.New(car.Config{Seed: seed, ErrorRate: sh.cfg.ErrorRate})
		if err != nil {
			return rep, err
		}
		if _, err := hpe.Deploy(c.Bus(), sh.harness.Compiled, c, sh.harness.Cycles, car.AllNodes...); err != nil {
			return rep, err
		}
		c.StartTraffic(sh.cfg.TrafficPeriod, sh.cfg.TrafficHorizon, sh.cfg.Speed)
		c.Scheduler().Run()
		collectLive(&rep, c)
	}

	// MAC stack: a per-vehicle server loaded with the derived
	// type-enforcement module.
	if !sh.cfg.SkipMAC {
		srv := mac.NewServer()
		if err := srv.Load(sh.macModule); err != nil {
			return rep, err
		}
		macProbe(&rep, srv, sh)
	}

	// Per-vehicle attack matrix: the full scenario x regime sweep, seeded
	// with this vehicle's seed.
	matrix, err := sh.harness.WithSeed(seed).RunMatrix(sh.cfg.Scenarios, sh.cfg.Regimes...)
	if err != nil {
		return rep, err
	}
	rep.Attacks = matrix.Regimes
	return rep, nil
}

// collectLive folds the live background simulation's bus and scheduler
// counters into the vehicle report.
func collectLive(rep *VehicleReport, c *car.Car) {
	bs := c.Bus().Stats()
	rep.FramesDelivered = bs.FramesDelivered
	rep.BusErrors = bs.Errors
	rep.WriteBlocked = bs.WriteBlocked
	rep.ReadBlocked = bs.ReadBlocked
	rep.AbortedTx = bs.AbortedTx
	rep.Utilisation = c.Bus().Utilisation()
	rep.SchedulerSteps = c.Scheduler().Steps()
}

// macProbe runs the least-privilege probe: every legitimate catalog writer
// must be allowed, plus one spoof path (infotainment commanding the ECU)
// that must not be.
func macProbe(rep *VehicleReport, srv *mac.Server, sh *shared) {
	for _, p := range sh.probes {
		rep.MACChecks++
		if srv.Check(p.src, p.tgt, core.MACClassCAN, core.MACPermWrite).Allowed {
			rep.MACAllowed++
		}
	}
	rep.MACChecks++
	if srv.Check(sh.spoof.src, sh.spoof.tgt, core.MACClassCAN, core.MACPermWrite).Allowed {
		rep.MACAllowed++ // would indicate a broken least-privilege matrix
	}
}

// merge folds per-vehicle reports (in index order) into the fleet report.
func merge(cfg Config, vehicles []VehicleReport) *FleetReport {
	fr := &FleetReport{
		Fleet:    cfg.Fleet,
		Workers:  cfg.Workers,
		RootSeed: cfg.RootSeed,
		Vehicles: vehicles,
		Attacks:  make([]attack.RegimeSummary, len(cfg.Regimes)),
	}
	for i, enf := range cfg.Regimes {
		fr.Attacks[i].Regime = enf
	}
	var utilSum float64
	for _, v := range vehicles {
		fr.FramesDelivered += v.FramesDelivered
		fr.BusErrors += v.BusErrors
		fr.WriteBlocked += v.WriteBlocked
		fr.ReadBlocked += v.ReadBlocked
		fr.AbortedTx += v.AbortedTx
		fr.MACChecks += v.MACChecks
		fr.MACAllowed += v.MACAllowed
		utilSum += v.Utilisation
		for i := range v.Attacks {
			fr.Attacks[i].Summary.Merge(v.Attacks[i].Summary)
		}
	}
	if len(vehicles) > 0 {
		fr.MeanUtilisation = utilSum / float64(len(vehicles))
	}
	return fr
}
