// Package engine is the fleet-scale simulation engine: it runs N independent
// vehicle simulations — each owning its own sim.Scheduler, canbus.Bus,
// car.Car and HPE/MAC stack — across a bounded worker pool and merges the
// per-vehicle outcomes into one fleet-wide report.
//
// The paper's evaluation (§V) drives a single connected car; its update
// story (§V-A.2) is about an OEM operating a population of them. The engine
// is the unit of scale that bridges the two: fleet sweeps of the Table I
// attack matrix, population-wide bus metrics, and live vehicles for the
// staged policy rollout in internal/fleet.
//
// # Pooled arenas
//
// By default each worker constructs its simulation stack once — an
// attack.Arena (car + per-node policy engines) and a single-owner MAC
// server — and resets it in place between the live background simulation,
// the MAC probe and every scenario×regime cell. A thousand-vehicle sweep
// therefore builds `workers` vehicle stacks instead of ~7000, which is
// worth ~3.6x in fleet-sweep throughput. Config.FreshVehicles selects the
// from-scratch reference path; both render byte-identical reports.
//
// # Vehicle-major scenario groups
//
// A run may carry multiple ScenarioGroups (a compiled campaign's families):
// the sweep then visits each vehicle once — live background phase, then
// every group's scenario×regime cells back to back on the same warm arena —
// instead of one barriered pass per family. Each group carries its own
// fleet root, so every (group, vehicle) block stays a pure function of its
// seeds; cross-group isolation rests on the arena's reset-equals-fresh
// contract (each cell resets the vehicle).
//
// # Batched evaluation
//
// By default the sweep runs batched: scenario groups are planned into
// prefix-sharing buckets (attack.PlanBatches), each worker's arena replays a
// bucket's shared pre-attack prefix once per enforcement regime and forks
// the remaining cells from a checkpoint, and — because attack cells never
// enable bus error injection, the only seed consumer in the substrate — each
// worker computes its first vehicle fully and reuses the seed-invariant
// parts (attack aggregates always; live counters when ErrorRate is zero; MAC
// probe counts always) for every later vehicle it claims. Config.NoBatch
// selects the cell-by-cell oracle path instead; both render byte-identical
// reports, which the equivalence tests and the CI smoke job assert.
//
// # Determinism
//
// Every vehicle derives its seed from the root seed via a SplitMix64 step,
// so vehicle i behaves identically regardless of which worker runs it or in
// what order vehicles are scheduled. Reports are merged in vehicle-index
// order; two runs with the same Config produce byte-identical rendered
// reports whatever the worker count, with or without pooling.
//
// # Failure containment
//
// All cell execution runs under a supervisor (supervisor.go): a cell that
// panics, fails its arena integrity checksum, overruns its virtual-time
// budget or hits a non-quiescent capture is quarantined and retried (up to
// Config.MaxRetries, rebuilding the pooled arena where the failure class
// demands it); a cell that exhausts its batched retries demotes the rest of
// the vehicle's visit to the cell-by-cell oracle; only a cell failing every
// rung makes Run return an error — and even then Run returns the merged
// partial report alongside it. Config.Chaos arms deterministic fault
// injection (internal/chaos) for drilling these paths, and
// Config.VerifySample cross-checks a deterministic fraction of batched
// cells against the oracle inline. Containment history accumulates in the
// report's Health ledger, itself a pure function of the config — arming
// chaos or sampling disables cross-vehicle memoisation so every vehicle
// really executes its cells. See DESIGN.md §11.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/car"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mac"
)

// ScenarioGroup is one independently seeded scenario×regime block of a
// vehicle visit — a campaign family, in campaign terms. A multi-group run
// sweeps every group against each vehicle in one pass: the worker claims the
// vehicle, runs the live background phase once, then executes group after
// group on the same warm arena. Per-group summaries are kept separate so the
// caller can fold them however its report requires.
type ScenarioGroup struct {
	// Name labels the group in the merged report (informational).
	Name string
	// Scenarios is the group's attack matrix (required).
	Scenarios []attack.Scenario
	// Regimes is the group's enforcement sweep (required).
	Regimes []attack.Enforcement
	// RootSeed feeds the group's per-vehicle seed derivation: vehicle i runs
	// this group with VehicleSeed(RootSeed, i), so groups decorrelate while
	// each remains a pure function of (group root, vehicle index).
	RootSeed uint64
}

// Config parameterises a fleet run.
type Config struct {
	// Fleet is the number of vehicles simulated (default 1).
	Fleet int
	// Workers bounds the worker pool (default runtime.GOMAXPROCS(0)).
	Workers int
	// RootSeed feeds per-vehicle seed derivation.
	RootSeed uint64
	// IndexOffset shifts this run's vehicle indices into the global fleet
	// index space: the run simulates global vehicles [IndexOffset,
	// IndexOffset+Fleet). Seeds, VINs, and every supervision coordinate
	// (chaos fault rolls, verify sampling) key on the global index, so a
	// sharded sweep — N runs covering contiguous ranges — gives every
	// vehicle exactly the trajectory the unsharded run would, whatever the
	// shard layout. Zero (the default) is the unsharded whole-fleet run.
	IndexOffset int
	// Scenarios is the attack matrix swept per vehicle
	// (default attack.Scenarios(), the full Table I set).
	Scenarios []attack.Scenario
	// Regimes are the enforcement configurations swept per vehicle
	// (default none + hpe, the paper's baseline-vs-defence comparison).
	Regimes []attack.Enforcement
	// Groups optionally supplies multiple scenario groups swept per vehicle
	// visit (the vehicle-major campaign executor). When set, Scenarios,
	// Regimes and RootSeed are ignored for the attack sweeps — each group
	// carries its own — and the live background phase derives its seed from
	// the first group's root. When empty, the run is the single-group legacy
	// shape built from Scenarios/Regimes/RootSeed.
	Groups []ScenarioGroup
	// TrafficPeriod is the legitimate-traffic period of the live background
	// simulation (default 1ms).
	TrafficPeriod time.Duration
	// TrafficHorizon is the virtual span of the live background simulation
	// (default 50ms).
	TrafficHorizon time.Duration
	// Speed is the simulated vehicle speed for legitimate traffic.
	Speed uint16
	// ErrorRate enables bus error injection in the background simulation.
	ErrorRate float64
	// FreshVehicles disables vehicle pooling: every vehicle (and every
	// scenario×regime cell inside it) constructs its simulation stack from
	// scratch, as the engine originally did. Pooled (default) and fresh
	// runs produce byte-identical reports; the fresh path survives as the
	// reference implementation the reset-equivalence tests compare against.
	FreshVehicles bool
	// Harness optionally supplies a pre-built attack harness (compiled
	// policy + cycle model) the run reuses instead of deriving its own —
	// campaign sweeps call Run once per scenario family and share one
	// harness across all of them.
	Harness *attack.Harness
	// PolicyBackend names the policy backend vehicles enforce with ("table",
	// "expr", "closure"; empty = table). Ignored when Harness is supplied —
	// the harness already carries its backend.
	PolicyBackend string
	// SkipLive skips the per-vehicle live background simulation phase (its
	// bus counters and utilisation report as zero). Campaign sweeps enable
	// it for every family after the first.
	SkipLive bool
	// SkipMAC skips the per-vehicle MAC least-privilege probe (and the MAC
	// module derivation entirely).
	SkipMAC bool
	// NoBatch disables the batched executor: no prefix-checkpointed scenario
	// batching and no cross-vehicle memoisation — every vehicle and every
	// scenario×regime cell runs through the cell-by-cell oracle path. Batched
	// (default) and oracle runs render byte-identical reports; the oracle
	// survives as the reference the equivalence tests and the CI batched
	// smoke job compare against.
	NoBatch bool
	// Chaos optionally arms deterministic fault injection: the plan decides,
	// as a pure function of (vehicle, group, regime, scenario, attempt)
	// coordinates, which cells panic, corrupt their checkpoint restore,
	// overrun their deadline, or crash the whole vehicle visit. An active
	// plan disables cross-vehicle memoisation so every vehicle actually
	// executes its cells. Nil means no injection (the supervisor still
	// contains organic failures).
	Chaos *chaos.Plan
	// VerifySample, when positive, cross-checks that deterministic fraction
	// of batched (checkpoint-forked) cells against the cell-by-cell oracle
	// inline. A mismatch is booked in the Health ledger, demotes the vehicle
	// to the oracle path, and the oracle's result stands. Like Chaos, a
	// non-zero sample rate disables memoisation.
	VerifySample float64
	// MaxRetries bounds the supervisor's retry budget per rung: a failing
	// cell gets MaxRetries batched retries, then (demoted) MaxRetries oracle
	// retries; a crashing vehicle visit gets MaxRetries re-runs. Default 2.
	MaxRetries int
	// CellTimeBudget is the virtual-clock watchdog: a cell that leaves the
	// simulated clock past this budget is quarantined as a deadline overrun.
	// Virtual time, not wall time — healthy cells finish in simulated
	// milliseconds. Default 1 minute.
	CellTimeBudget time.Duration
	// OnVehicle, when non-nil, is invoked once per completed vehicle
	// report in ascending vehicle-index order, as soon as every
	// lower-indexed vehicle has also completed — the streaming emit hook
	// the binary shard wire writes frames from. Callbacks run serialised
	// under an internal lock (never concurrently) on worker goroutines;
	// the report pointer is only valid for the duration of the call.
	// Errored vehicles still emit their (partial) report, mirroring how
	// Run merges partial reports into the fleet result. Because vehicles
	// are claimed in index order off an atomic cursor, completion order
	// tracks index order and the emitter's reorder window stays near the
	// worker count.
	OnVehicle func(*VehicleReport)
}

func (c *Config) applyDefaults() error {
	if c.Fleet <= 0 {
		c.Fleet = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Fleet {
		c.Workers = c.Fleet
	}
	if len(c.Groups) == 0 {
		// Legacy single-group shape: the defaulted Scenarios/Regimes swept
		// under the run's root seed. With explicit Groups these fields are
		// ignored, so their defaults are not even built.
		if len(c.Scenarios) == 0 {
			c.Scenarios = attack.Scenarios()
		}
		if len(c.Regimes) == 0 {
			c.Regimes = []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE}
		}
		c.Groups = []ScenarioGroup{{Scenarios: c.Scenarios, Regimes: c.Regimes, RootSeed: c.RootSeed}}
	}
	for i := range c.Groups {
		if len(c.Groups[i].Scenarios) == 0 {
			return fmt.Errorf("engine: group %d (%q) has no scenarios", i, c.Groups[i].Name)
		}
		if len(c.Groups[i].Regimes) == 0 {
			return fmt.Errorf("engine: group %d (%q) has no regimes", i, c.Groups[i].Name)
		}
	}
	if c.TrafficPeriod <= 0 {
		c.TrafficPeriod = time.Millisecond
	}
	if c.TrafficHorizon <= 0 {
		c.TrafficHorizon = 50 * time.Millisecond
	}
	if c.Speed == 0 {
		c.Speed = 88
	}
	return nil
}

// VehicleSeed derives the deterministic seed of vehicle index from the root
// seed (a SplitMix64 output step, so neighbouring indices decorrelate).
func VehicleSeed(root uint64, index int) uint64 {
	z := root + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// VIN formats the deterministic vehicle identifier for an index.
func VIN(index int) string { return fmt.Sprintf("VIN-%06d", index) }

// macCheck is one precomputed least-privilege probe: the security contexts
// are built once per fleet run instead of re-rendering the SELinux type
// strings for every vehicle (string formatting was ~10% of a sweep's CPU).
type macCheck struct {
	src, tgt mac.Context
}

// shared holds the immutable artifacts every vehicle reuses: the compiled
// policy and cycle model (inside the harness), the derived MAC module and
// the precomputed probe contexts.
type shared struct {
	cfg       Config
	harness   *attack.Harness
	macModule *mac.Module
	probes    []macCheck // legitimate catalog writers, in catalog order
	spoof     macCheck   // the infotainment→ECU spoof probe
	// plans holds one prefix-bucketed batch plan per group (nil when
	// Config.NoBatch): plans are immutable, so all workers share them.
	plans []*attack.BatchPlan
	// sup is the resolved supervision configuration (chaos plan, verify
	// sampling, retry budget, deadline budget) every worker consults.
	sup supervisorCfg
}

// vehicleMemo caches the parts of one worker's first fully-computed vehicle
// that are provably invariant across vehicle seeds, so every later vehicle
// the worker claims copies them instead of re-simulating. The invariance is
// structural, not assumed: a vehicle seed's only consumer in the simulation
// substrate is the bus error-injection RNG, attack cells always reset the
// vehicle with error injection disabled (so attack aggregates never depend
// on the seed), the MAC probe is a pure function of the derived module, and
// the live phase consumes the RNG only when Config.ErrorRate is non-zero —
// the one case liveOK is never set. One memo per worker (never shared):
// writes stay single-owner like the arena they ride with.
type vehicleMemo struct {
	attacks               [][]attack.RegimeSummary // per-group aggregates, copied per vehicle
	attacksOK             bool
	live                  VehicleReport // live-phase counters only
	liveOK                bool
	macChecks, macAllowed int
	macOK                 bool
}

// buildProbes precomputes the least-privilege probe contexts.
func buildProbes(sh *shared) {
	for _, m := range car.Catalog {
		for _, w := range m.Writers {
			sh.probes = append(sh.probes, macCheck{
				src: core.MACContext(w),
				tgt: core.MessageContext(m.ID),
			})
		}
	}
	sh.spoof = macCheck{
		src: core.MACContext(car.NodeInfotainment),
		tgt: core.MessageContext(car.IDECUCommand),
	}
}

// Run executes the fleet sweep and merges per-vehicle outcomes in vehicle
// order. With Config.Groups set, the sweep is vehicle-major: each claimed
// vehicle runs its live background phase once and then every group's
// scenario×regime cells back to back on the same warm arena — one pass over
// the fleet, no per-group barrier, no per-group worker-pool or arena
// rebuild.
func Run(cfg Config) (*FleetReport, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	h := cfg.Harness
	if h == nil {
		var err error
		if h, err = attack.NewHarnessBackend(cfg.PolicyBackend); err != nil {
			return nil, err
		}
	}
	sh := &shared{cfg: cfg, harness: h}
	sh.sup = supervisorCfg{
		plan:       cfg.Chaos,
		verify:     cfg.VerifySample,
		verifySeed: cfg.RootSeed,
		maxRetries: cfg.MaxRetries,
		timeBudget: cfg.CellTimeBudget,
	}
	if sh.sup.maxRetries <= 0 {
		sh.sup.maxRetries = defaultMaxRetries
	}
	if sh.sup.timeBudget <= 0 {
		sh.sup.timeBudget = defaultTimeBudget
	}
	if !cfg.NoBatch {
		sh.plans = make([]*attack.BatchPlan, len(cfg.Groups))
		for gi := range cfg.Groups {
			g := &cfg.Groups[gi]
			sh.plans[gi] = attack.PlanBatches(g.Scenarios, g.Regimes...)
		}
	}
	if !cfg.SkipMAC {
		analysis, err := car.Analyze()
		if err != nil {
			return nil, err
		}
		module, err := core.DeriveMACModule(analysis, "car-base", 1)
		if err != nil {
			return nil, err
		}
		sh.macModule = module
		buildProbes(sh)
	}

	// Work distribution is a shared atomic cursor, not a channel: the old
	// unbuffered-channel dispatcher made the feeding goroutine a
	// serialization point at fleet=1000 (one rendezvous per vehicle).
	// Claiming indices with a fetch-add keeps vehicle order deterministic
	// (reports are slotted by index) with zero coordination cost.
	reports := make([]VehicleReport, cfg.Fleet)
	errs := make([]error, cfg.Fleet)
	var emit *orderedEmit
	if cfg.OnVehicle != nil {
		emit = newOrderedEmit(cfg.OnVehicle, reports)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ar *arena
			if !cfg.FreshVehicles {
				var err error
				if ar, err = newArena(sh); err != nil {
					// Arena construction only fails on programming errors;
					// record it once, then drain this worker's share of the
					// cursor so the run still terminates.
					reported := false
					for {
						i := int(next.Add(1)) - 1
						if i >= cfg.Fleet {
							return
						}
						if !reported {
							errs[i] = err
							reported = true
						}
						if emit != nil {
							emit.complete(i)
						}
					}
				}
			}
			var memo *vehicleMemo
			// Memoisation is off whenever supervision is armed: memoised
			// vehicles execute no cells, which would both dodge their
			// injected faults and leave the Health ledger dependent on
			// which vehicles each worker happened to compute first.
			if !cfg.NoBatch && !sh.sup.chaotic() {
				memo = &vehicleMemo{}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Fleet {
					return
				}
				// Simulate under the global fleet index (shifted by the
				// shard offset); the report still lands in the local slot so
				// merge order stays range-local.
				if ar != nil {
					reports[i], errs[i] = ar.runVehicle(sh, i+cfg.IndexOffset, memo)
				} else {
					reports[i], errs[i] = runVehicle(sh, i+cfg.IndexOffset, memo)
				}
				if emit != nil {
					emit.complete(i)
				}
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Unrecoverable vehicles surface as an error, but the sweep still
		// merges what every vehicle did complete: callers flush the partial
		// fleet report (with its Health ledger) alongside the failure.
		return merge(cfg, reports), err
	}
	return merge(cfg, reports), nil
}

// arena is one worker's reusable vehicle stack: the attack arena (car +
// pooled policy engines) and a single-owner MAC server with the derived
// module loaded. Constructed once per worker; every vehicle the worker
// claims resets it in place instead of rebuilding ~7000 topologies per
// thousand-vehicle sweep.
type arena struct {
	att *attack.Arena
	srv *mac.Server
}

func newArena(sh *shared) (*arena, error) {
	att, err := sh.harness.NewArena()
	if err != nil {
		return nil, err
	}
	a := &arena{att: att}
	if !sh.cfg.SkipMAC {
		a.srv = mac.NewServer(mac.WithSingleOwner())
		if err := a.srv.Load(sh.macModule); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// runVehicle is the pooled counterpart of the package-level runVehicle:
// identical phases, identical outcomes, zero reconstruction. One call is one
// supervised vehicle *visit*: the live phase once, then every scenario
// group's cells back to back on the same warm arena, each cell behind the
// supervisor's containment ladder — cross-group isolation rests on the
// arena's reset-equals-fresh contract, which resets the vehicle per cell. A
// non-nil memo (the batched, unsupervised default) reuses the worker's first
// vehicle's seed-invariant phases for every later one. A crash (injected or
// organic panic at visit scope) rebuilds the worker's arena and re-runs the
// vehicle.
func (a *arena) runVehicle(sh *shared, index int, memo *vehicleMemo) (VehicleReport, error) {
	return superviseVisit(&sh.sup,
		func(attempt int, h *Health) (VehicleReport, error) {
			return a.visit(sh, index, memo, attempt, h)
		},
		func() error {
			na, err := newArena(sh)
			if err != nil {
				return err
			}
			*a = *na
			return nil
		})
}

// visit is one attempt of one pooled vehicle visit.
func (a *arena) visit(sh *shared, index int, memo *vehicleMemo, attempt int, h *Health) (rep VehicleReport, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: vehicle %d: %v", ErrVehicleCrash, index, p)
		}
	}()
	seed := VehicleSeed(sh.cfg.Groups[0].RootSeed, index)
	rep = VehicleReport{Index: index, VIN: VIN(index), Seed: seed}

	// Live background simulation on the reset vehicle with re-provisioned
	// pooled engines.
	if !sh.cfg.SkipLive {
		if memo != nil && memo.liveOK {
			copyLive(&rep, &memo.live)
		} else {
			c, lerr := a.att.StartLive(car.Config{Seed: seed, ErrorRate: sh.cfg.ErrorRate})
			if lerr != nil {
				return rep, lerr
			}
			c.StartTraffic(sh.cfg.TrafficPeriod, sh.cfg.TrafficHorizon, sh.cfg.Speed)
			c.Scheduler().Run()
			collectLive(&rep, c)
			if memo != nil && sh.cfg.ErrorRate == 0 {
				copyLive(&memo.live, &rep)
				memo.liveOK = true
			}
		}
	}

	// MAC least-privilege probe on the reset pooled server.
	if !sh.cfg.SkipMAC {
		if memo != nil && memo.macOK {
			rep.MACChecks, rep.MACAllowed = memo.macChecks, memo.macAllowed
		} else {
			a.srv.Reset()
			macProbe(&rep, a.srv, sh)
			if memo != nil {
				memo.macChecks, memo.macAllowed = rep.MACChecks, rep.MACAllowed
				memo.macOK = true
			}
		}
	}

	// Every group's scenario×regime block on the pooled vehicle, reseeded
	// per group so each block is a pure function of (group root, index),
	// every cell supervised. The demotion latch spans the visit: once any
	// cell falls back to the oracle, the rest of the vehicle follows.
	rep.Groups = make([][]attack.RegimeSummary, len(sh.cfg.Groups))
	if memo != nil && memo.attacksOK {
		for gi := range memo.attacks {
			rep.Groups[gi] = append([]attack.RegimeSummary(nil), memo.attacks[gi]...)
		}
	} else {
		var demoted bool
		for gi := range sh.cfg.Groups {
			g := &sh.cfg.Groups[gi]
			if sh.sup.plan.CrashFault(index, gi, attempt) {
				panic(&chaos.InjectedCrash{Vehicle: index, Group: gi, Attempt: attempt})
			}
			gseed := VehicleSeed(g.RootSeed, index)
			a.att.SetSeed(gseed)
			e := &cellExec{
				sup: &sh.sup, health: h, sh: sh, owner: a,
				vehicle: index, group: gi, seed: gseed, demoted: &demoted,
			}
			if sh.plans != nil {
				e.br = a.att.NewBatchRun(sh.plans[gi])
			}
			sums, gerr := runGroupCells(e, g)
			rep.Groups[gi] = sums
			if gerr != nil {
				return rep, fmt.Errorf("group %d (%q): %w", gi, g.Name, gerr)
			}
		}
		memoizeAttacks(memo, rep.Groups)
	}
	rep.Attacks = foldGroups(rep.Groups)
	return rep, nil
}

// memoizeAttacks stores deep copies of one vehicle's per-group aggregates in
// the worker memo. Copies both ways (store and replay) — a memoized slice
// must never alias a report's, or foldGroups merging into one vehicle's view
// would corrupt every later vehicle's.
func memoizeAttacks(memo *vehicleMemo, groups [][]attack.RegimeSummary) {
	if memo == nil {
		return
	}
	memo.attacks = make([][]attack.RegimeSummary, len(groups))
	for gi := range groups {
		memo.attacks[gi] = append([]attack.RegimeSummary(nil), groups[gi]...)
	}
	memo.attacksOK = true
}

// copyLive copies the live-phase counters between vehicle reports.
func copyLive(dst, src *VehicleReport) {
	dst.FramesDelivered = src.FramesDelivered
	dst.BusErrors = src.BusErrors
	dst.WriteBlocked = src.WriteBlocked
	dst.ReadBlocked = src.ReadBlocked
	dst.AbortedTx = src.AbortedTx
	dst.Utilisation = src.Utilisation
	dst.SchedulerSteps = src.SchedulerSteps
}

// runVehicle simulates one vehicle end to end from scratch: the live
// background simulation with a provisioned HPE stack, the MAC
// least-privilege probe, and every scenario group's attack sweep (each cell
// on a freshly constructed car — the reference path pooled runs are
// compared against), every cell supervised. The memo behaves exactly as in
// the pooled variant; the first vehicle a worker computes still runs cell by
// cell on fresh cars, so fresh batched runs exercise no checkpointing, only
// memo reuse. Fresh visits have no worker stack to rebuild, so a crash
// retry simply re-runs the vehicle.
func runVehicle(sh *shared, index int, memo *vehicleMemo) (VehicleReport, error) {
	return superviseVisit(&sh.sup,
		func(attempt int, h *Health) (VehicleReport, error) {
			return visitFresh(sh, index, memo, attempt, h)
		}, nil)
}

// visitFresh is one attempt of one fresh-construction vehicle visit.
func visitFresh(sh *shared, index int, memo *vehicleMemo, attempt int, h *Health) (rep VehicleReport, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: vehicle %d: %v", ErrVehicleCrash, index, p)
		}
	}()
	seed := VehicleSeed(sh.cfg.Groups[0].RootSeed, index)
	rep = VehicleReport{Index: index, VIN: VIN(index), Seed: seed}

	// Live background simulation: this vehicle's own scheduler, bus, car and
	// deployed policy engines, driven over the configured horizon.
	if !sh.cfg.SkipLive {
		if memo != nil && memo.liveOK {
			copyLive(&rep, &memo.live)
		} else {
			c, err := car.New(car.Config{Seed: seed, ErrorRate: sh.cfg.ErrorRate})
			if err != nil {
				return rep, err
			}
			if _, err := sh.harness.DeployEngines(c.Bus(), c, car.AllNodes...); err != nil {
				return rep, err
			}
			c.StartTraffic(sh.cfg.TrafficPeriod, sh.cfg.TrafficHorizon, sh.cfg.Speed)
			c.Scheduler().Run()
			collectLive(&rep, c)
			if memo != nil && sh.cfg.ErrorRate == 0 {
				copyLive(&memo.live, &rep)
				memo.liveOK = true
			}
		}
	}

	// MAC stack: a per-vehicle server loaded with the derived
	// type-enforcement module.
	if !sh.cfg.SkipMAC {
		if memo != nil && memo.macOK {
			rep.MACChecks, rep.MACAllowed = memo.macChecks, memo.macAllowed
		} else {
			srv := mac.NewServer()
			if err := srv.Load(sh.macModule); err != nil {
				return rep, err
			}
			macProbe(&rep, srv, sh)
			if memo != nil {
				memo.macChecks, memo.macAllowed = rep.MACChecks, rep.MACAllowed
				memo.macOK = true
			}
		}
	}

	// Every group's scenario×regime sweep, seeded per group with this
	// vehicle's group-derived seed, every cell supervised on its own fresh
	// car.
	rep.Groups = make([][]attack.RegimeSummary, len(sh.cfg.Groups))
	if memo != nil && memo.attacksOK {
		for gi := range memo.attacks {
			rep.Groups[gi] = append([]attack.RegimeSummary(nil), memo.attacks[gi]...)
		}
	} else {
		var demoted bool
		for gi := range sh.cfg.Groups {
			g := &sh.cfg.Groups[gi]
			if sh.sup.plan.CrashFault(index, gi, attempt) {
				panic(&chaos.InjectedCrash{Vehicle: index, Group: gi, Attempt: attempt})
			}
			gseed := VehicleSeed(g.RootSeed, index)
			e := &cellExec{
				sup: &sh.sup, health: h, sh: sh, hv: sh.harness.WithSeed(gseed),
				vehicle: index, group: gi, seed: gseed, demoted: &demoted,
			}
			sums, gerr := runGroupCells(e, g)
			rep.Groups[gi] = sums
			if gerr != nil {
				return rep, fmt.Errorf("group %d (%q): %w", gi, g.Name, gerr)
			}
		}
		memoizeAttacks(memo, rep.Groups)
	}
	rep.Attacks = foldGroups(rep.Groups)
	return rep, nil
}

// foldGroups flattens per-group regime summaries into one aggregate per
// regime, keyed by first appearance across groups. A single-group run folds
// to exactly its group's summaries, preserving the legacy report shape. The
// result is always freshly allocated — the legacy Attacks view must never
// alias a group's own slice, or a caller folding into one would corrupt
// the other.
func foldGroups(groups [][]attack.RegimeSummary) []attack.RegimeSummary {
	if len(groups) == 1 {
		return append([]attack.RegimeSummary(nil), groups[0]...)
	}
	var out []attack.RegimeSummary
	for _, g := range groups {
		for _, rs := range g {
			merged := false
			for i := range out {
				if out[i].Regime == rs.Regime {
					out[i].Summary.Merge(rs.Summary)
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, rs)
			}
		}
	}
	return out
}

// collectLive folds the live background simulation's bus and scheduler
// counters into the vehicle report.
func collectLive(rep *VehicleReport, c *car.Car) {
	bs := c.Bus().Stats()
	rep.FramesDelivered = bs.FramesDelivered
	rep.BusErrors = bs.Errors
	rep.WriteBlocked = bs.WriteBlocked
	rep.ReadBlocked = bs.ReadBlocked
	rep.AbortedTx = bs.AbortedTx
	rep.Utilisation = c.Bus().Utilisation()
	rep.SchedulerSteps = c.Scheduler().Steps()
}

// macProbe runs the least-privilege probe: every legitimate catalog writer
// must be allowed, plus one spoof path (infotainment commanding the ECU)
// that must not be.
func macProbe(rep *VehicleReport, srv *mac.Server, sh *shared) {
	for _, p := range sh.probes {
		rep.MACChecks++
		if srv.Check(p.src, p.tgt, core.MACClassCAN, core.MACPermWrite).Allowed {
			rep.MACAllowed++
		}
	}
	rep.MACChecks++
	if srv.Check(sh.spoof.src, sh.spoof.tgt, core.MACClassCAN, core.MACPermWrite).Allowed {
		rep.MACAllowed++ // would indicate a broken least-privilege matrix
	}
}

// Merge folds externally produced per-vehicle reports into one fleet report,
// exactly as Run does for its own workers: aggregates are summed, Health
// ledgers merged, and MeanUtilisation re-folded over the vehicle slice in
// order — so a sharded sweep that concatenates its shards' vehicles in range
// order renders byte-identically to the unsharded run (float summation order
// included). cfg must describe the whole fleet (total Fleet, the unsharded
// Workers value, zero IndexOffset); the same defaults Run applies are
// applied here so the report header matches.
func Merge(cfg Config, vehicles []VehicleReport) (*FleetReport, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return merge(cfg, vehicles), nil
}

// merge folds per-vehicle reports (in index order) into the fleet report:
// the batch form of MergeFold — the fold walked over a slice, retaining
// the slice itself as the report's vehicle view (no copy).
func merge(cfg Config, vehicles []VehicleReport) *FleetReport {
	m := newMergeFold(cfg)
	for i := range vehicles {
		m.fold(&vehicles[i])
	}
	m.fr.Vehicles = vehicles
	return m.finish()
}
