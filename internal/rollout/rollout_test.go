package rollout

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/car"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/risk"
	"repro/internal/threatmodel"
)

// testOEM returns a deterministic OEM identity plus the fleet's current set
// (the analysis-derived Table I policy).
func testOEM(t *testing.T) (*core.OEM, *policy.Set) {
	t.Helper()
	oem, err := core.NewOEM(bytes.NewReader(bytes.Repeat([]byte{0x42}, 64)))
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := car.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	current, err := threatmodel.DerivePolicies(analysis, "table-i", 1)
	if err != nil {
		t.Fatal(err)
	}
	return oem, current
}

// storeFleet provisions n policy-store vehicles all running current. failIdx
// marks vehicle indices that reject any bundle newer than their installed
// set (update failures that later retry cleanly would not drill the abort
// path). Returns the vehicles and their stores for end-state assertions.
func storeFleet(t *testing.T, oem *core.OEM, current *policy.Set, n int, failVersion uint64, failIdx ...int) ([]fleet.Vehicle, []*policy.Store) {
	t.Helper()
	base, err := oem.Issue(current)
	if err != nil {
		t.Fatal(err)
	}
	failing := map[int]bool{}
	for _, i := range failIdx {
		failing[i] = true
	}
	opts := policy.CompileOptions{Subjects: car.AllNodes, Modes: car.AllModes}
	vs := make([]fleet.Vehicle, n)
	stores := make([]*policy.Store, n)
	for i := 0; i < n; i++ {
		store := policy.NewStore(oem.PublicKey(), opts)
		if _, err := store.Apply(base); err != nil {
			t.Fatalf("provisioning vehicle %d: %v", i, err)
		}
		stores[i] = store
		idx := i
		vs[i] = fleet.VehicleFunc{
			VID: fmt.Sprintf("VIN-%03d", i),
			Fn: func(b *policy.Bundle) error {
				if s := store.CurrentSet(); s != nil && s.Version >= b.Version {
					return nil
				}
				if failing[idx] && b.Version == failVersion {
					return fmt.Errorf("simulated failure %d", idx)
				}
				_, err := store.Apply(b)
				return err
			},
		}
	}
	return vs, stores
}

// benignCandidate is the current set re-issued at the next version.
func benignCandidate(current *policy.Set) *policy.Set {
	cand := *current
	cand.Rules = append([]policy.Rule(nil), current.Rules...)
	cand.Version = current.Version + 1
	return &cand
}

// flawedCandidate opens the whole identifier space — residual risk must
// regress under any measured gate.
func flawedCandidate(current *policy.Set) *policy.Set {
	cand := benignCandidate(current)
	cand.Rules = append(cand.Rules, policy.Rule{
		Name:    "overbroad",
		Subject: policy.SubjectAll,
		Effect:  policy.Allow,
		Action:  policy.ActReadWrite,
		IDs:     policy.IDSet{{Lo: 0, Hi: 0x7FF}},
	})
	return cand
}

func gateSpec() *risk.Spec { return &risk.Spec{Model: "connected-car", Seed: 1} }

func TestRolloutCleanAdvance(t *testing.T) {
	oem, current := testOEM(t)
	cand := benignCandidate(current)
	vehicles, stores := storeFleet(t, oem, current, 40, 0)
	out, err := Run(Config{
		OEM: oem, Current: current, Candidate: cand,
		Vehicles: vehicles, GateSpec: gateSpec(), RootSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Advanced() || out.RolledBack {
		t.Fatalf("benign candidate did not advance: %s", out)
	}
	if !out.Diff.Empty() {
		t.Fatalf("benign re-issue produced a semantic diff:\n%s", out.Diff)
	}
	if len(out.Evidence) == 0 {
		t.Fatal("no gate evidence recorded")
	}
	for _, ev := range out.Evidence {
		if ev.Regressed {
			t.Fatalf("benign candidate regressed at stage %d: %+v", ev.Stage, ev)
		}
		if ev.BaselineResidual != ev.CandidateResidual {
			t.Fatalf("identical semantics measured different residuals: %+v", ev)
		}
	}
	for i, s := range stores {
		if got := s.CurrentSet().Version; got != cand.Version {
			t.Fatalf("vehicle %d at version %d, want %d", i, got, cand.Version)
		}
	}
}

func TestRolloutGateVetoRollsBack(t *testing.T) {
	oem, current := testOEM(t)
	cand := flawedCandidate(current)
	vehicles, stores := storeFleet(t, oem, current, 40, 0)
	out, err := Run(Config{
		OEM: oem, Current: current, Candidate: cand,
		Vehicles: vehicles, GateSpec: gateSpec(), RootSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.RolledBack {
		t.Fatalf("flawed candidate was not rolled back: %s", out)
	}
	if out.Report.GateVeto == "" || !strings.Contains(out.Report.GateVeto, "residual risk regressed") {
		t.Fatalf("gate veto not recorded: %q", out.Report.GateVeto)
	}
	var regressed bool
	for _, ev := range out.Evidence {
		if ev.Regressed {
			regressed = true
			if ev.CandidateResidual <= ev.BaselineResidual {
				t.Fatalf("regressed evidence without a regression: %+v", ev)
			}
		}
	}
	if !regressed {
		t.Fatal("no regressed evidence entry despite rollback")
	}
	// Version monotonicity: the rollback re-issues the prior set one past
	// the candidate, and every vehicle — canaries that took the candidate
	// included — converges on it.
	if want := cand.Version + 1; out.RollbackVersion != want {
		t.Fatalf("rollback version %d, want %d", out.RollbackVersion, want)
	}
	if out.RollbackReport.Failed != 0 {
		t.Fatalf("rollback distribution failed on %d vehicles", out.RollbackReport.Failed)
	}
	for i, s := range stores {
		got := s.CurrentSet()
		if got.Version != out.RollbackVersion {
			t.Fatalf("vehicle %d at version %d, want %d", i, got.Version, out.RollbackVersion)
		}
		if len(got.Rules) != len(current.Rules) {
			t.Fatalf("vehicle %d kept the flawed semantics (%d rules, want %d)",
				i, len(got.Rules), len(current.Rules))
		}
	}
}

func TestRolloutThresholdAbortRollsBack(t *testing.T) {
	oem, current := testOEM(t)
	cand := benignCandidate(current)
	// DefaultPlan on 40 vehicles: stage 1 covers vehicles [0, 4). Two
	// failures of four exceed the 5% threshold.
	vehicles, stores := storeFleet(t, oem, current, 40, cand.Version, 1, 2)
	out, err := Run(Config{
		OEM: oem, Current: current, Candidate: cand, Vehicles: vehicles,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.RolledBack {
		t.Fatalf("threshold abort did not roll back: %s", out)
	}
	if out.Report.GateVeto != "" {
		t.Fatalf("threshold abort recorded a gate veto: %q", out.Report.GateVeto)
	}
	if len(out.Evidence) != 0 {
		t.Fatalf("ungated run recorded evidence: %+v", out.Evidence)
	}
	for i, s := range stores {
		if got := s.CurrentSet().Version; got != out.RollbackVersion {
			t.Fatalf("vehicle %d at version %d, want %d", i, got, out.RollbackVersion)
		}
	}
}

func TestRolloutTranscriptDeterministic(t *testing.T) {
	render := func() string {
		oem, current := testOEM(t)
		cand := flawedCandidate(current)
		vehicles, _ := storeFleet(t, oem, current, 25, 0)
		out, err := Run(Config{
			OEM: oem, Current: current, Candidate: cand,
			Vehicles: vehicles, GateSpec: gateSpec(), RootSeed: 7, Shards: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a := render()
	// A different shard count must not perturb a single byte of evidence.
	oem, current := testOEM(t)
	cand := flawedCandidate(current)
	vehicles, _ := storeFleet(t, oem, current, 25, 0)
	out, err := Run(Config{
		OEM: oem, Current: current, Candidate: cand,
		Vehicles: vehicles, GateSpec: gateSpec(), RootSeed: 7, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := out.String(); a != b {
		t.Fatalf("transcript varies across shard counts:\n--- shards=1\n%s\n--- shards=3\n%s", a, b)
	}
}

func TestRolloutConfigValidation(t *testing.T) {
	oem, current := testOEM(t)
	cand := benignCandidate(current)
	vehicles, _ := storeFleet(t, oem, current, 3, 0)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil OEM", Config{Current: current, Candidate: cand, Vehicles: vehicles}},
		{"nil candidate", Config{OEM: oem, Current: current, Vehicles: vehicles}},
		{"no vehicles", Config{OEM: oem, Current: current, Candidate: cand}},
		{"non-advancing version", Config{OEM: oem, Current: cand, Candidate: current, Vehicles: vehicles}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestRolloutDuplicateVehicleIDRejected(t *testing.T) {
	oem, current := testOEM(t)
	cand := benignCandidate(current)
	vehicles, _ := storeFleet(t, oem, current, 4, 0)
	dup, _ := storeFleet(t, oem, current, 1, 0)
	vehicles = append(vehicles, dup...) // VIN-000 twice
	_, err := Run(Config{OEM: oem, Current: current, Candidate: cand, Vehicles: vehicles})
	if !errors.Is(err, fleet.ErrDuplicateID) {
		t.Fatalf("duplicate VIN not rejected: %v", err)
	}
}
