// Package rollout is the OTA policy-update driver: the long-running
// OEM-side loop the paper's §V-A.2 update story implies but never
// operationalises. It takes a fleet's current policy set and a candidate
// set, computes their semantic diff, advances the candidate through the
// staged fleet.Rollout canary cohorts, and gates every cohort on measured
// campaign evidence — a (sharded) sweep of a cohort-sized simulated fleet
// enforcing the candidate policy, whose risk.Calibrate residual risk must
// not regress versus the same sweep under the current policy — rolling the
// whole fleet back to the prior set automatically when a gate vetoes or a
// stage crosses the abort threshold.
//
// Rollback under version monotonicity: devices refuse downgrades, so the
// rollback is the prior set re-issued at candidate.Version+1 — semantically
// the old policy, versionally a fresh update — exactly how a fielded OEM
// must retreat without breaking replay protection.
//
// Determinism: the transcript (diff, stage cohorts, residual evidence,
// verdict) is a pure function of (sets, vehicles, plan, gate spec, seeds).
// Wall-clock telemetry — continuous vehicles/s and decisions/s lines from
// the gate sweeps — goes to the separate Telemetry writer, never into the
// Outcome. See DESIGN.md §13.
package rollout

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/risk"
)

// Config parameterises one rollout run.
type Config struct {
	// OEM signs the candidate bundle and, on abort, the rollback re-issue.
	OEM *core.OEM
	// Current is the set the fleet runs today; Candidate the proposed one.
	// Candidate.Version must exceed Current.Version (store monotonicity).
	Current, Candidate *policy.Set
	// Vehicles are the update endpoints, driven through fleet.Rollout.
	Vehicles []fleet.Vehicle
	// Plan stages the rollout (zero value: fleet.DefaultPlan()).
	Plan fleet.Plan
	// GateSpec is the risk spec whose synthesized campaign supplies the
	// per-stage gate evidence. Nil disables evidence gating (stages advance
	// on the abort threshold alone).
	GateSpec *risk.Spec
	// Backend names the policy backend gate sweeps enforce with.
	Backend string
	// Workers bounds each gate sweep's worker pool.
	Workers int
	// Shards partitions each gate sweep's fleet index space (<=1 unsharded);
	// the evidence is byte-identical across shard counts.
	Shards int
	// RootSeed feeds gate sweeps when the spec leaves its own unset.
	RootSeed uint64
	// Tolerance is the relative residual-risk regression a gate accepts:
	// candidate residual above baseline*(1+Tolerance) vetoes the stage.
	// Zero means any measurable regression vetoes.
	Tolerance float64
	// Telemetry, when non-nil, receives continuous wall-clock telemetry
	// lines (vehicles/s, decisions/s per gate sweep). Deterministic output
	// never goes here; wall-clock output never goes anywhere else.
	Telemetry io.Writer
}

// StageEvidence records one gated stage's measured verdict.
type StageEvidence struct {
	// Stage indexes the plan stage the evidence gated.
	Stage int
	// Cohort is the gate sweep's fleet size (the stage's attempted count).
	Cohort int
	// BaselineResidual and CandidateResidual are the summed per-threat
	// residual-risk masses of the cohort sweep under the current and the
	// candidate policy.
	BaselineResidual, CandidateResidual float64
	// Regressed reports whether the candidate breached the tolerance.
	Regressed bool
}

// Outcome is the full transcript of one rollout run.
type Outcome struct {
	// CurrentVersion and CandidateVersion echo the sets.
	CurrentVersion, CandidateVersion uint64
	// Diff is the semantic difference the candidate would introduce.
	Diff policy.Diff
	// Report is the staged distribution outcome.
	Report fleet.Report
	// Evidence holds one entry per gated stage, in stage order.
	Evidence []StageEvidence
	// RolledBack reports whether the driver retreated to the prior set;
	// RollbackVersion is the re-issued version and RollbackReport the
	// distribution that restored it.
	RolledBack      bool
	RollbackVersion uint64
	RollbackReport  fleet.Report
}

// Advanced reports whether the candidate reached the whole fleet.
func (o *Outcome) Advanced() bool { return !o.Report.Aborted }

// String renders the deterministic transcript.
func (o *Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rollout: v%d -> v%d\n", o.CurrentVersion, o.CandidateVersion)
	if o.Diff.Empty() {
		b.WriteString("diff: no semantic change\n")
	} else {
		b.WriteString("diff:\n")
		lines := strings.Split(strings.TrimRight(o.Diff.String(), "\n"), "\n")
		// A blanket rule diffs as one line per (subject, mode, id); cap the
		// transcript at a readable prefix. The count line keeps the render a
		// faithful (and still deterministic) summary of the full Diff.
		const maxDiffLines = 24
		shown := lines
		if len(lines) > maxDiffLines {
			shown = lines[:maxDiffLines]
		}
		for _, line := range shown {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		if len(lines) > maxDiffLines {
			fmt.Fprintf(&b, "  ... (%d more changed cells)\n", len(lines)-maxDiffLines)
		}
	}
	b.WriteString(o.Report.String())
	for _, ev := range o.Evidence {
		verdict := "ok"
		if ev.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(&b, "gate stage %d: cohort=%d residual baseline=%.4f candidate=%.4f %s\n",
			ev.Stage, ev.Cohort, ev.BaselineResidual, ev.CandidateResidual, verdict)
	}
	if o.RolledBack {
		fmt.Fprintf(&b, "ROLLED BACK to prior set as v%d\n", o.RollbackVersion)
		b.WriteString(o.RollbackReport.String())
	} else if o.Advanced() {
		fmt.Fprintf(&b, "advanced: fleet now runs v%d\n", o.CandidateVersion)
	}
	return b.String()
}

// residualGate measures cohort-sized gate sweeps lazily: per distinct cohort
// size, one sweep under the current set and one under the candidate, both
// from the same spec and seeds, residuals compared under the tolerance.
type residualGate struct {
	cfg      *Config
	baseH    *attack.Harness
	candH    *attack.Harness
	outcome  *Outcome
	byCohort map[int]StageEvidence
}

func newResidualGate(cfg *Config, outcome *Outcome) (*residualGate, error) {
	baseH, err := attack.NewHarnessFromSet(cfg.Current, cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("rollout: current-set harness: %w", err)
	}
	candH, err := attack.NewHarnessFromSet(cfg.Candidate, cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("rollout: candidate-set harness: %w", err)
	}
	return &residualGate{
		cfg: cfg, baseH: baseH, candH: candH,
		outcome: outcome, byCohort: map[int]StageEvidence{},
	}, nil
}

// residual sweeps a cohort-sized fleet enforcing with h and returns the
// profile's summed residual-risk mass, emitting one telemetry line.
func (g *residualGate) residual(label string, cohort int, h *attack.Harness) (float64, error) {
	spec := *g.cfg.GateSpec
	spec.Fleet = cohort // cohort sizing wins over the spec's own pin
	start := time.Now()
	out, err := risk.Run(&spec, risk.RunConfig{
		Fleet:    cohort,
		Workers:  g.cfg.Workers,
		RootSeed: g.cfg.RootSeed,
		Harness:  h,
		Shards:   g.cfg.Shards,
	})
	if err != nil {
		return 0, fmt.Errorf("gate sweep (%s, cohort %d): %w", label, cohort, err)
	}
	elapsed := time.Since(start).Seconds()
	total := 0.0
	for _, tc := range out.Profile.Threats {
		total += tc.Residual
	}
	if g.cfg.Telemetry != nil && elapsed > 0 {
		// One decision per swept cell: a scenario x regime x vehicle verdict.
		fmt.Fprintf(g.cfg.Telemetry, "telemetry: gate=%s cohort=%d vehicles/s=%.0f decisions/s=%.0f\n",
			label, cohort, float64(cohort)/elapsed, float64(out.Report.Cells)/elapsed)
	}
	return total, nil
}

// check is the fleet.Plan.Gate hook: measure the stage's cohort, veto on
// residual regression. Distinct stages with equal cohort sizes reuse the
// measured pair — the sweeps are pure functions of (spec, seeds, cohort).
func (g *residualGate) check(sr fleet.StageReport) error {
	ev, ok := g.byCohort[sr.Attempted]
	if !ok {
		base, err := g.residual("baseline", sr.Attempted, g.baseH)
		if err != nil {
			return err
		}
		cand, err := g.residual("candidate", sr.Attempted, g.candH)
		if err != nil {
			return err
		}
		ev = StageEvidence{
			Cohort:            sr.Attempted,
			BaselineResidual:  base,
			CandidateResidual: cand,
			Regressed:         cand > base*(1+g.cfg.Tolerance),
		}
		g.byCohort[sr.Attempted] = ev
	}
	ev.Stage = sr.Stage
	g.outcome.Evidence = append(g.outcome.Evidence, ev)
	if ev.Regressed {
		return fmt.Errorf("residual risk regressed at cohort %d: baseline %.4f, candidate %.4f",
			ev.Cohort, ev.BaselineResidual, ev.CandidateResidual)
	}
	return nil
}

// Run drives one full OTA update: diff, staged rollout with per-stage
// evidence gates, and automatic rollback on abort. The returned Outcome is
// complete even when the candidate was rolled back; err is reserved for
// failures of the driver itself (bad config, unsignable sets, a gate sweep
// that could not run — surfaced through the rollout report's gate veto).
func Run(cfg Config) (*Outcome, error) {
	if cfg.OEM == nil {
		return nil, errors.New("rollout: nil OEM")
	}
	if cfg.Current == nil || cfg.Candidate == nil {
		return nil, errors.New("rollout: nil current or candidate set")
	}
	if cfg.Candidate.Version <= cfg.Current.Version {
		return nil, fmt.Errorf("rollout: candidate version %d does not advance current %d",
			cfg.Candidate.Version, cfg.Current.Version)
	}
	if len(cfg.Vehicles) == 0 {
		return nil, errors.New("rollout: no vehicles")
	}
	plan := cfg.Plan
	if len(plan.Stages) == 0 {
		plan = fleet.DefaultPlan()
	}

	diff, err := policy.DiffSets(cfg.Current, cfg.Candidate, policy.DiffOptions{})
	if err != nil {
		return nil, fmt.Errorf("rollout: diffing sets: %w", err)
	}
	outcome := &Outcome{
		CurrentVersion:   cfg.Current.Version,
		CandidateVersion: cfg.Candidate.Version,
		Diff:             diff,
	}

	if cfg.GateSpec != nil {
		gate, err := newResidualGate(&cfg, outcome)
		if err != nil {
			return nil, err
		}
		plan.Gate = gate.check
	}

	bundle, err := cfg.OEM.Issue(cfg.Candidate)
	if err != nil {
		return nil, fmt.Errorf("rollout: issuing candidate: %w", err)
	}
	report, err := fleet.Rollout(cfg.Vehicles, bundle, plan)
	if err != nil {
		return nil, err
	}
	outcome.Report = report
	if !report.Aborted {
		return outcome, nil
	}

	// Abort (threshold or gate veto): retreat. Version monotonicity forbids
	// downgrades, so the prior set is re-issued one past the candidate —
	// vehicles that already took the candidate move forward to the old
	// semantics, vehicles that never saw it apply the same bundle, and the
	// idempotent re-apply path keeps both converged. The rollback plan is a
	// single ungated full-fleet stage: retreating is not canaried.
	prior := *cfg.Current
	prior.Version = cfg.Candidate.Version + 1
	rbBundle, err := cfg.OEM.Issue(&prior)
	if err != nil {
		return outcome, fmt.Errorf("rollout: issuing rollback: %w", err)
	}
	rbPlan := fleet.Plan{Stages: []float64{1.0}, AbortThreshold: 0.99, Workers: plan.Workers}
	rbReport, err := fleet.Rollout(cfg.Vehicles, rbBundle, rbPlan)
	if err != nil {
		return outcome, fmt.Errorf("rollout: rollback distribution: %w", err)
	}
	outcome.RolledBack = true
	outcome.RollbackVersion = prior.Version
	outcome.RollbackReport = rbReport
	return outcome, nil
}
