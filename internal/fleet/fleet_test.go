package fleet

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/policy"
)

func testBundle(t *testing.T, version int) *policy.Bundle {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	priv := ed25519.NewKeyFromSeed(seed)
	src := fmt.Sprintf(`policy "fleet" version %d { allow read 0x100 at ecu }`, version)
	b, err := policy.Sign(src, priv)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fakeFleet builds n vehicles; ids chosen so lexical order is stable.
// failing marks vehicle indices (in sorted order) that reject the update.
func fakeFleet(n int, failing map[int]bool) []Vehicle {
	out := make([]Vehicle, 0, n)
	for i := 0; i < n; i++ {
		i := i
		out = append(out, VehicleFunc{
			VID: fmt.Sprintf("VIN-%04d", i),
			Fn: func(*policy.Bundle) error {
				if failing[i] {
					return errors.New("verification failed")
				}
				return nil
			},
		})
	}
	return out
}

func TestPlanValidation(t *testing.T) {
	tests := []struct {
		name string
		plan Plan
		want error
	}{
		{"default ok", DefaultPlan(), nil},
		{"no stages", Plan{AbortThreshold: 0.1}, ErrNoStages},
		{"non increasing", Plan{Stages: []float64{0.5, 0.5, 1}, AbortThreshold: 0.1}, ErrStageRange},
		{"over one", Plan{Stages: []float64{0.5, 1.5}, AbortThreshold: 0.1}, ErrStageRange},
		{"zero stage", Plan{Stages: []float64{0, 1}, AbortThreshold: 0.1}, ErrStageRange},
		{"last not full", Plan{Stages: []float64{0.5, 0.9}, AbortThreshold: 0.1}, ErrLastStage},
		{"bad threshold", Plan{Stages: []float64{1}, AbortThreshold: 1}, ErrBadThreshold},
		{"negative threshold", Plan{Stages: []float64{1}, AbortThreshold: -0.1}, ErrBadThreshold},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.plan.Validate()
			if tt.want == nil && err != nil {
				t.Fatalf("Validate = %v", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("Validate = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestRolloutHappyPath(t *testing.T) {
	vehicles := fakeFleet(200, nil)
	r, err := Rollout(vehicles, testBundle(t, 2), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if r.Aborted {
		t.Fatal("clean rollout aborted")
	}
	if r.Applied != 200 || r.Failed != 0 {
		t.Fatalf("applied=%d failed=%d", r.Applied, r.Failed)
	}
	if r.BundleVersion != 2 {
		t.Errorf("version = %d", r.BundleVersion)
	}
	// Stage sizes follow the plan: 1%, 10%, 50%, 100% of 200.
	wantAttempts := []int{2, 18, 80, 100}
	if len(r.Stages) != 4 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	for i, s := range r.Stages {
		if s.Attempted != wantAttempts[i] {
			t.Errorf("stage %d attempted = %d, want %d", i, s.Attempted, wantAttempts[i])
		}
	}
}

func TestRolloutAbortsOnCanaryFailures(t *testing.T) {
	// All canary vehicles (first 2 of 200 in sorted order) fail.
	vehicles := fakeFleet(200, map[int]bool{0: true, 1: true})
	r, err := Rollout(vehicles, testBundle(t, 1), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted || r.AbortedAtStage != 0 {
		t.Fatalf("report = %+v", r)
	}
	if r.Applied != 0 || r.Failed != 2 {
		t.Errorf("applied=%d failed=%d", r.Applied, r.Failed)
	}
	if len(r.Stages) != 1 {
		t.Errorf("stages executed = %d, want 1 (abort before stage 2)", len(r.Stages))
	}
	if len(r.Stages[0].Failures) != 2 || r.Stages[0].Failures[0].VehicleID != "VIN-0000" {
		t.Errorf("failures = %+v", r.Stages[0].Failures)
	}
}

func TestRolloutToleratesFailuresBelowThreshold(t *testing.T) {
	// 2 failures inside the 50% stage of 200 vehicles: stage rate 2/80 =
	// 2.5% < 5% threshold, so the rollout completes.
	vehicles := fakeFleet(200, map[int]bool{50: true, 60: true})
	r, err := Rollout(vehicles, testBundle(t, 1), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if r.Aborted {
		t.Fatalf("aborted despite sub-threshold failures: %+v", r)
	}
	if r.Applied != 198 || r.Failed != 2 {
		t.Errorf("applied=%d failed=%d", r.Applied, r.Failed)
	}
}

func TestRolloutTinyFleet(t *testing.T) {
	// With 3 vehicles the 1% and 10% stages are empty; everyone updates in
	// later stages and nobody is skipped or hit twice.
	applied := map[string]int{}
	var vehicles []Vehicle
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("V-%d", i)
		vehicles = append(vehicles, VehicleFunc{VID: id, Fn: func(*policy.Bundle) error {
			applied[id]++
			return nil
		}})
	}
	r, err := Rollout(vehicles, testBundle(t, 1), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if r.Applied != 3 {
		t.Fatalf("applied = %d", r.Applied)
	}
	for id, n := range applied {
		if n != 1 {
			t.Errorf("vehicle %s updated %d times", id, n)
		}
	}
}

func TestRolloutSingleStage(t *testing.T) {
	vehicles := fakeFleet(10, map[int]bool{3: true})
	r, err := Rollout(vehicles, testBundle(t, 1), Plan{Stages: []float64{1.0}, AbortThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Applied != 9 || r.Failed != 1 || r.Aborted {
		t.Errorf("report = %+v", r)
	}
}

func TestRolloutRejectsBadInput(t *testing.T) {
	if _, err := Rollout(fakeFleet(1, nil), nil, DefaultPlan()); err == nil {
		t.Error("nil bundle accepted")
	}
	if _, err := Rollout(fakeFleet(1, nil), testBundle(t, 1), Plan{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestReportString(t *testing.T) {
	vehicles := fakeFleet(100, map[int]bool{0: true})
	r, err := Rollout(vehicles, testBundle(t, 7), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	if !strings.Contains(out, "rollout of policy v7") || !strings.Contains(out, "ABORTED") {
		t.Errorf("rendering = %q", out)
	}
}

func TestRolloutDeterministicOrder(t *testing.T) {
	// Vehicles are attempted in ID order regardless of input order.
	var order []string
	mk := func(id string) Vehicle {
		return VehicleFunc{VID: id, Fn: func(*policy.Bundle) error {
			order = append(order, id)
			return nil
		}}
	}
	vehicles := []Vehicle{mk("C"), mk("A"), mk("B")}
	if _, err := Rollout(vehicles, testBundle(t, 1), Plan{Stages: []float64{1}, AbortThreshold: 0.1}); err != nil {
		t.Fatal(err)
	}
	if order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Errorf("order = %v", order)
	}
}

func TestRolloutTinyFleetEmptyEarlyStages(t *testing.T) {
	// With 3 vehicles a 1% and a 10% canary stage both truncate to zero
	// vehicles: they must be recorded as empty, never attempted, and never
	// count toward abort decisions.
	vehicles := fakeFleet(3, nil)
	r, err := Rollout(vehicles, testBundle(t, 2), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 4 {
		t.Fatalf("stages recorded = %d, want 4", len(r.Stages))
	}
	for _, s := range r.Stages[:2] {
		if s.Attempted != 0 || s.Applied != 0 || s.Failed != 0 {
			t.Errorf("stage %d on tiny fleet attempted=%d applied=%d failed=%d, want all 0",
				s.Stage, s.Attempted, s.Applied, s.Failed)
		}
		if rate := s.FailureRate(); rate != 0 {
			t.Errorf("empty stage %d failure rate = %v, want 0", s.Stage, rate)
		}
	}
	if r.Applied != 3 || r.Failed != 0 {
		t.Errorf("totals applied=%d failed=%d, want 3/0", r.Applied, r.Failed)
	}
	if r.Aborted {
		t.Error("tiny fleet rollout aborted")
	}
}

func TestRolloutFailureRateEqualToThresholdDoesNotAbort(t *testing.T) {
	// 100 vehicles in a single stage with exactly 5 failures: the rate
	// equals the 5% threshold and the check is strictly >, so the rollout
	// must complete.
	failing := map[int]bool{3: true, 17: true, 42: true, 77: true, 99: true}
	vehicles := fakeFleet(100, failing)
	plan := Plan{Stages: []float64{1.0}, AbortThreshold: 0.05}
	r, err := Rollout(vehicles, testBundle(t, 2), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stages[0].FailureRate(); got != 0.05 {
		t.Fatalf("stage failure rate = %v, want exactly 0.05", got)
	}
	if r.Aborted {
		t.Error("rollout aborted at failure rate == AbortThreshold; abort must require strictly greater")
	}
	// One failure more must tip it.
	failing[50] = true
	r2, err := Rollout(fakeFleet(100, failing), testBundle(t, 2), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Aborted {
		t.Error("rollout with failure rate above threshold did not abort")
	}
}

func TestRolloutReportTotalInvariants(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Spare the 1-vehicle canary stage (index 0) so no stage's
			// failure rate crosses the threshold and every stage runs.
			failing := map[int]bool{}
			for i := 20; i < 137; i += 11 {
				failing[i] = true
			}
			plan := DefaultPlan()
			plan.AbortThreshold = 0.5 // let every stage run
			plan.Workers = workers
			r, err := Rollout(fakeFleet(137, failing), testBundle(t, 2), plan)
			if err != nil {
				t.Fatal(err)
			}
			attempted, applied, failed, failures := 0, 0, 0, 0
			for _, s := range r.Stages {
				attempted += s.Attempted
				applied += s.Applied
				failed += s.Failed
				failures += len(s.Failures)
				if s.Applied+s.Failed != s.Attempted {
					t.Errorf("stage %d: applied %d + failed %d != attempted %d",
						s.Stage, s.Applied, s.Failed, s.Attempted)
				}
			}
			if r.Applied+r.Failed != attempted {
				t.Errorf("Applied %d + Failed %d != sum(Attempted) %d", r.Applied, r.Failed, attempted)
			}
			if r.Applied != applied || r.Failed != failed {
				t.Errorf("report totals %d/%d != stage sums %d/%d", r.Applied, r.Failed, applied, failed)
			}
			if failures != failed {
				t.Errorf("recorded failure entries %d != failed count %d", failures, failed)
			}
			if attempted != 137 {
				t.Errorf("attempted %d vehicles, want all 137", attempted)
			}
		})
	}
}

func TestRolloutParallelMatchesSerialReport(t *testing.T) {
	failing := map[int]bool{5: true, 40: true, 41: true, 90: true}
	mk := func(workers int) Report {
		plan := DefaultPlan()
		plan.AbortThreshold = 0.2
		plan.Workers = workers
		r, err := Rollout(fakeFleet(120, failing), testBundle(t, 2), plan)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial, parallel := mk(1), mk(8)
	if serial.String() != parallel.String() {
		t.Errorf("parallel rollout report differs from serial:\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
}

func TestRolloutRejectsDuplicateIDs(t *testing.T) {
	vehicles := fakeFleet(5, nil)
	vehicles = append(vehicles, VehicleFunc{VID: "VIN-0002", Fn: func(*policy.Bundle) error { return nil }})
	_, err := Rollout(vehicles, testBundle(t, 1), DefaultPlan())
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate ID accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "VIN-0002") {
		t.Errorf("error does not name the colliding VIN: %v", err)
	}
}

func TestRolloutStageBoundariesRounded(t *testing.T) {
	// Cohort boundaries are the ROUNDED cumulative fractions, not truncated:
	// int(frac*total) suffers float artifacts (0.7*10 == 6.999...) and
	// truncation bias on half-cohorts. Expectations are the exact
	// math.Round(frac*total) values under DefaultPlan {1%, 10%, 50%, 100%}.
	cases := []struct {
		total      int
		boundaries []int // cumulative vehicles after each stage
	}{
		{1, []int{0, 0, 1, 1}},
		{3, []int{0, 0, 2, 3}},
		{10, []int{0, 1, 5, 10}},
		{55, []int{1, 6, 28, 55}}, // 0.55->1, 5.5->6, 27.5->28: round half away from zero
		{1_000_000, []int{10_000, 100_000, 500_000, 1_000_000}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("total=%d", tc.total), func(t *testing.T) {
			r, err := Rollout(fakeFleet(tc.total, nil), testBundle(t, 1), DefaultPlan())
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Stages) != len(tc.boundaries) {
				t.Fatalf("stages = %d, want %d", len(r.Stages), len(tc.boundaries))
			}
			cum := 0
			for i, s := range r.Stages {
				cum += s.Attempted
				if cum != tc.boundaries[i] {
					t.Errorf("after stage %d: %d vehicles updated, want %d", i, cum, tc.boundaries[i])
				}
			}
			if r.Applied != tc.total {
				t.Errorf("applied = %d, want the whole fleet (%d)", r.Applied, tc.total)
			}
		})
	}
}

func TestRolloutGateVeto(t *testing.T) {
	// The gate fires once per non-empty stage that clears the threshold; a
	// veto aborts like a threshold breach and lands verbatim in the report.
	var gated []int
	plan := DefaultPlan()
	plan.Gate = func(s StageReport) error {
		gated = append(gated, s.Stage)
		if s.Stage == 2 {
			return errors.New("canary evidence regressed")
		}
		return nil
	}
	r, err := Rollout(fakeFleet(200, nil), testBundle(t, 3), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted || r.AbortedAtStage != 2 {
		t.Fatalf("gate veto did not abort at stage 2: %+v", r)
	}
	if r.GateVeto != "canary evidence regressed" {
		t.Errorf("GateVeto = %q", r.GateVeto)
	}
	if len(gated) != 3 || gated[0] != 0 || gated[2] != 2 {
		t.Errorf("gate consulted for stages %v, want [0 1 2]", gated)
	}
	if !strings.Contains(r.String(), "(gate: canary evidence regressed)") {
		t.Errorf("rendering lacks the veto: %q", r.String())
	}
}

func TestRolloutGateSkippedForEmptyAndAbortedStages(t *testing.T) {
	var gated []int
	plan := DefaultPlan()
	plan.Gate = func(s StageReport) error {
		gated = append(gated, s.Stage)
		return nil
	}
	// 3 vehicles: stages 0 and 1 are empty — the gate must not see them.
	if _, err := Rollout(fakeFleet(3, nil), testBundle(t, 1), plan); err != nil {
		t.Fatal(err)
	}
	if len(gated) != 2 || gated[0] != 2 || gated[1] != 3 {
		t.Fatalf("gate consulted for stages %v, want [2 3]", gated)
	}
	// A stage that breaches the threshold aborts before its gate runs.
	gated = nil
	r, err := Rollout(fakeFleet(200, map[int]bool{0: true, 1: true}), testBundle(t, 1), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted || r.GateVeto != "" {
		t.Fatalf("report = %+v", r)
	}
	if len(gated) != 0 {
		t.Errorf("gate consulted after threshold abort: stages %v", gated)
	}
}
