// Package fleet implements the distribution side of the paper's policy
// update mechanism (§V-A.2): an OEM pushing a signed policy bundle to a
// population of vehicles. Updates roll out in stages (canary first), the
// rollout aborts when a stage's failure rate crosses a threshold, and the
// report records the fate of every vehicle — the operational details the
// paper's "the OEM can distribute a policy definition update" glosses over.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/policy"
)

// Vehicle is one update endpoint. core.Device satisfies this through the
// DeviceVehicle adapter; tests use fakes.
type Vehicle interface {
	// ID returns the vehicle's stable identifier (e.g. VIN).
	ID() string
	// Apply verifies and installs the bundle.
	Apply(b *policy.Bundle) error
}

// VehicleFunc adapts a closure to Vehicle.
type VehicleFunc struct {
	// VID is the identifier returned by ID.
	VID string
	// Fn performs the installation.
	Fn func(b *policy.Bundle) error
}

// ID implements Vehicle.
func (v VehicleFunc) ID() string { return v.VID }

// Apply implements Vehicle.
func (v VehicleFunc) Apply(b *policy.Bundle) error { return v.Fn(b) }

var _ Vehicle = VehicleFunc{}

// Plan parameterises a staged rollout.
type Plan struct {
	// Stages are cumulative population fractions in (0, 1]; each stage
	// updates the vehicles between the previous cumulative fraction and
	// its own. A canary plan looks like {0.01, 0.1, 0.5, 1.0}.
	Stages []float64
	// AbortThreshold is the per-stage failure-rate ceiling in [0, 1); when
	// a stage's failure rate exceeds it, remaining stages are cancelled.
	AbortThreshold float64
	// Workers bounds the per-stage apply parallelism; 0 means
	// runtime.GOMAXPROCS(0), 1 forces the serial behaviour. Stages remain
	// sequential barriers (a stage's failure rate gates the next stage),
	// and the report is identical to a serial rollout whatever the worker
	// count: outcomes are folded in fleet order after each stage completes.
	Workers int
	// Gate, when non-nil, is consulted after each non-empty stage clears the
	// abort threshold: it receives the completed stage report and may veto
	// the remaining stages by returning an error (recorded verbatim in the
	// rollout report). OTA drivers hang measured-evidence gates here — e.g.
	// a canary-cohort sweep whose calibrated residual risk must not regress
	// before the next cohort is touched. A gate veto stops the rollout like
	// a threshold abort: already-updated vehicles keep the new policy.
	Gate func(StageReport) error
}

// DefaultPlan is a conservative canary rollout: 1%, 10%, 50%, 100%, abort
// when more than 5% of a stage fails.
func DefaultPlan() Plan {
	return Plan{Stages: []float64{0.01, 0.10, 0.50, 1.00}, AbortThreshold: 0.05}
}

// Plan validation errors.
var (
	ErrNoStages     = errors.New("fleet: plan has no stages")
	ErrStageRange   = errors.New("fleet: stage fractions must be increasing within (0, 1]")
	ErrLastStage    = errors.New("fleet: final stage must cover the whole fleet (1.0)")
	ErrBadThreshold = errors.New("fleet: abort threshold must be in [0, 1)")
)

// ErrDuplicateID rejects a fleet carrying two vehicles with the same ID. The
// rollout's determinism contract — stage membership and failure order are a
// pure function of the (ID-sorted) fleet — cannot hold when two endpoints
// are indistinguishable, so duplicates fail fast instead of silently racing.
var ErrDuplicateID = errors.New("fleet: duplicate vehicle ID")

// Validate checks plan well-formedness.
func (p Plan) Validate() error {
	if len(p.Stages) == 0 {
		return ErrNoStages
	}
	prev := 0.0
	for _, f := range p.Stages {
		if f <= prev || f > 1 {
			return fmt.Errorf("%w: got %v after %v", ErrStageRange, f, prev)
		}
		prev = f
	}
	if p.Stages[len(p.Stages)-1] != 1.0 {
		return ErrLastStage
	}
	if p.AbortThreshold < 0 || p.AbortThreshold >= 1 {
		return fmt.Errorf("%w: %v", ErrBadThreshold, p.AbortThreshold)
	}
	return nil
}

// Failure records one vehicle that rejected the update.
type Failure struct {
	// VehicleID identifies the endpoint.
	VehicleID string
	// Err is the rejection cause.
	Err error
}

// StageReport summarises one rollout stage.
type StageReport struct {
	// Stage is the index within the plan.
	Stage int
	// Fraction echoes the cumulative plan fraction.
	Fraction float64
	// Attempted, Applied and Failed count vehicles in this stage.
	Attempted, Applied, Failed int
	// Failures lists rejections (in fleet order).
	Failures []Failure
}

// FailureRate returns failures over attempts (0 for an empty stage).
func (s StageReport) FailureRate() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return float64(s.Failed) / float64(s.Attempted)
}

// Report is the outcome of a rollout.
type Report struct {
	// BundleVersion echoes the distributed bundle.
	BundleVersion uint64
	// Stages in execution order (only executed stages appear).
	Stages []StageReport
	// Aborted reports whether the abort threshold or a stage gate cancelled
	// later stages.
	Aborted bool
	// AbortedAtStage is the index of the failing stage when Aborted.
	AbortedAtStage int
	// GateVeto carries the Plan.Gate error message when a gate (rather than
	// the failure-rate threshold) stopped the rollout; empty otherwise.
	GateVeto string
	// Applied and Failed are fleet-wide totals.
	Applied, Failed int
}

// String renders a rollout summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rollout of policy v%d: applied=%d failed=%d", r.BundleVersion, r.Applied, r.Failed)
	if r.Aborted {
		fmt.Fprintf(&b, " ABORTED at stage %d", r.AbortedAtStage)
		if r.GateVeto != "" {
			fmt.Fprintf(&b, " (gate: %s)", r.GateVeto)
		}
	}
	b.WriteByte('\n')
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "  stage %d (%.0f%%): attempted=%d applied=%d failed=%d (rate %.1f%%)\n",
			s.Stage, s.Fraction*100, s.Attempted, s.Applied, s.Failed, s.FailureRate()*100)
	}
	return b.String()
}

// Rollout executes a staged distribution of bundle to the fleet. Vehicles
// are ordered by ID for determinism (a stable sort, and duplicate IDs are
// rejected outright — see ErrDuplicateID); each is attempted at most once.
// Within a stage, applies run with bounded parallelism (Plan.Workers) while
// the report keeps exact fleet order; stages stay sequential because each
// stage's failure rate gates the next. When a stage's failure rate exceeds
// the plan's threshold — or a Plan.Gate vetoes — the rollout stops before
// the next stage (already-updated vehicles keep the new policy; the store's
// version monotonicity makes re-running the rollout after a fix safe and
// idempotent).
func Rollout(fleetVehicles []Vehicle, bundle *policy.Bundle, plan Plan) (Report, error) {
	if err := plan.Validate(); err != nil {
		return Report{}, err
	}
	if bundle == nil {
		return Report{}, errors.New("fleet: nil bundle")
	}
	ordered := append([]Vehicle(nil), fleetVehicles...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ID() < ordered[j].ID() })
	for i := 1; i < len(ordered); i++ {
		if ordered[i].ID() == ordered[i-1].ID() {
			return Report{}, fmt.Errorf("%w: %q", ErrDuplicateID, ordered[i].ID())
		}
	}

	report := Report{BundleVersion: bundle.Version}
	total := len(ordered)
	done := 0
	for idx, frac := range plan.Stages {
		// Integer rounding, not truncation: float artifacts like 0.7*10 ==
		// 6.999... must not shift a cohort boundary off the documented
		// fraction. Monotone in frac, so cohorts never overlap.
		upTo := int(math.Round(frac * float64(total)))
		if idx == len(plan.Stages)-1 {
			upTo = total // the final stage always covers the whole fleet
		}
		if upTo <= done {
			// Tiny fleets can make early stages empty; skip but record.
			report.Stages = append(report.Stages, StageReport{Stage: idx, Fraction: frac})
			continue
		}
		sr := StageReport{Stage: idx, Fraction: frac}
		stage := ordered[done:upTo]
		outcomes := applyStage(stage, bundle, plan.Workers)
		for i, v := range stage {
			sr.Attempted++
			if err := outcomes[i]; err != nil {
				sr.Failed++
				sr.Failures = append(sr.Failures, Failure{VehicleID: v.ID(), Err: err})
			} else {
				sr.Applied++
			}
		}
		done = upTo
		report.Stages = append(report.Stages, sr)
		report.Applied += sr.Applied
		report.Failed += sr.Failed
		if sr.FailureRate() > plan.AbortThreshold {
			report.Aborted = true
			report.AbortedAtStage = idx
			break
		}
		if plan.Gate != nil {
			if gerr := plan.Gate(sr); gerr != nil {
				report.Aborted = true
				report.AbortedAtStage = idx
				report.GateVeto = gerr.Error()
				break
			}
		}
	}
	return report, nil
}

// applyStage attempts the bundle on every vehicle of one stage with bounded
// parallelism and returns per-vehicle outcomes indexed like the input, so
// the caller can fold them in fleet order. Each vehicle is attempted exactly
// once and no two workers ever touch the same vehicle, which keeps
// single-owner simulations (engine-hosted vehicles) safe to update in
// parallel.
func applyStage(stage []Vehicle, bundle *policy.Bundle, workers int) []error {
	outcomes := make([]error, len(stage))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(stage) {
		workers = len(stage)
	}
	if workers <= 1 {
		for i, v := range stage {
			outcomes[i] = v.Apply(bundle)
		}
		return outcomes
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = stage[i].Apply(bundle)
			}
		}()
	}
	for i := range stage {
		next <- i
	}
	close(next)
	wg.Wait()
	return outcomes
}
