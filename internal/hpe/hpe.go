// Package hpe simulates the hardware-based policy engine of the paper's
// Fig. 4: a block sitting between a node's CAN controller and transceiver,
// holding an approved reading list and an approved writing list of message
// identifiers, with a decision block that grants or blocks each frame.
//
// Two properties from §V-B.2 are modelled faithfully:
//
//   - Transparency: the engine implements canbus.InlineFilter and is invisible
//     to node software; nothing in the node's firmware path can mutate it.
//     Table swaps happen only through Install, which the secure policy-update
//     path (policy.Store) drives.
//   - Robustness to firmware compromise: compromising the CAN controller
//     (Controller.CompromiseFilters) bypasses software acceptance filters but
//     leaves the engine's filtering intact, because it is a separate hardware
//     entity.
//
// Because a real HPE is an RTL block, the simulation also carries a cycle
// cost model so benchmarks can report decision latency in hardware terms.
package hpe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/canbus"
	"repro/internal/policy"
	"repro/internal/policy/ir"
)

// ModeSource reports the device's current operating mode. The connected-car
// model implements this; the engine consults it on every decision so a mode
// switch (Normal -> Fail-safe) changes enforcement instantly.
type ModeSource interface {
	// Mode returns the current operating mode.
	Mode() policy.Mode
}

// FixedMode is a ModeSource pinned to one mode, for tests and single-mode
// devices.
type FixedMode policy.Mode

// Mode implements ModeSource.
func (m FixedMode) Mode() policy.Mode { return policy.Mode(m) }

var _ ModeSource = FixedMode("")

// CycleModel prices engine operations in hardware clock cycles.
type CycleModel struct {
	// ClockHz is the engine clock frequency (for latency conversion).
	ClockHz uint64
	// DecodeCycles is the fixed cost of parsing the frame header.
	DecodeCycles uint64
	// LookupCycles is the cost of one approved-list query (1 for a CAM).
	LookupCycles uint64
	// DecisionCycles is the cost of the decision block itself.
	DecisionCycles uint64
}

// DefaultCycleModel approximates a modest FPGA implementation: 100 MHz
// clock, 2-cycle header decode, single-cycle CAM lookup, 1-cycle decision.
func DefaultCycleModel() CycleModel {
	return CycleModel{ClockHz: 100_000_000, DecodeCycles: 2, LookupCycles: 1, DecisionCycles: 1}
}

// PerDecision returns the cycle cost of one grant/block decision.
func (m CycleModel) PerDecision() uint64 {
	return m.DecodeCycles + m.LookupCycles + m.DecisionCycles
}

// LatencyNanos converts a cycle count to nanoseconds at the engine clock.
func (m CycleModel) LatencyNanos(cycles uint64) float64 {
	if m.ClockHz == 0 {
		return 0
	}
	return float64(cycles) / float64(m.ClockHz) * 1e9
}

// Stats counts engine activity. All counters are monotonically increasing.
type Stats struct {
	// Decisions counts every consultation of the decision block.
	Decisions uint64
	// ReadsGranted / ReadsBlocked split inbound outcomes.
	ReadsGranted, ReadsBlocked uint64
	// WritesGranted / WritesBlocked split outbound outcomes.
	WritesGranted, WritesBlocked uint64
	// Cycles accumulates the modelled hardware cycle cost.
	Cycles uint64
	// Installs counts policy table swaps.
	Installs uint64
}

// Engine is one node's policy engine instance.
//
// By default an Engine is safe for concurrent use: the table swap is atomic
// and the statistics are mutex-protected. A fleet worker that confines an
// engine to one goroutine can call SetSingleOwner(true) to drop the mutex
// from the decision hot path (the same single-owner contract canbus.Bus
// carries).
type Engine struct {
	subject string
	modes   ModeSource
	cycles  CycleModel
	// perDecision caches cycles.PerDecision(): the sum sits on the
	// per-frame decision path of every node.
	perDecision uint64
	single      bool // single-owner mode: skip the stats mutex

	table  atomic.Pointer[policy.NodeTable]
	source *policy.Compiled // the compiled policy the table came from

	// gen holds the generic install for non-table policy backends (expr,
	// closure): the enforcer and the node's resolved decider. Exactly one of
	// table/gen is non-nil after an install; the table backend keeps its
	// historical atomic-NodeTable fast path and never touches gen.
	gen     atomic.Pointer[genInstall]
	backend string // active backend name ("" before any install)

	// Resolved mode-table cache, maintained only in single-owner mode: it
	// skips the per-decision map lookup NodeTable.Table performs. The
	// concurrent default path must not touch it (Install may race Decide).
	cacheTable *policy.NodeTable
	cacheMode  policy.Mode
	cacheMT    policy.ModeTable

	// The same cache for the generic path: one ModeDecider resolution per
	// (install, mode) change instead of per decision.
	cacheGen   *genInstall
	cacheGMode policy.Mode
	cacheMD    ir.ModeDecider

	mu      sync.Mutex
	stats   Stats
	auditor *Auditor
}

// genInstall is one generic (non-table) backend install: swapped atomically
// as a unit, like the NodeTable pointer on the table path.
type genInstall struct {
	enf  ir.Enforcer
	node ir.NodeDecider
}

var _ canbus.InlineFilter = (*Engine)(nil)

// New creates an engine for the named node. Until Install is called the
// engine fails closed: every frame is blocked, matching the paper's
// least-privilege stance (§V-B).
func New(subject string, modes ModeSource, cycles CycleModel) *Engine {
	if modes == nil {
		panic("hpe: nil ModeSource")
	}
	return &Engine{subject: subject, modes: modes, cycles: cycles, perDecision: cycles.PerDecision()}
}

// Subject returns the node name this engine protects.
func (e *Engine) Subject() string { return e.subject }

// SetSingleOwner switches the engine into (or out of) single-owner mode: the
// caller asserts every Decide/Stats/Install/Reset happens on one goroutine,
// and the engine stops taking its internal mutex. Must itself be called by
// that owner, before any concurrent use.
func (e *Engine) SetSingleOwner(on bool) { e.single = on }

// lock and unlock guard the stats; no-ops in single-owner mode.
func (e *Engine) lock() {
	if !e.single {
		e.mu.Lock()
	}
}

func (e *Engine) unlock() {
	if !e.single {
		e.mu.Unlock()
	}
}

// Install loads the node's table from a compiled policy. It is the only
// mutation path, used by the secure update mechanism; the swap is atomic
// with respect to concurrent decisions.
func (e *Engine) Install(c *policy.Compiled) error {
	if c == nil {
		return fmt.Errorf("hpe: nil compiled policy")
	}
	e.gen.Store(nil)
	e.table.Store(c.Node(e.subject))
	e.lock()
	e.source = c
	e.backend = ir.DefaultBackend
	e.stats.Installs++
	e.unlock()
	return nil
}

// InstallEnforcer loads the node's decision logic from a compiled enforcer.
// The table backend routes through the historical Install path (atomic
// NodeTable swap, untouched hot path); every other backend installs its
// NodeDecider on the generic path. Like Install, the swap is atomic with
// respect to concurrent decisions.
func (e *Engine) InstallEnforcer(enf ir.Enforcer) error {
	if enf == nil {
		return fmt.Errorf("hpe: nil enforcer")
	}
	if te, ok := enf.(*ir.TableEnforcer); ok {
		return e.Install(te.Compiled())
	}
	e.table.Store(nil)
	e.gen.Store(&genInstall{enf: enf, node: enf.Node(e.subject)})
	e.lock()
	e.source = nil
	e.backend = enf.Backend()
	e.stats.Installs++
	e.unlock()
	return nil
}

// ReinstallEnforcer is InstallEnforcer specialised for re-provisioning a
// pooled engine, mirroring Reinstall: when the enforcer is the one already
// installed, the resolved decider is reused.
func (e *Engine) ReinstallEnforcer(enf ir.Enforcer) error {
	if enf == nil {
		return fmt.Errorf("hpe: nil enforcer")
	}
	if te, ok := enf.(*ir.TableEnforcer); ok {
		return e.Reinstall(te.Compiled())
	}
	g := e.gen.Load()
	same := g != nil && g.enf == enf
	if same {
		e.lock()
		e.stats.Installs++
		e.unlock()
		return nil
	}
	return e.InstallEnforcer(enf)
}

// Reinstall is Install specialised for re-provisioning a pooled engine: when
// the compiled policy is the one already installed, the resolved lookup
// tables are reused instead of being re-derived (Compiled.Node allocates a
// fresh deny-all table for unknown subjects on every call, and even the
// known-subject path pays a map lookup). A different compiled policy falls
// back to a full Install.
func (e *Engine) Reinstall(c *policy.Compiled) error {
	if c == nil {
		return fmt.Errorf("hpe: nil compiled policy")
	}
	e.lock()
	same := e.source == c && e.table.Load() != nil
	if same {
		e.stats.Installs++
	}
	e.unlock()
	if same {
		return nil
	}
	return e.Install(c)
}

// Installed reports whether decision logic has been loaded (a policy table
// or a generic enforcer).
func (e *Engine) Installed() bool { return e.table.Load() != nil || e.gen.Load() != nil }

// Backend returns the name of the active policy backend, or "" before any
// install.
func (e *Engine) Backend() string {
	e.lock()
	defer e.unlock()
	return e.backend
}

// Enforcer returns the generic enforcer installed via InstallEnforcer, or
// nil when the engine runs the table path.
func (e *Engine) Enforcer() ir.Enforcer {
	if g := e.gen.Load(); g != nil {
		return g.enf
	}
	return nil
}

// Reset zeroes the engine's counters, returning it to the statistical state
// of a freshly constructed engine. The installed table, mode source, cycle
// model and attached auditor are kept: a reset engine decides exactly as it
// did before.
func (e *Engine) Reset() {
	e.lock()
	e.stats = Stats{}
	e.unlock()
}

// Snapshot captures an engine's mutable decision state — the statistics and
// the single-owner resolved-table cache — for the attack arena's prefix
// checkpointing. The installed table and its source are deliberately not
// captured: Install/Reinstall never runs inside a checkpoint window (regime
// provisioning happens before the capture), so they are invariant across
// every restore, and the cache fields re-resolve against the same table.
type Snapshot struct {
	stats      Stats
	backend    string
	cacheTable *policy.NodeTable
	cacheMode  policy.Mode
	cacheMT    policy.ModeTable
	cacheGen   *genInstall
	cacheGMode policy.Mode
	cacheMD    ir.ModeDecider
}

// Backend returns the policy backend that was active at capture time.
func (s *Snapshot) Backend() string { return s.backend }

// ErrBackendMismatch reports a checkpoint restored onto an engine running a
// different policy backend: the captured cache state would silently mix
// enforcement forms, so the restore fails fast instead.
var ErrBackendMismatch = errors.New("hpe: snapshot backend mismatch")

// Snapshot captures the engine's mutable state into dst.
func (e *Engine) Snapshot(dst *Snapshot) {
	e.lock()
	dst.stats = e.stats
	dst.backend = e.backend
	e.unlock()
	dst.cacheTable = e.cacheTable
	dst.cacheMode = e.cacheMode
	dst.cacheMT = e.cacheMT
	dst.cacheGen = e.cacheGen
	dst.cacheGMode = e.cacheGMode
	dst.cacheMD = e.cacheMD
}

// RestoreFrom rewinds the engine to a state captured by Snapshot. A restored
// engine decides and counts byte-identically to one that replayed the
// captured prefix after a Reset + Reinstall. The snapshot carries the
// identity of the backend that was active at capture time; restoring it
// onto an engine running a different backend returns ErrBackendMismatch.
func (e *Engine) RestoreFrom(src *Snapshot) error {
	e.lock()
	if e.backend != src.backend {
		have := e.backend
		e.unlock()
		return fmt.Errorf("%w: engine %q runs %q, snapshot captured under %q",
			ErrBackendMismatch, e.subject, have, src.backend)
	}
	e.stats = src.stats
	e.unlock()
	e.cacheTable = src.cacheTable
	e.cacheMode = src.cacheMode
	e.cacheMT = src.cacheMT
	e.cacheGen = src.cacheGen
	e.cacheGMode = src.cacheGMode
	e.cacheMD = src.cacheMD
	return nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.lock()
	defer e.unlock()
	return e.stats
}

// CycleModel returns the engine's cycle cost model.
func (e *Engine) CycleModel() CycleModel { return e.cycles }

// Decide implements canbus.InlineFilter: it consults the approved reading
// list for inbound frames and the approved writing list for outbound
// frames, granting only identifiers present for the current mode.
func (e *Engine) Decide(dir canbus.Direction, f canbus.Frame) canbus.Verdict {
	verdict := canbus.Block
	t := e.table.Load()
	if t != nil {
		var mt policy.ModeTable
		mode := e.modes.Mode()
		if e.single && t == e.cacheTable && mode == e.cacheMode {
			mt = e.cacheMT
		} else {
			mt = t.Table(mode)
			if e.single {
				e.cacheTable, e.cacheMode, e.cacheMT = t, mode, mt
			}
		}
		switch dir {
		case canbus.Read:
			if mt.Reads != nil && mt.Reads.Contains(f.ID) {
				verdict = canbus.Grant
			}
		case canbus.Write:
			if mt.Writes != nil && mt.Writes.Contains(f.ID) {
				verdict = canbus.Grant
			}
		}
	} else if g := e.gen.Load(); g != nil {
		// Generic backend path, mirroring the table path's single-owner
		// resolved-decider cache: one Resolve per (install, mode) change.
		var md ir.ModeDecider
		mode := e.modes.Mode()
		if e.single && g == e.cacheGen && mode == e.cacheGMode {
			md = e.cacheMD
		} else {
			md = g.node.Resolve(mode)
			if e.single {
				e.cacheGen, e.cacheGMode, e.cacheMD = g, mode, md
			}
		}
		switch dir {
		case canbus.Read:
			if md.Allow(policy.ActRead, f.ID) {
				verdict = canbus.Grant
			}
		case canbus.Write:
			if md.Allow(policy.ActWrite, f.ID) {
				verdict = canbus.Grant
			}
		}
	}

	// Lock branches inlined by hand: the helper calls showed up in fleet
	// profiles at one call per frame per node.
	if !e.single {
		e.mu.Lock()
	}
	e.stats.Decisions++
	e.stats.Cycles += e.perDecision
	switch {
	case dir == canbus.Read && verdict == canbus.Grant:
		e.stats.ReadsGranted++
	case dir == canbus.Read:
		e.stats.ReadsBlocked++
	case dir == canbus.Write && verdict == canbus.Grant:
		e.stats.WritesGranted++
	default:
		e.stats.WritesBlocked++
	}
	auditor := e.auditor
	if !e.single {
		e.mu.Unlock()
	}
	if verdict == canbus.Block && auditor != nil {
		auditor.record(e.subject, dir, e.modes.Mode(), f)
	}
	return verdict
}

// Deploy attaches engines to every listed node of a bus and installs the
// compiled policy into each. It returns the engines keyed by node name.
func Deploy(bus *canbus.Bus, compiled *policy.Compiled, modes ModeSource, cycles CycleModel, nodeNames ...string) (map[string]*Engine, error) {
	engines := make(map[string]*Engine, len(nodeNames))
	for _, name := range nodeNames {
		node, ok := bus.Node(name)
		if !ok {
			return nil, fmt.Errorf("hpe: node %q not attached to bus", name)
		}
		eng := New(name, modes, cycles)
		if err := eng.Install(compiled); err != nil {
			return nil, err
		}
		node.SetInlineFilter(eng)
		engines[name] = eng
	}
	return engines, nil
}

// DeployEnforcer is Deploy for a compiled enforcer: same attachment, with
// the backend-appropriate install path per engine.
func DeployEnforcer(bus *canbus.Bus, enf ir.Enforcer, modes ModeSource, cycles CycleModel, nodeNames ...string) (map[string]*Engine, error) {
	engines := make(map[string]*Engine, len(nodeNames))
	for _, name := range nodeNames {
		node, ok := bus.Node(name)
		if !ok {
			return nil, fmt.Errorf("hpe: node %q not attached to bus", name)
		}
		eng := New(name, modes, cycles)
		if err := eng.InstallEnforcer(enf); err != nil {
			return nil, err
		}
		node.SetInlineFilter(eng)
		engines[name] = eng
	}
	return engines, nil
}
