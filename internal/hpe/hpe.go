// Package hpe simulates the hardware-based policy engine of the paper's
// Fig. 4: a block sitting between a node's CAN controller and transceiver,
// holding an approved reading list and an approved writing list of message
// identifiers, with a decision block that grants or blocks each frame.
//
// Two properties from §V-B.2 are modelled faithfully:
//
//   - Transparency: the engine implements canbus.InlineFilter and is invisible
//     to node software; nothing in the node's firmware path can mutate it.
//     Table swaps happen only through Install, which the secure policy-update
//     path (policy.Store) drives.
//   - Robustness to firmware compromise: compromising the CAN controller
//     (Controller.CompromiseFilters) bypasses software acceptance filters but
//     leaves the engine's filtering intact, because it is a separate hardware
//     entity.
//
// Because a real HPE is an RTL block, the simulation also carries a cycle
// cost model so benchmarks can report decision latency in hardware terms.
package hpe

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/canbus"
	"repro/internal/policy"
)

// ModeSource reports the device's current operating mode. The connected-car
// model implements this; the engine consults it on every decision so a mode
// switch (Normal -> Fail-safe) changes enforcement instantly.
type ModeSource interface {
	// Mode returns the current operating mode.
	Mode() policy.Mode
}

// FixedMode is a ModeSource pinned to one mode, for tests and single-mode
// devices.
type FixedMode policy.Mode

// Mode implements ModeSource.
func (m FixedMode) Mode() policy.Mode { return policy.Mode(m) }

var _ ModeSource = FixedMode("")

// CycleModel prices engine operations in hardware clock cycles.
type CycleModel struct {
	// ClockHz is the engine clock frequency (for latency conversion).
	ClockHz uint64
	// DecodeCycles is the fixed cost of parsing the frame header.
	DecodeCycles uint64
	// LookupCycles is the cost of one approved-list query (1 for a CAM).
	LookupCycles uint64
	// DecisionCycles is the cost of the decision block itself.
	DecisionCycles uint64
}

// DefaultCycleModel approximates a modest FPGA implementation: 100 MHz
// clock, 2-cycle header decode, single-cycle CAM lookup, 1-cycle decision.
func DefaultCycleModel() CycleModel {
	return CycleModel{ClockHz: 100_000_000, DecodeCycles: 2, LookupCycles: 1, DecisionCycles: 1}
}

// PerDecision returns the cycle cost of one grant/block decision.
func (m CycleModel) PerDecision() uint64 {
	return m.DecodeCycles + m.LookupCycles + m.DecisionCycles
}

// LatencyNanos converts a cycle count to nanoseconds at the engine clock.
func (m CycleModel) LatencyNanos(cycles uint64) float64 {
	if m.ClockHz == 0 {
		return 0
	}
	return float64(cycles) / float64(m.ClockHz) * 1e9
}

// Stats counts engine activity. All counters are monotonically increasing.
type Stats struct {
	// Decisions counts every consultation of the decision block.
	Decisions uint64
	// ReadsGranted / ReadsBlocked split inbound outcomes.
	ReadsGranted, ReadsBlocked uint64
	// WritesGranted / WritesBlocked split outbound outcomes.
	WritesGranted, WritesBlocked uint64
	// Cycles accumulates the modelled hardware cycle cost.
	Cycles uint64
	// Installs counts policy table swaps.
	Installs uint64
}

// Engine is one node's policy engine instance.
type Engine struct {
	subject string
	modes   ModeSource
	cycles  CycleModel

	table atomic.Pointer[policy.NodeTable]

	mu      sync.Mutex
	stats   Stats
	auditor *Auditor
}

var _ canbus.InlineFilter = (*Engine)(nil)

// New creates an engine for the named node. Until Install is called the
// engine fails closed: every frame is blocked, matching the paper's
// least-privilege stance (§V-B).
func New(subject string, modes ModeSource, cycles CycleModel) *Engine {
	if modes == nil {
		panic("hpe: nil ModeSource")
	}
	return &Engine{subject: subject, modes: modes, cycles: cycles}
}

// Subject returns the node name this engine protects.
func (e *Engine) Subject() string { return e.subject }

// Install loads the node's table from a compiled policy. It is the only
// mutation path, used by the secure update mechanism; the swap is atomic
// with respect to concurrent decisions.
func (e *Engine) Install(c *policy.Compiled) error {
	if c == nil {
		return fmt.Errorf("hpe: nil compiled policy")
	}
	e.table.Store(c.Node(e.subject))
	e.mu.Lock()
	e.stats.Installs++
	e.mu.Unlock()
	return nil
}

// Installed reports whether a policy table has been loaded.
func (e *Engine) Installed() bool { return e.table.Load() != nil }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// CycleModel returns the engine's cycle cost model.
func (e *Engine) CycleModel() CycleModel { return e.cycles }

// Decide implements canbus.InlineFilter: it consults the approved reading
// list for inbound frames and the approved writing list for outbound
// frames, granting only identifiers present for the current mode.
func (e *Engine) Decide(dir canbus.Direction, f canbus.Frame) canbus.Verdict {
	verdict := canbus.Block
	t := e.table.Load()
	if t != nil {
		mt := t.Table(e.modes.Mode())
		switch dir {
		case canbus.Read:
			if mt.Reads != nil && mt.Reads.Contains(f.ID) {
				verdict = canbus.Grant
			}
		case canbus.Write:
			if mt.Writes != nil && mt.Writes.Contains(f.ID) {
				verdict = canbus.Grant
			}
		}
	}

	e.mu.Lock()
	e.stats.Decisions++
	e.stats.Cycles += e.cycles.PerDecision()
	switch {
	case dir == canbus.Read && verdict == canbus.Grant:
		e.stats.ReadsGranted++
	case dir == canbus.Read:
		e.stats.ReadsBlocked++
	case dir == canbus.Write && verdict == canbus.Grant:
		e.stats.WritesGranted++
	default:
		e.stats.WritesBlocked++
	}
	auditor := e.auditor
	e.mu.Unlock()
	if verdict == canbus.Block && auditor != nil {
		auditor.record(e.subject, dir, e.modes.Mode(), f)
	}
	return verdict
}

// Deploy attaches engines to every listed node of a bus and installs the
// compiled policy into each. It returns the engines keyed by node name.
func Deploy(bus *canbus.Bus, compiled *policy.Compiled, modes ModeSource, cycles CycleModel, nodeNames ...string) (map[string]*Engine, error) {
	engines := make(map[string]*Engine, len(nodeNames))
	for _, name := range nodeNames {
		node, ok := bus.Node(name)
		if !ok {
			return nil, fmt.Errorf("hpe: node %q not attached to bus", name)
		}
		eng := New(name, modes, cycles)
		if err := eng.Install(compiled); err != nil {
			return nil, err
		}
		node.SetInlineFilter(eng)
		engines[name] = eng
	}
	return engines, nil
}
