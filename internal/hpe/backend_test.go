package hpe

import (
	"errors"
	"testing"

	"repro/internal/canbus"
	"repro/internal/policy"
	"repro/internal/policy/ir"
	"repro/internal/sim"
)

// buildEnforcer compiles the shared test policy with the named backend.
func buildEnforcer(t *testing.T, backend string) ir.Enforcer {
	t.Helper()
	set, err := policy.Parse(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	enf, err := ir.Build(set, policy.CompileOptions{
		Subjects: []string{"ecu"},
		Modes:    []policy.Mode{"Normal", "Diag"},
		Backend:  backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	return enf
}

// TestInstallEnforcerDecisionsMatchTable drives every registered backend
// through the engine's Decide path and requires verdicts identical to the
// legacy table install, in both modes and directions.
func TestInstallEnforcerDecisionsMatchTable(t *testing.T) {
	probes := []struct {
		dir canbus.Direction
		id  uint32
	}{
		{canbus.Read, 0x100}, {canbus.Write, 0x100},
		{canbus.Read, 0x200}, {canbus.Write, 0x200},
		{canbus.Read, 0x7DF}, {canbus.Write, 0x7DF},
		{canbus.Read, 0x123}, {canbus.Write, 0x123},
	}
	for _, mode := range []policy.Mode{"Normal", "Diag", "Limp"} {
		ref := newEngine(t, mode)
		for _, backend := range ir.Names() {
			for _, single := range []bool{false, true} {
				e := New("ecu", FixedMode(mode), DefaultCycleModel())
				e.SetSingleOwner(single)
				if err := e.InstallEnforcer(buildEnforcer(t, backend)); err != nil {
					t.Fatalf("InstallEnforcer(%s): %v", backend, err)
				}
				if e.Backend() != backend {
					t.Errorf("Backend() = %q, want %q", e.Backend(), backend)
				}
				if !e.Installed() {
					t.Fatalf("%s engine claims not installed", backend)
				}
				for _, p := range probes {
					want := ref.Decide(p.dir, frame(p.id))
					if got := e.Decide(p.dir, frame(p.id)); got != want {
						t.Errorf("%s (single=%v) mode %s: Decide(%v, 0x%X) = %v, want %v",
							backend, single, mode, p.dir, p.id, got, want)
					}
				}
			}
		}
	}
}

// TestReinstallEnforcerReusesInstall requires the pooled fast path to count
// an install without rebuilding, and a different enforcer to swap fully.
func TestReinstallEnforcerReusesInstall(t *testing.T) {
	enf := buildEnforcer(t, "closure")
	e := New("ecu", FixedMode("Normal"), DefaultCycleModel())
	if err := e.InstallEnforcer(enf); err != nil {
		t.Fatal(err)
	}
	if err := e.ReinstallEnforcer(enf); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Installs; got != 2 {
		t.Errorf("Installs = %d, want 2", got)
	}
	other := buildEnforcer(t, "expr")
	if err := e.ReinstallEnforcer(other); err != nil {
		t.Fatal(err)
	}
	if e.Backend() != "expr" {
		t.Errorf("after swap Backend() = %q, want expr", e.Backend())
	}
}

// TestSnapshotBackendIdentity is the fail-fast contract: a checkpoint
// captured under one policy backend must refuse to restore onto an engine
// running another, with the typed ErrBackendMismatch.
func TestSnapshotBackendIdentity(t *testing.T) {
	table := newEngine(t, "Normal")
	table.Decide(canbus.Read, frame(0x100))
	var snap Snapshot
	table.Snapshot(&snap)
	if snap.Backend() != ir.DefaultBackend {
		t.Errorf("snapshot backend = %q, want %q", snap.Backend(), ir.DefaultBackend)
	}
	if err := table.RestoreFrom(&snap); err != nil {
		t.Fatalf("same-backend restore: %v", err)
	}

	closure := New("ecu", FixedMode("Normal"), DefaultCycleModel())
	if err := closure.InstallEnforcer(buildEnforcer(t, "closure")); err != nil {
		t.Fatal(err)
	}
	err := closure.RestoreFrom(&snap)
	if !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("cross-backend restore error = %v, want ErrBackendMismatch", err)
	}

	// The refused restore must leave the engine's state untouched.
	if got := closure.Stats().Decisions; got != 0 {
		t.Errorf("refused restore mutated stats: Decisions = %d", got)
	}
	var csnap Snapshot
	closure.Decide(canbus.Write, frame(0x200))
	closure.Snapshot(&csnap)
	if csnap.Backend() != "closure" {
		t.Errorf("closure snapshot backend = %q", csnap.Backend())
	}
	if err := closure.RestoreFrom(&csnap); err != nil {
		t.Fatalf("closure same-backend restore: %v", err)
	}
}

// TestDeployEnforcer mirrors TestDeploy on the enforcer path.
func TestDeployEnforcer(t *testing.T) {
	bus := canbus.New(&sim.Scheduler{}, canbus.Config{})
	bus.MustAttach("ecu")
	engines, err := DeployEnforcer(bus, buildEnforcer(t, "expr"), FixedMode("Normal"), DefaultCycleModel(), "ecu")
	if err != nil {
		t.Fatal(err)
	}
	if engines["ecu"].Backend() != "expr" {
		t.Errorf("deployed backend = %q, want expr", engines["ecu"].Backend())
	}
	if _, err := DeployEnforcer(bus, buildEnforcer(t, "expr"), FixedMode("Normal"), DefaultCycleModel(), "ghost"); err == nil {
		t.Error("unknown node: want error")
	}
}
