package hpe

import (
	"strings"
	"testing"
	"time"

	"repro/internal/canbus"
)

func TestAuditorRecordsBlocks(t *testing.T) {
	e := newEngine(t, "Normal")
	var now time.Duration
	a := NewAuditor(10, func() time.Duration { return now })
	e.AttachAuditor(a)

	now = 5 * time.Millisecond
	e.Decide(canbus.Read, frame(0x100)) // grant: not audited
	e.Decide(canbus.Read, frame(0x666)) // block: audited
	now = 7 * time.Millisecond
	e.Decide(canbus.Write, frame(0x100)) // block (read-only id): audited

	recs := a.Drain()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].ID != 0x666 || recs[0].Direction != canbus.Read || recs[0].At != 5*time.Millisecond {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].ID != 0x100 || recs[1].Direction != canbus.Write || recs[1].At != 7*time.Millisecond {
		t.Errorf("record 1 = %+v", recs[1])
	}
	if recs[0].Subject != "ecu" || recs[0].Mode != "Normal" {
		t.Errorf("record 0 context = %+v", recs[0])
	}
	line := recs[0].String()
	if !strings.Contains(line, "blocked") || !strings.Contains(line, "0x666") {
		t.Errorf("audit line %q", line)
	}
	// Drain clears.
	if a.Len() != 0 {
		t.Errorf("Len after drain = %d", a.Len())
	}
}

func TestAuditorRingBound(t *testing.T) {
	e := newEngine(t, "Normal")
	a := NewAuditor(3, nil)
	e.AttachAuditor(a)
	for i := 0; i < 10; i++ {
		e.Decide(canbus.Read, frame(uint32(0x600+i)))
	}
	recs := a.Drain()
	if len(recs) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recs))
	}
	// The newest three survive.
	if recs[0].ID != 0x607 || recs[2].ID != 0x609 {
		t.Errorf("wrong records survived: %v", recs)
	}
	if recs[2].Seq != 10 {
		t.Errorf("seq = %d, want 10", recs[2].Seq)
	}
}

func TestAuditorDetach(t *testing.T) {
	e := newEngine(t, "Normal")
	a := NewAuditor(0, nil) // default capacity
	e.AttachAuditor(a)
	e.Decide(canbus.Read, frame(0x666))
	e.AttachAuditor(nil)
	e.Decide(canbus.Read, frame(0x667))
	if got := a.Len(); got != 1 {
		t.Errorf("records after detach = %d, want 1", got)
	}
}

func TestAuditorDoesNotStorePayload(t *testing.T) {
	e := newEngine(t, "Normal")
	a := NewAuditor(4, nil)
	e.AttachAuditor(a)
	secret := canbus.MustDataFrame(0x666, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	e.Decide(canbus.Write, secret)
	recs := a.Drain()
	if len(recs) != 1 {
		t.Fatal("no record")
	}
	if recs[0].DLC != 4 {
		t.Errorf("DLC = %d", recs[0].DLC)
	}
	if strings.Contains(recs[0].String(), "DEAD") {
		t.Error("audit line leaks payload bytes")
	}
}
