package hpe

import (
	"sync"
	"testing"

	"repro/internal/canbus"
	"repro/internal/policy"
	"repro/internal/sim"
)

func compiled(t *testing.T, src string, subjects []string, modes []policy.Mode) *policy.Compiled {
	t.Helper()
	set, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := policy.Compile(set, policy.CompileOptions{Subjects: subjects, Modes: modes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const testPolicy = `policy "p" version 1 {
  allow read 0x100 at ecu
  allow write 0x200 at ecu
  mode Diag {
    allow read 0x7DF at ecu
  }
}`

func newEngine(t *testing.T, mode policy.Mode) *Engine {
	t.Helper()
	c := compiled(t, testPolicy, []string{"ecu"}, []policy.Mode{"Normal", "Diag"})
	e := New("ecu", FixedMode(mode), DefaultCycleModel())
	if err := e.Install(c); err != nil {
		t.Fatal(err)
	}
	return e
}

func frame(id uint32) canbus.Frame { return canbus.MustDataFrame(id, nil) }

func TestFailClosedBeforeInstall(t *testing.T) {
	e := New("ecu", FixedMode("Normal"), DefaultCycleModel())
	if e.Installed() {
		t.Fatal("fresh engine claims installed")
	}
	if v := e.Decide(canbus.Read, frame(0x100)); v != canbus.Block {
		t.Error("uninstalled engine granted a read")
	}
	if v := e.Decide(canbus.Write, frame(0x200)); v != canbus.Block {
		t.Error("uninstalled engine granted a write")
	}
}

func TestDecideDirectionality(t *testing.T) {
	e := newEngine(t, "Normal")
	tests := []struct {
		dir  canbus.Direction
		id   uint32
		want canbus.Verdict
	}{
		{canbus.Read, 0x100, canbus.Grant},
		{canbus.Write, 0x100, canbus.Block}, // read-only ID
		{canbus.Write, 0x200, canbus.Grant},
		{canbus.Read, 0x200, canbus.Block}, // write-only ID
		{canbus.Read, 0x7DF, canbus.Block}, // Diag-mode ID in Normal
		{canbus.Read, 0x555, canbus.Block}, // unknown ID
	}
	for _, tt := range tests {
		if got := e.Decide(tt.dir, frame(tt.id)); got != tt.want {
			t.Errorf("Decide(%v, 0x%X) = %v, want %v", tt.dir, tt.id, got, tt.want)
		}
	}
}

func TestModeSwitchChangesDecisions(t *testing.T) {
	c := compiled(t, testPolicy, []string{"ecu"}, []policy.Mode{"Normal", "Diag"})
	var mu sync.Mutex
	mode := policy.Mode("Normal")
	src := modeFunc(func() policy.Mode {
		mu.Lock()
		defer mu.Unlock()
		return mode
	})
	e := New("ecu", src, DefaultCycleModel())
	if err := e.Install(c); err != nil {
		t.Fatal(err)
	}
	if e.Decide(canbus.Read, frame(0x7DF)) != canbus.Block {
		t.Fatal("diag ID granted in Normal mode")
	}
	mu.Lock()
	mode = "Diag"
	mu.Unlock()
	if e.Decide(canbus.Read, frame(0x7DF)) != canbus.Grant {
		t.Error("diag ID blocked in Diag mode")
	}
}

// modeFunc adapts a closure to ModeSource.
type modeFunc func() policy.Mode

func (f modeFunc) Mode() policy.Mode { return f() }

func TestStatsAccounting(t *testing.T) {
	e := newEngine(t, "Normal")
	e.Decide(canbus.Read, frame(0x100))  // grant
	e.Decide(canbus.Read, frame(0x101))  // block
	e.Decide(canbus.Write, frame(0x200)) // grant
	e.Decide(canbus.Write, frame(0x201)) // block
	st := e.Stats()
	if st.Decisions != 4 || st.ReadsGranted != 1 || st.ReadsBlocked != 1 ||
		st.WritesGranted != 1 || st.WritesBlocked != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cycles != 4*DefaultCycleModel().PerDecision() {
		t.Errorf("cycles = %d", st.Cycles)
	}
	if st.Installs != 1 {
		t.Errorf("installs = %d", st.Installs)
	}
}

func TestCycleModel(t *testing.T) {
	m := DefaultCycleModel()
	if m.PerDecision() != 4 {
		t.Errorf("PerDecision = %d, want 4", m.PerDecision())
	}
	if ns := m.LatencyNanos(m.PerDecision()); ns != 40 {
		t.Errorf("latency = %v ns, want 40 (4 cycles @ 100MHz)", ns)
	}
	var zero CycleModel
	if zero.LatencyNanos(10) != 0 {
		t.Error("zero clock should yield zero latency, not NaN/Inf")
	}
}

func TestInstallRejectsNil(t *testing.T) {
	e := New("ecu", FixedMode("Normal"), DefaultCycleModel())
	if err := e.Install(nil); err == nil {
		t.Error("nil compile accepted")
	}
}

func TestNewPanicsOnNilModeSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil ModeSource accepted")
		}
	}()
	New("ecu", nil, DefaultCycleModel())
}

func TestHotSwapTables(t *testing.T) {
	e := newEngine(t, "Normal")
	if e.Decide(canbus.Read, frame(0x300)) != canbus.Block {
		t.Fatal("0x300 granted before update")
	}
	v2 := compiled(t, `policy "p" version 2 {
  allow read 0x100, 0x300 at ecu
  allow write 0x200 at ecu
}`, []string{"ecu"}, []policy.Mode{"Normal", "Diag"})
	if err := e.Install(v2); err != nil {
		t.Fatal(err)
	}
	if e.Decide(canbus.Read, frame(0x300)) != canbus.Grant {
		t.Error("0x300 blocked after update")
	}
	if e.Decide(canbus.Read, frame(0x100)) != canbus.Grant {
		t.Error("0x100 regressed after update")
	}
}

func TestDeploy(t *testing.T) {
	sched := &sim.Scheduler{}
	bus := canbus.New(sched, canbus.Config{})
	bus.MustAttach("ecu")
	bus.MustAttach("sensors")
	c := compiled(t, `policy "p" version 1 {
  allow read 0x100 at ecu
  allow write 0x100 at sensors
}`, []string{"ecu", "sensors"}, []policy.Mode{"Normal"})

	engines, err := Deploy(bus, c, FixedMode("Normal"), DefaultCycleModel(), "ecu", "sensors")
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != 2 {
		t.Fatalf("deployed %d engines", len(engines))
	}

	// End-to-end: sensors may send 0x100, ecu receives; 0x200 is blocked at
	// the sensors' write filter.
	sensors, _ := bus.Node("sensors")
	ecu, _ := bus.Node("ecu")
	got := 0
	ecu.Controller().SetHandler(func(canbus.Frame) { got++ })
	if err := sensors.Send(frame(0x100)); err != nil {
		t.Fatal(err)
	}
	if err := sensors.Send(frame(0x200)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 {
		t.Errorf("ecu received %d frames, want 1", got)
	}
	if st := engines["sensors"].Stats(); st.WritesBlocked != 1 {
		t.Errorf("sensors WritesBlocked = %d", st.WritesBlocked)
	}

	if _, err := Deploy(bus, c, FixedMode("Normal"), DefaultCycleModel(), "ghost"); err == nil {
		t.Error("Deploy accepted unknown node")
	}
}

func TestConcurrentDecideAndInstall(t *testing.T) {
	e := newEngine(t, "Normal")
	c2 := compiled(t, testPolicy, []string{"ecu"}, []policy.Mode{"Normal", "Diag"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Install(c2)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Decide(canbus.Read, frame(0x100))
			}
		}()
	}
	for i := 0; i < 4000; i++ {
		e.Decide(canbus.Write, frame(0x200))
	}
	close(stop)
	wg.Wait()
	st := e.Stats()
	if st.ReadsBlocked != 0 {
		t.Errorf("reads blocked during hot swap: %d (swap must be atomic)", st.ReadsBlocked)
	}
}
