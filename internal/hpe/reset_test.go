package hpe

import (
	"testing"

	"repro/internal/canbus"
	"repro/internal/policy"
)

// reinstallPolicy builds a small compiled policy for the reuse tests.
func reinstallPolicy(t *testing.T, version uint64) *policy.Compiled {
	t.Helper()
	set := &policy.Set{Name: "p", Version: version, Rules: []policy.Rule{
		{Subject: "ecu", Effect: policy.Allow, Action: policy.ActRead, IDs: policy.SingleID(0x100)},
	}}
	c, err := policy.Compile(set, policy.CompileOptions{
		Subjects: []string{"ecu"}, Modes: []policy.Mode{"Normal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineReset checks Reset zeroes the counters while the installed
// table keeps deciding identically.
func TestEngineReset(t *testing.T) {
	c := reinstallPolicy(t, 1)
	e := New("ecu", FixedMode("Normal"), DefaultCycleModel())
	e.SetSingleOwner(true)
	if err := e.Install(c); err != nil {
		t.Fatal(err)
	}
	granted := canbus.MustDataFrame(0x100, nil)
	blocked := canbus.MustDataFrame(0x200, nil)
	e.Decide(canbus.Read, granted)
	e.Decide(canbus.Read, blocked)
	if e.Stats().Decisions != 2 {
		t.Fatalf("stats before reset: %+v", e.Stats())
	}
	e.Reset()
	if e.Stats() != (Stats{}) {
		t.Fatalf("stats after reset: %+v", e.Stats())
	}
	if !e.Installed() {
		t.Fatal("reset dropped the installed table")
	}
	if e.Decide(canbus.Read, granted) != canbus.Grant {
		t.Error("grant path broken after reset")
	}
	if e.Decide(canbus.Read, blocked) != canbus.Block {
		t.Error("block path broken after reset")
	}
}

// TestEngineReinstall checks Reinstall reuses the resolved table for the
// same compiled policy and swaps for a different one.
func TestEngineReinstall(t *testing.T) {
	c1 := reinstallPolicy(t, 1)
	e := New("ecu", FixedMode("Normal"), DefaultCycleModel())
	if err := e.Install(c1); err != nil {
		t.Fatal(err)
	}
	if err := e.Reinstall(c1); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Installs; got != 2 {
		t.Errorf("Installs = %d after Install+Reinstall, want 2", got)
	}
	if e.Decide(canbus.Read, canbus.MustDataFrame(0x100, nil)) != canbus.Grant {
		t.Error("table lost across same-policy Reinstall")
	}

	// A different compiled policy must actually swap.
	set := &policy.Set{Name: "p", Version: 2, Rules: []policy.Rule{
		{Subject: "ecu", Effect: policy.Allow, Action: policy.ActRead, IDs: policy.SingleID(0x200)},
	}}
	c2, err := policy.Compile(set, policy.CompileOptions{
		Subjects: []string{"ecu"}, Modes: []policy.Mode{"Normal"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reinstall(c2); err != nil {
		t.Fatal(err)
	}
	if e.Decide(canbus.Read, canbus.MustDataFrame(0x200, nil)) != canbus.Grant {
		t.Error("Reinstall with a new policy did not swap the table")
	}
	if e.Decide(canbus.Read, canbus.MustDataFrame(0x100, nil)) != canbus.Block {
		t.Error("old table still active after swap")
	}
}

// TestSingleOwnerModeCache checks the single-owner decision cache follows
// mode switches and table swaps.
func TestSingleOwnerModeCache(t *testing.T) {
	set := &policy.Set{Name: "p", Version: 1, Rules: []policy.Rule{
		{Subject: "ecu", Effect: policy.Allow, Action: policy.ActRead,
			IDs: policy.SingleID(0x100), Modes: policy.NewModeSet("Normal")},
		{Subject: "ecu", Effect: policy.Allow, Action: policy.ActRead,
			IDs: policy.SingleID(0x200), Modes: policy.NewModeSet("Diag")},
	}}
	c, err := policy.Compile(set, policy.CompileOptions{
		Subjects: []string{"ecu"}, Modes: []policy.Mode{"Normal", "Diag"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mode := policy.Mode("Normal")
	e := New("ecu", modeFunc(func() policy.Mode { return mode }), DefaultCycleModel())
	e.SetSingleOwner(true)
	if err := e.Install(c); err != nil {
		t.Fatal(err)
	}
	f1 := canbus.MustDataFrame(0x100, nil)
	f2 := canbus.MustDataFrame(0x200, nil)
	if e.Decide(canbus.Read, f1) != canbus.Grant || e.Decide(canbus.Read, f2) != canbus.Block {
		t.Fatal("Normal-mode decisions wrong")
	}
	mode = "Diag"
	if e.Decide(canbus.Read, f1) != canbus.Block || e.Decide(canbus.Read, f2) != canbus.Grant {
		t.Error("cache not invalidated on mode switch")
	}
}
