package hpe

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/policy"
)

// This file adds the engine's audit facility. The paper's §IV assigns the
// software layer the job of "identifying anomalous behaviour"; blocked
// frames at the hardware engine are the rawest anomaly signal there is, so
// the engine can record them into a bounded ring for the host to drain.

// AuditRecord is one blocked frame.
type AuditRecord struct {
	// Seq increases monotonically per engine.
	Seq uint64
	// At is the virtual time of the decision (zero if no clock installed).
	At time.Duration
	// Subject is the protected node.
	Subject string
	// Direction of the blocked frame.
	Direction canbus.Direction
	// Mode the device was in.
	Mode policy.Mode
	// ID and DLC of the blocked frame (payload is deliberately not stored:
	// the audit channel must not become an exfiltration channel).
	ID  uint32
	DLC uint8
}

// String renders one audit line.
func (r AuditRecord) String() string {
	return fmt.Sprintf("hpe[%d] %v %s blocked %s 0x%03X dlc=%d (mode %s)",
		r.Seq, r.At, r.Subject, r.Direction, r.ID, r.DLC, r.Mode)
}

// Auditor is the bounded blocked-frame ring attached to an Engine.
type Auditor struct {
	mu    sync.Mutex
	cap   int
	seq   uint64
	ring  []AuditRecord
	clock func() time.Duration
}

// NewAuditor creates an auditor keeping up to capacity records (default 256
// when capacity <= 0). clock may be nil.
func NewAuditor(capacity int, clock func() time.Duration) *Auditor {
	if capacity <= 0 {
		capacity = 256
	}
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Auditor{cap: capacity, clock: clock}
}

// record appends one blocked-frame record, evicting the oldest at capacity.
func (a *Auditor) record(subject string, dir canbus.Direction, mode policy.Mode, f canbus.Frame) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	rec := AuditRecord{
		Seq: a.seq, At: a.clock(), Subject: subject,
		Direction: dir, Mode: mode, ID: f.ID, DLC: f.DLC,
	}
	if len(a.ring) >= a.cap {
		copy(a.ring, a.ring[1:])
		a.ring = a.ring[:len(a.ring)-1]
	}
	a.ring = append(a.ring, rec)
}

// Drain returns and clears the recorded blocks (oldest first).
func (a *Auditor) Drain() []AuditRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.ring
	a.ring = nil
	return out
}

// Len returns the number of buffered records.
func (a *Auditor) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ring)
}

// AttachAuditor installs (or, with nil, removes) the engine's auditor.
func (e *Engine) AttachAuditor(a *Auditor) {
	e.lock()
	defer e.unlock()
	e.auditor = a
}
