// Package shard partitions a fleet sweep across multiple engine runs — and,
// through a caller-supplied spawn hook, across multiple processes — without
// perturbing a single vehicle's trajectory.
//
// The engine already guarantees that vehicle i is a pure function of
// (config, root seed, i): seeds derive from the global index, and every
// supervision coordinate (chaos fault rolls, verify sampling) keys on it
// too. Sharding therefore only has to preserve the index space. A shard is
// a contiguous range [Start, Start+Count) of global vehicle indices run as
// an independent engine.Run with Config.IndexOffset = Start; the merge
// folds shard vehicle reports in range order through engine.MergeFold —
// the same fold the unsharded run applies, in the same order, so the
// merged report is byte-identical to the unsharded oracle (float summation
// order included, Health ledgers summed per class).
//
// Shard outcomes arrive as a Stream of vehicle reports and the driver
// folds them as they are decoded: the parent never buffers a whole shard's
// report set. Two wire formats implement the stream — the binary frame
// protocol in the nested wire package (the default; compact, CRC-guarded,
// streamed frame by frame as the child's vehicles complete) and the PR 9
// JSON document (WireReport; kept as the human-debuggable fallback and the
// differential-test oracle).
//
// In-process shards run sequentially — each shard's engine.Run is itself
// parallel across Config.Workers, and on a single machine stacking two
// layers of parallelism only adds scheduler noise. The Spawn hook is where
// real scale-out happens: carsim -shards N -shard-exec re-invokes itself
// once per range and streams each child's stdout, Config.Parallelism keeps
// up to that many children running at once while the merge still consumes
// shards strictly in range order (a bounded per-shard reorder window), and
// the same hook shape would drive genuinely remote shard hosts. See
// DESIGN.md §13–14.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/shard/wire"
)

// Range is one shard's slice of the global vehicle index space.
type Range struct {
	// Start is the first global vehicle index of the shard.
	Start int
	// Count is the number of vehicles the shard simulates.
	Count int
}

// String renders the range as "start:count" (the format carsim's hidden
// -shard-range flag accepts).
func (r Range) String() string { return fmt.Sprintf("%d:%d", r.Start, r.Count) }

// ParseRange parses the "start:count" rendering of a Range. Exactly two
// non-empty decimal digit runs joined by one colon — no sign, no spaces,
// no trailing bytes (fmt.Sscanf's leniency once let "0:5x" parse as 0:5,
// which would have a shard silently simulating a range the parent never
// asked for).
func ParseRange(s string) (Range, error) {
	start, count, ok := strings.Cut(s, ":")
	if !ok || !allDigits(start) || !allDigits(count) {
		return Range{}, fmt.Errorf("shard: bad range %q (want start:count)", s)
	}
	var r Range
	var err error
	if r.Start, err = strconv.Atoi(start); err != nil {
		return Range{}, fmt.Errorf("shard: bad range %q: %w", s, err)
	}
	if r.Count, err = strconv.Atoi(count); err != nil {
		return Range{}, fmt.Errorf("shard: bad range %q: %w", s, err)
	}
	if r.Count <= 0 {
		return Range{}, fmt.Errorf("shard: bad range %q (count must be > 0)", s)
	}
	return r, nil
}

// allDigits reports whether s is one or more ASCII decimal digits.
func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Ranges partitions total vehicles into n contiguous ranges covering
// [0, total) exactly once. Sizes differ by at most one (the remainder goes
// to the earliest shards), so the layout is a pure function of (total, n).
// n is clamped to [1, total]; empty shards never exist.
func Ranges(total, n int) []Range {
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	base, rem := total/n, total%n
	out := make([]Range, n)
	start := 0
	for i := range out {
		count := base
		if i < rem {
			count++
		}
		out[i] = Range{Start: start, Count: count}
		start += count
	}
	return out
}

// Stream is one shard's outcome consumed incrementally: Next yields the
// shard's vehicle reports in global index order and io.EOF when the shard
// is done; Trailer (valid only after io.EOF) returns the range echo the
// driver asserts against and the shard's sweep error text ("" on
// success); Close releases transport resources (for a subprocess shard,
// reaps the child). Both wire formats and the in-process path implement
// it, so the driver folds all three identically.
type Stream interface {
	Next() (*engine.VehicleReport, error)
	Trailer() (r Range, errText string, err error)
	Close() error
}

// WireReport is the serialized outcome of one shard in the JSON wire
// format — PR 9's document shape, kept as the debugging fallback and the
// differential-test oracle for the binary protocol. It reuses the
// engine's own report encoding (every field of engine.VehicleReport is
// exported and JSON round-trips exactly, float64 included), framed with
// the range it covers so the parent can assert the child ran the slice it
// was asked to.
type WireReport struct {
	// Range echoes the shard's index slice.
	Range Range
	// Vehicles are the shard's per-vehicle reports in global index order.
	Vehicles []engine.VehicleReport
	// Err carries the shard's sweep error text ("" on success): a shard that
	// hits an unrecoverable cell still ships its partial vehicles, exactly
	// as engine.Run returns the partial merged report alongside the error.
	Err string
}

// Encode writes the wire report as a single JSON document.
func (w *WireReport) Encode(out io.Writer) error {
	return json.NewEncoder(out).Encode(w)
}

// DecodeWireReport reads one shard wire report.
func DecodeWireReport(in io.Reader) (*WireReport, error) {
	var w WireReport
	if err := json.NewDecoder(in).Decode(&w); err != nil {
		return nil, fmt.Errorf("shard: decode wire report: %w", err)
	}
	return &w, nil
}

// Stream adapts the buffered JSON document to the driver's streaming
// consumption.
func (w *WireReport) Stream() Stream { return &sliceStream{w: w} }

type sliceStream struct {
	w *WireReport
	i int
}

func (s *sliceStream) Next() (*engine.VehicleReport, error) {
	if s.i >= len(s.w.Vehicles) {
		return nil, io.EOF
	}
	v := &s.w.Vehicles[s.i]
	s.i++
	return v, nil
}

func (s *sliceStream) Trailer() (Range, string, error) { return s.w.Range, s.w.Err, nil }
func (s *sliceStream) Close() error                    { return nil }

// NewWireStream wraps a binary wire stream (a shard child's stdout pipe)
// as a Stream. closeFn, when non-nil, runs on Close — the subprocess hook
// reaps the child there.
func NewWireStream(in io.Reader, closeFn func() error) Stream {
	return &wireStream{r: wire.NewReader(in), closeFn: closeFn}
}

type wireStream struct {
	r       *wire.Reader
	closeFn func() error
}

func (s *wireStream) Next() (*engine.VehicleReport, error) { return s.r.Next() }

func (s *wireStream) Trailer() (Range, string, error) {
	t, err := s.r.Trailer()
	if err != nil {
		return Range{}, "", err
	}
	return Range{Start: t.Start, Count: t.Count}, t.Err, nil
}

func (s *wireStream) Close() error {
	if s.closeFn != nil {
		return s.closeFn()
	}
	return nil
}

// RunRange executes one shard in this process: cfg describes the WHOLE
// fleet (total Fleet, zero IndexOffset); the shard simulates the global
// vehicles in r. The returned wire report always carries whatever vehicles
// completed, with Err set when the sweep was unrecoverable — callers
// (subprocess children, the in-process driver) forward both.
func RunRange(cfg engine.Config, r Range) *WireReport {
	sub := cfg
	sub.Fleet = r.Count
	sub.IndexOffset = r.Start
	w := &WireReport{Range: r}
	fr, err := engine.Run(sub)
	if fr != nil {
		w.Vehicles = fr.Vehicles
	}
	if err != nil {
		w.Err = err.Error()
	}
	return w
}

// RunRangeWire executes one shard in this process and emits the binary
// wire stream to out as vehicles complete — the shard child's streaming
// emit loop. Frames are written through engine.Config.OnVehicle in global
// index order; the trailer carries the range echo and the sweep's error
// text, so an unrecoverable shard still ships its partial vehicles first
// (the same partial-report contract as RunRange). The returned error
// reports transport failures only — a sweep error travels in the trailer.
func RunRangeWire(cfg engine.Config, r Range, out io.Writer) error {
	sub := cfg
	sub.Fleet = r.Count
	sub.IndexOffset = r.Start
	w := wire.NewWriter(out)
	var werr error
	sub.OnVehicle = func(v *engine.VehicleReport) {
		if werr == nil {
			werr = w.WriteVehicle(v)
		}
	}
	_, err := engine.Run(sub)
	if werr != nil {
		return fmt.Errorf("shard %s: wire write: %w", r, werr)
	}
	t := wire.Trailer{Start: r.Start, Count: r.Count}
	if err != nil {
		t.Err = err.Error()
	}
	if err := w.WriteTrailer(t); err != nil {
		return fmt.Errorf("shard %s: wire trailer: %w", r, err)
	}
	return nil
}

// Spawn runs one shard range somewhere else — typically a subprocess
// re-invoking the same binary with a -shard-range flag — and returns a
// stream over its vehicle reports. The hook owns process plumbing (argv,
// pipes, exit codes); the driver only consumes the stream. A Spawn error
// is recorded like a shard sweep failure: the driver keeps merging the
// remaining ranges and returns the partial report alongside the joined
// error.
type Spawn func(r Range) (Stream, error)

// defaultWindow bounds each in-flight shard's decoded-but-unmerged
// vehicle reports under concurrent fan-out (Config.Window).
const defaultWindow = 256

// Config parameterises a sharded sweep.
type Config struct {
	// Engine is the WHOLE-fleet run configuration (total Fleet, the
	// unsharded Workers value, zero IndexOffset). Each shard derives its
	// sub-config from it; the merged report renders under it.
	Engine engine.Config
	// Shards is the number of contiguous ranges (clamped to [1, Fleet]).
	Shards int
	// Spawn, when non-nil, runs each range out of process; nil runs the
	// ranges in this process, sequentially.
	Spawn Spawn
	// Parallelism bounds how many spawned shards run concurrently
	// (default 1: sequential, PR 9's behaviour). The merge still consumes
	// shards strictly in range order — a shard that finishes early parks
	// at most Window vehicle reports until its turn. Ignored without
	// Spawn: in-process shards are already parallel across
	// Engine.Workers.
	Parallelism int
	// Window bounds each in-flight shard's decoded-but-unmerged vehicle
	// reports under concurrent fan-out (default 256). Total parent-side
	// reorder memory is ≤ Parallelism × Window reports beyond the merged
	// report itself.
	Window int
}

// Run executes the sharded sweep and merges shard outcomes
// deterministically in range order. The merged report is byte-identical
// to the unsharded engine.Run for every shard count, wire format and
// parallelism level, with or without the spawn hook: the per-vehicle
// reports are pure functions of global indices, and the merge is the
// engine's own fold over the same vehicle order. Like engine.Run, a
// failing shard — a spawn error, a corrupt stream, a sweep error in the
// trailer — is recorded and the remaining ranges still merge: Run returns
// the merged partial report alongside the joined error.
func Run(cfg Config) (*engine.FleetReport, error) {
	ec := cfg.Engine
	if ec.Fleet <= 0 {
		ec.Fleet = 1
	}
	if ec.IndexOffset != 0 {
		return nil, errors.New("shard: Engine.IndexOffset must be zero (the driver owns the index space)")
	}
	fold, err := engine.NewMergeFold(ec)
	if err != nil {
		return nil, err
	}
	ranges := Ranges(ec.Fleet, cfg.Shards)
	var errs []error
	if cfg.Spawn != nil && cfg.Parallelism > 1 && len(ranges) > 1 {
		errs = runParallel(ranges, cfg, fold)
	} else {
		for _, r := range ranges {
			var st Stream
			if cfg.Spawn != nil {
				var err error
				if st, err = cfg.Spawn(r); err != nil {
					errs = append(errs, fmt.Errorf("shard %s: %w", r, err))
					continue
				}
			} else {
				st = RunRange(ec, r).Stream()
			}
			errs = append(errs, drainShard(fold, st, r)...)
		}
	}
	return fold.Finish(), errors.Join(errs...)
}

// drainShard folds one shard stream into the merge, enforcing the range
// contract: at most r.Count vehicles are folded, the trailer must echo r,
// and a trailer error text is recorded like a sweep failure. Every
// anomaly is recorded, never fatal — the caller keeps merging other
// shards.
func drainShard(fold *engine.MergeFold, st Stream, r Range) []error {
	var errs []error
	n := 0
	for {
		v, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %s: %w", r, err))
			if cerr := st.Close(); cerr != nil {
				errs = append(errs, fmt.Errorf("shard %s: close: %w", r, cerr))
			}
			return errs
		}
		if n < r.Count {
			fold.Add(*v)
		}
		n++
	}
	if n > r.Count {
		errs = append(errs, fmt.Errorf("shard %s: stream carried %d vehicles", r, n))
	}
	tr, errText, terr := st.Trailer()
	if terr != nil {
		errs = append(errs, fmt.Errorf("shard %s: trailer: %w", r, terr))
	} else {
		if tr != r {
			errs = append(errs, fmt.Errorf("shard %s: stream covers %s", r, tr))
		}
		if errText != "" {
			errs = append(errs, fmt.Errorf("shard %s: %s", r, errText))
		}
	}
	if cerr := st.Close(); cerr != nil {
		errs = append(errs, fmt.Errorf("shard %s: close: %w", r, cerr))
	}
	return errs
}

// slot is one range's reorder buffer under concurrent fan-out: the
// producer (a fan-out worker) pumps the shard's stream into ch and
// records the trailer; the merger drains slots strictly in range order.
// All non-channel fields are written before close(ch) and read only after
// the drain loop observes the close, so the close is the happens-before
// edge.
type slot struct {
	ch        chan engine.VehicleReport
	streamErr error // spawn or stream failure; surfaces after buffered vehicles
	trailer   Range
	errText   string
	trailerEr error
	closeErr  error
}

// chanStream adapts a slot back to the Stream interface so the merger
// reuses drainShard's validation verbatim.
type chanStream struct{ s *slot }

func (c *chanStream) Next() (*engine.VehicleReport, error) {
	v, ok := <-c.s.ch
	if !ok {
		if c.s.streamErr != nil {
			return nil, c.s.streamErr
		}
		return nil, io.EOF
	}
	return &v, nil
}

func (c *chanStream) Trailer() (Range, string, error) {
	return c.s.trailer, c.s.errText, c.s.trailerEr
}

func (c *chanStream) Close() error { return c.s.closeErr }

// runParallel fans spawned shards out across a bounded worker group while
// the merge consumes them strictly in range order. Memory stays bounded:
// a semaphore released only when the merger finishes a shard caps the
// claimed-but-unmerged shards at the parallelism level, and each of those
// parks at most Window decoded reports in its slot channel — a shard that
// outpaces the merge cursor blocks on its full window, it does not
// buffer. Claims come off an atomic cursor, so the outstanding set is
// always the contiguous window just ahead of the merge cursor and the
// shard the merger waits on always has a running producer (no deadlock).
func runParallel(ranges []Range, cfg Config, fold *engine.MergeFold) []error {
	par := cfg.Parallelism
	if par > len(ranges) {
		par = len(ranges)
	}
	window := cfg.Window
	if window <= 0 {
		window = defaultWindow
	}
	slots := make([]*slot, len(ranges))
	for i, r := range ranges {
		buf := window
		if r.Count < buf {
			buf = r.Count
		}
		slots[i] = &slot{ch: make(chan engine.VehicleReport, buf)}
	}
	sem := make(chan struct{}, par)
	var next atomic.Int64
	for w := 0; w < par; w++ {
		go func() {
			for {
				sem <- struct{}{} // merger receives once the shard is merged
				i := int(next.Add(1)) - 1
				if i >= len(ranges) {
					<-sem // return the unused token
					return
				}
				produce(slots[i], ranges[i], cfg.Spawn)
			}
		}()
	}
	var errs []error
	for i, r := range ranges {
		errs = append(errs, drainShard(fold, &chanStream{s: slots[i]}, r)...)
		<-sem
	}
	return errs
}

// produce runs one spawned shard and pumps its stream into the slot.
func produce(s *slot, r Range, spawn Spawn) {
	defer close(s.ch)
	st, err := spawn(r)
	if err != nil {
		s.streamErr = err
		return
	}
	for {
		v, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.streamErr = err
			s.closeErr = st.Close()
			return
		}
		s.ch <- *v
	}
	s.trailer, s.errText, s.trailerEr = st.Trailer()
	s.closeErr = st.Close()
}
