// Package shard partitions a fleet sweep across multiple engine runs — and,
// through a caller-supplied spawn hook, across multiple processes — without
// perturbing a single vehicle's trajectory.
//
// The engine already guarantees that vehicle i is a pure function of
// (config, root seed, i): seeds derive from the global index, and every
// supervision coordinate (chaos fault rolls, verify sampling) keys on it
// too. Sharding therefore only has to preserve the index space. A shard is
// a contiguous range [Start, Start+Count) of global vehicle indices run as
// an independent engine.Run with Config.IndexOffset = Start; the merge
// concatenates shard vehicle slices in range order and folds them through
// engine.Merge — the same fold the unsharded run applies, in the same
// order, so the merged report is byte-identical to the unsharded oracle
// (float summation order included, Health ledgers summed per class).
//
// In-process shards run sequentially — each shard's engine.Run is itself
// parallel across Config.Workers, and on a single machine stacking two
// layers of parallelism only adds scheduler noise. The Spawn hook is where
// real scale-out happens: carsim -shards N -shard-exec re-invokes itself
// once per range and decodes each child's wire report, and the same hook
// shape would drive genuinely remote shard hosts. See DESIGN.md §13.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/engine"
)

// Range is one shard's slice of the global vehicle index space.
type Range struct {
	// Start is the first global vehicle index of the shard.
	Start int
	// Count is the number of vehicles the shard simulates.
	Count int
}

// String renders the range as "start:count" (the format carsim's hidden
// -shard-range flag accepts).
func (r Range) String() string { return fmt.Sprintf("%d:%d", r.Start, r.Count) }

// ParseRange parses the "start:count" rendering of a Range.
func ParseRange(s string) (Range, error) {
	var r Range
	if _, err := fmt.Sscanf(s, "%d:%d", &r.Start, &r.Count); err != nil {
		return Range{}, fmt.Errorf("shard: bad range %q (want start:count): %w", s, err)
	}
	if r.Start < 0 || r.Count <= 0 {
		return Range{}, fmt.Errorf("shard: bad range %q (start must be >= 0, count > 0)", s)
	}
	return r, nil
}

// Ranges partitions total vehicles into n contiguous ranges covering
// [0, total) exactly once. Sizes differ by at most one (the remainder goes
// to the earliest shards), so the layout is a pure function of (total, n).
// n is clamped to [1, total]; empty shards never exist.
func Ranges(total, n int) []Range {
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	base, rem := total/n, total%n
	out := make([]Range, n)
	start := 0
	for i := range out {
		count := base
		if i < rem {
			count++
		}
		out[i] = Range{Start: start, Count: count}
		start += count
	}
	return out
}

// WireReport is the serialized outcome of one shard — the subprocess wire
// format. It reuses the engine's own report encoding (every field of
// engine.VehicleReport is exported and JSON round-trips exactly, float64
// included), framed with the range it covers so the parent can assert the
// child ran the slice it was asked to.
type WireReport struct {
	// Range echoes the shard's index slice.
	Range Range
	// Vehicles are the shard's per-vehicle reports in global index order.
	Vehicles []engine.VehicleReport
	// Err carries the shard's sweep error text ("" on success): a shard that
	// hits an unrecoverable cell still ships its partial vehicles, exactly
	// as engine.Run returns the partial merged report alongside the error.
	Err string
}

// Encode writes the wire report as a single JSON document.
func (w *WireReport) Encode(out io.Writer) error {
	return json.NewEncoder(out).Encode(w)
}

// DecodeWireReport reads one shard wire report.
func DecodeWireReport(in io.Reader) (*WireReport, error) {
	var w WireReport
	if err := json.NewDecoder(in).Decode(&w); err != nil {
		return nil, fmt.Errorf("shard: decode wire report: %w", err)
	}
	return &w, nil
}

// RunRange executes one shard in this process: cfg describes the WHOLE
// fleet (total Fleet, zero IndexOffset); the shard simulates the global
// vehicles in r. The returned wire report always carries whatever vehicles
// completed, with Err set when the sweep was unrecoverable — callers
// (subprocess children, the in-process driver) forward both.
func RunRange(cfg engine.Config, r Range) *WireReport {
	sub := cfg
	sub.Fleet = r.Count
	sub.IndexOffset = r.Start
	w := &WireReport{Range: r}
	fr, err := engine.Run(sub)
	if fr != nil {
		w.Vehicles = fr.Vehicles
	}
	if err != nil {
		w.Err = err.Error()
	}
	return w
}

// Spawn runs one shard range somewhere else — typically a subprocess
// re-invoking the same binary with a -shard-range flag — and returns its
// decoded wire report. The hook owns process plumbing (argv, stdout
// decoding, exit codes); the driver only consumes the report.
type Spawn func(r Range) (*WireReport, error)

// Config parameterises a sharded sweep.
type Config struct {
	// Engine is the WHOLE-fleet run configuration (total Fleet, the
	// unsharded Workers value, zero IndexOffset). Each shard derives its
	// sub-config from it; the merged report renders under it.
	Engine engine.Config
	// Shards is the number of contiguous ranges (clamped to [1, Fleet]).
	Shards int
	// Spawn, when non-nil, runs each range out of process; nil runs the
	// ranges in this process, sequentially.
	Spawn Spawn
}

// Run executes the sharded sweep and merges shard outcomes deterministically
// in range order. The merged report is byte-identical to the unsharded
// engine.Run for every shard count, with or without the spawn hook: the
// per-vehicle reports are pure functions of global indices, and the merge is
// the engine's own fold over the same vehicle order. Like engine.Run, an
// unrecoverable shard still yields the merged partial report alongside the
// joined error.
func Run(cfg Config) (*engine.FleetReport, error) {
	ec := cfg.Engine
	if ec.Fleet <= 0 {
		ec.Fleet = 1
	}
	if ec.IndexOffset != 0 {
		return nil, errors.New("shard: Engine.IndexOffset must be zero (the driver owns the index space)")
	}
	ranges := Ranges(ec.Fleet, cfg.Shards)
	vehicles := make([]engine.VehicleReport, 0, ec.Fleet)
	var errs []error
	for _, r := range ranges {
		var w *WireReport
		if cfg.Spawn != nil {
			var err error
			if w, err = cfg.Spawn(r); err != nil {
				return nil, fmt.Errorf("shard %s: %w", r, err)
			}
			if w.Range != r {
				return nil, fmt.Errorf("shard %s: wire report covers %s", r, w.Range)
			}
			if len(w.Vehicles) > r.Count {
				return nil, fmt.Errorf("shard %s: wire report carries %d vehicles", r, len(w.Vehicles))
			}
		} else {
			w = RunRange(ec, r)
		}
		vehicles = append(vehicles, w.Vehicles...)
		if w.Err != "" {
			errs = append(errs, fmt.Errorf("shard %s: %s", r, w.Err))
		}
	}
	merged, err := engine.Merge(ec, vehicles)
	if err != nil {
		return nil, err
	}
	return merged, errors.Join(errs...)
}
