// Package wire is the binary shard transport: a compact, versioned,
// length-prefixed frame stream carrying one engine.VehicleReport per frame,
// terminated by a trailer frame that echoes the shard's range and error
// text.
//
// The JSON wire format PR 9 shipped proves the sharding contract but pays
// for it: at fleet=10^6 each child JSON-encodes ~250k vehicle reports
// (~1GB across the pipe) and the parent buffers every child's entire
// stdout before decoding. This codec replaces the document with a stream —
// frames are written as vehicles complete and decoded as they arrive, so
// neither side ever holds a whole shard's report set — and replaces JSON
// text with a structural binary encoding: zigzag varints for ints,
// unsigned varints for uint64s and lengths, raw IEEE-754 bits for
// float64s, length-prefixed UTF-8 for strings, nested structs
// (attack.RegimeSummary, Groups, Health) encoded field by field in
// declaration order.
//
// # Stream grammar
//
//	stream  := header frame* trailer
//	header  := magic(4) version(uvarint)
//	frame   := length(uvarint) payload(length) crc32(4, LE, IEEE of payload)
//	payload := kind(1) body
//	kind    := 0x01 (vehicle) | 0x02 (trailer)
//
// Every frame carries a CRC32 of its payload, verified before any
// structural decode: a corrupted pipe surfaces as a typed
// ErrFrameChecksum the shard driver records like any other shard failure
// (the PR 7 containment stance — a bad shard becomes a quarantine record,
// not a silently mis-merged report). Framing anomalies — truncation, an
// oversized length, bytes after the trailer, a missing trailer — wrap the
// same sentinel, so "any flipped byte errors out" holds across the whole
// stream, not just payload bytes.
//
// # Versioning
//
// The header's version is a single uvarint, bumped on any change to the
// frame grammar or the field layout of either payload kind. Readers reject
// versions they do not speak with ErrVersion (no in-band negotiation: the
// parent spawns the children from the same binary, and a remote shard host
// pins its protocol version in its handshake). Fields are not tagged — the
// encoding is positional, which is what makes it ~10x smaller than JSON —
// so schema evolution always bumps the version.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/attack"
	"repro/internal/engine"
)

// Version is the protocol version this package speaks. Bumped on any
// change to the stream grammar or payload layout.
const Version = 1

// magic opens every stream: "CSW1" (carsim shard wire). Distinguishes a
// binary stream from a JSON document ('{') at the first byte.
var magic = [4]byte{'C', 'S', 'W', 0x01}

// Frame payload kinds.
const (
	kindVehicle = 0x01
	kindTrailer = 0x02
)

// maxFrame bounds a frame's declared payload length (64 MiB). A real
// vehicle report encodes in well under a kilobyte; anything near the cap
// is a corrupted length prefix, rejected before allocation.
const maxFrame = 1 << 26

// Typed stream errors.
var (
	// ErrBadMagic reports a stream that does not open with the wire magic
	// (e.g. a JSON child piped into a binary reader).
	ErrBadMagic = errors.New("wire: bad stream magic")
	// ErrVersion reports a stream speaking a protocol version this reader
	// does not.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrFrameChecksum reports a corrupted stream: a frame whose CRC32
	// does not match its payload, or any framing anomaly that is
	// indistinguishable from corruption (truncation, an oversized or
	// malformed length prefix, a malformed payload, bytes after the
	// trailer, a stream that ends without one).
	ErrFrameChecksum = errors.New("wire: frame checksum/framing violation")
)

// Trailer is the final frame of a shard stream: the range echo the parent
// asserts against, and the shard's sweep error text ("" on success). Plain
// ints rather than shard.Range so the shard package can depend on wire
// without a cycle.
type Trailer struct {
	// Start and Count echo the shard's index slice.
	Start int
	Count int
	// Err carries the shard's sweep error text ("" on success): a shard
	// that hits an unrecoverable cell still ships its partial vehicles,
	// then reports the failure here.
	Err string
}

// Writer encodes a shard stream. The header is written lazily on the
// first frame so constructing a Writer is free; WriteTrailer ends the
// stream (and flushes), after which the Writer must not be used.
type Writer struct {
	w      *bufio.Writer
	wrote  bool
	buf    []byte // frame payload scratch, reused across frames
	prefix []byte // length-prefix scratch
}

// NewWriter returns a Writer emitting the stream to out.
func NewWriter(out io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(out, 1<<16)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	var v [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(v[:], Version)
	_, err := w.w.Write(v[:n])
	return err
}

// frame writes one length-prefixed, CRC-trailed frame around the payload
// currently in w.buf.
func (w *Writer) frame() error {
	if err := w.header(); err != nil {
		return err
	}
	w.prefix = binary.AppendUvarint(w.prefix[:0], uint64(len(w.buf)))
	if _, err := w.w.Write(w.prefix); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf))
	_, err := w.w.Write(crc[:])
	return err
}

// WriteVehicle emits one vehicle frame.
func (w *Writer) WriteVehicle(v *engine.VehicleReport) error {
	w.buf = append(w.buf[:0], kindVehicle)
	w.buf = appendVehicle(w.buf, v)
	return w.frame()
}

// WriteTrailer emits the trailer frame and flushes the stream.
func (w *Writer) WriteTrailer(t Trailer) error {
	w.buf = append(w.buf[:0], kindTrailer)
	w.buf = appendInt(w.buf, t.Start)
	w.buf = appendInt(w.buf, t.Count)
	w.buf = appendString(w.buf, t.Err)
	if err := w.frame(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes a shard stream incrementally: Next returns one vehicle
// report at a time and io.EOF once the trailer frame has been consumed;
// Trailer then returns it. Any corruption or framing anomaly surfaces as
// an error wrapping ErrFrameChecksum (or ErrBadMagic/ErrVersion at the
// header).
type Reader struct {
	r       *bufio.Reader
	started bool
	done    bool
	trailer Trailer
	err     error
	buf     []byte // frame payload scratch, reused across frames
}

// NewReader returns a Reader decoding the stream from in.
func NewReader(in io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(in, 1<<16)}
}

func (r *Reader) header() error {
	if r.started {
		return nil
	}
	r.started = true
	var m [4]byte
	if _, err := io.ReadFull(r.r, m[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrBadMagic, err)
	}
	if m != magic {
		return fmt.Errorf("%w: got %q", ErrBadMagic, m[:])
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("%w: reading version: %v", ErrVersion, err)
	}
	if v != Version {
		return fmt.Errorf("%w: stream speaks v%d, reader speaks v%d", ErrVersion, v, Version)
	}
	return nil
}

// readFrame reads one frame into r.buf (payload only), verifying the CRC
// before returning. Every failure mode wraps ErrFrameChecksum except a
// clean EOF exactly at a frame boundary, which returns io.EOF.
func (r *Reader) readFrame() error {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean boundary; caller decides if a trailer was seen
		}
		return fmt.Errorf("%w: frame length: %v", ErrFrameChecksum, err)
	}
	if n == 0 || n > maxFrame {
		return fmt.Errorf("%w: frame length %d out of range", ErrFrameChecksum, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return fmt.Errorf("%w: frame payload: %v", ErrFrameChecksum, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.r, crc[:]); err != nil {
		return fmt.Errorf("%w: frame crc: %v", ErrFrameChecksum, err)
	}
	if got, want := crc32.ChecksumIEEE(r.buf), binary.LittleEndian.Uint32(crc[:]); got != want {
		return fmt.Errorf("%w: crc %08x, frame claims %08x", ErrFrameChecksum, got, want)
	}
	return nil
}

// Next returns the next vehicle report, or io.EOF after the trailer frame
// has been consumed. A Reader that has returned an error keeps returning
// it.
func (r *Reader) Next() (*engine.VehicleReport, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.done {
		return nil, io.EOF
	}
	if err := r.header(); err != nil {
		r.err = err
		return nil, err
	}
	if err := r.readFrame(); err != nil {
		if err == io.EOF {
			// Stream ended without a trailer: truncation.
			err = fmt.Errorf("%w: stream ended before trailer frame", ErrFrameChecksum)
		}
		r.err = err
		return nil, err
	}
	d := dec{b: r.buf}
	kind := d.byte()
	switch kind {
	case kindVehicle:
		var v engine.VehicleReport
		decodeVehicle(&d, &v)
		if d.err != nil || len(d.b) != 0 {
			r.err = fmt.Errorf("%w: malformed vehicle payload", ErrFrameChecksum)
			return nil, r.err
		}
		return &v, nil
	case kindTrailer:
		r.trailer.Start = d.int()
		r.trailer.Count = d.int()
		r.trailer.Err = d.string()
		if d.err != nil || len(d.b) != 0 {
			r.err = fmt.Errorf("%w: malformed trailer payload", ErrFrameChecksum)
			return nil, r.err
		}
		// Nothing may follow the trailer.
		if _, err := r.r.ReadByte(); err != io.EOF {
			r.err = fmt.Errorf("%w: bytes after trailer frame", ErrFrameChecksum)
			return nil, r.err
		}
		r.done = true
		return nil, io.EOF
	default:
		r.err = fmt.Errorf("%w: unknown frame kind %#x", ErrFrameChecksum, kind)
		return nil, r.err
	}
}

// Trailer returns the stream trailer. Valid only after Next has returned
// io.EOF.
func (r *Reader) Trailer() (Trailer, error) {
	if r.err != nil {
		return Trailer{}, r.err
	}
	if !r.done {
		return Trailer{}, fmt.Errorf("%w: trailer requested before stream end", ErrFrameChecksum)
	}
	return r.trailer, nil
}

// --- primitive encoding -------------------------------------------------
//
// Zigzag varints for signed ints, unsigned varints for uint64s and
// lengths, fixed 8-byte little-endian IEEE-754 bits for float64s,
// uvarint-length-prefixed bytes for strings.

func appendInt(b []byte, v int) []byte     { return binary.AppendVarint(b, int64(v)) }
func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendString(b []byte, s string) []byte {
	return append(binary.AppendUvarint(b, uint64(len(s))), s...)
}

// dec is a bounds-checked cursor over one frame payload. Every accessor
// no-ops after the first error, so decode code reads straight through and
// checks d.err once; a malformed payload can never panic (the fuzz
// harness's contract).
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errors.New("wire: truncated payload")
	}
}

func (d *dec) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

func (d *dec) float() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) string() string {
	n := d.uint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// sliceLen validates a declared element count against the bytes left in
// the payload: every element costs at least min bytes, so a count that
// could not possibly fit is a corrupt length, rejected before allocation.
func (d *dec) sliceLen(min int) int {
	n := d.uint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.b)/min)+1 {
		d.fail()
		return 0
	}
	return int(n)
}

// --- struct encoding ----------------------------------------------------
//
// Fields in declaration order; slices as uvarint count + elements. Any
// field added, removed or reordered in these structs bumps Version.

func appendSummary(b []byte, s *attack.Summary) []byte {
	b = appendInt(b, s.Runs)
	b = appendInt(b, s.Succeeded)
	b = appendInt(b, s.Blocked)
	b = appendInt(b, s.FalsePositives)
	b = appendInt(b, s.Injected)
	b = appendUint(b, s.WriteBlocked)
	b = appendUint(b, s.ReadBlocked)
	b = appendInt(b, s.StageRuns)
	b = appendInt(b, s.StagesHalted)
	return b
}

func decodeSummary(d *dec, s *attack.Summary) {
	s.Runs = d.int()
	s.Succeeded = d.int()
	s.Blocked = d.int()
	s.FalsePositives = d.int()
	s.Injected = d.int()
	s.WriteBlocked = d.uint()
	s.ReadBlocked = d.uint()
	s.StageRuns = d.int()
	s.StagesHalted = d.int()
}

func appendRegimes(b []byte, rs []attack.RegimeSummary) []byte {
	b = appendUint(b, uint64(len(rs)))
	for i := range rs {
		b = append(b, byte(rs[i].Regime))
		b = appendSummary(b, &rs[i].Summary)
	}
	return b
}

func decodeRegimes(d *dec) []attack.RegimeSummary {
	// A regime summary is ≥10 bytes (kind byte + 9 varints).
	n := d.sliceLen(10)
	if d.err != nil || n == 0 {
		return nil
	}
	rs := make([]attack.RegimeSummary, n)
	for i := range rs {
		rs[i].Regime = attack.Enforcement(d.byte())
		decodeSummary(d, &rs[i].Summary)
	}
	return rs
}

func appendHealth(b []byte, h *engine.Health) []byte {
	b = appendInt(b, h.Quarantines)
	b = appendInt(b, h.PanicRecoveries)
	b = appendInt(b, h.IntegrityFailures)
	b = appendInt(b, h.DeadlineOverruns)
	b = appendInt(b, h.NotQuiescent)
	b = appendInt(b, h.CrashRecoveries)
	b = appendInt(b, h.Retries)
	b = appendInt(b, int(h.Backoff))
	b = appendInt(b, h.CellDemotions)
	b = appendInt(b, h.VehicleDemotions)
	b = appendInt(b, h.VerifySamples)
	b = appendInt(b, h.VerifyMismatches)
	b = appendInt(b, h.Unrecoverable)
	return b
}

func decodeHealth(d *dec, h *engine.Health) {
	h.Quarantines = d.int()
	h.PanicRecoveries = d.int()
	h.IntegrityFailures = d.int()
	h.DeadlineOverruns = d.int()
	h.NotQuiescent = d.int()
	h.CrashRecoveries = d.int()
	h.Retries = d.int()
	h.Backoff = time.Duration(d.int())
	h.CellDemotions = d.int()
	h.VehicleDemotions = d.int()
	h.VerifySamples = d.int()
	h.VerifyMismatches = d.int()
	h.Unrecoverable = d.int()
}

func appendVehicle(b []byte, v *engine.VehicleReport) []byte {
	b = appendInt(b, v.Index)
	b = appendString(b, v.VIN)
	b = appendUint(b, v.Seed)
	b = appendRegimes(b, v.Attacks)
	b = appendUint(b, uint64(len(v.Groups)))
	for _, g := range v.Groups {
		b = appendRegimes(b, g)
	}
	b = appendUint(b, v.FramesDelivered)
	b = appendUint(b, v.BusErrors)
	b = appendUint(b, v.WriteBlocked)
	b = appendUint(b, v.ReadBlocked)
	b = appendUint(b, v.AbortedTx)
	b = appendFloat(b, v.Utilisation)
	b = appendUint(b, v.SchedulerSteps)
	b = appendInt(b, v.MACChecks)
	b = appendInt(b, v.MACAllowed)
	b = appendHealth(b, &v.Health)
	return b
}

func decodeVehicle(d *dec, v *engine.VehicleReport) {
	v.Index = d.int()
	v.VIN = d.string()
	v.Seed = d.uint()
	v.Attacks = decodeRegimes(d)
	if n := d.sliceLen(1); d.err == nil && n > 0 {
		v.Groups = make([][]attack.RegimeSummary, n)
		for i := range v.Groups {
			v.Groups[i] = decodeRegimes(d)
		}
	}
	v.FramesDelivered = d.uint()
	v.BusErrors = d.uint()
	v.WriteBlocked = d.uint()
	v.ReadBlocked = d.uint()
	v.AbortedTx = d.uint()
	v.Utilisation = d.float()
	v.SchedulerSteps = d.uint()
	v.MACChecks = d.int()
	v.MACAllowed = d.int()
	decodeHealth(d, &v.Health)
}

// AppendVehicle encodes one vehicle report payload (no frame, no CRC) into
// b — the bench and fuzz harnesses' view of the raw encoding.
func AppendVehicle(b []byte, v *engine.VehicleReport) []byte { return appendVehicle(b, v) }

// DecodeVehiclePayload decodes one raw vehicle payload produced by
// AppendVehicle, rejecting trailing bytes.
func DecodeVehiclePayload(b []byte) (*engine.VehicleReport, error) {
	d := dec{b: b}
	var v engine.VehicleReport
	decodeVehicle(&d, &v)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after vehicle payload", len(d.b))
	}
	return &v, nil
}
