package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/shard/wire"
)

// realVehicles runs a small fleet through the real engine (chaos armed so
// the per-vehicle Health ledgers carry non-zero counters) and returns its
// vehicle reports — the codec tests encode production shapes, not
// hand-rolled fixtures.
func realVehicles(t *testing.T, fleet int) []engine.VehicleReport {
	t.Helper()
	fr, err := engine.Run(engine.Config{
		Fleet:          fleet,
		Workers:        2,
		RootSeed:       0xC0FFEE,
		Scenarios:      attack.Scenarios()[:2],
		Regimes:        []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE},
		TrafficHorizon: 10 * time.Millisecond,
		Chaos:          &chaos.Plan{Seed: 7, Panic: 0.2, Corrupt: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny fleets may dodge the probabilistic plan entirely; only the
	// larger corpora insist on fault-bearing ledgers.
	if fleet >= 4 && fr.Health.IsZero() {
		t.Fatal("chaos plan injected nothing; tests need fault-bearing health ledgers")
	}
	return fr.Vehicles
}

// encodeStream renders vehicles + trailer into one complete wire stream.
func encodeStream(t *testing.T, vs []engine.VehicleReport, tr wire.Trailer) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	for i := range vs {
		if err := w.WriteVehicle(&vs[i]); err != nil {
			t.Fatalf("WriteVehicle: %v", err)
		}
	}
	if err := w.WriteTrailer(tr); err != nil {
		t.Fatalf("WriteTrailer: %v", err)
	}
	return buf.Bytes()
}

// drainStream decodes a full stream, returning the vehicles and trailer or
// the first error.
func drainStream(b []byte) ([]*engine.VehicleReport, wire.Trailer, error) {
	r := wire.NewReader(bytes.NewReader(b))
	var vs []*engine.VehicleReport
	for {
		v, err := r.Next()
		if err == io.EOF {
			tr, terr := r.Trailer()
			return vs, tr, terr
		}
		if err != nil {
			return vs, wire.Trailer{}, err
		}
		vs = append(vs, v)
	}
}

// TestStreamRoundTrip pins the codec's core contract: Writer→Reader
// reproduces every vehicle report and the trailer exactly.
func TestStreamRoundTrip(t *testing.T) {
	vs := realVehicles(t, 5)
	want := wire.Trailer{Start: 3, Count: 5, Err: "shard blew a fuse"}
	stream := encodeStream(t, vs, want)

	got, tr, err := drainStream(stream)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if tr != want {
		t.Errorf("trailer = %+v, want %+v", tr, want)
	}
	if len(got) != len(vs) {
		t.Fatalf("decoded %d vehicles, want %d", len(got), len(vs))
	}
	for i := range vs {
		if !reflect.DeepEqual(*got[i], vs[i]) {
			t.Errorf("vehicle %d diverged:\n got %+v\nwant %+v", i, *got[i], vs[i])
		}
	}
}

// TestEmptyShardStream covers a zero-vehicle shard: header + trailer only.
func TestEmptyShardStream(t *testing.T) {
	want := wire.Trailer{Start: 7, Count: 0}
	got, tr, err := drainStream(encodeStream(t, nil, want))
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(got) != 0 || tr != want {
		t.Errorf("got %d vehicles, trailer %+v; want 0 vehicles, %+v", len(got), tr, want)
	}
}

// TestVehiclePayloadFixedPoint pins the raw payload encoding: decode of an
// encoded vehicle re-encodes to the identical bytes, and the structural
// value round-trips.
func TestVehiclePayloadFixedPoint(t *testing.T) {
	for i, v := range realVehicles(t, 4) {
		enc1 := wire.AppendVehicle(nil, &v)
		dec, err := wire.DecodeVehiclePayload(enc1)
		if err != nil {
			t.Fatalf("vehicle %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(*dec, v) {
			t.Errorf("vehicle %d: structural round-trip diverged", i)
		}
		if enc2 := wire.AppendVehicle(nil, dec); !bytes.Equal(enc1, enc2) {
			t.Errorf("vehicle %d: re-encode is not a fixed point", i)
		}
	}
}

// TestDecodeVehiclePayloadRejectsTrailingBytes: extra bytes after a valid
// payload are corruption, not slack.
func TestDecodeVehiclePayloadRejectsTrailingBytes(t *testing.T) {
	vs := realVehicles(t, 1)
	enc := wire.AppendVehicle(nil, &vs[0])
	if _, err := wire.DecodeVehiclePayload(append(enc, 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// headerLen is the wire header size for Version 1: 4 magic bytes + a
// single-byte uvarint version.
const headerLen = 5

// TestFlipAnyByteErrors is the corruption property the shard driver's
// quarantine stance rests on: flip ANY single byte anywhere in a valid
// stream and the decode must error — header flips as ErrBadMagic or
// ErrVersion, everything after the header as ErrFrameChecksum. No flip may
// yield a silently different report set.
func TestFlipAnyByteErrors(t *testing.T) {
	vs := realVehicles(t, 3)
	stream := encodeStream(t, vs, wire.Trailer{Start: 0, Count: 3})
	for i := range stream {
		for _, bit := range []byte{0x01, 0x80} {
			mut := bytes.Clone(stream)
			mut[i] ^= bit
			_, _, err := drainStream(mut)
			if err == nil {
				t.Fatalf("flip byte %d (xor %#x): decode succeeded on corrupted stream", i, bit)
			}
			switch {
			case i < 4:
				if !errors.Is(err, wire.ErrBadMagic) {
					t.Errorf("flip magic byte %d (xor %#x): err = %v, want ErrBadMagic", i, bit, err)
				}
			case i < headerLen:
				if !errors.Is(err, wire.ErrVersion) {
					t.Errorf("flip version byte (xor %#x): err = %v, want ErrVersion", bit, err)
				}
			default:
				if !errors.Is(err, wire.ErrFrameChecksum) {
					t.Errorf("flip byte %d (xor %#x): err = %v, want ErrFrameChecksum", i, bit, err)
				}
			}
		}
	}
}

// TestTruncationErrors: every strict prefix of a valid stream must fail to
// decode — a stream that ends before its trailer is indistinguishable from
// a crashed child and is treated as corruption.
func TestTruncationErrors(t *testing.T) {
	vs := realVehicles(t, 2)
	stream := encodeStream(t, vs, wire.Trailer{Start: 0, Count: 2})
	for n := 0; n < len(stream); n++ {
		_, _, err := drainStream(stream[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(stream))
		}
		if n >= headerLen && !errors.Is(err, wire.ErrFrameChecksum) {
			t.Errorf("prefix %d: err = %v, want ErrFrameChecksum", n, err)
		}
	}
}

// TestBytesAfterTrailerRejected: the trailer must be the last frame; a
// stream with anything after it is corrupt.
func TestBytesAfterTrailerRejected(t *testing.T) {
	stream := encodeStream(t, nil, wire.Trailer{Start: 0, Count: 1})
	_, _, err := drainStream(append(stream, 0x00))
	if !errors.Is(err, wire.ErrFrameChecksum) {
		t.Errorf("err = %v, want ErrFrameChecksum", err)
	}
}

// TestBadMagicOnJSON: a JSON child piped into a binary reader (the classic
// -shard-wire mismatch) surfaces as ErrBadMagic, not a decode panic.
func TestBadMagicOnJSON(t *testing.T) {
	_, _, err := drainStream([]byte(`{"Range":"0:5","Report":{}}`))
	if !errors.Is(err, wire.ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

// TestUnsupportedVersionRejected: a stream speaking a future protocol
// version is refused outright — the encoding is positional, so there is no
// safe partial decode.
func TestUnsupportedVersionRejected(t *testing.T) {
	stream := encodeStream(t, nil, wire.Trailer{})
	mut := bytes.Clone(stream)
	mut[4] = wire.Version + 1 // version uvarint is one byte for small versions
	_, _, err := drainStream(mut)
	if !errors.Is(err, wire.ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

// TestUnknownFrameKindRejected: a well-framed payload (valid length, valid
// CRC) with an unknown kind byte is still corruption.
func TestUnknownFrameKindRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(encodeStream(t, nil, wire.Trailer{})[:headerLen]) // header only
	payload := []byte{0x7F}                                     // unknown kind
	buf.Write(binary.AppendUvarint(nil, uint64(len(payload))))
	buf.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf.Write(crc[:])
	_, _, err := drainStream(buf.Bytes())
	if !errors.Is(err, wire.ErrFrameChecksum) {
		t.Errorf("err = %v, want ErrFrameChecksum", err)
	}
}

// TestOversizedFrameLengthRejected: a declared frame length beyond the cap
// is rejected before any allocation.
func TestOversizedFrameLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(encodeStream(t, nil, wire.Trailer{})[:headerLen])
	buf.Write(binary.AppendUvarint(nil, 1<<40))
	_, _, err := drainStream(buf.Bytes())
	if !errors.Is(err, wire.ErrFrameChecksum) {
		t.Errorf("err = %v, want ErrFrameChecksum", err)
	}
}

// TestReaderErrorsAreSticky: after a decode error every subsequent Next and
// Trailer call returns the same failure — a half-corrupt stream can never
// be "resumed" past the damage.
func TestReaderErrorsAreSticky(t *testing.T) {
	vs := realVehicles(t, 2)
	stream := encodeStream(t, vs, wire.Trailer{Start: 0, Count: 2})
	stream[len(stream)-1] ^= 0xFF // corrupt the trailer frame CRC
	r := wire.NewReader(bytes.NewReader(stream))
	var first error
	for {
		_, err := r.Next()
		if err != nil {
			first = err
			break
		}
	}
	if !errors.Is(first, wire.ErrFrameChecksum) {
		t.Fatalf("first error = %v, want ErrFrameChecksum", first)
	}
	if _, err := r.Next(); !errors.Is(err, wire.ErrFrameChecksum) {
		t.Errorf("Next after error = %v, want sticky ErrFrameChecksum", err)
	}
	if _, err := r.Trailer(); !errors.Is(err, wire.ErrFrameChecksum) {
		t.Errorf("Trailer after error = %v, want sticky ErrFrameChecksum", err)
	}
}
