package wire_test

import (
	"bytes"
	"io"
	"os"
	"testing"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/shard/wire"
)

// quickstartVehicles sweeps a small fleet through the shipped quickstart
// campaign — the corpus the fuzzer mutates is real production payloads, not
// synthetic fixtures (the FuzzParse pattern: seed from shipped examples).
func quickstartVehicles(f *testing.F) []engine.VehicleReport {
	f.Helper()
	src, err := os.ReadFile("../../../examples/campaigns/quickstart.campaign")
	if err != nil {
		f.Fatal(err)
	}
	spec, err := campaign.Parse(string(src))
	if err != nil {
		f.Fatal(err)
	}
	plan, err := (campaign.Compiler{}).Compile(spec)
	if err != nil {
		f.Fatal(err)
	}
	ecfg, err := campaign.EngineConfig(plan, campaign.SweepConfig{
		Fleet: 3, Workers: 2, RootSeed: 42,
	})
	if err != nil {
		f.Fatal(err)
	}
	fr, err := engine.Run(ecfg)
	if err != nil {
		f.Fatal(err)
	}
	return fr.Vehicles
}

// FuzzWireCodec fuzzes both decoding surfaces of the binary shard wire:
//
//  1. Stream safety — arbitrary bytes fed through a Reader must never
//     panic, whatever the mutator does to framing, lengths or payloads.
//  2. Payload fixed point — any byte string the vehicle decoder accepts
//     must re-encode canonically: encode(decode(data)) is a fixed point
//     under a further decode/encode round trip. (data itself need not be
//     canonical — uvarints admit non-minimal forms — which is why the
//     identity is asserted on enc1/enc2, not on data.)
//  3. Framed round trip — a decoded vehicle written through the real
//     Writer must come back structurally intact with its trailer.
//
// The corpus is seeded from a real quickstart campaign sweep so the
// mutator starts from production-shaped payloads.
func FuzzWireCodec(f *testing.F) {
	vs := quickstartVehicles(f)
	for i := range vs {
		f.Add(wire.AppendVehicle(nil, &vs[i]))
	}
	// A whole stream (header + frames + trailer) seeds the framing branch.
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	for i := range vs {
		if err := w.WriteVehicle(&vs[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.WriteTrailer(wire.Trailer{Start: 0, Count: len(vs), Err: "boom"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSW\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Stream decode: drain until EOF or error; must not panic.
		r := wire.NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		_, _ = r.Trailer()

		// 2. Payload fixed point.
		v, err := wire.DecodeVehiclePayload(data)
		if err != nil {
			return // rejected input; safety already proven above
		}
		enc1 := wire.AppendVehicle(nil, v)
		v2, err := wire.DecodeVehiclePayload(enc1)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		enc2 := wire.AppendVehicle(nil, v2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode∘decode not a fixed point:\nenc1 %x\nenc2 %x", enc1, enc2)
		}

		// 3. Framed round trip through the real Writer/Reader.
		var stream bytes.Buffer
		sw := wire.NewWriter(&stream)
		if err := sw.WriteVehicle(v); err != nil {
			t.Fatalf("WriteVehicle: %v", err)
		}
		want := wire.Trailer{Start: v.Index, Count: 1, Err: "fuzz"}
		if err := sw.WriteTrailer(want); err != nil {
			t.Fatalf("WriteTrailer: %v", err)
		}
		sr := wire.NewReader(bytes.NewReader(stream.Bytes()))
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("framed decode: %v", err)
		}
		if enc3 := wire.AppendVehicle(nil, got); !bytes.Equal(enc1, enc3) {
			t.Fatal("framed round trip changed the vehicle payload")
		}
		if _, err := sr.Next(); err != io.EOF {
			t.Fatalf("expected EOF after trailer, got %v", err)
		}
		if tr, err := sr.Trailer(); err != nil || tr != want {
			t.Fatalf("trailer = %+v, %v; want %+v", tr, err, want)
		}
	})
}
