package shard

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/shard/wire"
)

// TestRanges pins the contiguous-partition contract: ranges cover [0, total)
// exactly once, sizes differ by at most one, remainder goes earliest.
func TestRanges(t *testing.T) {
	tests := []struct {
		total, n int
		want     []Range
	}{
		{1, 1, []Range{{0, 1}}},
		{1, 4, []Range{{0, 1}}},                          // clamped to total
		{10, 4, []Range{{0, 3}, {3, 3}, {6, 2}, {8, 2}}}, // remainder earliest
		{8, 4, []Range{{0, 2}, {2, 2}, {4, 2}, {6, 2}}},  // even split
		{5, 0, []Range{{0, 5}}},                          // clamped to 1
		{1000000, 3, []Range{{0, 333334}, {333334, 333333}, {666667, 333333}}},
	}
	for _, tc := range tests {
		got := Ranges(tc.total, tc.n)
		if len(got) != len(tc.want) {
			t.Errorf("Ranges(%d, %d) = %v, want %v", tc.total, tc.n, got, tc.want)
			continue
		}
		covered := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Ranges(%d, %d)[%d] = %v, want %v", tc.total, tc.n, i, got[i], tc.want[i])
			}
			if got[i].Start != covered {
				t.Errorf("Ranges(%d, %d)[%d] not contiguous: start %d, want %d", tc.total, tc.n, i, got[i].Start, covered)
			}
			covered += got[i].Count
		}
		if covered != tc.total {
			t.Errorf("Ranges(%d, %d) covers %d vehicles", tc.total, tc.n, covered)
		}
	}
	if got := Ranges(0, 4); got != nil {
		t.Errorf("Ranges(0, 4) = %v, want nil", got)
	}
}

func TestParseRangeRoundTrip(t *testing.T) {
	for _, r := range Ranges(1000, 7) {
		got, err := ParseRange(r.String())
		if err != nil {
			t.Fatalf("ParseRange(%q): %v", r, err)
		}
		if got != r {
			t.Errorf("ParseRange(%q) = %v", r, got)
		}
	}
	for _, bad := range []string{
		"", "5", "-1:3", "0:0", "0:-2", "a:b",
		// fmt.Sscanf leniency regressions: trailing garbage, embedded
		// garbage, whitespace, signs and extra fields must all be
		// rejected, not truncated into a plausible range.
		"0:5x", "0x1:5", " 0:5", "0:5 ", "0: 5", "1:2:3", "+1:5", "0:+5", "١:٥",
	} {
		if _, err := ParseRange(bad); err == nil {
			t.Errorf("ParseRange(%q) accepted", bad)
		}
	}
}

// smallCfg is a fast whole-fleet config exercising live + MAC + attack
// phases with a reduced scenario set.
func smallCfg(fleet int) engine.Config {
	return engine.Config{
		Fleet:          fleet,
		Workers:        2,
		RootSeed:       0xC0FFEE,
		Scenarios:      attack.Scenarios()[:2],
		Regimes:        []attack.Enforcement{attack.EnforceNone, attack.EnforceHPE},
		TrafficHorizon: 10 * time.Millisecond,
	}
}

// TestShardedRunByteIdentical is the tentpole contract: the merged sharded
// report renders byte-identically to the unsharded engine.Run for every
// shard count, vehicle lines and all.
func TestShardedRunByteIdentical(t *testing.T) {
	cfg := smallCfg(9)
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.String()
	for _, shards := range []int{1, 2, 4, 9, 20} {
		got, err := Run(Config{Engine: cfg, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.String() != want {
			t.Errorf("shards=%d: merged report diverged from unsharded oracle\n--- oracle\n%s\n--- sharded\n%s", shards, want, got.String())
		}
	}
}

// TestShardedChaosHealthIdentical asserts shard-layout invariance under
// armed supervision: chaos faults key on global vehicle indices, so the
// Health ledger (and everything else) must not move when the shard layout
// changes.
func TestShardedChaosHealthIdentical(t *testing.T) {
	cfg := smallCfg(8)
	cfg.Chaos = &chaos.Plan{Seed: 7, Panic: 0.2, Corrupt: 0.1}
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.String()
	if oracle.Health.IsZero() {
		t.Fatal("chaos plan injected nothing; test needs a fault-bearing config")
	}
	for _, shards := range []int{2, 3, 8} {
		got, err := Run(Config{Engine: cfg, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.String() != want {
			t.Errorf("shards=%d: chaos report diverged\n--- oracle\n%s\n--- sharded\n%s", shards, want, got.String())
		}
		if got.Health != oracle.Health {
			t.Errorf("shards=%d: health ledger moved: %+v vs %+v", shards, got.Health, oracle.Health)
		}
	}
}

// TestSpawnedShardsByteIdentical drives the subprocess wire path without a
// subprocess: the spawn hook runs the range in-process but round-trips the
// wire report through its JSON encoding, proving the serialization carries
// everything the merge needs.
func TestSpawnedShardsByteIdentical(t *testing.T) {
	cfg := smallCfg(6)
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spawned := 0
	got, err := Run(Config{Engine: cfg, Shards: 3, Spawn: func(r Range) (Stream, error) {
		spawned++
		var buf bytes.Buffer
		if err := RunRange(cfg, r).Encode(&buf); err != nil {
			return nil, err
		}
		w, err := DecodeWireReport(&buf)
		if err != nil {
			return nil, err
		}
		return w.Stream(), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if spawned != 3 {
		t.Errorf("spawn hook ran %d times, want 3", spawned)
	}
	if got.String() != oracle.String() {
		t.Errorf("spawned merge diverged from oracle\n--- oracle\n%s\n--- spawned\n%s", oracle.String(), got.String())
	}
}

// TestShardedUnrecoverableSurfaces asserts the partial-report contract
// across the shard boundary: an unrecoverable sweep error in one shard
// surfaces from Run naming the range, and the merged report still carries
// every shard's vehicles.
func TestShardedUnrecoverableSurfaces(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Chaos = &chaos.Plan{Seed: 3, Panic: 1, Persist: 99}
	got, err := Run(Config{Engine: cfg, Shards: 2})
	if err == nil {
		t.Fatal("unrecoverable chaos sweep returned nil error")
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Errorf("error does not name the shard: %v", err)
	}
	if got == nil || len(got.Vehicles) != 4 {
		t.Fatalf("partial merged report missing vehicles: %+v", got)
	}
	if got.Health.Unrecoverable == 0 {
		t.Error("merged health ledger lost the unrecoverable count")
	}
}

// TestRunRejectsPreOffsetConfig pins the index-space ownership rule.
func TestRunRejectsPreOffsetConfig(t *testing.T) {
	cfg := smallCfg(4)
	cfg.IndexOffset = 2
	if _, err := Run(Config{Engine: cfg, Shards: 2}); err == nil {
		t.Fatal("Run accepted a pre-offset engine config")
	}
}

// wireSpawn is a binary-wire spawn hook without a subprocess: RunRangeWire
// streams frames into a pipe from a goroutine (real producer/consumer
// concurrency, no pre-buffered document) and the stream decodes the read
// end, exactly the shape carsim's -shard-exec hook has.
func wireSpawn(cfg engine.Config) Spawn {
	return func(r Range) (Stream, error) {
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(RunRangeWire(cfg, r, pw)) }()
		return NewWireStream(pr, pr.Close), nil
	}
}

// TestBinaryWireStreamByteIdentical proves the binary protocol carries
// everything the merge needs: streaming frames through a pipe renders the
// same bytes as the unsharded oracle.
func TestBinaryWireStreamByteIdentical(t *testing.T) {
	cfg := smallCfg(7)
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Engine: cfg, Shards: 3, Spawn: wireSpawn(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != oracle.String() {
		t.Errorf("binary wire merge diverged from oracle\n--- oracle\n%s\n--- wire\n%s", oracle.String(), got.String())
	}
}

// TestParallelFanOutByteIdentical pins the concurrent-driver contract:
// whatever the parallelism level and however small the reorder window,
// shards merge strictly in range order and the report does not move a
// byte. Window 1 forces every ahead-of-cursor producer to block, the
// harshest reorder schedule.
func TestParallelFanOutByteIdentical(t *testing.T) {
	cfg := smallCfg(9)
	oracle, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.String()
	for _, par := range []int{2, 4, 16} {
		for _, window := range []int{1, 3, 0} {
			got, err := Run(Config{
				Engine: cfg, Shards: 4, Spawn: wireSpawn(cfg),
				Parallelism: par, Window: window,
			})
			if err != nil {
				t.Fatalf("parallelism=%d window=%d: %v", par, window, err)
			}
			if got.String() != want {
				t.Errorf("parallelism=%d window=%d: merged report diverged from oracle", par, window)
			}
		}
	}
}

// TestSpawnErrorPartialReport is the satellite regression: a Spawn error
// must be recorded like a shard sweep failure — the remaining ranges
// still merge and Run returns the partial report alongside the error —
// not discard every already-collected shard's vehicles.
func TestSpawnErrorPartialReport(t *testing.T) {
	cfg := smallCfg(8)
	boom := errors.New("host unreachable")
	spawn := func(r Range) (Stream, error) {
		if r.Start == 2 { // the second of four 2-vehicle ranges
			return nil, boom
		}
		return RunRange(cfg, r).Stream(), nil
	}
	for _, par := range []int{1, 3} {
		got, err := Run(Config{Engine: cfg, Shards: 4, Spawn: spawn, Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism=%d: spawn failure surfaced no error", par)
		}
		if !errors.Is(err, boom) {
			t.Errorf("parallelism=%d: joined error lost the spawn cause: %v", par, err)
		}
		if !strings.Contains(err.Error(), "shard 2:2") {
			t.Errorf("parallelism=%d: error does not name the failed range: %v", par, err)
		}
		if got == nil {
			t.Fatalf("parallelism=%d: no partial report", par)
		}
		if len(got.Vehicles) != 6 {
			t.Errorf("parallelism=%d: partial report carries %d vehicles, want 6 (the three healthy shards)", par, len(got.Vehicles))
		}
		for i, want := range []int{0, 1, 4, 5, 6, 7} {
			if got.Vehicles[i].Index != want {
				t.Errorf("parallelism=%d: vehicle %d has index %d, want %d", par, i, got.Vehicles[i].Index, want)
			}
		}
	}
}

// TestTrailerMismatchRecorded pins the range-echo check: a stream
// covering the wrong range is recorded, the rest still merges.
func TestTrailerMismatchRecorded(t *testing.T) {
	cfg := smallCfg(4)
	spawn := func(r Range) (Stream, error) {
		w := RunRange(cfg, r)
		if r.Start == 0 {
			w.Range = Range{Start: 99, Count: 1} // lie about coverage
		}
		return w.Stream(), nil
	}
	got, err := Run(Config{Engine: cfg, Shards: 2, Spawn: spawn})
	if err == nil {
		t.Fatal("range-echo mismatch surfaced no error")
	}
	if !strings.Contains(err.Error(), "covers 99:1") {
		t.Errorf("error does not describe the mismatch: %v", err)
	}
	if got == nil || len(got.Vehicles) != 4 {
		t.Fatalf("mismatched shard's vehicles were dropped: %+v", got)
	}
}

// TestWireUnrecoverableSurfaces runs the unrecoverable-sweep contract over
// the binary wire: the trailer carries the sweep error, the partial
// vehicles still stream, and the parent folds + surfaces both.
func TestWireUnrecoverableSurfaces(t *testing.T) {
	cfg := smallCfg(4)
	cfg.Chaos = &chaos.Plan{Seed: 3, Panic: 1, Persist: 99}
	got, err := Run(Config{Engine: cfg, Shards: 2, Spawn: wireSpawn(cfg), Parallelism: 2})
	if err == nil {
		t.Fatal("unrecoverable chaos sweep returned nil error")
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Errorf("error does not name the shard: %v", err)
	}
	if got == nil || len(got.Vehicles) != 4 {
		t.Fatalf("partial merged report missing vehicles: %+v", got)
	}
	if got.Health.Unrecoverable == 0 {
		t.Error("merged health ledger lost the unrecoverable count")
	}
}

// TestCorruptWireStreamRecorded pins the checksum containment stance end
// to end: a corrupted shard stream surfaces as wire.ErrFrameChecksum in
// the joined error, the other shard still merges, and nothing from the
// corrupt stream's tail lands in the report silently.
func TestCorruptWireStreamRecorded(t *testing.T) {
	cfg := smallCfg(4)
	spawn := func(r Range) (Stream, error) {
		var buf bytes.Buffer
		if err := RunRangeWire(cfg, r, &buf); err != nil {
			return nil, err
		}
		b := buf.Bytes()
		if r.Start == 2 {
			b[len(b)/2] ^= 0x01 // flip one mid-stream bit
		}
		return NewWireStream(bytes.NewReader(b), nil), nil
	}
	got, err := Run(Config{Engine: cfg, Shards: 2, Spawn: spawn})
	if err == nil {
		t.Fatal("corrupted stream surfaced no error")
	}
	if !errors.Is(err, wire.ErrFrameChecksum) {
		t.Errorf("joined error is not ErrFrameChecksum: %v", err)
	}
	if got == nil || len(got.Vehicles) < 2 {
		t.Fatalf("healthy shard's vehicles were dropped: %+v", got)
	}
}
